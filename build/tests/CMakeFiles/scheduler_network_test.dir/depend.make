# Empty dependencies file for scheduler_network_test.
# This may be replaced when dependencies are built.
