file(REMOVE_RECURSE
  "CMakeFiles/scheduler_network_test.dir/SchedulerNetworkTest.cpp.o"
  "CMakeFiles/scheduler_network_test.dir/SchedulerNetworkTest.cpp.o.d"
  "scheduler_network_test"
  "scheduler_network_test.pdb"
  "scheduler_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
