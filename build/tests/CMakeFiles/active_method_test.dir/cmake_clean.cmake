file(REMOVE_RECURSE
  "CMakeFiles/active_method_test.dir/ActiveMethodTest.cpp.o"
  "CMakeFiles/active_method_test.dir/ActiveMethodTest.cpp.o.d"
  "active_method_test"
  "active_method_test.pdb"
  "active_method_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_method_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
