# Empty dependencies file for gc_fuzz_test.
# This may be replaced when dependencies are built.
