file(REMOVE_RECURSE
  "CMakeFiles/gc_fuzz_test.dir/GcFuzzTest.cpp.o"
  "CMakeFiles/gc_fuzz_test.dir/GcFuzzTest.cpp.o.d"
  "gc_fuzz_test"
  "gc_fuzz_test.pdb"
  "gc_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
