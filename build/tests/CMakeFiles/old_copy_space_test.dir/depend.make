# Empty dependencies file for old_copy_space_test.
# This may be replaced when dependencies are built.
