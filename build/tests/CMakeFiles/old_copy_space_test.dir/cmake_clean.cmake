file(REMOVE_RECURSE
  "CMakeFiles/old_copy_space_test.dir/OldCopySpaceTest.cpp.o"
  "CMakeFiles/old_copy_space_test.dir/OldCopySpaceTest.cpp.o.d"
  "old_copy_space_test"
  "old_copy_space_test.pdb"
  "old_copy_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/old_copy_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
