# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for old_copy_space_test.
