file(REMOVE_RECURSE
  "CMakeFiles/vm_behavior_test.dir/VmBehaviorTest.cpp.o"
  "CMakeFiles/vm_behavior_test.dir/VmBehaviorTest.cpp.o.d"
  "vm_behavior_test"
  "vm_behavior_test.pdb"
  "vm_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
