# Empty compiler generated dependencies file for vm_behavior_test.
# This may be replaced when dependencies are built.
