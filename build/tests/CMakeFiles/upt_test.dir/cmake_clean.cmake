file(REMOVE_RECURSE
  "CMakeFiles/upt_test.dir/UptTest.cpp.o"
  "CMakeFiles/upt_test.dir/UptTest.cpp.o.d"
  "upt_test"
  "upt_test.pdb"
  "upt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
