# Empty dependencies file for upt_test.
# This may be replaced when dependencies are built.
