file(REMOVE_RECURSE
  "CMakeFiles/heap_verifier_test.dir/HeapVerifierTest.cpp.o"
  "CMakeFiles/heap_verifier_test.dir/HeapVerifierTest.cpp.o.d"
  "heap_verifier_test"
  "heap_verifier_test.pdb"
  "heap_verifier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heap_verifier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
