file(REMOVE_RECURSE
  "CMakeFiles/dsu_edge_test.dir/DsuEdgeTest.cpp.o"
  "CMakeFiles/dsu_edge_test.dir/DsuEdgeTest.cpp.o.d"
  "dsu_edge_test"
  "dsu_edge_test.pdb"
  "dsu_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
