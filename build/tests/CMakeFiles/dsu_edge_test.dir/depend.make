# Empty dependencies file for dsu_edge_test.
# This may be replaced when dependencies are built.
