file(REMOVE_RECURSE
  "CMakeFiles/dsu_test.dir/DsuTest.cpp.o"
  "CMakeFiles/dsu_test.dir/DsuTest.cpp.o.d"
  "dsu_test"
  "dsu_test.pdb"
  "dsu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
