file(REMOVE_RECURSE
  "CMakeFiles/update_trace_test.dir/UpdateTraceTest.cpp.o"
  "CMakeFiles/update_trace_test.dir/UpdateTraceTest.cpp.o.d"
  "update_trace_test"
  "update_trace_test.pdb"
  "update_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
