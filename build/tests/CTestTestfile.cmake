# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/interpreter_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/dsu_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/type_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/builder_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/registry_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/upt_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_network_test[1]_include.cmake")
include("/root/repo/build/tests/transformer_test[1]_include.cmake")
include("/root/repo/build/tests/dsu_edge_test[1]_include.cmake")
include("/root/repo/build/tests/active_method_test[1]_include.cmake")
include("/root/repo/build/tests/old_copy_space_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/heap_verifier_test[1]_include.cmake")
include("/root/repo/build/tests/vm_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/gc_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/update_trace_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_test[1]_include.cmake")
