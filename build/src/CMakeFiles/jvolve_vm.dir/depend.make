# Empty dependencies file for jvolve_vm.
# This may be replaced when dependencies are built.
