file(REMOVE_RECURSE
  "libjvolve_vm.a"
)
