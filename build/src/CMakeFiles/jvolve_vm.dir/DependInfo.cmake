
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/Compiler.cpp" "src/CMakeFiles/jvolve_vm.dir/exec/Compiler.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/exec/Compiler.cpp.o.d"
  "/root/repo/src/heap/Collector.cpp" "src/CMakeFiles/jvolve_vm.dir/heap/Collector.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/heap/Collector.cpp.o.d"
  "/root/repo/src/heap/Heap.cpp" "src/CMakeFiles/jvolve_vm.dir/heap/Heap.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/heap/Heap.cpp.o.d"
  "/root/repo/src/heap/HeapVerifier.cpp" "src/CMakeFiles/jvolve_vm.dir/heap/HeapVerifier.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/heap/HeapVerifier.cpp.o.d"
  "/root/repo/src/runtime/ClassRegistry.cpp" "src/CMakeFiles/jvolve_vm.dir/runtime/ClassRegistry.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/runtime/ClassRegistry.cpp.o.d"
  "/root/repo/src/runtime/StringTable.cpp" "src/CMakeFiles/jvolve_vm.dir/runtime/StringTable.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/runtime/StringTable.cpp.o.d"
  "/root/repo/src/threads/Scheduler.cpp" "src/CMakeFiles/jvolve_vm.dir/threads/Scheduler.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/threads/Scheduler.cpp.o.d"
  "/root/repo/src/vm/Interpreter.cpp" "src/CMakeFiles/jvolve_vm.dir/vm/Interpreter.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/vm/Interpreter.cpp.o.d"
  "/root/repo/src/vm/Network.cpp" "src/CMakeFiles/jvolve_vm.dir/vm/Network.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/vm/Network.cpp.o.d"
  "/root/repo/src/vm/VM.cpp" "src/CMakeFiles/jvolve_vm.dir/vm/VM.cpp.o" "gcc" "src/CMakeFiles/jvolve_vm.dir/vm/VM.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jvolve_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jvolve_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
