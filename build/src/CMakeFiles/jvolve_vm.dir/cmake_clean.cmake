file(REMOVE_RECURSE
  "CMakeFiles/jvolve_vm.dir/exec/Compiler.cpp.o"
  "CMakeFiles/jvolve_vm.dir/exec/Compiler.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/heap/Collector.cpp.o"
  "CMakeFiles/jvolve_vm.dir/heap/Collector.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/heap/Heap.cpp.o"
  "CMakeFiles/jvolve_vm.dir/heap/Heap.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/heap/HeapVerifier.cpp.o"
  "CMakeFiles/jvolve_vm.dir/heap/HeapVerifier.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/runtime/ClassRegistry.cpp.o"
  "CMakeFiles/jvolve_vm.dir/runtime/ClassRegistry.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/runtime/StringTable.cpp.o"
  "CMakeFiles/jvolve_vm.dir/runtime/StringTable.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/threads/Scheduler.cpp.o"
  "CMakeFiles/jvolve_vm.dir/threads/Scheduler.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/vm/Interpreter.cpp.o"
  "CMakeFiles/jvolve_vm.dir/vm/Interpreter.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/vm/Network.cpp.o"
  "CMakeFiles/jvolve_vm.dir/vm/Network.cpp.o.d"
  "CMakeFiles/jvolve_vm.dir/vm/VM.cpp.o"
  "CMakeFiles/jvolve_vm.dir/vm/VM.cpp.o.d"
  "libjvolve_vm.a"
  "libjvolve_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
