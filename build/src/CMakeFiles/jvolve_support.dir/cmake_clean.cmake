file(REMOVE_RECURSE
  "CMakeFiles/jvolve_support.dir/support/Error.cpp.o"
  "CMakeFiles/jvolve_support.dir/support/Error.cpp.o.d"
  "CMakeFiles/jvolve_support.dir/support/Stats.cpp.o"
  "CMakeFiles/jvolve_support.dir/support/Stats.cpp.o.d"
  "CMakeFiles/jvolve_support.dir/support/StringUtils.cpp.o"
  "CMakeFiles/jvolve_support.dir/support/StringUtils.cpp.o.d"
  "CMakeFiles/jvolve_support.dir/support/TablePrinter.cpp.o"
  "CMakeFiles/jvolve_support.dir/support/TablePrinter.cpp.o.d"
  "libjvolve_support.a"
  "libjvolve_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
