# Empty compiler generated dependencies file for jvolve_support.
# This may be replaced when dependencies are built.
