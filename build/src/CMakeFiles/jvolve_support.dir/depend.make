# Empty dependencies file for jvolve_support.
# This may be replaced when dependencies are built.
