file(REMOVE_RECURSE
  "libjvolve_support.a"
)
