file(REMOVE_RECURSE
  "libjvolve_bytecode.a"
)
