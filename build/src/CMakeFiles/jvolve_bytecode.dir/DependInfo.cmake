
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytecode/Builder.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Builder.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Builder.cpp.o.d"
  "/root/repo/src/bytecode/Builtins.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Builtins.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Builtins.cpp.o.d"
  "/root/repo/src/bytecode/ClassDef.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/ClassDef.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/ClassDef.cpp.o.d"
  "/root/repo/src/bytecode/Instruction.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Instruction.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Instruction.cpp.o.d"
  "/root/repo/src/bytecode/Printer.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Printer.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Printer.cpp.o.d"
  "/root/repo/src/bytecode/Type.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Type.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Type.cpp.o.d"
  "/root/repo/src/bytecode/Verifier.cpp" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Verifier.cpp.o" "gcc" "src/CMakeFiles/jvolve_bytecode.dir/bytecode/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jvolve_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
