file(REMOVE_RECURSE
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Builder.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Builder.cpp.o.d"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Builtins.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Builtins.cpp.o.d"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/ClassDef.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/ClassDef.cpp.o.d"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Instruction.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Instruction.cpp.o.d"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Printer.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Printer.cpp.o.d"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Type.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Type.cpp.o.d"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Verifier.cpp.o"
  "CMakeFiles/jvolve_bytecode.dir/bytecode/Verifier.cpp.o.d"
  "libjvolve_bytecode.a"
  "libjvolve_bytecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve_bytecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
