# Empty compiler generated dependencies file for jvolve_bytecode.
# This may be replaced when dependencies are built.
