# Empty compiler generated dependencies file for jvolve_asm.
# This may be replaced when dependencies are built.
