file(REMOVE_RECURSE
  "CMakeFiles/jvolve_asm.dir/asm/AsmWriter.cpp.o"
  "CMakeFiles/jvolve_asm.dir/asm/AsmWriter.cpp.o.d"
  "CMakeFiles/jvolve_asm.dir/asm/Assembler.cpp.o"
  "CMakeFiles/jvolve_asm.dir/asm/Assembler.cpp.o.d"
  "libjvolve_asm.a"
  "libjvolve_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
