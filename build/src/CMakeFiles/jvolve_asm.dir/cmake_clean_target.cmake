file(REMOVE_RECURSE
  "libjvolve_asm.a"
)
