file(REMOVE_RECURSE
  "libjvolve_apps.a"
)
