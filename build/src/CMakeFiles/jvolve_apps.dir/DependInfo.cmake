
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/AppModel.cpp" "src/CMakeFiles/jvolve_apps.dir/apps/AppModel.cpp.o" "gcc" "src/CMakeFiles/jvolve_apps.dir/apps/AppModel.cpp.o.d"
  "/root/repo/src/apps/CrossFtpApp.cpp" "src/CMakeFiles/jvolve_apps.dir/apps/CrossFtpApp.cpp.o" "gcc" "src/CMakeFiles/jvolve_apps.dir/apps/CrossFtpApp.cpp.o.d"
  "/root/repo/src/apps/EmailApp.cpp" "src/CMakeFiles/jvolve_apps.dir/apps/EmailApp.cpp.o" "gcc" "src/CMakeFiles/jvolve_apps.dir/apps/EmailApp.cpp.o.d"
  "/root/repo/src/apps/Evaluation.cpp" "src/CMakeFiles/jvolve_apps.dir/apps/Evaluation.cpp.o" "gcc" "src/CMakeFiles/jvolve_apps.dir/apps/Evaluation.cpp.o.d"
  "/root/repo/src/apps/JettyApp.cpp" "src/CMakeFiles/jvolve_apps.dir/apps/JettyApp.cpp.o" "gcc" "src/CMakeFiles/jvolve_apps.dir/apps/JettyApp.cpp.o.d"
  "/root/repo/src/apps/Workload.cpp" "src/CMakeFiles/jvolve_apps.dir/apps/Workload.cpp.o" "gcc" "src/CMakeFiles/jvolve_apps.dir/apps/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jvolve_dsu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jvolve_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jvolve_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jvolve_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
