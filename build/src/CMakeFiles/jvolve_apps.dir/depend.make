# Empty dependencies file for jvolve_apps.
# This may be replaced when dependencies are built.
