file(REMOVE_RECURSE
  "CMakeFiles/jvolve_apps.dir/apps/AppModel.cpp.o"
  "CMakeFiles/jvolve_apps.dir/apps/AppModel.cpp.o.d"
  "CMakeFiles/jvolve_apps.dir/apps/CrossFtpApp.cpp.o"
  "CMakeFiles/jvolve_apps.dir/apps/CrossFtpApp.cpp.o.d"
  "CMakeFiles/jvolve_apps.dir/apps/EmailApp.cpp.o"
  "CMakeFiles/jvolve_apps.dir/apps/EmailApp.cpp.o.d"
  "CMakeFiles/jvolve_apps.dir/apps/Evaluation.cpp.o"
  "CMakeFiles/jvolve_apps.dir/apps/Evaluation.cpp.o.d"
  "CMakeFiles/jvolve_apps.dir/apps/JettyApp.cpp.o"
  "CMakeFiles/jvolve_apps.dir/apps/JettyApp.cpp.o.d"
  "CMakeFiles/jvolve_apps.dir/apps/Workload.cpp.o"
  "CMakeFiles/jvolve_apps.dir/apps/Workload.cpp.o.d"
  "libjvolve_apps.a"
  "libjvolve_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
