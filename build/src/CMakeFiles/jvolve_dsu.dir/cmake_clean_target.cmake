file(REMOVE_RECURSE
  "libjvolve_dsu.a"
)
