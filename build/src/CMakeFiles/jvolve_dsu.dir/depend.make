# Empty dependencies file for jvolve_dsu.
# This may be replaced when dependencies are built.
