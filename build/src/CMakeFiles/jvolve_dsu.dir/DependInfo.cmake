
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsu/EcUpdater.cpp" "src/CMakeFiles/jvolve_dsu.dir/dsu/EcUpdater.cpp.o" "gcc" "src/CMakeFiles/jvolve_dsu.dir/dsu/EcUpdater.cpp.o.d"
  "/root/repo/src/dsu/Transformers.cpp" "src/CMakeFiles/jvolve_dsu.dir/dsu/Transformers.cpp.o" "gcc" "src/CMakeFiles/jvolve_dsu.dir/dsu/Transformers.cpp.o.d"
  "/root/repo/src/dsu/UpdateTrace.cpp" "src/CMakeFiles/jvolve_dsu.dir/dsu/UpdateTrace.cpp.o" "gcc" "src/CMakeFiles/jvolve_dsu.dir/dsu/UpdateTrace.cpp.o.d"
  "/root/repo/src/dsu/Updater.cpp" "src/CMakeFiles/jvolve_dsu.dir/dsu/Updater.cpp.o" "gcc" "src/CMakeFiles/jvolve_dsu.dir/dsu/Updater.cpp.o.d"
  "/root/repo/src/dsu/Upt.cpp" "src/CMakeFiles/jvolve_dsu.dir/dsu/Upt.cpp.o" "gcc" "src/CMakeFiles/jvolve_dsu.dir/dsu/Upt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/jvolve_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jvolve_bytecode.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/jvolve_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
