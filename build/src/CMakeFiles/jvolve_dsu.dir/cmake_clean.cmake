file(REMOVE_RECURSE
  "CMakeFiles/jvolve_dsu.dir/dsu/EcUpdater.cpp.o"
  "CMakeFiles/jvolve_dsu.dir/dsu/EcUpdater.cpp.o.d"
  "CMakeFiles/jvolve_dsu.dir/dsu/Transformers.cpp.o"
  "CMakeFiles/jvolve_dsu.dir/dsu/Transformers.cpp.o.d"
  "CMakeFiles/jvolve_dsu.dir/dsu/UpdateTrace.cpp.o"
  "CMakeFiles/jvolve_dsu.dir/dsu/UpdateTrace.cpp.o.d"
  "CMakeFiles/jvolve_dsu.dir/dsu/Updater.cpp.o"
  "CMakeFiles/jvolve_dsu.dir/dsu/Updater.cpp.o.d"
  "CMakeFiles/jvolve_dsu.dir/dsu/Upt.cpp.o"
  "CMakeFiles/jvolve_dsu.dir/dsu/Upt.cpp.o.d"
  "libjvolve_dsu.a"
  "libjvolve_dsu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve_dsu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
