file(REMOVE_RECURSE
  "CMakeFiles/email_live_upgrade.dir/email_live_upgrade.cpp.o"
  "CMakeFiles/email_live_upgrade.dir/email_live_upgrade.cpp.o.d"
  "email_live_upgrade"
  "email_live_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/email_live_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
