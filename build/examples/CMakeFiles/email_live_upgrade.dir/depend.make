# Empty dependencies file for email_live_upgrade.
# This may be replaced when dependencies are built.
