# Empty dependencies file for asm_live_update.
# This may be replaced when dependencies are built.
