file(REMOVE_RECURSE
  "CMakeFiles/asm_live_update.dir/asm_live_update.cpp.o"
  "CMakeFiles/asm_live_update.dir/asm_live_update.cpp.o.d"
  "asm_live_update"
  "asm_live_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_live_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
