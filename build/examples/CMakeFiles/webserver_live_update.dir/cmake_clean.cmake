file(REMOVE_RECURSE
  "CMakeFiles/webserver_live_update.dir/webserver_live_update.cpp.o"
  "CMakeFiles/webserver_live_update.dir/webserver_live_update.cpp.o.d"
  "webserver_live_update"
  "webserver_live_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_live_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
