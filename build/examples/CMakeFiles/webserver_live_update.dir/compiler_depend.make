# Empty compiler generated dependencies file for webserver_live_update.
# This may be replaced when dependencies are built.
