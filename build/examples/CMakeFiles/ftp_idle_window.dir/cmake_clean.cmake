file(REMOVE_RECURSE
  "CMakeFiles/ftp_idle_window.dir/ftp_idle_window.cpp.o"
  "CMakeFiles/ftp_idle_window.dir/ftp_idle_window.cpp.o.d"
  "ftp_idle_window"
  "ftp_idle_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftp_idle_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
