# Empty compiler generated dependencies file for ftp_idle_window.
# This may be replaced when dependencies are built.
