file(REMOVE_RECURSE
  "CMakeFiles/bench_safepoint.dir/bench_safepoint.cpp.o"
  "CMakeFiles/bench_safepoint.dir/bench_safepoint.cpp.o.d"
  "bench_safepoint"
  "bench_safepoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_safepoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
