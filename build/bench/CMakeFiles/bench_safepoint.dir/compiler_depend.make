# Empty compiler generated dependencies file for bench_safepoint.
# This may be replaced when dependencies are built.
