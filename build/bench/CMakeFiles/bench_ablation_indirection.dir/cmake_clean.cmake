file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_indirection.dir/bench_ablation_indirection.cpp.o"
  "CMakeFiles/bench_ablation_indirection.dir/bench_ablation_indirection.cpp.o.d"
  "bench_ablation_indirection"
  "bench_ablation_indirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_indirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
