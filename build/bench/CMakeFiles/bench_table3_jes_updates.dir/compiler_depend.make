# Empty compiler generated dependencies file for bench_table3_jes_updates.
# This may be replaced when dependencies are built.
