file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_oldcopy.dir/bench_ablation_oldcopy.cpp.o"
  "CMakeFiles/bench_ablation_oldcopy.dir/bench_ablation_oldcopy.cpp.o.d"
  "bench_ablation_oldcopy"
  "bench_ablation_oldcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_oldcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
