# Empty dependencies file for bench_ablation_oldcopy.
# This may be replaced when dependencies are built.
