# Empty compiler generated dependencies file for bench_table4_crossftp_updates.
# This may be replaced when dependencies are built.
