file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_crossftp_updates.dir/bench_table4_crossftp_updates.cpp.o"
  "CMakeFiles/bench_table4_crossftp_updates.dir/bench_table4_crossftp_updates.cpp.o.d"
  "bench_table4_crossftp_updates"
  "bench_table4_crossftp_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_crossftp_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
