# Empty dependencies file for bench_fig5_jetty_perf.
# This may be replaced when dependencies are built.
