file(REMOVE_RECURSE
  "CMakeFiles/bench_flexibility_summary.dir/bench_flexibility_summary.cpp.o"
  "CMakeFiles/bench_flexibility_summary.dir/bench_flexibility_summary.cpp.o.d"
  "bench_flexibility_summary"
  "bench_flexibility_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexibility_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
