# Empty compiler generated dependencies file for bench_flexibility_summary.
# This may be replaced when dependencies are built.
