# Empty dependencies file for bench_active_update.
# This may be replaced when dependencies are built.
