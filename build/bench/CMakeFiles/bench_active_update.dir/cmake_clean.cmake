file(REMOVE_RECURSE
  "CMakeFiles/bench_active_update.dir/bench_active_update.cpp.o"
  "CMakeFiles/bench_active_update.dir/bench_active_update.cpp.o.d"
  "bench_active_update"
  "bench_active_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
