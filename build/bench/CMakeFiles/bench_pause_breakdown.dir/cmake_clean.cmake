file(REMOVE_RECURSE
  "CMakeFiles/bench_pause_breakdown.dir/bench_pause_breakdown.cpp.o"
  "CMakeFiles/bench_pause_breakdown.dir/bench_pause_breakdown.cpp.o.d"
  "bench_pause_breakdown"
  "bench_pause_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pause_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
