# Empty dependencies file for bench_table2_jetty_updates.
# This may be replaced when dependencies are built.
