file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_pause.dir/bench_table1_pause.cpp.o"
  "CMakeFiles/bench_table1_pause.dir/bench_table1_pause.cpp.o.d"
  "bench_table1_pause"
  "bench_table1_pause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
