# Empty compiler generated dependencies file for jvolve-dis.
# This may be replaced when dependencies are built.
