file(REMOVE_RECURSE
  "CMakeFiles/jvolve-dis.dir/jvolve-dis.cpp.o"
  "CMakeFiles/jvolve-dis.dir/jvolve-dis.cpp.o.d"
  "jvolve-dis"
  "jvolve-dis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve-dis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
