# Empty compiler generated dependencies file for jvolve-upt.
# This may be replaced when dependencies are built.
