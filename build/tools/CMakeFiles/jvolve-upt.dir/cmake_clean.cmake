file(REMOVE_RECURSE
  "CMakeFiles/jvolve-upt.dir/jvolve-upt.cpp.o"
  "CMakeFiles/jvolve-upt.dir/jvolve-upt.cpp.o.d"
  "jvolve-upt"
  "jvolve-upt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve-upt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
