file(REMOVE_RECURSE
  "CMakeFiles/jvolve-run.dir/jvolve-run.cpp.o"
  "CMakeFiles/jvolve-run.dir/jvolve-run.cpp.o.d"
  "jvolve-run"
  "jvolve-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
