# Empty dependencies file for jvolve-run.
# This may be replaced when dependencies are built.
