file(REMOVE_RECURSE
  "CMakeFiles/jvolve-serve.dir/jvolve-serve.cpp.o"
  "CMakeFiles/jvolve-serve.dir/jvolve-serve.cpp.o.d"
  "jvolve-serve"
  "jvolve-serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jvolve-serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
