# Empty compiler generated dependencies file for jvolve-serve.
# This may be replaced when dependencies are built.
