//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the smallest end-to-end dynamic software update.
///
/// Builds a one-class program, runs it, then applies a dynamic update that
/// adds a field to a live object — with a custom object transformer that
/// initializes the new field from the old state (paper §2.3).
///
/// Build & run:  ./examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "vm/VM.h"

#include <cstdio>

using namespace jvolve;

/// Version 1: Counter has a single `count` field.
static ClassSet versionOne() {
  ClassSet Program;
  {
    ClassBuilder CB("Counter");
    CB.field("count", "I");
    CB.method("increment", "()V")
        .load(0)
        .load(0)
        .getfield("Counter", "count", "I")
        .iconst(1)
        .iadd()
        .putfield("Counter", "count", "I")
        .ret();
    CB.method("get", "()I")
        .load(0)
        .getfield("Counter", "count", "I")
        .iret();
    Program.add(CB.build());
  }
  {
    ClassBuilder CB("App");
    CB.staticField("counter", "LCounter;");
    CB.staticMethod("init", "()V")
        .newobj("Counter")
        .putstatic("App", "counter", "LCounter;")
        .ret();
    CB.staticMethod("tick", "()I")
        .getstatic("App", "counter", "LCounter;")
        .invokevirtual("Counter", "increment", "()V")
        .getstatic("App", "counter", "LCounter;")
        .invokevirtual("Counter", "get", "()I")
        .iret();
    Program.add(CB.build());
  }
  return Program;
}

/// Version 2: Counter additionally tracks the high-water mark.
static ClassSet versionTwo() {
  ClassSet Program;
  {
    ClassBuilder CB("Counter");
    CB.field("count", "I");
    CB.field("high", "I"); // new field
    CB.method("increment", "()V")
        .load(0)
        .load(0)
        .getfield("Counter", "count", "I")
        .iconst(1)
        .iadd()
        .putfield("Counter", "count", "I")
        .load(0)
        .load(0)
        .getfield("Counter", "count", "I")
        .putfield("Counter", "high", "I")
        .ret();
    CB.method("get", "()I")
        .load(0)
        .getfield("Counter", "count", "I")
        .iret();
    CB.method("highWater", "()I")
        .load(0)
        .getfield("Counter", "high", "I")
        .iret();
    Program.add(CB.build());
  }
  {
    ClassBuilder CB("App");
    CB.staticField("counter", "LCounter;");
    CB.staticMethod("init", "()V")
        .newobj("Counter")
        .putstatic("App", "counter", "LCounter;")
        .ret();
    CB.staticMethod("tick", "()I")
        .getstatic("App", "counter", "LCounter;")
        .invokevirtual("Counter", "increment", "()V")
        .getstatic("App", "counter", "LCounter;")
        .invokevirtual("Counter", "get", "()I")
        .iret();
    CB.staticMethod("high", "()I")
        .getstatic("App", "counter", "LCounter;")
        .invokevirtual("Counter", "highWater", "()I")
        .iret();
    Program.add(CB.build());
  }
  return Program;
}

int main() {
  // 1. Boot the VM on version 1 and build up some state.
  VM TheVM((VM::Config()));
  TheVM.loadProgram(versionOne());
  TheVM.callStatic("App", "init", "()V");
  for (int I = 0; I < 41; ++I)
    TheVM.callStatic("App", "tick", "()I");
  std::printf("before update: count = %lld\n",
              static_cast<long long>(
                  TheVM.callStatic("App", "tick", "()I").IntVal));

  // 2. Prepare the update with the UPT and customize the generated
  //    transformer: the new `high` field starts at the current count.
  UpdateBundle Bundle = Upt::prepare(versionOne(), versionTwo(), "v1");
  std::printf("update spec: %zu class update(s), %zu method body "
              "update(s)\n",
              Bundle.Spec.ClassUpdates.size(),
              Bundle.Spec.MethodBodyUpdates.size());
  Bundle.ObjectTransformers["Counter"] = [](TransformCtx &Ctx, Ref To,
                                            Ref From) {
    int64_t Count = Ctx.getInt(From, "count");
    Ctx.setInt(To, "count", Count);
    Ctx.setInt(To, "high", Count);
  };

  // 3. Apply it while the VM is live.
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(Bundle));
  std::printf("update: %s in %.2f ms (%llu object(s) transformed)\n",
              updateStatusName(R.Status), R.TotalPauseMs,
              static_cast<unsigned long long>(R.ObjectsTransformed));

  // 4. The live object carried its state into the new version.
  std::printf("after update: count = %lld, highWater = %lld\n",
              static_cast<long long>(
                  TheVM.callStatic("App", "tick", "()I").IntVal),
              static_cast<long long>(
                  TheVM.callStatic("App", "high", "()I").IntVal));
  return 0;
}
