//===----------------------------------------------------------------------===//
///
/// \file
/// Update timing windows: the CrossFTP 1.07 -> 1.08 scenario (paper §4.4).
///
/// The update changes the session handler, which is essentially always on
/// stack while FTP sessions are active: applying it under load times out
/// (the installed return barrier never gets a chance to complete the
/// update), but the same update applies immediately once the server goes
/// idle.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "vm/VM.h"

#include <cstdio>

using namespace jvolve;

static UpdateResult tryUpdate(VM &TheVM, const AppModel &App) {
  UpdateBundle B = Upt::prepare(App.version(2), App.version(3), "v107");
  UpdateOptions Opts;
  Opts.TimeoutTicks = 50'000;
  Updater U(TheVM);
  return U.applyNow(std::move(B), Opts);
}

int main() {
  AppModel App = makeCrossFtpApp();

  std::printf("scenario 1: busy server (long FTP sessions active)\n");
  {
    VM::Config Cfg;
    Cfg.HeapSpaceBytes = 16u << 20;
    VM TheVM(Cfg);
    TheVM.loadProgram(App.version(2)); // 1.07
    startCrossFtpThreads(TheVM);
    std::vector<int64_t> LongSession(400, 7);
    TheVM.injectConnection(FtpPort, LongSession, /*InterArrival=*/250);
    TheVM.run(2'000);

    UpdateResult R = tryUpdate(TheVM, App);
    std::printf("  update 1.07 -> 1.08: %s (%d return barrier(s) armed; "
                "handle() never left the stack)\n",
                updateStatusName(R.Status), R.ReturnBarriersInstalled);
  }

  std::printf("scenario 2: idle server (no session active)\n");
  {
    VM::Config Cfg;
    Cfg.HeapSpaceBytes = 16u << 20;
    VM TheVM(Cfg);
    TheVM.loadProgram(App.version(2));
    startCrossFtpThreads(TheVM);
    TheVM.run(2'000); // the accept loop parks waiting for clients

    UpdateResult R = tryUpdate(TheVM, App);
    std::printf("  update 1.07 -> 1.08: %s in %.2f ms\n",
                updateStatusName(R.Status), R.TotalPauseMs);
    if (R.Status != UpdateStatus::Applied)
      return 1;

    // New sessions run the updated handler.
    TheVM.injectConnection(FtpPort, {5});
    TheVM.run(10'000);
    for (const NetResponse &Resp : TheVM.net().drainResponses())
      std::printf("  new session served by v1.08: response %lld\n",
                  static_cast<long long>(Resp.Value));
  }
  return 0;
}
