//===----------------------------------------------------------------------===//
///
/// \file
/// Live-updating a web server under load (the paper's Jetty scenario).
///
/// Starts the Jetty model at version 5.1.5, drives httperf-style traffic,
/// applies the dynamic update to 5.1.6 without dropping the in-flight
/// sessions, and reports throughput before/after plus the update pause.
///
//===----------------------------------------------------------------------===//

#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "vm/VM.h"

#include <cstdio>

using namespace jvolve;

int main() {
  AppModel App = makeJettyApp();
  const size_t V515 = 5, V516 = 6;
  std::printf("booting %s...\n", App.versionName(V515).c_str());

  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(V515));
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  // Stay below saturation so latency reflects service time.
  LO.ConnectionsPerBatch = 1;
  LO.BatchInterval = 300;
  LO.JitterTicks = 10;
  LoadDriver Driver(TheVM, LO);

  LoadResult Before = Driver.measure(20'000);
  std::printf("v5.1.5 under load: %llu responses, %.1f resp/ktick, "
              "median latency %.0f ticks\n",
              static_cast<unsigned long long>(Before.Responses),
              Before.Throughput, Before.LatencyTicks.Median);

  std::printf("applying dynamic update 5.1.5 -> 5.1.6 (server stays "
              "up)...\n");
  Updater U(TheVM);
  UpdateResult R = U.applyNow(
      Upt::prepare(App.version(V515), App.version(V516), "v515"));
  std::printf("  %s: pause %.2f ms (classload %.2f, GC %.2f, "
              "transformers %.2f); %d barrier(s), %d safe-point "
              "attempt(s)\n",
              updateStatusName(R.Status), R.TotalPauseMs, R.ClassLoadMs,
              R.GcMs, R.TransformMs, R.ReturnBarriersInstalled,
              R.SafePointAttempts);
  if (R.Status != UpdateStatus::Applied)
    return 1;

  LoadResult After = Driver.measure(20'000);
  std::printf("v5.1.6 under load: %llu responses, %.1f resp/ktick, "
              "median latency %.0f ticks\n",
              static_cast<unsigned long long>(After.Responses),
              After.Throughput, After.LatencyTicks.Median);
  std::printf("requests served across the whole run: %lld (no session "
              "was dropped)\n",
              static_cast<long long>(
                  TheVM.callStatic("Stats", "served", "()I").IntVal));
  return 0;
}
