//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example, live: JavaEmailServer 1.3.1 -> 1.3.2.
///
/// The update changes User.forwardAddresses from String[] to
/// EmailAddress[] (Figure 2). The developer-customized object transformer
/// (Figure 3) splits each "user@domain" string into an EmailAddress — the
/// default transformer would have left the field null. Because the POP3
/// and SMTP processing loops reference the updated classes and never
/// return, the update is only possible thanks to on-stack replacement.
///
//===----------------------------------------------------------------------===//

#include "apps/EmailApp.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "vm/VM.h"

#include <cstdio>

using namespace jvolve;

int main() {
  AppModel App = makeEmailApp();
  const size_t V131 = 5, V132 = 6;
  std::printf("booting %s with live POP3 sessions...\n",
              App.versionName(V131).c_str());

  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(V131));
  startEmailThreads(TheVM);

  // A POP3 session stays open across the update.
  TheVM.injectConnection(Pop3Port, {100, 200, 300, 400},
                         /*InterArrival=*/3'000);
  TheVM.run(4'000);
  std::printf("responses before update: ");
  for (const NetResponse &R : TheVM.net().drainResponses())
    std::printf("%lld ", static_cast<long long>(R.Value));
  std::printf("\n");

  std::printf("applying 1.3.1 -> 1.3.2 (the Figure 2/3 update)...\n");
  UpdateBundle B =
      Upt::prepare(App.version(V131), App.version(V132), "v131");
  registerEmailTransformers(B, App, V132); // the Figure 3 jvolveObject
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  std::printf("  %s: %llu object(s) transformed, %d frame(s) replaced "
              "on-stack, pause %.2f ms\n",
              updateStatusName(R.Status),
              static_cast<unsigned long long>(R.ObjectsTransformed),
              R.OsrReplacements, R.TotalPauseMs);
  if (R.Status != UpdateStatus::Applied)
    return 1;

  // The same session continues against the updated server; the forward
  // count (now derived from EmailAddress[] objects) is still 1.
  TheVM.run(12'000);
  std::printf("responses after update (same session): ");
  for (const NetResponse &R2 : TheVM.net().drainResponses())
    std::printf("%lld ", static_cast<long long>(R2.Value));
  std::printf("\n");
  std::printf("the admin account's forwarded address survived the "
              "representation change.\n");
  return 0;
}
