//===----------------------------------------------------------------------===//
///
/// \file
/// Dynamic update of a program written in MiniVM assembly text: the whole
/// pipeline (parse -> verify -> run -> UPT diff -> transformer -> live
/// update) without a single C++ builder call.
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "vm/VM.h"

#include <cstdio>

using namespace jvolve;

/// Version 1: sessions are counted; the server replies with the request.
static const char *V1 = R"(
class Session {
  field id I
  method reply(I)I {
    load 1
    iret
  }
}
class Registry {
  static field current LSession;
  static method open(I)V locals 2 {
    new Session
    store 1
    load 1
    load 0
    putfield Session.id I
    load 1
    putstatic Registry.current LSession;
    ret
  }
  static method answer(I)I {
    getstatic Registry.current LSession;
    load 0
    invokevirtual Session.reply(I)I
    iret
  }
}
)";

/// Version 2: Session grows a hit counter and replies include it.
static const char *V2 = R"(
class Session {
  field id I
  field hits I
  method reply(I)I {
    load 0
    load 0
    getfield Session.hits I
    iconst 1
    iadd
    putfield Session.hits I
    load 1
    load 0
    getfield Session.hits I
    iconst 1000
    imul
    iadd
    iret
  }
}
class Registry {
  static field current LSession;
  static method open(I)V locals 2 {
    new Session
    store 1
    load 1
    load 0
    putfield Session.id I
    load 1
    putstatic Registry.current LSession;
    ret
  }
  static method answer(I)I {
    getstatic Registry.current LSession;
    load 0
    invokevirtual Session.reply(I)I
    iret
  }
}
)";

int main() {
  ClassSet Old = parseProgramOrDie(V1);
  ClassSet New = parseProgramOrDie(V2);

  VM TheVM((VM::Config()));
  TheVM.loadProgram(Old);
  TheVM.callStatic("Registry", "open", "(I)V", {Slot::ofInt(99)});
  std::printf("v1 answer(7) = %lld\n",
              static_cast<long long>(
                  TheVM.callStatic("Registry", "answer", "(I)I",
                                   {Slot::ofInt(7)})
                      .IntVal));

  UpdateBundle B = Upt::prepare(Old, New, "v1");
  std::printf("UPT: %zu class update(s); E&C-style systems %s apply "
              "this\n",
              B.Spec.ClassUpdates.size(),
              B.Spec.ClassUpdates.empty() ? "could" : "could NOT");
  // Seed the new hit counter from the live session's id parity, just to
  // show a custom transformer over an assembly-defined class.
  B.ObjectTransformers["Session"] = [](TransformCtx &Ctx, Ref To,
                                       Ref From) {
    Ctx.setInt(To, "id", Ctx.getInt(From, "id"));
    Ctx.setInt(To, "hits", Ctx.getInt(From, "id") % 2);
  };

  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B));
  std::printf("update: %s (%llu object transformed, %.2f ms pause)\n",
              updateStatusName(R.Status),
              static_cast<unsigned long long>(R.ObjectsTransformed),
              R.TotalPauseMs);
  if (R.Status != UpdateStatus::Applied)
    return 1;

  // Session 99 survived with hits seeded to 99 % 2 = 1, so the first
  // post-update reply is 7 + 2*1000.
  std::printf("v2 answer(7) = %lld (hit counter live-migrated)\n",
              static_cast<long long>(
                  TheVM.callStatic("Registry", "answer", "(I)I",
                                   {Slot::ofInt(7)})
                      .IntVal));
  return 0;
}
