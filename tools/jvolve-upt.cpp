//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-upt: the Update Preparation Tool as a command-line program
/// (paper §3.1). Diffs two program versions and prints the update
/// specification: class updates (with the subclass closure), method-body
/// updates, removed methods, indirect (category-(2)) methods, and the
/// Tables 2-4-style change summary.
///
///   jvolve-upt old.mvm new.mvm
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"
#include "dsu/EcUpdater.h"
#include "dsu/Upt.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace jvolve;

static ClassSet loadProgramFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "jvolve-upt: cannot open '%s'\n", Path);
    std::exit(2);
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  std::vector<AsmError> Errors;
  std::optional<ClassSet> Program = parseProgram(Text.str(), Errors);
  if (!Program) {
    for (const AsmError &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.str().c_str());
    std::exit(1);
  }
  return *Program;
}

static void printList(const char *Title,
                      const std::vector<std::string> &Names) {
  if (Names.empty())
    return;
  std::printf("%s:\n", Title);
  for (const std::string &N : Names)
    std::printf("  %s\n", N.c_str());
}

static void printRefs(const char *Title, const std::vector<MethodRef> &Refs) {
  if (Refs.empty())
    return;
  std::printf("%s:\n", Title);
  for (const MethodRef &R : Refs)
    std::printf("  %s\n", R.key().c_str());
}

int main(int argc, char **argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: jvolve-upt <old.mvm> <new.mvm>\n");
    return 2;
  }
  ClassSet Old = loadProgramFile(argv[1]);
  ClassSet New = loadProgramFile(argv[2]);

  // The new version must verify or no update can ever be built from it.
  ClassSet Verified = New;
  ensureBuiltins(Verified);
  std::vector<VerifyError> VErrs = Verifier(Verified).verifyAll();
  if (!VErrs.empty()) {
    std::fprintf(stderr, "new version fails verification:\n");
    for (const VerifyError &E : VErrs)
      std::fprintf(stderr, "  %s\n", E.str().c_str());
    return 1;
  }

  UpdateSpec Spec = Upt::computeSpec(Old, New);
  if (Spec.empty()) {
    std::printf("versions are identical; nothing to update\n");
    return 0;
  }

  printList("added classes", Spec.AddedClasses);
  printList("deleted classes", Spec.DeletedClasses);
  printList("class updates (direct)", Spec.DirectClassUpdates);
  printList("class updates (with subclass closure)", Spec.ClassUpdates);
  printRefs("method body updates", Spec.MethodBodyUpdates);
  printRefs("removed methods (restricted)", Spec.RemovedMethods);
  printRefs("indirect methods (category 2, recompiled)",
            Spec.IndirectMethods);

  const UpdateSummary &S = Spec.Summary;
  std::printf("\nsummary: classes +%d -%d ~%d | methods +%d -%d chg %s | "
              "fields +%d -%d\n",
              S.ClassesAdded, S.ClassesDeleted, S.ClassesChanged,
              S.MethodsAdded, S.MethodsDeleted,
              S.methodsChangedCell().c_str(), S.FieldsAdded,
              S.FieldsDeleted);
  std::printf("method-body-only systems (HotSwap/E&C) %s this update\n",
              EcUpdater::supports(S) ? "support" : "do NOT support");
  std::printf("default transformers: %zu object transformer(s), "
              "%zu class transformer(s) generated\n",
              Spec.ClassUpdates.size(), Spec.ClassUpdates.size());
  return 0;
}
