//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-serve: run one of the modeled servers through its entire release
/// history, live. Boots the base version under load, then applies every
/// release's dynamic update in sequence while traffic keeps flowing,
/// narrating each update with its trace — a command-line re-enactment of
/// the paper's §4 experience, including the updates that cannot be
/// applied.
///
///   jvolve-serve jetty|email|crossftp [--trace] [--stats] [--analyze]
///                [--lazy] [--codeversion] [--canary[=<ticks>]] [--revert]
///                [--trace-out <file>] [--metrics-out <file>]
///                [--inject <site>[:fire[:skip]][,<spec>...]] [--admit <N>]
///
/// --codeversion commits every strictly body-only release through the
/// per-method CodeVersionManager (dsu/CodeVersion.h): one atomic
/// active-version switch, no safe point, no DSU collection — each thread
/// picks the new bodies up at its next poll point while in-flight frames
/// finish on their old version. Releases with class-shape changes keep
/// taking the full pipeline. With --stats, the active-version table
/// (version chains, epoch, stale frames) prints after every update.
///
/// --lazy commits every update with lazy object transformation
/// (dsu/LazyTransform.h): the pause covers only the DSU collection and
/// commit; object transformers run on first touch behind the read barrier
/// while a background drainer settles the rest under live traffic. The
/// tool reports the shells pending at commit and, after load resumes, the
/// on-demand vs. background split until the barrier retires. Post-commit
/// transformer failures cannot roll back; they degrade the update and are
/// listed from the VM's lazy failure log before exit.
///
/// --analyze turns on the pre-update gate: the static update-safety
/// analyzer (dsu/Analysis.h) runs before each pause attempt and a
/// predicted-impossible update is refused with its report instead of
/// burning the timeout; the tool then retries with the operator mappings,
/// which the analyzer re-checks statically.
///
/// While an update attempt is in flight the server drains its network:
/// accepts are gated, in-flight connections run to request boundaries,
/// and --admit (default 16) caps the accept backlog — overflow
/// connections are shed with counted Rejected responses instead of
/// piling up behind the stalled pause. When a safe point cannot be
/// reached, the escalation ladder's rescue rung force-yields parked
/// threads and synthesizes identity stack maps for body-compatible
/// changed methods, and a timeout prints the quiescence report naming
/// the threads and frames that pinned the update.
///
/// --canary arms a post-commit observation window after each applied
/// update (default 20000 ticks, checked every 500): interpreter traps and
/// failed lazy transforms within the window trigger an automatic revert
/// through the normal safe-point + transformer pipeline, and the window's
/// report prints when it resolves. --revert triggers the revert
/// explicitly instead of waiting for a health breach — the operator's
/// "that release is bad, take it back" button. A reverted release leaves
/// the server on its previous version; subsequent releases are prepared
/// against it, as with any other failed update.
///
/// --inject arms one or more of the FaultInjector's named sites
/// (comma-separated site[:fire[:skip]] specs, the same syntax
/// JVOLVE_INJECT accepts) so failure paths can be watched live: rollback
/// during install, or (with canary-health-breach under --canary) an
/// automatic post-commit revert — and, with two specs, a nested fault
/// inside the recovery path the first one triggers. Every malformed
/// entry in the list is reported before the tool exits. The usage text
/// lists the current site names; FaultInjector::allSites() is the single
/// source of truth for the set.
///
/// --stats enables telemetry with windowed aggregation (5000-tick
/// windows) and issues an in-band stats request after boot and after
/// every update: a probe connection travels the same simulated network
/// path as client traffic, and when the server's response comes back the
/// per-window rate/p50/p99 table prints (support/TelemetryStream.h
/// WindowAggregator) together with the streaming pipeline's drop
/// accounting — the live stats surface the canary latency monitor also
/// reads its window means from. --trace-out streams JSONL trace events
/// (update phase spans and lifecycle events) to <file>, buffered through
/// per-thread lock-free buffers and a background session writer.
/// --metrics-out enables
/// telemetry and writes the final registry snapshot as JSON to <file> at
/// exit, the format scripts/metrics-diff.py consumes — so an eager and a
/// --lazy run of the same release history can be diffed and gated.
///
/// When an update cannot reach a safe point (the changed method never
/// leaves the stack), the tool retries once with the operator-supplied
/// active-method mappings (§3.5 extension), the way an operator armed
/// with UpStare-style stack maps would proceed.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Canary.h"
#include "dsu/CodeVersion.h"
#include "dsu/LazyTransform.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace jvolve;

namespace {

/// The operator's stack maps for the methods known to live forever on
/// the stack. The Jetty maps translate the 5.1.2-shaped bodies into the
/// 5.1.3-shaped ones; the JES run() bodies only ever gain trailing dead
/// code, so identity maps suffice.
void addOperatorMappings(UpdateBundle &B, const AppModel &App,
                         size_t TargetVersion) {
  if (App.name() == "jetty") {
    ActiveMethodMapping Accept;
    Accept.Method = {"ThreadedServer", "acceptSocket", "(I)I"};
    Accept.PcMap = {{0, 0}, {1, 1}, {2, 4}};
    B.addActiveMapping(std::move(Accept));
    ActiveMethodMapping Run;
    Run.Method = {"PoolThread", "run", "(I)V"};
    Run.PcMap = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 7}, {5, 8}};
    B.addActiveMapping(std::move(Run));
  } else if (App.name() == "javaemailserver") {
    const ClassSet &New = App.version(TargetVersion);
    B.addActiveMapping(ActiveMethodMapping::identity(
        {"Pop3Processor", "run", "(I)V"},
        New.find("Pop3Processor")->findMethod("run")->Code.size()));
    B.addActiveMapping(ActiveMethodMapping::identity(
        {"SMTPSender", "run", "()V"},
        New.find("SMTPSender")->findMethod("run")->Code.size()));
  } else {
    const ClassSet &New = App.version(TargetVersion);
    B.addActiveMapping(ActiveMethodMapping::identity(
        {"RequestHandler", "handle", "(I)V"},
        New.find("RequestHandler")->findMethod("handle")->Code.size()));
  }
}

/// Comma-separated list of every valid --inject site name.
std::string injectSiteList() {
  std::string Out;
  for (const std::string &Name : FaultInjector::allSiteNames()) {
    if (!Out.empty())
      Out += ", ";
    Out += Name;
  }
  return Out;
}

/// The in-band stats request: a probe connection is injected through the
/// same simulated network path as client traffic, and the VM runs until
/// the server's response to it comes back — so the view reflects a
/// server that has caught up with everything ahead of the probe. Prints
/// the windowed rate/p50/p99 table over recent windows plus the
/// streaming pipeline's drop accounting. \returns false when the server
/// never answered (e.g. every worker trapped).
bool serveStatsRequest(VM &TheVM, int Port) {
  int Conn = TheVM.injectConnection(Port, {1});
  for (int Round = 0; Round < 500; ++Round) {
    // Run first, drain second: a server that answers the probe and then
    // blocks again reports Idle on the same run() that produced the
    // response.
    bool Idle = TheVM.run(2'000).Idle;
    for (const NetResponse &R : TheVM.net().drainResponses())
      if (R.Conn == Conn) {
        Telemetry &Tel = Telemetry::global();
        WindowAggregator &W = Tel.windows();
        std::printf("stats @ tick %llu (%llu %llu-tick window(s)):\n%s",
                    static_cast<unsigned long long>(TheVM.scheduler().ticks()),
                    static_cast<unsigned long long>(W.windowsRolled()),
                    static_cast<unsigned long long>(W.windowTicks()),
                    W.table().c_str());
        if (Tel.hasStreamer()) {
          TelemetryStreamer &S = Tel.streamer();
          std::printf("  telemetry: %llu event(s) attempted, %llu streamed, "
                      "%llu dropped\n",
                      static_cast<unsigned long long>(S.attemptedTotal()),
                      static_cast<unsigned long long>(S.streamedTotal()),
                      static_cast<unsigned long long>(S.droppedTotal()));
        }
        return true;
      }
    if (Idle)
      break;
  }
  std::fprintf(stderr, "jvolve-serve: stats request got no response\n");
  return false;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: jvolve-serve jetty|email|crossftp [--trace] "
                 "[--stats] [--analyze] [--lazy] [--codeversion] "
                 "[--canary[=<ticks>]] "
                 "[--revert] [--trace-out <file>] "
                 "[--metrics-out <file>] "
                 "[--inject <site>[:fire[:skip]][,<spec>...]] "
                 "[--admit <N>]\n"
                 "  valid --inject sites: %s\n",
                 injectSiteList().c_str());
    return 2;
  }
  bool ShowTrace = false;
  bool ShowStats = false;
  bool AnalyzeFirst = false;
  bool LazyMode = false;
  bool CodeVersionMode = false;
  uint64_t CanaryTicks = 0; // 0 = no canary window
  bool WantRevert = false;
  const char *MetricsOut = nullptr;
  size_t AdmitLimit = 16;
  std::string InjectSpecs;
  for (int I = 2; I < argc; ++I) {
    if (std::strcmp(argv[I], "--trace") == 0) {
      ShowTrace = true;
    } else if (std::strcmp(argv[I], "--stats") == 0) {
      ShowStats = true;
      Telemetry::global().setEnabled(true);
      // Windowed aggregation feeds both the live table and the canary
      // latency monitor's per-window mean (dsu/Revert.cpp take()).
      Telemetry::global().windows().configure(5'000);
    } else if (std::strcmp(argv[I], "--analyze") == 0) {
      AnalyzeFirst = true;
    } else if (std::strcmp(argv[I], "--lazy") == 0) {
      LazyMode = true;
    } else if (std::strcmp(argv[I], "--codeversion") == 0) {
      CodeVersionMode = true;
    } else if (std::strncmp(argv[I], "--canary", 8) == 0 &&
               (argv[I][8] == '\0' || argv[I][8] == '=')) {
      CanaryTicks = argv[I][8] == '='
                        ? std::strtoull(argv[I] + 9, nullptr, 10)
                        : 20'000;
      if (CanaryTicks == 0) {
        std::fprintf(stderr, "jvolve-serve: --canary needs a nonzero tick "
                             "window\n");
        return 2;
      }
    } else if (std::strcmp(argv[I], "--revert") == 0) {
      WantRevert = true;
    } else if (std::strcmp(argv[I], "--metrics-out") == 0 && I + 1 < argc) {
      MetricsOut = argv[++I];
      Telemetry::global().setEnabled(true);
    } else if (std::strcmp(argv[I], "--trace-out") == 0 && I + 1 < argc) {
      if (!Telemetry::global().openTrace(argv[++I])) {
        std::fprintf(stderr, "jvolve-serve: cannot create trace file '%s'\n",
                     argv[I]);
        return 2;
      }
    } else if (std::strcmp(argv[I], "--inject") == 0 && I + 1 < argc) {
      InjectSpecs = argv[++I];
      // Validate the whole list up front on a scratch injector (the VM is
      // constructed later); report every bad entry, not just the first.
      FaultInjector Probe;
      std::vector<std::string> Errs;
      if (!Probe.armFromSpecList(InjectSpecs, &Errs)) {
        for (const std::string &E : Errs)
          std::fprintf(stderr, "jvolve-serve: bad --inject entry: %s\n",
                       E.c_str());
        std::fprintf(stderr, "  valid sites: %s\n", injectSiteList().c_str());
        return 2;
      }
    } else if (std::strcmp(argv[I], "--admit") == 0 && I + 1 < argc) {
      AdmitLimit = std::strtoull(argv[++I], nullptr, 10);
    } else {
      std::fprintf(stderr, "jvolve-serve: unknown argument '%s'\n", argv[I]);
      return 2;
    }
  }

  if (WantRevert && CanaryTicks == 0)
    CanaryTicks = 20'000; // --revert needs a window to revert out of

  AppModel App = std::strcmp(argv[1], "jetty") == 0 ? makeJettyApp()
                 : std::strcmp(argv[1], "email") == 0
                     ? makeEmailApp()
                     : makeCrossFtpApp();
  int Port = std::strcmp(argv[1], "jetty") == 0 ? JettyPort
             : std::strcmp(argv[1], "email") == 0 ? Pop3Port
                                                  : FtpPort;

  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(0));
  if (App.name() == "jetty")
    startJettyThreads(TheVM);
  else if (App.name() == "javaemailserver")
    startEmailThreads(TheVM);
  else
    startCrossFtpThreads(TheVM);

  if (!InjectSpecs.empty()) {
    TheVM.faults().armFromSpecList(InjectSpecs);
    std::printf("fault(s) armed: %s\n", InjectSpecs.c_str());
  }

  TheVM.net().setAdmissionLimit(Port, AdmitLimit);

  LoadDriver::Options LO;
  LO.Port = Port;
  LoadDriver Driver(TheVM, LO);
  std::printf("booted %s; serving...\n", App.versionName(0).c_str());
  LoadResult Warm = Driver.measure(10'000);
  std::printf("  throughput %.1f resp/ktick\n", Warm.Throughput);
  if (ShowStats)
    serveStatsRequest(TheVM, Port);

  size_t Version = 0; // currently running version index
  for (size_t V = 1; V < App.numVersions(); ++V) {
    // Updates are prepared against the *running* version: if an earlier
    // update failed, its changes fold into this diff, as a real operator
    // rolling releases forward would experience.
    std::printf("updating %s -> %s under load...\n",
                App.versionName(Version).c_str(),
                App.versionName(V).c_str());
    UpdateBundle B = Upt::prepare(App.version(Version), App.version(V),
                                  "v" + std::to_string(V - 1));
    if (App.name() == "javaemailserver")
      registerEmailTransformers(B, App, V);

    UpdateOptions Opts;
    Opts.TimeoutTicks = 120'000;
    // Production posture: rescue what can be rescued, and drain + shed
    // traffic while the safe point is sought.
    Opts.EnableRescue = true;
    Opts.DrainNetwork = true;
    Opts.AnalyzeFirst = AnalyzeFirst;
    Opts.LazyTransform = LazyMode;
    Opts.CodeVersioning = CodeVersionMode;
    if (CanaryTicks > 0) {
      Opts.CanaryWindow.WindowTicks = CanaryTicks;
      Opts.CanaryWindow.CheckIntervalTicks = 500;
      Opts.CanaryWindow.MaxTrapDelta = 0;
      Opts.CanaryWindow.MaxFailedTransforms = 0;
    }
    Updater U(TheVM);
    // Keep traffic flowing while the updater seeks a safe point.
    U.schedule(std::move(B), Opts);
    while (U.pending())
      Driver.runWithLoad(2'000);

    if (U.result().Status == UpdateStatus::TimedOut ||
        U.result().Status == UpdateStatus::RejectedByAnalysis) {
      if (U.result().Status == UpdateStatus::RejectedByAnalysis) {
        std::printf("%s", U.result().Analysis.table().c_str());
        std::printf("  analysis refused the update before any pause; "
                    "retrying with active-method mappings (§3.5)...\n");
      } else {
        if (U.result().Quiescence.diagnosed())
          std::printf("%s", U.result().Quiescence.str().c_str());
        std::printf("  timed out (changed method always on stack); "
                    "retrying with active-method mappings (§3.5)...\n");
      }
      UpdateBundle Retry = Upt::prepare(App.version(Version),
                                        App.version(V),
                                        "r" + std::to_string(V - 1));
      if (App.name() == "javaemailserver")
        registerEmailTransformers(Retry, App, V);
      addOperatorMappings(Retry, App, V);
      U.schedule(std::move(Retry), Opts);
      while (U.pending())
        Driver.runWithLoad(2'000);
    }
    const UpdateResult &R = U.result();
    size_t PriorVersion = Version;

    if (R.Status == UpdateStatus::Applied) {
      std::printf("  applied in %.2f ms (%d barrier(s), %d OSR, %llu "
                  "object(s) transformed)\n",
                  R.TotalPauseMs, R.ReturnBarriersInstalled,
                  R.OsrReplacements,
                  static_cast<unsigned long long>(R.ObjectsTransformed));
      if (R.LazyInstalled)
        std::printf("  committed lazily: %llu shell(s) untransformed, "
                    "draining behind the read barrier\n",
                    static_cast<unsigned long long>(R.LazyPendingAtCommit));
      if (R.CodeVersioned)
        std::printf("  committed through the code-version manager: %d "
                    "method body(ies), no safe point\n",
                    R.CodeVersionedMethods);
      Version = V;
    } else {
      std::printf("  %s — still serving %s\n",
                  updateStatusName(R.Status),
                  App.versionName(Version).c_str());
      if (R.RollbackMs > 0)
        std::printf("  rolled back in %.2f ms: %s\n", R.RollbackMs,
                    R.Message.c_str());
    }
    if (R.Quiescence.diagnosed() && R.Status != UpdateStatus::Applied)
      std::printf("  escalation resolved at rung '%s'\n",
                  quiescenceRungName(R.ResolvedRung));
    std::printf("  drain: %.2f ms, %llu request(s) shed, %llu total shed\n",
                R.DrainMs, static_cast<unsigned long long>(R.RequestsShed),
                static_cast<unsigned long long>(TheVM.net().shedTotal()));
    if (R.Certified) {
      if (R.CertificationProblems.empty())
        std::printf("  certified: heap and registry consistent (%.2f ms)\n",
                    R.CertifyMs);
      else {
        std::printf("  CERTIFICATION FAILED: %zu problem(s)\n",
                    R.CertificationProblems.size());
        for (const std::string &P : R.CertificationProblems)
          std::printf("    %s\n", P.c_str());
        return 1;
      }
    }
    if (ShowTrace)
      std::printf("%s", R.Trace.str().c_str());

    LoadResult After = Driver.measure(6'000);
    std::printf("  throughput %.1f resp/ktick\n", After.Throughput);
    if (auto *Engine =
            static_cast<LazyTransformEngine *>(TheVM.lazyEngine()))
      std::printf("  lazy drain: %llu on-demand + %llu background, "
                  "%zu pending%s\n",
                  static_cast<unsigned long long>(
                      Engine->onDemandTransforms()),
                  static_cast<unsigned long long>(
                      Engine->backgroundTransforms()),
                  Engine->pendingCount(),
                  Engine->retired() ? " (barrier retired)" : "");

    // Drive this release's canary window to a verdict before the next
    // release: healthy retirement, a health-triggered auto-revert, or the
    // operator's explicit --revert. The window may already have resolved
    // during the throughput measurement above (a breach on the first
    // check reverts within a few thousand ticks), so gate on CanaryArmed,
    // not on the window still being open.
    if (R.CanaryArmed) {
      auto *Ctl = static_cast<CanaryController *>(TheVM.canary());
      if (WantRevert && Ctl->windowOpen())
        Ctl->requestRevert("operator --revert");
      for (int Round = 0; Ctl->windowOpen() && Round < 2'000; ++Round)
        Driver.runWithLoad(2'000);
      std::printf("  %s\n", Ctl->report().str().c_str());
      if (Ctl->state() == CanaryState::Reverted) {
        Version = PriorVersion;
        std::printf("  serving %s again (revert pause %.2f ms)\n",
                    App.versionName(Version).c_str(),
                    Ctl->revertResult().TotalPauseMs);
      } else if (Ctl->state() == CanaryState::RevertFailed) {
        std::printf("  REVERT FAILED: %s\n",
                    Ctl->revertResult().Message.c_str());
        return 1;
      }
      LoadResult Settled = Driver.measure(6'000);
      std::printf("  throughput %.1f resp/ktick\n", Settled.Throughput);
    }
    if (ShowStats) {
      serveStatsRequest(TheVM, Port);
      if (auto *Versions =
              static_cast<CodeVersionManager *>(TheVM.codeVersions()))
        std::printf("%s", Versions->activeVersionTable().c_str());
    }
  }

  Telemetry::global().closeTrace(); // flush any buffered JSONL events
  if (MetricsOut) {
    std::FILE *F = std::fopen(MetricsOut, "w");
    if (!F) {
      std::fprintf(stderr, "jvolve-serve: cannot write metrics to '%s'\n",
                   MetricsOut);
      return 2;
    }
    std::fprintf(F, "%s\n", Telemetry::global().snapshot().json().c_str());
    std::fclose(F);
  }
  std::printf("final version: %s\n", App.versionName(Version).c_str());
  for (const std::string &F : TheVM.lazyFailureLog())
    std::printf("degraded lazy transform: %s\n", F.c_str());
  for (auto &T : TheVM.scheduler().threads())
    if (T->State == ThreadState::Trapped) {
      std::printf("thread %s trapped: %s\n", T->Name.c_str(),
                  T->TrapMessage.c_str());
      return 1;
    }
  return 0;
}
