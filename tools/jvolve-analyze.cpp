//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-analyze: the static update-safety analyzer as a command-line
/// program. Runs the dsu/Analysis.h passes — CHA call graph, restricted
/// safe-point closure, non-quiescence prediction, applicability verdict —
/// over an update and prints a table or JSON report.
///
///   jvolve-analyze <old.mvm> <new.mvm> [--entry Class.name(sig)R]... [--json]
///   jvolve-analyze --app jetty|email|crossftp|all [--check] [--json]
///
/// App mode replays the modeled release streams (Tables 2-4) and predicts
/// each update's applicability column; --check exits 1 when any prediction
/// drifts from the paper's expected verdict (used by scripts/tier1.sh).
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "asm/Assembler.h"
#include "bytecode/Builtins.h"
#include "dsu/Analysis.h"
#include "dsu/Upt.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace jvolve;

static ClassSet loadProgramFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "jvolve-analyze: cannot open '%s'\n", Path);
    std::exit(2);
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  std::vector<AsmError> Errors;
  std::optional<ClassSet> Program = parseProgram(Text.str(), Errors);
  if (!Program) {
    for (const AsmError &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.str().c_str());
    std::exit(1);
  }
  return *Program;
}

/// Thread entry methods of the modeled apps (what their benches and
/// jvolve-serve spawn).
static std::set<std::string> appEntryPoints(const std::string &App) {
  if (App == "jetty")
    return {"PoolThread.run(I)V"};
  if (App == "email")
    return {"Pop3Processor.run(I)V", "SMTPSender.run()V"};
  return {"FtpServer.run(I)V"}; // crossftp
}

static Applicability expectedVerdict(const Release &R) {
  if (!R.ExpectSupported)
    return Applicability::Impossible;
  if (R.NeedsOsr)
    return Applicability::NeedsOsr;
  return Applicability::Applicable;
}

/// Analyzes every release of \p App; prints one line (or JSON object) per
/// update. \returns the number of predictions that drift from the paper's
/// expected column when \p Check, else 0.
static int analyzeApp(const AppModel &App, const std::string &AppKey,
                      bool Check, bool Json, bool First) {
  int Drift = 0;
  AnalysisOptions Opts;
  Opts.EntryPoints = appEntryPoints(AppKey);
  for (size_t V = 1; V < App.numVersions(); ++V) {
    ClassSet Old = App.version(V - 1);
    ClassSet New = App.version(V);
    ensureBuiltins(Old);
    ensureBuiltins(New);
    UpdateSpec Spec = Upt::computeSpec(Old, New);

    UpdateAnalysis An(Old, New);
    AnalysisReport Rep = An.analyze(Spec, {}, Opts);
    Rep.VersionTag = App.name() + " " + App.versionName(V);

    const Release &Rel = App.release(V);
    Applicability Expected = expectedVerdict(Rel);
    bool Match = Rep.Verdict == Expected;
    if (!Match)
      ++Drift;

    if (Json) {
      if (!First || V > 1)
        std::printf(",\n");
      std::string Obj = Rep.json();
      // Splice the expectation into the report object.
      Obj.pop_back(); // '}'
      Obj += ",\"expected\":\"" +
             std::string(applicabilityName(Expected)) + "\",\"match\":" +
             (Match ? "true" : "false") + "}";
      std::printf("%s", Obj.c_str());
    } else {
      std::printf("%-24s %-10s expected %-10s %s  restricted %zu/%zu\n",
                  Rep.VersionTag.c_str(), applicabilityName(Rep.Verdict),
                  applicabilityName(Expected), Match ? " ok " : "DRIFT",
                  Rep.PreciseRestricted.size(),
                  Rep.ConservativeRestricted.size());
      if (Rep.Verdict != Applicability::Applicable)
        std::printf("%26s%s\n", "", Rep.Reason.c_str());
    }
    if (Check && !Match)
      std::fprintf(stderr,
                   "jvolve-analyze: %s predicted %s but Tables 2-4 say %s\n",
                   Rep.VersionTag.c_str(), applicabilityName(Rep.Verdict),
                   applicabilityName(Expected));
  }
  return Check ? Drift : 0;
}

static int runAppMode(const std::string &Which, bool Check, bool Json) {
  int Drift = 0;
  bool First = true;
  if (Json)
    std::printf("[");
  if (Which == "jetty" || Which == "all") {
    Drift += analyzeApp(makeJettyApp(), "jetty", Check, Json, First);
    First = false;
  }
  if (Which == "email" || Which == "all") {
    Drift += analyzeApp(makeEmailApp(), "email", Check, Json, First);
    First = false;
  }
  if (Which == "crossftp" || Which == "all") {
    Drift += analyzeApp(makeCrossFtpApp(), "crossftp", Check, Json, First);
    First = false;
  }
  if (Json)
    std::printf("]\n");
  if (First) {
    std::fprintf(stderr, "jvolve-analyze: unknown app '%s'\n", Which.c_str());
    return 2;
  }
  if (Drift) {
    std::fprintf(stderr,
                 "jvolve-analyze: %d prediction(s) drift from Tables 2-4\n",
                 Drift);
    return 1;
  }
  return 0;
}

int main(int argc, char **argv) {
  std::string App;
  bool Check = false, Json = false;
  std::set<std::string> Entries;
  std::vector<const char *> Files;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--app") && I + 1 < argc) {
      App = argv[++I];
    } else if (!std::strcmp(argv[I], "--check")) {
      Check = true;
    } else if (!std::strcmp(argv[I], "--json")) {
      Json = true;
    } else if (!std::strcmp(argv[I], "--entry") && I + 1 < argc) {
      Entries.insert(argv[++I]);
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "jvolve-analyze: unknown option '%s'\n", argv[I]);
      return 2;
    } else {
      Files.push_back(argv[I]);
    }
  }

  if (!App.empty())
    return runAppMode(App, Check, Json);

  if (Files.size() != 2) {
    std::fprintf(
        stderr,
        "usage: jvolve-analyze <old.mvm> <new.mvm> [--entry M]... [--json]\n"
        "       jvolve-analyze --app jetty|email|crossftp|all [--check] "
        "[--json]\n");
    return 2;
  }

  ClassSet Old = loadProgramFile(Files[0]);
  ClassSet New = loadProgramFile(Files[1]);
  ensureBuiltins(Old);
  ensureBuiltins(New);
  UpdateSpec Spec = Upt::computeSpec(Old, New);

  AnalysisOptions Opts;
  Opts.EntryPoints = Entries;
  UpdateAnalysis An(Old, New);
  AnalysisReport Rep = An.analyze(Spec, {}, Opts);
  Rep.VersionTag = std::string(Files[0]) + " -> " + Files[1];
  std::printf("%s\n", Json ? Rep.json().c_str() : Rep.table().c_str());
  return Rep.Verdict == Applicability::Impossible ? 1 : 0;
}
