//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-analyze: the static update-safety analyzer as a command-line
/// program. Runs the dsu/Analysis.h passes — CHA call graph, restricted
/// safe-point closure, flow-sensitive dataflow refinement, non-quiescence
/// prediction, applicability verdict — over an update and prints a table
/// or JSON report.
///
///   jvolve-analyze <old.mvm> <new.mvm> [--entry Class.name(sig)R]...
///                  [--json] [--synthesize] [--metrics-out <file>]
///   jvolve-analyze --app jetty|email|crossftp|all [--check] [--json]
///                  [--metrics-out <file>]
///   jvolve-analyze --synthesize --app ... [--check] [--json]
///   jvolve-analyze --impact --app ... [--check] [--json]
///
/// App mode replays the modeled release streams (Tables 2-4) and predicts
/// each update's applicability column; --check exits 1 when any prediction
/// drifts from the paper's expected verdict (used by scripts/tier1.sh).
///
/// --synthesize runs transformer synthesis (dsu/Synthesis.h) per release;
/// with --check it additionally applies every release twice on live VMs —
/// handwritten transformers vs synthesized — and exits 1 when the outcome
/// or certification differs.
///
/// --impact compares a full lazy drain against the impact-bounded drain
/// (bulk-settled untouched classes, partial certification) release by
/// release; with --check it exits 1 unless both reach the same certified
/// heap (identical status, certification, and per-class live census).
///
/// --metrics-out writes the telemetry snapshot (the same dsu.analysis.*
/// gauge names embedded in every --json report's "gauges" object, with
/// runtime summed across all analyzed streams) for scripts/metrics-diff.py.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/Evaluation.h"
#include "apps/JettyApp.h"
#include "asm/Assembler.h"
#include "bytecode/Builtins.h"
#include "dsu/Analysis.h"
#include "dsu/Synthesis.h"
#include "dsu/Upt.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace jvolve;

static ClassSet loadProgramFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "jvolve-analyze: cannot open '%s'\n", Path);
    std::exit(2);
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  std::vector<AsmError> Errors;
  std::optional<ClassSet> Program = parseProgram(Text.str(), Errors);
  if (!Program) {
    for (const AsmError &E : Errors)
      std::fprintf(stderr, "%s: %s\n", Path, E.str().c_str());
    std::exit(1);
  }
  return *Program;
}

/// Thread entry methods of the modeled apps (what their benches and
/// jvolve-serve spawn).
static std::set<std::string> appEntryPoints(const std::string &App) {
  if (App == "jetty")
    return {"PoolThread.run(I)V"};
  if (App == "email")
    return {"Pop3Processor.run(I)V", "SMTPSender.run()V"};
  return {"FtpServer.run(I)V"}; // crossftp
}

static Applicability expectedVerdict(const Release &R) {
  if (!R.ExpectSupported)
    return Applicability::Impossible;
  if (R.NeedsOsr)
    return Applicability::NeedsOsr;
  return Applicability::Applicable;
}

/// Whole-run accumulation for the dsu.analysis.* gauges: a single stream
/// sets them per release (last-wins); --app all publishes the totals so
/// the metrics file is stable under per-release noise (runtime especially).
struct GaugeTotals {
  size_t Conservative = 0;
  size_t Precise = 0;
  size_t Cha = 0;
  double RuntimeMs = 0;
  size_t Streams = 0;
  size_t StreamsShrunk = 0; ///< dataflow made precise < CHA-precise

  void add(const AnalysisReport &R) {
    Conservative += R.ConservativeRestricted.size();
    Precise += R.PreciseRestricted.size();
    Cha += R.PreciseRestrictedCha.size();
    RuntimeMs += R.RuntimeMs;
    ++Streams;
    if (R.PreciseRestricted.size() < R.PreciseRestrictedCha.size())
      ++StreamsShrunk;
  }

  void publish() const {
    if (!Telemetry::isEnabled())
      return;
    Telemetry &Tel = Telemetry::global();
    Tel.gauge(metrics::DsuAnalysisRestrictedConservative)
        .set(static_cast<int64_t>(Conservative));
    Tel.gauge(metrics::DsuAnalysisRestrictedPrecise)
        .set(static_cast<int64_t>(Precise));
    Tel.gauge(metrics::DsuAnalysisRestrictedCha)
        .set(static_cast<int64_t>(Cha));
    Tel.gauge(metrics::DsuAnalysisRestrictedDelta)
        .set(static_cast<int64_t>(Conservative - Precise));
    Tel.gauge(metrics::DsuAnalysisRuntimeMs)
        .set(static_cast<int64_t>(RuntimeMs + 0.5));
  }
};

/// Analyzes every release of \p App; prints one line (or JSON object) per
/// update. \returns the number of predictions that drift from the paper's
/// expected column when \p Check, else 0.
static int analyzeApp(const AppModel &App, const std::string &AppKey,
                      bool Check, bool Json, bool First, GaugeTotals &Totals) {
  int Drift = 0;
  AnalysisOptions Opts;
  Opts.EntryPoints = appEntryPoints(AppKey);
  for (size_t V = 1; V < App.numVersions(); ++V) {
    ClassSet Old = App.version(V - 1);
    ClassSet New = App.version(V);
    ensureBuiltins(Old);
    ensureBuiltins(New);
    UpdateSpec Spec = Upt::computeSpec(Old, New);

    UpdateAnalysis An(Old, New);
    AnalysisReport Rep = An.analyze(Spec, {}, Opts);
    // Runtime-budget stability: re-measure several times and publish the
    // accumulated runtime. Summing ~150 samples across the suite averages
    // scheduler jitter down far enough that the tier1 +50% budget gate
    // never trips on noise, while a real algorithmic regression still
    // scales the total.
    for (int T = 0; T < 6; ++T)
      Rep.RuntimeMs += An.analyze(Spec, {}, Opts).RuntimeMs;
    Rep.VersionTag = App.name() + " " + App.versionName(V);
    recordAnalysisMetrics(Rep);
    Totals.add(Rep);

    const Release &Rel = App.release(V);
    Applicability Expected = expectedVerdict(Rel);
    bool Match = Rep.Verdict == Expected;
    if (!Match)
      ++Drift;

    if (Json) {
      if (!First || V > 1)
        std::printf(",\n");
      std::string Obj = Rep.json();
      // Splice the expectation into the report object.
      Obj.pop_back(); // '}'
      Obj += ",\"expected\":\"" +
             std::string(applicabilityName(Expected)) + "\",\"match\":" +
             (Match ? "true" : "false") + "}";
      std::printf("%s", Obj.c_str());
    } else {
      std::printf("%-24s %-10s expected %-10s %s  restricted %zu/%zu/%zu\n",
                  Rep.VersionTag.c_str(), applicabilityName(Rep.Verdict),
                  applicabilityName(Expected), Match ? " ok " : "DRIFT",
                  Rep.PreciseRestricted.size(),
                  Rep.PreciseRestrictedCha.size(),
                  Rep.ConservativeRestricted.size());
      if (Rep.Verdict != Applicability::Applicable)
        std::printf("%26s%s\n", "", Rep.Reason.c_str());
    }
    if (Check && !Match)
      std::fprintf(stderr,
                   "jvolve-analyze: %s predicted %s but Tables 2-4 say %s\n",
                   Rep.VersionTag.c_str(), applicabilityName(Rep.Verdict),
                   applicabilityName(Expected));
  }
  return Check ? Drift : 0;
}

/// Splices `"version": "<tag>"` into the front of a report JSON object.
static std::string withVersion(std::string Obj, const std::string &Tag) {
  size_t Brace = Obj.find('{');
  if (Brace != std::string::npos)
    Obj.insert(Brace + 1, "\n  \"version\": \"" + Tag + "\",");
  return Obj;
}

/// Synthesizes transformers for every release of \p App. With \p Check,
/// applies each release twice on live VMs (handwritten vs synthesized
/// transformers) and counts outcome/certification mismatches.
static int synthesizeApp(const AppModel &App, bool Check, bool Json,
                         bool First) {
  int Bad = 0;
  for (size_t V = 1; V < App.numVersions(); ++V) {
    ClassSet Old = App.version(V - 1);
    ClassSet New = App.version(V);
    ensureBuiltins(Old);
    ensureBuiltins(New);
    UpdateSpec Spec = Upt::computeSpec(Old, New);

    TransformerSynthesis Synthesis(Old, New);
    SynthesisReport Rep = Synthesis.synthesize(Spec);
    recordSynthesisMetrics(Rep);
    std::string Tag = App.name() + " " + App.versionName(V);

    bool Match = true;
    std::string CheckNote;
    if (Check) {
      EvalOptions Hand;
      ReleaseOutcome OH = evaluateRelease(App, V, Hand);
      EvalOptions Syn;
      Syn.Transformers = TransformerMode::Synthesized;
      ReleaseOutcome OS = evaluateRelease(App, V, Syn);
      Match = OH.Result.Status == OS.Result.Status &&
              OH.Result.Certified == OS.Result.Certified &&
              OH.AppliedWhenIdle == OS.AppliedWhenIdle;
      CheckNote = std::string("handwritten ") +
                  updateStatusName(OH.Result.Status) +
                  (OH.Result.Certified ? "/certified" : "/uncertified") +
                  " synthesized " + updateStatusName(OS.Result.Status) +
                  (OS.Result.Certified ? "/certified" : "/uncertified");
      if (!Match) {
        ++Bad;
        std::fprintf(stderr, "jvolve-analyze: %s synthesized drift: %s\n",
                     Tag.c_str(), CheckNote.c_str());
      }
    }

    if (Json) {
      if (!First || V > 1)
        std::printf(",\n");
      std::string Obj = withVersion(Rep.json(), Tag);
      if (Check) {
        // Splice the comparison verdict into the report object.
        size_t End = Obj.rfind('}');
        Obj.insert(End, std::string(",\n  \"certify_match\": ") +
                            (Match ? "true" : "false") + "\n");
      }
      std::printf("%s", Obj.c_str());
    } else {
      std::printf("%-24s copies %-3zu renames %-2zu flagged %-2zu "
                  "untouched %-2zu impact %-3zu%s%s\n",
                  Tag.c_str(), Rep.NumCopies, Rep.NumRenames, Rep.NumFlagged,
                  Rep.UntouchedClasses.size(), Rep.ImpactClasses.size(),
                  Check ? (Match ? "  ok " : "  DRIFT ") : "",
                  CheckNote.c_str());
      for (const std::string &F : Rep.flaggedFields())
        std::printf("%26sneeds a human rule: %s\n", "", F.c_str());
    }
  }
  return Check ? Bad : 0;
}

/// Compares a full lazy drain against the impact-bounded drain for every
/// release of \p App: both configurations run the same virtual-time drain
/// window, then the engine state, an unfiltered certification, and the
/// per-class live census must agree.
static int impactApp(const AppModel &App, bool Check, bool Json, bool First) {
  int Bad = 0;
  for (size_t V = 1; V < App.numVersions(); ++V) {
    EvalOptions Full;
    Full.Lazy = true;
    Full.DrainFully = true;
    ReleaseOutcome OF = evaluateRelease(App, V, Full);

    EvalOptions Bounded = Full;
    Bounded.ImpactBounded = true;
    ReleaseOutcome OB = evaluateRelease(App, V, Bounded);

    std::string Tag = App.name() + " " + App.release(V).Name;
    bool Match = OF.Result.Status == OB.Result.Status &&
                 OF.Result.Certified == OB.Result.Certified &&
                 OF.Drained == OB.Drained &&
                 OF.PostDrainCertified == OB.PostDrainCertified &&
                 OF.HeapCensus == OB.HeapCensus;
    if (!Match)
      ++Bad;

    if (Json) {
      if (!First || V > 1)
        std::printf(",\n");
      std::printf("{\"version\": \"%s\", \"status\": \"%s\", "
                  "\"full_transformed\": %llu, \"bounded_transformed\": %llu, "
                  "\"bulk_settled\": %llu, \"census_classes\": %zu, "
                  "\"match\": %s}",
                  Tag.c_str(), updateStatusName(OF.Result.Status),
                  static_cast<unsigned long long>(OF.LazyTransformed),
                  static_cast<unsigned long long>(OB.LazyTransformed),
                  static_cast<unsigned long long>(OB.BulkSettled),
                  OF.HeapCensus.size(), Match ? "true" : "false");
    } else {
      std::printf("%-24s %-12s full %-4llu bounded %-4llu settled %-4llu "
                  "census %-3zu %s\n",
                  Tag.c_str(), updateStatusName(OF.Result.Status),
                  static_cast<unsigned long long>(OF.LazyTransformed),
                  static_cast<unsigned long long>(OB.LazyTransformed),
                  static_cast<unsigned long long>(OB.BulkSettled),
                  OF.HeapCensus.size(), Match ? "ok" : "DRIFT");
    }
    if (Check && !Match)
      std::fprintf(stderr,
                   "jvolve-analyze: %s impact-bounded drain diverged from "
                   "the full drain\n",
                   Tag.c_str());
  }
  return Check ? Bad : 0;
}

enum class Mode { Analyze, Synthesize, Impact };

static int runAppMode(const std::string &Which, Mode M, bool Check, bool Json,
                      GaugeTotals &Totals) {
  int Bad = 0;
  bool First = true;
  if (Json)
    std::printf("[");
  auto RunOne = [&](const AppModel &App, const std::string &Key) {
    switch (M) {
    case Mode::Analyze:
      Bad += analyzeApp(App, Key, Check, Json, First, Totals);
      break;
    case Mode::Synthesize:
      Bad += synthesizeApp(App, Check, Json, First);
      break;
    case Mode::Impact:
      Bad += impactApp(App, Check, Json, First);
      break;
    }
    First = false;
  };
  if (Which == "jetty" || Which == "all")
    RunOne(makeJettyApp(), "jetty");
  if (Which == "email" || Which == "all")
    RunOne(makeEmailApp(), "email");
  if (Which == "crossftp" || Which == "all")
    RunOne(makeCrossFtpApp(), "crossftp");
  if (Json)
    std::printf("]\n");
  if (First) {
    std::fprintf(stderr, "jvolve-analyze: unknown app '%s'\n", Which.c_str());
    return 2;
  }
  if (Bad) {
    const char *What = M == Mode::Analyze ? "prediction(s) drift from "
                                            "Tables 2-4"
                       : M == Mode::Synthesize
                           ? "release(s) where synthesized transformers "
                             "do not certify like handwritten"
                           : "release(s) where the impact-bounded drain "
                             "diverged";
    std::fprintf(stderr, "jvolve-analyze: %d %s\n", Bad, What);
    return 1;
  }
  return 0;
}

static int writeMetrics(const char *Path) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "jvolve-analyze: cannot write metrics to '%s'\n",
                 Path);
    return 2;
  }
  std::fprintf(F, "%s\n", Telemetry::global().snapshot().json().c_str());
  std::fclose(F);
  return 0;
}

int main(int argc, char **argv) {
  std::string App;
  Mode M = Mode::Analyze;
  bool Check = false, Json = false;
  const char *MetricsOut = nullptr;
  std::set<std::string> Entries;
  std::vector<const char *> Files;

  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--app") && I + 1 < argc) {
      App = argv[++I];
    } else if (!std::strcmp(argv[I], "--check")) {
      Check = true;
    } else if (!std::strcmp(argv[I], "--json")) {
      Json = true;
    } else if (!std::strcmp(argv[I], "--synthesize")) {
      M = Mode::Synthesize;
    } else if (!std::strcmp(argv[I], "--impact")) {
      M = Mode::Impact;
    } else if (!std::strcmp(argv[I], "--metrics-out") && I + 1 < argc) {
      MetricsOut = argv[++I];
    } else if (!std::strcmp(argv[I], "--entry") && I + 1 < argc) {
      Entries.insert(argv[++I]);
    } else if (argv[I][0] == '-') {
      std::fprintf(stderr, "jvolve-analyze: unknown option '%s'\n", argv[I]);
      return 2;
    } else {
      Files.push_back(argv[I]);
    }
  }

  if (MetricsOut)
    Telemetry::global().setEnabled(true);

  GaugeTotals Totals;
  if (!App.empty()) {
    int RC = runAppMode(App, M, Check, Json, Totals);
    if (MetricsOut && RC != 2) {
      Totals.publish();
      if (int MRC = writeMetrics(MetricsOut))
        return MRC;
    }
    return RC;
  }

  if (Files.size() != 2) {
    std::fprintf(
        stderr,
        "usage: jvolve-analyze <old.mvm> <new.mvm> [--entry M]... [--json]\n"
        "       jvolve-analyze [--synthesize|--impact] --app "
        "jetty|email|crossftp|all [--check] [--json] [--metrics-out F]\n");
    return 2;
  }

  ClassSet Old = loadProgramFile(Files[0]);
  ClassSet New = loadProgramFile(Files[1]);
  ensureBuiltins(Old);
  ensureBuiltins(New);
  UpdateSpec Spec = Upt::computeSpec(Old, New);

  if (M == Mode::Synthesize) {
    TransformerSynthesis Synthesis(Old, New);
    SynthesisReport Rep = Synthesis.synthesize(Spec);
    recordSynthesisMetrics(Rep);
    std::printf("%s\n", Json ? Rep.json().c_str() : Rep.table().c_str());
    if (MetricsOut)
      if (int MRC = writeMetrics(MetricsOut))
        return MRC;
    return 0;
  }

  AnalysisOptions Opts;
  Opts.EntryPoints = Entries;
  UpdateAnalysis An(Old, New);
  AnalysisReport Rep = An.analyze(Spec, {}, Opts);
  Rep.VersionTag = std::string(Files[0]) + " -> " + Files[1];
  recordAnalysisMetrics(Rep);
  Totals.add(Rep);
  std::printf("%s\n", Json ? Rep.json().c_str() : Rep.table().c_str());
  if (MetricsOut) {
    Totals.publish();
    if (int MRC = writeMetrics(MetricsOut))
      return MRC;
  }
  return Rep.Verdict == Applicability::Impossible ? 1 : 0;
}
