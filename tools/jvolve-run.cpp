//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-run: load a MiniVM assembly program and execute it.
///
///   jvolve-run [--verify-heap] [--metrics[=json|table]] [--codeversion]
///              [--trace-out <file>] [--stats-window[=TICKS]]
///              [--inject <site>[:fire[:skip]][,<spec>...]]
///              program.mvm [Class.method] [ints...]
///
/// The entry point defaults to Main.main()V; an explicit entry point may
/// take int parameters supplied on the command line. Prints the program's
/// output (print_int / print_str intrinsics) and the entry method's return
/// value, then exits non-zero if any thread trapped. --verify-heap runs
/// the heap verifier and registry-consistency check after execution and
/// fails the run on any violation. --metrics enables telemetry and dumps
/// the registry snapshot at exit (table by default, JSON with =json);
/// --trace-out enables telemetry and streams JSONL trace events to <file>;
/// --stats-window enables windowed event-counter aggregation (default
/// 5000-tick windows) and dumps the per-window rate/percentile table at
/// exit — the offline twin of `jvolve-serve --stats`. --inject arms one
/// or more FaultInjector sites (comma-separated site[:fire[:skip]] specs,
/// the same syntax JVOLVE_INJECT accepts); every malformed entry in the
/// list is reported before the tool exits. --codeversion installs the
/// per-method CodeVersionManager (dsu/CodeVersion.h) on the VM and prints
/// its active-version table at exit — the tool never applies updates, so
/// the table shows the v0 baseline unless the program's own machinery
/// installs versions.
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "bytecode/Verifier.h"
#include "dsu/CodeVersion.h"
#include "heap/HeapVerifier.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace jvolve;

static std::string readFile(const char *Path) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "jvolve-run: cannot open '%s'\n", Path);
    std::exit(2);
  }
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

int main(int argc, char **argv) {
  bool VerifyHeap = false;
  bool CodeVersion = false;
  enum class MetricsMode { Off, Table, Json } Metrics = MetricsMode::Off;
  uint64_t StatsWindowTicks = 0;
  std::string InjectSpecs;

  while (argc >= 2 && std::strncmp(argv[1], "--", 2) == 0) {
    std::string Flag = argv[1];
    if (Flag == "--verify-heap") {
      VerifyHeap = true;
    } else if (Flag == "--codeversion") {
      CodeVersion = true;
    } else if (Flag == "--metrics" || Flag == "--metrics=table") {
      Metrics = MetricsMode::Table;
    } else if (Flag == "--metrics=json") {
      Metrics = MetricsMode::Json;
    } else if (Flag == "--stats-window" ||
               Flag.rfind("--stats-window=", 0) == 0) {
      StatsWindowTicks = 5000;
      if (Flag.size() > std::strlen("--stats-window=")) {
        long long N = std::atoll(Flag.c_str() + std::strlen("--stats-window="));
        if (N <= 0) {
          std::fprintf(stderr,
                       "jvolve-run: --stats-window needs a positive tick "
                       "count\n");
          return 2;
        }
        StatsWindowTicks = static_cast<uint64_t>(N);
      }
    } else if (Flag == "--inject") {
      if (argc < 3) {
        std::fprintf(stderr, "jvolve-run: --inject requires a spec list\n");
        return 2;
      }
      InjectSpecs = argv[2];
      // Validate the whole list up front on a scratch injector (the VM is
      // constructed later); report every bad entry, not just the first.
      FaultInjector Probe;
      std::vector<std::string> Errs;
      if (!Probe.armFromSpecList(InjectSpecs, &Errs)) {
        for (const std::string &E : Errs)
          std::fprintf(stderr, "jvolve-run: bad --inject entry: %s\n",
                       E.c_str());
        return 2;
      }
      --argc;
      ++argv;
    } else if (Flag == "--trace-out") {
      if (argc < 3) {
        std::fprintf(stderr, "jvolve-run: --trace-out requires a file\n");
        return 2;
      }
      if (!Telemetry::global().openTrace(argv[2])) {
        std::fprintf(stderr, "jvolve-run: cannot create trace file '%s'\n",
                     argv[2]);
        return 2;
      }
      --argc;
      ++argv;
    } else {
      std::fprintf(stderr, "jvolve-run: unknown flag '%s'\n", Flag.c_str());
      return 2;
    }
    --argc;
    ++argv;
  }
  if (Metrics != MetricsMode::Off)
    Telemetry::global().setEnabled(true);
  if (StatsWindowTicks > 0) {
    Telemetry::global().setEnabled(true);
    Telemetry::global().windows().configure(StatsWindowTicks);
  }

  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: jvolve-run [--verify-heap] [--metrics[=json|table]] "
                 "[--codeversion] "
                 "[--trace-out <file>] [--stats-window[=TICKS]] "
                 "[--inject <site>[:fire[:skip]][,<spec>...]] "
                 "<program.mvm> [Class.method] [ints]\n");
    return 2;
  }

  std::vector<AsmError> Errors;
  std::optional<ClassSet> Program = parseProgram(readFile(argv[1]), Errors);
  if (!Program) {
    for (const AsmError &E : Errors)
      std::fprintf(stderr, "%s: %s\n", argv[1], E.str().c_str());
    return 1;
  }

  std::string Cls = "Main", Method = "main";
  if (argc >= 3) {
    std::string Entry = argv[2];
    size_t Dot = Entry.find('.');
    if (Dot == std::string::npos) {
      std::fprintf(stderr, "jvolve-run: entry must be Class.method\n");
      return 2;
    }
    Cls = Entry.substr(0, Dot);
    Method = Entry.substr(Dot + 1);
  }
  std::vector<Slot> Args;
  for (int I = 3; I < argc; ++I)
    Args.push_back(Slot::ofInt(std::atoll(argv[I])));

  VM TheVM((VM::Config()));
  if (!InjectSpecs.empty())
    TheVM.faults().armFromSpecList(InjectSpecs);
  TheVM.loadProgram(*Program); // verifies; aborts with diagnostics on error

  // Find the entry signature: (I...)V or (I...)I with argc-3 parameters.
  std::string Params(Args.size(), 'I');
  ClassId Id = TheVM.registry().idOf(Cls);
  if (Id == InvalidClassId) {
    std::fprintf(stderr, "jvolve-run: no class '%s'\n", Cls.c_str());
    return 1;
  }
  std::string Sig;
  for (const char *Ret : {"V", "I"}) {
    std::string Candidate = "(" + Params + ")" + Ret;
    if (TheVM.registry().resolveMethod(Id, Method, Candidate) !=
        InvalidMethodId) {
      Sig = Candidate;
      break;
    }
  }
  if (Sig.empty()) {
    std::fprintf(stderr, "jvolve-run: no method %s.%s taking %zu int(s)\n",
                 Cls.c_str(), Method.c_str(), Args.size());
    return 1;
  }

  if (CodeVersion)
    CodeVersionManager::of(TheVM); // installs the manager on the VM

  ThreadId Main = TheVM.spawnThread(Cls, Method, Sig, Args, "main");
  TheVM.runToCompletion();

  for (const std::string &Line : TheVM.printLog())
    std::printf("%s\n", Line.c_str());

  if (VerifyHeap) {
    HeapVerifier HV(TheVM.heap(), TheVM.registry());
    std::vector<std::string> Problems = HV.verify(
        [&TheVM](const std::function<void(Ref &)> &Visit) {
          TheVM.visitRoots(Visit);
        });
    for (const std::string &P : TheVM.registry().checkConsistency())
      Problems.push_back("registry: " + P);
    if (!Problems.empty()) {
      for (const std::string &P : Problems)
        std::fprintf(stderr, "heap-verify: %s\n", P.c_str());
      return 1;
    }
    std::printf("heap-verify: ok\n");
  }

  if (Metrics == MetricsMode::Json)
    std::printf("%s\n", Telemetry::global().snapshot().json().c_str());
  else if (Metrics == MetricsMode::Table)
    std::printf("%s", Telemetry::global().snapshot().table().c_str());
  if (StatsWindowTicks > 0) {
    // Close the final (possibly partial) window so short programs still
    // show their activity, then print the per-window view.
    WindowAggregator &W = Telemetry::global().windows();
    W.roll(TheVM.scheduler().ticks());
    std::printf("stats-window: %llu-tick windows, %llu rolled\n",
                static_cast<unsigned long long>(W.windowTicks()),
                static_cast<unsigned long long>(W.windowsRolled()));
    std::printf("%s", W.table().c_str());
  }
  if (CodeVersion)
    std::printf("%s", CodeVersionManager::of(TheVM)
                          .activeVersionTable()
                          .c_str());
  Telemetry::global().closeTrace(); // drain + flush the streaming session

  VMThread *T = TheVM.scheduler().findThread(Main);
  if (T->State == ThreadState::Trapped) {
    std::fprintf(stderr, "trap: %s\n", T->TrapMessage.c_str());
    return 1;
  }
  if (T->HasExitValue)
    std::printf("=> %lld\n", static_cast<long long>(T->ExitValue.IntVal));
  return 0;
}
