//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-dis: parse a MiniVM assembly program and re-emit it in canonical
/// form (a disassembler/normalizer; also a handy syntax checker).
///
///   jvolve-dis program.mvm [--verify]
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "asm/AsmWriter.h"
#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace jvolve;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: jvolve-dis <program.mvm> [--verify]\n");
    return 2;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "jvolve-dis: cannot open '%s'\n", argv[1]);
    return 2;
  }
  std::ostringstream Text;
  Text << In.rdbuf();

  std::vector<AsmError> Errors;
  std::optional<ClassSet> Program = parseProgram(Text.str(), Errors);
  if (!Program) {
    for (const AsmError &E : Errors)
      std::fprintf(stderr, "%s: %s\n", argv[1], E.str().c_str());
    return 1;
  }

  if (argc >= 3 && std::strcmp(argv[2], "--verify") == 0) {
    ClassSet Verified = *Program;
    ensureBuiltins(Verified);
    std::vector<VerifyError> VErrs = Verifier(Verified).verifyAll();
    if (!VErrs.empty()) {
      for (const VerifyError &E : VErrs)
        std::fprintf(stderr, "%s: %s\n", argv[1], E.str().c_str());
      return 1;
    }
  }

  std::printf("%s", writeProgramAsm(*Program).c_str());
  return 0;
}
