//===----------------------------------------------------------------------===//
///
/// \file
/// jvolve-chaos: exhaustive fault-space chaos campaigns over the modeled
/// servers, judged by the invariant oracle suite.
///
///   jvolve-chaos [--first-order] [--second-order]
///                [--streams email,jetty,crossftp] [--lazy] [--canary]
///                [--budget <N>] [--check] [--json] [--no-shrink]
///                [--metrics-out <file>]
///                [--warm <ticks>] [--settle <ticks>] [--requests <N>]
///   jvolve-chaos --repro --stream <s> [--lazy] [--canary] [--codeversion]
///                [--warm <ticks>] [--settle <ticks>] [--requests <N>]
///                [--inject <site>[:fire[:skip]][,<spec>...]]
///
/// A campaign first runs each (stream, mode) combination clean, recording
/// how many times every FaultInjector site is probed. First-order mode
/// then re-runs the scenario once per (site, fire-index) pair so each
/// individual probe point fails exactly once; second-order mode arms a
/// trigger that opens a recovery path (rollback, canary revert, lazy
/// drain) and sweeps a nested fault across the window after the trigger's
/// first firing. Every execution is judged by the standard oracle suite
/// (heap certification, program-state equivalence, terminal statuses,
/// phase tiling, residual/pending objects, undo-log roots, telemetry
/// ledger balance); every violation is shrunk while it still reproduces
/// and reported with a ready-to-paste `--repro` command line.
///
/// The default matrix is eager commits with the canary window off —
/// --lazy and --canary widen the mode axes rather than replacing them.
/// --budget caps faulted executions; enumeration order is deterministic,
/// so a bounded run is a stable prefix of the full campaign (skipped
/// points are counted, never silently dropped). --check exits non-zero
/// when any oracle violation survived or an attempted probe point's
/// fault failed to fire (coverage below 100%). --json prints only the
/// machine-readable report; --metrics-out writes the telemetry snapshot
/// (including the fault.coverage.{probes,covered} gauges) in the format
/// scripts/metrics-diff.py gates on.
///
/// Scenarios run on fresh VMs under virtual time with fixed seeds, so a
/// campaign is bit-identical across runs — the reproducibility the
/// recording mode depends on.
///
//===----------------------------------------------------------------------===//

#include "support/ChaosCampaign.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace jvolve;

namespace {

void usage() {
  std::string Sites;
  for (const std::string &Name : FaultInjector::allSiteNames()) {
    if (!Sites.empty())
      Sites += ", ";
    Sites += Name;
  }
  std::fprintf(
      stderr,
      "usage: jvolve-chaos [--first-order] [--second-order]\n"
      "                    [--streams email,jetty,crossftp] [--lazy] "
      "[--canary]\n"
      "                    [--budget <N>] [--check] [--json] [--no-shrink]\n"
      "                    [--metrics-out <file>]\n"
      "                    [--warm <ticks>] [--settle <ticks>] "
      "[--requests <N>] [--version <V>]\n"
      "       jvolve-chaos --repro --stream <s> [--lazy] [--canary] "
      "[--codeversion]\n"
      "                    [--warm <ticks>] [--settle <ticks>] "
      "[--requests <N>]\n"
      "                    [--inject <site>[:fire[:skip]][,<spec>...]]\n"
      "  fault sites: %s\n",
      Sites.c_str());
}

std::vector<std::string> splitList(const std::string &S) {
  std::vector<std::string> Out;
  size_t Pos = 0;
  while (Pos <= S.size()) {
    size_t Comma = S.find(',', Pos);
    size_t End = Comma == std::string::npos ? S.size() : Comma;
    if (End > Pos)
      Out.push_back(S.substr(Pos, End - Pos));
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Out;
}

int runRepro(const ScenarioSpec &Spec) {
  auto Oracles = standardOracles();
  std::printf("repro: %s\n", Spec.str().c_str());
  ScenarioResult Res = runScenario(Spec, Oracles);
  std::printf("  status: %s", updateStatusName(Res.Status));
  if (!Res.Message.empty())
    std::printf(" (%s)", Res.Message.c_str());
  std::printf("\n");
  if (!Res.CanaryState.empty())
    std::printf("  canary: %s\n", Res.CanaryState.c_str());
  for (FaultInjector::Site S : FaultInjector::allSites()) {
    size_t I = static_cast<size_t>(S);
    if (Res.Probes[I] == 0 && Res.Fires[I] == 0)
      continue;
    std::printf("  %s %s: %llu probe(s), %llu fire(s)",
                Res.Fires[I] > 0 ? "fired " : "probed",
                FaultInjector::siteName(S),
                static_cast<unsigned long long>(Res.Probes[I]),
                static_cast<unsigned long long>(Res.Fires[I]));
    if (Res.AnyFired && Res.ProbesAtFirstFire[I] != Res.Probes[I])
      std::printf(" (%llu before the first firing)",
                  static_cast<unsigned long long>(Res.ProbesAtFirstFire[I]));
    std::printf("\n");
  }
  if (Res.ok()) {
    std::printf("  oracles: all invariants hold\n");
    return 0;
  }
  for (const std::string &V : Res.Violations)
    std::printf("  VIOLATION %s\n", V.c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  CampaignOptions Opts;
  bool Check = false;
  bool Json = false;
  bool Repro = false;
  bool ExplicitOrder = false;
  const char *MetricsOut = nullptr;
  ScenarioSpec ReproSpec;
  std::string ReproInject;

  for (int I = 1; I < argc; ++I) {
    std::string Flag = argv[I];
    auto NeedValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "jvolve-chaos: %s requires a value\n",
                     Flag.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (Flag == "--first-order") {
      if (!ExplicitOrder)
        Opts.SecondOrder = false;
      Opts.FirstOrder = true;
      ExplicitOrder = true;
    } else if (Flag == "--second-order") {
      if (!ExplicitOrder)
        Opts.FirstOrder = false;
      Opts.SecondOrder = true;
      ExplicitOrder = true;
    } else if (Flag == "--streams") {
      Opts.Streams = splitList(NeedValue());
      if (Opts.Streams.empty()) {
        std::fprintf(stderr, "jvolve-chaos: --streams needs at least one "
                             "of email, jetty, crossftp\n");
        return 2;
      }
    } else if (Flag == "--lazy") {
      Opts.Lazy = true;
      ReproSpec.Lazy = true;
    } else if (Flag == "--canary") {
      Opts.CanaryOn = true;
      ReproSpec.Canary = true;
    } else if (Flag == "--codeversion") {
      // Campaigns enumerate the codeversion combo by default; for a repro
      // this selects the code-versioned commit path (body-only release).
      Opts.CodeVersion = true;
      ReproSpec.CodeVersion = true;
    } else if (Flag == "--budget") {
      Opts.Budget = std::strtoull(NeedValue(), nullptr, 10);
    } else if (Flag == "--check") {
      Check = true;
    } else if (Flag == "--json") {
      Json = true;
    } else if (Flag == "--no-shrink") {
      Opts.Shrink = false;
    } else if (Flag == "--metrics-out") {
      MetricsOut = NeedValue();
    } else if (Flag == "--warm") {
      Opts.WarmTicks = std::strtoull(NeedValue(), nullptr, 10);
      ReproSpec.WarmTicks = Opts.WarmTicks;
    } else if (Flag == "--settle") {
      Opts.SettleTicks = std::strtoull(NeedValue(), nullptr, 10);
      ReproSpec.SettleTicks = Opts.SettleTicks;
    } else if (Flag == "--requests") {
      Opts.Requests = static_cast<int>(std::strtol(NeedValue(), nullptr, 10));
      if (Opts.Requests < 1) {
        std::fprintf(stderr, "jvolve-chaos: --requests needs >= 1\n");
        return 2;
      }
      ReproSpec.Requests = Opts.Requests;
    } else if (Flag == "--version") {
      Opts.Version = std::strtoull(NeedValue(), nullptr, 10);
      ReproSpec.Version = Opts.Version;
    } else if (Flag == "--repro") {
      Repro = true;
    } else if (Flag == "--stream") {
      ReproSpec.Stream = NeedValue();
    } else if (Flag == "--inject") {
      ReproInject = NeedValue();
      // Validate on a scratch injector; report every bad entry.
      FaultInjector Probe;
      std::vector<std::string> Errs;
      if (!Probe.armFromSpecList(ReproInject, &Errs)) {
        for (const std::string &E : Errs)
          std::fprintf(stderr, "jvolve-chaos: bad --inject entry: %s\n",
                       E.c_str());
        return 2;
      }
    } else if (Flag == "--help" || Flag == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "jvolve-chaos: unknown argument '%s'\n",
                   Flag.c_str());
      usage();
      return 2;
    }
  }

  for (const std::string &S : Repro ? std::vector<std::string>{
                                          ReproSpec.Stream}
                                    : Opts.Streams)
    if (S != "email" && S != "jetty" && S != "crossftp") {
      std::fprintf(stderr, "jvolve-chaos: unknown stream '%s' "
                           "(email | jetty | crossftp)\n",
                   S.c_str());
      return 2;
    }

  // A live streaming session gives the ledger-balance oracle something to
  // judge: every scenario's events flow through the per-thread buffers and
  // either stream into this in-memory session or count as drops.
  Telemetry::global().setEnabled(true);
  TelemetrySessionConfig SessCfg;
  SessCfg.Name = "chaos";
  auto Session = Telemetry::global().streamer().openSession(SessCfg);

  if (Repro) {
    // Re-parse the validated list into the spec's fault vector.
    for (const std::string &One : splitList(ReproInject)) {
      FaultInjector Probe;
      Probe.armFromSpecList(One);
      ChaosFault F;
      FaultInjector::siteByName(One.substr(0, One.find(':')), F.Where);
      F.Fire = 1;
      size_t C1 = One.find(':');
      if (C1 != std::string::npos) {
        F.Fire = std::strtoull(One.c_str() + C1 + 1, nullptr, 10);
        size_t C2 = One.find(':', C1 + 1);
        if (C2 != std::string::npos)
          F.Skip = std::strtoull(One.c_str() + C2 + 1, nullptr, 10);
      }
      ReproSpec.Faults.push_back(F);
    }
    int Rc = runRepro(ReproSpec);
    Telemetry::global().streamer().closeSession(Session);
    return Rc;
  }

  auto Oracles = standardOracles();
  CampaignReport Rep = runCampaign(Opts, Oracles);

  Telemetry::global().gauge(metrics::FaultCoverageProbes)
      .set(static_cast<int64_t>(Rep.ProbePoints));
  Telemetry::global().gauge(metrics::FaultCoverageCovered)
      .set(static_cast<int64_t>(Rep.Covered));

  if (Json) {
    std::printf("%s\n", Rep.json().c_str());
  } else {
    std::printf("chaos campaign: %llu probe point(s) attempted, %llu "
                "covered (%.1f%%), %llu enumerable\n",
                static_cast<unsigned long long>(Rep.ProbePoints),
                static_cast<unsigned long long>(Rep.Covered),
                100.0 * Rep.coverage(),
                static_cast<unsigned long long>(Rep.Enumerated));
    std::printf("  %llu execution(s); %llu point(s) skipped by budget; "
                "%llu second-order window slot(s) capped\n",
                static_cast<unsigned long long>(Rep.Executions),
                static_cast<unsigned long long>(Rep.SkippedByBudget),
                static_cast<unsigned long long>(Rep.SecondOrderCapped));
    for (const std::string &U : Rep.UnreachableInMode)
      std::printf("  unreachable: %s\n", U.c_str());
    if (Rep.Violations.empty()) {
      std::printf("  oracles: all invariants hold on every execution\n");
    } else {
      for (const CampaignViolation &V : Rep.Violations) {
        std::printf("  VIOLATION [%s] status %s\n", V.Mode.c_str(),
                    updateStatusName(V.Status));
        for (const std::string &Line : V.Violations)
          std::printf("    %s\n", Line.c_str());
        std::printf("    repro: %s\n", V.Reproducer.c_str());
      }
    }
  }

  if (MetricsOut) {
    std::FILE *F = std::fopen(MetricsOut, "w");
    if (!F) {
      std::fprintf(stderr, "jvolve-chaos: cannot write metrics to '%s'\n",
                   MetricsOut);
      return 2;
    }
    std::fprintf(F, "%s\n", Telemetry::global().snapshot().json().c_str());
    std::fclose(F);
  }

  Telemetry::global().streamer().closeSession(Session);
  if (Check && (!Rep.Violations.empty() || Rep.Covered < Rep.ProbePoints))
    return 1;
  return 0;
}
