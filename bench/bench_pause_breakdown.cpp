//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §4.1 cost-breakdown claims: "the time to suspend
/// threads and check that the application is in a safe-point is less than
/// a millisecond, and classloading time is usually less than 20 ms.
/// Therefore the update disruption time is primarily due to the GC and
/// object transformers."
///
/// Phase timings come from the telemetry registry — the
/// dsu.update.phase_ms{phase=...} histograms the updater populates — and
/// every row is cross-checked against the UpdateResult fields the updater
/// measures with its own per-phase timers, so the two observability paths
/// must agree. For every applied update of all three application streams,
/// prints the phase breakdown (classload / GC / transformers / total)
/// plus the time-to-safe-point in virtual ticks, and checks the paper's
/// ordering: install overheads are small, GC+transform dominate whenever
/// objects are transformed.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/Evaluation.h"
#include "apps/JettyApp.h"
#include "bytecode/Builder.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"
#include "support/TablePrinter.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace jvolve;

namespace {

/// Phase timings of the most recent update, read back from the telemetry
/// registry (reset before each update so each histogram holds one sample).
struct PhaseTimings {
  double ClassLoadMs = 0;
  double GcMs = 0;
  double TransformMs = 0;
  double TotalMs = 0;
};

PhaseTimings readPhaseTimings() {
  auto Sum = [](const char *Phase) {
    const TelHistogram *H =
        Telemetry::global().findHistogram(metrics::dsuPhaseMs(Phase));
    return H ? H->sum() : 0.0;
  };
  PhaseTimings T;
  T.ClassLoadMs = Sum("classload");
  T.GcMs = Sum("gc");
  T.TransformMs = Sum("transform");
  T.TotalMs = Sum("total");
  return T;
}

/// The telemetry phase spans and the updater's own timers measure the
/// same pause with different instruments; the span additionally carries
/// the small bookkeeping between marks, so agreement is approximate.
bool agree(double TelemetryMs, double ResultMs) {
  return std::fabs(TelemetryMs - ResultMs) <=
         0.75 + 0.25 * std::max(TelemetryMs, ResultMs);
}

/// A populated update (100 k live objects of the updated class), since the
/// application-model updates transform at most a handful of objects — the
/// paper's "GC and transformers dominate" claim is about populated heaps.
UpdateResult populatedUpdate() {
  auto Version = [](bool Extra) {
    ClassSet Set;
    ClassBuilder C("Rec");
    C.field("a", "I");
    C.field("b", "I");
    if (Extra)
      C.field("c", "I");
    Set.add(C.build());
    ClassBuilder H("H");
    H.staticField("arr", "[LRec;");
    Set.add(H.build());
    return Set;
  };
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 64u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(Version(false));
  ClassRegistry &Reg = TheVM.registry();
  constexpr int64_t N = 100'000;
  Ref Arr = TheVM.allocateArray(Reg.arrayClassOf(Type::refTy("Rec")), N);
  Reg.cls(Reg.idOf("H")).Statics[0] = Slot::ofRef(Arr);
  ClassId RecId = Reg.idOf("Rec");
  for (int64_t I = 0; I < N; ++I) {
    Ref Obj = TheVM.allocateObject(RecId);
    Arr = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
    setRefAt(Arr, arrayElemOffset(I), Obj);
  }
  Updater U(TheVM);
  return U.applyNow(Upt::prepare(Version(false), Version(true), "v1"));
}

} // namespace

int main() {
  Telemetry::global().setEnabled(true);
  std::printf("=== Update pause breakdown (paper §4.1) ===\n");
  std::printf("(phase timings from the telemetry registry, cross-checked "
              "against UpdateResult)\n\n");
  TablePrinter TP;
  TP.setHeader({"Update", "classload(ms)", "GC(ms)", "transform(ms)",
                "total(ms)", "objects", "ticks-to-safe-point", "sources"});

  AppModel Apps[] = {makeJettyApp(), makeEmailApp(), makeCrossFtpApp()};
  double MaxClassLoad = 0;
  int Rows = 0, Agreements = 0;
  auto AddRow = [&](const std::string &Name, const UpdateResult &U,
                    const PhaseTimings &T) {
    bool Agrees = agree(T.ClassLoadMs, U.ClassLoadMs) &&
                  agree(T.GcMs, U.GcMs) &&
                  agree(T.TransformMs, U.TransformMs) &&
                  agree(T.TotalMs, U.TotalPauseMs);
    ++Rows;
    Agreements += Agrees;
    TP.addRow({Name, TablePrinter::fmt(T.ClassLoadMs, 3),
               TablePrinter::fmt(T.GcMs, 3),
               TablePrinter::fmt(T.TransformMs, 3),
               TablePrinter::fmt(T.TotalMs, 3),
               std::to_string(U.ObjectsTransformed),
               std::to_string(U.TicksToSafePoint),
               Agrees ? "agree" : "DISAGREE"});
    MaxClassLoad = std::max(MaxClassLoad, T.ClassLoadMs);
  };
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      Telemetry::global().reset();
      ReleaseOutcome R = evaluateRelease(App, V);
      if (R.Result.Status == UpdateStatus::Applied)
        AddRow(App.name() + " " + R.Version, R.Result, readPhaseTimings());
    }
  }
  Telemetry::global().reset();
  UpdateResult Populated = populatedUpdate();
  PhaseTimings PopulatedT = readPhaseTimings();
  AddRow("microbench (100k objects)", Populated, PopulatedT);

  std::printf("%s\n", TP.render().c_str());
  std::printf("Cross-check: telemetry phase spans agree with the updater's "
              "own timers on %d of %d updates\n",
              Agreements, Rows);
  std::printf("Shape: max classloading time %.3f ms (paper: usually "
              "< 20 ms)\n",
              MaxClassLoad);
  std::printf("Shape: on the populated heap, GC + transformers are "
              "%.0fx the classloading cost: %s (paper: 'disruption time "
              "is primarily due to the GC and object transformers')\n",
              (PopulatedT.GcMs + PopulatedT.TransformMs) /
                  std::max(PopulatedT.ClassLoadMs, 1e-6),
              PopulatedT.GcMs + PopulatedT.TransformMs > PopulatedT.ClassLoadMs
                  ? "yes"
                  : "no");
  return Agreements == Rows ? 0 : 1;
}
