//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the §4.1 cost-breakdown claims: "the time to suspend
/// threads and check that the application is in a safe-point is less than
/// a millisecond, and classloading time is usually less than 20 ms.
/// Therefore the update disruption time is primarily due to the GC and
/// object transformers."
///
/// For every applied update of all three application streams, prints the
/// phase breakdown (classload / GC / transformers / total) plus the
/// time-to-safe-point in virtual ticks, and checks the paper's ordering:
/// install overheads are small, GC+transform dominate whenever objects
/// are transformed.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/Evaluation.h"
#include "apps/JettyApp.h"
#include "bytecode/Builder.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace jvolve;

namespace {

/// A populated update (100 k live objects of the updated class), since the
/// application-model updates transform at most a handful of objects — the
/// paper's "GC and transformers dominate" claim is about populated heaps.
UpdateResult populatedUpdate() {
  auto Version = [](bool Extra) {
    ClassSet Set;
    ClassBuilder C("Rec");
    C.field("a", "I");
    C.field("b", "I");
    if (Extra)
      C.field("c", "I");
    Set.add(C.build());
    ClassBuilder H("H");
    H.staticField("arr", "[LRec;");
    Set.add(H.build());
    return Set;
  };
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 64u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(Version(false));
  ClassRegistry &Reg = TheVM.registry();
  constexpr int64_t N = 100'000;
  Ref Arr = TheVM.allocateArray(Reg.arrayClassOf(Type::refTy("Rec")), N);
  Reg.cls(Reg.idOf("H")).Statics[0] = Slot::ofRef(Arr);
  ClassId RecId = Reg.idOf("Rec");
  for (int64_t I = 0; I < N; ++I) {
    Ref Obj = TheVM.allocateObject(RecId);
    Arr = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
    setRefAt(Arr, arrayElemOffset(I), Obj);
  }
  Updater U(TheVM);
  return U.applyNow(Upt::prepare(Version(false), Version(true), "v1"));
}

} // namespace

int main() {
  std::printf("=== Update pause breakdown (paper §4.1) ===\n\n");
  TablePrinter TP;
  TP.setHeader({"Update", "classload(ms)", "GC(ms)", "transform(ms)",
                "total(ms)", "objects", "ticks-to-safe-point"});

  AppModel Apps[] = {makeJettyApp(), makeEmailApp(), makeCrossFtpApp()};
  double MaxClassLoad = 0;
  auto AddRow = [&](const std::string &Name, const UpdateResult &U) {
    TP.addRow({Name, TablePrinter::fmt(U.ClassLoadMs, 3),
               TablePrinter::fmt(U.GcMs, 3),
               TablePrinter::fmt(U.TransformMs, 3),
               TablePrinter::fmt(U.TotalPauseMs, 3),
               std::to_string(U.ObjectsTransformed),
               std::to_string(U.TicksToSafePoint)});
    MaxClassLoad = std::max(MaxClassLoad, U.ClassLoadMs);
  };
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      ReleaseOutcome R = evaluateRelease(App, V);
      if (R.Result.Status == UpdateStatus::Applied)
        AddRow(App.name() + " " + R.Version, R.Result);
    }
  }
  UpdateResult Populated = populatedUpdate();
  AddRow("microbench (100k objects)", Populated);

  std::printf("%s\n", TP.render().c_str());
  std::printf("Shape: max classloading time %.3f ms (paper: usually "
              "< 20 ms)\n",
              MaxClassLoad);
  std::printf("Shape: on the populated heap, GC + transformers are "
              "%.0fx the classloading cost: %s (paper: 'disruption time "
              "is primarily due to the GC and object transformers')\n",
              (Populated.GcMs + Populated.TransformMs) /
                  std::max(Populated.ClassLoadMs, 1e-6),
              Populated.GcMs + Populated.TransformMs > Populated.ClassLoadMs
                  ? "yes"
                  : "no");
  return 0;
}
