//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation for the paper's central design argument (§1, §5): eager
/// GC-based updating imposes **zero steady-state overhead**, whereas
/// lazy/indirection-based DSU systems (JDrums, DVM, and the C-language
/// indirection/trampoline systems) pay a check on every object access
/// during normal execution — DVM's interpreter pays roughly 10%.
///
/// MiniVM can compile field accesses in "indirection mode", where every
/// GetField/PutField performs the up-to-dateness check a lazy-update VM
/// needs. This bench measures steady-state execution of a field-access-
/// heavy workload (pointer chasing over a ring of objects) in both modes
/// with google-benchmark, then prints the measured overhead.
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "support/Stats.h"
#include "support/Stopwatch.h"
#include "vm/VM.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

using namespace jvolve;

namespace {

/// Cell ring program: spin() chases `next` pointers and sums `v` fields —
/// two field reads per iteration, the access pattern indirection checks
/// tax the most.
ClassSet ringProgram() {
  ClassSet Set;
  {
    ClassBuilder CB("Cell");
    CB.field("v", "I");
    CB.field("next", "LCell;");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Ring");
    CB.staticField("head", "LCell;");
    // build(n): allocate an n-cell ring.
    CB.staticMethod("build", "(I)V")
        .locals(4)
        .newobj("Cell")
        .store(1) // first
        .load(1)
        .store(2) // cur = first
        .iconst(1)
        .store(3) // i = 1
        .label("loop")
        .load(3)
        .load(0)
        .branch(Opcode::IfICmpGe, "done")
        .newobj("Cell")
        .store(1)
        .load(1)
        .load(3)
        .putfield("Cell", "v", "I")
        .load(2)
        .load(1)
        .putfield("Cell", "next", "LCell;")
        .load(1)
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(2)
        .putstatic("Ring", "head", "LCell;")
        .ret();
    // spin(iters): sum += cur.v; cur = cur.next (null-closed ring tail
    // wraps via head).
    CB.staticMethod("spin", "(I)I")
        .locals(4)
        .iconst(0)
        .store(1) // sum
        .getstatic("Ring", "head", "LCell;")
        .store(2) // cur
        .iconst(0)
        .store(3) // i
        .label("loop")
        .load(3)
        .load(0)
        .branch(Opcode::IfICmpGe, "done")
        .load(2)
        .branch(Opcode::IfNonNull, "have")
        .getstatic("Ring", "head", "LCell;")
        .store(2)
        .label("have")
        .load(1)
        .load(2)
        .getfield("Cell", "v", "I")
        .iadd()
        .store(1)
        .load(2)
        .getfield("Cell", "next", "LCell;")
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(1)
        .iret();
    Set.add(CB.build());
  }
  return Set;
}

std::unique_ptr<VM> makeVm(bool Indirection) {
  VM::Config C;
  C.HeapSpaceBytes = 8u << 20;
  C.IndirectionMode = Indirection;
  auto TheVM = std::make_unique<VM>(C);
  TheVM->loadProgram(ringProgram());
  TheVM->callStatic("Ring", "build", "(I)V", {Slot::ofInt(64)});
  return TheVM;
}

void BM_SteadyStateFieldAccess(benchmark::State &State) {
  bool Indirection = State.range(0) != 0;
  std::unique_ptr<VM> TheVM = makeVm(Indirection);
  uint64_t Before = TheVM->stats().InstructionsExecuted;
  for (auto _ : State)
    TheVM->callStatic("Ring", "spin", "(I)I", {Slot::ofInt(20'000)});
  State.SetItemsProcessed(static_cast<int64_t>(
      TheVM->stats().InstructionsExecuted - Before));
  State.SetLabel(Indirection ? "indirection (JDrums/DVM-style)"
                             : "jvolve (no checks)");
}

/// Direct A/B comparison printed after the google-benchmark report.
/// Trials are interleaved so frequency scaling and cache warm-up do not
/// bias either mode.
void printOverheadSummary() {
  std::unique_ptr<VM> Vms[2] = {makeVm(false), makeVm(true)};
  for (int Mode = 0; Mode < 2; ++Mode) // warm-up both (compile, caches)
    for (int I = 0; I < 60; ++I)
      Vms[Mode]->callStatic("Ring", "spin", "(I)I", {Slot::ofInt(10'000)});
  std::vector<double> Rounds[2];
  for (int Round = 0; Round < 30; ++Round) {
    for (int Mode = 0; Mode < 2; ++Mode) {
      Stopwatch Timer;
      for (int I = 0; I < 4; ++I)
        Vms[Mode]->callStatic("Ring", "spin", "(I)I", {Slot::ofInt(50'000)});
      Rounds[Mode].push_back(Timer.elapsedMs());
    }
  }
  double Ms[2] = {summarizeQuartiles(Rounds[0]).Median,
                  summarizeQuartiles(Rounds[1]).Median};
  double OverheadPct = 100.0 * (Ms[1] - Ms[0]) / Ms[0];
  std::printf("\n=== Steady-state overhead of lazy-update indirection "
              "===\n");
  std::printf("jvolve (eager, no checks): %8.2f ms/round (median)\n", Ms[0]);
  std::printf("indirection (lazy-style):  %8.2f ms/round (median)\n", Ms[1]);
  std::printf("overhead: %+.1f%%  (paper: JDrums/DVM pay ~10%% during "
              "normal execution; Jvolve pays it only at update time)\n",
              OverheadPct);
}

} // namespace

BENCHMARK(BM_SteadyStateFieldAccess)->Arg(0)->Arg(1);

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  printOverheadSummary();
  return 0;
}
