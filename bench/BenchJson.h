//===----------------------------------------------------------------------===//
///
/// \file
/// BENCH_*.json emission: benches accumulate their headline numbers here
/// and write them in the telemetry snapshot format ({"metrics":[...]})
/// that scripts/metrics-diff.py consumes — so two bench runs (or the
/// forward and revert halves of one run) can be diffed and budget-gated
/// exactly like two VM metric dumps.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BENCH_BENCHJSON_H
#define JVOLVE_BENCH_BENCHJSON_H

#include "support/Stats.h"

#include <cstdio>
#include <string>
#include <vector>

namespace jvolve {

class BenchJson {
public:
  /// A counter/gauge-shaped entry (metrics-diff compares `value`).
  void value(const std::string &Name, long long V) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"kind\":\"gauge\",\"value\":%lld}",
                  Name.c_str(), V);
    Entries.push_back(Buf);
  }

  /// A histogram-shaped entry over \p Samples (metrics-diff compares
  /// `count`, `mean`, and `p95`).
  void histogram(const std::string &Name, const std::vector<double> &Samples) {
    double Sum = 0, Min = 0, Max = 0;
    for (size_t I = 0; I < Samples.size(); ++I) {
      Sum += Samples[I];
      Min = I == 0 ? Samples[I] : std::min(Min, Samples[I]);
      Max = std::max(Max, Samples[I]);
    }
    double Mean = Samples.empty() ? 0 : Sum / Samples.size();
    char Buf[512];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"kind\":\"histogram\",\"count\":%lld,"
                  "\"sum\":%.6f,\"min\":%.6f,\"max\":%.6f,\"mean\":%.6f,"
                  "\"p50\":%.6f,\"p95\":%.6f,\"p99\":%.6f}",
                  Name.c_str(), static_cast<long long>(Samples.size()), Sum,
                  Min, Max, Mean, percentile(Samples, 50),
                  percentile(Samples, 95), percentile(Samples, 99));
    Entries.push_back(Buf);
  }

  /// \returns false (with a diagnostic) when \p Path cannot be written.
  bool write(const char *Path) const {
    std::FILE *F = std::fopen(Path, "w");
    if (!F) {
      std::fprintf(stderr, "bench: cannot write '%s'\n", Path);
      return false;
    }
    std::fputs("{\"metrics\":[", F);
    for (size_t I = 0; I < Entries.size(); ++I) {
      if (I)
        std::fputc(',', F);
      std::fputs(Entries[I].c_str(), F);
    }
    std::fputs("]}\n", F);
    std::fclose(F);
    return true;
  }

private:
  std::vector<std::string> Entries;
};

} // namespace jvolve

#endif // JVOLVE_BENCH_BENCHJSON_H
