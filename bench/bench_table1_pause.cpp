//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Table 1** and **Figure 6** of the paper: Jvolve update
/// pause time broken into garbage-collection time and transformer-running
/// time, as a function of heap size (object count) and the fraction of
/// objects being transformed.
///
/// The microbenchmark is the paper's (§4.1): two classes, Change and
/// NoChange, each with three integer fields and three (null) reference
/// fields; the update adds an integer field to Change; the object
/// transformer copies the existing fields and zero-initializes the new one.
/// Object counts match the paper's rows (280 k, 770 k, 1.76 M, 3.67 M).
/// Absolute milliseconds differ from the paper's 2009 hardware; the shape —
/// pause grows with heap size and with the updated fraction, the
/// transformer line is steeper than the GC line, and the 100%-updated pause
/// is roughly 4x the 0% pause — is the reproduction target.
///
/// Environment knobs: JVOLVE_TABLE1_TRIALS (default 3, paper used 21),
/// JVOLVE_TABLE1_QUICK=1 (drop the two largest rows).
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/Telemetry.h"
#include "vm/VM.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace jvolve;

namespace {

/// The microbenchmark program: Change and NoChange with 3 int + 3 ref
/// fields; \p Updated adds the int field the update introduces.
ClassSet microProgram(bool Updated) {
  ClassSet Set;
  for (const char *Name : {"Change", "NoChange"}) {
    ClassBuilder CB(Name);
    CB.field("i0", "I").field("i1", "I").field("i2", "I");
    CB.field("r0", "LObject;").field("r1", "LObject;").field("r2",
                                                             "LObject;");
    if (Updated && std::string(Name) == "Change")
      CB.field("added", "I");
    Set.add(CB.build());
  }
  ClassBuilder H("Holder");
  H.staticField("arr", "[LObject;");
  Set.add(H.build());
  return Set;
}

struct CellResult {
  // Phase timings read back from the telemetry registry's
  // dsu.update.phase_ms{phase=...} histograms.
  double GcMs = 0;
  double TransformMs = 0;
  double TotalMs = 0;
  // Whether the telemetry spans agreed with the UpdateResult's own timers.
  bool Agrees = true;
};

/// Sum of the named update-phase histogram (one sample per trial, since
/// the registry is reset before each update).
double phaseSum(const char *Phase) {
  const TelHistogram *H =
      Telemetry::global().findHistogram(metrics::dsuPhaseMs(Phase));
  return H ? H->sum() : 0.0;
}

/// Approximate agreement: the span carries the small bookkeeping between
/// phase marks that the updater's dedicated timers exclude.
bool agree(double TelemetryMs, double ResultMs) {
  return std::fabs(TelemetryMs - ResultMs) <=
         0.75 + 0.25 * std::max(TelemetryMs, ResultMs);
}

/// One trial: build a fresh VM holding \p NumObjects objects of which
/// \p Fraction are Change instances, then apply the update and report the
/// pause breakdown.
CellResult runTrial(size_t NumObjects, double Fraction) {
  // Object: 16-byte header + 6 (or 7) 8-byte fields. Size the semi-spaces
  // generously: a DSU collection needs room for the old duplicate and the
  // new version of every transformed object.
  size_t LiveBytes = NumObjects * 80 + NumObjects * 8 + (1u << 20);
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = LiveBytes * 5 / 2;

  VM TheVM(Cfg);
  TheVM.loadProgram(microProgram(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId ChangeId = Reg.idOf("Change");
  ClassId NoChangeId = Reg.idOf("NoChange");
  ClassId ArrCls = Reg.arrayClassOf(Type::refTy("Object"));

  Ref Arr = TheVM.allocateArray(ArrCls, static_cast<int64_t>(NumObjects));
  RtClass &Holder = Reg.cls(Reg.idOf("Holder"));
  Holder.Statics[0] = Slot::ofRef(Arr);

  size_t NumChanged = static_cast<size_t>(Fraction * NumObjects + 0.5);
  for (size_t I = 0; I < NumObjects; ++I) {
    Ref Obj = TheVM.allocateObject(I < NumChanged ? ChangeId : NoChangeId);
    const RtClass &C = Reg.cls(classOf(Obj));
    setIntAt(Obj, C.InstanceFields[0].Offset, static_cast<int64_t>(I));
    setIntAt(Obj, C.InstanceFields[1].Offset, 2 * static_cast<int64_t>(I));
    // Re-read the array root: allocation may have triggered a collection.
    Arr = Holder.Statics[0].RefVal;
    setRefAt(Arr, arrayElemOffset(static_cast<int64_t>(I)), Obj);
  }

  // The paper's user-provided transformer: copy the existing fields and
  // initialize the new one to zero.
  UpdateBundle B = Upt::prepare(microProgram(false), microProgram(true),
                                "v1");
  B.ObjectTransformers["Change"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setInt(To, "i0", Ctx.getInt(From, "i0"));
    Ctx.setInt(To, "i1", Ctx.getInt(From, "i1"));
    Ctx.setInt(To, "i2", Ctx.getInt(From, "i2"));
    Ctx.setRef(To, "r0", Ctx.getRef(From, "r0"));
    Ctx.setRef(To, "r1", Ctx.getRef(From, "r1"));
    Ctx.setRef(To, "r2", Ctx.getRef(From, "r2"));
    Ctx.setInt(To, "added", 0);
  };

  Updater U(TheVM);
  Telemetry::global().reset();
  UpdateResult R = U.applyNow(std::move(B));
  if (R.Status != UpdateStatus::Applied) {
    std::fprintf(stderr, "table1: update failed: %s\n", R.Message.c_str());
    std::exit(1);
  }

  CellResult Cell;
  Cell.GcMs = phaseSum("gc");
  Cell.TransformMs = phaseSum("transform");
  Cell.TotalMs = phaseSum("total");
  Cell.Agrees = agree(Cell.GcMs, R.GcMs) &&
                agree(Cell.TransformMs, R.TransformMs) &&
                agree(Cell.TotalMs, R.TotalPauseMs);
  return Cell;
}

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

} // namespace

int main() {
  Telemetry::global().setEnabled(true);
  int Trials = envInt("JVOLVE_TABLE1_TRIALS", 3);
  bool Quick = envInt("JVOLVE_TABLE1_QUICK", 0) != 0;

  // The paper's rows: object counts and the heap sizes they correspond to
  // on its platform (our per-object footprint differs; we report ours).
  struct Row {
    size_t Objects;
    const char *PaperHeap;
  };
  std::vector<Row> Rows = {{280'000, "160 MB"},
                           {770'000, "320 MB"},
                           {1'760'000, "640 MB"},
                           {3'670'000, "1280 MB"}};
  if (Quick)
    Rows.resize(2);

  std::vector<double> Fractions;
  for (int F = 0; F <= 100; F += 10)
    Fractions.push_back(F / 100.0);

  std::printf("=== Table 1: JVOLVE update pause time (ms) ===\n");
  std::printf("(microbenchmark of paper §4.1; %d trial(s) per cell, "
              "medians reported)\n\n",
              Trials);

  // Collect all cells first, then print the three groups like the paper.
  std::vector<std::vector<CellResult>> Cells(Rows.size());
  int TrialCount = 0, TrialAgreements = 0;
  for (size_t RI = 0; RI < Rows.size(); ++RI) {
    for (double F : Fractions) {
      std::vector<double> Gc, Tr, Total;
      for (int T = 0; T < Trials; ++T) {
        CellResult C = runTrial(Rows[RI].Objects, F);
        Gc.push_back(C.GcMs);
        Tr.push_back(C.TransformMs);
        Total.push_back(C.TotalMs);
        ++TrialCount;
        TrialAgreements += C.Agrees;
      }
      CellResult Median;
      Median.GcMs = percentile(Gc, 50);
      Median.TransformMs = percentile(Tr, 50);
      Median.TotalMs = percentile(Total, 50);
      Cells[RI].push_back(Median);
    }
  }

  auto PrintGroup = [&](const char *Title, double CellResult::*Member) {
    std::printf("--- %s ---\n", Title);
    TablePrinter TP;
    std::vector<std::string> Header = {"# objects", "paper heap"};
    for (int F = 0; F <= 100; F += 10)
      Header.push_back(std::to_string(F) + "%");
    TP.setHeader(Header);
    for (size_t RI = 0; RI < Rows.size(); ++RI) {
      std::vector<std::string> RowCells = {std::to_string(Rows[RI].Objects),
                                           Rows[RI].PaperHeap};
      for (const CellResult &C : Cells[RI])
        RowCells.push_back(TablePrinter::fmt(C.*Member, 1));
      TP.addRow(RowCells);
    }
    std::printf("%s\n", TP.render().c_str());
  };

  PrintGroup("Garbage collection time (ms)", &CellResult::GcMs);
  PrintGroup("Running transformation functions (ms)",
             &CellResult::TransformMs);
  PrintGroup("Total DSU pause time (ms)", &CellResult::TotalMs);

  // Figure 6: the largest row as a series.
  const std::vector<CellResult> &Fig6 = Cells.back();
  std::printf("=== Figure 6: pause times at %zu objects ===\n",
              Rows.back().Objects);
  std::printf("%-10s %12s %16s %12s\n", "fraction", "GC (ms)",
              "transform (ms)", "total (ms)");
  for (size_t I = 0; I < Fig6.size(); ++I)
    std::printf("%-10s %12.1f %16.1f %12.1f\n",
                (std::to_string(I * 10) + "%").c_str(), Fig6[I].GcMs,
                Fig6[I].TransformMs, Fig6[I].TotalMs);

  // Shape checks the paper calls out.
  const CellResult &AllUpdated = Fig6.back();
  const CellResult &NoneUpdated = Fig6.front();
  double Ratio = AllUpdated.TotalMs / std::max(NoneUpdated.TotalMs, 1e-9);
  std::printf("\nShape: total pause at 100%% / 0%% updated = %.2fx "
              "(paper: ~4x)\n",
              Ratio);
  std::printf("Shape: transformer slope steeper than GC slope: %s\n",
              (AllUpdated.TransformMs - NoneUpdated.TransformMs) >
                      (AllUpdated.GcMs - NoneUpdated.GcMs)
                  ? "yes (matches paper)"
                  : "no");
  std::printf("Cross-check: telemetry phase spans agree with the updater's "
              "own timers on %d of %d trials\n",
              TrialAgreements, TrialCount);
  return TrialAgreements == TrialCount ? 0 : 1;
}
