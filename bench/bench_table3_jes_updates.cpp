//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Table 3**: the JavaEmailServer update stream (1.2.1
/// through 1.4). Reproduction targets: summaries match the table; 1.3
/// (the configuration-framework rework that changes the always-running
/// processing loops) times out; 1.3.2 — the Figure 2 User/EmailAddress
/// change with the Figure 3 transformer — and 1.3.3 apply *via on-stack
/// replacement* of the run() methods; everything else applies directly.
///
//===----------------------------------------------------------------------===//

#include "BenchTableCommon.h"

#include "apps/EmailApp.h"

using namespace jvolve;

int main() {
  AppModel App = makeEmailApp();
  std::vector<ReleaseOutcome> Rows = evaluateApp(App);
  printUpdateStreamTable(
      "Table 3: updates to JavaEmailServer (1.2.1 .. 1.4)", Rows);

  for (size_t V = 1; V < App.numVersions(); ++V) {
    const ReleaseOutcome &R = Rows[V - 1];
    const Release &Rel = App.release(V);
    if (R.supported() != Rel.ExpectSupported) {
      std::printf("MISMATCH: %s expected %s\n", R.Version.c_str(),
                  Rel.ExpectSupported ? "applied" : "timeout");
      return 1;
    }
    if (Rel.NeedsOsr && R.Result.OsrReplacements == 0) {
      std::printf("MISMATCH: %s expected OSR\n", R.Version.c_str());
      return 1;
    }
  }
  std::printf("Matches paper: 8 of 9 JES updates applied; 1.3 cannot reach "
              "a safe point; 1.3.2 and 1.3.3 used OSR.\n");
  return 0;
}
