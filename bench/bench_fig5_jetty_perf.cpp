//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Figure 5**: throughput and latency of the Jetty model
/// v5.1.6 under saturating load in three configurations —
///
///   1. "stock"       : the plain VM (no DSU machinery engaged),
///   2. "jvolve"      : the DSU-capable VM running 5.1.6 from scratch,
///   3. "jvolve-upd"  : 5.1.6 reached by dynamically updating from 5.1.5
///                      before the measurement starts.
///
/// Like the paper, each configuration runs 21 times and the median and
/// quartiles are reported (with 21 runs the inter-quartile range is a 98%
/// confidence interval). The reproduction target is the *zero steady-state
/// overhead* claim: all three configurations perform essentially
/// identically (overlapping inter-quartile ranges). Units are virtual:
/// responses per 1000 ticks and latency in ticks.
///
//===----------------------------------------------------------------------===//

#include "apps/Evaluation.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>

using namespace jvolve;

namespace {

constexpr size_t V515 = 5; // makeJettyApp: version 5 is 5.1.5
constexpr size_t V516 = 6; // version 6 is 5.1.6

struct RunSample {
  double Throughput = 0;
  double LatencyMedian = 0;
};

VM::Config benchConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 16u << 20;
  return C;
}

/// One measured run: boot, (optionally) dynamically update, warm up, then
/// measure a fixed interval under load — the analogue of one 60-second
/// httperf run.
RunSample runOnce(const AppModel &App, bool UpdateFrom515, uint64_t Seed) {
  VM TheVM(benchConfig());
  TheVM.loadProgram(App.version(UpdateFrom515 ? V515 : V516));
  startJettyThreads(TheVM);

  LoadDriver::Options LO;
  LO.Port = JettyPort;
  // Keep the offered load below saturation so latency measures service
  // time rather than queue depth, and perturb the batch phase a little per
  // run so runs differ, like wall-clock noise does for httperf.
  LO.ConnectionsPerBatch = 1;
  LO.BatchInterval = 290;
  LO.JitterTicks = 10;
  LO.Seed = Seed * 77 + 5;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(10'000);

  if (UpdateFrom515) {
    Updater U(TheVM);
    UpdateResult R = U.applyNow(
        Upt::prepare(App.version(V515), App.version(V516), "v515"));
    if (R.Status != UpdateStatus::Applied) {
      std::fprintf(stderr, "fig5: update failed: %s\n", R.Message.c_str());
      std::exit(1);
    }
    Driver.runWithLoad(5'000); // let recompilation settle
  } else {
    Driver.runWithLoad(5'000); // symmetric warm-up
  }

  // Drain queued work so the measurement starts from a steady state.
  Driver.runIdle(4'000);
  LoadResult R = Driver.measure(60'000);
  return {R.Throughput, R.LatencyTicks.Median};
}

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

} // namespace

int main() {
  int Runs = envInt("JVOLVE_FIG5_RUNS", 21);
  AppModel App = makeJettyApp();

  struct Config {
    const char *Name;
    bool Update;
  };
  // "stock" and "jvolve" are the same binary here by construction — the
  // DSU machinery is engaged only while an update is in flight, which is
  // precisely the paper's zero-steady-state-overhead design point. We
  // still run both labels so variance between identical configurations is
  // visible alongside the updated configuration.
  const Config Configs[] = {{"Jikes RVM (stock)", false},
                            {"JVOLVE", false},
                            {"JVOLVE updated 5.1.5->5.1.6", true}};

  std::printf("=== Figure 5: Jetty v5.1.6 throughput and latency ===\n");
  std::printf("(%d runs per configuration; median and quartiles; virtual "
              "units)\n\n",
              Runs);

  TablePrinter TP;
  TP.setHeader({"Config", "Thr median", "Thr Q1", "Thr Q3", "Lat median",
                "Lat Q1", "Lat Q3"});

  std::vector<QuartileSummary> ThroughputSummaries;
  for (const Config &C : Configs) {
    std::vector<double> Thr, Lat;
    for (int I = 0; I < Runs; ++I) {
      RunSample S = runOnce(App, C.Update, static_cast<uint64_t>(I));
      Thr.push_back(S.Throughput);
      Lat.push_back(S.LatencyMedian);
    }
    QuartileSummary TQ = summarizeQuartiles(Thr);
    QuartileSummary LQ = summarizeQuartiles(Lat);
    ThroughputSummaries.push_back(TQ);
    TP.addRow({C.Name, TablePrinter::fmt(TQ.Median, 3),
               TablePrinter::fmt(TQ.LowerQuartile, 3),
               TablePrinter::fmt(TQ.UpperQuartile, 3),
               TablePrinter::fmt(LQ.Median, 1),
               TablePrinter::fmt(LQ.LowerQuartile, 1),
               TablePrinter::fmt(LQ.UpperQuartile, 1)});
  }
  std::printf("%s\n", TP.render().c_str());

  // The paper's claim: the configurations' inter-quartile ranges largely
  // overlap (no steady-state overhead after an update).
  const QuartileSummary &A = ThroughputSummaries[1]; // jvolve
  const QuartileSummary &B = ThroughputSummaries[2]; // jvolve updated
  bool Overlap = A.LowerQuartile <= B.UpperQuartile &&
                 B.LowerQuartile <= A.UpperQuartile;
  std::printf("Shape: updated-vs-fresh inter-quartile ranges overlap: %s "
              "(paper: 'essentially identical')\n",
              Overlap ? "yes" : "no");
  double Delta =
      100.0 * (A.Median - B.Median) / std::max(A.Median, 1e-9);
  std::printf("Shape: median throughput difference fresh vs updated: "
              "%+.2f%%\n",
              Delta);
  return 0;
}
