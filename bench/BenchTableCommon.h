//===----------------------------------------------------------------------===//
///
/// \file
/// Shared table rendering for the per-application update-stream benches
/// (Tables 2, 3, 4 of the paper).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BENCH_BENCHTABLECOMMON_H
#define JVOLVE_BENCH_BENCHTABLECOMMON_H

#include "apps/Evaluation.h"
#include "dsu/Updater.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <string>
#include <vector>

namespace jvolve {

/// Pause-time distribution over the applied updates of one stream,
/// rendered as "median [q1..q3] ms" ("n/a" when nothing applied).
inline std::string pauseDistribution(const std::vector<ReleaseOutcome> &Rows) {
  std::vector<double> Pauses;
  for (const ReleaseOutcome &R : Rows)
    if (R.Result.Status == UpdateStatus::Applied)
      Pauses.push_back(R.Result.TotalPauseMs);
  if (Pauses.empty())
    return "n/a";
  return summarizeQuartiles(Pauses).str(2) + " ms";
}

/// Prints one app's update stream in the paper's table shape, extended
/// with the live Jvolve outcome and the E&C baseline verdict.
inline void printUpdateStreamTable(const std::string &Title,
                                   const std::vector<ReleaseOutcome> &Rows) {
  std::printf("=== %s ===\n", Title.c_str());
  TablePrinter TP;
  TP.setHeader({"Ver.", "cls+", "cls-", "cls~", "m+", "m-", "m chg",
                "f+", "f-", "JVOLVE", "pause(ms)", "barriers", "OSR",
                "E&C"});
  int Supported = 0, Ec = 0;
  for (const ReleaseOutcome &R : Rows) {
    const UpdateSummary &S = R.Summary;
    std::string Outcome;
    if (R.Result.Status == UpdateStatus::Applied)
      Outcome = "applied";
    else if (R.AppliedWhenIdle)
      Outcome = "applied-when-idle";
    else
      Outcome = updateStatusName(R.Result.Status);
    if (R.supported())
      ++Supported;
    if (R.EcSupported)
      ++Ec;
    TP.addRow({R.Version, std::to_string(S.ClassesAdded),
               std::to_string(S.ClassesDeleted),
               std::to_string(S.ClassesChanged),
               std::to_string(S.MethodsAdded),
               std::to_string(S.MethodsDeleted), S.methodsChangedCell(),
               std::to_string(S.FieldsAdded),
               std::to_string(S.FieldsDeleted), Outcome,
               R.Result.Status == UpdateStatus::Applied
                   ? TablePrinter::fmt(R.Result.TotalPauseMs, 2)
                   : "-",
               std::to_string(R.Result.ReturnBarriersInstalled),
               std::to_string(R.Result.OsrReplacements),
               R.EcSupported ? "yes" : "no"});
  }
  std::printf("%s", TP.render().c_str());
  std::printf("Applied pause distribution: %s\n",
              pauseDistribution(Rows).c_str());
  std::printf("JVOLVE supported %d of %zu updates; a method-body-only "
              "system supports %d.\n\n",
              Supported, Rows.size(), Ec);
}

} // namespace jvolve

#endif // JVOLVE_BENCH_BENCHTABLECOMMON_H
