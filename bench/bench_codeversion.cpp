//===----------------------------------------------------------------------===//
///
/// \file
/// Body-only commit pause: per-method code versioning vs the full
/// safe-point pipeline (ISSUE 10, CoreCLR-rejit framing vs paper §3).
///
/// The paper's pipeline pays a VM-wide safe point plus a whole-heap DSU
/// collection for *every* update — so even a change that touches nothing
/// but method bodies has a pause that scales with live heap (Table 1's
/// GC column). The CodeVersionManager commits the same change as one
/// atomic active-version switch: no safe point, no collection, nothing
/// that looks at the heap at all.
///
/// Workload: the pointer-chasing Cell ring (as in bench_lazy_pause),
/// updated by changing the body of Ring.spin — a strictly body-only
/// bundle. Both commit paths apply the *same* bundle on fresh VMs at
/// three heap sizes with the live ring scaled to the heap, so the
/// safe-point pause grows with the heap while the versioned pause
/// must not.
///
/// Both paths run at the shipped default, CertifyAfterUpdate = true.
/// That is where the asymmetry lives: the pipeline certifies with a
/// full heap walk (its collection and transformers could have corrupted
/// any object, so the walk scales with the live ring), while the
/// versioned commit certifies only the registry it mutated — it never
/// touched the heap, so there is nothing heap-sized to validate.
///
/// `--check` writes BENCH_codeversion.json and exits 1 unless:
///   1. the versioned pause is below the safe-point pause at every size;
///   2. the versioned pause is ~zero (<= 2 ms median) at every size;
///   3. the versioned pause is heap-size-independent: its spread across
///      the 3 sizes stays within 1 ms while the safe-point pause grows.
///
/// Environment knobs: JVOLVE_CODEVERSION_TRIALS (default 3),
/// JVOLVE_CODEVERSION_CELLS_PER_MB (default 1000).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "bytecode/Builder.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Stats.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace jvolve;

namespace {

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

/// Cell ring: build(n) links a circular ring so every cell stays live
/// through the update (the safe-point path's DSU collection must copy all
/// of it); spin(n) chases it. \p Updated changes *only* the body of spin
/// (it sums v twice per cell), so the update diff is strictly body-only.
ClassSet ringProgram(bool Updated) {
  ClassSet Set;
  {
    ClassBuilder CB("Cell");
    CB.field("v", "I");
    CB.field("next", "LCell;");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Ring");
    CB.staticField("head", "LCell;");
    CB.staticMethod("build", "(I)V")
        .locals(5)
        .newobj("Cell")
        .store(1)
        .load(1)
        .store(4) // first
        .load(1)
        .store(2) // cur = first
        .iconst(1)
        .store(3)
        .label("loop")
        .load(3)
        .load(0)
        .branch(Opcode::IfICmpGe, "done")
        .newobj("Cell")
        .store(1)
        .load(1)
        .load(3)
        .putfield("Cell", "v", "I")
        .load(2)
        .load(1)
        .putfield("Cell", "next", "LCell;")
        .load(1)
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(2)
        .load(4)
        .putfield("Cell", "next", "LCell;") // close the ring
        .load(2)
        .putstatic("Ring", "head", "LCell;")
        .ret();
    MethodBuilder &Spin = CB.staticMethod("spin", "(I)I")
                              .locals(4)
                              .iconst(0)
                              .store(1)
                              .getstatic("Ring", "head", "LCell;")
                              .store(2)
                              .iconst(0)
                              .store(3)
                              .label("loop")
                              .load(3)
                              .load(0)
                              .branch(Opcode::IfICmpGe, "done")
                              .load(1)
                              .load(2)
                              .getfield("Cell", "v", "I")
                              .iadd()
                              .store(1);
    if (Updated) // the v2 body counts each cell twice
      Spin.load(1)
          .load(2)
          .getfield("Cell", "v", "I")
          .iadd()
          .store(1);
    Spin.load(2)
        .getfield("Cell", "next", "LCell;")
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(1)
        .iret();
    Set.add(CB.build());
  }
  return Set;
}

std::unique_ptr<VM> makeVm(size_t HeapMb, int NumCells) {
  VM::Config C;
  C.HeapSpaceBytes = HeapMb << 20;
  auto TheVM = std::make_unique<VM>(C);
  TheVM->loadProgram(ringProgram(false));
  TheVM->callStatic("Ring", "build", "(I)V", {Slot::ofInt(NumCells)});
  return TheVM;
}

/// One commit on a fresh VM, at the shipped default posture (post-update
/// certification on): the pipeline's pause includes its mandatory
/// full-heap certification walk, the versioned pause its registry-only
/// check. That is the pause an operator actually observes per update.
double measurePause(size_t HeapMb, int NumCells, bool Versioned) {
  std::unique_ptr<VM> TheVM = makeVm(HeapMb, NumCells);
  int64_t Before =
      TheVM->callStatic("Ring", "spin", "(I)I", {Slot::ofInt(8)}).IntVal;
  UpdateBundle B =
      Upt::prepare(ringProgram(false), ringProgram(true), "spin-v2");
  UpdateOptions Opts;
  Opts.CodeVersioning = Versioned;
  Updater U(*TheVM);
  UpdateResult R = U.applyNow(std::move(B), Opts);
  if (R.Status != UpdateStatus::Applied) {
    std::fprintf(stderr, "codeversion: %s update failed: %s\n",
                 Versioned ? "versioned" : "safe-point", R.Message.c_str());
    std::exit(1);
  }
  if (R.CodeVersioned != Versioned) {
    std::fprintf(stderr,
                 "codeversion: update took the wrong commit path "
                 "(CodeVersioned=%d, expected %d)\n",
                 R.CodeVersioned, Versioned);
    std::exit(1);
  }
  // The versioned commit runs the new spin body on the next invocation —
  // spot-check the switch actually landed (the v2 body sums each cell
  // twice, so the same lap returns exactly double).
  if (Versioned) {
    int64_t After =
        TheVM->callStatic("Ring", "spin", "(I)I", {Slot::ofInt(8)}).IntVal;
    if (After != 2 * Before) {
      std::fprintf(stderr, "codeversion: switched body not observed\n");
      std::exit(1);
    }
  }
  return R.TotalPauseMs;
}

} // namespace

int main(int argc, char **argv) {
  bool Check = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check]\n"
                   "  --check  exit 1 unless the versioned commit pause is "
                   "~zero and heap-size-independent\n",
                   argv[0]);
      return 2;
    }
  }

  const int Trials = envInt("JVOLVE_CODEVERSION_TRIALS", 3);
  const int CellsPerMb = envInt("JVOLVE_CODEVERSION_CELLS_PER_MB", 1000);
  const size_t HeapsMb[] = {32, 64, 128};

  std::printf("=== bench_codeversion: body-only commit pause, versioned "
              "vs safe-point ===\n");
  std::printf("(Cell ring scaled to the heap, body-only spin update, "
              "%d trial(s) per point)\n\n",
              Trials);

  std::vector<double> SafeMed, VersMed;
  std::vector<std::vector<double>> SafeRaw, VersRaw;
  for (size_t HeapMb : HeapsMb) {
    int NumCells = static_cast<int>(HeapMb) * CellsPerMb;
    std::vector<double> Safe, Vers;
    for (int T = 0; T < Trials; ++T) {
      Safe.push_back(measurePause(HeapMb, NumCells, /*Versioned=*/false));
      Vers.push_back(measurePause(HeapMb, NumCells, /*Versioned=*/true));
    }
    SafeRaw.push_back(Safe);
    VersRaw.push_back(Vers);
    SafeMed.push_back(percentile(Safe, 50));
    VersMed.push_back(percentile(Vers, 50));
    std::printf("heap %3zu MB (%7d cells): safe-point %8.2f ms, "
                "versioned %6.3f ms\n",
                HeapMb, NumCells, SafeMed.back(), VersMed.back());
  }

  double VersMin = *std::min_element(VersMed.begin(), VersMed.end());
  double VersMax = *std::max_element(VersMed.begin(), VersMed.end());
  double SafeMin = *std::min_element(SafeMed.begin(), SafeMed.end());
  double SafeMax = *std::max_element(SafeMed.begin(), SafeMed.end());
  std::printf("\nsafe-point pause spread across heaps: %8.2f ms\n",
              SafeMax - SafeMin);
  std::printf("versioned  pause spread across heaps: %8.3f ms\n\n",
              VersMax - VersMin);

  bool BelowOk = true;
  for (size_t I = 0; I < VersMed.size(); ++I)
    BelowOk = BelowOk && VersMed[I] < SafeMed[I];
  bool ZeroOk = VersMax <= 2.0;
  // Heap-size independence: the versioned spread is bounded by a constant
  // while the safe-point pause visibly grew over the same sweep.
  bool FlatOk = (VersMax - VersMin) <= 1.0 && SafeMax > SafeMin;

  std::printf("relation 1 (versioned < safe-point at every size):  %s\n",
              BelowOk ? "holds" : "VIOLATED");
  std::printf("relation 2 (versioned pause ~zero, <= 2 ms):        %s\n",
              ZeroOk ? "holds" : "VIOLATED");
  std::printf("relation 3 (versioned flat while safe-point grows): %s\n",
              FlatOk ? "holds" : "VIOLATED");

  if (Check) {
    BenchJson J;
    for (size_t I = 0; I < VersRaw.size(); ++I) {
      std::string Suffix = std::to_string(HeapsMb[I]) + "mb";
      J.histogram("bench.codeversion.pause_safepoint_ms_" + Suffix,
                  SafeRaw[I]);
      J.histogram("bench.codeversion.pause_versioned_ms_" + Suffix,
                  VersRaw[I]);
    }
    J.value("bench.codeversion.versioned_spread_ms", VersMax - VersMin);
    J.value("bench.codeversion.safepoint_spread_ms", SafeMax - SafeMin);
    J.write("BENCH_codeversion.json");
  }
  if (Check && !(BelowOk && ZeroOk && FlatOk)) {
    std::fprintf(stderr, "codeversion: pause relations violated\n");
    return 1;
  }
  return 0;
}
