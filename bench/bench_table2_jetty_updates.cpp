//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Table 2**: the Jetty webserver update stream (5.1.0
/// through 5.1.10). Each release boots a fresh VM on the previous version,
/// puts it under httperf-style load, and applies the dynamic update. The
/// reproduction targets: every change summary matches the table, every
/// update applies except 5.1.3 (whose diff touches ThreadedServer.
/// acceptSocket and PoolThread.run, both always on stack), and the
/// method-body-only baseline supports only the first and last three
/// releases.
///
//===----------------------------------------------------------------------===//

#include "BenchTableCommon.h"

#include "apps/JettyApp.h"

using namespace jvolve;

int main() {
  AppModel App = makeJettyApp();
  std::vector<ReleaseOutcome> Rows = evaluateApp(App);
  printUpdateStreamTable("Table 2: updates to Jetty (5.1.0 .. 5.1.10)",
                         Rows);

  // Paper expectations.
  for (const ReleaseOutcome &R : Rows) {
    bool ShouldApply = R.Version != "5.1.3";
    if (R.supported() != ShouldApply) {
      std::printf("MISMATCH: %s expected %s\n", R.Version.c_str(),
                  ShouldApply ? "applied" : "timeout");
      return 1;
    }
  }
  std::printf("Matches paper: 9 of 10 Jetty updates applied; 5.1.3 cannot "
              "reach a DSU safe point.\n");
  return 0;
}
