//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the DSU safe-point machinery (§3.2): how updates reach safe
/// points across thread/stack scenarios, and what each mechanism (plain
/// yield-point polling, return barriers, on-stack replacement) buys.
///
/// Scenario matrix:
///   - idle VM                      -> immediate safe point
///   - loops, unchanged methods     -> immediate safe point
///   - changed transient method     -> return barrier, then applied
///   - category-(2) infinite loop   -> OSR applies it; without OSR it
///                                     times out
///   - changed infinite loop        -> retry-only: timeout (no mechanism
///                                     suffices); rescue rung: identity
///                                     remap admits the same-size body
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/TablePrinter.h"
#include "vm/VM.h"

#include <cstdio>
#include <functional>
#include <memory>

using namespace jvolve;

namespace {

VM::Config benchConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 8u << 20;
  return C;
}

/// Server with a sleepy infinite loop() calling a transient handle().
ClassSet serverProgram(int64_t HandleValue, bool ChangeLoop) {
  ClassSet Set;
  ClassBuilder S("Server");
  S.staticField("total", "I");
  S.staticMethod("handle", "()V")
      .iconst(40)
      .intrinsic(IntrinsicId::SleepTicks)
      .getstatic("Server", "total", "I")
      .iconst(HandleValue)
      .iadd()
      .putstatic("Server", "total", "I")
      .ret();
  MethodBuilder &L = S.staticMethod("loop", "()V");
  L.label("top")
      .invokestatic("Server", "handle", "()V")
      .iconst(ChangeLoop ? 11 : 10)
      .intrinsic(IntrinsicId::SleepTicks)
      .jump("top");
  Set.add(S.build());
  return Set;
}

/// Data/Worker pair: Worker.run() loops forever reading Data fields.
ClassSet osrProgram(bool Extra) {
  ClassSet Set;
  {
    ClassBuilder D("Data");
    D.field("a", "I");
    if (Extra)
      D.field("b", "I");
    Set.add(D.build());
  }
  {
    ClassBuilder St("Store");
    St.staticField("data", "LData;");
    St.staticField("sum", "I");
    St.staticMethod("init", "()V")
        .locals(1)
        .newobj("Data")
        .store(0)
        .load(0)
        .iconst(5)
        .putfield("Data", "a", "I")
        .load(0)
        .putstatic("Store", "data", "LData;")
        .ret();
    Set.add(St.build());
  }
  {
    ClassBuilder W("Worker");
    W.staticMethod("run", "()V")
        .label("top")
        .getstatic("Store", "sum", "I")
        .getstatic("Store", "data", "LData;")
        .getfield("Data", "a", "I")
        .iadd()
        .putstatic("Store", "sum", "I")
        .iconst(15)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    Set.add(W.build());
  }
  return Set;
}

struct Scenario {
  const char *Name;
  std::function<UpdateResult()> Run;
};

} // namespace

int main() {
  std::vector<Scenario> Scenarios;

  Scenarios.push_back({"idle VM, no threads", [] {
    VM TheVM(benchConfig());
    TheVM.loadProgram(serverProgram(1, false));
    Updater U(TheVM);
    return U.applyNow(
        Upt::prepare(serverProgram(1, false), serverProgram(2, false), "v"));
  }});

  Scenarios.push_back({"running loop, changed method transient", [] {
    VM TheVM(benchConfig());
    TheVM.loadProgram(serverProgram(1, false));
    TheVM.spawnThread("Server", "loop", "()V", {}, "srv", true);
    TheVM.run(30); // park inside handle()
    Updater U(TheVM);
    return U.applyNow(
        Upt::prepare(serverProgram(1, false), serverProgram(2, false), "v"));
  }});

  Scenarios.push_back({"category-(2) infinite loop, OSR enabled", [] {
    VM TheVM(benchConfig());
    TheVM.loadProgram(osrProgram(false));
    TheVM.callStatic("Store", "init", "()V");
    TheVM.spawnThread("Worker", "run", "()V", {}, "wrk", true);
    TheVM.run(100);
    Updater U(TheVM);
    return U.applyNow(Upt::prepare(osrProgram(false), osrProgram(true), "v"));
  }});

  Scenarios.push_back({"category-(2) infinite loop, OSR disabled", [] {
    VM TheVM(benchConfig());
    TheVM.loadProgram(osrProgram(false));
    TheVM.callStatic("Store", "init", "()V");
    TheVM.spawnThread("Worker", "run", "()V", {}, "wrk", true);
    TheVM.run(100);
    Updater U(TheVM);
    UpdateOptions Opts;
    Opts.EnableOsr = false;
    Opts.TimeoutTicks = 40'000;
    return U.applyNow(Upt::prepare(osrProgram(false), osrProgram(true), "v"),
                      Opts);
  }});

  Scenarios.push_back({"changed infinite loop, retry-only", [] {
    VM TheVM(benchConfig());
    TheVM.loadProgram(serverProgram(1, false));
    TheVM.spawnThread("Server", "loop", "()V", {}, "srv", true);
    TheVM.run(100);
    Updater U(TheVM);
    UpdateOptions Opts;
    Opts.TimeoutTicks = 40'000;
    return U.applyNow(
        Upt::prepare(serverProgram(1, false), serverProgram(1, true), "v"),
        Opts);
  }});

  Scenarios.push_back({"changed infinite loop, rescue enabled", [] {
    VM TheVM(benchConfig());
    TheVM.loadProgram(serverProgram(1, false));
    TheVM.spawnThread("Server", "loop", "()V", {}, "srv", true);
    TheVM.run(100);
    Updater U(TheVM);
    UpdateOptions Opts;
    Opts.TimeoutTicks = 40'000;
    Opts.EnableRescue = true;
    return U.applyNow(
        Upt::prepare(serverProgram(1, false), serverProgram(1, true), "v"),
        Opts);
  }});

  std::printf("=== DSU safe-point mechanisms (paper §3.2) ===\n\n");
  TablePrinter TP;
  TP.setHeader({"Scenario", "outcome", "rung", "attempts", "barriers", "OSR",
                "ticks-to-quiescence"});
  for (Scenario &S : Scenarios) {
    UpdateResult R = S.Run();
    TP.addRow({S.Name, updateStatusName(R.Status),
               quiescenceRungName(R.ResolvedRung),
               std::to_string(R.SafePointAttempts),
               std::to_string(R.ReturnBarriersInstalled),
               std::to_string(R.OsrReplacements),
               R.Status == UpdateStatus::Applied
                   ? std::to_string(R.TicksToSafePoint)
                   : "-"});
  }
  std::printf("%s", TP.render().c_str());
  std::printf("\nShape: return barriers admit updates to transiently "
              "on-stack changed methods; OSR admits updates whose only "
              "on-stack dependence is category (2); a changed method that "
              "never leaves the stack defeats both (the paper's two "
              "unsupported updates). The rung column shows where the "
              "escalation ladder resolved each attempt: retry-only leaves "
              "the infinite-loop update at 'abort', while the rescue rung "
              "synthesizes an identity stack map for the same-size body "
              "and reaches quiescence anyway.\n");
  return 0;
}
