//===----------------------------------------------------------------------===//
///
/// \file
/// Transformer-synthesis coverage over the three modeled update streams
/// (Tables 2-4): for each of the 22 releases, run the synthesis pass and
/// report what it inferred — copy/rename/flagged field counts, the
/// impact-closure and bulk-settle set sizes, and the synthesis wall time.
///
/// The headline claim this bench pins down: synthesis handles every
/// stream, and the fields it hands back to the operator are exactly the
/// statically-unresolvable ones — same-type dropped/added pairs with no
/// copy-chain evidence (which only a human can pair safely) plus the one
/// genuine value conversion, JES 1.3.2's User.forwardAddresses (the
/// paper's Fig. 2 String[] -> EmailAddress[] change). The process exits
/// 1 when the flagged set drifts from the pinned reproduction numbers or
/// when synthesis over all 22 streams blows a generous time budget.
///
/// Writes BENCH_synthesis.json in the telemetry snapshot format for
/// scripts/metrics-diff.py.
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "bytecode/Builtins.h"
#include "dsu/Synthesis.h"
#include "dsu/Upt.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace jvolve;

int main() {
  const AppModel Apps[] = {makeJettyApp(), makeEmailApp(),
                           makeCrossFtpApp()};

  std::printf("%-18s %-8s %6s %7s %7s %9s %7s %8s\n", "app", "release",
              "copies", "renames", "flagged", "untouched", "impact",
              "ms");
  std::vector<std::string> Flagged;
  std::vector<double> Times;
  size_t Renames = 0, Streams = 0;
  for (const AppModel &App : Apps) {
    for (size_t V = 1; V < App.numVersions(); ++V) {
      ClassSet Old = App.version(V - 1);
      ClassSet New = App.version(V);
      ensureBuiltins(Old);
      ensureBuiltins(New);
      UpdateSpec Spec = Upt::computeSpec(Old, New);
      Stopwatch SW;
      SynthesisReport R = TransformerSynthesis(Old, New).synthesize(Spec);
      double Ms = SW.elapsedMs();
      Times.push_back(Ms);
      Renames += R.NumRenames;
      ++Streams;
      for (const std::string &F : R.flaggedFields())
        Flagged.push_back(App.name() + " " + App.versionName(V) + ": " + F);
      std::printf("%-18s %-8s %6zu %7zu %7zu %9zu %7zu %8.3f\n",
                  App.name().c_str(), App.versionName(V).c_str(),
                  R.NumCopies, R.NumRenames, R.NumFlagged,
                  R.UntouchedClasses.size(), R.ImpactClasses.size(), Ms);
    }
  }

  double TotalMs = 0;
  for (double T : Times)
    TotalMs += T;
  std::printf("\n%zu streams synthesized in %.2f ms total; %zu field(s) "
              "need a human rule:\n",
              Streams, TotalMs, Flagged.size());
  for (const std::string &F : Flagged)
    std::printf("  %s\n", F.c_str());

  BenchJson J;
  J.value("bench.synth.streams", static_cast<long long>(Streams));
  J.value("bench.synth.renames", static_cast<long long>(Renames));
  J.value("bench.synth.flagged", static_cast<long long>(Flagged.size()));
  J.histogram("bench.synth.ms", Times);
  J.write("BENCH_synthesis.json");

  // Check: pinned reproduction numbers. 21 fields flagged across the 22
  // streams (evidence-free same-type pairs in jetty 5.1.6/5.1.7 and JES
  // 1.3), among them the Fig. 2 value conversion; the modeled apps ship
  // no constructor bodies, so no rename is evidenced.
  bool Ok = Streams == 22;
  bool SawFig2 = false;
  for (const std::string &F : Flagged)
    if (F.find("User.forwardAddresses") != std::string::npos)
      SawFig2 = true;
  if (Flagged.size() != 21 || !SawFig2) {
    std::printf("MISMATCH: expected 21 flagged fields including "
                "User.forwardAddresses, got %zu\n",
                Flagged.size());
    Ok = false;
  }
  if (Renames != 0) {
    std::printf("MISMATCH: expected no evidenced renames in the modeled "
                "streams, got %zu\n",
                Renames);
    Ok = false;
  }
  if (TotalMs > 5000) {
    std::printf("MISMATCH: synthesis over all streams took %.1f ms "
                "(budget 5000)\n",
                TotalMs);
    Ok = false;
  }
  if (Ok)
    std::printf("Matches expectation: synthesis covers every stream; the "
                "flagged set is exactly the statically-unresolvable "
                "fields (incl. Fig. 2).\n");
  return Ok ? 0 : 1;
}
