//===----------------------------------------------------------------------===//
///
/// \file
/// Cost of the update transaction: what does crash-safety buy, and what
/// does it cost? For growing object counts the bench measures
///
///   * apply (no cert)   — the plain five-step update pause,
///   * apply (certified) — the same update with the mandatory post-update
///                         heap + registry certification,
///   * certification     — the certify pass alone (delta of the above),
///   * rollback          — the worst-case failed update: the object
///                         transformer faults on the *last* object, so the
///                         whole install, DSU collection, and N-1
///                         transformations must be undone.
///
/// Rollback cost should track heap size (the undo is a snapshot restore
/// plus a linear from-space walk clearing forwarding marks), and
/// certification should stay a small multiple of a plain GC trace.
///
/// Environment knobs: JVOLVE_ROLLBACK_TRIALS (default 3),
/// JVOLVE_ROLLBACK_QUICK=1 (drop the largest row).
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/FaultInjector.h"
#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>
#include <memory>

using namespace jvolve;

namespace {

/// One updated class with three int fields; v2 adds a fourth.
ClassSet program(bool Updated) {
  ClassSet Set;
  ClassBuilder CB("Change");
  CB.field("i0", "I").field("i1", "I").field("i2", "I");
  if (Updated)
    CB.field("added", "I");
  Set.add(CB.build());
  ClassBuilder H("Holder");
  H.staticField("arr", "[LObject;");
  Set.add(H.build());
  return Set;
}

/// Builds a VM holding \p Count live Change instances behind Holder.arr.
std::unique_ptr<VM> populate(int Count) {
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 256u << 20;
  auto TheVM = std::make_unique<VM>(Cfg);
  TheVM->loadProgram(program(false));
  ClassRegistry &Reg = TheVM->registry();
  ClassId ChangeId = Reg.idOf("Change");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("Object"));
  Ref Arr = TheVM->allocateArray(ArrId, Count);
  Reg.cls(Reg.idOf("Holder")).Statics[0] = Slot::ofRef(Arr);
  TransformCtx Ctx(*TheVM, nullptr);
  for (int I = 0; I < Count; ++I)
    Ctx.setElemRef(Arr, I, TheVM->allocateObject(ChangeId));
  return TheVM;
}

double applyOnce(int Count, bool Certify, bool FailLast, double *CertMs,
                 double *RollbackMs) {
  std::unique_ptr<VM> TheVM = populate(Count);
  if (FailLast)
    TheVM->faults().arm(FaultInjector::Site::TransformerNthObject, /*Fire=*/1,
                        /*Skip=*/static_cast<uint64_t>(Count) - 1);
  Updater U(*TheVM);
  UpdateOptions Opts;
  Opts.CertifyAfterUpdate = Certify;
  UpdateResult R = U.applyNow(Upt::prepare(program(false), program(true), "v1"),
                              Opts);
  UpdateStatus Want =
      FailLast ? UpdateStatus::FailedTransformer : UpdateStatus::Applied;
  if (R.Status != Want) {
    std::fprintf(stderr, "unexpected status %s: %s\n",
                 updateStatusName(R.Status), R.Message.c_str());
    std::exit(1);
  }
  if (CertMs)
    *CertMs = R.CertifyMs;
  if (RollbackMs)
    *RollbackMs = R.RollbackMs;
  return R.TotalPauseMs;
}

} // namespace

int main() {
  int Trials = 3;
  if (const char *E = std::getenv("JVOLVE_ROLLBACK_TRIALS"))
    Trials = std::atoi(E);
  bool Quick = std::getenv("JVOLVE_ROLLBACK_QUICK") != nullptr;

  std::printf("=== Update-transaction cost: apply vs certify vs rollback "
              "(%d trials, median) ===\n",
              Trials);
  TablePrinter TP;
  TP.setHeader({"objects", "apply(ms)", "apply+cert(ms)", "cert(ms)",
                "rollback total(ms)", "undo(ms)"});

  for (int Count : {10'000, 100'000, 400'000}) {
    if (Quick && Count == 400'000)
      break;
    std::vector<double> Apply, ApplyCert, Cert, RollTotal, Undo;
    for (int T = 0; T < Trials; ++T) {
      Apply.push_back(applyOnce(Count, false, false, nullptr, nullptr));
      double CertMs = 0;
      ApplyCert.push_back(applyOnce(Count, true, false, &CertMs, nullptr));
      Cert.push_back(CertMs);
      double RollbackMs = 0;
      RollTotal.push_back(applyOnce(Count, true, true, nullptr, &RollbackMs));
      Undo.push_back(RollbackMs);
    }
    TP.addRow({std::to_string(Count),
               TablePrinter::fmt(summarizeQuartiles(Apply).Median, 2),
               TablePrinter::fmt(summarizeQuartiles(ApplyCert).Median, 2),
               TablePrinter::fmt(summarizeQuartiles(Cert).Median, 2),
               TablePrinter::fmt(summarizeQuartiles(RollTotal).Median, 2),
               TablePrinter::fmt(summarizeQuartiles(Undo).Median, 2)});
  }
  std::printf("%s", TP.render().c_str());
  std::printf("rollback total includes the doomed install + DSU collection "
              "+ N-1 transformations; undo is the snapshot restore alone.\n");
  return 0;
}
