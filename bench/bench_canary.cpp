//===----------------------------------------------------------------------===//
///
/// \file
/// Canary revert-path pause (ISSUE 6): how much does taking an update
/// *back* cost, compared to putting it in?
///
/// A revert is a forward update run in reverse — same safe-point hunt,
/// same DSU collection, same transformer walk over the same live heap —
/// so its pause should be the same order as the forward eager pause, plus
/// the undo-log restores. This bench pins that relation: the Table-1
/// shaped ring update (add a field to Cell, copying transformer) is
/// applied with a canary window armed, then reverted through
/// Updater::revert, on a fresh VM per trial.
///
/// Emits three BENCH_*.json files in the metrics snapshot format that
/// scripts/metrics-diff.py consumes:
///   BENCH_canary_forward.json — bench.canary.pause_ms over forward trials
///   BENCH_canary_revert.json  — bench.canary.pause_ms over revert trials
///   BENCH_canary.json         — both histograms under distinct names,
///                               plus reverts-completed / residual counts
/// so tier1 can gate `bench.canary.pause_ms` between the forward and
/// revert dumps with a --max-delta budget.
///
/// `--check` exits 1 unless every trial reverts to convergence: status
/// Reverted, zero residual new-version objects, and a median revert pause
/// within 3x the median forward pause.
///
/// Environment knobs: JVOLVE_CANARYBENCH_TRIALS (default 5),
/// JVOLVE_CANARYBENCH_CELLS (default 60000).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "bytecode/Builder.h"
#include "dsu/Canary.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Stats.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

using namespace jvolve;

namespace {

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

/// The Cell ring of bench_lazy_pause, minus the idler: the canary's own
/// watchdog keeps virtual time moving, and both the forward and reverse
/// updates here are eager.
ClassSet ringProgram(bool Updated) {
  ClassSet Set;
  {
    ClassBuilder CB("Cell");
    CB.field("v", "I");
    CB.field("next", "LCell;");
    if (Updated)
      CB.field("added", "I");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Ring");
    CB.staticField("head", "LCell;");
    CB.staticMethod("build", "(I)V")
        .locals(5)
        .newobj("Cell")
        .store(1)
        .load(1)
        .store(4) // first
        .load(1)
        .store(2) // cur = first
        .iconst(1)
        .store(3)
        .label("loop")
        .load(3)
        .load(0)
        .branch(Opcode::IfICmpGe, "done")
        .newobj("Cell")
        .store(1)
        .load(1)
        .load(3)
        .putfield("Cell", "v", "I")
        .load(2)
        .load(1)
        .putfield("Cell", "next", "LCell;")
        .load(1)
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(2)
        .load(4)
        .putfield("Cell", "next", "LCell;") // close the ring
        .load(2)
        .putstatic("Ring", "head", "LCell;")
        .ret();
    Set.add(CB.build());
  }
  return Set;
}

std::unique_ptr<VM> makeVm(int NumCells) {
  VM::Config C;
  // Room for the ring plus two DSU collections' worth of duplicates.
  C.HeapSpaceBytes = 96u << 20;
  auto TheVM = std::make_unique<VM>(C);
  TheVM->loadProgram(ringProgram(false));
  TheVM->callStatic("Ring", "build", "(I)V", {Slot::ofInt(NumCells)});
  return TheVM;
}

UpdateBundle ringUpdate(const char *Name) {
  UpdateBundle B = Upt::prepare(ringProgram(false), ringProgram(true), Name);
  B.ObjectTransformers["Cell"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setInt(To, "v", Ctx.getInt(From, "v"));
    Ctx.setRef(To, "next", Ctx.getRef(From, "next"));
    Ctx.setInt(To, "added", 0);
  };
  return B;
}

} // namespace

int main(int argc, char **argv) {
  bool Check = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check]\n"
                   "  --check  exit 1 unless every trial reverts to "
                   "convergence within the pause budget\n",
                   argv[0]);
      return 2;
    }
  }

  const int Trials = envInt("JVOLVE_CANARYBENCH_TRIALS", 5);
  const int NumCells = envInt("JVOLVE_CANARYBENCH_CELLS", 60'000);

  std::printf("=== bench_canary: forward vs revert pause ===\n");
  std::printf("(ring of %d Cells, +1 field update with copying transformer, "
              "canary window + explicit revert, %d trial(s))\n\n",
              NumCells, Trials);

  std::vector<double> Fwd, Rev;
  int Reverted = 0;
  unsigned long long ResidualTotal = 0;
  for (int T = 0; T < Trials; ++T) {
    std::unique_ptr<VM> TheVM = makeVm(NumCells);
    Updater U(*TheVM);
    UpdateOptions Opts;
    // As in bench_lazy_pause: certification's full heap walk would drown
    // the phases under comparison, on both directions equally.
    Opts.CertifyAfterUpdate = false;
    // A window long enough to still be open when the revert is requested,
    // checked rarely (nothing here traps; the trigger is explicit).
    Opts.CanaryWindow.WindowTicks = 100'000'000;
    Opts.CanaryWindow.CheckIntervalTicks = 1'000'000;
    UpdateResult R = U.applyNow(ringUpdate("cb"), Opts);
    if (R.Status != UpdateStatus::Applied || !R.CanaryArmed) {
      std::fprintf(stderr, "canary: forward update failed: %s\n",
                   R.Message.c_str());
      return 1;
    }
    Fwd.push_back(R.TotalPauseMs);

    UpdateResult RR = U.revert("bench revert");
    Rev.push_back(RR.TotalPauseMs);
    auto *Ctl = static_cast<CanaryController *>(TheVM->canary());
    if (RR.Status == UpdateStatus::Reverted) {
      ++Reverted;
      ResidualTotal += Ctl->report().ResidualNewObjects;
    } else {
      std::fprintf(stderr, "canary: trial %d did not revert: %s\n", T,
                   RR.Message.c_str());
    }
  }

  double FwdMs = percentile(Fwd, 50);
  double RevMs = percentile(Rev, 50);
  std::printf("forward pause (GC + %d transformers):   %8.2f ms\n", NumCells,
              FwdMs);
  std::printf("revert pause  (GC + reverse + restore): %8.2f ms  (%.2fx)\n",
              RevMs, RevMs / std::max(FwdMs, 1e-9));
  std::printf("reverts completed: %d/%d, residual new-version objects: "
              "%llu\n\n",
              Reverted, Trials, ResidualTotal);

  BenchJson Forward, Revert, Combined;
  Forward.histogram("bench.canary.pause_ms", Fwd);
  Revert.histogram("bench.canary.pause_ms", Rev);
  Combined.histogram("bench.canary.forward_pause_ms", Fwd);
  Combined.histogram("bench.canary.revert_pause_ms", Rev);
  Combined.value("bench.canary.reverts_completed", Reverted);
  Combined.value("bench.canary.residual_new_objects",
                 static_cast<long long>(ResidualTotal));
  if (!Forward.write("BENCH_canary_forward.json") ||
      !Revert.write("BENCH_canary_revert.json") ||
      !Combined.write("BENCH_canary.json"))
    return 2;

  bool ConvergeOk = Reverted == Trials && ResidualTotal == 0;
  bool PauseOk = RevMs > 0 && RevMs <= 3.0 * FwdMs;
  std::printf("relation 1 (every trial reverts, zero residual): %s\n",
              ConvergeOk ? "holds" : "VIOLATED");
  std::printf("relation 2 (revert pause within 3x forward):     %s\n",
              PauseOk ? "holds" : "VIOLATED");
  if (Check && !(ConvergeOk && PauseOk)) {
    std::fprintf(stderr, "canary: revert-path relations violated\n");
    return 1;
  }
  return 0;
}
