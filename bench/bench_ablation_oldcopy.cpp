//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the §3.5 old-copy-space optimization ("We could instead
/// copy the old versions to a special block of memory and reclaim it when
/// the collection completes"), implemented in this reproduction.
///
/// Compares, per update over N transformed objects:
///   - total DSU pause (the extra block adds no measurable cost),
///   - heap occupancy immediately after the update (the default leaves
///     the dead duplicates in to-space until the *next* collection),
///   - the cost of that deferred reclamation (the follow-up GC).
///
//===----------------------------------------------------------------------===//

#include "bytecode/Builder.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"
#include "support/TablePrinter.h"
#include "vm/VM.h"

#include <cstdio>

using namespace jvolve;

namespace {

ClassSet itemVersion(bool Extra) {
  ClassSet Set;
  ClassBuilder C("Item");
  C.field("a", "I");
  C.field("b", "I");
  C.field("link", "LItem;");
  if (Extra)
    C.field("c", "I");
  Set.add(C.build());
  ClassBuilder H("H");
  H.staticField("arr", "[LItem;");
  Set.add(H.build());
  return Set;
}

struct Sample {
  double PauseMs;
  size_t HeapAfterUpdate;
  double FollowupGcMs;
  uint64_t OldCopyBytes;
};

Sample runOnce(size_t NumObjects, bool UseOldCopySpace) {
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = NumObjects * 120 + (4u << 20);
  VM TheVM(Cfg);
  TheVM.loadProgram(itemVersion(false));

  ClassRegistry &Reg = TheVM.registry();
  ClassId ItemId = Reg.idOf("Item");
  ClassId ArrId = Reg.arrayClassOf(Type::refTy("Item"));
  Ref Arr = TheVM.allocateArray(ArrId, static_cast<int64_t>(NumObjects));
  Reg.cls(Reg.idOf("H")).Statics[0] = Slot::ofRef(Arr);
  for (size_t I = 0; I < NumObjects; ++I) {
    Ref Obj = TheVM.allocateObject(ItemId);
    setIntAt(Obj, ObjectHeaderBytes, static_cast<int64_t>(I));
    Arr = Reg.cls(Reg.idOf("H")).Statics[0].RefVal;
    setRefAt(Arr, arrayElemOffset(static_cast<int64_t>(I)), Obj);
  }

  UpdateOptions Opts;
  Opts.UseOldCopySpace = UseOldCopySpace;
  Updater U(TheVM);
  UpdateResult R = U.applyNow(
      Upt::prepare(itemVersion(false), itemVersion(true), "v1"), Opts);
  if (R.Status != UpdateStatus::Applied) {
    std::fprintf(stderr, "oldcopy bench: update failed: %s\n",
                 R.Message.c_str());
    std::exit(1);
  }

  Sample S;
  S.PauseMs = R.TotalPauseMs;
  S.HeapAfterUpdate = TheVM.heap().bytesAllocated();
  S.OldCopyBytes = R.Gc.OldCopySpaceBytes;
  CollectionStats Followup = TheVM.collectGarbage();
  S.FollowupGcMs = Followup.GcMs;
  return S;
}

} // namespace

int main() {
  std::printf("=== §3.5 old-copy-space optimization ===\n\n");
  TablePrinter TP;
  TP.setHeader({"objects", "mode", "pause(ms)", "heap after (MB)",
                "next GC (ms)", "old-copy block (MB)"});
  for (size_t N : {100'000u, 400'000u}) {
    for (bool Mode : {false, true}) {
      Sample S = runOnce(N, Mode);
      TP.addRow({std::to_string(N),
                 Mode ? "old-copy space" : "to-space (paper default)",
                 TablePrinter::fmt(S.PauseMs, 1),
                 TablePrinter::fmt(S.HeapAfterUpdate / 1048576.0, 1),
                 TablePrinter::fmt(S.FollowupGcMs, 1),
                 TablePrinter::fmt(S.OldCopyBytes / 1048576.0, 1)});
    }
  }
  std::printf("%s\n", TP.render().c_str());
  std::printf("Shape: the dedicated block removes the dead duplicates "
              "from the heap immediately (lower post-update occupancy and "
              "a cheaper follow-up collection) at no extra pause cost.\n");
  return 0;
}
