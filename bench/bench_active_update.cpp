//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation of the §3.5 future-work extension (implemented here): updating
/// *changed* methods while they run, UpStare-style, with user-supplied pc
/// maps and frame transformers.
///
/// The paper's two unsupported updates — Jetty 5.1.3 and JavaEmailServer
/// 1.3, both of which change methods that never leave the stack — are
/// applied twice: once with the stock Jvolve mechanisms (they time out,
/// as in the paper) and once with active-method mappings registered (they
/// apply). With the extension, all 22 of the 22 updates are supported.
///
//===----------------------------------------------------------------------===//

#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace jvolve;

namespace {

VM::Config benchConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 16u << 20;
  return C;
}

std::unique_ptr<VM> bootJetty(const AppModel &App) {
  auto TheVM = std::make_unique<VM>(benchConfig());
  TheVM->loadProgram(App.version(2)); // 5.1.2
  startJettyThreads(*TheVM);
  LoadDriver::Options LO;
  LO.Port = JettyPort;
  LoadDriver(*TheVM, LO).runWithLoad(3'000);
  return TheVM;
}

std::unique_ptr<VM> bootJes(const AppModel &App) {
  auto TheVM = std::make_unique<VM>(benchConfig());
  TheVM->loadProgram(App.version(3)); // 1.2.4
  startEmailThreads(*TheVM);
  TheVM->run(1'000);
  return TheVM;
}

void addJetty513Mappings(UpdateBundle &B) {
  ActiveMethodMapping Accept;
  Accept.Method = {"ThreadedServer", "acceptSocket", "(I)I"};
  Accept.PcMap = {{0, 0}, {1, 1}, {2, 4}};
  B.addActiveMapping(std::move(Accept));

  ActiveMethodMapping Run;
  Run.Method = {"PoolThread", "run", "(I)V"};
  Run.PcMap = {{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 7}, {5, 8}};
  B.addActiveMapping(std::move(Run));
}

void addJes13Mappings(UpdateBundle &B, const AppModel &App) {
  B.addActiveMapping(ActiveMethodMapping::identity(
      {"Pop3Processor", "run", "(I)V"},
      App.version(4).find("Pop3Processor")->findMethod("run")->Code.size()));
  B.addActiveMapping(ActiveMethodMapping::identity(
      {"SMTPSender", "run", "()V"},
      App.version(4).find("SMTPSender")->findMethod("run")->Code.size()));
}

} // namespace

int main() {
  AppModel Jetty = makeJettyApp();
  AppModel Jes = makeEmailApp();

  std::printf("=== §3.5 extension: updating active methods "
              "(UpStare-style) ===\n\n");
  TablePrinter TP;
  TP.setHeader({"Update", "stock Jvolve", "with active mappings",
                "frames remapped"});

  UpdateOptions ShortTimeout;
  ShortTimeout.TimeoutTicks = 60'000;

  struct Case {
    const char *Name;
    std::function<std::unique_ptr<VM>()> Boot;
    std::function<UpdateBundle()> Prepare;
    std::function<void(UpdateBundle &)> AddMappings;
  };
  std::vector<Case> Cases = {
      {"Jetty 5.1.2 -> 5.1.3", [&] { return bootJetty(Jetty); },
       [&] { return Upt::prepare(Jetty.version(2), Jetty.version(3),
                                 "v512"); },
       [&](UpdateBundle &B) { addJetty513Mappings(B); }},
      {"JES 1.2.4 -> 1.3", [&] { return bootJes(Jes); },
       [&] {
         return Upt::prepare(Jes.version(3), Jes.version(4), "v124");
       },
       [&](UpdateBundle &B) { addJes13Mappings(B, Jes); }},
  };

  bool AllMappedApplied = true;
  for (Case &C : Cases) {
    UpdateStatus Stock;
    {
      std::unique_ptr<VM> TheVM = C.Boot();
      Updater U(*TheVM);
      Stock = U.applyNow(C.Prepare(), ShortTimeout).Status;
    }
    UpdateResult Mapped;
    {
      std::unique_ptr<VM> TheVM = C.Boot();
      UpdateBundle B = C.Prepare();
      C.AddMappings(B);
      Updater U(*TheVM);
      Mapped = U.applyNow(std::move(B), ShortTimeout);
    }
    AllMappedApplied &= Mapped.Status == UpdateStatus::Applied;
    TP.addRow({C.Name, updateStatusName(Stock),
               updateStatusName(Mapped.Status),
               std::to_string(Mapped.ActiveFramesRemapped)});
  }
  std::printf("%s\n", TP.render().c_str());

  std::printf("With the paper's stock mechanisms these two updates cannot "
              "reach a DSU safe point (20 of 22 supported).\n");
  std::printf("With §3.5 active-method mappings: %s -> 22 of 22 updates "
              "supported.\n",
              AllMappedApplied ? "both apply" : "MISMATCH");
  return AllMappedApplied ? 0 : 1;
}
