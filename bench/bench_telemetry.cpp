//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming-telemetry cost (ISSUE 7): what does observability charge?
///
/// Two measurements over the lock-free streaming pipeline
/// (support/TelemetryStream.h):
///
///   1. Raw event-write throughput: ns per tryWrite through the emitting
///      thread's buffer with an in-memory session attached, drops and all
///      — the price a hot path pays per trace event.
///   2. Full-suite overhead: the email release history (every release
///      applied under load, as jvolve-serve does) timed in two
///      configurations. Baseline: metrics enabled, no streaming session,
///      no windows — the instrumented production posture every tool runs
///      with. Streaming: the same run with a live JSONL session plus
///      windowed aggregation attached. The delta isolates what THIS
///      subsystem (buffers, writer thread, file sink, window rolls)
///      charges on top of plain counters. Trials interleave the two
///      configurations pairwise in process CPU time; the gate reads
///      min(median pair overhead, quietest-pair overhead) — a real
///      regression moves both estimators past the budget, while shared-
///      host noise rarely moves both the same way.
///
/// Emits three BENCH_*.json files in the metrics snapshot format that
/// scripts/metrics-diff.py consumes:
///   BENCH_telemetry_off.json — bench.telemetry.suite_ms, metrics only
///   BENCH_telemetry_on.json  — bench.telemetry.suite_ms, session attached
///   BENCH_telemetry.json     — both histograms under distinct names, the
///                              overhead percentage, write-path costs,
///                              and the pipeline's event accounting
/// so tier1 can gate `bench.telemetry.suite_ms` between the off and on
/// dumps with a --max-delta budget.
///
/// `--check` exits 1 unless (a) the min-of-N suite overhead stays in
/// single digits (<= 10%) and (b) the pipeline's books balance: every
/// event ever attempted is either streamed into a session or counted
/// dropped — attempted == streamed + dropped, nothing silent.
///
/// Environment knobs: JVOLVE_TELBENCH_TRIALS (default 5),
/// JVOLVE_TELBENCH_REPS (history runs per timed region, default 8 — long
/// regions shrink relative noise), JVOLVE_TELBENCH_EVENTS (write-path
/// events, default 400000).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "apps/EmailApp.h"
#include "apps/Workload.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Stats.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

using namespace jvolve;

namespace {

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

/// Process CPU milliseconds (all threads — the writer's share counts).
/// CPU time, not wall time: on a shared host other tenants' noise swamps
/// a single-digit-percent signal, and the pipeline's cost IS the cycles
/// it burns.
double cpuMs() {
  return static_cast<double>(std::clock()) * 1e3 / CLOCKS_PER_SEC;
}

/// One pass over the email release history under load — jvolve-serve's
/// core loop without the narration. Timeouts retry with identity
/// active-method mappings the way the tool does, so the work is the same
/// whether or not a telemetry session is watching it.
void runEmailHistory() {
  AppModel App = makeEmailApp();
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);
  TheVM.loadProgram(App.version(0));
  startEmailThreads(TheVM);
  TheVM.net().setAdmissionLimit(Pop3Port, 16);

  LoadDriver::Options LO;
  LO.Port = Pop3Port;
  LoadDriver Driver(TheVM, LO);
  Driver.runWithLoad(10'000);

  size_t Version = 0;
  for (size_t V = 1; V < App.numVersions(); ++V) {
    UpdateBundle B = Upt::prepare(App.version(Version), App.version(V),
                                  "v" + std::to_string(V - 1));
    registerEmailTransformers(B, App, V);

    UpdateOptions Opts;
    Opts.TimeoutTicks = 120'000;
    Opts.EnableRescue = true;
    Opts.DrainNetwork = true;
    Updater U(TheVM);
    U.schedule(std::move(B), Opts);
    while (U.pending())
      Driver.runWithLoad(2'000);

    if (U.result().Status == UpdateStatus::TimedOut) {
      UpdateBundle Retry = Upt::prepare(App.version(Version), App.version(V),
                                        "r" + std::to_string(V - 1));
      registerEmailTransformers(Retry, App, V);
      const ClassSet &New = App.version(V);
      Retry.addActiveMapping(ActiveMethodMapping::identity(
          {"Pop3Processor", "run", "(I)V"},
          New.find("Pop3Processor")->findMethod("run")->Code.size()));
      Retry.addActiveMapping(ActiveMethodMapping::identity(
          {"SMTPSender", "run", "()V"},
          New.find("SMTPSender")->findMethod("run")->Code.size()));
      U.schedule(std::move(Retry), Opts);
      while (U.pending())
        Driver.runWithLoad(2'000);
    }
    if (U.result().Status == UpdateStatus::Applied)
      Version = V;
    Driver.runWithLoad(6'000);
  }
}

} // namespace

int main(int argc, char **argv) {
  bool Check = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check]\n"
                   "  --check  exit 1 unless suite overhead <= 10%% and "
                   "event accounting balances\n",
                   argv[0]);
      return 2;
    }
  }

  const int Trials = envInt("JVOLVE_TELBENCH_TRIALS", 5);
  const int Reps = envInt("JVOLVE_TELBENCH_REPS", 8);
  const int Events = envInt("JVOLVE_TELBENCH_EVENTS", 400'000);

  Telemetry &Tel = Telemetry::global();

  std::printf("=== bench_telemetry: streaming pipeline cost ===\n\n");

  // --- 1. Raw write path: in-memory session, one hot emitting thread. ---
  // Drops are expected (the writer drains every ~2ms while we spin) and
  // are the point: they must all land in the ledger, never stall the
  // producer.
  Tel.setEnabled(true);
  TelemetrySessionConfig MemCfg;
  MemCfg.Name = "bench-mem";
  auto Mem = Tel.streamer().openSession(MemCfg);
  if (!Mem) {
    std::fprintf(stderr, "telemetry: cannot open in-memory session\n");
    return 2;
  }
  Stopwatch WriteSw;
  for (int I = 0; I < Events; ++I)
    Tel.emit({"bench.telemetry.event", "point",
              static_cast<uint64_t>(I), static_cast<uint64_t>(I), 0.0,
              I, ""});
  double WriteMs = WriteSw.elapsedMs();
  Tel.streamer().closeSession(Mem);
  double NsPerEvent = WriteMs * 1e6 / std::max(Events, 1);
  double EventsPerSec = Events / std::max(WriteMs / 1e3, 1e-9);
  std::printf("write path: %d event(s) in %.2f ms — %.0f ns/event, "
              "%.2fM events/s (%llu streamed, %llu dropped)\n\n",
              Events, WriteMs, NsPerEvent, EventsPerSec / 1e6,
              static_cast<unsigned long long>(Tel.streamer().streamedTotal()),
              static_cast<unsigned long long>(Tel.streamer().droppedTotal()));

  // --- 2. Full-suite overhead: email history, metrics-only baseline vs.
  // streaming session attached. Metrics stay enabled in both — counters
  // are the production posture; the gate prices the pipeline on top.
  // Trials interleave baseline/streaming pairwise so a noisy patch on a
  // shared host taxes both configurations, not just one; session setup
  // and teardown sit outside every timed region.
  std::string TracePath = "/tmp/bench_telemetry_trace.jsonl";
  if (const char *Tmp = std::getenv("TMPDIR"))
    TracePath = std::string(Tmp) + "/bench_telemetry_trace.jsonl";
  std::vector<double> Off, On;
  for (int T = 0; T < Trials; ++T) {
    Tel.windows().configure(0); // baseline: no windows, no session
    double Start = cpuMs();
    for (int R = 0; R < Reps; ++R)
      runEmailHistory();
    Off.push_back(cpuMs() - Start);

    Tel.windows().configure(2'000);
    if (!Tel.openTrace(TracePath)) {
      std::fprintf(stderr, "telemetry: cannot open trace '%s'\n",
                   TracePath.c_str());
      return 2;
    }
    Start = cpuMs();
    for (int R = 0; R < Reps; ++R)
      runEmailHistory();
    On.push_back(cpuMs() - Start);
    Tel.closeTrace();
  }
  Tel.windows().configure(0);
  std::remove(TracePath.c_str());

  // Each adjacent baseline/streaming pair shares its slice of host noise,
  // so per-pair overhead is the clean signal. (Min-of-each-side is not:
  // nothing forces the two mins into the same quiet period.) Two robust
  // estimators of the true overhead: the median across pairs, and the
  // quietest pair (lowest combined CPU time — least contaminated by
  // other tenants). Either alone still trips on a bad batch; the gate
  // reads their minimum, because a real regression moves both while
  // noise rarely moves both the same way.
  double OffMin = *std::min_element(Off.begin(), Off.end());
  double OnMin = *std::min_element(On.begin(), On.end());
  std::vector<double> PairPct;
  int Quietest = 0;
  for (int T = 0; T < Trials; ++T) {
    PairPct.push_back((On[T] - Off[T]) / std::max(Off[T], 1e-9) * 100.0);
    if (Off[T] + On[T] < Off[Quietest] + On[Quietest])
      Quietest = T;
  }
  double QuietestPct = PairPct[static_cast<size_t>(Quietest)];
  double MedianPct = percentile(PairPct, 50);
  double OverheadPct = std::min(QuietestPct, MedianPct);

  unsigned long long Attempted = Tel.streamer().attemptedTotal();
  unsigned long long Streamed = Tel.streamer().streamedTotal();
  unsigned long long Dropped = Tel.streamer().droppedTotal();

  std::printf("suite baseline:  min %.2f CPU-ms over %d trial(s) x %d "
              "rep(s) (metrics on, no session)\n",
              OffMin, Trials, Reps);
  std::printf("suite streaming: min %.2f CPU-ms (JSONL session + 2000-tick "
              "windows) — overhead %+.2f%% over %d paired trial(s) "
              "(median %+.2f%%, quietest pair %+.2f%%)\n",
              OnMin, OverheadPct, Trials, MedianPct, QuietestPct);
  std::printf("accounting: %llu attempted = %llu streamed + %llu dropped "
              "(%s)\n\n",
              Attempted, Streamed, Dropped,
              Attempted == Streamed + Dropped ? "balanced" : "IMBALANCED");

  BenchJson OffJson, OnJson, Combined;
  OffJson.histogram("bench.telemetry.suite_ms", Off);
  OnJson.histogram("bench.telemetry.suite_ms", On);
  Combined.histogram("bench.telemetry.suite_off_ms", Off);
  Combined.histogram("bench.telemetry.suite_on_ms", On);
  Combined.value("bench.telemetry.overhead_pct",
                 static_cast<long long>(OverheadPct * 100)); // centi-pct
  Combined.value("bench.telemetry.ns_per_event",
                 static_cast<long long>(NsPerEvent));
  Combined.value("bench.telemetry.events_attempted",
                 static_cast<long long>(Attempted));
  Combined.value("bench.telemetry.events_streamed",
                 static_cast<long long>(Streamed));
  Combined.value("bench.telemetry.events_dropped",
                 static_cast<long long>(Dropped));
  if (!OffJson.write("BENCH_telemetry_off.json") ||
      !OnJson.write("BENCH_telemetry_on.json") ||
      !Combined.write("BENCH_telemetry.json"))
    return 2;

  bool OverheadOk = OverheadPct <= 10.0;
  bool BooksOk = Attempted == Streamed + Dropped;
  std::printf("relation 1 (suite overhead <= 10%%):              %s\n",
              OverheadOk ? "holds" : "VIOLATED");
  std::printf("relation 2 (attempted == streamed + dropped):    %s\n",
              BooksOk ? "holds" : "VIOLATED");
  if (Check && !(OverheadOk && BooksOk)) {
    std::fprintf(stderr, "telemetry: pipeline cost relations violated\n");
    return 1;
  }
  return 0;
}
