//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Table 4**: the CrossFTP server update stream (1.05
/// through 1.08). Reproduction targets: summaries match the table; all
/// three updates apply, but 1.07 -> 1.08 (which changes the session
/// handler that is essentially always on stack under load) only succeeds
/// when the server is relatively idle; and — since every update adds or
/// deletes fields — the method-body-only baseline supports none of them.
///
//===----------------------------------------------------------------------===//

#include "BenchTableCommon.h"

#include "apps/CrossFtpApp.h"

using namespace jvolve;

int main() {
  AppModel App = makeCrossFtpApp();
  std::vector<ReleaseOutcome> Rows = evaluateApp(App);
  printUpdateStreamTable("Table 4: updates to CrossFTP (1.05 .. 1.08)",
                         Rows);

  for (size_t V = 1; V < App.numVersions(); ++V) {
    const ReleaseOutcome &R = Rows[V - 1];
    const Release &Rel = App.release(V);
    if (!R.supported()) {
      std::printf("MISMATCH: %s expected to apply\n", R.Version.c_str());
      return 1;
    }
    if (Rel.OnlyWhenIdle &&
        (R.Result.Status == UpdateStatus::Applied || !R.AppliedWhenIdle)) {
      std::printf("MISMATCH: %s expected busy-timeout + idle-success\n",
                  R.Version.c_str());
      return 1;
    }
    if (R.EcSupported) {
      std::printf("MISMATCH: %s should defeat method-body-only systems\n",
                  R.Version.c_str());
      return 1;
    }
  }
  std::printf("Matches paper: all 3 CrossFTP updates applied (1.08 only "
              "when idle); none supported by method-body-only systems.\n");
  return 0;
}
