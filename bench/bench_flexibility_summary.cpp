//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's §4 flexibility headline: Jvolve supports 20 of
/// the 22 updates across Jetty, JavaEmailServer, and CrossFTP, while
/// method-body-only systems (HotSwap/.NET E&C style) support fewer than
/// half. Every update is applied live on a loaded server.
///
//===----------------------------------------------------------------------===//

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/Evaluation.h"
#include "apps/JettyApp.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace jvolve;

int main() {
  AppModel Apps[] = {makeJettyApp(), makeEmailApp(), makeCrossFtpApp()};

  std::printf("=== Flexibility summary (paper §4): live application of "
              "every update ===\n\n");

  TablePrinter TP;
  TP.setHeader({"Application", "updates", "JVOLVE", "E&C baseline",
                "unsupported"});
  int Total = 0, JvolveOk = 0, EcOk = 0;
  for (const AppModel &App : Apps) {
    std::vector<ReleaseOutcome> Rows = evaluateApp(App);
    int AppOk = 0, AppEc = 0;
    std::string Failures;
    for (const ReleaseOutcome &R : Rows) {
      ++Total;
      if (R.supported())
        ++AppOk;
      else
        Failures += (Failures.empty() ? "" : ", ") + R.Version;
      if (R.EcSupported)
        ++AppEc;
    }
    JvolveOk += AppOk;
    EcOk += AppEc;
    TP.addRow({App.name(), std::to_string(Rows.size()),
               std::to_string(AppOk), std::to_string(AppEc),
               Failures.empty() ? "-" : Failures});
  }
  std::printf("%s\n", TP.render().c_str());

  std::printf("JVOLVE: %d of %d updates supported (paper: 20 of 22)\n",
              JvolveOk, Total);
  std::printf("Method-body-only baseline: %d of %d (paper reports 9 of 22 "
              "from the same tables; our reconstruction counts %d — see "
              "EXPERIMENTS.md)\n",
              EcOk, Total, EcOk);
  return JvolveOk == 20 && Total == 22 ? 0 : 1;
}
