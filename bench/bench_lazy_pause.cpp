//===----------------------------------------------------------------------===//
///
/// \file
/// The lazy-update trade-off triangle (ISSUE 5, paper §1/§3.4/§5 framing):
///
///   eager       — big update pause (GC + all transformers), zero
///                 steady-state overhead;
///   lazy        — small commit pause (transformers deferred behind the
///                 read barrier), a *transient* per-access overhead that
///                 decays to exactly zero once the drainer retires the
///                 barrier;
///   indirection — small pause too, but a *permanent* per-access overhead
///                 (JDrums/DVM-style, cf. bench_ablation_indirection).
///
/// Workload: the pointer-chasing Cell ring of the indirection ablation,
/// updated by adding a field to Cell with a copying transformer (the
/// Table-1 shape). The bench measures the eager vs. lazy pause on the
/// same heap, then tracks spin-window times on the lazy VM from the
/// commit through barrier retirement against a no-update baseline and an
/// indirection-mode VM.
///
/// `--check` exits 1 unless all three relations hold:
///   1. lazy commit pause strictly below the eager pause;
///   2. lazy post-retirement windows back to no-update parity;
///   3. indirection overhead flat (no decay) across the same horizon.
///
/// Environment knobs: JVOLVE_LAZYBENCH_TRIALS (default 5),
/// JVOLVE_LAZYBENCH_CELLS (default 120000).
///
//===----------------------------------------------------------------------===//

#include "BenchJson.h"
#include "bytecode/Builder.h"
#include "dsu/LazyTransform.h"
#include "dsu/Transformers.h"
#include "dsu/Updater.h"
#include "dsu/Upt.h"
#include "support/Stats.h"
#include "support/Stopwatch.h"
#include "vm/VM.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace jvolve;

namespace {

int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

/// Cell ring (as in bench_ablation_indirection): spin() chases `next`
/// and sums `v` — two field reads per iteration, the pattern both the
/// read barrier and indirection checks tax the most. \p Updated adds the
/// field the update introduces. An Idler daemon keeps the scheduler busy
/// so the background drainer gets real quanta.
ClassSet ringProgram(bool Updated) {
  ClassSet Set;
  {
    ClassBuilder CB("Cell");
    CB.field("v", "I");
    CB.field("next", "LCell;");
    if (Updated)
      CB.field("added", "I");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Ring");
    CB.staticField("head", "LCell;");
    // build(n): a genuinely circular n-cell ring (last.next = first), so
    // every cell stays live through the update and gets a transformer run.
    CB.staticMethod("build", "(I)V")
        .locals(5)
        .newobj("Cell")
        .store(1)
        .load(1)
        .store(4) // first
        .load(1)
        .store(2) // cur = first
        .iconst(1)
        .store(3)
        .label("loop")
        .load(3)
        .load(0)
        .branch(Opcode::IfICmpGe, "done")
        .newobj("Cell")
        .store(1)
        .load(1)
        .load(3)
        .putfield("Cell", "v", "I")
        .load(2)
        .load(1)
        .putfield("Cell", "next", "LCell;")
        .load(1)
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(2)
        .load(4)
        .putfield("Cell", "next", "LCell;") // close the ring
        .load(2)
        .putstatic("Ring", "head", "LCell;")
        .ret();
    CB.staticMethod("spin", "(I)I")
        .locals(4)
        .iconst(0)
        .store(1)
        .getstatic("Ring", "head", "LCell;")
        .store(2)
        .iconst(0)
        .store(3)
        .label("loop")
        .load(3)
        .load(0)
        .branch(Opcode::IfICmpGe, "done")
        .load(2)
        .branch(Opcode::IfNonNull, "have")
        .getstatic("Ring", "head", "LCell;")
        .store(2)
        .label("have")
        .load(1)
        .load(2)
        .getfield("Cell", "v", "I")
        .iadd()
        .store(1)
        .load(2)
        .getfield("Cell", "next", "LCell;")
        .store(2)
        .load(3)
        .iconst(1)
        .iadd()
        .store(3)
        .jump("loop")
        .label("done")
        .load(1)
        .iret();
    Set.add(CB.build());
  }
  {
    ClassBuilder I("Idler");
    I.staticMethod("loop", "()V")
        .label("top")
        .iconst(20)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    Set.add(I.build());
  }
  return Set;
}

/// \p V2 loads the post-update program directly: reference VMs that never
/// update must still run cells of the post-update size, or layout — not
/// barrier cost — would dominate any comparison.
std::unique_ptr<VM> makeVm(int NumCells, bool Indirection, bool V2 = false) {
  VM::Config C;
  // Room for the live ring plus the DSU collection's duplicates and
  // new-version shells.
  C.HeapSpaceBytes = 96u << 20;
  C.IndirectionMode = Indirection;
  auto TheVM = std::make_unique<VM>(C);
  TheVM->loadProgram(ringProgram(V2));
  TheVM->callStatic("Ring", "build", "(I)V", {Slot::ofInt(NumCells)});
  return TheVM;
}

/// The Table-1-shaped update: add a field to Cell, copying transformer.
UpdateBundle ringUpdate(const char *Name) {
  UpdateBundle B = Upt::prepare(ringProgram(false), ringProgram(true), Name);
  B.ObjectTransformers["Cell"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setInt(To, "v", Ctx.getInt(From, "v"));
    Ctx.setRef(To, "next", Ctx.getRef(From, "next"));
    Ctx.setInt(To, "added", 0);
  };
  return B;
}

/// One timed spin window: two full laps of the ring.
double spinWindowMs(VM &TheVM, int NumCells) {
  Stopwatch Timer;
  TheVM.callStatic("Ring", "spin", "(I)I", {Slot::ofInt(2 * NumCells)});
  return Timer.elapsedMs();
}

struct PausePair {
  double EagerMs = 0;
  double LazyMs = 0;
};

/// Fresh VM per trial; the eager pause includes every object transformer,
/// the lazy pause only the DSU collection plus commit bookkeeping.
PausePair measurePauses(int NumCells) {
  // Certification (a full post-update heap walk, our own verification
  // add-on) is disabled: Table 1 measures the GC and transformer phases,
  // and certification's cost would drown the difference in both modes.
  UpdateOptions Eager;
  Eager.CertifyAfterUpdate = false;
  PausePair P;
  {
    std::unique_ptr<VM> TheVM = makeVm(NumCells, false);
    Updater U(*TheVM);
    UpdateResult R = U.applyNow(ringUpdate("eager"), Eager);
    if (R.Status != UpdateStatus::Applied) {
      std::fprintf(stderr, "lazy_pause: eager update failed: %s\n",
                   R.Message.c_str());
      std::exit(1);
    }
    P.EagerMs = R.TotalPauseMs;
  }
  {
    std::unique_ptr<VM> TheVM = makeVm(NumCells, false);
    TheVM->spawnThread("Idler", "loop", "()V", {}, "idler", /*Daemon=*/true);
    TheVM->run(100);
    Updater U(*TheVM);
    UpdateOptions Opts;
    Opts.LazyTransform = true;
    Opts.CertifyAfterUpdate = false;
    U.schedule(ringUpdate("lazy"), Opts);
    for (int I = 0; I < 100'000 && U.pending(); ++I)
      TheVM->run(25);
    UpdateResult R = U.result();
    if (R.Status != UpdateStatus::Applied || !R.LazyInstalled) {
      std::fprintf(stderr, "lazy_pause: lazy update failed: %s\n",
                   R.Message.c_str());
      std::exit(1);
    }
    P.LazyMs = R.TotalPauseMs;
  }
  return P;
}

} // namespace

int main(int argc, char **argv) {
  bool Check = false;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--check") == 0) {
      Check = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--check]\n"
                   "  --check  exit 1 unless the eager/lazy/indirection "
                   "trade-off relations hold\n",
                   argv[0]);
      return 2;
    }
  }

  const int Trials = envInt("JVOLVE_LAZYBENCH_TRIALS", 5);
  const int NumCells = envInt("JVOLVE_LAZYBENCH_CELLS", 120'000);
  const int Windows = 5;

  std::printf("=== bench_lazy_pause: eager vs lazy vs indirection ===\n");
  std::printf("(ring of %d Cells, +1 field update with copying "
              "transformer, %d trial(s))\n\n",
              NumCells, Trials);

  // --- Pause comparison (medians over fresh-VM trials). -------------------
  std::vector<double> Eager, Lazy;
  for (int T = 0; T < Trials; ++T) {
    PausePair P = measurePauses(NumCells);
    Eager.push_back(P.EagerMs);
    Lazy.push_back(P.LazyMs);
  }
  double EagerMs = percentile(Eager, 50);
  double LazyMs = percentile(Lazy, 50);
  std::printf("update pause, eager (GC + %d transformers): %8.2f ms\n",
              NumCells, EagerMs);
  std::printf("update pause, lazy  (GC + commit only):     %8.2f ms\n",
              LazyMs);
  std::printf("pause reduction: %.1f%%\n\n",
              100.0 * (EagerMs - LazyMs) / std::max(EagerMs, 1e-9));

  // --- Steady-state windows. Baseline, lazy, and indirection VMs are
  // timed in interleaved rounds so frequency scaling and cache drift hit
  // all three equally. The baseline and indirection VMs run the v2
  // program natively: after its update the lazy VM's cells carry the
  // added field too, so any gate compares equal object layouts.
  // Lazy-vs-baseline pair: both carry the idler daemon — the lazy VM needs
  // it so the drainer is scheduled, the baseline so both pay the same
  // scheduler overhead inside timed windows.
  std::unique_ptr<VM> Base = makeVm(NumCells, false, /*V2=*/true);
  std::unique_ptr<VM> LazyVm = makeVm(NumCells, false);
  for (VM *TheVM : {Base.get(), LazyVm.get()}) {
    TheVM->spawnThread("Idler", "loop", "()V", {}, "idler", /*Daemon=*/true);
    TheVM->run(100);
  }
  for (int I = 0; I < 2; ++I) { // warm-up
    spinWindowMs(*Base, NumCells);
    spinWindowMs(*LazyVm, NumCells);
  }
  std::vector<double> BaseEarly;
  for (int I = 0; I < Windows; ++I)
    BaseEarly.push_back(spinWindowMs(*Base, NumCells));

  // Lazy update commits; window 0 pays the transient cost (on-demand
  // transforms plus barrier checks on every access).
  Updater U(*LazyVm);
  UpdateOptions Opts;
  Opts.LazyTransform = true;
  U.schedule(ringUpdate("decay"), Opts);
  for (int I = 0; I < 100'000 && U.pending(); ++I)
    LazyVm->run(25);
  double TransientMs = spinWindowMs(*LazyVm, NumCells);
  auto *Engine = static_cast<LazyTransformEngine *>(LazyVm->lazyEngine());
  for (int I = 0; Engine && I < 10'000 && !Engine->retired(); ++I)
    LazyVm->run(200);
  bool Retired = Engine && Engine->retired();
  // Steady state includes the next regular collection: it reclaims the
  // update's old-version duplicates, restoring the compact ring layout
  // the no-update baseline enjoys.
  LazyVm->collectGarbage();

  // Post-retirement: baseline and lazy interleaved.
  std::vector<double> BaseLate, LazyPost;
  for (int I = 0; I < Windows; ++I) {
    BaseLate.push_back(spinWindowMs(*Base, NumCells));
    LazyPost.push_back(spinWindowMs(*LazyVm, NumCells));
  }

  // Indirection-vs-baseline pair: no update and no drainer, so no idler —
  // its scheduler overhead would drown the per-access check this pair
  // exists to isolate (cf. bench_ablation_indirection). Early/late rounds
  // span at least the horizon the lazy barrier needed to vanish.
  std::unique_ptr<VM> BaseNi = makeVm(NumCells, false, /*V2=*/true);
  std::unique_ptr<VM> Ind = makeVm(NumCells, true, /*V2=*/true);
  for (int I = 0; I < 2; ++I) { // warm-up
    spinWindowMs(*BaseNi, NumCells);
    spinWindowMs(*Ind, NumCells);
  }
  std::vector<double> IndOverheadPct;
  for (int I = 0; I < 2 * Windows; ++I) {
    double B = spinWindowMs(*BaseNi, NumCells);
    double N = spinWindowMs(*Ind, NumCells);
    IndOverheadPct.push_back(100.0 * (N - B) / B);
  }
  std::vector<double> IndFirst(IndOverheadPct.begin(),
                               IndOverheadPct.begin() + Windows);
  std::vector<double> IndSecond(IndOverheadPct.begin() + Windows,
                                IndOverheadPct.end());

  double BaseEarlyMs = percentile(BaseEarly, 50);
  double BaseLateMs = percentile(BaseLate, 50);
  double IndEarlyPct = percentile(IndFirst, 50);
  double IndLatePct = percentile(IndSecond, 50);
  double LazyPostMs = percentile(LazyPost, 50);

  std::printf("spin window (2 laps), no update:        %8.2f ms\n",
              BaseLateMs);
  std::printf("spin window, lazy, first after commit:  %8.2f ms  "
              "(%+.1f%% transient)\n",
              TransientMs,
              100.0 * (TransientMs - BaseEarlyMs) / BaseEarlyMs);
  std::printf("spin window, lazy, barrier retired:     %8.2f ms  "
              "(%+.1f%% residual)\n",
              LazyPostMs, 100.0 * (LazyPostMs - BaseLateMs) / BaseLateMs);
  std::printf("spin window, indirection, early:        %+8.1f%% over "
              "baseline\n",
              IndEarlyPct);
  std::printf("spin window, indirection, late:         %+8.1f%% over "
              "baseline\n\n",
              IndLatePct);

  // --- The three relations of the triangle. -------------------------------
  bool PauseOk = LazyMs < EagerMs;
  // Parity within noise once the barrier is gone: retirement re-quickens
  // every method, so the residual is measurement jitter, not a tax.
  bool DecayOk = Retired && LazyPostMs <= BaseLateMs * 1.25;
  // Indirection must not decay: it pays an overhead early and keeps paying
  // at least half of it over the horizon the lazy barrier needed to vanish.
  bool FlatOk = IndEarlyPct > 0 && IndLatePct >= 0.5 * IndEarlyPct;

  std::printf("relation 1 (lazy pause < eager pause):            %s\n",
              PauseOk ? "holds" : "VIOLATED");
  std::printf("relation 2 (lazy overhead decays to parity):      %s\n",
              DecayOk ? "holds" : "VIOLATED");
  std::printf("relation 3 (indirection overhead stays flat):     %s\n",
              FlatOk ? "holds" : "VIOLATED");

  if (Check) {
    // Gated runs leave their numbers behind in the metrics-snapshot
    // format, so scripts can diff two tier1 runs (or archive the trend)
    // with metrics-diff.py like any pair of VM dumps.
    BenchJson J;
    J.histogram("bench.lazy.pause_eager_ms", Eager);
    J.histogram("bench.lazy.pause_lazy_ms", Lazy);
    J.histogram("bench.lazy.spin_base_ms", BaseLate);
    J.histogram("bench.lazy.spin_post_retire_ms", LazyPost);
    J.value("bench.lazy.barrier_retired", Retired ? 1 : 0);
    J.write("BENCH_lazy_pause.json");
  }
  if (Check && !(PauseOk && DecayOk && FlatOk)) {
    std::fprintf(stderr, "lazy_pause: trade-off triangle violated\n");
    return 1;
  }
  return 0;
}
