//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned application models.
///
/// The paper evaluates Jvolve on one-to-two years of releases of three real
/// servers (Jetty, JavaEmailServer, CrossFTP). We cannot ship those, so
/// each application is modeled as a handwritten *behavioural core* (the
/// request loops and the classes the paper discusses, e.g. Figure 2's
/// User/ConfigurationManager) plus generated *filler classes*. For every
/// release, scripted core changes reproduce the behaviours the paper calls
/// out (the Figure 2 update, the always-on-stack methods that defeat
/// updates, the run() methods that need OSR), and a filler mutation engine
/// tops the diff up so that the UPT summary matches the corresponding row
/// of Tables 2-4 *exactly*. Generation asserts that property.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_APPMODEL_H
#define JVOLVE_APPS_APPMODEL_H

#include "bytecode/ClassDef.h"
#include "dsu/UpdateSpec.h"

#include <functional>
#include <string>
#include <vector>

namespace jvolve {

/// Target change counts for one release: one row of Tables 2-4.
struct ChangeCounts {
  int ClsAdd = 0;
  int ClsDel = 0;
  int ClsChanged = 0;
  int MAdd = 0;
  int MDel = 0;
  int MBody = 0; ///< methods changed in body only (x of x/y)
  int MSig = 0;  ///< methods whose signature changed (y of x/y)
  int FAdd = 0;
  int FDel = 0;
};

/// One release in an application's history.
struct Release {
  std::string Name;    ///< e.g. "5.1.3"
  ChangeCounts Target; ///< the table row to reproduce
  /// Scripted behavioural-core changes applied before filler top-up.
  std::function<void(ClassSet &)> Scripted;

  // Expected Jvolve behaviour, from the paper's §4 discussion:
  bool ExpectSupported = true; ///< false for Jetty 5.1.3 and JES 1.3
  bool NeedsOsr = false;       ///< JES 1.3.2 and 1.3.3
  bool OnlyWhenIdle = false;   ///< CrossFTP 1.07 -> 1.08
};

/// A base program plus its generated version stream.
class AppModel {
public:
  /// Builds the version stream. \p FillerPrefix names generated classes
  /// (e.g. "JFill"); generation aborts if any release diff cannot be made
  /// to match its table row.
  AppModel(std::string AppName, ClassSet Base, std::vector<Release> Releases,
           std::string FillerPrefix);

  const std::string &name() const { return AppName; }

  /// Number of program versions (releases + the base).
  size_t numVersions() const { return Versions.size(); }

  /// Version \p I; index 0 is the base release.
  const ClassSet &version(size_t I) const { return Versions.at(I); }

  /// Release metadata for the update *to* version \p I (I >= 1).
  const Release &release(size_t I) const { return Releases.at(I - 1); }

  size_t numReleases() const { return Releases.size(); }

  /// Human-readable name of version \p I.
  std::string versionName(size_t I) const;

  /// Creates a filler class with \p NumFields int fields and \p NumMethods
  /// trivial int methods (shared by the base-program factories).
  static ClassDef makeFillerClass(const std::string &Name, int NumFields,
                                  int NumMethods);

private:
  void generate();
  /// Applies filler mutations on top of \p Cur so the diff from \p Prev
  /// matches \p Target. \p ReleaseIndex seeds deterministic rotation.
  void applyFiller(const ClassSet &Prev, ClassSet &Cur,
                   const ChangeCounts &Target, size_t ReleaseIndex);

  std::string AppName;
  ClassSet Base;
  std::vector<Release> Releases;
  std::string FillerPrefix;
  std::vector<ClassSet> Versions;
  int UniqueCounter = 0; ///< suffix source for generated members/classes
};

/// \returns true when \p Summary equals \p Target (the table row).
bool summaryMatches(const UpdateSummary &Summary, const ChangeCounts &Target);

/// Renders counts as a table row fragment for diagnostics.
std::string describeCounts(const ChangeCounts &C);
std::string describeSummary(const UpdateSummary &S);

} // namespace jvolve

#endif // JVOLVE_APPS_APPMODEL_H
