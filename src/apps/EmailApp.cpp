#include "apps/EmailApp.h"

#include "bytecode/Builder.h"
#include "dsu/Transformers.h"
#include "support/Error.h"
#include "support/StringUtils.h"
#include "vm/VM.h"

using namespace jvolve;

namespace {

constexpr int SpareFields = 9;
constexpr int SpareMethods = 9;

/// Adds the sp0..spN spare members scripted releases mutate.
void addSpares(ClassBuilder &CB, Access FieldAccess = Access::Public) {
  for (int I = 0; I < SpareFields; ++I)
    CB.field("sp" + std::to_string(I), "I", FieldAccess);
  for (int I = 0; I < SpareMethods; ++I)
    CB.method("sp" + std::to_string(I), "()I").iconst(I).iret();
}

/// The Figure 2 core, version 1.2.x/1.3.x shape (String[] addresses).
void addEmailCore(ClassSet &Set) {
  {
    // EmailAddress exists from the start (unused until 1.3.2), keeping the
    // 1.3.2 "classes added" count at the table's 0.
    ClassBuilder CB("EmailAddress");
    CB.field("user", "LString;");
    CB.field("domain", "LString;");
    CB.method("<init>", "(LString;LString;)V")
        .load(0)
        .load(1)
        .putfield("EmailAddress", "user", "LString;")
        .load(0)
        .load(2)
        .putfield("EmailAddress", "domain", "LString;")
        .ret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("User");
    CB.field("username", "LString;", Access::Private, /*IsFinal=*/true);
    CB.field("domain", "LString;", Access::Private, /*IsFinal=*/true);
    CB.field("password", "LString;", Access::Private, /*IsFinal=*/true);
    CB.field("forwardAddresses", "[LString;", Access::Private);
    CB.method("<init>", "(LString;LString;LString;)V")
        .load(0)
        .load(1)
        .putfield("User", "username", "LString;")
        .load(0)
        .load(2)
        .putfield("User", "domain", "LString;")
        .load(0)
        .load(3)
        .putfield("User", "password", "LString;")
        .ret();
    CB.method("setForwardedAddresses", "([LString;)V")
        .load(0)
        .load(1)
        .putfield("User", "forwardAddresses", "[LString;")
        .ret();
    // getForwardCount has a stable signature; its *body* changes in 1.3.2
    // because the field descriptor it names changes.
    CB.method("getForwardCount", "()I")
        .locals(2)
        .load(0)
        .getfield("User", "forwardAddresses", "[LString;")
        .store(1)
        .load(1)
        .branch(Opcode::IfNull, "none")
        .load(1)
        .arraylength()
        .iret()
        .label("none")
        .iconst(0)
        .iret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("ConfigurationManager");
    CB.staticField("admin", "LUser;");
    // loadUser: the method Figure 2 shows being fixed in 1.3.2.
    CB.staticMethod("loadUser", "()V")
        .locals(2)
        .iconst(1)
        .newarray("LString;")
        .store(0)
        .load(0)
        .iconst(0)
        .sconst("alice@example.com")
        .astore()
        .newobj("User")
        .store(1)
        .load(1)
        .sconst("alice")
        .sconst("example.com")
        .sconst("secret")
        .invokespecial("User", "<init>", "(LString;LString;LString;)V")
        .load(1)
        .load(0)
        .invokevirtual("User", "setForwardedAddresses", "([LString;)V")
        .load(1)
        .putstatic("ConfigurationManager", "admin", "LUser;")
        .ret();
    addSpares(CB, Access::Private);
    Set.add(CB.build());
  }
  {
    // POP3 processing loop: always on stack, references User and
    // ConfigurationManager (making it category (2) when they update).
    ClassBuilder CB("Pop3Processor");
    MethodBuilder &Run = CB.staticMethod("run", "(I)V");
    Run.locals(4)
        .label("top")
        .load(0)
        .intrinsic(IntrinsicId::NetAccept)
        .store(1)
        .label("inner")
        .load(1)
        .intrinsic(IntrinsicId::NetRecv)
        .store(2)
        .load(2)
        .iconst(0)
        .branch(Opcode::IfICmpLt, "eof")
        .getstatic("ConfigurationManager", "admin", "LUser;")
        .store(3)
        .load(3)
        .branch(Opcode::IfNull, "plain")
        .load(1)
        .load(2)
        .load(3)
        .invokevirtual("User", "getForwardCount", "()I")
        .iadd()
        .intrinsic(IntrinsicId::NetSend)
        .jump("inner")
        .label("plain")
        .load(1)
        .load(2)
        .intrinsic(IntrinsicId::NetSend)
        .jump("inner")
        .label("eof")
        .load(1)
        .intrinsic(IntrinsicId::NetClose)
        .jump("top");
    addSpares(CB);
    Set.add(CB.build());
  }
  {
    // Background SMTP delivery loop, also always on stack and also
    // touching the User account data.
    ClassBuilder CB("SMTPSender");
    MethodBuilder &Run = CB.staticMethod("run", "()V");
    Run.locals(1)
        .label("top")
        .getstatic("ConfigurationManager", "admin", "LUser;")
        .store(0)
        .load(0)
        .branch(Opcode::IfNull, "skip")
        .load(0)
        .invokevirtual("User", "getForwardCount", "()I")
        .pop()
        .label("skip")
        .iconst(60)
        .intrinsic(IntrinsicId::SleepTicks)
        .jump("top");
    addSpares(CB);
    Set.add(CB.build());
  }
}

/// Appends a dead trailing instruction: a pure body change.
void bumpBody(ClassSet &Set, const std::string &Cls,
              const std::string &Method, const std::string &Sig) {
  MethodDef *M = Set.find(Cls)->findMethod(Method, Sig);
  if (!M)
    fatalError("email scripted change: missing " + Cls + "." + Method);
  M->Code.push_back({Opcode::Nop, 0, "", "", ""});
}

void bumpSpareBody(ClassSet &Set, const std::string &Cls, int Index) {
  MethodDef *M =
      Set.find(Cls)->findMethod("sp" + std::to_string(Index), "()I");
  if (!M)
    fatalError("email scripted change: missing spare method");
  ++M->Code.front().IVal;
}

void toggleSpareSig(ClassSet &Set, const std::string &Cls, int Index) {
  MethodDef *M =
      Set.find(Cls)->findMethod("sp" + std::to_string(Index));
  if (!M)
    fatalError("email scripted change: missing spare method");
  M->Sig = M->Sig == "()I" ? "(I)I" : "()I";
  M->NumLocals = std::max<uint16_t>(M->NumLocals, M->numParamSlots());
}

void addFields(ClassSet &Set, const std::string &Cls, int N,
               const std::string &Tag) {
  ClassDef *C = Set.find(Cls);
  for (int I = 0; I < N; ++I)
    C->Fields.push_back({"nx" + Tag + std::to_string(I), "I", false, false,
                         Access::Public});
}

void removeFieldsNamed(ClassSet &Set, const std::string &Cls,
                       std::initializer_list<const char *> Names) {
  ClassDef *C = Set.find(Cls);
  for (const char *Name : Names)
    std::erase_if(C->Fields,
                  [&](const FieldDef &F) { return F.Name == Name; });
}

void addMethods(ClassSet &Set, const std::string &Cls, int N,
                const std::string &Tag) {
  ClassDef *C = Set.find(Cls);
  for (int I = 0; I < N; ++I) {
    MethodBuilder MB("nx" + Tag + std::to_string(I), "()I",
                     /*IsStatic=*/false);
    MB.iconst(I).iret();
    C->Methods.push_back(MB.build());
  }
}

void removeMethodsNamed(ClassSet &Set, const std::string &Cls,
                        std::initializer_list<const char *> Names) {
  ClassDef *C = Set.find(Cls);
  for (const char *Name : Names)
    std::erase_if(C->Methods,
                  [&](const MethodDef &M) { return M.Name == Name; });
}

/// 1.3: reworks the configuration framework. The run() methods of both
/// processing threads change, so the update can never be applied (§4.3).
void script13(ClassSet &Set) {
  bumpBody(Set, "Pop3Processor", "run", "(I)V");
  bumpBody(Set, "SMTPSender", "run", "()V");
  // Configuration rework: heavy member churn on the two processors
  // (the table's 2 changed classes).
  bumpSpareBody(Set, "Pop3Processor", 5);
  bumpSpareBody(Set, "Pop3Processor", 6);
  bumpSpareBody(Set, "SMTPSender", 5);
  bumpSpareBody(Set, "SMTPSender", 6);
  for (int I = 0; I < 5; ++I)
    toggleSpareSig(Set, "Pop3Processor", I);
  for (int I = 0; I < 4; ++I)
    toggleSpareSig(Set, "SMTPSender", I);
  addMethods(Set, "Pop3Processor", 6, "p");
  addMethods(Set, "SMTPSender", 5, "s");
  removeMethodsNamed(Set, "Pop3Processor", {"sp7", "sp8"});
  removeMethodsNamed(Set, "SMTPSender", {"sp7"});
  addFields(Set, "Pop3Processor", 6, "p");
  addFields(Set, "SMTPSender", 6, "s");
  removeFieldsNamed(Set, "Pop3Processor", {"sp6", "sp7", "sp8"});
  removeFieldsNamed(Set, "SMTPSender", {"sp7", "sp8"});
}

/// 1.3.2: the Figure 2 change. forwardAddresses becomes EmailAddress[],
/// setForwardedAddresses changes signature, loadUser and getForwardCount
/// change bodies.
void script132(ClassSet &Set) {
  ClassDef *User = Set.find("User");
  for (FieldDef &F : User->Fields)
    if (F.Name == "forwardAddresses")
      F.TypeDesc = "[LEmailAddress;";
  {
    MethodDef *M = User->findMethod("setForwardedAddresses");
    MethodBuilder MB("setForwardedAddresses", "([LEmailAddress;)V",
                     /*IsStatic=*/false);
    MB.load(0)
        .load(1)
        .putfield("User", "forwardAddresses", "[LEmailAddress;")
        .ret();
    *M = MB.build();
  }
  {
    MethodDef *M = User->findMethod("getForwardCount", "()I");
    MethodBuilder MB("getForwardCount", "()I", /*IsStatic=*/false);
    MB.locals(2)
        .load(0)
        .getfield("User", "forwardAddresses", "[LEmailAddress;")
        .store(1)
        .load(1)
        .branch(Opcode::IfNull, "none")
        .load(1)
        .arraylength()
        .iret()
        .label("none")
        .iconst(0)
        .iret();
    *M = MB.build();
  }
  {
    // loadUser now builds EmailAddress objects directly (the bug fix).
    MethodDef *M =
        Set.find("ConfigurationManager")->findMethod("loadUser", "()V");
    MethodBuilder MB("loadUser", "()V", /*IsStatic=*/true);
    MB.locals(3)
        .newobj("EmailAddress")
        .store(2)
        .load(2)
        .sconst("alice")
        .sconst("example.com")
        .invokespecial("EmailAddress", "<init>", "(LString;LString;)V")
        .iconst(1)
        .newarray("LEmailAddress;")
        .store(0)
        .load(0)
        .iconst(0)
        .load(2)
        .astore()
        .newobj("User")
        .store(1)
        .load(1)
        .sconst("alice")
        .sconst("example.com")
        .sconst("secret")
        .invokespecial("User", "<init>", "(LString;LString;LString;)V")
        .load(1)
        .load(0)
        .invokevirtual("User", "setForwardedAddresses",
                       "([LEmailAddress;)V")
        .load(1)
        .putstatic("ConfigurationManager", "admin", "LUser;")
        .ret();
    *M = MB.build();
  }
}

/// 1.3.3: a field of ConfigurationManager becomes public — a class update
/// with no add/del footprint; since run() references the class, reaching a
/// safe point requires OSR (§4.3).
void script133(ClassSet &Set) {
  ClassDef *C = Set.find("ConfigurationManager");
  for (FieldDef &F : C->Fields)
    if (F.Name == "sp0")
      F.Visibility = F.Visibility == Access::Private ? Access::Public
                                                     : Access::Private;
}

} // namespace

AppModel jvolve::makeEmailApp() {
  ClassSet Base;
  addEmailCore(Base);
  // 12 long-lived filler classes plus 9 disposable (GUI-ish) ones that the
  // 1.3 configuration rework deletes.
  for (int I = 0; I < 21; ++I)
    Base.add(AppModel::makeFillerClass("EFill" + std::to_string(I), 6, 8));

  auto Row = [](int ClsAdd, int ClsDel, int ClsChanged, int MAdd, int MDel,
                int MBody, int MSig, int FAdd, int FDel) {
    ChangeCounts C;
    C.ClsAdd = ClsAdd;
    C.ClsDel = ClsDel;
    C.ClsChanged = ClsChanged;
    C.MAdd = MAdd;
    C.MDel = MDel;
    C.MBody = MBody;
    C.MSig = MSig;
    C.FAdd = FAdd;
    C.FDel = FDel;
    return C;
  };

  std::vector<Release> Releases;
  Releases.push_back({"1.2.2", Row(0, 0, 3, 0, 0, 3, 0, 0, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.2.3", Row(0, 0, 7, 0, 0, 14, 2, 12, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.2.4", Row(0, 0, 2, 0, 0, 4, 0, 0, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.3", Row(4, 9, 2, 11, 3, 6, 9, 12, 5), script13,
                      /*ExpectSupported=*/false, false, false});
  Releases.push_back({"1.3.1", Row(0, 0, 2, 0, 0, 4, 0, 0, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.3.2", Row(0, 0, 8, 4, 2, 4, 2, 3, 1), script132,
                      true, /*NeedsOsr=*/true, false});
  Releases.push_back({"1.3.3", Row(0, 0, 4, 0, 0, 3, 0, 0, 0), script133,
                      true, /*NeedsOsr=*/true, false});
  Releases.push_back({"1.3.4", Row(0, 0, 6, 2, 0, 6, 0, 2, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.4", Row(0, 0, 7, 6, 1, 4, 1, 6, 0), nullptr,
                      true, false, false});

  return AppModel("javaemailserver", std::move(Base), std::move(Releases),
                  "EFill");
}

void jvolve::startEmailThreads(VM &TheVM) {
  TheVM.callStatic("ConfigurationManager", "loadUser", "()V");
  TheVM.spawnThread("Pop3Processor", "run", "(I)V",
                    {Slot::ofInt(Pop3Port)}, "pop3", /*Daemon=*/true);
  TheVM.spawnThread("SMTPSender", "run", "()V", {}, "smtp",
                    /*Daemon=*/true);
}

void jvolve::registerEmailTransformers(UpdateBundle &B, const AppModel &App,
                                       size_t VersionIndex) {
  if (App.release(VersionIndex).Name != "1.3.2")
    return;
  // Figure 3: jvolveObject(User to, v131_User from). Copies the immutable
  // account strings and converts each "user@domain" string into an
  // EmailAddress — where the default transformer would leave null.
  B.ObjectTransformers["User"] = [](TransformCtx &Ctx, Ref To, Ref From) {
    Ctx.setRef(To, "username", Ctx.getRef(From, "username"));
    Ctx.setRef(To, "domain", Ctx.getRef(From, "domain"));
    Ctx.setRef(To, "password", Ctx.getRef(From, "password"));
    Ref OldArr = Ctx.getRef(From, "forwardAddresses");
    if (!OldArr) {
      Ctx.setRef(To, "forwardAddresses", nullptr);
      return;
    }
    int64_t Len = Ctx.arrayLength(OldArr);
    Ref NewArr = Ctx.allocateArray("LEmailAddress;", Len);
    Ctx.setRef(To, "forwardAddresses", NewArr);
    for (int64_t I = 0; I < Len; ++I) {
      std::string Addr = Ctx.stringValue(Ctx.getElemRef(OldArr, I));
      std::vector<std::string> Parts = splitString(Addr, '@', 2);
      Ref Email = Ctx.allocate("EmailAddress");
      Ctx.setRef(Email, "user", Ctx.newString(Parts[0]));
      Ctx.setRef(Email, "domain",
                 Ctx.newString(Parts.size() > 1 ? Parts[1] : ""));
      Ctx.setElemRef(NewArr, I, Email);
    }
  };
}
