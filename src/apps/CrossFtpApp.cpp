#include "apps/CrossFtpApp.h"

#include "bytecode/Builder.h"
#include "support/Error.h"
#include "vm/VM.h"

using namespace jvolve;

namespace {

void addCrossFtpCore(ClassSet &Set) {
  {
    ClassBuilder CB("FtpCommands");
    CB.staticMethod("execute", "(I)I")
        .load(0)
        .iconst(3)
        .imul()
        .iconst(200)
        .iadd()
        .iret();
    Set.add(CB.build());
  }
  {
    // One handler object per session; handle() runs the whole session.
    ClassBuilder CB("RequestHandler");
    CB.field("commandsRun", "I");
    CB.method("handle", "(I)V")
        .locals(3)
        .label("next")
        .load(1)
        .intrinsic(IntrinsicId::NetRecv)
        .store(2)
        .load(2)
        .iconst(0)
        .branch(Opcode::IfICmpLt, "eof")
        .load(1)
        .load(2)
        .invokestatic("FtpCommands", "execute", "(I)I")
        .intrinsic(IntrinsicId::NetSend)
        .load(0)
        .load(0)
        .getfield("RequestHandler", "commandsRun", "I")
        .iconst(1)
        .iadd()
        .putfield("RequestHandler", "commandsRun", "I")
        .jump("next")
        .label("eof")
        .load(1)
        .intrinsic(IntrinsicId::NetClose)
        .ret();
    Set.add(CB.build());
  }
  {
    // The accept loop. Note handle() is invoked from here and *returns*
    // between sessions — the paper's per-session RequestHandler threads
    // behave equivalently for safe-point purposes: when idle no handler
    // code is on any stack.
    ClassBuilder CB("FtpServer");
    CB.staticMethod("run", "(I)V")
        .locals(3)
        .label("top")
        .load(0)
        .intrinsic(IntrinsicId::NetAccept)
        .store(1)
        .newobj("RequestHandler")
        .store(2)
        .load(2)
        .load(1)
        .invokevirtual("RequestHandler", "handle", "(I)V")
        .jump("top");
    Set.add(CB.build());
  }
}

/// 1.08 changes RequestHandler.handle — the method that is "essentially
/// always on stack" while sessions are active (§4.4).
void script108(ClassSet &Set) {
  MethodDef *M = Set.find("RequestHandler")->findMethod("handle", "(I)V");
  if (!M)
    fatalError("crossftp scripted change: missing RequestHandler.handle");
  M->Code.push_back({Opcode::Nop, 0, "", "", ""});
}

} // namespace

AppModel jvolve::makeCrossFtpApp() {
  ClassSet Base;
  addCrossFtpCore(Base);
  // 8 long-lived filler classes plus 2 disposable ones (deleted by 1.06
  // and 1.08).
  for (int I = 0; I < 10; ++I)
    Base.add(AppModel::makeFillerClass("CFill" + std::to_string(I), 6, 8));

  auto Row = [](int ClsAdd, int ClsDel, int ClsChanged, int MAdd, int MDel,
                int MBody, int MSig, int FAdd, int FDel) {
    ChangeCounts C;
    C.ClsAdd = ClsAdd;
    C.ClsDel = ClsDel;
    C.ClsChanged = ClsChanged;
    C.MAdd = MAdd;
    C.MDel = MDel;
    C.MBody = MBody;
    C.MSig = MSig;
    C.FAdd = FAdd;
    C.FDel = FDel;
    return C;
  };

  std::vector<Release> Releases;
  Releases.push_back({"1.06", Row(4, 1, 1, 0, 0, 3, 0, 1, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.07", Row(0, 0, 3, 4, 0, 14, 0, 5, 0), nullptr,
                      true, false, false});
  Releases.push_back({"1.08", Row(0, 1, 3, 2, 0, 10, 0, 0, 2), script108,
                      true, false, /*OnlyWhenIdle=*/true});

  return AppModel("crossftp", std::move(Base), std::move(Releases), "CFill");
}

void jvolve::startCrossFtpThreads(VM &TheVM) {
  TheVM.spawnThread("FtpServer", "run", "(I)V", {Slot::ofInt(FtpPort)},
                    "ftp", /*Daemon=*/true);
}
