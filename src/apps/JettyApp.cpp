#include "apps/JettyApp.h"

#include "bytecode/Builder.h"
#include "support/Error.h"
#include "vm/VM.h"

using namespace jvolve;

namespace {

/// Version-dependent constant compiled into HttpResponse.make; bumping it
/// is the scripted "method body change" most releases carry.
constexpr int64_t BaseResponseSalt = 100;

/// The handwritten behavioural core of the Jetty model.
void addJettyCore(ClassSet &Set) {
  {
    // Per-request scratch buffer: exists so request handling allocates and
    // the heap sees churn, like a real server.
    ClassBuilder CB("Buffer");
    CB.field("size", "I");
    CB.field("used", "I");
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("Stats");
    CB.staticField("served", "I");
    CB.staticMethod("bump", "()V")
        .getstatic("Stats", "served", "I")
        .iconst(1)
        .iadd()
        .putstatic("Stats", "served", "I")
        .ret();
    CB.staticMethod("served", "()I")
        .getstatic("Stats", "served", "I")
        .iret();
    Set.add(CB.build());
  }
  {
    // acceptSocket blocks waiting for a client, like the real
    // ThreadedServer.acceptSocket the 5.1.3 release modifies.
    ClassBuilder CB("ThreadedServer");
    CB.staticMethod("acceptSocket", "(I)I")
        .load(0)
        .intrinsic(IntrinsicId::NetAccept)
        .iret();
    Set.add(CB.build());
  }
  {
    ClassBuilder CB("HttpResponse");
    CB.staticMethod("make", "(I)I")
        .locals(2)
        // Buffer b = new Buffer; b.size = req;
        .newobj("Buffer")
        .store(1)
        .load(1)
        .load(0)
        .putfield("Buffer", "size", "I")
        .load(1)
        .load(0)
        .iconst(2)
        .imul()
        .putfield("Buffer", "used", "I")
        // return req * 2 + SALT
        .load(1)
        .getfield("Buffer", "used", "I")
        .iconst(BaseResponseSalt)
        .iadd()
        .iret();
    Set.add(CB.build());
  }
  {
    // Serves one connection: five-ish serial requests, like the httperf
    // workload in Figure 5.
    ClassBuilder CB("HttpHandler");
    CB.staticMethod("handle", "(I)V")
        .locals(2)
        .label("next")
        .load(0)
        .intrinsic(IntrinsicId::NetRecv)
        .store(1)
        .load(1)
        .iconst(0)
        .branch(Opcode::IfICmpLt, "eof")
        .load(0)
        .load(1)
        .invokestatic("HttpResponse", "make", "(I)I")
        .intrinsic(IntrinsicId::NetSend)
        .invokestatic("Stats", "bump", "()V")
        .jump("next")
        .label("eof")
        .load(0)
        .intrinsic(IntrinsicId::NetClose)
        .ret();
    Set.add(CB.build());
  }
  {
    // The pool-thread accept loop: runs forever, so it must never be a
    // changed method in a supportable update.
    ClassBuilder CB("PoolThread");
    CB.staticMethod("run", "(I)V")
        .locals(2)
        .label("top")
        .load(0)
        .invokestatic("ThreadedServer", "acceptSocket", "(I)I")
        .store(1)
        .load(1)
        .invokestatic("HttpHandler", "handle", "(I)V")
        .jump("top");
    Set.add(CB.build());
  }
}

/// Bumps the scripted salt constant in a core method body.
void bumpConstIn(ClassSet &Set, const std::string &Cls,
                 const std::string &Method, int64_t MinValue) {
  MethodDef *M = Set.find(Cls)->findMethod(Method);
  if (!M)
    fatalError("jetty scripted change: missing " + Cls + "." + Method);
  for (Instr &I : M->Code)
    if (I.Op == Opcode::IConst && I.IVal >= MinValue) {
      ++I.IVal;
      return;
    }
  fatalError("jetty scripted change: no salt constant in " + Cls + "." +
             Method);
}

/// The 5.1.3 change: modify both always-on-stack methods.
void script513(ClassSet &Set) {
  // acceptSocket: post-process the accepted id (body change).
  MethodDef *Accept =
      Set.find("ThreadedServer")->findMethod("acceptSocket", "(I)I");
  Accept->Code = {};
  MethodBuilder MB("acceptSocket", "(I)I", /*IsStatic=*/true);
  MB.load(0)
      .intrinsic(IntrinsicId::NetAccept)
      .iconst(0)
      .iadd() // changed implementation (same behaviour, new bytecode)
      .iret();
  *Accept = MB.build();

  // PoolThread.run: restructured loop (body change on the infinite loop).
  MethodDef *Run = Set.find("PoolThread")->findMethod("run", "(I)V");
  MethodBuilder RB("run", "(I)V", /*IsStatic=*/true);
  RB.locals(2)
      .label("top")
      .load(0)
      .invokestatic("ThreadedServer", "acceptSocket", "(I)I")
      .store(1)
      .load(1)
      .iconst(0)
      .branch(Opcode::IfICmpLt, "top") // new: guard against bad sockets
      .load(1)
      .invokestatic("HttpHandler", "handle", "(I)V")
      .jump("top");
  *Run = RB.build();
}

} // namespace

AppModel jvolve::makeJettyApp() {
  ClassSet Base;
  addJettyCore(Base);
  for (int I = 0; I < 60; ++I)
    Base.add(AppModel::makeFillerClass("JFill" + std::to_string(I), 6, 8));

  std::vector<Release> Releases;
  auto Row = [](int ClsAdd, int ClsChanged, int MAdd, int MDel, int MBody,
                int MSig, int FAdd, int FDel) {
    ChangeCounts C;
    C.ClsAdd = ClsAdd;
    C.ClsChanged = ClsChanged;
    C.MAdd = MAdd;
    C.MDel = MDel;
    C.MBody = MBody;
    C.MSig = MSig;
    C.FAdd = FAdd;
    C.FDel = FDel;
    return C;
  };
  auto BumpMake = [](ClassSet &Set) {
    bumpConstIn(Set, "HttpResponse", "make", BaseResponseSalt);
  };
  auto BumpHandle = [](ClassSet &Set) {
    // handle() gains a (dead) trailing instruction: a pure body change
    // that leaves behaviour and branch targets intact.
    MethodDef *M = Set.find("HttpHandler")->findMethod("handle", "(I)V");
    M->Code.push_back({Opcode::Nop, 0, "", "", ""});
  };

  // Table 2 rows: {cls add, cls changed, m add, m del, m body/m sig,
  // f add, f del}.
  Releases.push_back({"5.1.1", Row(0, 14, 4, 1, 38, 0, 0, 0), BumpMake,
                      true, false, false});
  Releases.push_back({"5.1.2", Row(1, 5, 0, 0, 12, 1, 0, 0), BumpHandle,
                      true, false, false});
  Releases.push_back({"5.1.3", Row(3, 15, 19, 2, 59, 0, 10, 1), script513,
                      /*ExpectSupported=*/false, false, false});
  Releases.push_back({"5.1.4", Row(0, 6, 0, 4, 9, 6, 0, 2), BumpMake, true,
                      false, false});
  Releases.push_back({"5.1.5", Row(0, 54, 21, 4, 112, 8, 5, 0),
                      [](ClassSet &S) {
                        bumpConstIn(S, "HttpResponse", "make",
                                    BaseResponseSalt);
                        MethodDef *M = S.find("HttpHandler")
                                           ->findMethod("handle", "(I)V");
                        M->Code.push_back({Opcode::Nop, 0, "", "", ""});
                      },
                      true, false, false});
  Releases.push_back({"5.1.6", Row(0, 4, 0, 0, 20, 0, 5, 6), BumpMake, true,
                      false, false});
  Releases.push_back({"5.1.7", Row(0, 7, 8, 0, 11, 2, 9, 3), BumpHandle,
                      true, false, false});
  Releases.push_back({"5.1.8", Row(0, 1, 0, 0, 1, 0, 0, 0), BumpMake, true,
                      false, false});
  Releases.push_back({"5.1.9", Row(0, 1, 0, 0, 1, 0, 0, 0), BumpMake, true,
                      false, false});
  Releases.push_back({"5.1.10", Row(0, 4, 0, 0, 4, 0, 0, 0), BumpMake, true,
                      false, false});

  return AppModel("jetty", std::move(Base), std::move(Releases), "JFill");
}

void jvolve::startJettyThreads(VM &TheVM) {
  for (int I = 0; I < JettyPoolThreads; ++I)
    TheVM.spawnThread("PoolThread", "run", "(I)V",
                      {Slot::ofInt(JettyPort)},
                      "pool-" + std::to_string(I), /*Daemon=*/true);
}
