#include "apps/AppModel.h"

#include "bytecode/Builder.h"
#include "bytecode/Builtins.h"
#include "dsu/Upt.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace jvolve;

bool jvolve::summaryMatches(const UpdateSummary &S, const ChangeCounts &T) {
  return S.ClassesAdded == T.ClsAdd && S.ClassesDeleted == T.ClsDel &&
         S.ClassesChanged == T.ClsChanged && S.MethodsAdded == T.MAdd &&
         S.MethodsDeleted == T.MDel && S.MethodsBodyChanged == T.MBody &&
         S.MethodsSigChanged == T.MSig && S.FieldsAdded == T.FAdd &&
         S.FieldsDeleted == T.FDel;
}

std::string jvolve::describeCounts(const ChangeCounts &C) {
  return "cls +" + std::to_string(C.ClsAdd) + " -" +
         std::to_string(C.ClsDel) + " ~" + std::to_string(C.ClsChanged) +
         "  m +" + std::to_string(C.MAdd) + " -" + std::to_string(C.MDel) +
         " " + std::to_string(C.MBody) + "/" + std::to_string(C.MSig) +
         "  f +" + std::to_string(C.FAdd) + " -" + std::to_string(C.FDel);
}

std::string jvolve::describeSummary(const UpdateSummary &S) {
  ChangeCounts C;
  C.ClsAdd = S.ClassesAdded;
  C.ClsDel = S.ClassesDeleted;
  C.ClsChanged = S.ClassesChanged;
  C.MAdd = S.MethodsAdded;
  C.MDel = S.MethodsDeleted;
  C.MBody = S.MethodsBodyChanged;
  C.MSig = S.MethodsSigChanged;
  C.FAdd = S.FieldsAdded;
  C.FDel = S.FieldsDeleted;
  return describeCounts(C);
}

ClassDef AppModel::makeFillerClass(const std::string &Name, int NumFields,
                                   int NumMethods) {
  ClassBuilder CB(Name);
  for (int I = 0; I < NumFields; ++I)
    CB.field("f" + std::to_string(I), "I");
  for (int I = 0; I < NumMethods; ++I)
    CB.method("m" + std::to_string(I), "()I").iconst(I).iret();
  return CB.build();
}

AppModel::AppModel(std::string AppName, ClassSet Base,
                   std::vector<Release> Releases, std::string FillerPrefix)
    : AppName(std::move(AppName)), Base(std::move(Base)),
      Releases(std::move(Releases)), FillerPrefix(std::move(FillerPrefix)) {
  generate();
}

std::string AppModel::versionName(size_t I) const {
  if (I == 0)
    return AppName + "-base";
  return AppName + "-" + Releases.at(I - 1).Name;
}

namespace {

/// Builds a fresh trivial method "Name()I { return Value; }".
MethodDef trivialMethod(const std::string &Name, int64_t Value) {
  MethodBuilder MB(Name, "()I", /*IsStatic=*/false);
  MB.iconst(Value).iret();
  return MB.build();
}

/// Bumps the first integer constant in \p M (a body change).
bool bumpBodyConstant(MethodDef &M) {
  for (Instr &I : M.Code)
    if (I.Op == Opcode::IConst) {
      ++I.IVal;
      return true;
    }
  return false;
}

/// Toggles a method's signature between ()I and (I)I, keeping the body.
void toggleSignature(MethodDef &M) {
  M.Sig = M.Sig == "()I" ? "(I)I" : "()I";
  M.NumLocals = std::max<uint16_t>(M.NumLocals, M.numParamSlots());
}

} // namespace

void AppModel::applyFiller(const ClassSet &Prev, ClassSet &Cur,
                           const ChangeCounts &Target, size_t ReleaseIndex) {
  UpdateSummary Scripted = Upt::computeSpec(Prev, Cur).Summary;

  ChangeCounts R; // remaining filler budget
  R.ClsAdd = Target.ClsAdd - Scripted.ClassesAdded;
  R.ClsDel = Target.ClsDel - Scripted.ClassesDeleted;
  R.ClsChanged = Target.ClsChanged - Scripted.ClassesChanged;
  R.MAdd = Target.MAdd - Scripted.MethodsAdded;
  R.MDel = Target.MDel - Scripted.MethodsDeleted;
  R.MBody = Target.MBody - Scripted.MethodsBodyChanged;
  R.MSig = Target.MSig - Scripted.MethodsSigChanged;
  R.FAdd = Target.FAdd - Scripted.FieldsAdded;
  R.FDel = Target.FDel - Scripted.FieldsDeleted;
  if (R.ClsAdd < 0 || R.ClsDel < 0 || R.ClsChanged < 0 || R.MAdd < 0 ||
      R.MDel < 0 || R.MBody < 0 || R.MSig < 0 || R.FAdd < 0 || R.FDel < 0)
    fatalError(AppName + " release " + std::to_string(ReleaseIndex) +
               ": scripted changes exceed the table row (" +
               describeSummary(Scripted) + " vs " + describeCounts(Target) +
               ")");

  // Identify untouched filler classes available for mutation or deletion.
  std::set<std::string> TouchedByScripted;
  {
    UpdateSpec S = Upt::computeSpec(Prev, Cur);
    for (const std::string &C : S.DirectClassUpdates)
      TouchedByScripted.insert(C);
    for (const MethodRef &M : S.MethodBodyUpdates)
      TouchedByScripted.insert(M.ClassName);
  }
  std::vector<std::string> Pool;
  for (const auto &[Name, Cls] : Cur.classes())
    if (Name.rfind(FillerPrefix, 0) == 0 && !TouchedByScripted.count(Name))
      Pool.push_back(Name);
  std::sort(Pool.begin(), Pool.end());

  // Deletions first, from the end of the pool (never the classes we are
  // about to mutate).
  for (int I = 0; I < R.ClsDel; ++I) {
    if (Pool.empty())
      fatalError(AppName + ": filler pool exhausted for deletions");
    Cur.remove(Pool.back());
    Pool.pop_back();
  }

  // Pick the classes that will carry this release's filler mutations,
  // rotating through the pool so successive releases touch different
  // classes.
  if (static_cast<int>(Pool.size()) < R.ClsChanged)
    fatalError(AppName + ": filler pool too small (" +
               std::to_string(Pool.size()) + " < " +
               std::to_string(R.ClsChanged) + " changed classes needed)");
  std::vector<ClassDef *> Mutants;
  size_t Start = (ReleaseIndex * 7) % std::max<size_t>(Pool.size(), 1);
  for (int I = 0; I < R.ClsChanged; ++I)
    Mutants.push_back(Cur.find(Pool[(Start + I) % Pool.size()]));

  // Distribute the unit operations round-robin over the mutant classes.
  enum class OpKind { FAdd, FDel, MAdd, MDel, MBody, MSig };
  std::vector<OpKind> Ops;
  for (int I = 0; I < R.MBody; ++I)
    Ops.push_back(OpKind::MBody);
  for (int I = 0; I < R.MSig; ++I)
    Ops.push_back(OpKind::MSig);
  for (int I = 0; I < R.MAdd; ++I)
    Ops.push_back(OpKind::MAdd);
  for (int I = 0; I < R.MDel; ++I)
    Ops.push_back(OpKind::MDel);
  for (int I = 0; I < R.FAdd; ++I)
    Ops.push_back(OpKind::FAdd);
  for (int I = 0; I < R.FDel; ++I)
    Ops.push_back(OpKind::FDel);
  if (!Mutants.empty() && Ops.size() < Mutants.size())
    fatalError(AppName + ": not enough member changes (" +
               std::to_string(Ops.size()) + ") to touch " +
               std::to_string(Mutants.size()) + " classes");
  if (Mutants.empty() && !Ops.empty())
    fatalError(AppName + ": member changes requested but no class may "
                         "change");

  // Track members touched this release so operations never overlap: a
  // method added and then deleted (or changed) in the same release would
  // collapse into fewer counted changes than the table requires.
  std::set<std::string> TouchedMethods; ///< "Class.name" added/changed
  std::set<std::string> AddedFields;    ///< "Class.name" added this release
  for (size_t I = 0; I < Ops.size(); ++I) {
    ClassDef &Cls = *Mutants[I % Mutants.size()];
    switch (Ops[I]) {
    case OpKind::FAdd: {
      std::string Name = "xf" + std::to_string(UniqueCounter++);
      AddedFields.insert(Cls.Name + "." + Name);
      Cls.Fields.push_back({Name, "I", false, false, Access::Public});
      break;
    }
    case OpKind::FDel: {
      bool Done = false;
      for (auto It = Cls.Fields.rbegin(); It != Cls.Fields.rend(); ++It) {
        if (AddedFields.count(Cls.Name + "." + It->Name))
          continue; // never delete a field added this release
        Cls.Fields.erase(std::next(It).base());
        Done = true;
        break;
      }
      if (!Done)
        fatalError(AppName + ": no field left to delete in " + Cls.Name);
      break;
    }
    case OpKind::MAdd: {
      std::string Name = "xm" + std::to_string(UniqueCounter++);
      TouchedMethods.insert(Cls.Name + "." + Name);
      Cls.Methods.push_back(trivialMethod(Name, 1));
      break;
    }
    case OpKind::MDel: {
      bool Done = false;
      for (auto It = Cls.Methods.rbegin(); It != Cls.Methods.rend(); ++It) {
        if (TouchedMethods.count(Cls.Name + "." + It->Name))
          continue; // never delete a method added/changed this release
        Cls.Methods.erase(std::next(It).base());
        Done = true;
        break;
      }
      if (!Done)
        fatalError(AppName + ": no method left to delete in " + Cls.Name);
      break;
    }
    case OpKind::MBody: {
      bool Done = false;
      for (MethodDef &M : Cls.Methods) {
        if (TouchedMethods.count(Cls.Name + "." + M.Name))
          continue;
        if (bumpBodyConstant(M)) {
          TouchedMethods.insert(Cls.Name + "." + M.Name);
          Done = true;
          break;
        }
      }
      if (!Done)
        fatalError(AppName + ": no method available for a body change in " +
                   Cls.Name);
      break;
    }
    case OpKind::MSig: {
      bool Done = false;
      for (MethodDef &M : Cls.Methods) {
        if (TouchedMethods.count(Cls.Name + "." + M.Name))
          continue;
        if (M.Sig != "()I" && M.Sig != "(I)I")
          continue;
        toggleSignature(M);
        TouchedMethods.insert(Cls.Name + "." + M.Name);
        Done = true;
        break;
      }
      if (!Done)
        fatalError(AppName + ": no method available for a sig change in " +
                   Cls.Name);
      break;
    }
    }
  }

  // Class additions last (added classes never count as changed).
  for (int I = 0; I < R.ClsAdd; ++I)
    Cur.add(makeFillerClass(FillerPrefix + "N" +
                                std::to_string(UniqueCounter++),
                            4, 6));
}

void AppModel::generate() {
  Versions.push_back(Base);
  for (size_t RI = 0; RI < Releases.size(); ++RI) {
    const Release &Rel = Releases[RI];
    ClassSet Cur = Versions.back();
    if (Rel.Scripted)
      Rel.Scripted(Cur);
    applyFiller(Versions.back(), Cur, Rel.Target, RI);

    // Generation invariant: the UPT summary matches the table row exactly.
    UpdateSummary Got = Upt::computeSpec(Versions.back(), Cur).Summary;
    if (!summaryMatches(Got, Rel.Target))
      fatalError(AppName + " " + Rel.Name + ": generated diff (" +
                 describeSummary(Got) + ") does not match the table row (" +
                 describeCounts(Rel.Target) + ")");
    Versions.push_back(std::move(Cur));
  }
}
