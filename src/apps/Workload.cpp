#include "apps/Workload.h"

using namespace jvolve;

LoadResult LoadDriver::drive(uint64_t Ticks) {
  LoadResult Result;
  uint64_t Start = TheVM.scheduler().ticks();
  uint64_t End = Start + Ticks;
  uint64_t ResponsesBefore = TheVM.net().totalResponses();
  std::vector<double> Latencies;

  while (TheVM.scheduler().ticks() < End) {
    for (int C = 0; C < Opts.ConnectionsPerBatch; ++C) {
      std::vector<int64_t> Requests;
      for (int R = 0; R < Opts.RequestsPerConnection; ++R)
        Requests.push_back(NextRequestValue++);
      uint64_t Gap = Opts.InterArrival;
      if (Opts.JitterTicks > 0)
        Gap += Jitter.nextBelow(Opts.JitterTicks + 1);
      TheVM.injectConnection(Opts.Port, Requests, Gap);
    }
    uint64_t Chunk =
        std::min<uint64_t>(Opts.BatchInterval, End - TheVM.scheduler().ticks());
    uint64_t BatchEnd = TheVM.scheduler().ticks() + Chunk;
    TheVM.run(Chunk);
    // Open-loop load: the next batch arrives on schedule even if the
    // server drained early and the VM went idle.
    TheVM.fastForwardTo(BatchEnd);
    for (double L : TheVM.net().drainLatencies())
      Latencies.push_back(L);
    TheVM.net().drainResponses();
  }

  Result.Ticks = TheVM.scheduler().ticks() - Start;
  Result.Responses = TheVM.net().totalResponses() - ResponsesBefore;
  if (Result.Ticks > 0)
    Result.Throughput = 1000.0 * static_cast<double>(Result.Responses) /
                        static_cast<double>(Result.Ticks);
  Result.LatencyTicks = summarizeQuartiles(std::move(Latencies));
  return Result;
}

void LoadDriver::runIdle(uint64_t Ticks) {
  uint64_t End = TheVM.scheduler().ticks() + Ticks;
  while (TheVM.scheduler().ticks() < End) {
    VM::RunResult R = TheVM.run(End - TheVM.scheduler().ticks());
    TheVM.net().drainLatencies();
    TheVM.net().drainResponses();
    if (R.Idle)
      break;
  }
}
