//===----------------------------------------------------------------------===//
///
/// \file
/// The Jetty webserver model: versions 5.1.0 through 5.1.10 (paper §4.2,
/// Table 2).
///
/// Behavioural core: a ThreadedServer.acceptSocket that blocks for
/// connections, PoolThread.run loops that accept and serve, an HttpHandler
/// request loop, and an HttpResponse generator — enough structure that the
/// update to 5.1.3 (which changes acceptSocket and PoolThread.run, both
/// always on stack) can never reach a DSU safe point, while every other
/// release applies.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_JETTYAPP_H
#define JVOLVE_APPS_JETTYAPP_H

#include "apps/AppModel.h"

namespace jvolve {

/// TCP port the model serves (the workload driver injects here).
inline constexpr int JettyPort = 80;

/// Number of pool threads accepting connections.
inline constexpr int JettyPoolThreads = 2;

/// Builds the Jetty version stream: version(0) is 5.1.0, version(10) is
/// 5.1.10, with each diff matching Table 2.
AppModel makeJettyApp();

/// Spawns the server's pool threads on \p TheVM (which must have a Jetty
/// version loaded).
void startJettyThreads(class VM &TheVM);

} // namespace jvolve

#endif // JVOLVE_APPS_JETTYAPP_H
