//===----------------------------------------------------------------------===//
///
/// \file
/// The CrossFTP server model: versions 1.05 through 1.08 (paper §4.4,
/// Table 4).
///
/// Behavioural core: an FtpServer accept loop that hands each session to a
/// RequestHandler whose handle() method processes the whole FTP session.
/// The 1.07 -> 1.08 update changes handle(); with active sessions it is
/// essentially always on stack (the update times out), but it applies when
/// the server is relatively idle — exactly the behaviour §4.4 reports.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_CROSSFTPAPP_H
#define JVOLVE_APPS_CROSSFTPAPP_H

#include "apps/AppModel.h"

namespace jvolve {

inline constexpr int FtpPort = 21;

/// Builds the CrossFTP version stream: version(0) is 1.05, version(3) is
/// 1.08, each diff matching Table 4.
AppModel makeCrossFtpApp();

/// Spawns the FTP accept-loop thread.
void startCrossFtpThreads(class VM &TheVM);

} // namespace jvolve

#endif // JVOLVE_APPS_CROSSFTPAPP_H
