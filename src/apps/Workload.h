//===----------------------------------------------------------------------===//
///
/// \file
/// Synthetic load generation, standing in for the paper's httperf runs and
/// mail/FTP client sessions (§4.1): injects connections carrying
/// timestamped requests at a configurable rate while the VM runs, and
/// collects throughput and per-request latency in virtual time.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_WORKLOAD_H
#define JVOLVE_APPS_WORKLOAD_H

#include "support/Rng.h"
#include "support/Stats.h"
#include "vm/VM.h"

#include <cstdint>

namespace jvolve {

/// Measurements over one load interval.
struct LoadResult {
  uint64_t Responses = 0;
  uint64_t Ticks = 0;
  /// Responses per 1000 virtual ticks.
  double Throughput = 0;
  /// Per-request latency (send tick minus request arrival tick).
  QuartileSummary LatencyTicks;
};

/// Drives connections into one port of a running VM.
class LoadDriver {
public:
  struct Options {
    int Port = 80;
    /// Connections opened per batch.
    int ConnectionsPerBatch = 2;
    /// Serial requests per connection (httperf used 5).
    int RequestsPerConnection = 5;
    /// Virtual ticks between consecutive requests of one connection.
    uint64_t InterArrival = 30;
    /// Virtual ticks between batches.
    uint64_t BatchInterval = 150;
    /// Uniform jitter (0..JitterTicks) added to each connection's
    /// inter-arrival gap, making runs vary like real client traffic.
    uint64_t JitterTicks = 0;
    /// Seed for the jitter stream.
    uint64_t Seed = 1;
  };

  LoadDriver(VM &TheVM, Options Opts)
      : TheVM(TheVM), Opts(Opts), Jitter(Opts.Seed) {}

  /// Keeps the server under load for \p Ticks virtual ticks (injecting
  /// batches and running the VM) without recording statistics.
  void runWithLoad(uint64_t Ticks) { (void)drive(Ticks); }

  /// Runs under load for \p Ticks and returns throughput/latency.
  LoadResult measure(uint64_t Ticks) { return drive(Ticks); }

  /// Runs the VM for \p Ticks with no new load (drains existing sessions).
  void runIdle(uint64_t Ticks);

private:
  LoadResult drive(uint64_t Ticks);

  VM &TheVM;
  Options Opts;
  Rng Jitter;
  int64_t NextRequestValue = 1;
};

} // namespace jvolve

#endif // JVOLVE_APPS_WORKLOAD_H
