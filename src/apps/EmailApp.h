//===----------------------------------------------------------------------===//
///
/// \file
/// The JavaEmailServer model: versions 1.2.1 through 1.4 (paper §4.3,
/// Table 3, and the running example of Figures 2 and 3).
///
/// Behavioural core: the User / EmailAddress / ConfigurationManager classes
/// of Figure 2, plus the Pop3Processor.run and SMTPSender.run infinite
/// processing loops. The 1.3 release changes those run() methods (so the
/// update can never reach a safe point); 1.3.2 performs the Figure 2 field
/// type change (String[] -> EmailAddress[]) whose custom object transformer
/// is Figure 3, and — because run() references the updated classes — both
/// 1.3.2 and 1.3.3 require on-stack replacement, as the paper reports.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_EMAILAPP_H
#define JVOLVE_APPS_EMAILAPP_H

#include "apps/AppModel.h"
#include "dsu/UpdateBundle.h"

namespace jvolve {

inline constexpr int Pop3Port = 110;

/// Builds the JES version stream: version(0) is 1.2.1, version(9) is 1.4,
/// each diff matching Table 3.
AppModel makeEmailApp();

/// Runs ConfigurationManager.loadUser (populates the admin account) and
/// spawns the POP3 and SMTP threads.
void startEmailThreads(class VM &TheVM);

/// Registers the developer-supplied transformers for the update *to*
/// version index \p VersionIndex (1-based like AppModel::version). Only
/// 1.3.2 (the Figure 3 User transformer) installs anything.
void registerEmailTransformers(UpdateBundle &B, const AppModel &App,
                               size_t VersionIndex);

} // namespace jvolve

#endif // JVOLVE_APPS_EMAILAPP_H
