//===----------------------------------------------------------------------===//
///
/// \file
/// Live evaluation of an application's update stream: for each release,
/// boot a fresh VM on the previous version, put it under load, and apply
/// the dynamic update — reproducing the per-release experiments behind
/// Tables 2-4 and the paper's 20-of-22 flexibility headline.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_EVALUATION_H
#define JVOLVE_APPS_EVALUATION_H

#include "apps/AppModel.h"
#include "dsu/Synthesis.h"
#include "dsu/Updater.h"

#include <map>
#include <string>
#include <vector>

namespace jvolve {

/// Where the update's transformers come from.
enum class TransformerMode {
  Handwritten, ///< the app's registered transformers (paper §3.4)
  Synthesized, ///< dsu/Synthesis.h output only; handwritten rules skipped
};

/// Tuning knobs for one release evaluation.
struct EvalOptions {
  /// Bounds the safe-point search (kept small so the two impossible
  /// updates fail quickly).
  uint64_t TimeoutTicks = 120'000;
  /// Commit with untransformed shells and drain through the read barrier
  /// instead of transforming eagerly in the DSU collection.
  bool Lazy = false;
  /// Lazy only: bulk-settle provably-untouched classes at arm time and
  /// certify the impact closure only (UpdateOptions::ImpactBoundedDrain).
  bool ImpactBounded = false;
  TransformerMode Transformers = TransformerMode::Handwritten;
  /// Lazy only: after the commit, keep the VM running for a fixed tick
  /// budget (identical across configurations, so two runs observe the
  /// same virtual time), then record whether the engine drained, a full
  /// (unfiltered) heap certification, and a per-class live-object census
  /// — the evidence the impact-bounded drain reaches the same certified
  /// heap as the full drain.
  bool DrainFully = false;
  uint64_t DrainTicks = 400'000;
};

/// Result of applying one release's update to a live, loaded server.
struct ReleaseOutcome {
  std::string Version;
  UpdateSummary Summary;   ///< the UPT diff (one table row)
  UpdateResult Result;     ///< Jvolve outcome under load
  bool EcSupported = false; ///< the method-body-only baseline's verdict
  /// For updates that fail under load: did a retry on an idle server
  /// succeed (CrossFTP 1.07 -> 1.08, §4.4)?
  bool AppliedWhenIdle = false;
  /// Synthesized mode: what the synthesis pass inferred for this release.
  SynthesisReport Synth;

  /// DrainFully evidence (lazy updates only; see EvalOptions::DrainFully).
  bool Drained = false;          ///< engine settled every shell in budget
  bool PostDrainCertified = false; ///< full HeapVerifier pass was clean
  uint64_t BulkSettled = 0;      ///< shells settled at arm (impact-bounded)
  uint64_t LazyTransformed = 0;  ///< on-demand + background transforms
  /// Live non-array objects per class after the drain window — equal
  /// between a full and an impact-bounded drain of the same release.
  std::map<std::string, size_t> HeapCensus;

  bool supported() const {
    return Result.Status == UpdateStatus::Applied || AppliedWhenIdle;
  }
};

/// Applies the update to version \p V of \p App on a freshly booted VM
/// running version V-1 under load.
ReleaseOutcome evaluateRelease(const AppModel &App, size_t V,
                               const EvalOptions &Opts);

/// Evaluates every release of \p App.
std::vector<ReleaseOutcome> evaluateApp(const AppModel &App,
                                        const EvalOptions &Opts);

/// Back-compat convenience overloads (handwritten transformers, full
/// drain) used by the existing tables/benches.
ReleaseOutcome evaluateRelease(const AppModel &App, size_t V,
                               uint64_t TimeoutTicks = 120'000,
                               bool Lazy = false);
std::vector<ReleaseOutcome> evaluateApp(const AppModel &App,
                                        uint64_t TimeoutTicks = 120'000,
                                        bool Lazy = false);

} // namespace jvolve

#endif // JVOLVE_APPS_EVALUATION_H
