//===----------------------------------------------------------------------===//
///
/// \file
/// Live evaluation of an application's update stream: for each release,
/// boot a fresh VM on the previous version, put it under load, and apply
/// the dynamic update — reproducing the per-release experiments behind
/// Tables 2-4 and the paper's 20-of-22 flexibility headline.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_APPS_EVALUATION_H
#define JVOLVE_APPS_EVALUATION_H

#include "apps/AppModel.h"
#include "dsu/Updater.h"

#include <string>
#include <vector>

namespace jvolve {

/// Result of applying one release's update to a live, loaded server.
struct ReleaseOutcome {
  std::string Version;
  UpdateSummary Summary;   ///< the UPT diff (one table row)
  UpdateResult Result;     ///< Jvolve outcome under load
  bool EcSupported = false; ///< the method-body-only baseline's verdict
  /// For updates that fail under load: did a retry on an idle server
  /// succeed (CrossFTP 1.07 -> 1.08, §4.4)?
  bool AppliedWhenIdle = false;

  bool supported() const {
    return Result.Status == UpdateStatus::Applied || AppliedWhenIdle;
  }
};

/// Applies the update to version \p V of \p App on a freshly booted VM
/// running version V-1 under load. \p TimeoutTicks bounds the safe-point
/// search (kept small so the two impossible updates fail quickly).
/// \p Lazy commits with untransformed shells and drains through the read
/// barrier instead of transforming eagerly in the DSU collection.
ReleaseOutcome evaluateRelease(const AppModel &App, size_t V,
                               uint64_t TimeoutTicks = 120'000,
                               bool Lazy = false);

/// Evaluates every release of \p App.
std::vector<ReleaseOutcome> evaluateApp(const AppModel &App,
                                        uint64_t TimeoutTicks = 120'000,
                                        bool Lazy = false);

} // namespace jvolve

#endif // JVOLVE_APPS_EVALUATION_H
