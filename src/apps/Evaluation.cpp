#include "apps/Evaluation.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/EcUpdater.h"
#include "dsu/Upt.h"
#include "support/Error.h"

using namespace jvolve;

namespace {

VM::Config evalConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 16u << 20;
  return C;
}

/// Boots \p App's version \p V on a fresh VM, starts its threads, and
/// (unless \p Idle) applies a representative load.
std::unique_ptr<VM> bootApp(const AppModel &App, size_t V, bool Idle) {
  auto TheVM = std::make_unique<VM>(evalConfig());
  TheVM->loadProgram(App.version(V));

  if (App.name() == "jetty") {
    startJettyThreads(*TheVM);
    if (!Idle) {
      LoadDriver::Options LO;
      LO.Port = JettyPort;
      LoadDriver(*TheVM, LO).runWithLoad(5'000);
    }
  } else if (App.name() == "javaemailserver") {
    startEmailThreads(*TheVM);
    if (!Idle) {
      TheVM->injectConnection(Pop3Port, {1, 2, 3, 4, 5},
                              /*InterArrival=*/200);
      TheVM->run(2'000);
    }
  } else if (App.name() == "crossftp") {
    startCrossFtpThreads(*TheVM);
    if (!Idle) {
      // Long FTP sessions with think time keep handle() on stack.
      std::vector<int64_t> Session(500, 1);
      TheVM->injectConnection(FtpPort, Session, /*InterArrival=*/250);
      TheVM->injectConnection(FtpPort, Session, /*InterArrival=*/250);
      TheVM->run(2'000);
    }
  } else {
    fatalError("unknown app '" + App.name() + "'");
  }
  return TheVM;
}

UpdateResult applyTo(VM &TheVM, const AppModel &App, size_t V,
                     uint64_t TimeoutTicks, bool Lazy) {
  UpdateBundle B = Upt::prepare(App.version(V - 1), App.version(V),
                                "v" + std::to_string(V - 1));
  if (App.name() == "javaemailserver")
    registerEmailTransformers(B, App, V);
  UpdateOptions Opts;
  Opts.TimeoutTicks = TimeoutTicks;
  Opts.LazyTransform = Lazy;
  Updater U(TheVM);
  return U.applyNow(std::move(B), Opts, /*MaxDriveTicks=*/TimeoutTicks * 4);
}

} // namespace

ReleaseOutcome jvolve::evaluateRelease(const AppModel &App, size_t V,
                                       uint64_t TimeoutTicks, bool Lazy) {
  ReleaseOutcome Out;
  Out.Version = App.release(V).Name;
  Out.Summary =
      Upt::computeSpec(App.version(V - 1), App.version(V)).Summary;
  Out.EcSupported = EcUpdater::supports(Out.Summary);

  {
    std::unique_ptr<VM> TheVM = bootApp(App, V - 1, /*Idle=*/false);
    Out.Result = applyTo(*TheVM, App, V, TimeoutTicks, Lazy);
  }

  // The paper applied CrossFTP 1.07 -> 1.08 "when the server was
  // relatively idle"; retry any busy-failure on an idle server.
  if (Out.Result.Status == UpdateStatus::TimedOut) {
    std::unique_ptr<VM> TheVM = bootApp(App, V - 1, /*Idle=*/true);
    TheVM->run(2'000);
    UpdateResult IdleResult = applyTo(*TheVM, App, V, TimeoutTicks, Lazy);
    Out.AppliedWhenIdle = IdleResult.Status == UpdateStatus::Applied;
  }
  return Out;
}

std::vector<ReleaseOutcome> jvolve::evaluateApp(const AppModel &App,
                                                uint64_t TimeoutTicks,
                                                bool Lazy) {
  std::vector<ReleaseOutcome> Out;
  for (size_t V = 1; V < App.numVersions(); ++V)
    Out.push_back(evaluateRelease(App, V, TimeoutTicks, Lazy));
  return Out;
}
