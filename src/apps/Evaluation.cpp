#include "apps/Evaluation.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/EcUpdater.h"
#include "dsu/LazyTransform.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "runtime/ObjectModel.h"
#include "support/Error.h"

using namespace jvolve;

namespace {

VM::Config evalConfig() {
  VM::Config C;
  C.HeapSpaceBytes = 16u << 20;
  return C;
}

/// Boots \p App's version \p V on a fresh VM, starts its threads, and
/// (unless \p Idle) applies a representative load.
std::unique_ptr<VM> bootApp(const AppModel &App, size_t V, bool Idle) {
  auto TheVM = std::make_unique<VM>(evalConfig());
  TheVM->loadProgram(App.version(V));

  if (App.name() == "jetty") {
    startJettyThreads(*TheVM);
    if (!Idle) {
      LoadDriver::Options LO;
      LO.Port = JettyPort;
      LoadDriver(*TheVM, LO).runWithLoad(5'000);
    }
  } else if (App.name() == "javaemailserver") {
    startEmailThreads(*TheVM);
    if (!Idle) {
      TheVM->injectConnection(Pop3Port, {1, 2, 3, 4, 5},
                              /*InterArrival=*/200);
      TheVM->run(2'000);
    }
  } else if (App.name() == "crossftp") {
    startCrossFtpThreads(*TheVM);
    if (!Idle) {
      // Long FTP sessions with think time keep handle() on stack.
      std::vector<int64_t> Session(500, 1);
      TheVM->injectConnection(FtpPort, Session, /*InterArrival=*/250);
      TheVM->injectConnection(FtpPort, Session, /*InterArrival=*/250);
      TheVM->run(2'000);
    }
  } else {
    fatalError("unknown app '" + App.name() + "'");
  }
  return TheVM;
}

UpdateResult applyTo(VM &TheVM, const AppModel &App, size_t V,
                     const EvalOptions &EOpts, SynthesisReport *Synth) {
  UpdateBundle B = Upt::prepare(App.version(V - 1), App.version(V),
                                "v" + std::to_string(V - 1));
  if (EOpts.Transformers == TransformerMode::Synthesized) {
    TransformerSynthesis Synthesis(App.version(V - 1), App.version(V));
    SynthesisReport R = Synthesis.synthesize(B.Spec);
    recordSynthesisMetrics(R);
    TransformerSynthesis::installTransformers(B, R);
    if (Synth)
      *Synth = std::move(R);
  } else if (App.name() == "javaemailserver") {
    registerEmailTransformers(B, App, V);
  }
  UpdateOptions Opts;
  Opts.TimeoutTicks = EOpts.TimeoutTicks;
  Opts.LazyTransform = EOpts.Lazy;
  Opts.ImpactBoundedDrain = EOpts.ImpactBounded;
  Updater U(TheVM);
  return U.applyNow(std::move(B), Opts,
                    /*MaxDriveTicks=*/EOpts.TimeoutTicks * 4);
}

/// DrainFully evidence: run \p TheVM for the fixed tick budget, then record
/// the engine's drain state, a full heap certification, and the per-class
/// live-object census into \p Out.
void recordDrainEvidence(VM &TheVM, const EvalOptions &Opts,
                         ReleaseOutcome &Out) {
  TheVM.run(Opts.DrainTicks);
  if (VmLazyEngine *Engine = TheVM.lazyEngine()) {
    Out.Drained = Engine->drained();
    Out.LazyTransformed = Engine->transformedCount();
    if (auto *Impl = dynamic_cast<LazyTransformEngine *>(Engine))
      Out.BulkSettled = Impl->bulkSettled();
  }
  HeapVerifier Verifier(TheVM.heap(), TheVM.registry());
  if (VmLazyEngine *Engine = TheVM.lazyEngine())
    Verifier.setLazyContext(
        [Engine](Ref Obj) { return Engine->isPendingShell(Obj); },
        /*AllowOldCopyReserved=*/!Engine->drained());
  Out.PostDrainCertified =
      Verifier
          .verify([&TheVM](const std::function<void(Ref &)> &Visit) {
            TheVM.visitRoots(Visit);
          })
          .empty();

  ClassRegistry &Reg = TheVM.registry();
  Heap &H = TheVM.heap();
  size_t Scan = 0;
  while (Scan < H.bytesAllocated()) {
    Ref Obj = H.currentSpaceStart() + Scan;
    const RtClass &Cls = Reg.cls(classOf(Obj));
    if (!Cls.IsArray)
      ++Out.HeapCensus[Cls.Name];
    size_t Bytes = objectBytes(Cls, Obj);
    Scan += (Bytes + 7) & ~size_t(7);
  }
}

} // namespace

ReleaseOutcome jvolve::evaluateRelease(const AppModel &App, size_t V,
                                       const EvalOptions &Opts) {
  ReleaseOutcome Out;
  Out.Version = App.release(V).Name;
  Out.Summary =
      Upt::computeSpec(App.version(V - 1), App.version(V)).Summary;
  Out.EcSupported = EcUpdater::supports(Out.Summary);

  {
    std::unique_ptr<VM> TheVM = bootApp(App, V - 1, /*Idle=*/false);
    Out.Result = applyTo(*TheVM, App, V, Opts, &Out.Synth);
    if (Opts.DrainFully && Out.Result.LazyInstalled)
      recordDrainEvidence(*TheVM, Opts, Out);
  }

  // The paper applied CrossFTP 1.07 -> 1.08 "when the server was
  // relatively idle"; retry any busy-failure on an idle server.
  if (Out.Result.Status == UpdateStatus::TimedOut) {
    std::unique_ptr<VM> TheVM = bootApp(App, V - 1, /*Idle=*/true);
    TheVM->run(2'000);
    UpdateResult IdleResult = applyTo(*TheVM, App, V, Opts, nullptr);
    Out.AppliedWhenIdle = IdleResult.Status == UpdateStatus::Applied;
  }
  return Out;
}

std::vector<ReleaseOutcome> jvolve::evaluateApp(const AppModel &App,
                                                const EvalOptions &Opts) {
  std::vector<ReleaseOutcome> Out;
  for (size_t V = 1; V < App.numVersions(); ++V)
    Out.push_back(evaluateRelease(App, V, Opts));
  return Out;
}

ReleaseOutcome jvolve::evaluateRelease(const AppModel &App, size_t V,
                                       uint64_t TimeoutTicks, bool Lazy) {
  EvalOptions Opts;
  Opts.TimeoutTicks = TimeoutTicks;
  Opts.Lazy = Lazy;
  return evaluateRelease(App, V, Opts);
}

std::vector<ReleaseOutcome> jvolve::evaluateApp(const AppModel &App,
                                                uint64_t TimeoutTicks,
                                                bool Lazy) {
  EvalOptions Opts;
  Opts.TimeoutTicks = TimeoutTicks;
  Opts.Lazy = Lazy;
  return evaluateApp(App, Opts);
}
