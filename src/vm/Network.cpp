#include "vm/Network.h"

#include "support/Error.h"
#include "support/Telemetry.h"

using namespace jvolve;

int Network::inject(int Port, const std::vector<int64_t> &Values,
                    uint64_t Now, uint64_t InterArrival,
                    uint64_t FirstDelay) {
  int Id = NextConnId++;
  // Admission control: a full accept backlog sheds the whole connection —
  // every request gets an immediate Rejected response so the client learns
  // its fate instead of waiting on a queue the server will never reach.
  auto Lim = AdmissionLimits.find(Port);
  if (Lim != AdmissionLimits.end() && Lim->second > 0 &&
      AcceptQueues[Port].size() >= Lim->second) {
    Connection Shed;
    Shed.Port = Port;
    Shed.Closed = true;
    Connections.emplace(Id, std::move(Shed));
    ++NumConnections;
    for (size_t I = 0; I < Values.size(); ++I) {
      Responses.push_back({Id, RejectedResponse, Now});
      ++NumResponses;
    }
    NumShed += Values.size();
    if (Telemetry::isEnabled())
      Telemetry::global()
          .counter(metrics::NetShedTotal)
          .add(Values.size());
    return Id;
  }
  Connection C;
  C.Port = Port;
  uint64_t Arrival = Now + FirstDelay;
  for (int64_t V : Values) {
    C.Pending.push_back({V, Arrival});
    Arrival += InterArrival;
  }
  Connections.emplace(Id, std::move(C));
  AcceptQueues[Port].push_back(Id);
  ++NumConnections;
  return Id;
}

void Network::setAdmissionLimit(int Port, size_t MaxBacklog) {
  if (MaxBacklog == 0)
    AdmissionLimits.erase(Port);
  else
    AdmissionLimits[Port] = MaxBacklog;
}

size_t Network::admissionLimit(int Port) const {
  auto It = AdmissionLimits.find(Port);
  return It == AdmissionLimits.end() ? 0 : It->second;
}

bool Network::hasPendingAccept(int Port) const {
  if (Draining)
    return false;
  auto It = AcceptQueues.find(Port);
  return It != AcceptQueues.end() && !It->second.empty();
}

int Network::tryAccept(int Port) {
  if (Draining)
    return -1;
  auto It = AcceptQueues.find(Port);
  if (It == AcceptQueues.end() || It->second.empty())
    return -1;
  int Id = It->second.front();
  It->second.pop_front();
  return Id;
}

Network::RecvStatus Network::recv(int Conn, uint64_t Now, int64_t &Value,
                                  uint64_t &ReadyTick) {
  auto It = Connections.find(Conn);
  if (It == Connections.end() || It->second.Closed || It->second.Pending.empty())
    return RecvStatus::Eof;
  Connection &C = It->second;
  const Request &R = C.Pending.front();
  if (R.ArrivalTick > Now) {
    ReadyTick = R.ArrivalTick;
    return RecvStatus::NotReady;
  }
  Value = R.Value;
  C.LastConsumedArrival = R.ArrivalTick;
  C.Pending.pop_front();
  return RecvStatus::Value;
}

void Network::send(int Conn, int64_t Value, uint64_t Now) {
  Responses.push_back({Conn, Value, Now});
  ++NumResponses;
  auto It = Connections.find(Conn);
  if (It != Connections.end()) {
    uint64_t LatencyTicks = Now - It->second.LastConsumedArrival;
    Latencies.push_back(static_cast<double>(LatencyTicks));
    LatencySumTicks += LatencyTicks;
    if (Telemetry::isEnabled()) {
      // Feeds the windowed stats view and the canary latency monitor's
      // per-window baseline (jvolve-serve --stats). Handles bind once;
      // send() runs per response and must not pay registry lookups.
      if (!TelResponses) {
        Telemetry &Tel = Telemetry::global();
        TelResponses = &Tel.counter(metrics::NetResponses);
        TelLatency = &Tel.histogram(metrics::NetLatencyTicks);
      }
      TelResponses->inc();
      TelLatency->record(static_cast<double>(LatencyTicks));
    }
  }
}

void Network::close(int Conn) {
  auto It = Connections.find(Conn);
  if (It != Connections.end())
    It->second.Closed = true;
}

bool Network::isClosed(int Conn) const {
  auto It = Connections.find(Conn);
  return It == Connections.end() || It->second.Closed;
}

std::vector<NetResponse> Network::drainResponses() {
  std::vector<NetResponse> Out;
  Out.swap(Responses);
  return Out;
}

std::vector<double> Network::drainLatencies() {
  std::vector<double> Out;
  Out.swap(Latencies);
  return Out;
}
