#include "vm/Network.h"

#include "support/Error.h"

using namespace jvolve;

int Network::inject(int Port, const std::vector<int64_t> &Values,
                    uint64_t Now, uint64_t InterArrival,
                    uint64_t FirstDelay) {
  int Id = NextConnId++;
  Connection C;
  C.Port = Port;
  uint64_t Arrival = Now + FirstDelay;
  for (int64_t V : Values) {
    C.Pending.push_back({V, Arrival});
    Arrival += InterArrival;
  }
  Connections.emplace(Id, std::move(C));
  AcceptQueues[Port].push_back(Id);
  ++NumConnections;
  return Id;
}

bool Network::hasPendingAccept(int Port) const {
  auto It = AcceptQueues.find(Port);
  return It != AcceptQueues.end() && !It->second.empty();
}

int Network::tryAccept(int Port) {
  auto It = AcceptQueues.find(Port);
  if (It == AcceptQueues.end() || It->second.empty())
    return -1;
  int Id = It->second.front();
  It->second.pop_front();
  return Id;
}

Network::RecvStatus Network::recv(int Conn, uint64_t Now, int64_t &Value,
                                  uint64_t &ReadyTick) {
  auto It = Connections.find(Conn);
  if (It == Connections.end() || It->second.Closed || It->second.Pending.empty())
    return RecvStatus::Eof;
  Connection &C = It->second;
  const Request &R = C.Pending.front();
  if (R.ArrivalTick > Now) {
    ReadyTick = R.ArrivalTick;
    return RecvStatus::NotReady;
  }
  Value = R.Value;
  C.LastConsumedArrival = R.ArrivalTick;
  C.Pending.pop_front();
  return RecvStatus::Value;
}

void Network::send(int Conn, int64_t Value, uint64_t Now) {
  Responses.push_back({Conn, Value, Now});
  ++NumResponses;
  auto It = Connections.find(Conn);
  if (It != Connections.end())
    Latencies.push_back(
        static_cast<double>(Now - It->second.LastConsumedArrival));
}

void Network::close(int Conn) {
  auto It = Connections.find(Conn);
  if (It != Connections.end())
    It->second.Closed = true;
}

bool Network::isClosed(int Conn) const {
  auto It = Connections.find(Conn);
  return It == Connections.end() || It->second.Closed;
}

std::vector<NetResponse> Network::drainResponses() {
  std::vector<NetResponse> Out;
  Out.swap(Responses);
  return Out;
}

std::vector<double> Network::drainLatencies() {
  std::vector<double> Out;
  Out.swap(Latencies);
  return Out;
}
