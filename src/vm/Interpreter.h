//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM interpreter: executes quickened code one thread-quantum at a
/// time, honoring yield points (calls, returns, loop back edges), blocking
/// intrinsics, return barriers, and the adaptive recompilation policy.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_VM_INTERPRETER_H
#define JVOLVE_VM_INTERPRETER_H

#include "support/Telemetry.h"
#include "threads/Thread.h"

#include <cstdint>

namespace jvolve {

class VM;

/// Executes threads against a VM.
class Interpreter {
public:
  explicit Interpreter(VM &TheVM)
      : TheVM(TheVM),
        TelInstructions(
            Telemetry::global().counter(metrics::InterpInstructions)),
        TelCallsVirtual(
            Telemetry::global().counter(metrics::InterpCallsVirtual)),
        TelCallsDirect(
            Telemetry::global().counter(metrics::InterpCallsDirect)) {}

  /// Runs \p T for at most \p Budget instructions. \returns the number of
  /// instructions executed. On return, \p T is Runnable (budget expired) or
  /// in a non-running state (parked, blocked, sleeping, finished, trapped).
  uint64_t runThread(VMThread &T, uint64_t Budget);

private:
  /// \returns true if the instruction at \p Pc is a yield point: a call, a
  /// return, an intrinsic, or a backward branch.
  static bool isYieldPoint(const RInstr &I, uint32_t Pc);

  /// Handles a method return (shared by RetVoid/RetI/RetA). \returns false
  /// if the thread should stop running this quantum (barrier fired or the
  /// thread finished).
  bool doReturn(VMThread &T, bool HasValue);

  VM &TheVM;

  // Telemetry handles resolved once; the dispatch loop counts into plain
  // locals and flushes per quantum, so the hot path stays branch-only.
  TelCounter &TelInstructions;
  TelCounter &TelCallsVirtual;
  TelCounter &TelCallsDirect;
};

} // namespace jvolve

#endif // JVOLVE_VM_INTERPRETER_H
