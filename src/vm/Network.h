//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated network substrate.
///
/// The paper evaluates Jvolve on three servers driven by real clients
/// (httperf, SMTP/POP sessions, FTP sessions). We cannot ship those, so
/// this module provides the synthetic equivalent: a workload harness
/// injects connections carrying timestamped integer requests, server
/// bytecode accepts/receives/sends through intrinsics, and the harness
/// collects responses with virtual-time latencies.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_VM_NETWORK_H
#define JVOLVE_VM_NETWORK_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

namespace jvolve {

class TelCounter;
class TelHistogram;

/// One response produced by NetSend.
struct NetResponse {
  int Conn = -1;
  int64_t Value = 0;
  uint64_t Tick = 0;
};

/// The simulated network: per-port accept queues and per-connection
/// request streams, with per-port admission control and an update-time
/// drain mode.
class Network {
public:
  /// Result of a receive attempt.
  enum class RecvStatus {
    Value,    ///< a request was consumed
    Eof,      ///< the client sent everything and hung up
    NotReady, ///< the next request arrives at ReadyTick
  };

  /// The response value every request of a shed connection receives — a
  /// counted refusal, never a silent drop (HTTP 503 in spirit).
  static constexpr int64_t RejectedResponse = -503;

  /// Opens a connection carrying \p Values as requests. The first request
  /// arrives at \p Now + \p FirstDelay, subsequent requests
  /// \p InterArrival ticks apart. \returns the connection id.
  ///
  /// When \p Port has an admission limit and its accept backlog is full,
  /// the connection is shed instead: every request is answered immediately
  /// with RejectedResponse, the connection closes, and shedTotal() counts
  /// the rejected requests.
  int inject(int Port, const std::vector<int64_t> &Values, uint64_t Now,
             uint64_t InterArrival = 0, uint64_t FirstDelay = 0);

  /// Caps \p Port's accept backlog at \p MaxBacklog queued connections
  /// (0 = unlimited, the default). Connections past the cap are shed.
  void setAdmissionLimit(int Port, std::size_t MaxBacklog);
  std::size_t admissionLimit(int Port) const;

  /// Drain mode: accepts are gated (tryAccept fails, hasPendingAccept
  /// reports false) while already-accepted connections keep flowing, so
  /// in-flight work runs to its request boundaries. Queued connections
  /// stay queued and are delivered when the drain lifts.
  void beginDrain() { Draining = true; }
  void endDrain() { Draining = false; }
  bool draining() const { return Draining; }

  /// Total requests shed by admission control since construction.
  uint64_t shedTotal() const { return NumShed; }

  /// Non-destructively checks whether a connection is waiting on \p Port.
  bool hasPendingAccept(int Port) const;

  /// Pops a pending connection for \p Port. \returns -1 if none.
  int tryAccept(int Port);

  /// Attempts to receive the next request on \p Conn at time \p Now.
  RecvStatus recv(int Conn, uint64_t Now, int64_t &Value,
                  uint64_t &ReadyTick);

  /// Records a response on \p Conn at time \p Now; latency is measured
  /// against the arrival of the most recently consumed request.
  void send(int Conn, int64_t Value, uint64_t Now);

  void close(int Conn);
  bool isClosed(int Conn) const;

  /// \returns responses recorded since the last drain.
  std::vector<NetResponse> drainResponses();

  /// Per-request latencies (send tick minus request arrival tick), in
  /// virtual ticks, accumulated since the last drain.
  std::vector<double> drainLatencies();

  uint64_t totalResponses() const { return NumResponses; }
  uint64_t totalConnections() const { return NumConnections; }

  /// Cumulative per-request latency (in ticks) since construction — unlike
  /// drainLatencies() this is never consumed, so two samples give the mean
  /// latency over any window (the canary health monitor's baseline trick).
  uint64_t latencySumTicks() const { return LatencySumTicks; }

private:
  struct Request {
    int64_t Value;
    uint64_t ArrivalTick;
  };
  struct Connection {
    int Port = -1;
    std::deque<Request> Pending;
    uint64_t LastConsumedArrival = 0;
    bool Closed = false;
  };

  std::map<int, std::deque<int>> AcceptQueues;
  std::map<int, Connection> Connections;
  std::map<int, std::size_t> AdmissionLimits;
  std::vector<NetResponse> Responses;
  std::vector<double> Latencies;
  int NextConnId = 1;
  uint64_t NumResponses = 0;
  uint64_t NumConnections = 0;
  uint64_t NumShed = 0;
  uint64_t LatencySumTicks = 0;
  bool Draining = false;

  // Telemetry handles, bound on first instrumented send — send() runs
  // per response, and registry lookups are string-keyed. Handles are
  // never invalidated (Telemetry keeps map nodes alive forever).
  TelCounter *TelResponses = nullptr;
  TelHistogram *TelLatency = nullptr;
};

} // namespace jvolve

#endif // JVOLVE_VM_NETWORK_H
