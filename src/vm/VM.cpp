#include "vm/VM.h"

#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"
#include "runtime/ObjectModel.h"
#include "support/Error.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>

using namespace jvolve;

/// Registers every standard metric name up front so a snapshot taken after
/// any run — even one that never updates, collects, or traps — still lists
/// the full scheduler/heap/interpreter/dsu surface (with zero values)
/// instead of only the names that happened to record.
static void preregisterStandardMetrics() {
  Telemetry &Tel = Telemetry::global();
  for (const char *C :
       {metrics::SchedSafePoints, metrics::HeapObjectsAllocated,
        metrics::HeapBytesAllocated, metrics::GcCollections,
        metrics::GcBytesCopied, metrics::GcObjectsCopied,
        metrics::GcDsuCollections, metrics::GcDsuBytesCopied,
        metrics::GcDsuObjectsRemapped, metrics::InterpInstructions,
        metrics::InterpCallsVirtual, metrics::InterpCallsDirect,
        metrics::InterpTraps, metrics::JitCompilationsBaseline,
        metrics::JitCompilationsOpt, metrics::JitTierPromotions,
        metrics::DsuUpdatesScheduled, metrics::DsuUpdatesApplied,
        metrics::DsuUpdatesRolledBack, metrics::DsuUpdatesTimedOut,
        metrics::DsuUpdatesRejected, metrics::DsuSafePointAttempts,
        metrics::DsuBarriersArmed, metrics::DsuBarriersFired,
        metrics::DsuOsrReplacements, metrics::DsuFramesRemapped,
        metrics::DsuObjectsTransformed, metrics::DsuCodeInvalidated,
        metrics::DsuQuiescenceExpiries, metrics::DsuQuiescenceRescuedFrames,
        metrics::DsuQuiescenceForcedYields, metrics::DsuQuiescenceDegraded,
        metrics::DsuAnalysisRuns, metrics::DsuAnalysisRejected,
        metrics::DsuSynthRuns, metrics::DsuSynthRenames,
        metrics::DsuSynthFlagged,
        metrics::DsuLazyUpdates, metrics::DsuLazyBarrierHits,
        metrics::DsuLazyOnDemandTransforms,
        metrics::DsuLazyBackgroundTransforms, metrics::DsuLazyDrainTicks,
        metrics::DsuLazyFailed, metrics::DsuCanaryWindows,
        metrics::DsuCanaryChecks, metrics::DsuCanaryBreaches,
        metrics::DsuCanaryRetired, metrics::DsuRevertAttempts,
        metrics::DsuRevertFailed, metrics::NetShedTotal, metrics::NetDrains,
        metrics::NetResponses})
    Tel.counter(C);
  // dsu.revert.completed is deliberately NOT preregistered: its very
  // presence in a snapshot means a revert actually converged, which is
  // what tier1's `metrics-diff.py --require dsu.revert.completed` asserts.
  for (const char *G :
       {metrics::DsuAnalysisRestrictedPrecise,
        metrics::DsuAnalysisRestrictedConservative,
        metrics::DsuAnalysisRestrictedDelta,
        metrics::DsuAnalysisRestrictedCha, metrics::DsuAnalysisRuntimeMs,
        metrics::DsuImpactClasses, metrics::DsuImpactUntouched,
        metrics::DsuImpactBulkSettled, metrics::DsuLazyPending,
        metrics::DsuCanaryOpen, metrics::DsuRevertResidualNewObjects,
        metrics::TelemetryDroppedTotal, metrics::TelemetryEventsAttempted,
        metrics::TelemetryEventsStreamed, metrics::TelemetryBlocksFlushed,
        metrics::TelemetrySessionsOpened, metrics::TelemetryTraceDropped})
    Tel.gauge(G);
  for (const char *H :
       {metrics::SchedSafePointWaitTicks, metrics::SchedQuantumTicks,
        metrics::GcPauseMs, metrics::GcSurvivorRate, metrics::GcDsuPauseMs,
        metrics::DsuTotalPauseMs, metrics::DsuUpdateRetries,
        metrics::NetDrainMs, metrics::NetLatencyTicks})
    Tel.histogram(H);
  for (const char *Phase : {"snapshot", "classload", "stack_repair", "gc",
                            "transform", "certify", "rollback", "codeversion"})
    Tel.histogram(metrics::dsuPhaseMs(Phase));
  // The dsu.codeversion.* gauges follow the dsu.revert.completed precedent:
  // they are NOT preregistered, so their presence in a snapshot proves a
  // versioned body-only install actually ran — what tier1's
  // `metrics-diff.py --require 'dsu.codeversion.*'` asserts.
}

VM::VM(Config C) : Cfg(C) {
  preregisterStandardMetrics();
  // JVOLVE_INJECT=<site>[:fire[:skip]][,<spec>...] arms fault sites on
  // every VM the process builds — the environment-level counterpart of the
  // tools' --inject flag (tier1.sh uses it for the sanitizer fault pass).
  if (const char *Specs = std::getenv("JVOLVE_INJECT")) {
    std::vector<std::string> Errs;
    Faults.armFromSpecList(Specs, &Errs);
    for (const std::string &Err : Errs)
      std::fprintf(stderr, "jvolve: ignoring JVOLVE_INJECT entry: %s\n",
                   Err.c_str());
  }
  TheHeap = std::make_unique<Heap>(Cfg.HeapSpaceBytes);
  Gc = std::make_unique<Collector>(*TheHeap, Registry);
  Gc->setFaultInjector(&Faults);
  Compiler::Options COpts;
  COpts.IndirectionChecks = Cfg.IndirectionMode;
  Comp = std::make_unique<Compiler>(Registry, Strings, COpts);
  Interp = std::make_unique<Interpreter>(*this);
}

VM::VM() : VM(Config()) {}

VM::~VM() = default;

void VM::loadProgram(const ClassSet &InputProgram) {
  if (ProgramLoaded)
    fatalError("loadProgram called twice; use the DSU layer to update");
  ProgramLoaded = true;

  Program = InputProgram;
  ensureBuiltins(Program);

  if (Cfg.Verify) {
    std::vector<VerifyError> Errs = Verifier(Program).verifyAll();
    if (!Errs.empty()) {
      std::string Msg = "program failed verification:";
      for (const VerifyError &E : Errs)
        Msg += "\n  " + E.str();
      fatalError(Msg);
    }
  }

  Registry.loadAll(Program);

  StringClsId = Registry.idOf(StringClassName);
  assert(StringClsId != InvalidClassId && "built-in String missing");
  const RtField *IdField =
      Registry.cls(StringClsId).findInstanceField(StringIdField);
  assert(IdField && "String.$id missing");
  StringIdOffset = IdField->Offset;
}

ThreadId VM::spawnThread(const std::string &ClassName,
                         const std::string &MethodName,
                         const std::string &Sig, std::vector<Slot> Args,
                         const std::string &ThreadName, bool Daemon) {
  ClassId Cls = Registry.idOf(ClassName);
  if (Cls == InvalidClassId)
    fatalError("spawnThread: unknown class '" + ClassName + "'");
  MethodId Entry = Registry.resolveMethod(Cls, MethodName, Sig);
  if (Entry == InvalidMethodId)
    fatalError("spawnThread: unknown method " + ClassName + "." + MethodName +
               Sig);
  if (!Registry.method(Entry).IsStatic)
    fatalError("spawnThread: entry point must be static");

  VMThread &T = Sched.spawn(ThreadName, Daemon);
  pushEntryFrame(T, Entry, std::move(Args));
  return T.Id;
}

void VM::pushEntryFrame(VMThread &T, MethodId Method,
                        std::vector<Slot> Args) {
  std::shared_ptr<CompiledMethod> Code = ensureCompiledForInvoke(Method);
  Frame F;
  F.Code = std::move(Code);
  F.Method = Method;
  F.Locals.resize(F.Code->NumLocals);
  assert(Args.size() <= F.Locals.size() && "too many entry arguments");
  for (size_t A = 0; A < Args.size(); ++A)
    F.Locals[A] = Args[A];
  T.Frames.push_back(std::move(F));
}

std::shared_ptr<CompiledMethod> VM::ensureCompiledForInvoke(MethodId Method) {
  RtMethod &M = Registry.method(Method);
  ++M.InvokeCount;
  if (!M.Code) {
    Tier T =
        M.InvokeCount >= Cfg.OptThreshold ? Tier::Opt : Tier::Baseline;
    M.Code = Comp->compile(Method, T);
  } else if (M.Code->T == Tier::Baseline &&
             M.InvokeCount == Cfg.OptThreshold) {
    // The adaptive system promotes hot methods to the opt tier.
    M.Code = Comp->compile(Method, Tier::Opt);
    if (Telemetry::isEnabled())
      Telemetry::global().counter(metrics::JitTierPromotions).inc();
  }
  return M.Code;
}

VM::RunResult VM::run(uint64_t MaxTicks) {
  RunResult Result;
  uint64_t Start = Sched.ticks();
  uint64_t End = Start + MaxTicks;
  Telemetry &Tel = Telemetry::global();
  WindowAggregator &Windows = Tel.windows();

  while (Sched.ticks() < End) {
    Windows.onTick(Sched.ticks());
    if (TickCallback)
      TickCallback(Sched.ticks());
    if (CanaryCtl)
      CanaryCtl->onTick(Sched.ticks());
    Sched.wakeReadyThreads();

    if (Sched.yieldRequested() && Sched.allAtSafePoints()) {
      Sched.noteSafePointReached();
      if (SafePointCallback) {
        SafePointCallback();
        // The callback must resume or finish; guard against a stall.
        if (Sched.yieldRequested() && Sched.allAtSafePoints() &&
            !Sched.anyRunnable())
          resumeAfterYield();
      } else {
        resumeAfterYield();
      }
      continue;
    }

    VMThread *T = Sched.pickNext();
    if (!T) {
      // Nobody is runnable. Fast-forward to the next wake-up, if any.
      uint64_t Wake = Sched.nextWakeTick();
      if (Wake == std::numeric_limits<uint64_t>::max()) {
        Result.Idle = true;
        break;
      }
      if (Wake >= End) {
        Sched.setTicks(End);
        break;
      }
      Sched.setTicks(std::max(Wake, Sched.ticks()));
      continue;
    }

    // Active-version poll: the thread is at a yield point (it was parked,
    // blocked, or between quanta — never mid-loop), so observing a code-
    // version switch here is the call-entry / back-edge poll the manager's
    // handshake-free install relies on.
    if (CodeVers && T->CodeEpoch != CodeVers->epoch())
      CodeVers->onThreadPoll(*T, Sched.ticks());

    uint64_t Budget = std::min<uint64_t>(Cfg.Quantum, End - Sched.ticks());
    // Threads spawned before the session opened get their buffer at their
    // first quantum; events emitted during the quantum (interpreter traps,
    // DSU barriers the thread trips) are attributed to the green thread,
    // not the OS thread hosting the VM.
    if (Tel.tracing() && !T->TelBuf)
      T->TelBuf = Tel.streamer().acquireThreadBuffer(T->Id, T->Name);
    TelemetryStreamer::setCurrentBuffer(T->TelBuf);
    uint64_t Executed;
    if (T->NativeWork) {
      if (Sched.yieldRequested()) {
        // Native workers have no frames to scan; they cooperate with the
        // stop-the-world protocol by parking until resumeAfterYield().
        T->State = ThreadState::Parked;
        TelemetryStreamer::setCurrentBuffer(nullptr);
        continue;
      }
      Executed = T->NativeWork(*T, Budget);
    } else {
      Executed = Interp->runThread(*T, Budget);
    }
    TelemetryStreamer::setCurrentBuffer(nullptr);
    if (T->stopped())
      Sched.retireThreadTelemetry(*T);
    Sched.advanceTicks(Executed);
    if (Telemetry::isEnabled() && Executed > 0)
      Telemetry::global()
          .histogram(metrics::SchedQuantumTicks)
          .record(static_cast<double>(Executed));
    if (Executed == 0 && T->State == ThreadState::Runnable)
      fatalError("scheduler made no progress on runnable thread " + T->Name);
  }

  Result.TicksExecuted = Sched.ticks() - Start;
  return Result;
}

VM::RunResult VM::runToCompletion(uint64_t MaxTicks) {
  RunResult Total;
  uint64_t Remaining = MaxTicks;
  while (Remaining > 0 && Sched.hasLiveApplicationThreads()) {
    uint64_t Chunk = std::min<uint64_t>(Remaining, 1u << 20);
    RunResult R = run(Chunk);
    Total.TicksExecuted += R.TicksExecuted;
    Remaining -= Chunk;
    if (R.Idle) {
      Total.Idle = true;
      break;
    }
  }
  return Total;
}

Slot VM::callStatic(const std::string &ClassName,
                    const std::string &MethodName, const std::string &Sig,
                    std::vector<Slot> Args) {
  ThreadId Id =
      spawnThread(ClassName, MethodName, Sig, std::move(Args), "call");
  while (true) {
    VMThread *T = Sched.findThread(Id);
    assert(T && "spawned thread vanished");
    if (T->State == ThreadState::Trapped)
      fatalError("callStatic trapped: " + T->TrapMessage);
    if (T->State == ThreadState::Finished)
      return T->HasExitValue ? T->ExitValue : Slot::ofInt(0);
    RunResult R = run(1u << 20);
    if (R.Idle && Sched.findThread(Id)->State != ThreadState::Finished &&
        Sched.findThread(Id)->State != ThreadState::Trapped)
      fatalError("callStatic deadlocked in " + ClassName + "." + MethodName);
  }
}

Ref VM::allocateObject(ClassId Cls) {
  const RtClass &C = Registry.cls(Cls);
  bool Forced = Faults.probe(FaultInjector::Site::HeapAllocNth);
  Ref Obj = Forced ? nullptr : TheHeap->allocateObject(C);
  if (Obj)
    return Obj;
  if (TransformationInProgress)
    throw UpdateError("transform",
                      Forced
                          ? "injected allocation failure (heap-alloc-nth)"
                          : "heap exhausted while the update transaction "
                            "held off collection");
  collectGarbage();
  return TheHeap->allocateObject(C);
}

Ref VM::allocateArray(ClassId ArrCls, int64_t Length) {
  const RtClass &C = Registry.cls(ArrCls);
  bool Forced = Faults.probe(FaultInjector::Site::HeapAllocNth);
  Ref Arr = Forced ? nullptr : TheHeap->allocateArray(C, Length);
  if (Arr)
    return Arr;
  if (TransformationInProgress)
    throw UpdateError("transform",
                      Forced
                          ? "injected allocation failure (heap-alloc-nth)"
                          : "heap exhausted while the update transaction "
                            "held off collection");
  collectGarbage();
  return TheHeap->allocateArray(C, Length);
}

Ref VM::newString(const std::string &Payload) {
  Ref Obj = allocateObject(StringClsId);
  if (!Obj)
    return nullptr;
  setIntAt(Obj, StringIdOffset, Strings.intern(Payload));
  return Obj;
}

std::string VM::stringValue(Ref Str) {
  assert(Str && "stringValue on null");
  assert(classOf(Str) == StringClsId && "stringValue on a non-String");
  return Strings.payload(getIntAt(Str, StringIdOffset));
}

void VM::enumerateRoots(const std::function<void(Ref &)> &Visit) {
  Registry.visitStaticRoots(Visit);
  for (auto &T : Sched.threads()) {
    for (Frame &F : T->Frames) {
      for (Slot &L : F.Locals)
        if (L.IsRef && L.RefVal)
          Visit(L.RefVal);
      for (Slot &S : F.Stack)
        if (S.IsRef && S.RefVal)
          Visit(S.RefVal);
    }
    if (T->HasExitValue && T->ExitValue.IsRef && T->ExitValue.RefVal)
      Visit(T->ExitValue.RefVal);
  }
  for (Ref &R : Pinned)
    if (R)
      Visit(R);
  if (Lazy)
    Lazy->visitRoots(Visit);
  if (CanaryCtl)
    CanaryCtl->visitRoots(Visit);
}

CollectionStats
VM::collectGarbage(const DsuRemap *Remap,
                   std::vector<UpdateLogEntry> *UpdateLog,
                   std::unordered_map<Ref, size_t> *NewToLogIndex) {
  CollectionStats St = Gc->collect(
      [this](const std::function<void(Ref &)> &Visit) {
        enumerateRoots(Visit);
      },
      Remap, UpdateLog, NewToLogIndex);
  ++Stats.Collections;
  Stats.TotalGcMs += St.GcMs;
  if (Lazy)
    Lazy->onHeapMoved();
  if (CanaryCtl)
    CanaryCtl->onHeapMoved();
  return St;
}

void VM::installLazyEngine(std::unique_ptr<VmLazyEngine> Engine) {
  Lazy = std::move(Engine);
  // Background drainer: a cooperative daemon scheduled like any other
  // thread. Each quantum it transforms a batch of shells; once the table
  // empties the engine retires the barrier and the thread finishes. The
  // closure re-reads this->Lazy so a later update replacing the engine
  // simply finishes the old drainer on its next quantum.
  VMThread &T = Sched.spawn("lazy-drainer", /*Daemon=*/true);
  T.NativeWork = [this](VMThread &Self, uint64_t Budget) -> uint64_t {
    if (!Lazy || Lazy->drained()) {
      // The barrier may have settled the last shell on demand between
      // quanta; retiring is idempotent and must not wait for drainSome.
      if (Lazy)
        Lazy->retire();
      Self.State = ThreadState::Finished;
      return 1;
    }
    size_t Used = Lazy->drainSome(static_cast<size_t>(Budget));
    if (Lazy->drained())
      Self.State = ThreadState::Finished;
    return std::max<uint64_t>(Used, 1);
  };
}

void VM::installCanary(std::unique_ptr<VmCanary> Ctl) {
  CanaryCtl = std::move(Ctl);
  // Watchdog: a cooperative daemon whose only job is to keep virtual time
  // advancing while the window is open, so onTick-driven health checks,
  // window expiry, and revert progress still happen on an idle VM. It
  // claims a single tick per quantum to distort latency telemetry as
  // little as possible. The closure re-reads this->CanaryCtl so a later
  // canaried update replacing the controller simply finishes the old
  // watchdog on its next quantum.
  VMThread &T = Sched.spawn("canary-watchdog", /*Daemon=*/true);
  T.NativeWork = [this](VMThread &Self, uint64_t /*Budget*/) -> uint64_t {
    if (!CanaryCtl || !CanaryCtl->windowOpen())
      Self.State = ThreadState::Finished;
    return 1;
  };
}

void VM::drainLazyEngineNow() {
  if (!Lazy)
    return;
  while (!Lazy->drained())
    Lazy->drainSome(std::numeric_limits<size_t>::max());
  Lazy->retire();
  Lazy.reset();
}

bool VM::lazyBarrierSlowPath(VMThread &T, Ref Obj) {
  if (!Lazy) {
    // A stale flag with no live engine cannot happen through the normal
    // lifecycle (retire() clears flags first); recover by clearing it so
    // the object reads as a plain initialized instance.
    header(Obj)->Flags &= ~(FlagUninitialized | FlagLazyPending);
    return true;
  }
  std::string Err;
  if (Lazy->onBarrierHit(Obj, &Err))
    return true;
  onTrap(T, Err);
  return false;
}

int VM::injectConnection(int Port, const std::vector<int64_t> &Requests,
                         uint64_t InterArrival, uint64_t FirstDelay) {
  if (Faults.probe(FaultInjector::Site::NetSlowClient))
    // A slow client: the connection arrives, but its requests trickle in
    // far apart — the drain/shed machinery must cope without dropping a
    // response.
    InterArrival = InterArrival ? InterArrival * 50 : 5'000;
  int Conn = Net.inject(Port, Requests, Sched.ticks(), InterArrival,
                        FirstDelay);
  // While draining, acceptors stay parked; endNetDrain delivers the queue.
  if (!Net.draining())
    for (auto &T : Sched.threads())
      if (T->State == ThreadState::BlockedAccept && T->BlockedPort == Port)
        T->State = ThreadState::Runnable;
  return Conn;
}

void VM::endNetDrain() {
  Net.endDrain();
  for (auto &T : Sched.threads())
    if (T->State == ThreadState::BlockedAccept &&
        Net.hasPendingAccept(T->BlockedPort))
      T->State = ThreadState::Runnable;
}

void VM::onReturnBarrierFired(VMThread &T) {
  if (ReturnBarrierCallback)
    ReturnBarrierCallback(T);
}

void VM::onTrap(VMThread &T, const std::string &Message) {
  T.State = ThreadState::Trapped;
  T.TrapMessage = Message;
  ++Stats.Traps;
  Telemetry &Tel = Telemetry::global();
  if (Telemetry::isEnabled())
    Tel.counter(metrics::InterpTraps).inc();
  if (Tel.tracing())
    // Routed through the trapping green thread's buffer (the interpreter
    // runs inside its quantum), so the merged stream attributes the trap.
    Tel.emit({"vm.thread", "trap", Sched.ticks(), Sched.ticks(), 0,
              static_cast<int64_t>(T.Id), Message});
  PrintLog.push_back("TRAP[" + T.Name + "]: " + Message);
}
