#include "vm/Interpreter.h"

#include "bytecode/Builtins.h"
#include "runtime/ObjectModel.h"
#include "support/Error.h"
#include "vm/VM.h"

#include <cassert>

using namespace jvolve;

bool Interpreter::isYieldPoint(const RInstr &I, uint32_t Pc) {
  switch (I.Op) {
  case ROp::CallVirt:
  case ROp::CallStatic:
  case ROp::CallSpecial:
  case ROp::RetVoid:
  case ROp::RetI:
  case ROp::RetA:
  case ROp::Intr:
    return true;
  case ROp::Jump:
  case ROp::BrEqZ: case ROp::BrNeZ: case ROp::BrLtZ: case ROp::BrGeZ:
  case ROp::BrGtZ: case ROp::BrLeZ: case ROp::BrICmpEq: case ROp::BrICmpNe:
  case ROp::BrICmpLt: case ROp::BrICmpGe: case ROp::BrICmpGt:
  case ROp::BrICmpLe: case ROp::BrNull: case ROp::BrNonNull:
  case ROp::BrAEq: case ROp::BrANe:
    // Loop back edges.
    return I.A <= static_cast<int64_t>(Pc);
  default:
    return false;
  }
}

bool Interpreter::doReturn(VMThread &T, bool HasValue) {
  Frame &F = T.Frames.back();
  Slot Ret;
  if (HasValue) {
    assert(!F.Stack.empty() && "return with empty stack");
    Ret = F.Stack.back();
  }
  bool Barrier = F.ReturnBarrier;
  bool Stale = F.Code && F.Code->Superseded;
  T.Frames.pop_back();
  if (Stale)
    // An in-flight activation of a versioned-out body just completed on
    // its old version; the CodeVersionManager drains its stale-frame gauge.
    TheVM.onStaleFrameReturned();

  if (T.Frames.empty()) {
    T.State = ThreadState::Finished;
    if (HasValue) {
      T.ExitValue = Ret;
      T.HasExitValue = true;
    }
  } else if (HasValue) {
    T.Frames.back().Stack.push_back(Ret);
  }

  if (Barrier) {
    // The bridge code: notify the DSU layer, then stop the thread at this
    // (return) yield point so the update attempt can proceed.
    TheVM.onReturnBarrierFired(T);
    if (T.State == ThreadState::Runnable)
      T.State = ThreadState::Parked;
    return false;
  }
  return T.State == ThreadState::Runnable;
}

uint64_t Interpreter::runThread(VMThread &T, uint64_t Budget) {
  uint64_t Executed = 0;
  uint64_t VirtCalls = 0, DirectCalls = 0;
  Scheduler &Sched = TheVM.scheduler();
  ClassRegistry &Reg = TheVM.registry();

  auto Trap = [&](const std::string &Msg) { TheVM.onTrap(T, Msg); };

  /// Simulated handle-space check for the indirection ablation: a real
  /// lazy-update VM (JDrums/DVM) tests on every access whether the object
  /// is up to date before following the handle.
  auto IndirectionCheck = [&](Ref Obj) -> Ref {
    // A lazy-update VM (JDrums/DVM) reaches every object through a handle
    // and tests on each access whether the object is up to date. Model the
    // cost faithfully: the access must *depend* on the check's result, so
    // the extra loads cannot be hidden behind the dispatch overhead.
    const RtClass &C = Reg.cls(classOf(Obj));
    ++TheVM.stats().IndirectionChecks;
    return C.Obsolete ? nullptr : Obj; // transform would happen on null
  };

  /// DSU lazy-transform read barrier (armed only while an update drains;
  /// F.Code->LazyBarriers gates every use). Fast path: one header-flag
  /// test. Slow path: run the object's transformer before the access
  /// proceeds. \returns false when the transformer failed post-commit —
  /// the thread was trapped with the structured diagnostic.
  auto LazyCheck = [&](Ref Obj) -> bool {
    if (!(header(Obj)->Flags & FlagLazyPending))
      return true;
    return TheVM.lazyBarrierSlowPath(T, Obj);
  };

  auto PushFrame = [&](MethodId Callee, int NArgs) {
    std::shared_ptr<CompiledMethod> Code =
        TheVM.ensureCompiledForInvoke(Callee);
    Frame NF;
    NF.Code = std::move(Code);
    NF.Method = Callee;
    NF.Locals.resize(NF.Code->NumLocals);
    Frame &Caller = T.Frames.back();
    assert(Caller.Stack.size() >= static_cast<size_t>(NArgs) &&
           "argument underflow");
    for (int A = NArgs - 1; A >= 0; --A) {
      NF.Locals[static_cast<size_t>(A)] = Caller.Stack.back();
      Caller.Stack.pop_back();
    }
    ++Caller.Pc; // return address
    T.Frames.push_back(std::move(NF));
  };

  while (Executed < Budget && T.State == ThreadState::Runnable) {
    assert(!T.Frames.empty() && "runnable thread without frames");
    Frame &F = T.Frames.back();
    assert(F.Pc < F.Code->Code.size() && "pc out of bounds");
    const RInstr &I = F.Code->Code[F.Pc];

    if (Sched.yieldRequested() && isYieldPoint(I, F.Pc)) {
      T.State = ThreadState::Parked;
      break;
    }
    ++Executed;

    std::vector<Slot> &S = F.Stack;
    bool Advance = true;

    switch (I.Op) {
    case ROp::NopOp:
      break;
    case ROp::ConstI:
      S.push_back(Slot::ofInt(I.A));
      break;
    case ROp::ConstStr: {
      Ref Obj = TheVM.allocateObject(TheVM.StringClsId);
      if (!Obj) {
        Trap("out of memory allocating String");
        Advance = false;
        break;
      }
      setIntAt(Obj, TheVM.StringIdOffset, I.A);
      S.push_back(Slot::ofRef(Obj));
      break;
    }
    case ROp::ConstNull:
      S.push_back(Slot::ofRef(nullptr));
      break;
    case ROp::LoadSlot:
      S.push_back(F.Locals[static_cast<size_t>(I.A)]);
      break;
    case ROp::StoreSlot:
      F.Locals[static_cast<size_t>(I.A)] = S.back();
      S.pop_back();
      break;
    case ROp::IAdd: case ROp::ISub: case ROp::IMul:
    case ROp::IDiv: case ROp::IRem: {
      int64_t B = S.back().IntVal;
      S.pop_back();
      int64_t A = S.back().IntVal;
      S.pop_back();
      int64_t R = 0;
      if (I.Op == ROp::IAdd)
        R = A + B;
      else if (I.Op == ROp::ISub)
        R = A - B;
      else if (I.Op == ROp::IMul)
        R = A * B;
      else {
        if (B == 0) {
          Trap("integer division by zero");
          Advance = false;
          break;
        }
        R = I.Op == ROp::IDiv ? A / B : A % B;
      }
      S.push_back(Slot::ofInt(R));
      break;
    }
    case ROp::INeg:
      S.back().IntVal = -S.back().IntVal;
      break;
    case ROp::Dup:
      S.push_back(S.back());
      break;
    case ROp::Pop:
      S.pop_back();
      break;
    case ROp::Jump:
      F.Pc = static_cast<uint32_t>(I.A);
      Advance = false;
      break;
    case ROp::BrEqZ: case ROp::BrNeZ: case ROp::BrLtZ:
    case ROp::BrGeZ: case ROp::BrGtZ: case ROp::BrLeZ: {
      int64_t V = S.back().IntVal;
      S.pop_back();
      bool Taken = false;
      switch (I.Op) {
      case ROp::BrEqZ: Taken = V == 0; break;
      case ROp::BrNeZ: Taken = V != 0; break;
      case ROp::BrLtZ: Taken = V < 0; break;
      case ROp::BrGeZ: Taken = V >= 0; break;
      case ROp::BrGtZ: Taken = V > 0; break;
      default: Taken = V <= 0; break;
      }
      if (Taken) {
        F.Pc = static_cast<uint32_t>(I.A);
        Advance = false;
      }
      break;
    }
    case ROp::BrICmpEq: case ROp::BrICmpNe: case ROp::BrICmpLt:
    case ROp::BrICmpGe: case ROp::BrICmpGt: case ROp::BrICmpLe: {
      int64_t B = S.back().IntVal;
      S.pop_back();
      int64_t A = S.back().IntVal;
      S.pop_back();
      bool Taken = false;
      switch (I.Op) {
      case ROp::BrICmpEq: Taken = A == B; break;
      case ROp::BrICmpNe: Taken = A != B; break;
      case ROp::BrICmpLt: Taken = A < B; break;
      case ROp::BrICmpGe: Taken = A >= B; break;
      case ROp::BrICmpGt: Taken = A > B; break;
      default: Taken = A <= B; break;
      }
      if (Taken) {
        F.Pc = static_cast<uint32_t>(I.A);
        Advance = false;
      }
      break;
    }
    case ROp::BrNull: case ROp::BrNonNull: {
      Ref V = S.back().RefVal;
      S.pop_back();
      bool Taken = I.Op == ROp::BrNull ? V == nullptr : V != nullptr;
      if (Taken) {
        F.Pc = static_cast<uint32_t>(I.A);
        Advance = false;
      }
      break;
    }
    case ROp::BrAEq: case ROp::BrANe: {
      Ref B = S.back().RefVal;
      S.pop_back();
      Ref A = S.back().RefVal;
      S.pop_back();
      bool Taken = I.Op == ROp::BrAEq ? A == B : A != B;
      if (Taken) {
        F.Pc = static_cast<uint32_t>(I.A);
        Advance = false;
      }
      break;
    }
    case ROp::NewObj: {
      Ref Obj = TheVM.allocateObject(static_cast<ClassId>(I.A));
      if (!Obj) {
        Trap("out of memory");
        Advance = false;
        break;
      }
      S.push_back(Slot::ofRef(Obj));
      break;
    }
    case ROp::GetFieldI: case ROp::GetFieldR: {
      Ref Obj = S.back().RefVal;
      S.pop_back();
      if (!Obj) {
        Trap("null dereference in field read");
        Advance = false;
        break;
      }
      if (F.Code->LazyBarriers && !LazyCheck(Obj)) {
        Advance = false;
        break;
      }
      if (F.Code->IndirectionChecks)
        Obj = IndirectionCheck(Obj);
      uint32_t Off = static_cast<uint32_t>(I.A);
      if (I.Op == ROp::GetFieldI)
        S.push_back(Slot::ofInt(getIntAt(Obj, Off)));
      else
        S.push_back(Slot::ofRef(getRefAt(Obj, Off)));
      break;
    }
    case ROp::PutFieldI: case ROp::PutFieldR: {
      Slot V = S.back();
      S.pop_back();
      Ref Obj = S.back().RefVal;
      S.pop_back();
      if (!Obj) {
        Trap("null dereference in field write");
        Advance = false;
        break;
      }
      if (F.Code->LazyBarriers && !LazyCheck(Obj)) {
        Advance = false;
        break;
      }
      if (F.Code->IndirectionChecks)
        Obj = IndirectionCheck(Obj);
      uint32_t Off = static_cast<uint32_t>(I.A);
      if (I.Op == ROp::PutFieldI)
        setIntAt(Obj, Off, V.IntVal);
      else
        setRefAt(Obj, Off, V.RefVal);
      break;
    }
    case ROp::GetStaticI: case ROp::GetStaticR: {
      Slot &Static =
          Reg.cls(static_cast<ClassId>(I.A)).Statics[static_cast<size_t>(I.B)];
      S.push_back(Static);
      break;
    }
    case ROp::PutStaticI: case ROp::PutStaticR: {
      Slot &Static =
          Reg.cls(static_cast<ClassId>(I.A)).Statics[static_cast<size_t>(I.B)];
      Static = S.back();
      S.pop_back();
      break;
    }
    case ROp::InstanceOfOp: {
      Ref Obj = S.back().RefVal;
      S.pop_back();
      bool Is = Obj && Reg.isSubclassOf(classOf(Obj),
                                        static_cast<ClassId>(I.A));
      S.push_back(Slot::ofInt(Is ? 1 : 0));
      break;
    }
    case ROp::CheckCastOp: {
      Ref Obj = S.back().RefVal;
      if (Obj &&
          !Reg.isSubclassOf(classOf(Obj), static_cast<ClassId>(I.A))) {
        Trap("class cast failure to " +
             Reg.cls(static_cast<ClassId>(I.A)).Name);
        Advance = false;
      }
      break;
    }
    case ROp::CallVirt: {
      int NArgs = I.B;
      Ref Receiver = S[S.size() - static_cast<size_t>(NArgs)].RefVal;
      if (!Receiver) {
        Trap("null receiver in virtual call");
        Advance = false;
        break;
      }
      if (F.Code->LazyBarriers && !LazyCheck(Receiver)) {
        Advance = false;
        break;
      }
      const RtClass &C = Reg.cls(classOf(Receiver));
      assert(static_cast<size_t>(I.A) < C.VTable.size() &&
             "TIB slot out of range");
      PushFrame(C.VTable[static_cast<size_t>(I.A)], NArgs);
      ++VirtCalls;
      Advance = false;
      break;
    }
    case ROp::CallStatic: case ROp::CallSpecial: {
      if (I.Op == ROp::CallSpecial) {
        Ref Receiver = S[S.size() - static_cast<size_t>(I.B)].RefVal;
        if (!Receiver) {
          Trap("null receiver in special call");
          Advance = false;
          break;
        }
        if (F.Code->LazyBarriers && !LazyCheck(Receiver)) {
          Advance = false;
          break;
        }
      }
      PushFrame(static_cast<MethodId>(I.A), I.B);
      ++DirectCalls;
      Advance = false;
      break;
    }
    case ROp::NewArr: {
      int64_t Len = S.back().IntVal;
      S.pop_back();
      if (Len < 0) {
        Trap("negative array length");
        Advance = false;
        break;
      }
      Ref Arr = TheVM.allocateArray(static_cast<ClassId>(I.A), Len);
      if (!Arr) {
        Trap("out of memory allocating array");
        Advance = false;
        break;
      }
      S.push_back(Slot::ofRef(Arr));
      break;
    }
    case ROp::ALoadElem: {
      int64_t Idx = S.back().IntVal;
      S.pop_back();
      Ref Arr = S.back().RefVal;
      S.pop_back();
      if (!Arr) {
        Trap("null array in element read");
        Advance = false;
        break;
      }
      if (F.Code->LazyBarriers && !LazyCheck(Arr)) {
        Advance = false;
        break;
      }
      if (Idx < 0 || Idx >= arrayLength(Arr)) {
        Trap("array index out of bounds");
        Advance = false;
        break;
      }
      uint32_t Off = arrayElemOffset(Idx);
      if (header(Arr)->Flags & FlagRefArray)
        S.push_back(Slot::ofRef(getRefAt(Arr, Off)));
      else
        S.push_back(Slot::ofInt(getIntAt(Arr, Off)));
      break;
    }
    case ROp::AStoreElem: {
      Slot V = S.back();
      S.pop_back();
      int64_t Idx = S.back().IntVal;
      S.pop_back();
      Ref Arr = S.back().RefVal;
      S.pop_back();
      if (!Arr) {
        Trap("null array in element write");
        Advance = false;
        break;
      }
      if (F.Code->LazyBarriers && !LazyCheck(Arr)) {
        Advance = false;
        break;
      }
      if (Idx < 0 || Idx >= arrayLength(Arr)) {
        Trap("array index out of bounds");
        Advance = false;
        break;
      }
      uint32_t Off = arrayElemOffset(Idx);
      if (header(Arr)->Flags & FlagRefArray)
        setRefAt(Arr, Off, V.RefVal);
      else
        setIntAt(Arr, Off, V.IntVal);
      break;
    }
    case ROp::ArrLen: {
      Ref Arr = S.back().RefVal;
      S.pop_back();
      if (!Arr) {
        Trap("null array in arraylength");
        Advance = false;
        break;
      }
      if (F.Code->LazyBarriers && !LazyCheck(Arr)) {
        Advance = false;
        break;
      }
      S.push_back(Slot::ofInt(arrayLength(Arr)));
      break;
    }
    case ROp::RetVoid:
      doReturn(T, /*HasValue=*/false);
      Advance = false;
      break;
    case ROp::RetI: case ROp::RetA:
      doReturn(T, /*HasValue=*/true);
      Advance = false;
      break;
    case ROp::Intr: {
      switch (static_cast<IntrinsicId>(I.A)) {
      case IntrinsicId::PrintInt: {
        int64_t V = S.back().IntVal;
        S.pop_back();
        TheVM.appendPrintLog(std::to_string(V));
        break;
      }
      case IntrinsicId::PrintStr: {
        Ref Str = S.back().RefVal;
        S.pop_back();
        if (!Str) {
          Trap("null string in print");
          Advance = false;
          break;
        }
        TheVM.appendPrintLog(TheVM.stringValue(Str));
        break;
      }
      case IntrinsicId::CurrentTicks:
        S.push_back(Slot::ofInt(static_cast<int64_t>(Sched.ticks())));
        break;
      case IntrinsicId::SleepTicks: {
        int64_t N = S.back().IntVal;
        S.pop_back();
        ++F.Pc; // resume after the sleep
        T.WakeTick = Sched.ticks() + static_cast<uint64_t>(std::max<int64_t>(N, 0));
        T.State = ThreadState::Sleeping;
        Advance = false;
        break;
      }
      case IntrinsicId::NetAccept: {
        int Port = static_cast<int>(S.back().IntVal);
        int Conn = TheVM.net().tryAccept(Port);
        if (Conn < 0) {
          // Block; re-execute this instruction when woken.
          T.State = ThreadState::BlockedAccept;
          T.BlockedPort = Port;
          Advance = false;
          break;
        }
        S.pop_back();
        S.push_back(Slot::ofInt(Conn));
        break;
      }
      case IntrinsicId::NetTryAccept: {
        int Port = static_cast<int>(S.back().IntVal);
        S.pop_back();
        S.push_back(Slot::ofInt(TheVM.net().tryAccept(Port)));
        break;
      }
      case IntrinsicId::NetRecv: {
        int Conn = static_cast<int>(S.back().IntVal);
        int64_t Value = 0;
        uint64_t ReadyTick = 0;
        Network::RecvStatus St =
            TheVM.net().recv(Conn, Sched.ticks(), Value, ReadyTick);
        if (St == Network::RecvStatus::NotReady) {
          T.State = ThreadState::BlockedRecv;
          T.BlockedConn = Conn;
          T.WakeTick = ReadyTick;
          Advance = false;
          break;
        }
        S.pop_back();
        S.push_back(Slot::ofInt(
            St == Network::RecvStatus::Eof ? -1 : Value));
        break;
      }
      case IntrinsicId::NetSend: {
        int64_t Value = S.back().IntVal;
        S.pop_back();
        int Conn = static_cast<int>(S.back().IntVal);
        S.pop_back();
        TheVM.net().send(Conn, Value, Sched.ticks());
        break;
      }
      case IntrinsicId::NetClose: {
        int Conn = static_cast<int>(S.back().IntVal);
        S.pop_back();
        TheVM.net().close(Conn);
        break;
      }
      case IntrinsicId::StrEquals: {
        Ref B = S.back().RefVal;
        S.pop_back();
        Ref A = S.back().RefVal;
        S.pop_back();
        if (!A || !B) {
          S.push_back(Slot::ofInt(A == B ? 1 : 0));
          break;
        }
        S.push_back(Slot::ofInt(
            TheVM.stringValue(A) == TheVM.stringValue(B) ? 1 : 0));
        break;
      }
      case IntrinsicId::StrLength: {
        Ref A = S.back().RefVal;
        S.pop_back();
        if (!A) {
          Trap("null string in length");
          Advance = false;
          break;
        }
        S.push_back(
            Slot::ofInt(static_cast<int64_t>(TheVM.stringValue(A).size())));
        break;
      }
      case IntrinsicId::StrConcat: {
        Ref B = S.back().RefVal;
        S.pop_back();
        Ref A = S.back().RefVal;
        S.pop_back();
        std::string Joined = (A ? TheVM.stringValue(A) : "null") +
                             (B ? TheVM.stringValue(B) : "null");
        Ref Out = TheVM.newString(Joined);
        if (!Out) {
          Trap("out of memory in string concat");
          Advance = false;
          break;
        }
        S.push_back(Slot::ofRef(Out));
        break;
      }
      case IntrinsicId::StrIndexOf: {
        int64_t Ch = S.back().IntVal;
        S.pop_back();
        Ref A = S.back().RefVal;
        S.pop_back();
        if (!A) {
          Trap("null string in indexOf");
          Advance = false;
          break;
        }
        size_t Pos = TheVM.stringValue(A).find(static_cast<char>(Ch));
        S.push_back(Slot::ofInt(
            Pos == std::string::npos ? -1 : static_cast<int64_t>(Pos)));
        break;
      }
      case IntrinsicId::Rand: {
        int64_t Bound = S.back().IntVal;
        S.pop_back();
        uint64_t V = TheVM.TheRng.nextBelow(
            Bound > 0 ? static_cast<uint64_t>(Bound) : 1);
        S.push_back(Slot::ofInt(static_cast<int64_t>(V)));
        break;
      }
      }
      break;
    }
    }

    if (Advance) {
      assert(!T.Frames.empty() && "advancing pc on a dead thread");
      ++T.Frames.back().Pc;
    }
  }

  TheVM.stats().InstructionsExecuted += Executed;
  TelInstructions.add(Executed);
  TelCallsVirtual.add(VirtCalls);
  TelCallsDirect.add(DirectCalls);
  return Executed;
}
