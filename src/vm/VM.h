//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM facade: ties together the classloader/registry, heap, garbage
/// collector, quickening compiler, interpreter, green-thread scheduler, and
/// simulated network, and exposes the hooks the DSU layer (src/dsu) uses —
/// yield requests, safe-point callbacks, return-barrier notification, and
/// DSU-extended collections.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_VM_VM_H
#define JVOLVE_VM_VM_H

#include "bytecode/ClassDef.h"
#include "exec/Compiler.h"
#include "heap/Collector.h"
#include "heap/Heap.h"
#include "runtime/ClassRegistry.h"
#include "runtime/StringTable.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"
#include "threads/Scheduler.h"
#include "vm/Network.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace jvolve {

class Interpreter;

/// Aggregate execution counters (benchmark instrumentation).
struct VmStats {
  uint64_t InstructionsExecuted = 0;
  uint64_t Collections = 0;
  uint64_t Traps = 0;
  /// Indirection-mode field-access checks performed (ablation counter).
  uint64_t IndirectionChecks = 0;
  double TotalGcMs = 0;
};

/// One Java-in-C++ virtual machine instance.
class VM {
public:
  struct Config {
    /// Bytes per semi-space (total heap footprint is twice this).
    size_t HeapSpaceBytes = 64u << 20;
    /// Compile field accesses with JDrums/DVM-style indirection checks
    /// (steady-state-overhead ablation).
    bool IndirectionMode = false;
    /// Invocations before a baseline method is recompiled at the opt tier.
    uint64_t OptThreshold = 50;
    /// Instructions per scheduling quantum.
    uint64_t Quantum = 200;
    /// Run the bytecode verifier on loaded programs (Jikes RVM itself has
    /// no verifier; MiniVM does, and Jvolve's safety argument relies on
    /// verification, so this defaults to on).
    bool Verify = true;
  };

  explicit VM(Config C);
  VM();
  ~VM();

  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  //===--------------------------------------------------------------------===//
  // Program loading and threads
  //===--------------------------------------------------------------------===//

  /// Loads the initial program version. Adds built-ins, verifies (unless
  /// disabled), and loads every class. Call exactly once.
  void loadProgram(const ClassSet &Program);

  /// Bytecode of the running program version (the UPT diffs against this).
  const ClassSet &program() const { return Program; }

  /// Replaces the recorded program version after a dynamic update.
  void setProgram(ClassSet NewProgram) { Program = std::move(NewProgram); }

  /// Spawns a thread whose entry point is the static method
  /// \p ClassName.\p MethodName with signature \p Sig, passing \p Args.
  ThreadId spawnThread(const std::string &ClassName,
                       const std::string &MethodName, const std::string &Sig,
                       std::vector<Slot> Args = {},
                       const std::string &ThreadName = "thread",
                       bool Daemon = false);

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  struct RunResult {
    uint64_t TicksExecuted = 0;
    /// True when the VM went idle: nothing runnable and nothing scheduled
    /// to wake (the harness must inject work or stop).
    bool Idle = false;
  };

  /// Runs the scheduler for up to \p MaxTicks virtual ticks.
  RunResult run(uint64_t MaxTicks);

  /// Runs until no live application thread remains (or \p MaxTicks pass).
  RunResult runToCompletion(uint64_t MaxTicks = 100'000'000);

  /// Convenience for tests: runs static \p ClassName.\p MethodName on a
  /// fresh thread to completion and returns its result slot (int 0 for
  /// void). Aborts if the thread traps.
  Slot callStatic(const std::string &ClassName, const std::string &MethodName,
                  const std::string &Sig, std::vector<Slot> Args = {});

  //===--------------------------------------------------------------------===//
  // Services
  //===--------------------------------------------------------------------===//

  ClassRegistry &registry() { return Registry; }
  Heap &heap() { return *TheHeap; }
  /// The VM-wide fault injector; disarmed by default. Tests and the tools'
  /// --inject flag arm sites to exercise the update-rollback paths.
  FaultInjector &faults() { return Faults; }
  StringTable &strings() { return Strings; }
  Network &net() { return Net; }
  Scheduler &scheduler() { return Sched; }
  Compiler &compiler() { return *Comp; }
  const Config &config() const { return Cfg; }
  VmStats &stats() { return Stats; }

  /// Allocates an instance of \p Cls, collecting if needed. Returns nullptr
  /// only when the heap stays full after a collection (caller traps).
  Ref allocateObject(ClassId Cls);
  /// Allocates an array of \p Length elements of array class \p ArrCls.
  Ref allocateArray(ClassId ArrCls, int64_t Length);
  /// Allocates a String object wrapping \p Payload.
  Ref newString(const std::string &Payload);
  /// \returns the payload of String object \p Str.
  std::string stringValue(Ref Str);

  /// Runs one full-heap collection over all roots (statics, thread stacks,
  /// pinned handles). DSU parameters as in Collector::collect.
  CollectionStats
  collectGarbage(const DsuRemap *Remap = nullptr,
                 std::vector<UpdateLogEntry> *UpdateLog = nullptr,
                 std::unordered_map<Ref, size_t> *NewToLogIndex = nullptr);

  /// Host-held references that must survive (and be updated by) GC.
  std::vector<Ref> &pinnedRoots() { return Pinned; }

  /// Visits every root reference location (statics, thread stacks, pinned
  /// handles) — the collector's and heap verifier's root enumerator.
  void visitRoots(const std::function<void(Ref &)> &Visit) {
    enumerateRoots(Visit);
  }

  /// Resolves the compiled code for \p Method, compiling (or upgrading to
  /// the opt tier) per the adaptive policy. Bumps the invocation counter.
  std::shared_ptr<CompiledMethod> ensureCompiledForInvoke(MethodId Method);

  /// Injects a client connection and wakes threads blocked in accept.
  /// While the network is draining, arriving connections queue (or are
  /// shed by admission control) without waking acceptors. The
  /// net-slow-client fault site stretches the connection's inter-arrival
  /// gap when armed.
  int injectConnection(int Port, const std::vector<int64_t> &Requests,
                       uint64_t InterArrival = 0, uint64_t FirstDelay = 0);

  /// Update-time traffic draining (Updater's DrainNetwork option): gates
  /// accepts while in-flight connections run to request boundaries.
  /// endNetDrain wakes acceptors for any connections that queued up while
  /// the drain held.
  void beginNetDrain() { Net.beginDrain(); }
  void endNetDrain();

  /// Advances the virtual clock to \p Tick if it lies in the future (idle
  /// time passing with no work to run); no-op otherwise. Load generators
  /// use this to keep their injection schedule in virtual time even when
  /// the server drains faster than the offered load.
  void fastForwardTo(uint64_t Tick) {
    if (Tick > Sched.ticks())
      Sched.setTicks(Tick);
  }

  /// Text printed by PrintInt/PrintStr intrinsics.
  const std::vector<std::string> &printLog() const { return PrintLog; }
  void appendPrintLog(std::string Line) { PrintLog.push_back(std::move(Line)); }

  //===--------------------------------------------------------------------===//
  // DSU hooks (used by jvolve::Updater)
  //===--------------------------------------------------------------------===//

  /// Asks every thread to stop at its next yield point.
  void requestYield() { Sched.requestYield(); }

  /// Clears a pending yield request and resumes parked threads.
  void resumeAfterYield() {
    Sched.clearYield();
    Sched.unparkAll();
  }

  /// Invoked by the run loop when a yield was requested and every thread
  /// sits at a safe point. The callback must leave the system either
  /// resumed or finished (it may re-request a yield later).
  void setSafePointCallback(std::function<void()> Fn) {
    SafePointCallback = std::move(Fn);
  }

  /// Invoked once per scheduling round with the current virtual tick; the
  /// updater uses it to implement the safe-point timeout.
  void setTickCallback(std::function<void(uint64_t)> Fn) {
    TickCallback = std::move(Fn);
  }

  /// Invoked when a frame with an installed return barrier returns.
  void setReturnBarrierCallback(std::function<void(VMThread &)> Fn) {
    ReturnBarrierCallback = std::move(Fn);
  }

  /// While an update transaction runs, ordinary collection is impossible
  /// (it would invalidate the rollback snapshot); allocation failure throws
  /// UpdateError instead of triggering GC, and the updater rolls back.
  void setTransformationInProgress(bool V) { TransformationInProgress = V; }
  bool transformationInProgress() const { return TransformationInProgress; }

  // Internal: interpreter callbacks.
  void onReturnBarrierFired(VMThread &T);
  void onTrap(VMThread &T, const std::string &Message);

private:
  void pushEntryFrame(VMThread &T, MethodId Method, std::vector<Slot> Args);
  void enumerateRoots(const std::function<void(Ref &)> &Visit);

  Config Cfg;
  ClassSet Program;
  ClassRegistry Registry;
  std::unique_ptr<Heap> TheHeap;
  std::unique_ptr<Collector> Gc;
  StringTable Strings;
  std::unique_ptr<Compiler> Comp;
  Scheduler Sched;
  Network Net;
  std::unique_ptr<Interpreter> Interp;
  Rng TheRng;
  FaultInjector Faults;

  std::vector<Ref> Pinned;
  std::vector<std::string> PrintLog;
  VmStats Stats;

  std::function<void()> SafePointCallback;
  std::function<void(uint64_t)> TickCallback;
  std::function<void(VMThread &)> ReturnBarrierCallback;
  bool TransformationInProgress = false;
  bool ProgramLoaded = false;

  uint32_t StringIdOffset = 0;           ///< byte offset of String.$id
  ClassId StringClsId = InvalidClassId;  ///< cached id of class String

  friend class Interpreter;
};

} // namespace jvolve

#endif // JVOLVE_VM_VM_H
