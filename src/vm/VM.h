//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM facade: ties together the classloader/registry, heap, garbage
/// collector, quickening compiler, interpreter, green-thread scheduler, and
/// simulated network, and exposes the hooks the DSU layer (src/dsu) uses —
/// yield requests, safe-point callbacks, return-barrier notification, and
/// DSU-extended collections.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_VM_VM_H
#define JVOLVE_VM_VM_H

#include "bytecode/ClassDef.h"
#include "exec/Compiler.h"
#include "heap/Collector.h"
#include "heap/Heap.h"
#include "runtime/ClassRegistry.h"
#include "runtime/StringTable.h"
#include "support/FaultInjector.h"
#include "support/Rng.h"
#include "threads/Scheduler.h"
#include "vm/Network.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace jvolve {

class Interpreter;

/// VM-side view of the DSU lazy-transform engine (dsu/LazyTransform.h).
/// The VM owns the engine through this interface so the core VM library
/// stays independent of the DSU layer, mirroring the callback-based DSU
/// hooks below. All methods are invoked from the single VM thread.
class VmLazyEngine {
public:
  virtual ~VmLazyEngine() = default;

  /// Read-barrier slow path: \p Obj carried FlagLazyPending. Transforms it
  /// (and, recursively, anything the transformer forces). \returns false
  /// when the post-commit transformer failed; \p Err receives the
  /// structured diagnostic and the caller traps the touching thread.
  virtual bool onBarrierHit(Ref Obj, std::string *Err) = 0;

  /// Background drainer: transforms up to its per-quantum batch (bounded
  /// by \p BudgetTicks). \returns virtual ticks consumed (>= 1). Retires
  /// the barrier itself once the table empties.
  virtual size_t drainSome(size_t BudgetTicks) = 0;

  /// True when every update-log entry settled (transformed or failed).
  virtual bool drained() const = 0;

  /// Untransformed shells still registered.
  virtual size_t pendingCount() const = 0;

  /// Objects the engine has transformed so far (on-demand + background).
  virtual uint64_t transformedCount() const = 0;

  /// True when \p Obj is an untransformed shell whose entry has not
  /// settled yet (the heap verifier's lazy context).
  virtual bool isPendingShell(Ref Obj) const = 0;

  /// Clears the barrier flag from all compiled code, releases the old-copy
  /// block if still held, and emits the barrier-retired trace event.
  /// Idempotent; called automatically when the table drains.
  virtual void retire() = 0;

  /// GC integration: pending entries' shells and old copies are roots.
  virtual void visitRoots(const std::function<void(Ref &)> &Visit) = 0;
  /// Called after every collection: entry addresses moved.
  virtual void onHeapMoved() = 0;
};

/// VM-side view of the DSU post-commit canary window (dsu/Canary.h),
/// mirroring VmLazyEngine: the VM owns the controller through this
/// interface so the core VM library stays independent of the DSU layer.
class VmCanary {
public:
  virtual ~VmCanary() = default;

  /// Called once per scheduling round with the current virtual tick; the
  /// controller runs its periodic health checks, window expiry, and revert
  /// progress polling from here.
  virtual void onTick(uint64_t Now) = 0;

  /// True while the window is active: still observing, or reverting. False
  /// once settled (retired healthy, reverted, or revert failed).
  virtual bool windowOpen() const = 0;

  /// GC integration: the retained undo log (new-version objects plus
  /// extracted removed-field values) is a root set.
  virtual void visitRoots(const std::function<void(Ref &)> &Visit) = 0;
  /// Called after every collection: undo-log addresses moved.
  virtual void onHeapMoved() = 0;
};

/// VM-side view of the DSU per-method code-version manager
/// (dsu/CodeVersion.h), mirroring VmLazyEngine/VmCanary: the VM owns the
/// manager through this interface so the core VM library stays independent
/// of the DSU layer. All methods are invoked from the single VM thread.
class VmCodeVersions {
public:
  virtual ~VmCodeVersions() = default;

  /// Monotonic switch generation, bumped once per committed active-version
  /// switch (install or revert pop). The scheduler compares each thread's
  /// VMThread::CodeEpoch against this before every quantum — threads only
  /// resume at yield points (call entry / loop back edges), so that
  /// comparison is exactly the paper's poll-point observation with no
  /// per-instruction cost.
  virtual uint64_t epoch() const = 0;

  /// Scheduler poll: thread \p T is about to run with a stale CodeEpoch.
  /// The manager records the observation and stamps the thread current;
  /// the thread's next invocations dispatch to the active versions.
  virtual void onThreadPoll(VMThread &T, uint64_t Now) = 0;

  /// Interpreter callback: a frame returned through a compiled body that a
  /// versioned install superseded — one in-flight activation finished on
  /// its old version (rejit-generation bookkeeping).
  virtual void onStaleFrameReturn() = 0;
};

/// Aggregate execution counters (benchmark instrumentation).
struct VmStats {
  uint64_t InstructionsExecuted = 0;
  uint64_t Collections = 0;
  uint64_t Traps = 0;
  /// Indirection-mode field-access checks performed (ablation counter).
  uint64_t IndirectionChecks = 0;
  double TotalGcMs = 0;
};

/// One Java-in-C++ virtual machine instance.
class VM {
public:
  struct Config {
    /// Bytes per semi-space (total heap footprint is twice this).
    size_t HeapSpaceBytes = 64u << 20;
    /// Compile field accesses with JDrums/DVM-style indirection checks
    /// (steady-state-overhead ablation).
    bool IndirectionMode = false;
    /// Invocations before a baseline method is recompiled at the opt tier.
    uint64_t OptThreshold = 50;
    /// Instructions per scheduling quantum.
    uint64_t Quantum = 200;
    /// Run the bytecode verifier on loaded programs (Jikes RVM itself has
    /// no verifier; MiniVM does, and Jvolve's safety argument relies on
    /// verification, so this defaults to on).
    bool Verify = true;
  };

  explicit VM(Config C);
  VM();
  ~VM();

  VM(const VM &) = delete;
  VM &operator=(const VM &) = delete;

  //===--------------------------------------------------------------------===//
  // Program loading and threads
  //===--------------------------------------------------------------------===//

  /// Loads the initial program version. Adds built-ins, verifies (unless
  /// disabled), and loads every class. Call exactly once.
  void loadProgram(const ClassSet &Program);

  /// Bytecode of the running program version (the UPT diffs against this).
  const ClassSet &program() const { return Program; }

  /// Replaces the recorded program version after a dynamic update.
  void setProgram(ClassSet NewProgram) { Program = std::move(NewProgram); }

  /// Spawns a thread whose entry point is the static method
  /// \p ClassName.\p MethodName with signature \p Sig, passing \p Args.
  ThreadId spawnThread(const std::string &ClassName,
                       const std::string &MethodName, const std::string &Sig,
                       std::vector<Slot> Args = {},
                       const std::string &ThreadName = "thread",
                       bool Daemon = false);

  //===--------------------------------------------------------------------===//
  // Execution
  //===--------------------------------------------------------------------===//

  struct RunResult {
    uint64_t TicksExecuted = 0;
    /// True when the VM went idle: nothing runnable and nothing scheduled
    /// to wake (the harness must inject work or stop).
    bool Idle = false;
  };

  /// Runs the scheduler for up to \p MaxTicks virtual ticks.
  RunResult run(uint64_t MaxTicks);

  /// Runs until no live application thread remains (or \p MaxTicks pass).
  RunResult runToCompletion(uint64_t MaxTicks = 100'000'000);

  /// Convenience for tests: runs static \p ClassName.\p MethodName on a
  /// fresh thread to completion and returns its result slot (int 0 for
  /// void). Aborts if the thread traps.
  Slot callStatic(const std::string &ClassName, const std::string &MethodName,
                  const std::string &Sig, std::vector<Slot> Args = {});

  //===--------------------------------------------------------------------===//
  // Services
  //===--------------------------------------------------------------------===//

  ClassRegistry &registry() { return Registry; }
  Heap &heap() { return *TheHeap; }
  /// The VM-wide fault injector; disarmed by default. Tests and the tools'
  /// --inject flag arm sites to exercise the update-rollback paths.
  FaultInjector &faults() { return Faults; }
  StringTable &strings() { return Strings; }
  Network &net() { return Net; }
  Scheduler &scheduler() { return Sched; }
  Compiler &compiler() { return *Comp; }
  const Config &config() const { return Cfg; }
  VmStats &stats() { return Stats; }

  /// Allocates an instance of \p Cls, collecting if needed. Returns nullptr
  /// only when the heap stays full after a collection (caller traps).
  Ref allocateObject(ClassId Cls);
  /// Allocates an array of \p Length elements of array class \p ArrCls.
  Ref allocateArray(ClassId ArrCls, int64_t Length);
  /// Allocates a String object wrapping \p Payload.
  Ref newString(const std::string &Payload);
  /// \returns the payload of String object \p Str.
  std::string stringValue(Ref Str);

  /// Runs one full-heap collection over all roots (statics, thread stacks,
  /// pinned handles). DSU parameters as in Collector::collect.
  CollectionStats
  collectGarbage(const DsuRemap *Remap = nullptr,
                 std::vector<UpdateLogEntry> *UpdateLog = nullptr,
                 std::unordered_map<Ref, size_t> *NewToLogIndex = nullptr);

  /// Host-held references that must survive (and be updated by) GC.
  std::vector<Ref> &pinnedRoots() { return Pinned; }

  /// Visits every root reference location (statics, thread stacks, pinned
  /// handles) — the collector's and heap verifier's root enumerator.
  void visitRoots(const std::function<void(Ref &)> &Visit) {
    enumerateRoots(Visit);
  }

  /// Resolves the compiled code for \p Method, compiling (or upgrading to
  /// the opt tier) per the adaptive policy. Bumps the invocation counter.
  std::shared_ptr<CompiledMethod> ensureCompiledForInvoke(MethodId Method);

  /// Injects a client connection and wakes threads blocked in accept.
  /// While the network is draining, arriving connections queue (or are
  /// shed by admission control) without waking acceptors. The
  /// net-slow-client fault site stretches the connection's inter-arrival
  /// gap when armed.
  int injectConnection(int Port, const std::vector<int64_t> &Requests,
                       uint64_t InterArrival = 0, uint64_t FirstDelay = 0);

  /// Update-time traffic draining (Updater's DrainNetwork option): gates
  /// accepts while in-flight connections run to request boundaries.
  /// endNetDrain wakes acceptors for any connections that queued up while
  /// the drain held.
  void beginNetDrain() { Net.beginDrain(); }
  void endNetDrain();

  /// Advances the virtual clock to \p Tick if it lies in the future (idle
  /// time passing with no work to run); no-op otherwise. Load generators
  /// use this to keep their injection schedule in virtual time even when
  /// the server drains faster than the offered load.
  void fastForwardTo(uint64_t Tick) {
    if (Tick > Sched.ticks())
      Sched.setTicks(Tick);
  }

  /// Text printed by PrintInt/PrintStr intrinsics.
  const std::vector<std::string> &printLog() const { return PrintLog; }
  void appendPrintLog(std::string Line) { PrintLog.push_back(std::move(Line)); }

  //===--------------------------------------------------------------------===//
  // DSU hooks (used by jvolve::Updater)
  //===--------------------------------------------------------------------===//

  /// Asks every thread to stop at its next yield point.
  void requestYield() { Sched.requestYield(); }

  /// Clears a pending yield request and resumes parked threads.
  void resumeAfterYield() {
    Sched.clearYield();
    Sched.unparkAll();
  }

  /// Invoked by the run loop when a yield was requested and every thread
  /// sits at a safe point. The callback must leave the system either
  /// resumed or finished (it may re-request a yield later).
  void setSafePointCallback(std::function<void()> Fn) {
    DsuHookOwner = nullptr;
    SafePointCallback = std::move(Fn);
  }

  /// Invoked once per scheduling round with the current virtual tick; the
  /// updater uses it to implement the safe-point timeout.
  void setTickCallback(std::function<void(uint64_t)> Fn) {
    DsuHookOwner = nullptr;
    TickCallback = std::move(Fn);
  }

  /// Invoked when a frame with an installed return barrier returns.
  void setReturnBarrierCallback(std::function<void(VMThread &)> Fn) {
    DsuHookOwner = nullptr;
    ReturnBarrierCallback = std::move(Fn);
  }

  /// Installs all three DSU callbacks at once and records \p Owner as the
  /// holder. A canary revert's Updater may outlive the forward update's
  /// (tool code keeps loop-local Updaters); ownership keeps a dying
  /// foreign Updater from clobbering the live one's hooks.
  void claimDsuHooks(void *Owner, std::function<void()> SafePoint,
                     std::function<void(uint64_t)> Tick,
                     std::function<void(VMThread &)> Barrier) {
    DsuHookOwner = Owner;
    SafePointCallback = std::move(SafePoint);
    TickCallback = std::move(Tick);
    ReturnBarrierCallback = std::move(Barrier);
  }

  /// Clears the DSU callbacks iff \p Owner still holds them; a no-op for
  /// anyone else (their hooks were already replaced).
  void releaseDsuHooks(void *Owner) {
    if (DsuHookOwner != Owner)
      return;
    DsuHookOwner = nullptr;
    SafePointCallback = nullptr;
    TickCallback = nullptr;
    ReturnBarrierCallback = nullptr;
  }

  /// While an update transaction runs, ordinary collection is impossible
  /// (it would invalidate the rollback snapshot); allocation failure throws
  /// UpdateError instead of triggering GC, and the updater rolls back.
  void setTransformationInProgress(bool V) { TransformationInProgress = V; }
  bool transformationInProgress() const { return TransformationInProgress; }

  //===--------------------------------------------------------------------===//
  // Lazy object transformation (UpdateOptions::LazyTransform)
  //===--------------------------------------------------------------------===//

  /// The live engine, or nullptr. Non-null from a lazy update's commit
  /// until the next update replaces it (it stays queryable after retiring
  /// so its drain statistics and failure diagnostics remain readable).
  VmLazyEngine *lazyEngine() { return Lazy.get(); }

  /// Adopts the engine a lazy update built at commit and spawns the
  /// background drainer thread (a daemon; scheduled like any other).
  void installLazyEngine(std::unique_ptr<VmLazyEngine> Engine);

  /// Synchronously drains and retires any live engine, then drops it.
  /// Called before a stacked update's safe-point hunt: its DSU collection
  /// must not see pending shells.
  void drainLazyEngineNow();

  /// Interpreter slow path behind the FlagLazyPending header check.
  /// \returns false when the transform failed (thread \p T was trapped
  /// with the structured diagnostic).
  bool lazyBarrierSlowPath(VMThread &T, Ref Obj);

  /// Structured diagnostics of every failed post-commit lazy transform,
  /// surviving engine replacement (jvolve-serve reports these).
  const std::vector<std::string> &lazyFailureLog() const {
    return LazyFailureLog;
  }
  void noteLazyFailure(std::string Diagnostic) {
    LazyFailureLog.push_back(std::move(Diagnostic));
  }

  //===--------------------------------------------------------------------===//
  // Post-commit canary window (UpdateOptions::CanaryWindow)
  //===--------------------------------------------------------------------===//

  /// The live canary controller, or nullptr. Non-null from a canaried
  /// update's commit until the next canaried update replaces it (it stays
  /// queryable after settling so its report remains readable).
  VmCanary *canary() { return CanaryCtl.get(); }

  /// Adopts the controller a canaried update armed at commit and spawns
  /// the canary-watchdog thread (a daemon that keeps virtual time — and
  /// with it the observation window — advancing on an otherwise idle VM).
  void installCanary(std::unique_ptr<VmCanary> Ctl);

  //===--------------------------------------------------------------------===//
  // Per-method code versioning (UpdateOptions::CodeVersioning)
  //===--------------------------------------------------------------------===//

  /// The live code-version manager, or nullptr. Non-null from the first
  /// versioned body-only install for the VM's lifetime: version chains
  /// persist so stacked updates compose and the canary can revert by
  /// popping to the prior active version.
  VmCodeVersions *codeVersions() { return CodeVers.get(); }

  /// Adopts the manager built by the first versioned install. Unlike the
  /// lazy engine and canary it spawns no daemon: switches are observed
  /// passively at the scheduler's per-quantum epoch poll.
  void installCodeVersions(std::unique_ptr<VmCodeVersions> Mgr) {
    CodeVers = std::move(Mgr);
  }

  // Internal: interpreter callbacks.
  void onReturnBarrierFired(VMThread &T);
  void onTrap(VMThread &T, const std::string &Message);
  /// Interpreter: a frame whose compiled body was superseded by a
  /// versioned install just returned.
  void onStaleFrameReturned() {
    if (CodeVers)
      CodeVers->onStaleFrameReturn();
  }

private:
  void pushEntryFrame(VMThread &T, MethodId Method, std::vector<Slot> Args);
  void enumerateRoots(const std::function<void(Ref &)> &Visit);

  Config Cfg;
  ClassSet Program;
  ClassRegistry Registry;
  std::unique_ptr<Heap> TheHeap;
  std::unique_ptr<Collector> Gc;
  StringTable Strings;
  std::unique_ptr<Compiler> Comp;
  Scheduler Sched;
  Network Net;
  std::unique_ptr<Interpreter> Interp;
  Rng TheRng;
  FaultInjector Faults;

  std::vector<Ref> Pinned;
  std::vector<std::string> PrintLog;
  VmStats Stats;

  std::function<void()> SafePointCallback;
  std::function<void(uint64_t)> TickCallback;
  std::function<void(VMThread &)> ReturnBarrierCallback;
  std::unique_ptr<VmLazyEngine> Lazy;
  std::unique_ptr<VmCanary> CanaryCtl;
  std::unique_ptr<VmCodeVersions> CodeVers;
  void *DsuHookOwner = nullptr;
  std::vector<std::string> LazyFailureLog;
  bool TransformationInProgress = false;
  bool ProgramLoaded = false;

  uint32_t StringIdOffset = 0;           ///< byte offset of String.$id
  ClassId StringClsId = InvalidClassId;  ///< cached id of class String

  friend class Interpreter;
};

} // namespace jvolve

#endif // JVOLVE_VM_VM_H
