#include "asm/AsmWriter.h"

#include "bytecode/Builtins.h"
#include "support/Error.h"

#include <map>
#include <set>

using namespace jvolve;

namespace {

const char *accessWord(Access A) {
  switch (A) {
  case Access::Public: return "";
  case Access::Private: return "private ";
  case Access::Protected: return "protected ";
  }
  unreachable("bad access");
}

std::string escape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (C == '\n') {
      Out += "\\n";
      continue;
    }
    Out += C;
  }
  return Out;
}

const char *branchWord(Opcode Op) {
  switch (Op) {
  case Opcode::IfEq: return "ifeq";
  case Opcode::IfNe: return "ifne";
  case Opcode::IfLt: return "iflt";
  case Opcode::IfGe: return "ifge";
  case Opcode::IfGt: return "ifgt";
  case Opcode::IfLe: return "ifle";
  case Opcode::IfICmpEq: return "if_icmpeq";
  case Opcode::IfICmpNe: return "if_icmpne";
  case Opcode::IfICmpLt: return "if_icmplt";
  case Opcode::IfICmpGe: return "if_icmpge";
  case Opcode::IfICmpGt: return "if_icmpgt";
  case Opcode::IfICmpLe: return "if_icmple";
  case Opcode::IfNull: return "ifnull";
  case Opcode::IfNonNull: return "ifnonnull";
  case Opcode::IfACmpEq: return "if_acmpeq";
  case Opcode::IfACmpNe: return "if_acmpne";
  default: return nullptr;
  }
}

void writeMethod(const MethodDef &M, std::string &Out) {
  Out += "  ";
  Out += accessWord(M.Visibility);
  if (M.IsStatic)
    Out += "static ";
  Out += "method " + M.Name + M.Sig + " locals " +
         std::to_string(M.NumLocals) + " {\n";

  // Collect branch targets so they become labels.
  std::map<size_t, std::string> Labels;
  for (const Instr &I : M.Code) {
    if (branchWord(I.Op) || I.Op == Opcode::Goto) {
      size_t Target = static_cast<size_t>(I.IVal);
      if (!Labels.count(Target))
        Labels[Target] = "L" + std::to_string(Labels.size());
    }
  }

  for (size_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    if (auto It = Labels.find(Pc); It != Labels.end())
      Out += "  " + It->second + ":\n";
    const Instr &I = M.Code[Pc];
    Out += "    ";
    if (const char *BW = branchWord(I.Op)) {
      Out += std::string(BW) + " " + Labels.at(static_cast<size_t>(I.IVal));
    } else {
      switch (I.Op) {
      case Opcode::Nop: Out += "nop"; break;
      case Opcode::IConst: Out += "iconst " + std::to_string(I.IVal); break;
      case Opcode::SConst: Out += "sconst \"" + escape(I.Str) + "\""; break;
      case Opcode::NullConst: Out += "nullconst"; break;
      case Opcode::Load: Out += "load " + std::to_string(I.IVal); break;
      case Opcode::Store: Out += "store " + std::to_string(I.IVal); break;
      case Opcode::IAdd: Out += "iadd"; break;
      case Opcode::ISub: Out += "isub"; break;
      case Opcode::IMul: Out += "imul"; break;
      case Opcode::IDiv: Out += "idiv"; break;
      case Opcode::IRem: Out += "irem"; break;
      case Opcode::INeg: Out += "ineg"; break;
      case Opcode::Dup: Out += "dup"; break;
      case Opcode::Pop: Out += "pop"; break;
      case Opcode::Goto:
        Out += "goto " + Labels.at(static_cast<size_t>(I.IVal));
        break;
      case Opcode::New: Out += "new " + I.Sym; break;
      case Opcode::GetField: Out += "getfield " + I.Sym + " " + I.Sig; break;
      case Opcode::PutField: Out += "putfield " + I.Sym + " " + I.Sig; break;
      case Opcode::GetStatic:
        Out += "getstatic " + I.Sym + " " + I.Sig;
        break;
      case Opcode::PutStatic:
        Out += "putstatic " + I.Sym + " " + I.Sig;
        break;
      case Opcode::InstanceOf: Out += "instanceof " + I.Sym; break;
      case Opcode::CheckCast: Out += "checkcast " + I.Sym; break;
      case Opcode::InvokeVirtual:
        Out += "invokevirtual " + I.Sym + I.Sig;
        break;
      case Opcode::InvokeStatic:
        Out += "invokestatic " + I.Sym + I.Sig;
        break;
      case Opcode::InvokeSpecial:
        Out += "invokespecial " + I.Sym + I.Sig;
        break;
      case Opcode::NewArray: Out += "newarray " + I.Sig; break;
      case Opcode::ALoad: Out += "aload"; break;
      case Opcode::AStore: Out += "astore"; break;
      case Opcode::ArrayLength: Out += "arraylength"; break;
      case Opcode::Return: Out += "ret"; break;
      case Opcode::IReturn: Out += "iret"; break;
      case Opcode::AReturn: Out += "aret"; break;
      case Opcode::Intrinsic:
        Out += std::string("intrinsic ") +
               intrinsicName(static_cast<IntrinsicId>(I.IVal));
        break;
      default:
        unreachable("unhandled opcode in asm writer");
      }
    }
    Out += '\n';
  }
  // A trailing label (branch to one-past-the-end never verifies, but a
  // label exactly at Code.size() cannot occur since targets are bounded).
  Out += "  }\n";
}

} // namespace

std::string jvolve::writeClassAsm(const ClassDef &Cls) {
  std::string Out = "class " + Cls.Name;
  if (!Cls.Super.empty() && Cls.Super != "Object")
    Out += " extends " + Cls.Super;
  Out += " {\n";
  for (const FieldDef &F : Cls.Fields) {
    Out += "  ";
    Out += accessWord(F.Visibility);
    if (F.IsStatic)
      Out += "static ";
    if (F.IsFinal)
      Out += "final ";
    Out += "field " + F.Name + " " + F.TypeDesc + "\n";
  }
  for (const MethodDef &M : Cls.Methods)
    writeMethod(M, Out);
  Out += "}\n";
  return Out;
}

std::string jvolve::writeProgramAsm(const ClassSet &Set) {
  std::string Out;
  for (const auto &[Name, Cls] : Set.classes()) {
    if (isBuiltinClass(Name))
      continue;
    Out += writeClassAsm(Cls);
    Out += '\n';
  }
  return Out;
}
