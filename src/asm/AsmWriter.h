//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes class sets back to MiniVM assembly text. The output parses
/// back to an equivalent program (round-trip clean), which the tests
/// verify over the full application models.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_ASM_ASMWRITER_H
#define JVOLVE_ASM_ASMWRITER_H

#include "bytecode/ClassDef.h"

#include <string>

namespace jvolve {

/// Renders one class in parseable form.
std::string writeClassAsm(const ClassDef &Cls);

/// Renders a whole program (built-in classes are skipped — the parser's
/// consumers re-add them via ensureBuiltins).
std::string writeProgramAsm(const ClassSet &Set);

} // namespace jvolve

#endif // JVOLVE_ASM_ASMWRITER_H
