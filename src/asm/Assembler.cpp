#include "asm/Assembler.h"

#include "bytecode/Builder.h"
#include "bytecode/Type.h"
#include "support/Error.h"

#include <cctype>
#include <map>
#include <sstream>

using namespace jvolve;

namespace {

/// One whitespace-separated token with its source line.
struct Token {
  std::string Text;
  int Line;
  bool IsString = false; ///< came from a quoted literal
};

/// Splits \p Text into tokens: whitespace-separated words, standalone
/// '{' / '}', quoted strings with \" and \\ escapes, and '//' or '#'
/// comments to end of line.
bool tokenize(const std::string &Text, std::vector<Token> &Out,
              std::vector<AsmError> &Errors) {
  int Line = 1;
  size_t I = 0;
  while (I < Text.size()) {
    char C = Text[I];
    if (C == '\n') {
      ++Line;
      ++I;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    if (C == '/' && I + 1 < Text.size() && Text[I + 1] == '/') {
      while (I < Text.size() && Text[I] != '\n')
        ++I;
      continue;
    }
    if (C == '#') {
      while (I < Text.size() && Text[I] != '\n')
        ++I;
      continue;
    }
    if (C == '{' || C == '}') {
      Out.push_back({std::string(1, C), Line, false});
      ++I;
      continue;
    }
    if (C == '"') {
      std::string Lit;
      ++I;
      bool Closed = false;
      while (I < Text.size()) {
        char D = Text[I];
        if (D == '\\' && I + 1 < Text.size()) {
          char E = Text[I + 1];
          Lit += E == 'n' ? '\n' : E == 't' ? '\t' : E;
          I += 2;
          continue;
        }
        if (D == '"') {
          Closed = true;
          ++I;
          break;
        }
        if (D == '\n') {
          break;
        }
        Lit += D;
        ++I;
      }
      if (!Closed) {
        Errors.push_back({Line, "unterminated string literal"});
        return false;
      }
      Out.push_back({Lit, Line, true});
      continue;
    }
    // A plain word: everything up to whitespace or a brace.
    std::string Word;
    while (I < Text.size() && !std::isspace(static_cast<unsigned char>(
                                  Text[I])) &&
           Text[I] != '{' && Text[I] != '}')
      Word += Text[I++];
    Out.push_back({Word, Line, false});
  }
  return true;
}

/// Reverse lookup of intrinsic symbolic names.
std::optional<IntrinsicId> intrinsicByName(const std::string &Name) {
  for (int64_t I = static_cast<int64_t>(IntrinsicId::PrintInt);
       I <= static_cast<int64_t>(IntrinsicId::Rand); ++I) {
    IntrinsicId Id = static_cast<IntrinsicId>(I);
    if (intrinsicName(Id) == Name)
      return Id;
  }
  return std::nullopt;
}

/// Conditional-branch mnemonics.
const std::map<std::string, Opcode> &branchMnemonics() {
  static const std::map<std::string, Opcode> M = {
      {"ifeq", Opcode::IfEq},           {"ifne", Opcode::IfNe},
      {"iflt", Opcode::IfLt},           {"ifge", Opcode::IfGe},
      {"ifgt", Opcode::IfGt},           {"ifle", Opcode::IfLe},
      {"if_icmpeq", Opcode::IfICmpEq},  {"if_icmpne", Opcode::IfICmpNe},
      {"if_icmplt", Opcode::IfICmpLt},  {"if_icmpge", Opcode::IfICmpGe},
      {"if_icmpgt", Opcode::IfICmpGt},  {"if_icmple", Opcode::IfICmpLe},
      {"ifnull", Opcode::IfNull},       {"ifnonnull", Opcode::IfNonNull},
      {"if_acmpeq", Opcode::IfACmpEq},  {"if_acmpne", Opcode::IfACmpNe},
  };
  return M;
}

/// Zero-operand mnemonics.
const std::map<std::string, Opcode> &simpleMnemonics() {
  static const std::map<std::string, Opcode> M = {
      {"nop", Opcode::Nop},       {"nullconst", Opcode::NullConst},
      {"iadd", Opcode::IAdd},     {"isub", Opcode::ISub},
      {"imul", Opcode::IMul},     {"idiv", Opcode::IDiv},
      {"irem", Opcode::IRem},     {"ineg", Opcode::INeg},
      {"dup", Opcode::Dup},       {"pop", Opcode::Pop},
      {"aload", Opcode::ALoad},   {"astore", Opcode::AStore},
      {"arraylength", Opcode::ArrayLength},
      {"ret", Opcode::Return},    {"ireturn", Opcode::IReturn},
      {"iret", Opcode::IReturn},  {"areturn", Opcode::AReturn},
      {"aret", Opcode::AReturn},
  };
  return M;
}

/// Stream over the token vector with error reporting.
class TokenStream {
public:
  TokenStream(std::vector<Token> Tokens, std::vector<AsmError> &Errors)
      : Tokens(std::move(Tokens)), Errors(Errors) {}

  bool atEnd() const { return Pos >= Tokens.size(); }
  const Token &peek() const { return Tokens[Pos]; }
  Token next() { return Tokens[Pos++]; }
  int line() const {
    return atEnd() ? (Tokens.empty() ? 1 : Tokens.back().Line)
                   : Tokens[Pos].Line;
  }

  bool expect(const std::string &What) {
    if (!atEnd() && peek().Text == What && !peek().IsString) {
      ++Pos;
      return true;
    }
    error("expected '" + What + "'" +
          (atEnd() ? " at end of input" : ", found '" + peek().Text + "'"));
    return false;
  }

  void error(const std::string &Message) {
    Errors.push_back({line(), Message});
  }

  void errorAt(int AtLine, const std::string &Message) {
    Errors.push_back({AtLine, Message});
  }

private:
  std::vector<Token> Tokens;
  std::vector<AsmError> &Errors;
  size_t Pos = 0;
};

/// Parses one method body (tokens between '{' and '}').
bool parseMethodBody(TokenStream &TS, MethodBuilder &MB) {
  // Collected first as (mnemonic, operands); labels bind through the
  // MethodBuilder's label mechanism directly.
  while (!TS.atEnd() && TS.peek().Text != "}") {
    Token T = TS.next();
    const std::string &Word = T.Text;

    if (!T.IsString && Word.size() > 1 && Word.back() == ':') {
      MB.label(Word.substr(0, Word.size() - 1));
      continue;
    }

    auto NeedOperand = [&](const char *What) -> std::optional<Token> {
      if (TS.atEnd() || TS.peek().Text == "}") {
        TS.error(std::string("'") + Word + "' needs " + What);
        return std::nullopt;
      }
      return TS.next();
    };
    auto NeedInt = [&](const char *What) -> std::optional<int64_t> {
      std::optional<Token> Op = NeedOperand(What);
      if (!Op)
        return std::nullopt;
      try {
        size_t Used = 0;
        int64_t V = std::stoll(Op->Text, &Used);
        if (Used != Op->Text.size())
          throw std::invalid_argument("trailing");
        return V;
      } catch (...) {
        TS.error("'" + Op->Text + "' is not an integer");
        return std::nullopt;
      }
    };
    /// Splits "Class.member" into its parts.
    auto SplitMember =
        [&](const std::string &Sym) -> std::optional<std::pair<std::string,
                                                               std::string>> {
      size_t Dot = Sym.find('.');
      if (Dot == std::string::npos || Dot == 0 || Dot + 1 == Sym.size()) {
        TS.error("expected Class.member, found '" + Sym + "'");
        return std::nullopt;
      }
      return std::make_pair(Sym.substr(0, Dot), Sym.substr(Dot + 1));
    };
    /// Splits "Class.method(SIG)RET" into (class, method, signature).
    auto SplitCall = [&](const std::string &Sym)
        -> std::optional<std::tuple<std::string, std::string, std::string>> {
      size_t Paren = Sym.find('(');
      if (Paren == std::string::npos) {
        TS.error("expected Class.method(sig), found '" + Sym + "'");
        return std::nullopt;
      }
      std::string Member = Sym.substr(0, Paren);
      std::string Sig = Sym.substr(Paren);
      auto Parts = SplitMember(Member);
      if (!Parts)
        return std::nullopt;
      if (!MethodSignature::isValidSignature(Sig)) {
        TS.error("malformed signature '" + Sig + "'");
        return std::nullopt;
      }
      return std::make_tuple(Parts->first, Parts->second, Sig);
    };

    if (auto It = simpleMnemonics().find(Word);
        It != simpleMnemonics().end()) {
      MB.raw({It->second, 0, "", "", ""});
      continue;
    }
    if (auto It = branchMnemonics().find(Word);
        It != branchMnemonics().end()) {
      std::optional<Token> Label = NeedOperand("a label");
      if (!Label)
        return false;
      MB.branch(It->second, Label->Text);
      continue;
    }
    if (Word == "goto") {
      std::optional<Token> Label = NeedOperand("a label");
      if (!Label)
        return false;
      MB.jump(Label->Text);
      continue;
    }
    if (Word == "iconst") {
      std::optional<int64_t> V = NeedInt("an integer");
      if (!V)
        return false;
      MB.iconst(*V);
      continue;
    }
    if (Word == "sconst") {
      std::optional<Token> Lit = NeedOperand("a string literal");
      if (!Lit)
        return false;
      if (!Lit->IsString) {
        TS.error("sconst needs a quoted string");
        return false;
      }
      MB.sconst(Lit->Text);
      continue;
    }
    if (Word == "load" || Word == "store") {
      std::optional<int64_t> Slot = NeedInt("a slot number");
      if (!Slot)
        return false;
      if (Word == "load")
        MB.load(static_cast<uint16_t>(*Slot));
      else
        MB.store(static_cast<uint16_t>(*Slot));
      continue;
    }
    if (Word == "new" || Word == "instanceof" || Word == "checkcast") {
      std::optional<Token> Cls = NeedOperand("a class name");
      if (!Cls)
        return false;
      if (Word == "new")
        MB.newobj(Cls->Text);
      else if (Word == "instanceof")
        MB.instanceofOp(Cls->Text);
      else
        MB.checkcast(Cls->Text);
      continue;
    }
    if (Word == "newarray") {
      std::optional<Token> Desc = NeedOperand("an element type");
      if (!Desc)
        return false;
      if (!Type::isValidDescriptor(Desc->Text) || Desc->Text == "V") {
        TS.error("invalid element type '" + Desc->Text + "'");
        return false;
      }
      MB.newarray(Desc->Text);
      continue;
    }
    if (Word == "getfield" || Word == "putfield" || Word == "getstatic" ||
        Word == "putstatic") {
      std::optional<Token> Sym = NeedOperand("Class.field");
      std::optional<Token> Desc =
          Sym ? NeedOperand("a type descriptor") : std::nullopt;
      if (!Sym || !Desc)
        return false;
      auto Parts = SplitMember(Sym->Text);
      if (!Parts)
        return false;
      if (!Type::isValidDescriptor(Desc->Text)) {
        TS.error("invalid type descriptor '" + Desc->Text + "'");
        return false;
      }
      if (Word == "getfield")
        MB.getfield(Parts->first, Parts->second, Desc->Text);
      else if (Word == "putfield")
        MB.putfield(Parts->first, Parts->second, Desc->Text);
      else if (Word == "getstatic")
        MB.getstatic(Parts->first, Parts->second, Desc->Text);
      else
        MB.putstatic(Parts->first, Parts->second, Desc->Text);
      continue;
    }
    if (Word == "invokevirtual" || Word == "invokestatic" ||
        Word == "invokespecial") {
      std::optional<Token> Sym = NeedOperand("Class.method(sig)");
      if (!Sym)
        return false;
      auto Call = SplitCall(Sym->Text);
      if (!Call)
        return false;
      const auto &[Cls, Name, Sig] = *Call;
      if (Word == "invokevirtual")
        MB.invokevirtual(Cls, Name, Sig);
      else if (Word == "invokestatic")
        MB.invokestatic(Cls, Name, Sig);
      else
        MB.invokespecial(Cls, Name, Sig);
      continue;
    }
    if (Word == "intrinsic") {
      std::optional<Token> Name = NeedOperand("an intrinsic name");
      if (!Name)
        return false;
      std::optional<IntrinsicId> Id = intrinsicByName(Name->Text);
      if (!Id) {
        TS.error("unknown intrinsic '" + Name->Text + "'");
        return false;
      }
      MB.intrinsic(*Id);
      continue;
    }

    TS.error("unknown instruction '" + Word + "'");
    return false;
  }
  return TS.expect("}");
}

/// Parses one class body.
bool parseClass(TokenStream &TS, ClassSet &Set) {
  Token Name = TS.next();
  std::string Super = "Object";
  if (!TS.atEnd() && TS.peek().Text == "extends") {
    TS.next();
    if (TS.atEnd()) {
      TS.error("expected superclass name");
      return false;
    }
    Super = TS.next().Text;
  }
  ClassBuilder CB(Name.Text, Super);
  if (!TS.expect("{"))
    return false;

  while (!TS.atEnd() && TS.peek().Text != "}") {
    bool IsStatic = false, IsFinal = false;
    Access Vis = Access::Public;
    // Modifier words in any order before 'field'/'method'.
    while (!TS.atEnd()) {
      const std::string &W = TS.peek().Text;
      if (W == "static") {
        IsStatic = true;
        TS.next();
      } else if (W == "final") {
        IsFinal = true;
        TS.next();
      } else if (W == "public") {
        Vis = Access::Public;
        TS.next();
      } else if (W == "private") {
        Vis = Access::Private;
        TS.next();
      } else if (W == "protected") {
        Vis = Access::Protected;
        TS.next();
      } else {
        break;
      }
    }
    if (TS.atEnd()) {
      TS.error("unexpected end of class body");
      return false;
    }
    Token Kind = TS.next();
    if (Kind.Text == "field") {
      if (TS.atEnd()) {
        TS.error("field needs a name");
        return false;
      }
      Token FName = TS.next();
      if (TS.atEnd()) {
        TS.error("field needs a type descriptor");
        return false;
      }
      Token Desc = TS.next();
      if (!Type::isValidDescriptor(Desc.Text) || Desc.Text == "V") {
        TS.error("invalid field type '" + Desc.Text + "'");
        return false;
      }
      if (IsStatic)
        CB.staticField(FName.Text, Desc.Text, Vis);
      else
        CB.field(FName.Text, Desc.Text, Vis, IsFinal);
      continue;
    }
    if (Kind.Text == "method") {
      if (TS.atEnd()) {
        TS.error("method needs name(sig)");
        return false;
      }
      Token NameSig = TS.next();
      size_t Paren = NameSig.Text.find('(');
      if (Paren == std::string::npos) {
        TS.error("expected name(sig), found '" + NameSig.Text + "'");
        return false;
      }
      std::string MName = NameSig.Text.substr(0, Paren);
      std::string Sig = NameSig.Text.substr(Paren);
      if (!MethodSignature::isValidSignature(Sig)) {
        TS.error("malformed signature '" + Sig + "'");
        return false;
      }
      MethodBuilder &MB =
          IsStatic ? CB.staticMethod(MName, Sig) : CB.method(MName, Sig);
      MB.access(Vis);
      if (!TS.atEnd() && TS.peek().Text == "locals") {
        TS.next();
        Token N = TS.next();
        MB.locals(static_cast<uint16_t>(std::atoi(N.Text.c_str())));
      }
      if (!TS.expect("{"))
        return false;
      if (!parseMethodBody(TS, MB))
        return false;
      continue;
    }
    TS.errorAt(Kind.Line,
               "expected 'field' or 'method', found '" + Kind.Text + "'");
    return false;
  }
  if (!TS.expect("}"))
    return false;
  if (Set.contains(Name.Text)) {
    TS.error("duplicate class '" + Name.Text + "'");
    return false;
  }
  Set.add(CB.build());
  return true;
}

} // namespace

std::optional<ClassSet> jvolve::parseProgram(const std::string &Text,
                                             std::vector<AsmError> &Errors) {
  std::vector<Token> Tokens;
  if (!tokenize(Text, Tokens, Errors))
    return std::nullopt;
  TokenStream TS(std::move(Tokens), Errors);

  ClassSet Set;
  while (!TS.atEnd()) {
    if (!TS.expect("class"))
      return std::nullopt;
    if (TS.atEnd()) {
      TS.error("expected class name");
      return std::nullopt;
    }
    if (!parseClass(TS, Set))
      return std::nullopt;
  }
  if (!Errors.empty())
    return std::nullopt;
  return Set;
}

ClassSet jvolve::parseProgramOrDie(const std::string &Text) {
  std::vector<AsmError> Errors;
  std::optional<ClassSet> Set = parseProgram(Text, Errors);
  if (!Set) {
    std::string Msg = "assembly failed:";
    for (const AsmError &E : Errors)
      Msg += "\n  " + E.str();
    fatalError(Msg);
  }
  return *Set;
}
