//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM textual assembly front end.
///
/// Programs can be written as `.mvm` text instead of C++ builder calls —
/// the form the command-line tools (tools/) consume and the form the
/// writer (AsmWriter.h) emits, round-trip clean. Example:
///
/// \code
///   class User extends Object {
///     private final field username LString;
///     method getUsername()LString; {
///       load 0
///       getfield User.username LString;
///       aret
///     }
///     static method main()V {
///     top:
///       sconst "hello"
///       intrinsic print_str
///       ret
///     }
///   }
/// \endcode
///
/// Branches name labels ("goto top", "if_icmpge done"); "intrinsic" takes
/// the intrinsic's symbolic name (see intrinsicName). Comments start with
/// "//" or "#".
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_ASM_ASSEMBLER_H
#define JVOLVE_ASM_ASSEMBLER_H

#include "bytecode/ClassDef.h"

#include <optional>
#include <string>
#include <vector>

namespace jvolve {

/// One assembler diagnostic.
struct AsmError {
  int Line = 0;
  std::string Message;

  std::string str() const {
    return "line " + std::to_string(Line) + ": " + Message;
  }
};

/// Parses \p Text into a class set (without built-ins). \returns nullopt
/// and fills \p Errors on any syntax problem; the result is *not*
/// verified — run the Verifier for semantic checks.
std::optional<ClassSet> parseProgram(const std::string &Text,
                                     std::vector<AsmError> &Errors);

/// Convenience: parse-or-abort (tests, tools with their own reporting).
ClassSet parseProgramOrDie(const std::string &Text);

} // namespace jvolve

#endif // JVOLVE_ASM_ASSEMBLER_H
