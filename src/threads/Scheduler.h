//===----------------------------------------------------------------------===//
///
/// \file
/// The cooperative thread scheduler and the virtual clock.
///
/// One virtual tick corresponds to one executed instruction. The scheduler
/// round-robins runnable threads; when the yield flag is set, threads park
/// at their next yield point, and once *all* threads sit at safe points the
/// VM may run a safe-point action (GC or a dynamic update attempt).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_THREADS_SCHEDULER_H
#define JVOLVE_THREADS_SCHEDULER_H

#include "threads/Thread.h"

#include <memory>
#include <vector>

namespace jvolve {

/// Owns every thread and the virtual clock.
class Scheduler {
public:
  /// Retires any telemetry buffers still registered to live threads (a VM
  /// torn down mid-run must not leave the streamer draining from buffers
  /// whose producers are gone).
  ~Scheduler();

  /// Creates a thread in Runnable state with an empty stack; the caller
  /// pushes the entry frame. While a telemetry session is open the thread
  /// gets its own event buffer and a `vm.thread`/spawn trace event.
  VMThread &spawn(const std::string &Name, bool Daemon = false);

  /// Marks \p T dead for the streaming-telemetry layer: emits the
  /// `vm.thread`/exit event through its buffer and retires the buffer.
  /// Safe to call for threads that never had one.
  void retireThreadTelemetry(VMThread &T);

  std::vector<std::unique_ptr<VMThread>> &threads() { return Threads; }
  const std::vector<std::unique_ptr<VMThread>> &threads() const {
    return Threads;
  }

  VMThread *findThread(ThreadId Id);

  uint64_t ticks() const { return Ticks; }
  void advanceTicks(uint64_t N) { Ticks += N; }
  /// Jumps the clock forward to \p Tick (idle fast-forward).
  void setTicks(uint64_t Tick);

  /// Requests that all threads stop at their next yield point.
  void requestYield() {
    if (!YieldRequested)
      YieldRequestTick = Ticks;
    YieldRequested = true;
  }
  void clearYield() { YieldRequested = false; }
  bool yieldRequested() const { return YieldRequested; }

  /// Records the stop-the-world rendezvous latency — virtual ticks between
  /// the oldest outstanding requestYield() and now — into the
  /// `vm.sched.safepoint.wait_ticks` histogram. The VM calls this once per
  /// safe-point rendezvous, right before running the safe-point action.
  void noteSafePointReached();

  /// Moves every Parked thread back to Runnable.
  void unparkAll();

  /// \returns true when no live thread is in the Runnable state, i.e. every
  /// thread sits at a VM safe point.
  bool allAtSafePoints() const;

  /// \returns true if any live non-daemon thread exists.
  bool hasLiveApplicationThreads() const;

  /// \returns true if any thread can run right now.
  bool anyRunnable() const;

  /// Earliest WakeTick over Sleeping/BlockedRecv threads, or UINT64_MAX.
  uint64_t nextWakeTick() const;

  /// Wakes threads whose wake conditions are met at the current tick.
  void wakeReadyThreads();

  /// Round-robin choice of the next runnable thread; nullptr if none.
  VMThread *pickNext();

private:
  std::vector<std::unique_ptr<VMThread>> Threads;
  uint64_t Ticks = 0;
  bool YieldRequested = false;
  uint64_t YieldRequestTick = 0;
  size_t NextIndex = 0;
  ThreadId NextId = 1;
};

} // namespace jvolve

#endif // JVOLVE_THREADS_SCHEDULER_H
