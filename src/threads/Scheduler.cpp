#include "threads/Scheduler.h"

#include "support/Error.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

#include <cassert>
#include <limits>

using namespace jvolve;

Scheduler::~Scheduler() {
  for (auto &T : Threads)
    retireThreadTelemetry(*T);
}

void Scheduler::noteSafePointReached() {
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.counter(metrics::SchedSafePoints).inc();
  Tel.histogram(metrics::SchedSafePointWaitTicks)
      .record(static_cast<double>(Ticks - YieldRequestTick));
  // The world is stopped: a good moment to make the pre-pause event tail
  // durable before GC or an update attempt mutates everything.
  if (Tel.tracing())
    Tel.streamer().kick();
}

VMThread &Scheduler::spawn(const std::string &Name, bool Daemon) {
  auto T = std::make_unique<VMThread>();
  T->Id = NextId++;
  T->Name = Name;
  T->Daemon = Daemon;
  Telemetry &Tel = Telemetry::global();
  if (Tel.tracing()) {
    T->TelBuf = Tel.streamer().acquireThreadBuffer(T->Id, T->Name);
    // Birth event goes through the thread's own buffer (seq 1) so the
    // merged stream shows the registration itself.
    T->TelBuf->tryWrite({"vm.thread", "spawn", Ticks, Ticks, 0,
                         static_cast<int64_t>(T->Id), T->Name});
  }
  Threads.push_back(std::move(T));
  return *Threads.back();
}

void Scheduler::retireThreadTelemetry(VMThread &T) {
  if (!T.TelBuf)
    return;
  T.TelBuf->tryWrite({"vm.thread", "exit", Ticks, Ticks, 0,
                      static_cast<int64_t>(T.Id),
                      threadStateName(T.State)});
  Telemetry::global().streamer().retireThreadBuffer(T.TelBuf);
  T.TelBuf = nullptr;
}

VMThread *Scheduler::findThread(ThreadId Id) {
  for (auto &T : Threads)
    if (T->Id == Id)
      return T.get();
  return nullptr;
}

void Scheduler::setTicks(uint64_t Tick) {
  assert(Tick >= Ticks && "virtual time cannot go backwards");
  Ticks = Tick;
}

void Scheduler::unparkAll() {
  for (auto &T : Threads)
    if (T->State == ThreadState::Parked)
      T->State = ThreadState::Runnable;
}

bool Scheduler::allAtSafePoints() const {
  for (const auto &T : Threads)
    if (!T->atSafePoint())
      return false;
  return true;
}

bool Scheduler::hasLiveApplicationThreads() const {
  for (const auto &T : Threads)
    if (!T->Daemon && !T->stopped())
      return true;
  return false;
}

bool Scheduler::anyRunnable() const {
  for (const auto &T : Threads)
    if (T->State == ThreadState::Runnable)
      return true;
  return false;
}

uint64_t Scheduler::nextWakeTick() const {
  uint64_t Next = std::numeric_limits<uint64_t>::max();
  for (const auto &T : Threads) {
    if (T->State == ThreadState::Sleeping ||
        T->State == ThreadState::BlockedRecv)
      Next = std::min(Next, T->WakeTick);
  }
  return Next;
}

void Scheduler::wakeReadyThreads() {
  for (auto &T : Threads) {
    if ((T->State == ThreadState::Sleeping ||
         T->State == ThreadState::BlockedRecv) &&
        T->WakeTick <= Ticks)
      T->State = ThreadState::Runnable;
  }
}

VMThread *Scheduler::pickNext() {
  if (Threads.empty())
    return nullptr;
  for (size_t Tried = 0; Tried < Threads.size(); ++Tried) {
    VMThread *T = Threads[NextIndex % Threads.size()].get();
    NextIndex = (NextIndex + 1) % Threads.size();
    if (T->State == ThreadState::Runnable)
      return T;
  }
  return nullptr;
}
