#include "threads/Scheduler.h"

#include "support/Error.h"
#include "support/Telemetry.h"

#include <cassert>
#include <limits>

using namespace jvolve;

void Scheduler::noteSafePointReached() {
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.counter(metrics::SchedSafePoints).inc();
  Tel.histogram(metrics::SchedSafePointWaitTicks)
      .record(static_cast<double>(Ticks - YieldRequestTick));
}

VMThread &Scheduler::spawn(const std::string &Name, bool Daemon) {
  auto T = std::make_unique<VMThread>();
  T->Id = NextId++;
  T->Name = Name;
  T->Daemon = Daemon;
  Threads.push_back(std::move(T));
  return *Threads.back();
}

VMThread *Scheduler::findThread(ThreadId Id) {
  for (auto &T : Threads)
    if (T->Id == Id)
      return T.get();
  return nullptr;
}

void Scheduler::setTicks(uint64_t Tick) {
  assert(Tick >= Ticks && "virtual time cannot go backwards");
  Ticks = Tick;
}

void Scheduler::unparkAll() {
  for (auto &T : Threads)
    if (T->State == ThreadState::Parked)
      T->State = ThreadState::Runnable;
}

bool Scheduler::allAtSafePoints() const {
  for (const auto &T : Threads)
    if (!T->atSafePoint())
      return false;
  return true;
}

bool Scheduler::hasLiveApplicationThreads() const {
  for (const auto &T : Threads)
    if (!T->Daemon && !T->stopped())
      return true;
  return false;
}

bool Scheduler::anyRunnable() const {
  for (const auto &T : Threads)
    if (T->State == ThreadState::Runnable)
      return true;
  return false;
}

uint64_t Scheduler::nextWakeTick() const {
  uint64_t Next = std::numeric_limits<uint64_t>::max();
  for (const auto &T : Threads) {
    if (T->State == ThreadState::Sleeping ||
        T->State == ThreadState::BlockedRecv)
      Next = std::min(Next, T->WakeTick);
  }
  return Next;
}

void Scheduler::wakeReadyThreads() {
  for (auto &T : Threads) {
    if ((T->State == ThreadState::Sleeping ||
         T->State == ThreadState::BlockedRecv) &&
        T->WakeTick <= Ticks)
      T->State = ThreadState::Runnable;
  }
}

VMThread *Scheduler::pickNext() {
  if (Threads.empty())
    return nullptr;
  for (size_t Tried = 0; Tried < Threads.size(); ++Tried) {
    VMThread *T = Threads[NextIndex % Threads.size()].get();
    NextIndex = (NextIndex + 1) % Threads.size();
    if (T->State == ThreadState::Runnable)
      return T;
  }
  return nullptr;
}
