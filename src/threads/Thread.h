//===----------------------------------------------------------------------===//
///
/// \file
/// Green threads: activation stacks of frames plus scheduling state.
///
/// MiniVM threads are cooperative: they run until their quantum expires or
/// until they block, and they stop at *yield points* (method calls, method
/// returns, and loop back edges) whenever the VM requests a yield — exactly
/// the safe-point mechanism Jikes RVM uses for GC and thread scheduling,
/// which Jvolve piggybacks on (paper §3.2).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_THREADS_THREAD_H
#define JVOLVE_THREADS_THREAD_H

#include "exec/CompiledMethod.h"
#include "runtime/Ids.h"
#include "runtime/Slot.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace jvolve {

class ThreadEventBuffer;

/// One activation record.
struct Frame {
  std::shared_ptr<CompiledMethod> Code;
  MethodId Method = InvalidMethodId;
  uint32_t Pc = 0;
  std::vector<Slot> Locals;
  std::vector<Slot> Stack;
  /// Set by the DSU layer: when this frame returns, the bridge code fires
  /// and the update process restarts (paper §3.2, return barriers).
  bool ReturnBarrier = false;
};

/// Scheduling state. Every state other than Runnable implies the thread is
/// stopped at a VM safe point (blocked threads block only inside intrinsic
/// calls, which sit at yield points).
enum class ThreadState : uint8_t {
  Runnable,      ///< ready to execute (possibly mid-quantum)
  Parked,        ///< stopped at a yield point because a yield was requested
  Sleeping,      ///< waiting for the virtual clock to reach WakeTick
  BlockedAccept, ///< waiting for a connection on BlockedPort
  BlockedRecv,   ///< waiting for the next request on BlockedConn
  Finished,      ///< outermost frame returned
  Trapped,       ///< runtime error (null deref, cast failure, OOM, ...)
};

/// Stable state name for diagnostics (quiescence reports, traces).
inline const char *threadStateName(ThreadState S) {
  switch (S) {
  case ThreadState::Runnable: return "runnable";
  case ThreadState::Parked: return "parked";
  case ThreadState::Sleeping: return "sleeping";
  case ThreadState::BlockedAccept: return "blocked-accept";
  case ThreadState::BlockedRecv: return "blocked-recv";
  case ThreadState::Finished: return "finished";
  case ThreadState::Trapped: return "trapped";
  }
  return "unknown";
}

/// A green thread.
struct VMThread {
  ThreadId Id = 0;
  std::string Name;
  /// Daemon threads do not keep the VM alive (server accept loops).
  bool Daemon = false;

  ThreadState State = ThreadState::Runnable;
  std::vector<Frame> Frames;

  uint64_t WakeTick = 0;  ///< Sleeping / BlockedRecv wake-up time
  int BlockedPort = -1;   ///< BlockedAccept
  int BlockedConn = -1;   ///< BlockedRecv
  std::string TrapMessage;

  /// Last CodeVersionManager epoch this thread observed. Threads resume
  /// only at yield points (call entry / loop back edges / returns), so the
  /// scheduler comparing this against the manager's epoch before each
  /// quantum *is* the per-method active-version poll — no flag test inside
  /// the hot interpreter loop (see dsu/CodeVersion.h).
  uint64_t CodeEpoch = 0;

  /// Value returned by the outermost frame (tests and callStatic use this).
  Slot ExitValue;
  bool HasExitValue = false;

  /// VM-internal worker body (e.g. the lazy-transform drainer): instead of
  /// interpreting Frames, the scheduler calls this with a tick budget each
  /// quantum. The body must consume at least one tick per call while the
  /// thread stays Runnable and set State itself when done. NativeWork
  /// threads have no frames, so they never pin a dynamic update.
  std::function<uint64_t(VMThread &, uint64_t)> NativeWork;

  /// This thread's streaming-telemetry write buffer (see
  /// support/TelemetryStream.h): registered at spawn while a session is
  /// open (or lazily at the first quantum after one opens), retired at
  /// thread death. Owned by the TelemetryStreamer, never by the thread.
  ThreadEventBuffer *TelBuf = nullptr;

  bool stopped() const {
    return State == ThreadState::Finished || State == ThreadState::Trapped;
  }

  /// True when the thread is at a VM safe point (not actively running).
  bool atSafePoint() const { return State != ThreadState::Runnable; }
};

} // namespace jvolve

#endif // JVOLVE_THREADS_THREAD_H
