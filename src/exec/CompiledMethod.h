//===----------------------------------------------------------------------===//
///
/// \file
/// The "machine code" of MiniVM: quickened instruction arrays.
///
/// The compiler resolves every symbolic reference in bytecode to a numeric
/// value: field accesses to hard-coded byte offsets, static accesses to
/// (class id, slot) pairs, virtual calls to TIB slots, direct calls to
/// method ids. This mirrors how the Jikes RVM JIT hard-codes offsets into
/// machine code (paper §3.1) — and it is precisely why a class update must
/// invalidate compiled methods that reference the updated class (category
/// (2), "indirect method updates"), even when their bytecode is unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_EXEC_COMPILEDMETHOD_H
#define JVOLVE_EXEC_COMPILEDMETHOD_H

#include "runtime/Ids.h"

#include <cstdint>
#include <vector>

namespace jvolve {

/// Resolved ("quickened") opcodes.
enum class ROp : uint8_t {
  NopOp,
  ConstI,    ///< push A
  ConstStr,  ///< push new String for string-table id A
  ConstNull, ///< push null
  LoadSlot,  ///< push local A
  StoreSlot, ///< pop into local A
  IAdd, ISub, IMul, IDiv, IRem, INeg,
  Dup, Pop,
  Jump, ///< A = resolved target index
  BrEqZ, BrNeZ, BrLtZ, BrGeZ, BrGtZ, BrLeZ,
  BrICmpEq, BrICmpNe, BrICmpLt, BrICmpGe, BrICmpGt, BrICmpLe,
  BrNull, BrNonNull, BrAEq, BrANe,
  NewObj,     ///< A = class id
  GetFieldI,  ///< A = byte offset
  GetFieldR,  ///< A = byte offset
  PutFieldI,  ///< A = byte offset
  PutFieldR,  ///< A = byte offset
  GetStaticI, ///< A = class id, B = statics slot
  GetStaticR,
  PutStaticI,
  PutStaticR,
  InstanceOfOp, ///< A = class id
  CheckCastOp,  ///< A = class id
  CallVirt,     ///< A = TIB slot, B = arg count including receiver
  CallStatic,   ///< A = method id, B = arg count
  CallSpecial,  ///< A = method id, B = arg count including receiver
  NewArr,       ///< A = array class id
  ALoadElem, AStoreElem, ArrLen,
  RetVoid, RetI, RetA,
  Intr, ///< A = intrinsic id
};

/// One resolved instruction.
struct RInstr {
  ROp Op;
  int64_t A = 0;
  int32_t B = 0;
  /// Originating bytecode index in the *top-level* method, used by on-stack
  /// replacement. In baseline code this equals the instruction index (the
  /// translation is 1:1); inside inlined regions it is the call-site index.
  int32_t Bc = 0;
};

/// Compilation tiers of the adaptive system.
enum class Tier : uint8_t {
  Baseline, ///< 1:1 translation, no inlining; OSR-capable
  Opt,      ///< inlines small direct calls; not OSR-capable (paper §3.2)
};

/// A compiled method body plus the dependence metadata DSU needs.
struct CompiledMethod {
  MethodId Method = InvalidMethodId;
  Tier T = Tier::Baseline;
  std::vector<RInstr> Code;
  uint16_t NumLocals = 0; ///< caller locals plus inlined callees' locals

  /// Classes whose layout/TIB/statics this code hard-codes. An update to
  /// any of them invalidates this code.
  std::vector<ClassId> ReferencedClasses;

  /// Methods whose bodies were inlined here. An update to any of them makes
  /// this method restricted during an update (paper §3.2).
  std::vector<MethodId> Inlined;

  /// True when compiled for the JDrums/DVM-style indirection ablation mode:
  /// every field access performs an extra up-to-dateness check.
  bool IndirectionChecks = false;

  /// True while a lazy update is draining: object-access paths run the
  /// lazy-transform read barrier. Cleared (quickening retirement) on every
  /// compiled method once the LazyTransformEngine drains, so steady-state
  /// code is bit-identical to code that never saw a lazy update.
  bool LazyBarriers = false;

  /// Set by the CodeVersionManager (dsu/CodeVersion.h) when a versioned
  /// body-only install replaced this body: frames still holding this code
  /// finish on it (their shared_ptr keeps it alive), but new invocations
  /// dispatch to the active version. The interpreter reports a frame's
  /// return through a superseded body so the manager's stale-frame gauge
  /// can drain to zero — the rejit-generation bookkeeping.
  bool Superseded = false;

  bool references(ClassId Id) const {
    for (ClassId C : ReferencedClasses)
      if (C == Id)
        return true;
    return false;
  }

  bool inlined(MethodId Id) const {
    for (MethodId M : Inlined)
      if (M == Id)
        return true;
    return false;
  }
};

} // namespace jvolve

#endif // JVOLVE_EXEC_COMPILEDMETHOD_H
