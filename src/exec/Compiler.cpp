#include "exec/Compiler.h"

#include "bytecode/Builtins.h"
#include "support/Error.h"
#include "support/Telemetry.h"

#include <cassert>

using namespace jvolve;

bool Compiler::shouldInline(MethodId Callee, Tier T, unsigned Depth,
                            const std::vector<MethodId> &InlineStack) const {
  if (T != Tier::Opt || Depth >= Opts.MaxInlineDepth)
    return false;
  const RtMethod &M = Registry.method(Callee);
  if (M.Obsolete || !M.Def || M.Def->Code.size() > Opts.MaxInlineCodeLen)
    return false;
  for (MethodId Open : InlineStack)
    if (Open == Callee)
      return false; // direct or mutual recursion
  return true;
}

size_t Compiler::emitBody(const MethodDef &Def, uint16_t LocalBase, Tier T,
                          unsigned Depth, int32_t TopLevelBc,
                          std::vector<MethodId> &InlineStack,
                          EmitContext &Ctx) {
  std::vector<RInstr> &Out = Ctx.Out->Code;
  size_t Start = Out.size();

  std::vector<size_t> BcToOut(Def.Code.size(), 0);
  std::vector<std::pair<size_t, size_t>> Fixups; ///< (out index, bc target)
  std::vector<size_t> ReturnJumps; ///< out indices of inlined-return jumps

  auto ClassIdOf = [&](const std::string &Name) {
    ClassId Id = Registry.idOf(Name);
    if (Id == InvalidClassId)
      fatalError("compiler: unknown class '" + Name + "' (verifier bypassed?)");
    return Id;
  };
  auto SplitSym = [&](const std::string &Sym, std::string &ClassName,
                      std::string &Member) {
    size_t Dot = Sym.find('.');
    assert(Dot != std::string::npos && "verified code has well-formed syms");
    ClassName = Sym.substr(0, Dot);
    Member = Sym.substr(Dot + 1);
  };

  for (size_t Bc = 0; Bc < Def.Code.size(); ++Bc) {
    BcToOut[Bc] = Out.size();
    const Instr &I = Def.Code[Bc];
    int32_t RecBc =
        Depth == 0 ? static_cast<int32_t>(Bc) : TopLevelBc;
    auto Emit = [&](ROp Op, int64_t A = 0, int32_t B = 0) {
      Out.push_back({Op, A, B, RecBc});
    };

    switch (I.Op) {
    case Opcode::Nop:
      Emit(ROp::NopOp);
      break;
    case Opcode::IConst:
      Emit(ROp::ConstI, I.IVal);
      break;
    case Opcode::SConst:
      Emit(ROp::ConstStr, Strings.intern(I.Str));
      break;
    case Opcode::NullConst:
      Emit(ROp::ConstNull);
      break;
    case Opcode::Load:
      Emit(ROp::LoadSlot, LocalBase + I.IVal);
      break;
    case Opcode::Store:
      Emit(ROp::StoreSlot, LocalBase + I.IVal);
      break;
    case Opcode::IAdd: Emit(ROp::IAdd); break;
    case Opcode::ISub: Emit(ROp::ISub); break;
    case Opcode::IMul: Emit(ROp::IMul); break;
    case Opcode::IDiv: Emit(ROp::IDiv); break;
    case Opcode::IRem: Emit(ROp::IRem); break;
    case Opcode::INeg: Emit(ROp::INeg); break;
    case Opcode::Dup: Emit(ROp::Dup); break;
    case Opcode::Pop: Emit(ROp::Pop); break;
    case Opcode::Goto:
      Fixups.emplace_back(Out.size(), static_cast<size_t>(I.IVal));
      Emit(ROp::Jump, -1);
      break;
    case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt:
    case Opcode::IfGe: case Opcode::IfGt: case Opcode::IfLe:
    case Opcode::IfICmpEq: case Opcode::IfICmpNe: case Opcode::IfICmpLt:
    case Opcode::IfICmpGe: case Opcode::IfICmpGt: case Opcode::IfICmpLe:
    case Opcode::IfNull: case Opcode::IfNonNull:
    case Opcode::IfACmpEq: case Opcode::IfACmpNe: {
      static_assert(static_cast<int>(ROp::BrANe) - static_cast<int>(ROp::BrEqZ) ==
                        static_cast<int>(Opcode::IfACmpNe) -
                            static_cast<int>(Opcode::IfEq),
                    "branch opcode blocks must stay parallel");
      ROp Op = static_cast<ROp>(static_cast<int>(ROp::BrEqZ) +
                                (static_cast<int>(I.Op) -
                                 static_cast<int>(Opcode::IfEq)));
      Fixups.emplace_back(Out.size(), static_cast<size_t>(I.IVal));
      Emit(Op, -1);
      break;
    }
    case Opcode::New: {
      ClassId Id = ClassIdOf(I.Sym);
      Ctx.RefClasses.insert(Id);
      Emit(ROp::NewObj, Id);
      break;
    }
    case Opcode::GetField: case Opcode::PutField: {
      std::string ClassName, FieldName;
      SplitSym(I.Sym, ClassName, FieldName);
      ClassId Id = ClassIdOf(ClassName);
      const RtField *F = Registry.resolveInstanceField(Id, FieldName);
      if (!F)
        fatalError("compiler: unknown field " + I.Sym);
      Ctx.RefClasses.insert(Id);
      bool IsGet = I.Op == Opcode::GetField;
      ROp Op = IsGet ? (F->IsRef ? ROp::GetFieldR : ROp::GetFieldI)
                     : (F->IsRef ? ROp::PutFieldR : ROp::PutFieldI);
      Emit(Op, F->Offset);
      break;
    }
    case Opcode::GetStatic: case Opcode::PutStatic: {
      std::string ClassName, FieldName;
      SplitSym(I.Sym, ClassName, FieldName);
      ClassId Named = ClassIdOf(ClassName);
      ClassId Declaring = InvalidClassId;
      RtField *F = Registry.resolveStaticField(Named, FieldName, &Declaring);
      if (!F)
        fatalError("compiler: unknown static field " + I.Sym);
      Ctx.RefClasses.insert(Named);
      Ctx.RefClasses.insert(Declaring);
      bool IsGet = I.Op == Opcode::GetStatic;
      ROp Op = IsGet ? (F->IsRef ? ROp::GetStaticR : ROp::GetStaticI)
                     : (F->IsRef ? ROp::PutStaticR : ROp::PutStaticI);
      Emit(Op, Declaring, static_cast<int32_t>(F->Offset));
      break;
    }
    case Opcode::InstanceOf: {
      ClassId Id = ClassIdOf(I.Sym);
      Ctx.RefClasses.insert(Id);
      Emit(ROp::InstanceOfOp, Id);
      break;
    }
    case Opcode::CheckCast: {
      ClassId Id = ClassIdOf(I.Sym);
      Ctx.RefClasses.insert(Id);
      Emit(ROp::CheckCastOp, Id);
      break;
    }
    case Opcode::InvokeVirtual: {
      std::string ClassName, MethodName;
      SplitSym(I.Sym, ClassName, MethodName);
      ClassId Id = ClassIdOf(ClassName);
      Ctx.RefClasses.insert(Id);
      const RtClass &C = Registry.cls(Id);
      auto It = C.VTableIndex.find(MethodName + I.Sig);
      if (It == C.VTableIndex.end())
        fatalError("compiler: no TIB slot for " + I.Sym + I.Sig);
      int NArgs = static_cast<int>(
                      MethodSignature::parse(I.Sig).Params.size()) + 1;
      Emit(ROp::CallVirt, It->second, NArgs);
      break;
    }
    case Opcode::InvokeStatic: case Opcode::InvokeSpecial: {
      std::string ClassName, MethodName;
      SplitSym(I.Sym, ClassName, MethodName);
      ClassId Id = ClassIdOf(ClassName);
      Ctx.RefClasses.insert(Id);
      MethodId Callee = Registry.resolveMethod(Id, MethodName, I.Sig);
      if (Callee == InvalidMethodId)
        fatalError("compiler: unknown method " + I.Sym + I.Sig);
      bool Instance = I.Op == Opcode::InvokeSpecial;
      int NArgs = static_cast<int>(
                      MethodSignature::parse(I.Sig).Params.size()) +
                  (Instance ? 1 : 0);

      if (shouldInline(Callee, T, Depth, InlineStack)) {
        const RtMethod &CalleeM = Registry.method(Callee);
        Ctx.InlinedMethods.insert(Callee);
        uint16_t NewBase = Ctx.NextLocal;
        Ctx.NextLocal =
            static_cast<uint16_t>(Ctx.NextLocal + CalleeM.Def->NumLocals);
        // Pop arguments into the callee's parameter slots. The last
        // argument is on top of the stack, so store highest slot first.
        for (int ArgSlot = NArgs - 1; ArgSlot >= 0; --ArgSlot)
          Emit(ROp::StoreSlot, NewBase + ArgSlot);
        InlineStack.push_back(Callee);
        emitBody(*CalleeM.Def, NewBase, T, Depth + 1, RecBc, InlineStack,
                 Ctx);
        InlineStack.pop_back();
        break;
      }
      Emit(Instance ? ROp::CallSpecial : ROp::CallStatic, Callee, NArgs);
      break;
    }
    case Opcode::NewArray: {
      Type Elem = Type::parse(I.Sig);
      // Record the base element class: code embedding an array allocation
      // depends on that class's identity just like New does (mirrors
      // Upt::referencedClasses).
      Type Base = Elem;
      while (Base.isArray())
        Base = Base.elementType();
      if (Base.isRef())
        Ctx.RefClasses.insert(ClassIdOf(Base.className()));
      ClassId ArrId = Registry.arrayClassOf(Elem);
      Emit(ROp::NewArr, ArrId);
      break;
    }
    case Opcode::ALoad: Emit(ROp::ALoadElem); break;
    case Opcode::AStore: Emit(ROp::AStoreElem); break;
    case Opcode::ArrayLength: Emit(ROp::ArrLen); break;
    case Opcode::Return: case Opcode::IReturn: case Opcode::AReturn:
      if (Depth == 0) {
        Emit(I.Op == Opcode::Return
                 ? ROp::RetVoid
                 : (I.Op == Opcode::IReturn ? ROp::RetI : ROp::RetA));
      } else {
        // An inlined return jumps past the inlined body; any return value
        // is already on the operand stack.
        ReturnJumps.push_back(Out.size());
        Emit(ROp::Jump, -1);
      }
      break;
    case Opcode::Intrinsic:
      Emit(ROp::Intr, I.IVal);
      break;
    }
  }

  // Resolve intra-body branches.
  for (const auto &[OutIdx, BcTarget] : Fixups) {
    assert(BcTarget < BcToOut.size() && "verified branch target");
    Out[OutIdx].A = static_cast<int64_t>(BcToOut[BcTarget]);
  }
  // Inlined returns land on the instruction following the inlined body.
  for (size_t OutIdx : ReturnJumps)
    Out[OutIdx].A = static_cast<int64_t>(Out.size());

  return Start;
}

std::shared_ptr<CompiledMethod> Compiler::compile(MethodId Method, Tier T) {
  const RtMethod &M = Registry.method(Method);
  if (!M.Def)
    fatalError("compiling method without bytecode: " + M.qualifiedName());

  auto CM = std::make_shared<CompiledMethod>();
  CM->Method = Method;
  CM->T = T;
  CM->IndirectionChecks = Opts.IndirectionChecks;
  CM->LazyBarriers = Opts.EmitLazyBarriers;

  EmitContext Ctx;
  Ctx.Out = CM.get();
  Ctx.NextLocal = M.Def->NumLocals;

  std::vector<MethodId> InlineStack = {Method};
  emitBody(*M.Def, /*LocalBase=*/0, T, /*Depth=*/0, /*TopLevelBc=*/0,
           InlineStack, Ctx);

  CM->NumLocals = Ctx.NextLocal;
  CM->ReferencedClasses.assign(Ctx.RefClasses.begin(), Ctx.RefClasses.end());
  CM->Inlined.assign(Ctx.InlinedMethods.begin(), Ctx.InlinedMethods.end());

  assert((T != Tier::Baseline || CM->Code.size() == M.Def->Code.size()) &&
         "baseline translation must be 1:1 for OSR");
  ++NumCompilations;
  if (Telemetry::isEnabled())
    Telemetry::global()
        .counter(T == Tier::Baseline ? metrics::JitCompilationsBaseline
                                     : metrics::JitCompilationsOpt)
        .inc();
  return CM;
}
