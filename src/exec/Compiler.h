//===----------------------------------------------------------------------===//
///
/// \file
/// The quickening compiler ("JIT") of MiniVM.
///
/// Two tiers, like Jikes RVM: the *baseline* tier translates bytecode 1:1
/// into resolved instructions (so on-stack replacement can map program
/// counters directly), and the *opt* tier additionally inlines small
/// directly bound callees (InvokeStatic / InvokeSpecial), possibly several
/// levels deep. Both tiers hard-code field offsets, statics slots, TIB
/// slots and method ids — the compiled-representation dependence that gives
/// rise to category-(2) restricted methods during an update.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_EXEC_COMPILER_H
#define JVOLVE_EXEC_COMPILER_H

#include "exec/CompiledMethod.h"
#include "runtime/ClassRegistry.h"
#include "runtime/StringTable.h"

#include <memory>
#include <set>

namespace jvolve {

/// Compiles methods against the current state of the class registry.
class Compiler {
public:
  struct Options {
    /// Compile field accesses with JDrums/DVM-style indirection checks
    /// (the steady-state-overhead ablation; paper §5).
    bool IndirectionChecks = false;
    /// Compile object accesses with the lazy-transform read barrier. Only
    /// set while a LazyTransformEngine is draining; the engine flips it
    /// back off at barrier retirement.
    bool EmitLazyBarriers = false;
    /// Callees with at most this many bytecode instructions are inlined by
    /// the opt tier.
    unsigned MaxInlineCodeLen = 16;
    /// Maximum inlining depth ("multiple levels down a hot call chain").
    unsigned MaxInlineDepth = 3;
  };

  Compiler(ClassRegistry &Registry, StringTable &Strings, Options Opts)
      : Registry(Registry), Strings(Strings), Opts(Opts) {}
  Compiler(ClassRegistry &Registry, StringTable &Strings)
      : Compiler(Registry, Strings, Options()) {}

  /// Compiles \p Method at \p T. Aborts on unresolvable references — the
  /// verifier guarantees they resolve, so failure is a VM bug.
  std::shared_ptr<CompiledMethod> compile(MethodId Method, Tier T);

  const Options &options() const { return Opts; }

  /// Arms/retires the lazy-transform barrier for *future* compilations;
  /// the LazyTransformEngine patches already-compiled methods itself.
  void setEmitLazyBarriers(bool V) { Opts.EmitLazyBarriers = V; }

  /// Total number of compilations performed (benchmark counter).
  uint64_t compilationsPerformed() const { return NumCompilations; }

private:
  struct EmitContext {
    CompiledMethod *Out = nullptr;
    std::set<ClassId> RefClasses;
    std::set<MethodId> InlinedMethods;
    uint16_t NextLocal = 0;
  };

  /// Emits \p Def's body into \p Ctx. \p LocalBase is the slot offset of
  /// the method's locals, \p TopLevelBc the Bc index recorded for inlined
  /// code, and \p InlineStack the methods currently being inlined (for
  /// recursion detection). \returns the index of the first emitted
  /// instruction.
  size_t emitBody(const MethodDef &Def, uint16_t LocalBase, Tier T,
                  unsigned Depth, int32_t TopLevelBc,
                  std::vector<MethodId> &InlineStack, EmitContext &Ctx);

  bool shouldInline(MethodId Callee, Tier T, unsigned Depth,
                    const std::vector<MethodId> &InlineStack) const;

  ClassRegistry &Registry;
  StringTable &Strings;
  Options Opts;
  uint64_t NumCompilations = 0;
};

} // namespace jvolve

#endif // JVOLVE_EXEC_COMPILER_H
