#include "support/TelemetryStream.h"

#include "support/Stats.h"
#include "support/TablePrinter.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

using namespace jvolve;

//===----------------------------------------------------------------------===//
// ThreadEventBuffer
//===----------------------------------------------------------------------===//

ThreadEventBuffer::ThreadEventBuffer(uint64_t InTid, std::string InName,
                                     size_t Capacity)
    : Tid(InTid), Name(std::move(InName)),
      Ring(std::max<size_t>(Capacity, 2)) {}

void ThreadEventBuffer::recycle(uint64_t NewTid, std::string NewName) {
  Tid = NewTid;
  Name = std::move(NewName);
  Head.store(0, std::memory_order_relaxed);
  Tail.store(0, std::memory_order_relaxed);
  Seq.store(0, std::memory_order_relaxed);
  Dropped.store(0, std::memory_order_relaxed);
  Retired.store(false, std::memory_order_relaxed);
  DroppedReported = 0;
}

bool ThreadEventBuffer::tryWrite(TraceEvent E) {
  // Every attempt consumes a sequence number — a dropped event is a gap
  // in the output, never a silent renumbering.
  uint64_t S = Seq.fetch_add(1, std::memory_order_relaxed) + 1;
  uint64_t H = Head.load(std::memory_order_relaxed);
  uint64_t T = Tail.load(std::memory_order_acquire);
  if (H - T >= Ring.size()) {
    Dropped.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  E.Tid = Tid;
  E.Seq = S;
  Ring[H % Ring.size()] = std::move(E);
  Head.store(H + 1, std::memory_order_release);
  return true;
}

size_t ThreadEventBuffer::drainInto(std::vector<TraceEvent> &Out,
                                    size_t Max) {
  uint64_t T = Tail.load(std::memory_order_relaxed);
  uint64_t H = Head.load(std::memory_order_acquire);
  size_t N = 0;
  while (T < H && N < Max) {
    Out.push_back(std::move(Ring[T % Ring.size()]));
    ++T;
    ++N;
  }
  if (N)
    Tail.store(T, std::memory_order_release);
  return N;
}

//===----------------------------------------------------------------------===//
// TelemetrySession
//===----------------------------------------------------------------------===//

TelemetrySession::TelemetrySession(TelemetrySessionConfig InCfg)
    : Cfg(std::move(InCfg)) {
  if (!Cfg.Path.empty())
    Sink = std::make_unique<TraceSink>(Cfg.Path);
  if (Cfg.BufferBudgetEvents == 0)
    Cfg.BufferBudgetEvents = 1;
}

TelemetrySession::~TelemetrySession() { flush(); }

bool TelemetrySession::passes(const TraceEvent &E) const {
  if (Cfg.Prefixes.empty())
    return true;
  for (const std::string &P : Cfg.Prefixes)
    if (E.Name.compare(0, P.size(), P) == 0)
      return true;
  return false;
}

void TelemetrySession::append(const TraceEvent &E) {
  if (Sink) {
    Sink->emit(E);
    ++NumWritten;
    return;
  }
  std::lock_guard<std::mutex> L(BufMu);
  if (Buffered.size() >= Cfg.BufferBudgetEvents) {
    Buffered.pop_front(); // budget: oldest out, and counted
    ++NumEvicted;
  }
  Buffered.push_back(E);
  ++NumWritten;
}

void TelemetrySession::acceptBlock(const EventBlock &B) {
  if (B.DroppedDelta > 0) {
    // The loss is part of the stream: a gap record ahead of the block,
    // never subject to the session filter.
    NumGapDrops += B.DroppedDelta;
    TraceEvent Gap;
    Gap.Name = "telemetry.block";
    Gap.Phase = "gap";
    Gap.Tid = B.Tid;
    Gap.Value = static_cast<int64_t>(B.DroppedDelta);
    Gap.Detail = B.ThreadName + ": dropped " +
                 std::to_string(B.DroppedDelta) + " events before seq " +
                 std::to_string(B.FirstSeq);
    append(Gap);
  }
  for (const TraceEvent &E : B.Events) {
    if (passes(E))
      append(E);
    else
      ++NumFiltered;
  }
}

void TelemetrySession::flush() {
  if (Sink)
    Sink->flush();
}

std::vector<TraceEvent> TelemetrySession::drainBuffered() {
  std::lock_guard<std::mutex> L(BufMu);
  std::vector<TraceEvent> Out(Buffered.begin(), Buffered.end());
  Buffered.clear();
  return Out;
}

//===----------------------------------------------------------------------===//
// TelemetryStreamer
//===----------------------------------------------------------------------===//

namespace {
/// The OS thread's own buffer, registered on first emit and retired when
/// the thread exits (the destructor runs at thread teardown; the writer
/// frees the buffer after its final drain).
struct NativeBufferTls {
  ThreadEventBuffer *Buf = nullptr;
  ~NativeBufferTls() {
    if (Buf) {
      Buf->markRetired();
      Buf = nullptr;
    }
  }
};
thread_local NativeBufferTls NativeTls;

/// The green-thread buffer events from this OS thread are attributed to
/// while the VM interpreter runs a quantum (VM::run brackets quanta with
/// setCurrentBuffer). Null outside a quantum — safe-point callbacks and
/// tool code fall back to the OS-thread buffer.
thread_local ThreadEventBuffer *CurrentGreenBuffer = nullptr;

/// Flushes every open session at process exit — the immortal registry
/// never destructs, so without this a short-lived run would lose the tail
/// of its trace (the pre-streaming TraceSink had exactly that bug).
void flushStreamerAtExit() {
  Telemetry &T = Telemetry::global();
  if (T.hasStreamer())
    T.streamer().flushAll();
}
} // namespace

TelemetryStreamer::TelemetryStreamer(Telemetry &Owner)
    : GDropped(&Owner.gauge(metrics::TelemetryDroppedTotal)),
      GAttempted(&Owner.gauge(metrics::TelemetryEventsAttempted)),
      GStreamed(&Owner.gauge(metrics::TelemetryEventsStreamed)),
      GBlocks(&Owner.gauge(metrics::TelemetryBlocksFlushed)),
      GSessions(&Owner.gauge(metrics::TelemetrySessionsOpened)),
      GTraceDropped(&Owner.gauge(metrics::TelemetryTraceDropped)) {
  std::atexit(&flushStreamerAtExit);
}

TelemetryStreamer::~TelemetryStreamer() {
  // Only reachable if the owning registry is ever torn down (it is not in
  // practice); stop the writer cleanly anyway.
  {
    std::lock_guard<std::mutex> L(Mu);
    if (!WriterRunning)
      return;
    StopRequested = true;
  }
  Cv.notify_all();
  Writer.join();
}

void TelemetryStreamer::setCurrentBuffer(ThreadEventBuffer *Buf) {
  CurrentGreenBuffer = Buf;
}

void TelemetryStreamer::setThreadBufferCapacity(size_t Events) {
  std::lock_guard<std::mutex> L(Mu);
  BufferCapacity = std::max<size_t>(Events, 2);
}

size_t TelemetryStreamer::threadBufferCapacity() const {
  std::lock_guard<std::mutex> L(Mu);
  return BufferCapacity;
}

ThreadEventBuffer *
TelemetryStreamer::takeBufferLocked(uint64_t Tid, std::string Name) {
  // Reuse a pooled ring at the current capacity; ring construction (a
  // vector of default TraceEvents) dominates the cost of a fresh buffer.
  for (size_t I = 0; I < FreePool.size(); ++I) {
    if (FreePool[I]->capacity() != BufferCapacity)
      continue;
    std::unique_ptr<ThreadEventBuffer> B = std::move(FreePool[I]);
    FreePool.erase(FreePool.begin() + static_cast<ptrdiff_t>(I));
    B->recycle(Tid, std::move(Name));
    Buffers.push_back(std::move(B));
    return Buffers.back().get();
  }
  Buffers.push_back(std::make_unique<ThreadEventBuffer>(
      Tid, std::move(Name), BufferCapacity));
  return Buffers.back().get();
}

ThreadEventBuffer *
TelemetryStreamer::acquireThreadBuffer(uint64_t Tid,
                                       const std::string &Name) {
  std::lock_guard<std::mutex> L(Mu);
  return takeBufferLocked(
      Tid, Name.empty() ? ("thread-" + std::to_string(Tid)) : Name);
}

void TelemetryStreamer::retireThreadBuffer(ThreadEventBuffer *Buf) {
  if (!Buf)
    return;
  Buf->markRetired();
  kick(); // let the writer run the final drain promptly
}

ThreadEventBuffer *TelemetryStreamer::nativeThreadBufferLocked() {
  // Bit 63 keeps OS-thread ids out of the green-thread id space.
  uint64_t Tid = (1ull << 63) | NextNativeTid++;
  return takeBufferLocked(
      Tid, "native-" + std::to_string(Tid & ~(1ull << 63)));
}

void TelemetryStreamer::write(TraceEvent E) {
  if (!active())
    return;
  ThreadEventBuffer *B = CurrentGreenBuffer;
  if (!B) {
    B = NativeTls.Buf;
    if (!B) {
      std::lock_guard<std::mutex> L(Mu);
      B = nativeThreadBufferLocked();
      NativeTls.Buf = B;
    }
  }
  B->tryWrite(std::move(E));
}

std::shared_ptr<TelemetrySession>
TelemetryStreamer::openSession(TelemetrySessionConfig Cfg) {
  auto S = std::make_shared<TelemetrySession>(std::move(Cfg));
  if (!S->ok())
    return nullptr;
  std::lock_guard<std::mutex> L(Mu);
  Sessions.push_back(S);
  ++NumOpened;
  NumSessions.store(Sessions.size(), std::memory_order_release);
  if (!WriterRunning) {
    StopRequested = false;
    Writer = std::thread([this] { writerLoop(); });
    WriterRunning = true;
  }
  return S;
}

void TelemetryStreamer::closeSession(
    const std::shared_ptr<TelemetrySession> &S) {
  std::unique_lock<std::mutex> L(Mu);
  auto It = std::find(Sessions.begin(), Sessions.end(), S);
  if (It == Sessions.end())
    return;
  // Final drain while the session is still attached, so it sees every
  // event emitted before this call; then it leaves with a complete file.
  drainPassLocked();
  S->flush();
  TraceDroppedRetired += S->sinkEventsDropped();
  Sessions.erase(std::find(Sessions.begin(), Sessions.end(), S));
  NumSessions.store(Sessions.size(), std::memory_order_release);
  publishMetricsLocked();
  if (Sessions.empty() && WriterRunning) {
    StopRequested = true;
    Cv.notify_all();
    L.unlock();
    Writer.join();
    L.lock();
    WriterRunning = false;
    StopRequested = false;
  }
}

void TelemetryStreamer::kick() {
  // Only the false->true edge notifies: a kick storm (every safe point
  // under a tight yield loop) costs one futex wake per writer pass, not
  // one per kick.
  if (!KickPending.exchange(true, std::memory_order_relaxed))
    Cv.notify_one();
}

void TelemetryStreamer::writerLoop() {
  // Adaptive pacing: drain every MinPeriod while events flow (the latency
  // bound), back off toward MaxPeriod across empty passes. Each timed
  // wakeup costs real CPU the observed VM is paying for — on a loaded
  // single-core host a tight period taxes the workload measurably — and
  // nothing needs millisecond drain latency: durability points
  // (closeSession, flushAll, atexit) drain synchronously regardless.
  // JVOLVE_TELEMETRY_PERIOD_MS overrides the floor.
  int MinPeriodMs = 20;
  if (const char *P = std::getenv("JVOLVE_TELEMETRY_PERIOD_MS"))
    MinPeriodMs = std::max(std::atoi(P), 1);
  const int MaxPeriodMs = std::max(MinPeriodMs, 100);
  int PeriodMs = MinPeriodMs;
  std::unique_lock<std::mutex> L(Mu);
  while (!StopRequested) {
    // Periodic pass (bounded event latency) plus kicks from safe points
    // and retirements. A missed notify costs at most one period.
    Cv.wait_for(L, std::chrono::milliseconds(PeriodMs), [&] {
      return StopRequested || KickPending.load(std::memory_order_relaxed);
    });
    if (StopRequested)
      break;
    bool Kicked = KickPending.exchange(false, std::memory_order_relaxed);
    uint64_t Before = Streamed.load(std::memory_order_relaxed);
    drainPassLocked(/*Forced=*/false);
    publishMetricsLocked();
    bool Drained = Streamed.load(std::memory_order_relaxed) != Before;
    PeriodMs = Drained || Kicked ? MinPeriodMs
                                 : std::min(PeriodMs * 2, MaxPeriodMs);
  }
  // Final pass: events emitted between the stop request and here still
  // reach the sessions being closed.
  drainPassLocked();
  publishMetricsLocked();
}

void TelemetryStreamer::drainPassLocked(bool Forced) {
  if (Forced) {
    // Durability point: whatever stall was injected is over — the caller
    // needs every event on disk (or counted dropped) before returning.
    StallPasses.store(0, std::memory_order_relaxed);
  } else if (StallPasses.load(std::memory_order_relaxed) > 0) {
    StallPasses.fetch_sub(1, std::memory_order_relaxed);
    StallsTaken.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::vector<TraceEvent> Scratch;
  for (size_t I = 0; I < Buffers.size();) {
    ThreadEventBuffer *B = Buffers[I].get();
    if (!Sessions.empty()) {
      Scratch.clear();
      B->drainInto(Scratch, static_cast<size_t>(-1));
      uint64_t Drops = B->dropped();
      uint64_t DropDelta = Drops - B->DroppedReported;
      if (!Scratch.empty() || DropDelta > 0) {
        EventBlock Blk;
        Blk.Tid = B->tid();
        Blk.ThreadName = B->name();
        Blk.DroppedDelta = DropDelta;
        if (!Scratch.empty()) {
          Blk.FirstSeq = Scratch.front().Seq;
          Blk.LastSeq = Scratch.back().Seq;
        }
        Blk.Events = std::move(Scratch);
        Scratch.clear();
        B->DroppedReported = Drops;
        Streamed.fetch_add(Blk.Events.size(), std::memory_order_relaxed);
        Blocks.fetch_add(1, std::memory_order_relaxed);
        for (auto &S : Sessions)
          S->acceptBlock(Blk);
      }
    }
    // Free a retired buffer only once fully drained and with all of its
    // drops surfaced — its totals move to the retired accumulators so
    // attempted == streamed + dropped survives the thread.
    if (B->retired() && B->empty() &&
        B->dropped() == B->DroppedReported) {
      RetiredAttempted.fetch_add(B->attempted(), std::memory_order_relaxed);
      RetiredDropped.fetch_add(B->dropped(), std::memory_order_relaxed);
      // Keep a few drained rings for the next thread spawn; the pool cap
      // bounds idle memory at capacity * kFreePoolMax events.
      constexpr size_t kFreePoolMax = 8;
      if (FreePool.size() < kFreePoolMax)
        FreePool.push_back(std::move(Buffers[I]));
      Buffers.erase(Buffers.begin() + static_cast<ptrdiff_t>(I));
      continue;
    }
    ++I;
  }
}

void TelemetryStreamer::flushAll() {
  std::lock_guard<std::mutex> L(Mu);
  drainPassLocked();
  for (auto &S : Sessions)
    S->flush();
  publishMetricsLocked();
}

uint64_t TelemetryStreamer::attemptedTotalLocked() const {
  uint64_t N = RetiredAttempted.load(std::memory_order_relaxed);
  for (const auto &B : Buffers)
    N += B->attempted();
  return N;
}

uint64_t TelemetryStreamer::droppedTotalLocked() const {
  uint64_t N = RetiredDropped.load(std::memory_order_relaxed);
  for (const auto &B : Buffers)
    N += B->dropped();
  return N;
}

uint64_t TelemetryStreamer::attemptedTotal() const {
  std::lock_guard<std::mutex> L(Mu);
  return attemptedTotalLocked();
}

uint64_t TelemetryStreamer::droppedTotal() const {
  std::lock_guard<std::mutex> L(Mu);
  return droppedTotalLocked();
}

void TelemetryStreamer::publishMetricsLocked() {
  GDropped->set(static_cast<int64_t>(droppedTotalLocked()));
  GAttempted->set(static_cast<int64_t>(attemptedTotalLocked()));
  GStreamed->set(
      static_cast<int64_t>(Streamed.load(std::memory_order_relaxed)));
  GBlocks->set(
      static_cast<int64_t>(Blocks.load(std::memory_order_relaxed)));
  GSessions->set(static_cast<int64_t>(NumOpened));
  uint64_t SinkDrops = TraceDroppedRetired;
  for (const auto &S : Sessions)
    SinkDrops += S->sinkEventsDropped();
  GTraceDropped->set(static_cast<int64_t>(SinkDrops));
}

void TelemetryStreamer::publishMetrics() {
  std::lock_guard<std::mutex> L(Mu);
  publishMetricsLocked();
}

//===----------------------------------------------------------------------===//
// WindowAggregator
//===----------------------------------------------------------------------===//

void WindowAggregator::configure(uint64_t InWindowTicks,
                                 size_t InKeepWindows) {
  WindowTicks = InWindowTicks;
  KeepWindows = std::max<size_t>(InKeepWindows, 1);
  LastRoll = 0;
  NextRoll = InWindowTicks;
  LastSpan = InWindowTicks ? InWindowTicks : 1;
  Rolled = 0;
  Counters.clear();
  Hists.clear();
  CounterBind.clear();
  HistBind.clear();
  BoundCounters = BoundHists = 0;
}

void WindowAggregator::rebind(Telemetry &Tel) {
  CounterBind.clear();
  for (auto &[Name, C] : Tel.allCounters())
    CounterBind.emplace_back(C, &Counters[Name]);
  HistBind.clear();
  for (auto &[Name, H] : Tel.allHistograms())
    HistBind.emplace_back(H, &Hists[Name]);
  BoundCounters = Tel.numCounters();
  BoundHists = Tel.numHistograms();
}

void WindowAggregator::roll(uint64_t Now) {
  uint64_t Span = Now > LastRoll ? Now - LastRoll : 1;
  LastSpan = Span;
  Telemetry &Tel = Telemetry::global();
  // Metrics only ever register (handles are immortal), so the name-keyed
  // enumeration runs once per registry growth, not once per window.
  if (Tel.numCounters() != BoundCounters ||
      Tel.numHistograms() != BoundHists)
    rebind(Tel);
  for (auto &[C, PC] : CounterBind) {
    uint64_t V = C->value();
    // Telemetry::reset() moves values backwards; re-anchor instead of
    // recording a bogus giant delta.
    uint64_t Delta = V >= PC->PrevValue ? V - PC->PrevValue : 0;
    PC->PrevValue = V;
    PC->Deltas.push_back(Delta);
    while (PC->Deltas.size() > KeepWindows)
      PC->Deltas.pop_front();
  }
  for (auto &[H, PH] : HistBind) {
    Scratch.clear();
    H->samplesSince(PH->PrevSeen, Scratch);
    HistSeries S;
    S.LastCount = Scratch.size();
    S.LastRatePerKtick =
        1000.0 * static_cast<double>(Scratch.size()) /
        static_cast<double>(Span);
    if (!Scratch.empty()) {
      double Sum = 0;
      for (double V : Scratch)
        Sum += V;
      S.Mean = Sum / static_cast<double>(Scratch.size());
      std::sort(Scratch.begin(), Scratch.end());
      S.Max = Scratch.back();
      S.P50 = percentileOfSorted(Scratch, 50);
      S.P99 = percentileOfSorted(Scratch, 99);
    }
    S.Windows = PH->Last.Windows + 1;
    PH->Last = S;
  }
  ++Rolled;
  LastRoll = Now;
  NextRoll = Now + (WindowTicks ? WindowTicks : 1);
}

bool WindowAggregator::counterSeries(const std::string &Name,
                                     CounterSeries &Out) const {
  auto It = Counters.find(Name);
  if (It == Counters.end() || It->second.Deltas.empty())
    return false;
  const std::deque<uint64_t> &D = It->second.Deltas;
  Out.LastDelta = D.back();
  Out.LastRatePerKtick = 1000.0 * static_cast<double>(D.back()) /
                         static_cast<double>(LastSpan);
  Out.MinDelta = *std::min_element(D.begin(), D.end());
  Out.MaxDelta = *std::max_element(D.begin(), D.end());
  uint64_t Sum = 0;
  for (uint64_t V : D)
    Sum += V;
  Out.MeanDelta = static_cast<double>(Sum) / static_cast<double>(D.size());
  Out.Windows = D.size();
  return true;
}

bool WindowAggregator::histSeries(const std::string &Name,
                                  HistSeries &Out) const {
  auto It = Hists.find(Name);
  if (It == Hists.end() || It->second.Last.Windows == 0)
    return false;
  Out = It->second.Last;
  return true;
}

std::string WindowAggregator::table() const {
  TablePrinter TP;
  TP.setHeader({"metric", "last", "rate/ktick", "mean", "p50", "p99",
                "max", "windows"});
  for (const auto &[Name, PC] : Counters) {
    if (PC.Deltas.empty())
      continue;
    CounterSeries S;
    if (!counterSeries(Name, S) || (S.MaxDelta == 0 && PC.PrevValue == 0))
      continue; // a metric that never moved is noise in a live view
    TP.addRow({Name, std::to_string(S.LastDelta),
               TablePrinter::fmt(S.LastRatePerKtick, 3),
               TablePrinter::fmt(S.MeanDelta, 3), "", "",
               std::to_string(S.MaxDelta), std::to_string(S.Windows)});
  }
  for (const auto &[Name, PH] : Hists) {
    const HistSeries &S = PH.Last;
    if (S.Windows == 0 || (S.LastCount == 0 && PH.PrevSeen == 0))
      continue;
    TP.addRow({Name, std::to_string(S.LastCount),
               TablePrinter::fmt(S.LastRatePerKtick, 3),
               TablePrinter::fmt(S.Mean, 3), TablePrinter::fmt(S.P50, 3),
               TablePrinter::fmt(S.P99, 3), TablePrinter::fmt(S.Max, 3),
               std::to_string(S.Windows)});
  }
  return TP.render();
}
