//===----------------------------------------------------------------------===//
///
/// \file
/// Order statistics (median, quartiles) matching the paper's methodology:
/// "We ran this experiment 21 times and report the median and quartiles...
/// With 21 runs, the range between the quartiles serves as a 98% confidence
/// interval."
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_STATS_H
#define JVOLVE_SUPPORT_STATS_H

#include <cstddef>
#include <string>
#include <vector>

namespace jvolve {

/// Median and quartile summary of a sample set.
struct QuartileSummary {
  double Median = 0;
  double LowerQuartile = 0;
  double UpperQuartile = 0;

  /// Inter-quartile range, the paper's confidence-interval proxy.
  double iqr() const { return UpperQuartile - LowerQuartile; }

  /// Renders "median [lower..upper]" with \p Decimals fractional digits —
  /// the cell format the bench tables share.
  std::string str(int Decimals = 1) const;
};

/// Computes median and quartiles of \p Samples (which it copies and sorts).
/// An empty sample set yields an all-zero summary.
QuartileSummary summarizeQuartiles(std::vector<double> Samples);

/// Linear-interpolated \p P-th percentile (0..100) of \p Samples (which it
/// copies and sorts); 0 for an empty sample set. percentile(S, 50) equals
/// summarizeQuartiles(S).Median.
double percentile(std::vector<double> Samples, double P);

/// Same, but \p Sorted must already be ascending — the allocation-free
/// variant for callers that need several percentiles of one sample set
/// (sort once, query many).
double percentileOfSorted(const std::vector<double> &Sorted, double P);

/// Arithmetic mean; 0 for an empty sample set.
double mean(const std::vector<double> &Samples);

} // namespace jvolve

#endif // JVOLVE_SUPPORT_STATS_H
