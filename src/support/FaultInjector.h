//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the update transaction.
///
/// Every abort path of the five-step update algorithm is guarded by a named
/// *site*. Production code probes its site at the instrumented point; an
/// armed site makes the probe fire, and the code under test then fails
/// exactly as the real failure would (an UpdateError, or a deferred safe
/// point). Tests arm sites either deterministically — skip the first K
/// probes, fire the next N — or probabilistically from a seeded Rng, so
/// every rollback path is exercisable and reproducible.
///
/// Sites:
///   class-load             a class fails to load during install (step 4b)
///   transformer-nth-object the object transformer faults on the N-th object
///   transformer-cycle      a transformer cycle is detected (paper §3.4)
///   gc-alloc-exhaustion    to-space allocation fails mid-DSU-collection
///   safe-point-starvation  a safe-point attempt cannot park the threads
///   quiescence-watchdog-expiry  the safe-point deadline fires even when
///                          the threads would have quiesced in time
///   net-slow-client        a connection's inter-arrival gap stretches
///                          mid-update (drain/shed robustness)
///   lazy-drain-transformer the N-th background-drain transform of a lazy
///                          update faults after commit (degraded, no
///                          rollback possible)
///   canary-health-breach   a post-commit canary health check reports an
///                          SLO breach even though the telemetry is
///                          healthy (forces an automatic revert)
///   heap-alloc-nth         the N-th heap allocation fails once: inside an
///                          update transaction the allocation throws (the
///                          transaction rolls back); outside, the VM falls
///                          back to a forced collection and retries
///   bundle-truncated       the UpdateBundle arrives torn/truncated and
///                          must be rejected cleanly before any snapshot
///   telemetry-writer-stall the streaming-telemetry writer stalls for a
///                          few passes; producers must keep running and
///                          degrade to counted drops, never block
///   synth-transformer-field transformer synthesis emits a wrong field
///                          mapping (the source field does not exist), so
///                          the synthesized transformer throws when it
///                          first runs — rollback when eager, degraded
///                          when lazy
///   codeversion-install    a per-method versioned body install fails
///                          mid-chain; the manager unwinds the already-
///                          swapped methods of the batch so the prior
///                          active versions keep serving (no partial
///                          switch ever becomes observable)
///
/// The list above is generated from the same registry the code uses:
/// allSites()/allSiteNames() is the single source of truth for tool usage
/// strings, "unknown site" diagnostics, and the docs table.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_FAULTINJECTOR_H
#define JVOLVE_SUPPORT_FAULTINJECTOR_H

#include "support/Rng.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace jvolve {

/// Per-VM registry of armable fault sites.
class FaultInjector {
public:
  enum class Site : uint8_t {
    ClassLoad,
    TransformerNthObject,
    TransformerCycle,
    GcAllocExhaustion,
    SafePointStarvation,
    QuiescenceWatchdogExpiry,
    NetSlowClient,
    LazyDrainTransformer,
    CanaryHealthBreach,
    HeapAllocNth,
    BundleTruncated,
    TelemetryWriterStall,
    SynthTransformerField,
    CodeVersionInstall,
  };
  static constexpr size_t NumSites = 14;

  /// One counter per registered site, indexed by Site enumeration order.
  /// The chaos campaign's recording mode snapshots probe/fire counts into
  /// these to enumerate every (site, fire-index) pair of a scenario.
  using SiteCounts = std::array<uint64_t, NumSites>;

  /// \returns the stable site name used in traces and tool flags.
  static const char *siteName(Site S);

  /// Parses a site name ("class-load", ...). \returns false when unknown.
  static bool siteByName(const std::string &Name, Site &Out);

  /// Every registered site, in Site enumeration order. The single source
  /// of truth behind allSiteNames(), tool usage strings, and the docs
  /// table.
  static std::vector<Site> allSites();

  /// Every valid site name, in Site enumeration order — for usage strings
  /// and "unknown site" diagnostics.
  static std::vector<std::string> allSiteNames();

  /// Arms \p S deterministically: the first \p Skip probes pass, the next
  /// \p Fire probes fail, every later probe passes again.
  void arm(Site S, uint64_t Fire = 1, uint64_t Skip = 0);

  /// Arms one site from a "site[:fire[:skip]]" spec (the tools' --inject
  /// syntax, also accepted via the JVOLVE_INJECT environment variable).
  /// \returns false with \p Err set on an unknown site or malformed spec.
  bool armFromSpec(const std::string &Spec, std::string *Err = nullptr);

  /// Arms every spec in a comma-separated "spec[,spec...]" list. Every
  /// valid spec is armed even when others are malformed; one diagnostic
  /// per bad spec is appended to \p Errors (when non-null). \returns true
  /// only when the whole list parsed.
  bool armFromSpecList(const std::string &List,
                       std::vector<std::string> *Errors = nullptr);

  /// Arms \p S probabilistically: each probe fails with \p Probability,
  /// drawn from a dedicated Rng seeded with \p Seed (deterministic runs).
  void armRandom(Site S, double Probability, uint64_t Seed);

  void disarm(Site S);

  /// Disarms every site and clears all counters.
  void reset();

  /// Clears probe/fire counters and the first-fire snapshot while keeping
  /// every site armed exactly as configured; Random-mode sites are
  /// reseeded from their original seed, so back-to-back runs with the
  /// same seed are bit-identical.
  void resetCounters();

  bool armed(Site S) const;

  /// Probes \p S from production code. \returns true when the site should
  /// fail now. Always counts, even when disarmed.
  bool probe(Site S);

  uint64_t probeCount(Site S) const;
  uint64_t fireCount(Site S) const;

  /// Per-site probe counts in Site enumeration order — the recording-mode
  /// output a clean reference pass yields.
  SiteCounts probeCounts() const;

  /// Per-site fire counts in Site enumeration order.
  SiteCounts fireCounts() const;

  /// Per-site probe counts captured at the instant the first probe (on any
  /// site) fired. A second-order campaign arms site B's fire index inside
  /// the window [probesAtFirstFire()[B], probeCounts()[B]) to land the
  /// nested fault in the recovery path the first fault triggered. All
  /// zeros until anyFired().
  SiteCounts probesAtFirstFire() const;

  /// True once any probe has fired since the last reset()/resetCounters().
  bool anyFired() const;

private:
  struct SiteState {
    enum class Mode : uint8_t { Off, Counted, Random };
    Mode M = Mode::Off;
    uint64_t Skip = 0;
    uint64_t Fire = 0;
    double Probability = 0;
    uint64_t Seed = 0;
    Rng R;
    uint64_t Probes = 0;
    uint64_t Fires = 0;
  };

  SiteState &state(Site S) { return Sites[static_cast<size_t>(S)]; }
  const SiteState &state(Site S) const {
    return Sites[static_cast<size_t>(S)];
  }

  SiteState Sites[NumSites];
  SiteCounts FirstFireSnapshot{};
  bool HasFired = false;
};

} // namespace jvolve

#endif // JVOLVE_SUPPORT_FAULTINJECTOR_H
