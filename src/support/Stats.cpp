#include "support/Stats.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace jvolve;

/// Linear-interpolated quantile of a sorted sample vector.
static double quantileOfSorted(const std::vector<double> &Sorted, double Q) {
  assert(!Sorted.empty() && "quantile of empty sample set");
  if (Sorted.size() == 1)
    return Sorted.front();
  double Pos = Q * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Sorted[Lo] * (1.0 - Frac) + Sorted[Hi] * Frac;
}

QuartileSummary jvolve::summarizeQuartiles(std::vector<double> Samples) {
  QuartileSummary S;
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  S.Median = quantileOfSorted(Samples, 0.5);
  S.LowerQuartile = quantileOfSorted(Samples, 0.25);
  S.UpperQuartile = quantileOfSorted(Samples, 0.75);
  return S;
}

double jvolve::percentile(std::vector<double> Samples, double P) {
  if (Samples.empty())
    return 0;
  std::sort(Samples.begin(), Samples.end());
  return quantileOfSorted(Samples, std::clamp(P, 0.0, 100.0) / 100.0);
}

double jvolve::percentileOfSorted(const std::vector<double> &Sorted,
                                  double P) {
  if (Sorted.empty())
    return 0;
  return quantileOfSorted(Sorted, std::clamp(P, 0.0, 100.0) / 100.0);
}

std::string QuartileSummary::str(int Decimals) const {
  char Buf[96];
  std::snprintf(Buf, sizeof(Buf), "%.*f [%.*f..%.*f]", Decimals, Median,
                Decimals, LowerQuartile, Decimals, UpperQuartile);
  return Buf;
}

double jvolve::mean(const std::vector<double> &Samples) {
  if (Samples.empty())
    return 0;
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  return Sum / static_cast<double>(Samples.size());
}
