#include "support/ChaosCampaign.h"

#include "apps/CrossFtpApp.h"
#include "apps/EmailApp.h"
#include "apps/JettyApp.h"
#include "apps/Workload.h"
#include "dsu/Canary.h"
#include "dsu/Synthesis.h"
#include "dsu/Upt.h"
#include "heap/HeapVerifier.h"
#include "support/Error.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"
#include "vm/VM.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace jvolve;

using Site = FaultInjector::Site;

static size_t idx(Site S) { return static_cast<size_t>(S); }

//===----------------------------------------------------------------------===//
// Specs
//===----------------------------------------------------------------------===//

std::string ChaosFault::spec() const {
  return std::string(FaultInjector::siteName(Where)) + ":" +
         std::to_string(Fire) + ":" + std::to_string(Skip);
}

std::string ScenarioSpec::injectArg() const {
  std::string Out;
  for (const ChaosFault &F : Faults) {
    if (!Out.empty())
      Out += ",";
    Out += F.spec();
  }
  return Out;
}

std::string ScenarioSpec::str() const {
  std::string Out = Stream;
  if (Lazy)
    Out += " lazy";
  if (Canary)
    Out += " canary";
  if (CodeVersion)
    Out += " codeversion";
  if (Version)
    Out += " version=" + std::to_string(Version);
  Out += " warm=" + std::to_string(WarmTicks) +
         " settle=" + std::to_string(SettleTicks) +
         " requests=" + std::to_string(Requests);
  if (!Faults.empty())
    Out += " inject=" + injectArg();
  return Out;
}

//===----------------------------------------------------------------------===//
// Scenario driver
//===----------------------------------------------------------------------===//

namespace {

/// App models are expensive to generate (filler mutation must match the
/// paper's tables exactly); build each once per process.
const AppModel &appFor(const std::string &Stream) {
  if (Stream == "email") {
    static const AppModel App = makeEmailApp();
    return App;
  }
  if (Stream == "jetty") {
    static const AppModel App = makeJettyApp();
    return App;
  }
  if (Stream == "crossftp") {
    static const AppModel App = makeCrossFtpApp();
    return App;
  }
  fatalError("unknown chaos stream '" + Stream +
             "' (email | jetty | crossftp)");
}

/// The per-stream default target version: the release whose update
/// exercises the most pipeline machinery under fault (class loads, object
/// transformers, a DSU collection) while still expecting to apply.
size_t defaultVersionFor(const std::string &Stream, bool CodeVersion) {
  if (CodeVersion) {
    // The code-version fast path only takes strictly body-only releases;
    // pick each stream's first one so the path (and its
    // codeversion-install probe points) actually runs.
    if (Stream == "email")
      return 1; // 1.2.2: method-body changes only
    if (Stream == "jetty")
      return 8; // 5.1.8: the stream's first strictly body-only release
    fatalError("crossftp has no body-only release for a codeversion "
               "scenario");
  }
  if (Stream == "email")
    return 6; // 1.3.2: custom transformers + field add/delete (needs OSR)
  if (Stream == "jetty")
    return 2; // 5.1.2: adds a class (the class-load path) + body changes
  return 1;   // crossftp 1.06: adds 4 classes, deletes 1, adds a field
}

int portFor(const std::string &Stream) {
  if (Stream == "email")
    return Pop3Port;
  if (Stream == "jetty")
    return JettyPort;
  return FtpPort;
}

void bootThreads(VM &TheVM, const std::string &Stream) {
  if (Stream == "email")
    startEmailThreads(TheVM);
  else if (Stream == "jetty")
    startJettyThreads(TheVM);
  else
    startCrossFtpThreads(TheVM);
}

/// One load interval: inject connections sized by Spec.Requests, then run
/// the VM for \p Ticks of virtual time.
void driveLoad(VM &TheVM, const ScenarioSpec &Spec, uint64_t Ticks) {
  if (Spec.Stream == "jetty") {
    LoadDriver::Options LO;
    LO.Port = JettyPort;
    LO.ConnectionsPerBatch = 1;
    LO.RequestsPerConnection = Spec.Requests;
    LoadDriver(TheVM, LO).runWithLoad(Ticks);
    return;
  }
  std::vector<int64_t> Requests;
  for (int I = 0; I < Spec.Requests; ++I)
    Requests.push_back(I + 1);
  TheVM.injectConnection(portFor(Spec.Stream), Requests,
                         /*InterArrival=*/120);
  TheVM.run(Ticks);
}

} // namespace

ScenarioResult
jvolve::runScenario(const ScenarioSpec &Spec,
                    const std::vector<std::unique_ptr<Oracle>> &Oracles) {
  const AppModel &App = appFor(Spec.Stream);
  VM::Config Cfg;
  Cfg.HeapSpaceBytes = 16u << 20;
  VM TheVM(Cfg);

  // Arm before anything allocates or serves: probe counts are cumulative
  // from VM birth, so a recording pass enumerates the entire scenario.
  TheVM.faults().reset();
  for (const ChaosFault &F : Spec.Faults)
    TheVM.faults().arm(F.Where, F.Fire, F.Skip);

  size_t Ver = Spec.Version
                   ? Spec.Version
                   : defaultVersionFor(Spec.Stream, Spec.CodeVersion);
  if (Ver < 1 || Ver >= App.numVersions())
    fatalError("chaos scenario version " + std::to_string(Ver) +
               " out of range for " + Spec.Stream + " (1.." +
               std::to_string(App.numVersions() - 1) + ")");

  ScenarioResult Res;
  TheVM.loadProgram(App.version(Ver - 1));
  bootThreads(TheVM, Spec.Stream);
  driveLoad(TheVM, Spec, Spec.WarmTicks);

  UpdateBundle B = Upt::prepare(App.version(Ver - 1), App.version(Ver),
                                "v" + std::to_string(Ver - 1));
  if (Spec.Stream == "email")
    registerEmailTransformers(B, App, Ver);
  // Synthesized transformers ride along (handwritten entries win). The
  // synthesis pass probes the synth-transformer-field site once per
  // inferred instance mapping, so the first-order sweep can corrupt one
  // mapping and watch the faulted transformer throw at run time: rollback
  // when eager, degraded settle when lazy.
  {
    TransformerSynthesis Synthesis(App.version(Ver - 1), App.version(Ver));
    SynthesisReport SynthRep = Synthesis.synthesize(B.Spec, &TheVM.faults());
    TransformerSynthesis::installTransformers(B, SynthRep);
  }
  UpdateOptions Opts;
  Opts.TimeoutTicks = 20'000;
  Opts.LazyTransform = Spec.Lazy;
  Opts.CodeVersioning = Spec.CodeVersion;
  if (Spec.Canary) {
    Opts.CanaryWindow.WindowTicks = std::max<uint64_t>(Spec.SettleTicks, 200);
    Opts.CanaryWindow.CheckIntervalTicks =
        std::max<uint64_t>(Spec.SettleTicks / 4, 50);
  }
  Updater U(TheVM);
  UpdateResult R = U.applyNow(std::move(B), Opts, /*MaxDriveTicks=*/80'000);

  // Post-update service + settle: more traffic, then drive any canary
  // window to a terminal state (trickle connections keep virtual time
  // moving — an idle VM's clock stands still and the tick-bounded window
  // would never close).
  driveLoad(TheVM, Spec, Spec.SettleTicks);
  if (auto *Canary = static_cast<CanaryController *>(TheVM.canary())) {
    for (int Guard = 0; Canary->windowOpen() && Guard < 64; ++Guard) {
      TheVM.injectConnection(portFor(Spec.Stream), {1}, /*InterArrival=*/40);
      TheVM.run(std::max<uint64_t>(Spec.SettleTicks, 500));
    }
  }
  // Settle every lazily-committed shell so the oracles judge final state.
  TheVM.drainLazyEngineNow();

  Res.Status = R.Status;
  Res.Message = R.Message;
  Res.Probes = TheVM.faults().probeCounts();
  Res.Fires = TheVM.faults().fireCounts();
  Res.ProbesAtFirstFire = TheVM.faults().probesAtFirstFire();
  Res.AnyFired = TheVM.faults().anyFired();

  ScenarioContext Ctx{TheVM, Spec, R};
  Ctx.OldProgram = &App.version(Ver - 1);
  Ctx.NewProgram = &App.version(Ver);
  Ctx.AnyFired = Res.AnyFired;
  if (auto *Canary = static_cast<CanaryController *>(TheVM.canary())) {
    CanaryReport Rep = Canary->report();
    Ctx.CanaryState = canaryStateName(Rep.State);
    Ctx.CanaryResidual = Rep.ResidualNewObjects;
    Ctx.CanaryReverted = Rep.State == CanaryState::Reverted;
  }
  Res.CanaryState = Ctx.CanaryState;

  // Telemetry ledger: force-drain so every attempted event is either
  // streamed or counted dropped before the balance is judged (this also
  // clears any injected writer stall — the durability contract).
  if (Telemetry::isEnabled() && Telemetry::global().hasStreamer()) {
    TelemetryStreamer &St = Telemetry::global().streamer();
    St.flushAll();
    Ctx.LedgerAttempted = St.attemptedTotal();
    Ctx.LedgerStreamed = St.streamedTotal();
    Ctx.LedgerDropped = St.droppedTotal();
  }

  for (const auto &O : Oracles)
    O->check(Ctx, Res.Violations);
  return Res;
}

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

namespace {

/// True when the UPT diff between \p A and \p B is empty — the programs
/// are version-identical.
bool programsIdentical(const ClassSet &A, const ClassSet &B) {
  UpdateSummary S = Upt::computeSpec(A, B).Summary;
  return S.ClassesAdded == 0 && S.ClassesDeleted == 0 &&
         S.ClassesChanged == 0;
}

class HeapCertificationOracle : public Oracle {
public:
  const char *name() const override { return "heap-certification"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    HeapVerifier Verifier(Ctx.TheVM.heap(), Ctx.TheVM.registry());
    if (VmLazyEngine *Engine = Ctx.TheVM.lazyEngine())
      Verifier.setLazyContext(
          [Engine](Ref Obj) { return Engine->isPendingShell(Obj); },
          /*AllowOldCopyReserved=*/!Engine->drained());
    VM &TheVM = Ctx.TheVM;
    std::vector<std::string> Problems =
        Verifier.verify([&TheVM](const std::function<void(Ref &)> &Visit) {
          TheVM.visitRoots(Visit);
        });
    for (std::string &P : Ctx.TheVM.registry().checkConsistency())
      Problems.push_back("registry: " + P);
    for (const std::string &P : Problems)
      Out.push_back(std::string(name()) + ": " + P);
  }
};

class ProgramStateOracle : public Oracle {
public:
  const char *name() const override { return "program-state"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    const ClassSet *Expect = nullptr;
    const char *Why = "";
    if (Ctx.CanaryReverted) {
      Expect = Ctx.OldProgram;
      Why = "canary reverted: program must be identical to never-updated";
    } else if (Ctx.Result.Status == UpdateStatus::Applied) {
      // Degraded/RevertFailed leave defined-but-mixed programs; only the
      // clean outcomes promise version identity.
      if (Ctx.CanaryState.empty() || Ctx.CanaryState == "retired") {
        Expect = Ctx.NewProgram;
        Why = "applied: program must be the new version";
      }
    } else if (Ctx.Result.Status == UpdateStatus::RolledBack ||
               Ctx.Result.Status == UpdateStatus::FailedTransformer ||
               Ctx.Result.Status == UpdateStatus::TimedOut ||
               Ctx.Result.Status == UpdateStatus::RejectedNotVerifiable ||
               Ctx.Result.Status == UpdateStatus::RejectedHierarchy ||
               Ctx.Result.Status == UpdateStatus::RejectedByAnalysis ||
               Ctx.Result.Status == UpdateStatus::RejectedCanaryBusy) {
      Expect = Ctx.OldProgram;
      Why = "aborted: program must be identical to never-updated";
    }
    if (Expect && !programsIdentical(Ctx.TheVM.program(), *Expect))
      Out.push_back(std::string(name()) + ": " + Why + " (status " +
                    updateStatusName(Ctx.Result.Status) + ")");
  }
};

class TerminalStatusOracle : public Oracle {
public:
  const char *name() const override { return "terminal-status"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    if (Ctx.Result.Status == UpdateStatus::None ||
        Ctx.Result.Status == UpdateStatus::Pending)
      Out.push_back(std::string(name()) +
                    ": update never reached a terminal status (" +
                    updateStatusName(Ctx.Result.Status) + ")");
    if (!Ctx.AnyFired && Ctx.Result.Status != UpdateStatus::Applied)
      Out.push_back(std::string(name()) +
                    ": fault-free run did not apply cleanly (" +
                    updateStatusName(Ctx.Result.Status) + ": " +
                    Ctx.Result.Message + ")");
    if (Ctx.CanaryState == "observing" || Ctx.CanaryState == "reverting")
      Out.push_back(std::string(name()) +
                    ": canary window never settled (state " +
                    Ctx.CanaryState + ")");
  }
};

class PhaseTilingOracle : public Oracle {
public:
  const char *name() const override { return "phase-tiling"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    const UpdateResult &R = Ctx.Result;
    if (R.TotalPauseMs <= 0)
      return; // no install began; nothing to tile
    double Sum =
        R.ClassLoadMs + R.GcMs + R.TransformMs + R.CertifyMs + R.RollbackMs;
    // Generous slack: the phases are measured by dedicated stopwatches
    // while the total uses one clock; granularity skew is not a violation.
    if (Sum > R.TotalPauseMs + 5.0)
      Out.push_back(std::string(name()) + ": phase spans (" +
                    std::to_string(Sum) + " ms) exceed TotalPauseMs (" +
                    std::to_string(R.TotalPauseMs) + " ms)");
  }
};

class ResidualPendingOracle : public Oracle {
public:
  const char *name() const override { return "residual-pending"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    if (VmLazyEngine *Engine = Ctx.TheVM.lazyEngine()) {
      if (!Engine->drained() || Engine->pendingCount() > 0)
        Out.push_back(std::string(name()) +
                      ": lazy engine still holds " +
                      std::to_string(Engine->pendingCount()) +
                      " pending shell(s) after the settle drain");
    }
    if (Ctx.CanaryReverted && Ctx.CanaryResidual > 0)
      Out.push_back(std::string(name()) + ": revert left " +
                    std::to_string(Ctx.CanaryResidual) +
                    " residual new-version object(s)");
  }
};

class UndoRootsOracle : public Oracle {
public:
  const char *name() const override { return "undo-roots"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    VmCanary *Canary = Ctx.TheVM.canary();
    if (!Canary || Canary->windowOpen())
      return; // open windows legitimately pin their undo log
    size_t Roots = 0;
    Canary->visitRoots([&Roots](Ref &) { ++Roots; });
    if (Roots > 0)
      Out.push_back(std::string(name()) + ": settled canary window (" +
                    Ctx.CanaryState + ") still pins " +
                    std::to_string(Roots) + " undo-log GC root(s)");
  }
};

class LedgerBalanceOracle : public Oracle {
public:
  const char *name() const override { return "ledger-balance"; }
  void check(const ScenarioContext &Ctx,
             std::vector<std::string> &Out) override {
    if (Ctx.LedgerAttempted == 0 && Ctx.LedgerStreamed == 0 &&
        Ctx.LedgerDropped == 0)
      return; // no streamer live this run
    if (Ctx.LedgerAttempted != Ctx.LedgerStreamed + Ctx.LedgerDropped)
      Out.push_back(std::string(name()) + ": " +
                    std::to_string(Ctx.LedgerAttempted) + " attempted != " +
                    std::to_string(Ctx.LedgerStreamed) + " streamed + " +
                    std::to_string(Ctx.LedgerDropped) + " dropped");
  }
};

} // namespace

std::vector<std::string> jvolve::checkStateInvariants(VM &TheVM) {
  static const ScenarioSpec AdHocSpec;
  static const UpdateResult AdHocResult;
  ScenarioContext Ctx(TheVM, AdHocSpec, AdHocResult);
  std::vector<std::string> Violations;
  HeapCertificationOracle().check(Ctx, Violations);
  UndoRootsOracle().check(Ctx, Violations);
  return Violations;
}

std::vector<std::unique_ptr<Oracle>> jvolve::standardOracles() {
  std::vector<std::unique_ptr<Oracle>> Suite;
  Suite.push_back(std::make_unique<HeapCertificationOracle>());
  Suite.push_back(std::make_unique<ProgramStateOracle>());
  Suite.push_back(std::make_unique<TerminalStatusOracle>());
  Suite.push_back(std::make_unique<PhaseTilingOracle>());
  Suite.push_back(std::make_unique<ResidualPendingOracle>());
  Suite.push_back(std::make_unique<UndoRootsOracle>());
  Suite.push_back(std::make_unique<LedgerBalanceOracle>());
  return Suite;
}

//===----------------------------------------------------------------------===//
// Shrinker
//===----------------------------------------------------------------------===//

ScenarioSpec
jvolve::shrinkScenario(const ScenarioSpec &Spec, const std::string &OracleName,
                       const std::vector<std::unique_ptr<Oracle>> &Oracles,
                       uint64_t *ExtraExecutions) {
  std::string Prefix = OracleName + ":";
  auto StillFails = [&](const ScenarioSpec &S) {
    if (ExtraExecutions)
      ++*ExtraExecutions;
    ScenarioResult R = runScenario(S, Oracles);
    for (const std::string &V : R.Violations)
      if (V.compare(0, Prefix.size(), Prefix) == 0)
        return true;
    return false;
  };

  ScenarioSpec Cur = Spec;
  bool Progress = true;
  while (Progress) {
    Progress = false;
    if (Cur.WarmTicks >= 200) {
      ScenarioSpec Try = Cur;
      Try.WarmTicks /= 2;
      if (StillFails(Try)) {
        Cur = Try;
        Progress = true;
        continue;
      }
    }
    if (Cur.SettleTicks >= 200) {
      ScenarioSpec Try = Cur;
      Try.SettleTicks /= 2;
      if (StillFails(Try)) {
        Cur = Try;
        Progress = true;
        continue;
      }
    }
    if (Cur.Requests > 1) {
      ScenarioSpec Try = Cur;
      Try.Requests = Cur.Requests / 2;
      if (StillFails(Try)) {
        Cur = Try;
        Progress = true;
      }
    }
  }
  return Cur;
}

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

namespace {

struct ModeCombo {
  std::string Stream;
  bool Lazy = false;
  bool Canary = false;
  bool CodeVersion = false;

  std::string label() const {
    std::string Out = Stream + (Lazy ? " lazy" : " eager");
    if (Canary)
      Out += "+canary";
    if (CodeVersion)
      Out += "+codeversion";
    return Out;
  }
};

std::string makeReproducer(const ScenarioSpec &Spec) {
  std::string Cmd = "jvolve-chaos --repro --stream " + Spec.Stream;
  if (Spec.Lazy)
    Cmd += " --lazy";
  if (Spec.Canary)
    Cmd += " --canary";
  if (Spec.CodeVersion)
    Cmd += " --codeversion";
  if (Spec.Version)
    Cmd += " --version " + std::to_string(Spec.Version);
  Cmd += " --warm " + std::to_string(Spec.WarmTicks) + " --settle " +
         std::to_string(Spec.SettleTicks) + " --requests " +
         std::to_string(Spec.Requests);
  if (!Spec.Faults.empty())
    Cmd += " --inject " + Spec.injectArg();
  return Cmd;
}

std::string oracleOf(const std::vector<std::string> &Violations) {
  if (Violations.empty())
    return "";
  size_t Colon = Violations.front().find(':');
  return Violations.front().substr(0, Colon);
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

std::string CampaignReport::json() const {
  std::ostringstream Out;
  Out << "{\"probe_points\": " << ProbePoints
      << ", \"covered\": " << Covered << ", \"enumerated\": " << Enumerated
      << ", \"executions\": " << Executions
      << ", \"skipped_by_budget\": " << SkippedByBudget
      << ", \"second_order_capped\": " << SecondOrderCapped
      << ", \"coverage\": " << coverage() << ", \"unreachable_in_mode\": [";
  for (size_t I = 0; I < UnreachableInMode.size(); ++I)
    Out << (I ? ", " : "") << "\"" << jsonEscape(UnreachableInMode[I])
        << "\"";
  Out << "], \"violations\": [";
  for (size_t I = 0; I < Violations.size(); ++I) {
    const CampaignViolation &V = Violations[I];
    Out << (I ? ", " : "") << "{\"mode\": \"" << jsonEscape(V.Mode)
        << "\", \"spec\": \"" << jsonEscape(V.Spec.str())
        << "\", \"status\": \"" << jsonEscape(updateStatusName(V.Status))
        << "\", \"reproducer\": \"" << jsonEscape(V.Reproducer)
        << "\", \"violations\": [";
    for (size_t J = 0; J < V.Violations.size(); ++J)
      Out << (J ? ", " : "") << "\"" << jsonEscape(V.Violations[J]) << "\"";
    Out << "]}";
  }
  Out << "]}";
  return Out.str();
}

CampaignReport
jvolve::runCampaign(const CampaignOptions &Opts,
                    const std::vector<std::unique_ptr<Oracle>> &Oracles) {
  CampaignReport Rep;
  uint64_t FaultedRuns = 0;
  auto BudgetLeft = [&] {
    return Opts.Budget == 0 || FaultedRuns < Opts.Budget;
  };

  std::vector<ModeCombo> Combos;
  for (const std::string &Stream : Opts.Streams)
    for (int LazyMode = 0; LazyMode < 2; ++LazyMode) {
      if ((LazyMode ? !Opts.Lazy : !Opts.Eager))
        continue;
      for (int CanaryMode = 0; CanaryMode < 2; ++CanaryMode) {
        if ((CanaryMode ? !Opts.CanaryOn : !Opts.CanaryOff))
          continue;
        Combos.push_back({Stream, LazyMode == 1, CanaryMode == 1});
      }
    }
  // One code-versioned combo per stream: eager, canary-off, targeting the
  // stream's body-only release so the codeversion-install site enumerates.
  if (Opts.CodeVersion)
    for (const std::string &Stream : Opts.Streams)
      if (Stream != "crossftp") // no body-only release
        Combos.push_back({Stream, /*Lazy=*/false, /*Canary=*/false,
                          /*CodeVersion=*/true});

  auto Record = [&](const ScenarioSpec &Spec, const ModeCombo &Combo,
                    const ScenarioResult &Res) {
    CampaignViolation V;
    V.Mode = Combo.label();
    V.Violations = Res.Violations;
    V.Status = Res.Status;
    V.Spec = Opts.Shrink ? shrinkScenario(Spec, oracleOf(Res.Violations),
                                          Oracles, &Rep.Executions)
                         : Spec;
    V.Reproducer = makeReproducer(V.Spec);
    Rep.Violations.push_back(std::move(V));
  };

  auto RunFaulted = [&](ScenarioSpec Spec, const ModeCombo &Combo,
                        Site Armed) -> bool {
    ScenarioResult Res = runScenario(Spec, Oracles);
    ++Rep.Executions;
    ++FaultedRuns;
    bool Fired = Res.Fires[idx(Armed)] > 0;
    if (!Res.ok())
      Record(Spec, Combo, Res);
    return Fired;
  };

  for (const ModeCombo &Combo : Combos) {
    ScenarioSpec Base;
    Base.Stream = Combo.Stream;
    Base.Lazy = Combo.Lazy;
    Base.Canary = Combo.Canary;
    Base.CodeVersion = Combo.CodeVersion;
    // A campaign-wide --version targets the full-pipeline combos only; a
    // codeversion combo must stay on its body-only default release.
    Base.Version = Combo.CodeVersion ? 0 : Opts.Version;
    Base.WarmTicks = Opts.WarmTicks;
    Base.SettleTicks = Opts.SettleTicks;
    Base.Requests = Opts.Requests;

    // Recording pass: nothing armed, every probe counted. Also the clean
    // baseline the oracles must accept — a violation here is a finding on
    // its own (and invalidates fault attribution for the combo).
    ScenarioResult Ref = runScenario(Base, Oracles);
    ++Rep.Executions;
    if (!Ref.ok()) {
      Record(Base, Combo, Ref);
      continue;
    }

    if (Opts.FirstOrder) {
      for (Site S : FaultInjector::allSites()) {
        uint64_t Points = Ref.Probes[idx(S)];
        bool Synthetic = Points == 0;
        if (Synthetic)
          Points = 1; // armed-gated or mode-gated sites record no probes;
                      // try one synthetic arming to classify them
        Rep.Enumerated += Points;
        for (uint64_t FireIdx = 1; FireIdx <= Points; ++FireIdx) {
          if (!BudgetLeft()) {
            Rep.SkippedByBudget += Points - FireIdx + 1;
            break;
          }
          ScenarioSpec Spec = Base;
          Spec.Faults = {{S, /*Fire=*/1, /*Skip=*/FireIdx - 1}};
          bool Fired = RunFaulted(Spec, Combo, S);
          if (Synthetic && !Fired) {
            // Not a reachable probe point in this mode (e.g.
            // canary-health-breach with the window off).
            Rep.UnreachableInMode.push_back(Combo.label() + ": " +
                                            FaultInjector::siteName(S));
            --Rep.Enumerated;
            continue;
          }
          ++Rep.ProbePoints;
          if (Fired)
            ++Rep.Covered;
        }
      }
    }

    if (Opts.SecondOrder) {
      // Triggers that open the recovery paths worth nesting a second
      // fault into: an eager install fault (rollback), a lazy drain
      // fault (degradation), and a canary breach (revert pipeline).
      std::vector<ChaosFault> Triggers;
      if (!Combo.Lazy) {
        Triggers.push_back({Site::ClassLoad, 1, 0});
        Triggers.push_back({Site::TransformerNthObject, 1, 0});
      } else {
        Triggers.push_back({Site::LazyDrainTransformer, 1, 0});
      }
      if (Combo.Canary)
        Triggers.push_back({Site::CanaryHealthBreach, 1, 0});

      // Bound each (trigger, nested-site) window to its first probes: the
      // recovery path runs immediately after the trigger fires, while the
      // window's tail is just the scenario's remaining service time.
      constexpr uint64_t kWindowCap = 6;

      for (const ChaosFault &Trig : Triggers) {
        ScenarioSpec TrigSpec = Base;
        TrigSpec.Faults = {Trig};
        ScenarioResult TrigRes = runScenario(TrigSpec, Oracles);
        ++Rep.Executions;
        if (!TrigRes.ok())
          Record(TrigSpec, Combo, TrigRes);
        if (!TrigRes.AnyFired)
          continue; // trigger unreachable in this mode
        for (Site S : FaultInjector::allSites()) {
          if (S == Trig.Where)
            continue;
          uint64_t Lo = TrigRes.ProbesAtFirstFire[idx(S)];
          uint64_t Hi = TrigRes.Probes[idx(S)];
          if (Hi > Lo + kWindowCap) {
            Rep.SecondOrderCapped += Hi - (Lo + kWindowCap);
            Hi = Lo + kWindowCap;
          }
          Rep.Enumerated += Hi - Lo;
          for (uint64_t FireIdx = Lo + 1; FireIdx <= Hi; ++FireIdx) {
            if (!BudgetLeft()) {
              Rep.SkippedByBudget += Hi - FireIdx + 1;
              break;
            }
            ScenarioSpec Spec = Base;
            Spec.Faults = {Trig, {S, /*Fire=*/1, /*Skip=*/FireIdx - 1}};
            bool Fired = RunFaulted(Spec, Combo, S);
            ++Rep.ProbePoints;
            if (Fired)
              ++Rep.Covered;
          }
        }
      }
    }
  }
  return Rep;
}
