//===----------------------------------------------------------------------===//
///
/// \file
/// EventPipe-style streaming telemetry: per-thread write buffers,
/// sequence-numbered blocks, explicit drop accounting, session objects,
/// and windowed event-counter aggregation.
///
/// The original TraceSink was one global ring behind shared state — fine
/// for a single-threaded VM, a contention point and a blind spot the
/// moment multiple producers (native stress threads today, scheduler
/// workers tomorrow) emit concurrently. This module follows CoreCLR's
/// EventPipe buffer-manager design:
///
///  * Every producer thread owns a ThreadEventBuffer: a fixed-capacity
///    SPSC ring appended to without locks. Each append claims the next
///    per-thread sequence number; when the ring is full the event is
///    dropped, the drop counter bumps, and the sequence number is still
///    consumed — so loss shows up as a *gap in the sequence space*, never
///    as silent absence. Green threads (VMThread) register a buffer at
///    birth and retire it at death; native OS threads get a thread-local
///    buffer retired when the thread exits.
///
///  * A background writer thread periodically drains every buffer into
///    sequence-numbered EventBlocks (FirstSeq/LastSeq plus the drops
///    accumulated since the previous block) and hands each block to every
///    open TelemetrySession. A safe-point rendezvous kicks the writer so
///    pre-pause events are durable before the world stops.
///
///  * A TelemetrySession filters events by name prefix and writes them to
///    its sink: a JSONL file (each line carries tid + seq) or an
///    in-memory ring with a bounded buffer budget for in-band consumers
///    (jvolve-serve --stats). A block whose drop delta is nonzero makes
///    the session emit a `telemetry.block` gap record into the output —
///    the loss is part of the stream.
///
///  * WindowAggregator keeps EventCounter-style per-window statistics
///    over every registered counter and histogram (delta, rate/ktick,
///    min/mean/max across retained windows; p50/p99 over the samples
///    recorded within the last window). The VM run loop rolls it on
///    virtual-tick boundaries; jvolve-serve --stats and the canary
///    latency monitor read the same view.
///
/// Accounting invariant (checked by tests and the tier-1 gate): for every
/// buffer, attempted == streamed-to-sessions + dropped once flushed.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_TELEMETRYSTREAM_H
#define JVOLVE_SUPPORT_TELEMETRYSTREAM_H

#include "support/Telemetry.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace jvolve {

//===----------------------------------------------------------------------===//
// Per-thread buffers
//===----------------------------------------------------------------------===//

/// A fixed-capacity single-producer single-consumer event ring owned by
/// one producer thread. The producer is the owning thread (wait-free
/// append, no locks, no CAS retry loops); the consumer is whoever holds
/// the streamer's drain pass (the writer thread, or a caller inside
/// flushAll). Sequence numbers are per-thread and consumed by *every*
/// attempt — a dropped event leaves a visible gap.
class ThreadEventBuffer {
public:
  ThreadEventBuffer(uint64_t Tid, std::string Name, size_t Capacity);

  //===--- Producer side (owning thread only) ------------------------------===//

  /// Appends \p E stamped with this buffer's tid and next sequence number.
  /// \returns false when the ring was full: the event is dropped, the drop
  /// counter bumps, and the sequence number is consumed anyway.
  bool tryWrite(TraceEvent E);

  //===--- Consumer side (single drainer at a time) ------------------------===//

  /// Moves up to \p Max pending events into \p Out (in write order).
  /// \returns the number moved.
  size_t drainInto(std::vector<TraceEvent> &Out, size_t Max);

  /// Producer declares it will never write again (thread death). The
  /// writer frees the buffer after its final drain.
  void markRetired() { Retired.store(true, std::memory_order_release); }
  bool retired() const { return Retired.load(std::memory_order_acquire); }

  /// Re-arms a fully drained, retired buffer for a new owner, keeping the
  /// ring allocation (constructing a ring of TraceEvents is the dominant
  /// cost of acquiring a buffer). Caller must hold the only reference —
  /// no producer, no concurrent drainer.
  void recycle(uint64_t NewTid, std::string NewName);

  bool empty() const {
    return Head.load(std::memory_order_acquire) ==
           Tail.load(std::memory_order_acquire);
  }

  //===--- Accounting -------------------------------------------------------===//

  /// Events attempted (written + dropped) == the next sequence number.
  uint64_t attempted() const { return Seq.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }

  uint64_t tid() const { return Tid; }
  const std::string &name() const { return Name; }
  size_t capacity() const { return Ring.size(); }

  /// Consumer-side bookkeeping for gap records: drops already surfaced in
  /// an emitted block.
  uint64_t DroppedReported = 0;

private:
  uint64_t Tid;
  std::string Name;
  std::vector<TraceEvent> Ring;
  std::atomic<uint64_t> Head{0}; ///< next write slot (producer-owned)
  std::atomic<uint64_t> Tail{0}; ///< next read slot (consumer-owned)
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> Dropped{0};
  std::atomic<bool> Retired{false};
};

/// One drained run of events from one thread's buffer, cut by the writer.
/// FirstSeq/LastSeq bound the sequence numbers inside; DroppedDelta is the
/// number of events lost since the previous block from this thread.
struct EventBlock {
  uint64_t Tid = 0;
  std::string ThreadName;
  uint64_t FirstSeq = 0;
  uint64_t LastSeq = 0;
  uint64_t DroppedDelta = 0;
  std::vector<TraceEvent> Events;
};

//===----------------------------------------------------------------------===//
// Sessions
//===----------------------------------------------------------------------===//

/// Configuration of one telemetry consumer.
struct TelemetrySessionConfig {
  std::string Name = "session";
  /// Event-name prefixes to keep; empty = every event passes.
  std::vector<std::string> Prefixes;
  /// JSONL sink path; empty = in-memory session (drainBuffered()).
  std::string Path;
  /// In-memory sessions retain at most this many events; overflow evicts
  /// the oldest and counts into bufferEvictions() — bounded memory for a
  /// consumer that polls slowly.
  size_t BufferBudgetEvents = 65536;
};

/// One consumer of the event stream. Blocks arrive on the writer thread;
/// drainBuffered() may be called from any thread.
class TelemetrySession {
public:
  explicit TelemetrySession(TelemetrySessionConfig Cfg);
  ~TelemetrySession();

  TelemetrySession(const TelemetrySession &) = delete;
  TelemetrySession &operator=(const TelemetrySession &) = delete;

  const TelemetrySessionConfig &config() const { return Cfg; }
  bool ok() const { return Cfg.Path.empty() || (Sink && Sink->ok()); }

  /// Filters \p B against the session's prefixes and appends the
  /// survivors to the sink. A nonzero drop delta (or a sequence gap) emits
  /// a `telemetry.block` gap record ahead of the block's events.
  void acceptBlock(const EventBlock &B);

  /// Flushes the file sink (no-op for in-memory sessions).
  void flush();

  /// In-memory sessions: moves every buffered event out, oldest first.
  std::vector<TraceEvent> drainBuffered();

  uint64_t eventsWritten() const { return NumWritten; }
  uint64_t eventsFiltered() const { return NumFiltered; }
  /// File-layer loss (TraceSink discards); 0 for in-memory sessions.
  uint64_t sinkEventsDropped() const {
    return Sink ? Sink->eventsDropped() : 0;
  }
  /// Drops observed in accepted blocks (the producers' loss, made visible
  /// here as gap records).
  uint64_t gapEventsSeen() const { return NumGapDrops; }
  /// In-memory budget evictions (this session's own loss).
  uint64_t bufferEvictions() const { return NumEvicted; }

private:
  bool passes(const TraceEvent &E) const;
  void append(const TraceEvent &E);

  TelemetrySessionConfig Cfg;
  std::unique_ptr<TraceSink> Sink; ///< file mode
  std::mutex BufMu;                ///< in-memory mode
  std::deque<TraceEvent> Buffered;
  uint64_t NumWritten = 0;
  uint64_t NumFiltered = 0;
  uint64_t NumGapDrops = 0;
  uint64_t NumEvicted = 0;
};

//===----------------------------------------------------------------------===//
// Streamer (buffer manager + writer thread)
//===----------------------------------------------------------------------===//

/// Owns every thread buffer and session, and the background writer thread
/// that moves events from the former to the latter. One per process,
/// owned by the Telemetry registry (which passes itself in — the streamer
/// must not call Telemetry::global() because it is constructed from
/// inside the registry's own constructor on JVOLVE_TRACE_OUT runs).
class TelemetryStreamer {
public:
  explicit TelemetryStreamer(Telemetry &Owner);
  ~TelemetryStreamer();

  //===--- Sessions ---------------------------------------------------------===//

  /// Opens a session and (on the first one) starts the writer thread.
  /// \returns nullptr when a file sink could not be created.
  std::shared_ptr<TelemetrySession> openSession(TelemetrySessionConfig Cfg);

  /// Final-drains every buffer into \p S, flushes it, and detaches it.
  void closeSession(const std::shared_ptr<TelemetrySession> &S);

  /// True while at least one session is open — the fast-path gate every
  /// emit takes before touching any buffer.
  bool active() const { return NumSessions.load(std::memory_order_acquire) > 0; }

  size_t sessionCount() const { return NumSessions.load(std::memory_order_acquire); }

  //===--- Producers --------------------------------------------------------===//

  /// Appends \p E to the current producer buffer: the green thread's
  /// buffer while the VM interpreter has one pinned (setCurrentBuffer),
  /// otherwise the calling OS thread's thread-local buffer (created and
  /// registered on first use, retired automatically at thread exit).
  /// No-op when no session is open.
  void write(TraceEvent E);

  /// Registers a buffer for green thread \p Tid (scheduler birth hook).
  ThreadEventBuffer *acquireThreadBuffer(uint64_t Tid,
                                         const std::string &Name);

  /// Marks \p Buf retired (thread death hook); the writer frees it after
  /// the final drain, folding its counters into the retired totals.
  void retireThreadBuffer(ThreadEventBuffer *Buf);

  /// Pins/unpins the green-thread buffer events from this OS thread are
  /// attributed to (the VM run loop brackets each quantum with this).
  static void setCurrentBuffer(ThreadEventBuffer *Buf);

  /// Ring capacity for buffers registered after this call (tests shrink it
  /// to force drops).
  void setThreadBufferCapacity(size_t Events);
  size_t threadBufferCapacity() const;

  //===--- Draining ---------------------------------------------------------===//

  /// Wakes the writer for an immediate pass (safe-point hook).
  void kick();

  /// Runs one full drain pass on the calling thread and flushes every
  /// session — synchronous durability for closeTrace()/atexit.
  void flushAll();

  /// Fault hook (`telemetry-writer-stall`): the next \p Passes *timed*
  /// writer passes skip their drain, so producer rings fill and overflow
  /// into counted drops — the degradation mode the wait-free design
  /// promises. Durability points (flushAll, closeSession, shutdown) drain
  /// regardless and clear the stall, so the ledger still balances at exit.
  void injectWriterStall(uint64_t Passes) {
    StallPasses.fetch_add(Passes, std::memory_order_relaxed);
  }
  uint64_t stalledPasses() const {
    return StallsTaken.load(std::memory_order_relaxed);
  }

  //===--- Accounting -------------------------------------------------------===//

  /// Sums over live and retired buffers. attempted == streamed + dropped
  /// after a flushAll() with quiescent producers.
  uint64_t attemptedTotal() const;
  uint64_t droppedTotal() const;
  /// Events moved out of buffers and offered to sessions (pre-filter).
  uint64_t streamedTotal() const { return Streamed.load(std::memory_order_relaxed); }
  uint64_t blocksFlushed() const { return Blocks.load(std::memory_order_relaxed); }

  /// Publishes the accounting totals into the `telemetry.*` registry
  /// gauges (done after every pass; callable any time).
  void publishMetrics();

private:
  void writerLoop();
  /// One drain pass over every buffer into every session. Caller holds Mu
  /// (the single-consumer guarantee for every ring: Mu serializes drains).
  /// A forced pass (durability points) ignores and clears an injected
  /// writer stall; a timed pass consumes one stalled pass and skips.
  void drainPassLocked(bool Forced = true);
  void publishMetricsLocked();
  ThreadEventBuffer *nativeThreadBufferLocked();
  /// Pool-or-new buffer registration (caller holds Mu).
  ThreadEventBuffer *takeBufferLocked(uint64_t Tid, std::string Name);
  uint64_t attemptedTotalLocked() const;
  uint64_t droppedTotalLocked() const;

  /// Guards Buffers/Sessions and serializes drain passes. Producers never
  /// take it — the emit hot path touches only their own ring.
  mutable std::mutex Mu;
  std::condition_variable Cv;
  std::thread Writer;
  bool WriterRunning = false;
  bool StopRequested = false;
  std::atomic<bool> KickPending{false};
  std::atomic<size_t> NumSessions{0};

  std::vector<std::unique_ptr<ThreadEventBuffer>> Buffers;
  std::vector<std::shared_ptr<TelemetrySession>> Sessions;
  /// Retired-and-drained buffers kept for reuse: short-lived threads (one
  /// per green thread per VM) would otherwise pay ring construction on
  /// every spawn. Bounded; recycled only at matching capacity.
  std::vector<std::unique_ptr<ThreadEventBuffer>> FreePool;
  size_t BufferCapacity = 2048;
  uint64_t NextNativeTid = 1; ///< ids for OS-thread buffers (bit 63 set)
  uint64_t NumOpened = 0;
  uint64_t TraceDroppedRetired = 0; ///< sink drops of closed sessions

  // Totals of buffers already freed (their threads died and their rings
  // fully drained) — accounting survives the buffer.
  std::atomic<uint64_t> RetiredAttempted{0};
  std::atomic<uint64_t> RetiredDropped{0};
  std::atomic<uint64_t> Streamed{0};
  std::atomic<uint64_t> Blocks{0};
  std::atomic<uint64_t> StallPasses{0}; ///< injected writer stalls pending
  std::atomic<uint64_t> StallsTaken{0}; ///< timed passes actually skipped

  // Registry handles cached at construction: the writer thread must never
  // race a map registration.
  TelGauge *GDropped;
  TelGauge *GAttempted;
  TelGauge *GStreamed;
  TelGauge *GBlocks;
  TelGauge *GSessions;
  TelGauge *GTraceDropped;
};

//===----------------------------------------------------------------------===//
// Windowed event-counter aggregation
//===----------------------------------------------------------------------===//

/// EventCounter-style per-window statistics over the telemetry registry.
/// The VM run loop calls onTick(); every WindowTicks of virtual time the
/// aggregator snapshots all counters and histograms, records the window's
/// deltas, and retains the last KeepWindows windows per metric. Driven
/// and read from the VM thread only.
class WindowAggregator {
public:
  /// Enables aggregation with \p WindowTicks-tick windows (0 disables).
  void configure(uint64_t WindowTicks, size_t KeepWindows = 16);
  bool enabled() const { return WindowTicks != 0; }
  uint64_t windowTicks() const { return WindowTicks; }
  uint64_t windowsRolled() const { return Rolled; }

  /// Fast-path poll; rolls the window when \p Now crosses the boundary.
  /// Re-anchors when virtual time restarts (a new VM in the same process).
  void onTick(uint64_t Now) {
    if (WindowTicks == 0)
      return;
    if (Now + WindowTicks < NextRoll) { // clock went backwards: new VM
      NextRoll = Now + WindowTicks;
      LastRoll = Now;
      return;
    }
    if (Now >= NextRoll)
      roll(Now);
  }

  /// Forces a window boundary at \p Now (tools roll once before dumping).
  void roll(uint64_t Now);

  /// Last-window view of one counter, plus min/mean/max of the per-window
  /// deltas across the retained windows.
  struct CounterSeries {
    uint64_t LastDelta = 0;
    double LastRatePerKtick = 0; ///< delta per 1000 virtual ticks
    uint64_t MinDelta = 0, MaxDelta = 0;
    double MeanDelta = 0;
    size_t Windows = 0;
  };

  /// Last-window view of one histogram: samples recorded within the
  /// window, their p50/p99/max/mean, and the sample rate.
  struct HistSeries {
    uint64_t LastCount = 0;
    double LastRatePerKtick = 0;
    double P50 = 0, P99 = 0, Max = 0, Mean = 0;
    size_t Windows = 0;
  };

  /// \returns false when the metric has no window data yet.
  bool counterSeries(const std::string &Name, CounterSeries &Out) const;
  bool histSeries(const std::string &Name, HistSeries &Out) const;

  /// Column-aligned live view: every metric with nonzero window activity,
  /// counters as rate rows, histograms as rate + p50/p99/max rows.
  std::string table() const;

private:
  struct PerCounter {
    uint64_t PrevValue = 0;
    std::deque<uint64_t> Deltas; ///< most recent last
  };
  struct PerHist {
    uint64_t PrevSeen = 0;
    HistSeries Last;
  };

  /// Re-enumerates the registry when it grew, refreshing CounterBind /
  /// HistBind. roll() itself then walks stable pointer pairs — no string
  /// copies, no map lookups, no allocation on the per-window path.
  void rebind(Telemetry &Tel);

  uint64_t WindowTicks = 0;
  size_t KeepWindows = 16;
  uint64_t LastRoll = 0;
  uint64_t NextRoll = 0;
  uint64_t LastSpan = 1; ///< ticks covered by the last completed window
  uint64_t Rolled = 0;
  std::map<std::string, PerCounter> Counters;
  std::map<std::string, PerHist> Hists;
  // Instrument handle -> window state, valid until the registry grows
  // (handles are immortal; map nodes are stable).
  std::vector<std::pair<TelCounter *, PerCounter *>> CounterBind;
  std::vector<std::pair<TelHistogram *, PerHist *>> HistBind;
  size_t BoundCounters = 0, BoundHists = 0;
  std::vector<double> Scratch; ///< roll()'s sample buffer, reused
};

} // namespace jvolve

#endif // JVOLVE_SUPPORT_TELEMETRYSTREAM_H
