//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny wall-clock stopwatch used by the benchmark harnesses to measure
/// update pause times (GC phase, transformer phase, total disruption).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_STOPWATCH_H
#define JVOLVE_SUPPORT_STOPWATCH_H

#include <chrono>

namespace jvolve {

/// Measures elapsed wall-clock time in milliseconds.
class Stopwatch {
public:
  Stopwatch() { reset(); }

  /// Restarts the measurement from now.
  void reset() { Start = Clock::now(); }

  /// \returns milliseconds elapsed since construction or the last reset().
  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - Start)
        .count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace jvolve

#endif // JVOLVE_SUPPORT_STOPWATCH_H
