//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive fault-space chaos campaigns with invariant oracles and
/// reproducer shrinking.
///
/// PRs 1-7 built the individual safety nets (transactional rollback,
/// quiescence escalation, lazy degradation, canary revert) but exercised
/// each with hand-armed single faults at fixed probe indices. This module
/// walks the whole first-order fault space mechanically: a clean
/// *recording pass* captures how many times every FaultInjector site is
/// probed by a scenario, the campaign then re-runs the scenario once per
/// `(site, fire-index)` pair so each individual probe point fails exactly
/// once, and a reusable *oracle suite* checks the invariants the formal
/// DSU-correctness literature frames (state equivalence after abort,
/// transformation soundness, accounting balance) after every faulted
/// execution. A *second-order* mode arms one fault inside the recovery
/// path another fault triggered (fault-during-rollback, -revert, and
/// -lazy-drain), using FaultInjector::probesAtFirstFire() to aim at the
/// recovery window. Every violation ships with a ready-to-paste
/// reproducer and is shrunk (fewer workload ticks / requests) while it
/// still reproduces.
///
/// Determinism: scenarios run on fresh VMs under virtual time with fixed
/// seeds, so probe counts are bit-identical across passes — the property
/// the recording mode depends on (and FaultInjector::resetCounters()
/// preserves for Random-mode arming).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_CHAOSCAMPAIGN_H
#define JVOLVE_SUPPORT_CHAOSCAMPAIGN_H

#include "dsu/Updater.h"
#include "support/FaultInjector.h"

#include <memory>
#include <string>
#include <vector>

namespace jvolve {

class VM;
class ClassSet;

//===----------------------------------------------------------------------===//
// Scenarios
//===----------------------------------------------------------------------===//

/// One fault to arm before a scenario boots (counted mode).
struct ChaosFault {
  FaultInjector::Site Where = FaultInjector::Site::ClassLoad;
  uint64_t Fire = 1;
  uint64_t Skip = 0;

  /// The tools' "site:fire:skip" spec — pasteable into --inject.
  std::string spec() const;
};

/// One deterministic execution: boot an app stream on a fresh VM, put it
/// under load, apply the v0 -> v1 update in the given mode, keep serving,
/// settle everything (canary window, lazy drain, telemetry), then judge.
struct ScenarioSpec {
  std::string Stream = "email"; ///< email | jetty | crossftp
  bool Lazy = false;            ///< commit through the lazy engine
  bool Canary = false;          ///< arm a post-commit canary window
  /// Commit through the per-method code-version manager
  /// (UpdateOptions::CodeVersioning). Only meaningful with a body-only
  /// target release; when Version is 0 the default switches to the
  /// stream's body-only release (email 1.2.2, jetty 5.1.1) so the fast
  /// path — and its codeversion-install fault site — actually runs.
  bool CodeVersion = false;
  /// Target version index: the scenario boots version(Version-1) and
  /// updates to version(Version). 0 picks the per-stream default — the
  /// release that exercises the most machinery (email 1.3.2: transformers
  /// + field changes; jetty 5.1.2: a class load; crossftp 1.06: both).
  size_t Version = 0;
  std::vector<ChaosFault> Faults;

  // Shrinkable workload knobs.
  uint64_t WarmTicks = 600;   ///< pre-update load interval
  uint64_t SettleTicks = 600; ///< post-update load + canary window bound
  int Requests = 2;           ///< requests per injected connection

  /// The faults as one comma-separated --inject argument.
  std::string injectArg() const;
  /// Human-readable one-liner ("email lazy inject=class-load:1:0 ...").
  std::string str() const;
};

/// What one scenario execution left behind, plus the oracle verdicts.
struct ScenarioResult {
  UpdateStatus Status = UpdateStatus::None; ///< forward update outcome
  std::string Message;
  /// The canary window's terminal state name ("" when no window armed).
  std::string CanaryState;

  FaultInjector::SiteCounts Probes{};
  FaultInjector::SiteCounts Fires{};
  FaultInjector::SiteCounts ProbesAtFirstFire{};
  bool AnyFired = false;

  /// One line per broken invariant, prefixed with the oracle's name.
  std::vector<std::string> Violations;

  bool ok() const { return Violations.empty(); }
};

//===----------------------------------------------------------------------===//
// Oracles
//===----------------------------------------------------------------------===//

/// Everything an oracle may inspect after a scenario settled: the VM (lazy
/// engine drained, canary window closed), the forward update's result, the
/// two program versions, and the streaming-telemetry ledger totals
/// (all zero when no streamer was live).
struct ScenarioContext {
  ScenarioContext(VM &TheVM, const ScenarioSpec &Spec,
                  const UpdateResult &Result)
      : TheVM(TheVM), Spec(Spec), Result(Result) {}

  VM &TheVM;
  const ScenarioSpec &Spec;
  const UpdateResult &Result;
  const ClassSet *OldProgram = nullptr;
  const ClassSet *NewProgram = nullptr;
  std::string CanaryState; ///< terminal canary state name ("" = no window)
  uint64_t CanaryResidual = 0;
  bool CanaryReverted = false;
  bool AnyFired = false; ///< any armed fault actually fired this run
  uint64_t LedgerAttempted = 0;
  uint64_t LedgerStreamed = 0;
  uint64_t LedgerDropped = 0;
};

/// One invariant, checked after every faulted execution. Implementations
/// append one violation line per breach (empty = invariant holds).
class Oracle {
public:
  virtual ~Oracle() = default;
  virtual const char *name() const = 0;
  virtual void check(const ScenarioContext &Ctx,
                     std::vector<std::string> &Out) = 0;
};

/// The standard suite:
///   heap-certification  HeapVerifier + registry consistency, exactly the
///                       updater's post-install certification
///   program-state       aborted update => program identical to v0;
///                       applied (and canary-retired) => identical to v1;
///                       canary-reverted => identical to v0
///   terminal-status     the update resolved to a defined terminal status
///                       (never None/Pending), a fault-free run applied
///                       cleanly, and a closed canary window ended in a
///                       defined terminal state
///   phase-tiling        the per-phase wall-clock spans fit inside
///                       TotalPauseMs (small slack for timer granularity)
///   residual-pending    no lazy engine still holding pending shells; a
///                       reverted canary left zero residual new-version
///                       objects
///   undo-roots          a settled canary window holds no undo-log GC
///                       roots (the leak the window could otherwise pin)
///   ledger-balance      telemetry attempted == streamed + dropped
std::vector<std::unique_ptr<Oracle>> standardOracles();

/// Runs one scenario on a fresh VM and applies \p Oracles.
ScenarioResult
runScenario(const ScenarioSpec &Spec,
            const std::vector<std::unique_ptr<Oracle>> &Oracles);

/// Judges the always-valid state invariants on \p TheVM outside a scripted
/// scenario: heap certification (with the lazy engine's pending-shell
/// context when one is live), registry consistency, and no undo-log GC
/// roots pinned by a settled canary window. The reusable core the fuzz and
/// rollback tests share; scenario-lifecycle oracles (program-state,
/// terminal-status, ...) need a full ScenarioContext and are not run.
/// \returns one line per violation (empty = healthy).
std::vector<std::string> checkStateInvariants(VM &TheVM);

//===----------------------------------------------------------------------===//
// Campaign
//===----------------------------------------------------------------------===//

struct CampaignOptions {
  std::vector<std::string> Streams = {"email", "jetty"};
  /// Mode axes. The default first-order matrix is eager + canary-off; the
  /// flags widen it to {eager, lazy} x {canary on, off}.
  bool Eager = true;
  bool Lazy = false;
  bool CanaryOff = true;
  bool CanaryOn = false;
  /// Adds one eager, canary-off combo per stream that commits the stream's
  /// body-only release through the code-version manager, so the
  /// codeversion-install probe points get enumerated (crossftp has no
  /// body-only release and is skipped).
  bool CodeVersion = true;
  bool FirstOrder = true;
  bool SecondOrder = false;
  /// Target version index forwarded into every ScenarioSpec (0 = the
  /// per-stream default).
  size_t Version = 0;
  /// Max faulted executions (0 = unbounded). Enumeration order is
  /// deterministic, so a bounded run is a stable prefix of the full one.
  uint64_t Budget = 0;
  /// Workload knobs forwarded into every ScenarioSpec.
  uint64_t WarmTicks = 600;
  uint64_t SettleTicks = 600;
  int Requests = 2;
  /// Shrink each violation's workload while it still reproduces.
  bool Shrink = true;
};

struct CampaignViolation {
  ScenarioSpec Spec; ///< shrunk when shrinking succeeded
  std::string Mode;  ///< "email eager", "jetty lazy+canary", ...
  std::vector<std::string> Violations;
  UpdateStatus Status = UpdateStatus::None;
  /// Ready-to-paste reproducer (jvolve-chaos --repro invocation carrying
  /// the --inject site:fire:skip spec).
  std::string Reproducer;
};

struct CampaignReport {
  /// (site, fire-index) points attempted (executions that armed a fault).
  uint64_t ProbePoints = 0;
  /// Points whose armed fault verifiably fired in its execution.
  uint64_t Covered = 0;
  /// Total enumerable points discovered by the recording passes (>=
  /// ProbePoints when a budget truncated the run).
  uint64_t Enumerated = 0;
  uint64_t Executions = 0; ///< scenario runs, including recording passes
  uint64_t SkippedByBudget = 0;
  /// Second-order windows truncated to the per-pair cap (the enumeration
  /// bounds itself to the first probes after the trigger — the recovery
  /// path proper — rather than the whole post-fault tail).
  uint64_t SecondOrderCapped = 0;
  /// "mode: site" entries that recorded zero probes and did not fire even
  /// when armed synthetically — unreachable in that mode (expected for
  /// e.g. canary-health-breach with the window off).
  std::vector<std::string> UnreachableInMode;
  std::vector<CampaignViolation> Violations;

  double coverage() const {
    return ProbePoints ? double(Covered) / double(ProbePoints) : 1.0;
  }
  std::string json() const;
};

/// Runs the campaign: per mode combo, one recording pass, then first-order
/// enumeration of every (site, fire-index) pair and (optionally)
/// second-order nested-fault enumeration over the recovery windows of
/// rollback / revert / lazy-drain triggers.
CampaignReport
runCampaign(const CampaignOptions &Opts,
            const std::vector<std::unique_ptr<Oracle>> &Oracles);

/// Shrinks \p Spec's workload (halving tick intervals, dropping requests)
/// while the violation of \p OracleName still reproduces. \returns the
/// smallest failing spec found (== \p Spec when nothing shrinks).
ScenarioSpec shrinkScenario(const ScenarioSpec &Spec,
                            const std::string &OracleName,
                            const std::vector<std::unique_ptr<Oracle>> &Oracles,
                            uint64_t *ExtraExecutions = nullptr);

} // namespace jvolve

#endif // JVOLVE_SUPPORT_CHAOSCAMPAIGN_H
