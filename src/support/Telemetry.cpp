#include "support/Telemetry.h"

#include "support/Stats.h"
#include "support/TablePrinter.h"
#include "support/TelemetryStream.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>

using namespace jvolve;

bool Telemetry::Enabled = false;

std::string metrics::dsuPhaseMs(const std::string &Phase) {
  return "dsu.update.phase_ms{phase=" + Phase + "}";
}

std::string metrics::faultFired(const std::string &Site) {
  return "dsu.faults.fired{site=" + Site + "}";
}

//===----------------------------------------------------------------------===//
// TelHistogram
//===----------------------------------------------------------------------===//

/// Retaining this many raw samples keeps percentiles exact for every
/// realistic pause/latency series (Table 1 uses 21 trials; a long server
/// run keeps the most recent window) while bounding memory per histogram.
static constexpr size_t HistogramSampleCap = 4096;

TelHistogram::TelHistogram(std::vector<double> InBounds, size_t SampleCap)
    : Bounds(std::move(InBounds)), Buckets(Bounds.size() + 1),
      Samples(SampleCap, 0.0) {
  assert(std::is_sorted(Bounds.begin(), Bounds.end()) &&
         "histogram bucket bounds must ascend");
}

void TelHistogram::record(double V) {
  if (!Telemetry::isEnabled())
    return;
  size_t B = std::upper_bound(Bounds.begin(), Bounds.end(), V) -
             Bounds.begin();
  Buckets[B].fetch_add(1, std::memory_order_relaxed);
  uint64_t N = Count.fetch_add(1, std::memory_order_relaxed);
  Sum += V;
  Min = N == 0 ? V : std::min(Min, V);
  Max = N == 0 ? V : std::max(Max, V);
  Samples[NextSample] = V;
  NextSample = (NextSample + 1) % Samples.size();
  ++SamplesSeen;
}

double TelHistogram::mean() const {
  uint64_t N = count();
  return N ? Sum / static_cast<double>(N) : 0;
}

size_t TelHistogram::samplesRetained() const {
  return static_cast<size_t>(
      std::min<uint64_t>(SamplesSeen, Samples.size()));
}

double TelHistogram::percentile(double P) const {
  size_t N = samplesRetained();
  if (N == 0)
    return 0;
  return jvolve::percentile(
      std::vector<double>(Samples.begin(),
                          Samples.begin() + static_cast<ptrdiff_t>(N)),
      P);
}

void TelHistogram::samplesSince(uint64_t &Seen,
                                std::vector<double> &Out) const {
  uint64_t Now = SamplesSeen;
  if (Now <= Seen) {
    Seen = Now;
    return;
  }
  // Only the ring's worth of history survives; take the most recent Take.
  uint64_t Missed = Now - Seen;
  size_t Take = static_cast<size_t>(
      std::min<uint64_t>(Missed, Samples.size()));
  // NextSample is one past the newest sample; walk back Take slots.
  size_t Start = (NextSample + Samples.size() -
                  (Take % Samples.size())) % Samples.size();
  for (size_t I = 0; I < Take; ++I)
    Out.push_back(Samples[(Start + I) % Samples.size()]);
  Seen = Now;
}

//===----------------------------------------------------------------------===//
// TraceEvent JSONL
//===----------------------------------------------------------------------===//

static void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string TraceEvent::jsonLine() const {
  std::string Out = "{\"name\":";
  appendJsonString(Out, Name);
  Out += ",\"phase\":";
  appendJsonString(Out, Phase);
  char Buf[192];
  std::snprintf(Buf, sizeof(Buf),
                ",\"start_tick\":%llu,\"end_tick\":%llu,\"ms\":%.6f,"
                "\"value\":%lld,\"tid\":%llu,\"seq\":%llu,\"detail\":",
                static_cast<unsigned long long>(StartTick),
                static_cast<unsigned long long>(EndTick), Ms,
                static_cast<long long>(Value),
                static_cast<unsigned long long>(Tid),
                static_cast<unsigned long long>(Seq));
  Out += Buf;
  appendJsonString(Out, Detail);
  Out += '}';
  return Out;
}

/// Extracts the JSON string value following "\"<Key>\":" in \p Line.
/// Handles the escapes jsonLine() produces.
static bool parseStringField(const std::string &Line, const char *Key,
                             std::string &Out) {
  std::string Needle = std::string("\"") + Key + "\":\"";
  size_t Pos = Line.find(Needle);
  if (Pos == std::string::npos)
    return false;
  Pos += Needle.size();
  Out.clear();
  while (Pos < Line.size() && Line[Pos] != '"') {
    char C = Line[Pos];
    if (C == '\\' && Pos + 1 < Line.size()) {
      char E = Line[++Pos];
      switch (E) {
      case 'n': Out += '\n'; break;
      case 'r': Out += '\r'; break;
      case 't': Out += '\t'; break;
      case 'u': {
        if (Pos + 4 >= Line.size())
          return false;
        Out += static_cast<char>(
            std::strtol(Line.substr(Pos + 1, 4).c_str(), nullptr, 16));
        Pos += 4;
        break;
      }
      default: Out += E; break;
      }
    } else {
      Out += C;
    }
    ++Pos;
  }
  return Pos < Line.size();
}

static bool parseNumberField(const std::string &Line, const char *Key,
                             double &Out) {
  std::string Needle = std::string("\"") + Key + "\":";
  size_t Pos = Line.find(Needle);
  if (Pos == std::string::npos)
    return false;
  Out = std::strtod(Line.c_str() + Pos + Needle.size(), nullptr);
  return true;
}

bool TraceEvent::parseLine(const std::string &Line, TraceEvent &Out) {
  TraceEvent E;
  if (!parseStringField(Line, "name", E.Name) ||
      !parseStringField(Line, "phase", E.Phase) ||
      !parseStringField(Line, "detail", E.Detail))
    return false;
  double Start = 0, End = 0, Val = 0;
  if (!parseNumberField(Line, "start_tick", Start) ||
      !parseNumberField(Line, "end_tick", End) ||
      !parseNumberField(Line, "ms", E.Ms) ||
      !parseNumberField(Line, "value", Val))
    return false;
  E.StartTick = static_cast<uint64_t>(Start);
  E.EndTick = static_cast<uint64_t>(End);
  E.Value = static_cast<int64_t>(Val);
  // tid/seq were added with the streaming layer; older traces omit them.
  double Tid = 0, Seq = 0;
  if (parseNumberField(Line, "tid", Tid))
    E.Tid = static_cast<uint64_t>(Tid);
  if (parseNumberField(Line, "seq", Seq))
    E.Seq = static_cast<uint64_t>(Seq);
  Out = std::move(E);
  return true;
}

//===----------------------------------------------------------------------===//
// TraceSink
//===----------------------------------------------------------------------===//

TraceSink::TraceSink(const std::string &InPath, size_t BufferEvents)
    : Path(InPath), BufferCap(std::max<size_t>(BufferEvents, 1)) {
  Out = std::fopen(Path.c_str(), "w");
  Buffer.reserve(BufferCap);
}

TraceSink::~TraceSink() {
  flush();
  if (Out)
    std::fclose(Out);
}

void TraceSink::emit(TraceEvent E) {
  if (!Out) {
    ++NumDropped; // no file: loss is counted, never silent
    return;
  }
  Buffer.push_back(std::move(E));
  ++NumEmitted;
  if (Buffer.size() >= BufferCap)
    flush();
}

void TraceSink::flush() {
  if (!Out)
    return;
  for (const TraceEvent &E : Buffer) {
    std::string Line = E.jsonLine();
    std::fwrite(Line.data(), 1, Line.size(), Out);
    std::fputc('\n', Out);
  }
  Buffer.clear();
  std::fflush(Out);
}

//===----------------------------------------------------------------------===//
// Telemetry registry
//===----------------------------------------------------------------------===//

Telemetry &Telemetry::global() {
  static Telemetry *T = new Telemetry(); // immortal: handles never dangle
  return *T;
}

Telemetry::Telemetry() {
  const char *Env = std::getenv("JVOLVE_TELEMETRY");
  if (Env && Env[0] && std::strcmp(Env, "0") != 0)
    Enabled = true;
  const char *WindowEnv = std::getenv("JVOLVE_STATS_WINDOW");
  if (WindowEnv && WindowEnv[0]) {
    long long Ticks = std::atoll(WindowEnv);
    if (Ticks > 0) {
      windows().configure(static_cast<uint64_t>(Ticks));
      Enabled = true; // windowed stats over frozen metrics are meaningless
    }
  }
  const char *TraceOut = std::getenv("JVOLVE_TRACE_OUT");
  if (TraceOut && TraceOut[0])
    openTrace(TraceOut);
}

// Never runs — global() leaks the singleton on purpose so handles never
// dangle — but must be defined where TelemetryStreamer/WindowAggregator
// are complete types for the unique_ptr members.
Telemetry::~Telemetry() = default;

std::vector<double> Telemetry::defaultBuckets() {
  // Doubling ladder from 1e-3 to ~1e7: covers sub-ms GC pauses, multi-ms
  // update pauses, and tick-denominated waits in one shape.
  std::vector<double> B;
  for (double V = 0.001; V < 2e7; V *= 2)
    B.push_back(V);
  return B;
}

TelCounter &Telemetry::counter(const std::string &Name) {
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(Name, std::unique_ptr<TelCounter>(new TelCounter()))
             .first;
  return *It->second;
}

TelGauge &Telemetry::gauge(const std::string &Name) {
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(Name, std::unique_ptr<TelGauge>(new TelGauge()))
             .first;
  return *It->second;
}

TelHistogram &Telemetry::histogram(const std::string &Name,
                                   std::vector<double> BucketBounds) {
  auto It = Histograms.find(Name);
  if (It == Histograms.end()) {
    if (BucketBounds.empty())
      BucketBounds = defaultBuckets();
    It = Histograms
             .emplace(Name, std::unique_ptr<TelHistogram>(new TelHistogram(
                                std::move(BucketBounds),
                                HistogramSampleCap)))
             .first;
  }
  return *It->second;
}

const TelCounter *Telemetry::findCounter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? nullptr : It->second.get();
}

const TelGauge *Telemetry::findGauge(const std::string &Name) const {
  auto It = Gauges.find(Name);
  return It == Gauges.end() ? nullptr : It->second.get();
}

const TelHistogram *Telemetry::findHistogram(const std::string &Name) const {
  auto It = Histograms.find(Name);
  return It == Histograms.end() ? nullptr : It->second.get();
}

std::vector<std::pair<std::string, TelCounter *>> Telemetry::allCounters() {
  std::vector<std::pair<std::string, TelCounter *>> Out;
  Out.reserve(Counters.size());
  for (auto &[Name, C] : Counters)
    Out.emplace_back(Name, C.get());
  return Out;
}

std::vector<std::pair<std::string, TelHistogram *>>
Telemetry::allHistograms() {
  std::vector<std::pair<std::string, TelHistogram *>> Out;
  Out.reserve(Histograms.size());
  for (auto &[Name, H] : Histograms)
    Out.emplace_back(Name, H.get());
  return Out;
}

void Telemetry::reset() {
  for (auto &[Name, C] : Counters)
    C->Value.store(0, std::memory_order_relaxed);
  for (auto &[Name, G] : Gauges)
    G->Value.store(0, std::memory_order_relaxed);
  for (auto &[Name, H] : Histograms) {
    for (auto &B : H->Buckets)
      B.store(0, std::memory_order_relaxed);
    H->Count.store(0, std::memory_order_relaxed);
    H->Sum = H->Min = H->Max = 0;
    H->NextSample = 0;
    H->SamplesSeen = 0;
  }
}

Telemetry::Snapshot Telemetry::snapshot() const {
  Snapshot S;
  // The three maps iterate sorted; merge into one name-sorted list so two
  // snapshots of the same state render byte-identically.
  for (const auto &[Name, C] : Counters) {
    MetricSnapshot M;
    M.Name = Name;
    M.K = MetricSnapshot::Kind::Counter;
    M.Value = static_cast<int64_t>(C->value());
    S.Metrics.push_back(std::move(M));
  }
  for (const auto &[Name, G] : Gauges) {
    MetricSnapshot M;
    M.Name = Name;
    M.K = MetricSnapshot::Kind::Gauge;
    M.Value = G->value();
    S.Metrics.push_back(std::move(M));
  }
  for (const auto &[Name, H] : Histograms) {
    MetricSnapshot M;
    M.Name = Name;
    M.K = MetricSnapshot::Kind::Histogram;
    M.Value = static_cast<int64_t>(H->count());
    M.Sum = H->sum();
    M.Min = H->min();
    M.Max = H->max();
    M.Mean = H->mean();
    M.P50 = H->percentile(50);
    M.P95 = H->percentile(95);
    M.P99 = H->percentile(99);
    S.Metrics.push_back(std::move(M));
  }
  std::sort(S.Metrics.begin(), S.Metrics.end(),
            [](const MetricSnapshot &A, const MetricSnapshot &B) {
              return A.Name < B.Name;
            });
  return S;
}

const Telemetry::MetricSnapshot *
Telemetry::Snapshot::find(const std::string &Name) const {
  for (const MetricSnapshot &M : Metrics)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

static const char *kindName(Telemetry::MetricSnapshot::Kind K) {
  switch (K) {
  case Telemetry::MetricSnapshot::Kind::Counter: return "counter";
  case Telemetry::MetricSnapshot::Kind::Gauge: return "gauge";
  case Telemetry::MetricSnapshot::Kind::Histogram: return "histogram";
  }
  return "?";
}

std::string Telemetry::Snapshot::json() const {
  std::string Out = "{\"metrics\":[";
  bool First = true;
  for (const MetricSnapshot &M : Metrics) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"name\":";
    appendJsonString(Out, M.Name);
    Out += ",\"kind\":\"";
    Out += kindName(M.K);
    Out += '"';
    char Buf[256];
    if (M.K == MetricSnapshot::Kind::Histogram) {
      std::snprintf(Buf, sizeof(Buf),
                    ",\"count\":%lld,\"sum\":%.6f,\"min\":%.6f,"
                    "\"max\":%.6f,\"mean\":%.6f,\"p50\":%.6f,"
                    "\"p95\":%.6f,\"p99\":%.6f",
                    static_cast<long long>(M.Value), M.Sum, M.Min, M.Max,
                    M.Mean, M.P50, M.P95, M.P99);
    } else {
      std::snprintf(Buf, sizeof(Buf), ",\"value\":%lld",
                    static_cast<long long>(M.Value));
    }
    Out += Buf;
    Out += '}';
  }
  Out += "]}";
  return Out;
}

std::string Telemetry::Snapshot::table() const {
  TablePrinter TP;
  TP.setHeader({"metric", "kind", "count/value", "sum", "mean", "p50",
                "p95", "p99", "max"});
  for (const MetricSnapshot &M : Metrics) {
    if (M.K == MetricSnapshot::Kind::Histogram)
      TP.addRow({M.Name, kindName(M.K), std::to_string(M.Value),
                 TablePrinter::fmt(M.Sum, 3), TablePrinter::fmt(M.Mean, 3),
                 TablePrinter::fmt(M.P50, 3), TablePrinter::fmt(M.P95, 3),
                 TablePrinter::fmt(M.P99, 3), TablePrinter::fmt(M.Max, 3)});
    else
      TP.addRow({M.Name, kindName(M.K), std::to_string(M.Value)});
  }
  return TP.render();
}

bool Telemetry::openTrace(const std::string &Path) {
  closeTrace();
  TelemetrySessionConfig Cfg;
  Cfg.Name = "default";
  Cfg.Path = Path;
  DefaultSession = streamer().openSession(std::move(Cfg));
  if (!DefaultSession)
    return false;
  Enabled = true;
  return true;
}

void Telemetry::closeTrace() {
  if (!DefaultSession)
    return;
  Streamer->closeSession(DefaultSession);
  DefaultSession.reset();
}

bool Telemetry::tracing() const { return Streamer && Streamer->active(); }

void Telemetry::emit(TraceEvent E) {
  if (Streamer && Streamer->active())
    Streamer->write(std::move(E));
}

TelemetryStreamer &Telemetry::streamer() {
  if (!Streamer)
    Streamer = std::make_unique<TelemetryStreamer>(*this);
  return *Streamer;
}

WindowAggregator &Telemetry::windows() {
  if (!Windows)
    Windows = std::make_unique<WindowAggregator>();
  return *Windows;
}
