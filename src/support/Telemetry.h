//===----------------------------------------------------------------------===//
///
/// \file
/// VM-wide telemetry: a process-wide registry of named counters, gauges,
/// and fixed-bucket histograms, plus a JSONL trace sink for span events.
///
/// The paper's entire evaluation is measurement (Table 1's pause
/// breakdown, Figure 5's throughput dip, §4.2's barrier narrative); this
/// module turns those one-off bench measurements into a subsystem. Every
/// VM layer records into the registry through cheap handles; tools dump a
/// snapshot (`jvolve-run --metrics`), servers answer an in-band stats
/// probe (`jvolve-serve`), and benches cross-check their private timers
/// against the registry.
///
/// Cost model: telemetry is **disabled by default**. Each record path is
/// one predictable branch on a global flag when disabled; when enabled,
/// counters are relaxed atomics and histograms write into preallocated
/// storage — the record path never allocates. Registration (name lookup)
/// happens once at subsystem construction, never per event.
///
/// Metric naming scheme (see docs/INTERNALS.md §10):
///   <namespace>.<subsystem>.<metric>[{label=value}]
/// e.g. `vm.gc.pause_ms`, `dsu.update.phase_ms{phase=gc}`.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_TELEMETRY_H
#define JVOLVE_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jvolve {

//===----------------------------------------------------------------------===//
// Standard metric names. Shared constants so producers (VM subsystems),
// consumers (tools, benches), and the pre-registration list in VM.cpp
// cannot drift apart.
//===----------------------------------------------------------------------===//

namespace metrics {
// threads/Scheduler
inline constexpr const char *SchedSafePoints = "vm.sched.safepoints";
inline constexpr const char *SchedSafePointWaitTicks =
    "vm.sched.safepoint.wait_ticks";
inline constexpr const char *SchedQuantumTicks = "vm.sched.quantum_ticks";
// heap/Heap + heap/Collector
inline constexpr const char *HeapObjectsAllocated =
    "vm.heap.objects_allocated";
inline constexpr const char *HeapBytesAllocated = "vm.heap.bytes_allocated";
inline constexpr const char *GcCollections = "vm.gc.collections";
inline constexpr const char *GcPauseMs = "vm.gc.pause_ms";
inline constexpr const char *GcBytesCopied = "vm.gc.bytes_copied";
inline constexpr const char *GcObjectsCopied = "vm.gc.objects_copied";
inline constexpr const char *GcSurvivorRate = "vm.gc.survivor_rate";
inline constexpr const char *GcDsuCollections = "vm.gc.dsu.collections";
inline constexpr const char *GcDsuPauseMs = "vm.gc.dsu.pause_ms";
inline constexpr const char *GcDsuBytesCopied = "vm.gc.dsu.bytes_copied";
inline constexpr const char *GcDsuObjectsRemapped =
    "vm.gc.dsu.objects_remapped";
// vm/Interpreter
inline constexpr const char *InterpInstructions = "vm.interp.instructions";
inline constexpr const char *InterpCallsVirtual = "vm.interp.calls_virtual";
inline constexpr const char *InterpCallsDirect = "vm.interp.calls_direct";
inline constexpr const char *InterpTraps = "vm.interp.traps";
// exec/Compiler
inline constexpr const char *JitCompilationsBaseline =
    "vm.jit.compilations{tier=baseline}";
inline constexpr const char *JitCompilationsOpt =
    "vm.jit.compilations{tier=opt}";
inline constexpr const char *JitTierPromotions = "vm.jit.tier_promotions";
// dsu/Updater
inline constexpr const char *DsuUpdatesScheduled = "dsu.updates.scheduled";
inline constexpr const char *DsuUpdatesApplied = "dsu.updates.applied";
inline constexpr const char *DsuUpdatesRolledBack = "dsu.updates.rolled_back";
inline constexpr const char *DsuUpdatesTimedOut = "dsu.updates.timed_out";
inline constexpr const char *DsuUpdatesRejected = "dsu.updates.rejected";
inline constexpr const char *DsuSafePointAttempts = "dsu.safepoint.attempts";
inline constexpr const char *DsuBarriersArmed = "dsu.barriers.armed";
inline constexpr const char *DsuBarriersFired = "dsu.barriers.fired";
inline constexpr const char *DsuOsrReplacements = "dsu.osr.replacements";
inline constexpr const char *DsuFramesRemapped = "dsu.frames.remapped";
inline constexpr const char *DsuObjectsTransformed =
    "dsu.objects.transformed";
inline constexpr const char *DsuCodeInvalidated = "dsu.code.invalidated";
inline constexpr const char *DsuTotalPauseMs =
    "dsu.update.phase_ms{phase=total}";
/// Safe-point deadline extensions per resolved update; samples only
/// quiescence-path outcomes (applied / timed-out / degraded), never
/// rollback aborts, which consume no retries.
inline constexpr const char *DsuUpdateRetries = "dsu.update.retries";
// dsu/Analysis (static update-safety analyzer)
inline constexpr const char *DsuAnalysisRuns = "dsu.analysis.runs";
inline constexpr const char *DsuAnalysisRejected = "dsu.analysis.rejected";
/// Gauges: sizes of the safe-point restriction sets computed for the most
/// recent analysis, and how many methods the precise (inline-aware) closure
/// un-restricts relative to the paper's conservative §3.3 closure.
inline constexpr const char *DsuAnalysisRestrictedPrecise =
    "dsu.analysis.restricted_precise";
inline constexpr const char *DsuAnalysisRestrictedConservative =
    "dsu.analysis.restricted_conservative";
inline constexpr const char *DsuAnalysisRestrictedDelta =
    "dsu.analysis.restricted_delta";
/// Gauge: size the precise set would have under CHA alone — the dataflow
/// refinement's shrink shows as restricted_cha - restricted_precise.
inline constexpr const char *DsuAnalysisRestrictedCha =
    "dsu.analysis.restricted_cha";
/// Gauge: wall-clock milliseconds the most recent analysis run took
/// (CHA + dataflow refinement together).
inline constexpr const char *DsuAnalysisRuntimeMs = "dsu.analysis.runtime_ms";
// dsu/Synthesis (transformer synthesis and impact bounding)
inline constexpr const char *DsuSynthRuns = "dsu.synth.runs";
inline constexpr const char *DsuSynthRenames = "dsu.synth.renames";
inline constexpr const char *DsuSynthFlagged = "dsu.synth.flagged";
/// Gauges: sizes of the most recent impact bound — classes the update can
/// touch, and updated classes provably untouched at the instance level.
inline constexpr const char *DsuImpactClasses = "dsu.impact.classes";
inline constexpr const char *DsuImpactUntouched = "dsu.impact.untouched";
/// Log entries the impact-bounded lazy engine settled in bulk at arm time
/// (bitwise-copied shells of layout-unchanged classes).
inline constexpr const char *DsuImpactBulkSettled = "dsu.impact.bulk_settled";
// dsu/LazyTransform (lazy object-transformation engine)
inline constexpr const char *DsuLazyUpdates = "dsu.lazy.updates";
inline constexpr const char *DsuLazyBarrierHits = "dsu.lazy.barrier_hits";
inline constexpr const char *DsuLazyOnDemandTransforms =
    "dsu.lazy.on_demand_transforms";
inline constexpr const char *DsuLazyBackgroundTransforms =
    "dsu.lazy.background_transforms";
inline constexpr const char *DsuLazyDrainTicks = "dsu.lazy.drain_ticks";
inline constexpr const char *DsuLazyFailed = "dsu.lazy.failed_transforms";
/// Gauge: untransformed shells still registered with the live engine
/// (0 once drained; the barrier retires right after).
inline constexpr const char *DsuLazyPending = "dsu.lazy.pending";
// dsu/Quiescence (escalation ladder)
inline constexpr const char *DsuQuiescenceExpiries =
    "dsu.quiescence.expiries";
inline constexpr const char *DsuQuiescenceRescuedFrames =
    "dsu.quiescence.rescued_frames";
inline constexpr const char *DsuQuiescenceForcedYields =
    "dsu.quiescence.forced_yields";
inline constexpr const char *DsuQuiescenceDegraded =
    "dsu.quiescence.degraded";
// dsu/Canary (post-commit canary windows)
inline constexpr const char *DsuCanaryWindows = "dsu.canary.windows";
inline constexpr const char *DsuCanaryChecks = "dsu.canary.checks";
inline constexpr const char *DsuCanaryBreaches = "dsu.canary.breaches";
inline constexpr const char *DsuCanaryRetired = "dsu.canary.retired";
/// Gauge: 1 while a canary window is observing or reverting, 0 otherwise.
inline constexpr const char *DsuCanaryOpen = "dsu.canary.open";
// dsu/Revert (health-gated automatic revert)
inline constexpr const char *DsuRevertAttempts = "dsu.revert.attempts";
inline constexpr const char *DsuRevertCompleted = "dsu.revert.completed";
inline constexpr const char *DsuRevertFailed = "dsu.revert.failed";
/// Gauge: new-version instances still on the heap after a revert
/// completed (0 when the revert converged).
inline constexpr const char *DsuRevertResidualNewObjects =
    "dsu.revert.residual_new_objects";
// dsu/CodeVersion (per-method code versioning; see docs/INTERNALS.md §19)
/// Gauges — deliberately not preregistered (like dsu.revert.completed):
/// their presence in a snapshot proves a versioned install ran, which
/// tier1's `metrics-diff.py --require 'dsu.codeversion.*'` gate asserts.
/// Method bodies installed through versioned (pause-free) installs.
inline constexpr const char *DsuCodeVersionInstalls =
    "dsu.codeversion.installs";
/// Active-version switches committed (one per body-set install or
/// revert pop — the epoch value threads poll against).
inline constexpr const char *DsuCodeVersionSwitches =
    "dsu.codeversion.switches";
/// Methods with a live version chain (>= one archived version).
inline constexpr const char *DsuCodeVersionChains = "dsu.codeversion.chains";
/// In-flight frames still executing a superseded body; drains to zero as
/// each finishes on its old version (rejit-generation semantics).
inline constexpr const char *DsuCodeVersionStaleFrames =
    "dsu.codeversion.stale_frames";
// vm/Network (update-time traffic draining)
inline constexpr const char *NetShedTotal = "net.shed_total";
inline constexpr const char *NetDrains = "net.drains";
inline constexpr const char *NetDrainMs = "net.drain_ms";
/// Per-response service latency in virtual ticks (consumed-request to
/// response send). Feeds the windowed stats view and the canary latency
/// monitor's per-window mean.
inline constexpr const char *NetLatencyTicks = "net.latency_ticks";
inline constexpr const char *NetResponses = "net.responses";
// support/TelemetryStream (streaming sessions; see docs/INTERNALS.md §15)
/// Events lost at producer buffers because a ring wrapped before the
/// writer drained it. Every drop is counted — emitted + dropped always
/// equals events attempted.
inline constexpr const char *TelemetryDroppedTotal =
    "telemetry.dropped_total";
inline constexpr const char *TelemetryEventsAttempted =
    "telemetry.events_attempted";
inline constexpr const char *TelemetryEventsStreamed =
    "telemetry.events_streamed";
inline constexpr const char *TelemetryBlocksFlushed =
    "telemetry.blocks_flushed";
inline constexpr const char *TelemetrySessionsOpened =
    "telemetry.sessions_opened";
/// Events discarded by a TraceSink whose file never opened (or that was
/// handed events after a write failure) — file-layer loss, distinct from
/// the producer-buffer loss above.
inline constexpr const char *TelemetryTraceDropped =
    "telemetry.trace.dropped";
// support/ChaosCampaign (fault-space campaigns; see docs/INTERNALS.md §17)
/// Gauges published by jvolve-chaos: the (site, fire-index) probe points
/// the campaign attempted, and the subset whose armed fault verifiably
/// fired — scripts/metrics-diff.py --require gates on both.
inline constexpr const char *FaultCoverageProbes = "fault.coverage.probes";
inline constexpr const char *FaultCoverageCovered =
    "fault.coverage.covered";

/// Update-phase histogram name: `dsu.update.phase_ms{phase=<Phase>}`.
/// Phases: snapshot, classload, stack_repair, gc, transform, certify,
/// rollback, codeversion, total.
std::string dsuPhaseMs(const std::string &Phase);

/// Fault-firing counter name: `dsu.faults.fired{site=<Site>}`.
std::string faultFired(const std::string &Site);
} // namespace metrics

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

class Telemetry;

/// A monotonically increasing counter. Handles stay valid for the process
/// lifetime; recording is one branch when telemetry is disabled.
class TelCounter {
public:
  void add(uint64_t N = 1);
  void inc() { add(1); }
  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class Telemetry;
  TelCounter() = default;
  std::atomic<uint64_t> Value{0};
};

/// A last-value-wins signed gauge.
class TelGauge {
public:
  void set(int64_t V);
  void add(int64_t Delta);
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class Telemetry;
  TelGauge() = default;
  std::atomic<int64_t> Value{0};
};

/// A fixed-bucket histogram plus count/sum/min/max and a bounded,
/// preallocated reservoir of raw samples for percentile computation.
/// record() never allocates.
class TelHistogram {
public:
  void record(double V);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum; }
  double min() const { return count() ? Min : 0; }
  double max() const { return count() ? Max : 0; }
  double mean() const;
  /// Linear-interpolated percentile (0..100) over the retained samples;
  /// 0 when empty. Exact while fewer than sampleCapacity() values were
  /// recorded, approximate (most recent window) afterwards.
  double percentile(double P) const;

  const std::vector<double> &bucketBounds() const { return Bounds; }
  /// Bucket I counts samples <= Bounds[I]; the last bucket is +inf.
  uint64_t bucketCount(size_t I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }
  size_t numBuckets() const { return Bounds.size() + 1; }
  /// Number of raw samples currently retained (<= sampleCapacity()).
  size_t samplesRetained() const;
  size_t sampleCapacity() const { return Samples.size(); }
  /// Total samples ever recorded (a watermark for samplesSince).
  uint64_t samplesSeen() const { return SamplesSeen; }
  /// Appends the samples recorded after watermark \p Seen (oldest first)
  /// to \p Out and advances \p Seen to the current samplesSeen(). Only the
  /// ring capacity of history exists: when more than sampleCapacity()
  /// samples landed since the watermark, only the most recent
  /// sampleCapacity() are returned. Same thread-affinity caveat as the
  /// reservoir itself (VM thread only).
  void samplesSince(uint64_t &Seen, std::vector<double> &Out) const;

private:
  friend class Telemetry;
  TelHistogram(std::vector<double> InBounds, size_t SampleCap);

  std::vector<double> Bounds; ///< ascending upper bounds
  std::vector<std::atomic<uint64_t>> Buckets;
  std::atomic<uint64_t> Count{0};
  // Sum/min/max and the reservoir are plain values: the green-thread VM
  // records from a single OS thread. The atomic counters above keep the
  // layout ready for striping if that ever changes.
  double Sum = 0;
  double Min = 0;
  double Max = 0;
  std::vector<double> Samples; ///< preallocated ring of recent samples
  size_t NextSample = 0;
  uint64_t SamplesSeen = 0;
};

//===----------------------------------------------------------------------===//
// Trace sink
//===----------------------------------------------------------------------===//

/// One structured trace event: either a span (a phase with a duration) or
/// a point event (EndTick == StartTick, Ms == 0 allowed). Timestamps are
/// virtual ticks; Ms carries wall-clock duration for spans that elapse
/// inside a stop-the-world pause where virtual time stands still.
struct TraceEvent {
  std::string Name;    ///< e.g. "dsu.update.phase", "dsu.update.event"
  std::string Phase;   ///< label: phase name or event kind
  uint64_t StartTick = 0;
  uint64_t EndTick = 0;
  double Ms = 0;
  int64_t Value = 0;
  std::string Detail;
  /// Producer identity, stamped by the streaming layer: the id of the
  /// thread buffer this event went through and its per-thread sequence
  /// number (1-based; 0 = not streamed). A gap in Seq within one Tid is a
  /// dropped event — never silent reordering.
  uint64_t Tid = 0;
  uint64_t Seq = 0;

  /// Renders one JSONL line (no trailing newline).
  std::string jsonLine() const;
  /// Parses a line produced by jsonLine(). \returns false on malformed
  /// input. Unknown keys are ignored; tid/seq are optional (older traces
  /// predate them).
  static bool parseLine(const std::string &Line, TraceEvent &Out);
};

/// Ring-buffered JSONL writer: events accumulate in a fixed-size buffer
/// and stream to the file whenever it fills (bounded memory, complete
/// file). Owned by the Telemetry registry; see Telemetry::openTrace.
class TraceSink {
public:
  explicit TraceSink(const std::string &Path, size_t BufferEvents = 4096);
  ~TraceSink();

  TraceSink(const TraceSink &) = delete;
  TraceSink &operator=(const TraceSink &) = delete;

  bool ok() const { return Out != nullptr; }
  const std::string &path() const { return Path; }

  void emit(TraceEvent E);
  /// Writes every buffered event to the file and empties the buffer.
  void flush();

  uint64_t eventsEmitted() const { return NumEmitted; }
  /// Events handed to a sink that had no open file (or whose writes
  /// started failing): discarded, but never silently — the count is also
  /// published as `telemetry.trace.dropped`.
  uint64_t eventsDropped() const { return NumDropped; }

private:
  std::string Path;
  std::FILE *Out = nullptr;
  std::vector<TraceEvent> Buffer;
  size_t BufferCap;
  uint64_t NumEmitted = 0;
  uint64_t NumDropped = 0;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

class TelemetryStreamer;
class TelemetrySession;
class WindowAggregator;

/// The process-wide telemetry registry.
class Telemetry {
public:
  /// The singleton. First call honors the JVOLVE_TELEMETRY=1 and
  /// JVOLVE_TRACE_OUT=<file> environment variables, so instrumented runs
  /// need no code changes (scripts/tier1.sh uses this).
  static Telemetry &global();

  /// Global enabled flag; the single branch every record path takes.
  static bool isEnabled() { return Enabled; }
  void setEnabled(bool V) { Enabled = V; }

  /// Finds or creates an instrument. Creation allocates; call once at
  /// subsystem construction and keep the handle. Handles are never
  /// invalidated. A histogram's bucket bounds are fixed by its first
  /// registration; \p BucketBounds must be ascending.
  TelCounter &counter(const std::string &Name);
  TelGauge &gauge(const std::string &Name);
  TelHistogram &histogram(const std::string &Name,
                          std::vector<double> BucketBounds = {});

  /// \returns the registered instrument, or nullptr. (Snapshot-free reads
  /// for tests and the stats probe.)
  const TelCounter *findCounter(const std::string &Name) const;
  const TelGauge *findGauge(const std::string &Name) const;
  const TelHistogram *findHistogram(const std::string &Name) const;

  /// Name-sorted enumeration of every registered instrument, for the
  /// window aggregator (VM thread; handles stay valid forever).
  std::vector<std::pair<std::string, TelCounter *>> allCounters();
  std::vector<std::pair<std::string, TelHistogram *>> allHistograms();

  /// Registry sizes — cheap staleness checks so per-window rollers only
  /// re-enumerate (and pay allCounters()'s string copies) when a metric
  /// was actually registered since they last looked.
  size_t numCounters() const { return Counters.size(); }
  size_t numHistograms() const { return Histograms.size(); }

  /// Zeroes every instrument's values; registrations persist.
  void reset();

  //===--- Snapshots --------------------------------------------------------===//

  struct MetricSnapshot {
    enum class Kind { Counter, Gauge, Histogram };
    std::string Name;
    Kind K = Kind::Counter;
    int64_t Value = 0;   ///< counter/gauge value; histogram count
    double Sum = 0;      ///< histogram only
    double Min = 0, Max = 0, Mean = 0;
    double P50 = 0, P95 = 0, P99 = 0;
  };

  /// Deterministic (name-sorted) snapshot of every registered metric.
  struct Snapshot {
    std::vector<MetricSnapshot> Metrics;

    const MetricSnapshot *find(const std::string &Name) const;
    /// One JSON object: {"metrics":[{...},...]} with stable ordering.
    std::string json() const;
    /// Column-aligned table via TablePrinter.
    std::string table() const;
  };

  Snapshot snapshot() const;

  //===--- Streaming trace (support/TelemetryStream.h) ----------------------===//

  /// Opens the default streaming session writing JSONL to \p Path
  /// (replacing any previous default session). \returns false when the
  /// file cannot be created. Also enables telemetry: a trace without
  /// metrics is never what the operator meant.
  bool openTrace(const std::string &Path);
  /// Synchronously drains every thread buffer, flushes, and closes the
  /// default session — the file is complete when this returns.
  void closeTrace();
  /// True while any streaming session (default or explicit) is open.
  bool tracing() const;

  /// Routes \p E into the calling thread's event buffer when a session is
  /// open; no-op otherwise. Wait-free on the hot path.
  void emit(TraceEvent E);

  /// The streaming buffer manager (sessions, drop accounting). Created on
  /// first use; immortal like the registry itself.
  TelemetryStreamer &streamer();
  bool hasStreamer() const { return Streamer != nullptr; }

  /// The windowed event-counter aggregator (jvolve-serve --stats,
  /// jvolve-run --stats-window, canary latency baseline). VM-thread only.
  WindowAggregator &windows();

  /// Default histogram bucket upper bounds (powers-of-two style ladder
  /// covering sub-ms pauses through multi-second stalls and tick counts).
  static std::vector<double> defaultBuckets();

private:
  Telemetry();
  ~Telemetry(); // never runs (the singleton is immortal); defined where
                // TelemetryStreamer is complete so members destruct

  static bool Enabled;

  // std::map: deterministic iteration order for snapshots.
  std::map<std::string, std::unique_ptr<TelCounter>> Counters;
  std::map<std::string, std::unique_ptr<TelGauge>> Gauges;
  std::map<std::string, std::unique_ptr<TelHistogram>> Histograms;
  std::unique_ptr<TelemetryStreamer> Streamer;
  std::unique_ptr<WindowAggregator> Windows;
  std::shared_ptr<TelemetrySession> DefaultSession;
};

inline void TelCounter::add(uint64_t N) {
  if (!Telemetry::isEnabled())
    return;
  Value.fetch_add(N, std::memory_order_relaxed);
}

inline void TelGauge::set(int64_t V) {
  if (!Telemetry::isEnabled())
    return;
  Value.store(V, std::memory_order_relaxed);
}

inline void TelGauge::add(int64_t Delta) {
  if (!Telemetry::isEnabled())
    return;
  Value.fetch_add(Delta, std::memory_order_relaxed);
}

} // namespace jvolve

#endif // JVOLVE_SUPPORT_TELEMETRY_H
