#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace jvolve;

void jvolve::fatalError(const std::string &Message) {
  std::fprintf(stderr, "jvolve fatal error: %s\n", Message.c_str());
  std::abort();
}

void jvolve::unreachable(const char *Message) {
  std::fprintf(stderr, "jvolve unreachable: %s\n", Message);
  std::abort();
}
