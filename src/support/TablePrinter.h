//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table output for the benchmark harnesses, which
/// regenerate the paper's tables (Figure 5, Table 1, Tables 2-4).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_TABLEPRINTER_H
#define JVOLVE_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace jvolve {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
public:
  /// Sets the header row.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row. Rows may have differing cell counts.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table to a string, columns separated by two spaces, with a
  /// dashed rule under the header.
  std::string render() const;

  /// Formats \p Value with \p Decimals fractional digits.
  static std::string fmt(double Value, int Decimals = 1);

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace jvolve

#endif // JVOLVE_SUPPORT_TABLEPRINTER_H
