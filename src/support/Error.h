//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and invariant checking used throughout the VM.
///
/// MiniVM follows the LLVM convention of treating programmatic errors
/// (violated invariants) as immediately fatal: we print a diagnostic and
/// abort. Recoverable conditions (e.g. "this update cannot be applied") are
/// modeled with explicit result types at the API level instead.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_ERROR_H
#define JVOLVE_SUPPORT_ERROR_H

#include <string>

namespace jvolve {

/// Prints \p Message to stderr and aborts the process.
///
/// Use for broken invariants that indicate a bug in the VM itself, never for
/// conditions a caller could reasonably handle.
[[noreturn]] void fatalError(const std::string &Message);

/// Marks a code path that must be unreachable if VM invariants hold.
[[noreturn]] void unreachable(const char *Message);

} // namespace jvolve

#endif // JVOLVE_SUPPORT_ERROR_H
