//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and invariant checking used throughout the VM.
///
/// MiniVM follows the LLVM convention of treating programmatic errors
/// (violated invariants) as immediately fatal: we print a diagnostic and
/// abort. Recoverable conditions (e.g. "this update cannot be applied") are
/// modeled with explicit result types at the API level instead.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_ERROR_H
#define JVOLVE_SUPPORT_ERROR_H

#include <string>

namespace jvolve {

/// Prints \p Message to stderr and aborts the process.
///
/// Use for broken invariants that indicate a bug in the VM itself, never for
/// conditions a caller could reasonably handle.
[[noreturn]] void fatalError(const std::string &Message);

/// Marks a code path that must be unreachable if VM invariants hold.
[[noreturn]] void unreachable(const char *Message);

/// A recoverable failure inside an update transaction.
///
/// Thrown between the updater's pre-install snapshot and the commit point —
/// by the install steps (failed class load or resolution), the DSU-extended
/// collection (to-space exhaustion), and the transformer runtime (unknown
/// field/class, transformer cycle, heap exhaustion). The updater catches it,
/// restores the snapshot, and resolves the update to a terminal status
/// (`RolledBack` / `FailedTransformer`) instead of killing the VM.
///
/// The phase tag names the update step that failed; the updater uses it to
/// pick the terminal status and the trace records it verbatim. Well-known
/// phases: "class-load", "install", "dsu-gc", "transform".
class UpdateError {
public:
  UpdateError(std::string Phase, std::string Message)
      : Phase(std::move(Phase)), Message(std::move(Message)) {}

  const std::string &phase() const { return Phase; }
  const std::string &message() const { return Message; }
  std::string str() const { return Phase + ": " + Message; }

private:
  std::string Phase;
  std::string Message;
};

} // namespace jvolve

#endif // JVOLVE_SUPPORT_ERROR_H
