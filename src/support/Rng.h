//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generator (xorshift64*) used by the
/// workload generators so benchmark runs are reproducible.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_RNG_H
#define JVOLVE_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace jvolve {

/// Deterministic xorshift64* generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL)
      : State(Seed ? Seed : 1) {}

  /// \returns the next raw 64-bit value.
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dULL;
  }

  /// \returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// \returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  uint64_t State;
};

} // namespace jvolve

#endif // JVOLVE_SUPPORT_RNG_H
