#include "support/StringUtils.h"

using namespace jvolve;

std::vector<std::string> jvolve::splitString(const std::string &Text, char Sep,
                                             size_t Limit) {
  std::vector<std::string> Parts;
  size_t Pos = 0;
  while (true) {
    if (Limit != 0 && Parts.size() + 1 == Limit) {
      Parts.push_back(Text.substr(Pos));
      return Parts;
    }
    size_t Next = Text.find(Sep, Pos);
    if (Next == std::string::npos) {
      Parts.push_back(Text.substr(Pos));
      return Parts;
    }
    Parts.push_back(Text.substr(Pos, Next - Pos));
    Pos = Next + 1;
  }
}

bool jvolve::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.compare(0, Prefix.size(), Prefix) == 0;
}

std::string jvolve::joinStrings(const std::vector<std::string> &Parts,
                                const std::string &Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
