#include "support/FaultInjector.h"

#include "support/Error.h"
#include "support/Telemetry.h"

#include <cstdlib>

using namespace jvolve;

std::vector<FaultInjector::Site> FaultInjector::allSites() {
  std::vector<Site> Sites;
  for (size_t I = 0; I < NumSites; ++I)
    Sites.push_back(static_cast<Site>(I));
  return Sites;
}

std::vector<std::string> FaultInjector::allSiteNames() {
  std::vector<std::string> Names;
  for (Site S : allSites())
    Names.push_back(siteName(S));
  return Names;
}

const char *FaultInjector::siteName(Site S) {
  switch (S) {
  case Site::ClassLoad: return "class-load";
  case Site::TransformerNthObject: return "transformer-nth-object";
  case Site::TransformerCycle: return "transformer-cycle";
  case Site::GcAllocExhaustion: return "gc-alloc-exhaustion";
  case Site::SafePointStarvation: return "safe-point-starvation";
  case Site::QuiescenceWatchdogExpiry: return "quiescence-watchdog-expiry";
  case Site::NetSlowClient: return "net-slow-client";
  case Site::LazyDrainTransformer: return "lazy-drain-transformer";
  case Site::CanaryHealthBreach: return "canary-health-breach";
  case Site::HeapAllocNth: return "heap-alloc-nth";
  case Site::BundleTruncated: return "bundle-truncated";
  case Site::TelemetryWriterStall: return "telemetry-writer-stall";
  case Site::SynthTransformerField: return "synth-transformer-field";
  case Site::CodeVersionInstall: return "codeversion-install";
  }
  unreachable("bad fault site");
}

bool FaultInjector::armFromSpec(const std::string &Spec, std::string *Err) {
  auto Fail = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  size_t C1 = Spec.find(':');
  std::string Name = Spec.substr(0, C1);
  Site S;
  if (!siteByName(Name, S))
    return Fail("unknown fault site '" + Name + "'");
  uint64_t Fire = 1, Skip = 0;
  if (C1 != std::string::npos) {
    char *End = nullptr;
    Fire = std::strtoull(Spec.c_str() + C1 + 1, &End, 10);
    if (End == Spec.c_str() + C1 + 1)
      return Fail("malformed fire count in '" + Spec + "'");
    if (*End == ':') {
      char *End2 = nullptr;
      Skip = std::strtoull(End + 1, &End2, 10);
      if (End2 == End + 1)
        return Fail("malformed skip count in '" + Spec + "'");
    }
  }
  arm(S, Fire, Skip);
  return true;
}

bool FaultInjector::armFromSpecList(const std::string &List,
                                    std::vector<std::string> *Errors) {
  bool Ok = true;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    size_t End = Comma == std::string::npos ? List.size() : Comma;
    std::string Spec = List.substr(Pos, End - Pos);
    // Trim surrounding spaces so pasted lists survive shell quoting.
    while (!Spec.empty() && Spec.front() == ' ')
      Spec.erase(Spec.begin());
    while (!Spec.empty() && Spec.back() == ' ')
      Spec.pop_back();
    if (!Spec.empty()) {
      std::string Err;
      if (!armFromSpec(Spec, &Err)) {
        Ok = false;
        if (Errors)
          Errors->push_back(Err);
      }
    }
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  return Ok;
}

bool FaultInjector::siteByName(const std::string &Name, Site &Out) {
  for (size_t I = 0; I < NumSites; ++I) {
    Site S = static_cast<Site>(I);
    if (Name == siteName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

void FaultInjector::arm(Site S, uint64_t Fire, uint64_t Skip) {
  SiteState &St = state(S);
  St.M = SiteState::Mode::Counted;
  St.Skip = Skip;
  St.Fire = Fire;
  St.Probes = 0;
  St.Fires = 0;
}

void FaultInjector::armRandom(Site S, double Probability, uint64_t Seed) {
  SiteState &St = state(S);
  St.M = SiteState::Mode::Random;
  St.Probability = Probability;
  St.Seed = Seed;
  St.R = Rng(Seed);
  St.Probes = 0;
  St.Fires = 0;
}

void FaultInjector::disarm(Site S) { state(S).M = SiteState::Mode::Off; }

void FaultInjector::reset() {
  for (SiteState &St : Sites)
    St = SiteState();
  FirstFireSnapshot = SiteCounts{};
  HasFired = false;
}

void FaultInjector::resetCounters() {
  for (SiteState &St : Sites) {
    St.Probes = 0;
    St.Fires = 0;
    if (St.M == SiteState::Mode::Random)
      St.R = Rng(St.Seed);
  }
  FirstFireSnapshot = SiteCounts{};
  HasFired = false;
}

bool FaultInjector::armed(Site S) const {
  return state(S).M != SiteState::Mode::Off;
}

bool FaultInjector::probe(Site S) {
  SiteState &St = state(S);
  ++St.Probes;
  bool Fail = false;
  switch (St.M) {
  case SiteState::Mode::Off:
    break;
  case SiteState::Mode::Counted:
    Fail = St.Probes > St.Skip && St.Probes <= St.Skip + St.Fire;
    break;
  case SiteState::Mode::Random:
    Fail = St.R.nextDouble() < St.Probability;
    break;
  }
  St.Fires += Fail;
  if (Fail && !HasFired) {
    HasFired = true;
    FirstFireSnapshot = probeCounts();
  }
  if (Fail && Telemetry::isEnabled())
    Telemetry::global().counter(metrics::faultFired(siteName(S))).inc();
  return Fail;
}

uint64_t FaultInjector::probeCount(Site S) const { return state(S).Probes; }

uint64_t FaultInjector::fireCount(Site S) const { return state(S).Fires; }

FaultInjector::SiteCounts FaultInjector::probeCounts() const {
  SiteCounts Counts{};
  for (size_t I = 0; I < NumSites; ++I)
    Counts[I] = Sites[I].Probes;
  return Counts;
}

FaultInjector::SiteCounts FaultInjector::fireCounts() const {
  SiteCounts Counts{};
  for (size_t I = 0; I < NumSites; ++I)
    Counts[I] = Sites[I].Fires;
  return Counts;
}

FaultInjector::SiteCounts FaultInjector::probesAtFirstFire() const {
  return FirstFireSnapshot;
}

bool FaultInjector::anyFired() const { return HasFired; }
