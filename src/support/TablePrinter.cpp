#include "support/TablePrinter.h"

#include <cstdio>

using namespace jvolve;

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(std::move(Cells));
}

std::string TablePrinter::fmt(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TablePrinter::render() const {
  // Compute per-column widths over the header and all rows.
  std::vector<size_t> Widths;
  auto Widen = [&Widths](const std::vector<std::string> &Cells) {
    if (Cells.size() > Widths.size())
      Widths.resize(Cells.size(), 0);
    for (size_t I = 0; I < Cells.size(); ++I)
      if (Cells[I].size() > Widths[I])
        Widths[I] = Cells[I].size();
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  auto Emit = [&Widths](std::string &Out, const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I) {
      Out += Cells[I];
      if (I + 1 == Cells.size())
        break;
      Out.append(Widths[I] - Cells[I].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  if (!Header.empty()) {
    Emit(Out, Header);
    size_t Total = 0;
    for (size_t W : Widths)
      Total += W + 2;
    Out.append(Total > 2 ? Total - 2 : Total, '-');
    Out += '\n';
  }
  for (const auto &Row : Rows)
    Emit(Out, Row);
  return Out;
}
