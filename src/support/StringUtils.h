//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers shared by the bytecode layer, the UPT, and the
/// transformer runtime (e.g. the e-mail address split in Figure 3).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_SUPPORT_STRINGUTILS_H
#define JVOLVE_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace jvolve {

/// Splits \p Text on \p Sep into at most \p Limit pieces (0 = unlimited),
/// mirroring Java's String.split(sep, limit) for literal separators.
std::vector<std::string> splitString(const std::string &Text, char Sep,
                                     size_t Limit = 0);

/// \returns true if \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        const std::string &Sep);

} // namespace jvolve

#endif // JVOLVE_SUPPORT_STRINGUTILS_H
