#include "dsu/Upt.h"

#include "bytecode/Builtins.h"

#include <algorithm>
#include <map>
#include <set>

using namespace jvolve;

std::vector<std::string> Upt::referencedClasses(const MethodDef &M) {
  std::set<std::string> Names;
  for (const Instr &I : M.Code) {
    switch (I.Op) {
    case Opcode::New:
    case Opcode::InstanceOf:
    case Opcode::CheckCast:
      Names.insert(I.Sym);
      break;
    case Opcode::GetField: case Opcode::PutField:
    case Opcode::GetStatic: case Opcode::PutStatic:
    case Opcode::InvokeVirtual: case Opcode::InvokeStatic:
    case Opcode::InvokeSpecial: {
      size_t Dot = I.Sym.find('.');
      if (Dot != std::string::npos)
        Names.insert(I.Sym.substr(0, Dot));
      break;
    }
    case Opcode::NewArray: {
      // The element descriptor can itself be an array ("[[LFoo;"): peel to
      // the base class.
      if (Type::isValidDescriptor(I.Sig) && I.Sig != "V") {
        Type T = Type::parse(I.Sig);
        while (T.isArray())
          T = T.elementType();
        if (T.isRef())
          Names.insert(T.className());
      }
      break;
    }
    default:
      break;
    }
  }
  return {Names.begin(), Names.end()};
}

bool Upt::classSignatureChanged(const ClassDef &OldCls,
                                const ClassDef &NewCls) {
  if (OldCls.Super != NewCls.Super)
    return true;
  // Field layout: order-sensitive comparison of everything that affects
  // offsets, types, or access rules.
  if (OldCls.Fields.size() != NewCls.Fields.size())
    return true;
  for (size_t I = 0; I < OldCls.Fields.size(); ++I) {
    const FieldDef &A = OldCls.Fields[I];
    const FieldDef &B = NewCls.Fields[I];
    if (A.Name != B.Name || A.TypeDesc != B.TypeDesc ||
        A.IsStatic != B.IsStatic || A.IsFinal != B.IsFinal ||
        A.Visibility != B.Visibility)
      return true;
  }
  // Method set: order-sensitive because TIB slots are assigned in
  // declaration order.
  if (OldCls.Methods.size() != NewCls.Methods.size())
    return true;
  for (size_t I = 0; I < OldCls.Methods.size(); ++I) {
    const MethodDef &A = OldCls.Methods[I];
    const MethodDef &B = NewCls.Methods[I];
    if (A.Name != B.Name || A.Sig != B.Sig || A.IsStatic != B.IsStatic ||
        A.Visibility != B.Visibility)
      return true;
  }
  return false;
}

/// Field-diff counters; a type or static-ness change counts as del+add, a
/// modifier-only change counts separately (it is a class update but does
/// not appear in the add/del columns of the paper's tables).
static void summarizeFieldDiff(const ClassDef &OldCls, const ClassDef &NewCls,
                               UpdateSummary &Sum) {
  for (const FieldDef &NF : NewCls.Fields) {
    const FieldDef *OF = OldCls.findField(NF.Name);
    if (!OF) {
      ++Sum.FieldsAdded;
      continue;
    }
    if (OF->TypeDesc != NF.TypeDesc || OF->IsStatic != NF.IsStatic) {
      ++Sum.FieldsAdded;
      ++Sum.FieldsDeleted;
    } else if (OF->IsFinal != NF.IsFinal ||
               OF->Visibility != NF.Visibility) {
      ++Sum.FieldsModifierChanged;
    }
  }
  for (const FieldDef &OF : OldCls.Fields)
    if (!NewCls.findField(OF.Name))
      ++Sum.FieldsDeleted;
}

/// Method-diff counters. Methods are paired by name; leftovers after
/// matching identical signatures are paired up as signature changes, and
/// the remainder count as additions/deletions.
static void summarizeMethodDiff(const ClassDef &OldCls,
                                const ClassDef &NewCls, UpdateSummary &Sum) {
  std::map<std::string, std::multiset<std::string>> OldByName, NewByName;
  for (const MethodDef &M : OldCls.Methods)
    OldByName[M.Name].insert(M.Sig);
  for (const MethodDef &M : NewCls.Methods)
    NewByName[M.Name].insert(M.Sig);

  std::set<std::string> Names;
  for (const auto &[Name, Sigs] : OldByName)
    Names.insert(Name);
  for (const auto &[Name, Sigs] : NewByName)
    Names.insert(Name);

  for (const std::string &Name : Names) {
    std::multiset<std::string> OldSigs = OldByName[Name];
    std::multiset<std::string> NewSigs = NewByName[Name];
    // Remove exact signature matches.
    for (auto It = OldSigs.begin(); It != OldSigs.end();) {
      auto NIt = NewSigs.find(*It);
      if (NIt != NewSigs.end()) {
        NewSigs.erase(NIt);
        It = OldSigs.erase(It);
      } else {
        ++It;
      }
    }
    size_t Paired = std::min(OldSigs.size(), NewSigs.size());
    Sum.MethodsSigChanged += static_cast<int>(Paired);
    Sum.MethodsDeleted += static_cast<int>(OldSigs.size() - Paired);
    Sum.MethodsAdded += static_cast<int>(NewSigs.size() - Paired);
  }
}

UpdateSpec Upt::computeSpec(const ClassSet &Old0, const ClassSet &New0,
                            const std::vector<MethodRef> &Blacklist) {
  ClassSet Old = Old0, New = New0;
  ensureBuiltins(Old);
  ensureBuiltins(New);

  UpdateSpec S;
  S.Blacklist = Blacklist;

  for (const auto &[Name, Cls] : Old.classes()) {
    if (isBuiltinClass(Name))
      continue;
    if (!New.contains(Name)) {
      S.DeletedClasses.push_back(Name);
      ++S.Summary.ClassesDeleted;
    }
  }
  for (const auto &[Name, Cls] : New.classes()) {
    if (isBuiltinClass(Name))
      continue;
    if (!Old.contains(Name)) {
      S.AddedClasses.push_back(Name);
      ++S.Summary.ClassesAdded;
    }
  }

  // Per-class diffs.
  for (const auto &[Name, NewCls] : New.classes()) {
    if (isBuiltinClass(Name))
      continue;
    const ClassDef *OldCls = Old.find(Name);
    if (!OldCls)
      continue;

    bool SigChanged = classSignatureChanged(*OldCls, NewCls);
    bool AnyChange = SigChanged;

    for (const MethodDef &M : NewCls.Methods) {
      const MethodDef *OM = OldCls->findMethod(M.Name, M.Sig);
      if (OM && OM->IsStatic == M.IsStatic && !OM->codeEquals(M)) {
        S.MethodBodyUpdates.push_back({Name, M.Name, M.Sig});
        ++S.Summary.MethodsBodyChanged;
        AnyChange = true;
      }
    }

    if (SigChanged)
      S.DirectClassUpdates.push_back(Name);
    if (AnyChange)
      ++S.Summary.ClassesChanged;

    summarizeFieldDiff(*OldCls, NewCls, S.Summary);
    summarizeMethodDiff(*OldCls, NewCls, S.Summary);
  }

  // Transitive subclass closure over the *new* hierarchy: an updated parent
  // changes the layout of every descendant.
  std::set<std::string> Updated(S.DirectClassUpdates.begin(),
                                S.DirectClassUpdates.end());
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (const auto &[Name, Cls] : New.classes()) {
      if (isBuiltinClass(Name) || Updated.count(Name) ||
          !Old.contains(Name))
        continue;
      if (!Cls.Super.empty() && Updated.count(Cls.Super)) {
        Updated.insert(Name);
        Grew = true;
      }
    }
  }
  S.ClassUpdates.assign(Updated.begin(), Updated.end());

  // Removed methods (restricted): methods of class-updated classes that no
  // longer exist with the same signature, plus every method of every
  // deleted class.
  for (const std::string &Name : S.ClassUpdates) {
    const ClassDef *OldCls = Old.find(Name);
    const ClassDef *NewCls = New.find(Name);
    if (!OldCls || !NewCls)
      continue;
    for (const MethodDef &M : OldCls->Methods)
      if (!NewCls->findMethod(M.Name, M.Sig))
        S.RemovedMethods.push_back({Name, M.Name, M.Sig});
  }
  for (const std::string &Name : S.DeletedClasses) {
    const ClassDef *OldCls = Old.find(Name);
    for (const MethodDef &M : OldCls->Methods)
      S.RemovedMethods.push_back({Name, M.Name, M.Sig});
  }

  // Category (2): unchanged methods whose bytecode references an updated
  // class (their compiled form hard-codes offsets that are about to move).
  for (const auto &[Name, NewCls] : New.classes()) {
    if (isBuiltinClass(Name))
      continue;
    const ClassDef *OldCls = Old.find(Name);
    if (!OldCls)
      continue;
    for (const MethodDef &M : NewCls.Methods) {
      const MethodDef *OM = OldCls->findMethod(M.Name, M.Sig);
      if (!OM || OM->IsStatic != M.IsStatic || !OM->codeEquals(M))
        continue; // changed methods are category (1), handled above
      for (const std::string &RefName : referencedClasses(M)) {
        if (Updated.count(RefName)) {
          S.IndirectMethods.push_back({Name, M.Name, M.Sig});
          break;
        }
      }
    }
  }

  return S;
}

UpdateBundle Upt::prepare(const ClassSet &Old, const ClassSet &New,
                          const std::string &VersionTag,
                          const std::vector<MethodRef> &Blacklist) {
  UpdateBundle B;
  B.NewProgram = New;
  ensureBuiltins(B.NewProgram);
  B.Spec = computeSpec(Old, New, Blacklist);
  B.VersionTag = VersionTag;
  // Default transformers are implicit: the transformer runner applies the
  // copy-matching-members default for every updated class that has no
  // entry in the maps. Developers override per class, as with the
  // generated JvolveTransformers.java file.
  return B;
}
