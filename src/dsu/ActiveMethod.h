//===----------------------------------------------------------------------===//
///
/// \file
/// Active-method updates: the paper's §3.5 future-work extension,
/// implemented.
///
/// "For changed methods the user wishes to update while they run, she must
/// additionally provide a mapping between the yield points in the old
/// method to similar points in the new method ... The user would also have
/// to provide the analogue of an object transformer for initializing the
/// contents of the new method's stack frame" — exactly the support UpStare
/// provides for C. With a mapping registered, a *changed* method that
/// never leaves the stack (the failure mode of Jetty 5.1.3 and
/// JavaEmailServer 1.3) can be replaced on-stack: the frame's program
/// counter is translated through the PC map, locals are carried over (or
/// rebuilt by the frame transformer), and the operand stack is preserved.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_ACTIVEMETHOD_H
#define JVOLVE_DSU_ACTIVEMETHOD_H

#include "bytecode/ClassDef.h"
#include "dsu/UpdateSpec.h"
#include "runtime/Slot.h"

#include <functional>
#include <map>
#include <vector>

namespace jvolve {

class TransformCtx;

/// Rebuilds the new frame's locals from the old frame's locals (the stack
/// analogue of jvolveObject). When absent, locals are copied by slot
/// index.
using FrameTransformer = std::function<void(
    TransformCtx &, const std::vector<Slot> &OldLocals,
    std::vector<Slot> &NewLocals)>;

/// A user-supplied recipe for updating one changed method while it is on
/// the stack.
struct ActiveMethodMapping {
  /// The method, named as in the *old* version.
  MethodRef Method;

  /// Old bytecode index -> new bytecode index, for every program counter
  /// the thread may be parked at (yield points, sleep-resume points, and
  /// blocking intrinsics). A frame parked at an unmapped pc stays
  /// restricted.
  std::map<uint32_t, uint32_t> PcMap;

  /// Optional locals rebuild; identity-by-slot when absent.
  FrameTransformer Frame;

  /// Identity mapping pc -> pc covering 0 .. NewCodeLen-1. Correct
  /// whenever the new body only *appends* code (or is pc-compatible).
  static ActiveMethodMapping identity(MethodRef M, size_t NewCodeLen) {
    ActiveMethodMapping Out;
    Out.Method = std::move(M);
    for (size_t Pc = 0; Pc < NewCodeLen; ++Pc)
      Out.PcMap[static_cast<uint32_t>(Pc)] = static_cast<uint32_t>(Pc);
    return Out;
  }
};

} // namespace jvolve

#endif // JVOLVE_DSU_ACTIVEMETHOD_H
