//===----------------------------------------------------------------------===//
///
/// \file
/// Flow-sensitive, field-sensitive allocation-site dataflow over MiniVM
/// bytecode.
///
/// The PR 4 analyzer answers *whether* an update applies using CHA alone;
/// this pass answers *what an update can touch*. It runs an abstract
/// interpretation per method — the same per-pc discipline as the
/// verifier's computeStackShapes, but over a may-points-to lattice whose
/// elements are sets of allocation sites (New / NewArray / SConst
/// instructions, identified by declaring method and pc) — and a
/// whole-program fixpoint that propagates values through method
/// parameters, return values, instance fields (keyed per allocation
/// site), statics, and array elements. Three refinements fall out:
///
///  * virtual call sites dispatch over the receiver's points-to classes
///    instead of the full CHA subclass fan-out, which prunes call edges
///    whose receiver provably never holds an updated class;
///  * methods unreachable from the analysis entry points (the thread
///    run() loops every post-boot frame hangs under) can never be on a
///    stack, so the restricted safe-point set may drop them;
///  * constructor bodies expose which parameter flows into which field —
///    the copy-chain evidence transformer synthesis (dsu/Synthesis.h)
///    uses to pair renamed fields across versions.
///
/// Soundness: "unknown" (Top) absorbs everything the analysis cannot
/// track — entry-point parameters, intrinsic results, static reads whose
/// writers predate the analyzed region, and any value that escapes into
/// an intrinsic. Dispatch on a Top receiver falls back to the CHA
/// fan-out, so every refinement degrades to the PR 4 answer rather than
/// past it. The entry-point contract matches the updater's AnalyzeFirst
/// seeding: entries are the methods live frames hang under, so anything a
/// future stack can hold is reachable from them by construction.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_DATAFLOW_H
#define JVOLVE_DSU_DATAFLOW_H

#include "bytecode/ClassDef.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace jvolve {

/// One abstract allocation: a New/NewArray/SConst instruction. Array sites
/// record the *peeled* element class (the same descriptor peel
/// Upt::referencedClasses applies) so class-level clients can ask "may an
/// array of updated-class elements flow here".
struct AllocSite {
  std::string Method; ///< declaring method key ("Class.NameSig")
  size_t Pc = 0;
  std::string TypeName;  ///< class name, or "[<elem>" for arrays, "String"
  std::string ElemClass; ///< peeled element class for ref arrays, else ""

  std::string str() const;
};

/// A may-points-to value: a set of allocation-site ids, or Top (unknown
/// provenance). Bottom is the empty non-Top set. Sets wider than a fixed
/// cap collapse to Top so the lattice stays shallow.
struct AbstractRef {
  bool Top = false;
  std::set<uint32_t> Sites;

  static AbstractRef top() { return {true, {}}; }
  static AbstractRef one(uint32_t Site) { return {false, {Site}}; }
  bool bottom() const { return !Top && Sites.empty(); }

  /// \returns true when the join changed this value.
  bool join(const AbstractRef &Other);
};

/// Per-method analysis options.
struct DataflowOptions {
  /// Fixpoint seeds; empty analyzes every method with unknown (Top)
  /// parameters — the mode synthesis uses when no live frames exist.
  std::set<std::string> EntryPoints;
  /// Points-to sets wider than this collapse to Top.
  size_t MaxSitesPerValue = 32;
};

/// The converged whole-program result.
class DataflowResult {
public:
  const std::vector<AllocSite> &sites() const { return Sites; }

  /// Every method the fixpoint reached from the entry points (all methods
  /// when EntryPoints was empty). A method outside this set can never be
  /// on a post-boot stack.
  const std::set<std::string> &reachableMethods() const { return Reachable; }

  /// The refined dispatch targets of the call at \p Pc in \p MethodKey,
  /// or nullptr when the pc is not an analyzed call site. Always a subset
  /// of the CHA targets; equals them when the receiver was Top. The
  /// pointer aliases this result, so calling on a temporary is deleted.
  const std::set<std::string> *calleesAt(const std::string &MethodKey,
                                         size_t Pc) const &;
  const std::set<std::string> *calleesAt(const std::string &MethodKey,
                                         size_t Pc) const && = delete;

  /// Classes the receiver of the call at \p Pc may point to (alloc-site
  /// classes only; empty with \p Unknown=true when the receiver was Top).
  std::set<std::string> receiverClasses(const std::string &MethodKey,
                                        size_t Pc, bool &Unknown) const;

  /// Virtual call sites whose refined target set is strictly smaller than
  /// the CHA fan-out — the report's narrowing evidence.
  size_t sitesNarrowed() const { return Narrowed; }
  size_t virtualSites() const { return VirtualSites; }

private:
  friend class DataflowAnalysis;
  friend struct DataflowResultBuilder;
  std::vector<AllocSite> Sites;
  std::set<std::string> Reachable;
  /// (method key, pc) -> refined callee keys.
  std::map<std::pair<std::string, size_t>, std::set<std::string>> Callees;
  /// (method key, pc) -> receiver value at the call.
  std::map<std::pair<std::string, size_t>, AbstractRef> Receivers;
  size_t Narrowed = 0;
  size_t VirtualSites = 0;
};

/// Runs the whole-program fixpoint. The ClassSet must contain the
/// built-ins and outlive the analysis.
class DataflowAnalysis {
public:
  explicit DataflowAnalysis(const ClassSet &Set);

  DataflowResult run(const DataflowOptions &Opts = {});

private:
  const ClassSet &Set;
};

/// Intra-procedural copy-chain analysis for transformer synthesis: which
/// parameter slots of \p M flow (through locals, stack moves, and direct
/// copies) into which fields of `this`. Keys are field names; values are
/// the parameter slot indices (0 = `this` for instance methods) whose
/// value may be stored into the field. Only assignments through the
/// method's own receiver are recorded.
std::map<std::string, std::set<uint16_t>>
paramFieldFlows(const ClassSet &Set, const ClassDef &Cls, const MethodDef &M);

} // namespace jvolve

#endif // JVOLVE_DSU_DATAFLOW_H
