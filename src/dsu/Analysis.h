//===----------------------------------------------------------------------===//
///
/// \file
/// Static update-safety analysis.
///
/// The paper establishes update safety dynamically: restrict safe points
/// (§3.3), pause, and time out when restricted methods never leave the
/// stacks. This module predicts those outcomes ahead of time from the old
/// program, the new program, and the UPT's UpdateSpec:
///
///   1. a CHA call graph over the old version (CallGraph.h);
///   2. the restricted safe-point set, both the paper's conservative
///      transitive-caller closure and a precise variant that only restricts
///      methods whose compiled form can actually embed changed code via
///      inlining — the delta is surfaced as dsu.analysis.* metrics;
///   3. non-quiescence prediction: changed methods whose CFG can never
///      reach a return and that are reachable from a thread entry point
///      will pin the update forever, unless an ActiveMethodMapping lifts
///      them — mappings are statically checked for pc-map completeness and
///      per-pc operand-stack compatibility using the verifier's abstract
///      interpretation (computeStackShapes);
///   4. an applicability verdict: Applicable / NeedsOsr / Impossible, the
///      Tables 2–4 column, computed instead of measured.
///
/// Soundness caveat (documented in INTERNALS.md §12): never-returning
/// methods are predicted OSR-liftable when they are only indirectly
/// affected (category 2) because tier promotion is invocation-count based —
/// a method that never returns is invoked at most once per thread, so it
/// stays base-compiled with no inlined bodies. The prediction assumes fewer
/// threads enter such a method than the Opt promotion threshold.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_ANALYSIS_H
#define JVOLVE_DSU_ANALYSIS_H

#include "dsu/ActiveMethod.h"
#include "dsu/CallGraph.h"
#include "dsu/UpdateSpec.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace jvolve {

struct UpdateBundle;

/// The Tables 2–4 applicability column, predicted.
enum class Applicability {
  Applicable, ///< a restricted safe point suffices (possibly with barriers)
  NeedsOsr,   ///< quiescence requires on-stack replacement of cat-2 loops
  Impossible, ///< a changed non-returning loop pins the update forever
};

const char *applicabilityName(Applicability A);

/// Tuning knobs for one analysis run.
struct AnalysisOptions {
  /// Thread entry methods ("Class.NameSig"). A never-returning method only
  /// predicts non-quiescence when some thread can be executing it; with no
  /// entry points given, every method is conservatively entry-reachable.
  std::set<std::string> EntryPoints;
  /// Static mirror of Compiler::Options inline policy.
  size_t MaxInlineCodeLen = 16;
  size_t MaxInlineDepth = 3;
};

/// Everything one analysis run computed, renderable as a table or JSON.
struct AnalysisReport {
  std::string VersionTag;

  // Call graph summary.
  size_t NumMethods = 0;
  size_t NumEdges = 0;

  /// The paper's §3.3 closure: changed/deleted/blacklisted methods plus
  /// every transitive caller.
  std::set<std::string> ConservativeRestricted;
  /// Seeds plus possible inliners only — always a subset of the
  /// conservative set; unchanged non-inlining callers keep their safe
  /// points. When entry points are given, further refined by the
  /// flow-sensitive dataflow pass (dsu/Dataflow.h): methods the points-to
  /// fixpoint proves unreachable from the entry points can never be on a
  /// post-boot stack, so they keep their safe points too.
  std::set<std::string> PreciseRestricted;
  /// The precise set under CHA alone, before the dataflow refinement
  /// (equal to PreciseRestricted when no entry points were given).
  /// PreciseRestricted is always a subset of this.
  std::set<std::string> PreciseRestrictedCha;

  /// Dataflow refinement evidence: virtual call sites analyzed, and how
  /// many had their CHA fan-out strictly narrowed by receiver points-to.
  size_t DataflowVirtualSites = 0;
  size_t DataflowNarrowed = 0;

  /// Wall-clock milliseconds this analysis run took (CHA + dataflow).
  double RuntimeMs = 0;

  /// Changed (category 1/3) methods with no CFG path to a return,
  /// reachable from a thread entry point, and not lifted by a valid
  /// ActiveMethodMapping: these pin the update forever.
  std::vector<std::string> PinnedForever;
  /// Category-(2) methods with no CFG path to a return, reachable from a
  /// thread entry point: quiescence needs OSR for these.
  std::vector<std::string> OsrRequired;
  /// Diagnostics from statically checking provided ActiveMethodMappings
  /// (incomplete pc maps, out-of-range targets, stack-shape conflicts).
  std::vector<std::string> MappingIssues;
  /// Non-gating observations, e.g. a changed method that blocks on
  /// network/sleep intrinsics inside a loop ("may only apply when idle").
  std::vector<std::string> Warnings;

  Applicability Verdict = Applicability::Applicable;
  std::string Reason;

  /// Human-readable multi-line report.
  std::string table() const;
  /// One JSON object with every field above.
  std::string json() const;
};

/// Analyzes one update (old program -> new program + UpdateSpec). Both
/// ClassSets must outlive the analysis and contain the built-ins.
class UpdateAnalysis {
public:
  UpdateAnalysis(const ClassSet &OldProgram, const ClassSet &NewProgram)
      : Old(OldProgram), New(NewProgram) {}

  AnalysisReport
  analyze(const UpdateSpec &Spec,
          const std::map<std::string, ActiveMethodMapping> &Mappings,
          const AnalysisOptions &Opts = {}) const;

  /// Convenience: analyze a prepared bundle (its Spec + ActiveMappings).
  AnalysisReport analyzeBundle(const UpdateBundle &B,
                               const AnalysisOptions &Opts = {}) const;

  /// True when \p M has no CFG path from entry to any return instruction
  /// (the always-on-stack failure shape).
  static bool neverReturns(const MethodDef &M);

private:
  const ClassSet &Old;
  const ClassSet &New;
};

/// Records the report into the dsu.analysis.* metrics (no-op when
/// telemetry is disabled).
void recordAnalysisMetrics(const AnalysisReport &R);

} // namespace jvolve

#endif // JVOLVE_DSU_ANALYSIS_H
