#include "dsu/CallGraph.h"

#include <deque>

using namespace jvolve;

CallGraph::CallGraph(const ClassSet &Set) {
  // Pass 1: one node per declared method.
  for (const auto &[ClassName, Cls] : Set.classes()) {
    for (const MethodDef &M : Cls.Methods) {
      MethodRef Ref{ClassName, M.Name, M.Sig};
      CallGraphNode &N = Nodes[Ref.key()];
      N.Ref = Ref;
      N.Def = &M;
    }
  }

  // Pass 2: edges. Direct calls resolve to one declaring class; virtual
  // calls fan out over the receiver's subclass overrides (CHA).
  for (auto &[Key, N] : Nodes) {
    if (!N.Def)
      continue;
    std::set<std::string> All, Direct;
    for (const Instr &I : N.Def->Code) {
      if (I.Op == Opcode::NewArray) {
        // Allocating an array whose (possibly nested) element class declares
        // constructors can reach those initializers when the elements are
        // populated. Peel the descriptor the same way Upt::referencedClasses
        // does so methods reached only through array-typed receivers keep
        // their call-graph edges (and precise stays a subset of
        // conservative).
        if (!Type::isValidDescriptor(I.Sig))
          continue;
        Type T = Type::parse(I.Sig);
        while (T.isArray())
          T = T.elementType();
        if (!T.isRef())
          continue;
        const ClassDef *Elem = Set.find(T.className());
        if (!Elem)
          continue;
        for (const MethodDef &M : Elem->Methods)
          if (M.Name == "<init>") {
            std::string InitKey = MethodRef{Elem->Name, M.Name, M.Sig}.key();
            All.insert(InitKey);
            Direct.insert(InitKey);
          }
        continue;
      }
      if (I.Op != Opcode::InvokeVirtual && I.Op != Opcode::InvokeStatic &&
          I.Op != Opcode::InvokeSpecial)
        continue;
      size_t Dot = I.Sym.find('.');
      if (Dot == std::string::npos)
        continue;
      std::string ClassName = I.Sym.substr(0, Dot);
      std::string MethodName = I.Sym.substr(Dot + 1);
      std::string Declaring;
      const MethodDef *Callee =
          Set.resolveMethod(ClassName, MethodName, I.Sig, &Declaring);
      if (!Callee)
        continue; // unresolvable: the verifier reports it, not us
      std::string CalleeKey =
          MethodRef{Declaring, MethodName, I.Sig}.key();
      All.insert(CalleeKey);
      if (I.Op != Opcode::InvokeVirtual) {
        Direct.insert(CalleeKey);
        continue;
      }
      // CHA: any subclass of the static receiver type that declares an
      // override is a possible dispatch target.
      for (const auto &[SubName, SubCls] : Set.classes()) {
        if (SubName == Declaring || !Set.isSubclassOf(SubName, ClassName))
          continue;
        if (SubCls.findMethod(MethodName, I.Sig))
          All.insert(MethodRef{SubName, MethodName, I.Sig}.key());
      }
    }
    N.Callees.assign(All.begin(), All.end());
    N.DirectCallees.assign(Direct.begin(), Direct.end());
    Edges += N.Callees.size();
    for (const std::string &C : N.Callees)
      Callers[C].push_back(Key);
    for (const std::string &C : N.DirectCallees)
      DirectCallers[C].push_back(Key);
  }
}

const CallGraphNode *CallGraph::node(const std::string &Key) const {
  auto It = Nodes.find(Key);
  return It == Nodes.end() ? nullptr : &It->second;
}

std::set<std::string>
CallGraph::transitiveCallers(const std::set<std::string> &Seeds) const {
  std::set<std::string> Closed;
  std::deque<std::string> Work;
  for (const std::string &S : Seeds)
    if (Closed.insert(S).second)
      Work.push_back(S);
  while (!Work.empty()) {
    std::string Cur = Work.front();
    Work.pop_front();
    auto It = Callers.find(Cur);
    if (It == Callers.end())
      continue;
    for (const std::string &Caller : It->second)
      if (Closed.insert(Caller).second)
        Work.push_back(Caller);
  }
  return Closed;
}

std::set<std::string>
CallGraph::possibleInliners(const std::set<std::string> &Seeds,
                            size_t MaxCodeLen, size_t MaxDepth) const {
  // Reverse BFS over direct-call edges. An edge caller->callee can embed
  // the callee's body only if the compiler would inline it: callee code
  // size within MaxCodeLen and the inline chain at most MaxDepth frames
  // deep (Compiler::shouldInline requires Depth < MaxInlineDepth at each
  // step). Track the best (shortest) chain length per method.
  std::set<std::string> Result;
  std::map<std::string, size_t> BestDepth;
  std::deque<std::pair<std::string, size_t>> Work;
  for (const std::string &S : Seeds) {
    BestDepth[S] = 0;
    Work.emplace_back(S, 0);
  }
  while (!Work.empty()) {
    auto [Cur, Depth] = Work.front();
    Work.pop_front();
    if (Depth >= MaxDepth)
      continue; // chain budget exhausted; Cur cannot be inlined further up
    const CallGraphNode *CurNode = node(Cur);
    if (!CurNode || !CurNode->Def ||
        CurNode->Def->Code.size() > MaxCodeLen)
      continue; // too big to ever inline (seeds at depth 0 included)
    auto It = DirectCallers.find(Cur);
    if (It == DirectCallers.end())
      continue;
    for (const std::string &Caller : It->second) {
      if (Caller == Cur)
        continue; // recursion: the compiler's InlineStack check
      size_t D = Depth + 1;
      auto BI = BestDepth.find(Caller);
      if (BI != BestDepth.end() && BI->second <= D)
        continue;
      BestDepth[Caller] = D;
      if (!Seeds.count(Caller))
        Result.insert(Caller);
      Work.emplace_back(Caller, D);
    }
  }
  return Result;
}

std::set<std::string>
CallGraph::reachableFrom(const std::set<std::string> &Entries) const {
  std::set<std::string> Seen;
  std::deque<std::string> Work;
  for (const std::string &E : Entries)
    if (Seen.insert(E).second)
      Work.push_back(E);
  while (!Work.empty()) {
    std::string Cur = Work.front();
    Work.pop_front();
    const CallGraphNode *N = node(Cur);
    if (!N)
      continue;
    for (const std::string &Callee : N->Callees)
      if (Seen.insert(Callee).second)
        Work.push_back(Callee);
  }
  return Seen;
}
