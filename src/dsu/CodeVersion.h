//===----------------------------------------------------------------------===//
///
/// \file
/// Per-method code versioning: pause-free body-only updates.
///
/// The five-step pipeline of paper §3 pays a VM-wide safe point plus a
/// whole-heap DSU collection for *every* update, even one that changes
/// nothing but method bodies. CoreCLR's CodeVersionManager shows the
/// alternative for that shape: keep an explicit version chain per method,
/// designate one *active* version, and switch actives atomically so each
/// thread picks the new body up at its next poll point while in-flight
/// activations finish on their old version (rejit generations).
///
/// MiniVM already has everything that model needs:
///
///  - The registry's (Def, Code) pair per method *is* the active version;
///    frames hold their own shared_ptr<CompiledMethod>, so superseded code
///    stays alive exactly as long as activations still run it.
///  - Threads resume only at yield points (call entry, returns, loop back
///    edges), so a per-thread epoch stamp compared in the scheduler before
///    each quantum observes a switch at precisely the paper's poll points —
///    no global handshake, no flag test in the interpreter's hot loop.
///  - ensureCompiledForInvoke() compiles a null-Code method on next invoke,
///    straight at the opt tier when its invoke count is already hot — the
///    manager preserves that count across an install, so a versioned method
///    *repromotes* instead of re-profiling from the baseline tier.
///
/// The manager archives each superseded version (bytecode, compiled tier,
/// invoke count) in a per-method chain keyed by (method, version-id).
/// Chains compose across stacked updates, and an install whose new body is
/// bit-identical to the parent version *pops* the chain instead of growing
/// it — restoring the archived compiled tier — which is how a canary
/// window reverts a body-only update without a reverse DSU collection.
///
/// A batch install is transactional: the `codeversion-install` fault site
/// is probed once per method, and a mid-chain failure unwinds the already-
/// swapped methods so the prior active versions keep serving; the epoch
/// only advances on commit, so no thread ever observes a partial switch.
///
/// Telemetry: `dsu.codeversion.{installs,switches,chains,stale_frames}`
/// gauges (deliberately not preregistered — their presence proves the
/// subsystem ran) plus `codeversion-installed` / `codeversion-switched` /
/// `codeversion-reverted` UpdateTrace events.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_CODEVERSION_H
#define JVOLVE_DSU_CODEVERSION_H

#include "bytecode/ClassDef.h"
#include "dsu/UpdateSpec.h"
#include "vm/VM.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jvolve {

class UpdateTrace;

/// One archived (or active) body of one method. VersionId 0 is the body
/// the class loader installed; each versioned install appends the next id.
struct CodeVersionNode {
  uint64_t VersionId = 0;
  std::string Tag; ///< VersionTag of the installing update ("v0" for the seed)
  std::shared_ptr<const MethodDef> Def;
  /// Archived at supersede time so a revert pop restores the compiled tier
  /// without recompiling; unused (the registry holds the live pair) while
  /// this node is active.
  std::shared_ptr<CompiledMethod> Code;
  uint64_t InvokeCount = 0;
  uint64_t InstallTick = 0;
};

/// Per-method chain; back() mirrors the registry's active version.
struct MethodVersionChain {
  MethodId Method = InvalidMethodId;
  std::vector<CodeVersionNode> Chain;
};

/// The per-VM code-version manager. Install lazily via of(); chains then
/// persist for the VM's lifetime so stacked updates compose.
class CodeVersionManager : public VmCodeVersions {
public:
  explicit CodeVersionManager(VM &TheVM) : TheVM(TheVM) {}

  /// The manager living on \p TheVM, installing one on first use (the
  /// CanaryController retrieval idiom).
  static CodeVersionManager &of(VM &TheVM);

  /// One method's new body within a batch install.
  struct BodyUpdate {
    MethodId Method = InvalidMethodId;
    const MethodDef *NewBody = nullptr;
    std::string Display; ///< "Class.name(sig)" for traces and diagnostics
  };

  /// Atomically installs \p Updates as one active-version switch: every
  /// body is swapped (or, when a new body is bit-identical to the parent
  /// version's, its chain is *popped*), callers that inlined a swapped
  /// body are invalidated, and the epoch is bumped exactly once so threads
  /// observe all of it or none of it at their next poll. Probes the
  /// `codeversion-install` fault site per method; a mid-chain failure
  /// unwinds the already-swapped prefix — the prior active versions keep
  /// serving — and returns false with \p WhyNot. \p Trace (when non-null)
  /// receives the codeversion-* lifecycle events.
  bool installBodySet(const std::vector<BodyUpdate> &Updates,
                      const std::string &Tag, UpdateTrace *Trace,
                      std::string *WhyNot = nullptr);

  // VmCodeVersions (scheduler/interpreter integration).
  uint64_t epoch() const override { return Epoch; }
  void onThreadPoll(VMThread &T, uint64_t Now) override;
  void onStaleFrameReturn() override;

  //===--------------------------------------------------------------------===//
  // Introspection (tests, jvolve-serve --stats)
  //===--------------------------------------------------------------------===//

  /// Method bodies installed through versioned installs (cumulative,
  /// including revert pops).
  uint64_t installs() const { return Installs; }
  /// Committed active-version switches (== epoch()).
  uint64_t switches() const { return Epoch; }
  /// Revert pops taken (a new body matched the parent version).
  uint64_t revertPops() const { return RevertPops; }
  /// Threads that picked up a switch at a poll point so far.
  uint64_t pollObservations() const { return PollObservations; }
  /// Methods whose chain still holds an archived version (depth >= 2).
  size_t chains() const;
  /// Live frames still executing superseded code right now.
  uint64_t staleFrames() const;

  /// The chain of \p Method, or nullptr when it was never versioned.
  const MethodVersionChain *chainFor(MethodId Method) const;

  /// Renders the active-version table: one line per versioned method with
  /// its active version id, chain depth, and installing tag.
  std::string activeVersionTable() const;

private:
  /// Re-counts frames running superseded code and publishes the gauge.
  uint64_t recountStaleFrames();
  void publishGauges();

  VM &TheVM;
  std::map<MethodId, MethodVersionChain> Chains;
  uint64_t Epoch = 0;
  uint64_t Installs = 0;
  uint64_t RevertPops = 0;
  uint64_t PollObservations = 0;
  /// Stale count at the last recount, mirrored into the gauge.
  uint64_t LastStaleCount = 0;
};

} // namespace jvolve

#endif // JVOLVE_DSU_CODEVERSION_H
