#include "dsu/EcUpdater.h"

#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"

#include <cassert>

using namespace jvolve;

bool EcUpdater::apply(const ClassSet &NewProgram, const UpdateSpec &Spec,
                      std::string *WhyNot) {
  auto Fail = [&](const std::string &Msg) {
    if (WhyNot)
      *WhyNot = Msg;
    return false;
  };

  if (!Spec.ClassUpdates.empty())
    return Fail("class signature changes are not supported");
  if (!Spec.AddedClasses.empty() || !Spec.DeletedClasses.empty())
    return Fail("class additions/deletions are not supported");

  ClassSet Program = NewProgram;
  ensureBuiltins(Program);
  if (!verifies(Program))
    return Fail("new version fails verification");

  ClassRegistry &Reg = TheVM.registry();
  for (const MethodRef &R : Spec.MethodBodyUpdates) {
    ClassId Cls = Reg.idOf(R.ClassName);
    assert(Cls != InvalidClassId && "body update on unknown class");
    MethodId Id = Reg.resolveMethod(Cls, R.Name, R.Sig);
    assert(Id != InvalidMethodId && "body update on unknown method");
    const ClassDef *NewCls = Program.find(R.ClassName);
    const MethodDef *NewBody = NewCls->findMethod(R.Name, R.Sig);
    assert(NewBody && "method missing from new version");
    Reg.setMethodBody(Id, *NewBody);
  }

  // HotSwap-style: callers that inlined an updated body must recompile.
  std::set<MethodId> Changed;
  for (const MethodRef &R : Spec.MethodBodyUpdates) {
    ClassId Cls = Reg.idOf(R.ClassName);
    Changed.insert(Reg.resolveMethod(Cls, R.Name, R.Sig));
  }
  for (MethodId Id = 0; Id < Reg.numMethods(); ++Id) {
    RtMethod &M = Reg.method(Id);
    if (!M.Code)
      continue;
    for (MethodId Inl : M.Code->Inlined)
      if (Changed.count(Inl)) {
        Reg.invalidateCode(Id);
        break;
      }
  }

  TheVM.setProgram(Program);
  return true;
}
