#include "dsu/EcUpdater.h"

#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"
#include "dsu/CodeVersion.h"

#include <cassert>

using namespace jvolve;

bool EcUpdater::apply(const ClassSet &NewProgram, const UpdateSpec &Spec,
                      std::string *WhyNot, UpdateTrace *Trace,
                      const std::string &VersionTag) {
  auto Fail = [&](const std::string &Msg) {
    if (WhyNot)
      *WhyNot = Msg;
    return false;
  };

  if (!Spec.ClassUpdates.empty())
    return Fail("class signature changes are not supported");
  if (!Spec.AddedClasses.empty() || !Spec.DeletedClasses.empty())
    return Fail("class additions/deletions are not supported");

  ClassSet Program = NewProgram;
  ensureBuiltins(Program);
  if (!verifies(Program))
    return Fail("new version fails verification");

  // Route every swap through the per-method version chains: the manager
  // archives the superseded bodies (so a later install of the parent body
  // pops the chain instead of growing it), invalidates callers that
  // inlined a swapped body, and commits the batch as one atomic
  // active-version switch — HotSwap semantics without losing the history.
  ClassRegistry &Reg = TheVM.registry();
  std::vector<CodeVersionManager::BodyUpdate> Updates;
  for (const MethodRef &R : Spec.MethodBodyUpdates) {
    ClassId Cls = Reg.idOf(R.ClassName);
    assert(Cls != InvalidClassId && "body update on unknown class");
    MethodId Id = Reg.resolveMethod(Cls, R.Name, R.Sig);
    assert(Id != InvalidMethodId && "body update on unknown method");
    const ClassDef *NewCls = Program.find(R.ClassName);
    const MethodDef *NewBody = NewCls->findMethod(R.Name, R.Sig);
    assert(NewBody && "method missing from new version");
    Updates.push_back({Id, NewBody, R.ClassName + "." + R.Name + R.Sig});
  }
  std::string Why;
  if (!CodeVersionManager::of(TheVM).installBodySet(Updates, VersionTag,
                                                    Trace, &Why))
    return Fail(Why);

  TheVM.setProgram(Program);
  return true;
}
