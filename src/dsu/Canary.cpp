#include "dsu/Canary.h"

#include "support/Error.h"
#include "support/Telemetry.h"

using namespace jvolve;

const char *jvolve::canaryStateName(CanaryState S) {
  switch (S) {
  case CanaryState::Observing: return "observing";
  case CanaryState::Reverting: return "reverting";
  case CanaryState::Retired: return "retired";
  case CanaryState::Reverted: return "reverted";
  case CanaryState::RevertFailed: return "revert-failed";
  }
  unreachable("bad canary state");
}

std::string CanaryReport::str() const {
  std::string Out = "canary[" + ForwardTag + "] " + canaryStateName(State) +
                    ": armed @" + std::to_string(ArmedTick) + ", " +
                    std::to_string(ChecksRun) + " check(s)";
  if (SettledTick)
    Out += ", settled @" + std::to_string(SettledTick);
  for (const CanaryBreach &B : Breaches)
    Out += "\n  breach [" + B.Monitor + "] " + B.Detail;
  if (!RevertMessage.empty())
    Out += "\n  revert: " + RevertMessage;
  if (State == CanaryState::Reverted)
    Out += "\n  residual new-version objects: " +
           std::to_string(ResidualNewObjects);
  return Out;
}

CanaryController::CanaryController(VM &TheVM, CanaryPolicy Policy,
                                   UpdateOptions ForwardOpts,
                                   ClassSet PreUpdateProgram,
                                   UpdateBundle ForwardBundle,
                                   CanaryUndoLog Undo,
                                   std::vector<ClassId> ForwardNewClassIds,
                                   CanaryHealthSample PreUpdateBaseline)
    : TheVM(TheVM), Policy(std::move(Policy)),
      ForwardOpts(std::move(ForwardOpts)),
      PreUpdateProgram(std::move(PreUpdateProgram)),
      ForwardBundle(std::move(ForwardBundle)), Undo(std::move(Undo)),
      ForwardNewClassIds(std::move(ForwardNewClassIds)),
      Baseline(PreUpdateBaseline) {}

CanaryController::~CanaryController() = default;

void CanaryController::arm() {
  ArmedTick = TheVM.scheduler().ticks();
  AtArm = CanaryHealthSample::take(TheVM);
  NextCheckTick = ArmedTick + Policy.CheckIntervalTicks;
  if (Telemetry::isEnabled()) {
    Telemetry::global().counter(metrics::DsuCanaryWindows).inc();
    Telemetry::global().gauge(metrics::DsuCanaryOpen).set(1);
  }
  Trace.record(UpdateEventKind::CanaryArmed, ArmedTick,
               static_cast<int64_t>(Undo.objectCount()),
               ForwardBundle.VersionTag);
}

void CanaryController::onTick(uint64_t Now) {
  switch (St) {
  case CanaryState::Observing: {
    if (Now >= NextCheckTick) {
      NextCheckTick = Now + Policy.CheckIntervalTicks;
      checkNow(Now);
    }
    if (St != CanaryState::Observing)
      return; // the check opened a revert
    bool TicksDone =
        Policy.WindowTicks > 0 && Now >= ArmedTick + Policy.WindowTicks;
    uint64_t Served = TheVM.net().totalResponses() - AtArm.Responses;
    bool RequestsDone =
        Policy.WindowRequests > 0 && Served >= Policy.WindowRequests;
    if (TicksDone || RequestsDone)
      retire(Now);
    return;
  }
  case CanaryState::Reverting:
    if (RevertUpd && !RevertUpd->pending())
      finalizeRevert(Now);
    return;
  case CanaryState::Retired:
  case CanaryState::Reverted:
  case CanaryState::RevertFailed:
    return;
  }
}

void CanaryController::checkNow(uint64_t Now) {
  if (St != CanaryState::Observing)
    return;
  ++ChecksRun;
  if (Telemetry::isEnabled())
    Telemetry::global().counter(metrics::DsuCanaryChecks).inc();
  std::vector<CanaryBreach> Found = evaluateCanaryHealth(
      Policy, Baseline, AtArm, CanaryHealthSample::take(TheVM));
  if (TheVM.faults().probe(FaultInjector::Site::CanaryHealthBreach))
    Found.push_back({"fault-injector", "injected canary health breach"});
  if (Found.empty())
    return;
  Breaches = std::move(Found);
  if (Telemetry::isEnabled())
    Telemetry::global().counter(metrics::DsuCanaryBreaches).inc();
  std::string Detail;
  for (const CanaryBreach &B : Breaches)
    Detail += (Detail.empty() ? "" : "; ") + B.Monitor + ": " + B.Detail;
  Trace.record(UpdateEventKind::CanaryBreached, Now,
               static_cast<int64_t>(Breaches.size()), Detail);
  RevertReason = "health breach: " + Detail;
  beginRevert(Now);
}

bool CanaryController::requestRevert(const std::string &Reason) {
  if (St == CanaryState::Reverting)
    return true;
  if (St != CanaryState::Observing)
    return false;
  RevertReason = Reason;
  Trace.record(UpdateEventKind::CanaryBreached, TheVM.scheduler().ticks(), 0,
               "explicit: " + Reason);
  beginRevert(TheVM.scheduler().ticks());
  return true;
}

void CanaryController::settle(const std::string &Reason) {
  if (St != CanaryState::Observing)
    return;
  St = CanaryState::Retired;
  SettledTick = TheVM.scheduler().ticks();
  Undo.clear();
  if (Telemetry::isEnabled()) {
    Telemetry::global().counter(metrics::DsuCanaryRetired).inc();
    Telemetry::global().gauge(metrics::DsuCanaryOpen).set(0);
  }
  Trace.record(UpdateEventKind::CanarySettled, SettledTick, 0, Reason);
}

void CanaryController::retire(uint64_t Now) {
  St = CanaryState::Retired;
  SettledTick = Now;
  Undo.clear();
  if (Telemetry::isEnabled()) {
    Telemetry::global().counter(metrics::DsuCanaryRetired).inc();
    Telemetry::global().gauge(metrics::DsuCanaryOpen).set(0);
  }
  Trace.record(UpdateEventKind::CanaryRetired, Now,
               static_cast<int64_t>(ChecksRun), "window expired healthy");
}

void CanaryController::beginRevert(uint64_t Now) {
  St = CanaryState::Reverting;
  if (Telemetry::isEnabled())
    Telemetry::global().counter(metrics::DsuRevertAttempts).inc();
  Trace.record(UpdateEventKind::RevertStarted, Now, 0, RevertReason);

  // The reverse tag must not collide with any version prefix already in
  // the registry; the arm tick is unique per VM lifetime.
  UpdateBundle RB =
      synthesizeReverseBundle(TheVM, PreUpdateProgram, ForwardBundle, &Undo,
                              "rb" + std::to_string(ArmedTick));

  // The revert runs through the same pipeline with the forward update's
  // pause/drain discipline, but always eagerly and to completion: no
  // nested canary, no lazy shells to monitor afterwards, and no degraded
  // half-revert — the old version comes back whole or not at all.
  UpdateOptions ROpts = ForwardOpts;
  ROpts.LazyTransform = false;
  ROpts.CanaryWindow = CanaryPolicy();
  ROpts.AnalyzeFirst = false;
  ROpts.AllowDegraded = false;

  RevertUpd = std::make_unique<Updater>(TheVM);
  RevertUpd->schedule(std::move(RB), ROpts);
}

void CanaryController::finalizeRevert(uint64_t Now) {
  RevertResult = RevertUpd->result();
  SettledTick = Now;
  if (RevertResult.Status == UpdateStatus::Applied) {
    // Classes the forward update added were deleted again by the reverse
    // spec; classes it deleted are back as additions, whose statics no
    // class transformer restored.
    for (const CanaryUndoLog::UndoStatics &S : Undo.statics())
      Undo.restoreStaticsDirect(TheVM, S.ClassName);
    // The reverse collection leaves duplicates of every new-version
    // object in the current space, unreachable once the undo log lets go.
    // Residual means *live* new-version objects, so reclaim the garbage
    // before walking the heap to count survivors.
    Undo.clear();
    TheVM.collectGarbage();
    ResidualNewObjects =
        countResidualNewVersionObjects(TheVM, ForwardNewClassIds);
    St = CanaryState::Reverted;
    RevertResult.Status = UpdateStatus::Reverted;
    RevertResult.Message = "reverted: " + RevertReason;
    if (Telemetry::isEnabled()) {
      Telemetry::global().counter(metrics::DsuRevertCompleted).inc();
      Telemetry::global()
          .gauge(metrics::DsuRevertResidualNewObjects)
          .set(static_cast<int64_t>(ResidualNewObjects));
    }
    Trace.record(UpdateEventKind::Reverted, Now,
                 static_cast<int64_t>(ResidualNewObjects), RevertReason);
  } else {
    St = CanaryState::RevertFailed;
    std::string Why = RevertResult.Message;
    RevertResult.Status = UpdateStatus::RevertFailed;
    RevertResult.Message = "revert failed (" +
                           std::string(updateStatusName(
                               RevertUpd->result().Status)) +
                           "): " + Why;
    if (Telemetry::isEnabled())
      Telemetry::global().counter(metrics::DsuRevertFailed).inc();
    Trace.record(UpdateEventKind::RevertFailed, Now, 0, RevertResult.Message);
  }
  Undo.clear();
  if (Telemetry::isEnabled())
    Telemetry::global().gauge(metrics::DsuCanaryOpen).set(0);
}

void CanaryController::visitRoots(const std::function<void(Ref &)> &Visit) {
  Undo.visitRoots(Visit);
}

void CanaryController::onHeapMoved() { Undo.reindex(); }

CanaryReport CanaryController::report() const {
  CanaryReport R;
  R.State = St;
  R.ForwardTag = ForwardBundle.VersionTag;
  R.ArmedTick = ArmedTick;
  R.SettledTick = SettledTick;
  R.ChecksRun = ChecksRun;
  R.Breaches = Breaches;
  R.RevertMessage = RevertResult.Message;
  R.ResidualNewObjects = ResidualNewObjects;
  return R;
}
