#include "dsu/Synthesis.h"

#include "dsu/Dataflow.h"
#include "dsu/Transformers.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <sstream>

using namespace jvolve;

const char *jvolve::fieldActionName(FieldAction A) {
  switch (A) {
  case FieldAction::Copy: return "copy";
  case FieldAction::Rename: return "rename";
  case FieldAction::Keep: return "keep";
  case FieldAction::Flagged: return "flagged";
  }
  return "?";
}

size_t ClassPlan::count(FieldAction A, bool Static) const {
  size_t N = 0;
  for (const FieldMapping &M : Fields)
    N += M.Action == A && M.IsStatic == Static;
  return N;
}

bool ClassPlan::needsHumanRule() const {
  for (const FieldMapping &M : Fields)
    if (M.Action == FieldAction::Flagged)
      return true;
  return false;
}

const ClassPlan *SynthesisReport::plan(const std::string &Name) const {
  for (const ClassPlan &P : Classes)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

std::vector<std::string> SynthesisReport::flaggedFields() const {
  std::vector<std::string> Out;
  for (const ClassPlan &P : Classes)
    for (const FieldMapping &M : P.Fields)
      if (M.Action == FieldAction::Flagged)
        Out.push_back(P.Name + "." + M.NewField);
  return Out;
}

namespace {

/// Peels array descriptors down to the element class name; "" for non-ref
/// element types (the same peel Upt::referencedClasses applies).
std::string peeledClass(const std::string &Desc) {
  Type T = Type::parse(Desc);
  while (T.isArray())
    T = T.elementType();
  return T.isRef() ? T.className() : "";
}

/// The flattened instance-field list of \p Name: inherited fields first
/// (root-most superclass down), declaration order within a class — the
/// order RtClass lays instances out in.
std::vector<const FieldDef *> flatInstanceFields(const ClassSet &Set,
                                                 const std::string &Name) {
  std::vector<const FieldDef *> Out;
  std::vector<std::string> Chain = Set.superChain(Name);
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    const ClassDef *Cls = Set.find(*It);
    if (!Cls)
      continue;
    for (const FieldDef &F : Cls->Fields)
      if (!F.IsStatic)
        Out.push_back(&F);
  }
  return Out;
}

const FieldDef *findByName(const std::vector<const FieldDef *> &Fields,
                           const std::string &Name) {
  for (const FieldDef *F : Fields)
    if (F->Name == Name)
      return F;
  return nullptr;
}

/// Copy-chain evidence: for every field of \p Name, the set of
/// "slot:paramtype" keys of constructor parameters that may flow into it.
/// Keyed on position + declared type (not the whole signature) so the
/// evidence survives unrelated constructor-signature changes between
/// versions. Slot 0 (`this`) is never evidence.
std::map<std::string, std::set<std::string>>
ctorFlowEvidence(const ClassSet &Set, const ClassDef &Cls) {
  std::map<std::string, std::set<std::string>> Evidence;
  for (const MethodDef &M : Cls.Methods) {
    if (M.Name != "<init>" || M.IsStatic)
      continue;
    MethodSignature Sig = M.signature();
    auto Flows = paramFieldFlows(Set, Cls, M);
    for (const auto &[Field, Slots] : Flows)
      for (uint16_t Slot : Slots) {
        if (Slot == 0 || Slot > Sig.Params.size())
          continue;
        Evidence[Field].insert(std::to_string(Slot) + ":" +
                               Sig.Params[Slot - 1].descriptor());
      }
  }
  return Evidence;
}

bool sharesEvidence(const std::set<std::string> &A,
                    const std::set<std::string> &B) {
  for (const std::string &K : A)
    if (B.count(K))
      return true;
  return false;
}

/// Builds the mapping rows for one (old fields, new fields) pair. The
/// copy-chain evidence maps are empty for statics — statics only get
/// name/type matching.
void planFields(const std::vector<const FieldDef *> &OldFields,
                const std::vector<const FieldDef *> &NewFields, bool IsStatic,
                const std::map<std::string, std::set<std::string>> &OldEv,
                const std::map<std::string, std::set<std::string>> &NewEv,
                std::vector<FieldMapping> &Out) {
  // Old fields whose name vanished are the rename candidate pool.
  std::vector<const FieldDef *> Dropped;
  for (const FieldDef *F : OldFields)
    if (!findByName(NewFields, F->Name))
      Dropped.push_back(F);

  for (const FieldDef *NF : NewFields) {
    FieldMapping M;
    M.NewField = NF->Name;
    M.NewType = NF->TypeDesc;
    M.IsStatic = IsStatic;
    if (const FieldDef *OF = findByName(OldFields, NF->Name)) {
      M.OldField = OF->Name;
      M.OldType = OF->TypeDesc;
      if (OF->TypeDesc == NF->TypeDesc) {
        M.Action = FieldAction::Copy;
      } else {
        // Fig. 2's String[] -> EmailAddress[]: a value conversion only a
        // human rule can write. The synthesized transformer keeps the
        // default value, exactly like the UPT default.
        M.Action = FieldAction::Flagged;
        M.Note = "type changed " + OF->TypeDesc + " -> " + NF->TypeDesc +
                 "; needs a value-conversion rule";
      }
    } else {
      // Same-type dropped fields are rename candidates; copy-chain
      // evidence through the constructors decides.
      std::vector<const FieldDef *> Candidates;
      for (const FieldDef *DF : Dropped)
        if (DF->TypeDesc == NF->TypeDesc)
          Candidates.push_back(DF);
      std::vector<const FieldDef *> Evidenced;
      auto NewIt = NewEv.find(NF->Name);
      if (NewIt != NewEv.end())
        for (const FieldDef *DF : Candidates) {
          auto OldIt = OldEv.find(DF->Name);
          if (OldIt != OldEv.end() &&
              sharesEvidence(NewIt->second, OldIt->second))
            Evidenced.push_back(DF);
        }
      if (Evidenced.size() == 1) {
        M.OldField = Evidenced[0]->Name;
        M.OldType = Evidenced[0]->TypeDesc;
        M.Action = FieldAction::Rename;
        M.Note = "same constructor parameter flows into both fields";
      } else if (!Evidenced.empty()) {
        M.Action = FieldAction::Flagged;
        std::string Names;
        for (const FieldDef *DF : Evidenced)
          Names += (Names.empty() ? "" : ", ") + DF->Name;
        M.Note = "ambiguous rename; copy-chain evidence for: " + Names;
      } else if (!Candidates.empty()) {
        M.Action = FieldAction::Flagged;
        std::string Names;
        for (const FieldDef *DF : Candidates)
          Names += (Names.empty() ? "" : ", ") + DF->Name;
        M.Note = "possible rename of same-type dropped field(s) " + Names +
                 "; no copy-chain evidence";
      } else {
        M.Action = FieldAction::Keep;
      }
    }
    Out.push_back(std::move(M));
  }
}

/// True when the synthesized plan must be installed as an explicit
/// transformer: the default copy cannot express a rename, and a faulted
/// plan must actually run so the fault manifests.
bool needsObjectTransformer(const ClassPlan &P) {
  if (P.Faulted)
    return true;
  return P.count(FieldAction::Rename, /*Static=*/false) != 0;
}

bool needsClassTransformer(const ClassPlan &P) {
  return P.count(FieldAction::Rename, /*Static=*/true) != 0;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

} // namespace

SynthesisReport TransformerSynthesis::synthesize(const UpdateSpec &Spec,
                                                 FaultInjector *Faults) const {
  SynthesisReport R;
  for (const std::string &Name : Spec.ClassUpdates) {
    const ClassDef *OldCls = Old.find(Name);
    const ClassDef *NewCls = New.find(Name);
    if (!OldCls || !NewCls)
      continue;

    ClassPlan P;
    P.Name = Name;

    std::vector<const FieldDef *> OldInst = flatInstanceFields(Old, Name);
    std::vector<const FieldDef *> NewInst = flatInstanceFields(New, Name);

    P.LayoutUnchanged = OldInst.size() == NewInst.size();
    for (size_t I = 0; P.LayoutUnchanged && I < OldInst.size(); ++I)
      P.LayoutUnchanged = OldInst[I]->Name == NewInst[I]->Name &&
                          OldInst[I]->TypeDesc == NewInst[I]->TypeDesc;

    // Copy-chain evidence wants the *declaring* class of each constructor;
    // inherited fields assigned in a superclass constructor are evidenced
    // there, so merge the whole chain's constructors.
    std::map<std::string, std::set<std::string>> OldEv, NewEv;
    for (const std::string &C : Old.superChain(Name))
      if (const ClassDef *Cls = Old.find(C))
        for (auto &[Field, Keys] : ctorFlowEvidence(Old, *Cls))
          OldEv[Field].insert(Keys.begin(), Keys.end());
    for (const std::string &C : New.superChain(Name))
      if (const ClassDef *Cls = New.find(C))
        for (auto &[Field, Keys] : ctorFlowEvidence(New, *Cls))
          NewEv[Field].insert(Keys.begin(), Keys.end());

    planFields(OldInst, NewInst, /*IsStatic=*/false, OldEv, NewEv, P.Fields);

    // Statics: declared on the class itself, name/type matching only (the
    // default class transformer's domain).
    std::vector<const FieldDef *> OldStat, NewStat;
    for (const FieldDef &F : OldCls->Fields)
      if (F.IsStatic)
        OldStat.push_back(&F);
    for (const FieldDef &F : NewCls->Fields)
      if (F.IsStatic)
        NewStat.push_back(&F);
    planFields(OldStat, NewStat, /*IsStatic=*/true, {}, {}, P.Fields);

    // Chaos site: one probe per inferred instance-field mapping. A firing
    // probe corrupts the mapping's source field, so the emitted transformer
    // throws UpdateError("transform") the first time it runs.
    for (FieldMapping &M : P.Fields) {
      if (M.IsStatic ||
          (M.Action != FieldAction::Copy && M.Action != FieldAction::Rename))
        continue;
      if (Faults && Faults->probe(FaultInjector::Site::SynthTransformerField)) {
        M.OldField += "__fault";
        M.Note = "fault injected: source field corrupted";
        P.Faulted = true;
      }
    }

    for (const FieldMapping &M : P.Fields) {
      R.NumCopies += M.Action == FieldAction::Copy;
      R.NumRenames += M.Action == FieldAction::Rename;
      R.NumFlagged += M.Action == FieldAction::Flagged;
    }
    if (P.LayoutUnchanged && !needsObjectTransformer(P))
      R.UntouchedClasses.insert(Name);
    R.Classes.push_back(std::move(P));
  }
  R.ImpactClasses = impactClasses(New, Spec);
  return R;
}

void TransformerSynthesis::installTransformers(UpdateBundle &B,
                                               const SynthesisReport &R) {
  for (const ClassPlan &P : R.Classes) {
    // A custom transformer replaces the default entirely, so the emitted
    // body must perform every Copy as well as the Renames.
    if (needsObjectTransformer(P) && !B.ObjectTransformers.count(P.Name)) {
      struct Row {
        std::string To, From;
        bool IsInt;
      };
      std::vector<Row> Rows;
      for (const FieldMapping &M : P.Fields)
        if (!M.IsStatic && (M.Action == FieldAction::Copy ||
                            M.Action == FieldAction::Rename))
          Rows.push_back({M.NewField, M.OldField, M.NewType == "I"});
      B.ObjectTransformers[P.Name] = [Rows = std::move(Rows)](
                                         TransformCtx &Ctx, Ref To, Ref From) {
        for (const Row &Rw : Rows) {
          if (Rw.IsInt)
            Ctx.setInt(To, Rw.To, Ctx.getInt(From, Rw.From));
          else
            Ctx.setRef(To, Rw.To, Ctx.getRef(From, Rw.From));
        }
      };
    }
    if (needsClassTransformer(P) && !B.ClassTransformers.count(P.Name)) {
      struct Row {
        std::string To, From;
        bool IsInt;
      };
      std::vector<Row> Rows;
      for (const FieldMapping &M : P.Fields)
        if (M.IsStatic && (M.Action == FieldAction::Copy ||
                           M.Action == FieldAction::Rename))
          Rows.push_back({M.NewField, M.OldField, M.NewType == "I"});
      std::string NewCls = P.Name;
      std::string OldCls = B.renamedOldClass(P.Name);
      B.ClassTransformers[P.Name] = [Rows = std::move(Rows), NewCls,
                                     OldCls](TransformCtx &Ctx) {
        for (const Row &Rw : Rows) {
          if (Rw.IsInt)
            Ctx.setStaticInt(NewCls, Rw.To, Ctx.getStaticInt(OldCls, Rw.From));
          else
            Ctx.setStaticRef(NewCls, Rw.To, Ctx.getStaticRef(OldCls, Rw.From));
        }
      };
    }
  }
}

std::set<std::string>
TransformerSynthesis::impactClasses(const ClassSet &New,
                                    const UpdateSpec &Spec) {
  // Seed: every class whose instances the DSU collection remaps, plus the
  // additions transformers may allocate (Fig. 3's EmailAddress).
  std::set<std::string> Impact;
  std::vector<std::string> Work;
  auto Add = [&](const std::string &Name) {
    if (!Name.empty() && New.contains(Name) && Impact.insert(Name).second)
      Work.push_back(Name);
  };
  for (const std::string &C : Spec.ClassUpdates)
    Add(C);
  for (const std::string &C : Spec.AddedClasses)
    Add(C);

  // Closure: anything reachable through reference fields (array element
  // classes peeled) can be read or written by a transformer, and a field
  // declared of type X may hold any subclass of X at run time.
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    for (const std::string &C : New.superChain(Name)) {
      const ClassDef *Cls = New.find(C);
      if (!Cls)
        continue;
      for (const FieldDef &F : Cls->Fields)
        Add(peeledClass(F.TypeDesc));
    }
    for (const auto &[Sub, Def] : New.classes())
      if (Sub != Name && New.isSubclassOf(Sub, Name))
        Add(Sub);
  }
  return Impact;
}

std::string SynthesisReport::table() const {
  std::ostringstream OS;
  OS << "class                field                     action   source"
     << "               note\n";
  auto Pad = [](const std::string &S, size_t W) {
    return S.size() >= W ? S + " " : S + std::string(W - S.size(), ' ');
  };
  for (const ClassPlan &P : Classes)
    for (const FieldMapping &M : P.Fields) {
      std::string Field = (M.IsStatic ? "static " : "") + M.NewField;
      OS << Pad(P.Name, 21) << Pad(Field, 26) << Pad(fieldActionName(M.Action), 9)
         << Pad(M.OldField.empty() ? "-" : M.OldField, 21) << M.Note << "\n";
    }
  OS << "impact classes: " << ImpactClasses.size()
     << "  untouched: " << UntouchedClasses.size() << "  copies: " << NumCopies
     << "  renames: " << NumRenames << "  flagged: " << NumFlagged << "\n";
  return OS.str();
}

std::string SynthesisReport::json() const {
  std::ostringstream OS;
  OS << "{\n  \"classes\": [";
  bool FirstC = true;
  for (const ClassPlan &P : Classes) {
    OS << (FirstC ? "" : ",") << "\n    {\"name\": \"" << jsonEscape(P.Name)
       << "\", \"layout_unchanged\": " << (P.LayoutUnchanged ? "true" : "false")
       << ", \"faulted\": " << (P.Faulted ? "true" : "false")
       << ", \"fields\": [";
    FirstC = false;
    bool FirstF = true;
    for (const FieldMapping &M : P.Fields) {
      OS << (FirstF ? "" : ", ") << "{\"field\": \"" << jsonEscape(M.NewField)
         << "\", \"action\": \"" << fieldActionName(M.Action)
         << "\", \"static\": " << (M.IsStatic ? "true" : "false");
      if (!M.OldField.empty())
        OS << ", \"source\": \"" << jsonEscape(M.OldField) << "\"";
      if (!M.Note.empty())
        OS << ", \"note\": \"" << jsonEscape(M.Note) << "\"";
      OS << "}";
      FirstF = false;
    }
    OS << "]}";
  }
  OS << "\n  ],\n  \"impact_classes\": [";
  bool First = true;
  for (const std::string &C : ImpactClasses) {
    OS << (First ? "" : ", ") << "\"" << jsonEscape(C) << "\"";
    First = false;
  }
  OS << "],\n  \"untouched_classes\": [";
  First = true;
  for (const std::string &C : UntouchedClasses) {
    OS << (First ? "" : ", ") << "\"" << jsonEscape(C) << "\"";
    First = false;
  }
  OS << "],\n  \"copies\": " << NumCopies << ",\n  \"renames\": " << NumRenames
     << ",\n  \"flagged\": " << NumFlagged << "\n}\n";
  return OS.str();
}

void jvolve::recordSynthesisMetrics(const SynthesisReport &R) {
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.counter(metrics::DsuSynthRuns).inc();
  Tel.counter(metrics::DsuSynthRenames).add(static_cast<int64_t>(R.NumRenames));
  Tel.counter(metrics::DsuSynthFlagged).add(static_cast<int64_t>(R.NumFlagged));
  Tel.gauge(metrics::DsuImpactClasses)
      .set(static_cast<int64_t>(R.ImpactClasses.size()));
  Tel.gauge(metrics::DsuImpactUntouched)
      .set(static_cast<int64_t>(R.UntouchedClasses.size()));
}
