//===----------------------------------------------------------------------===//
///
/// \file
/// An update bundle: what the developer hands to the running VM.
///
/// The C++ analogue of the paper's (new class files, update specification,
/// JvolveTransformers.class) triple. Object and class transformers are C++
/// callables operating through the privileged TransformCtx interface — the
/// equivalent of the JastAdd-compiled transformer methods that bypass
/// access modifiers (§2.3). The UPT installs default transformers; the
/// developer overrides entries as needed (Fig. 3).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_UPDATEBUNDLE_H
#define JVOLVE_DSU_UPDATEBUNDLE_H

#include "bytecode/ClassDef.h"
#include "dsu/ActiveMethod.h"
#include "dsu/UpdateSpec.h"
#include "runtime/Slot.h"

#include <functional>
#include <map>
#include <string>

namespace jvolve {

class TransformCtx;

/// Initializes the new version \p To of an object from its old version
/// \p From (paper §2.3, jvolveObject).
using ObjectTransformer =
    std::function<void(TransformCtx &, Ref To, Ref From)>;

/// Initializes the static fields of an updated class (jvolveClass). The old
/// class's statics are reachable through the renamed old class name.
using ClassTransformer = std::function<void(TransformCtx &)>;

/// Everything needed to apply one dynamic update.
struct UpdateBundle {
  /// The complete new program version (not just changed classes).
  ClassSet NewProgram;

  UpdateSpec Spec;

  /// Prefix for renamed old classes, e.g. "v131".
  std::string VersionTag;

  /// Per-updated-class transformers, keyed by class name. Classes absent
  /// from these maps get the default transformer (copy same-name same-type
  /// members, default-initialize the rest).
  std::map<std::string, ObjectTransformer> ObjectTransformers;
  std::map<std::string, ClassTransformer> ClassTransformers;

  /// Optional inverse transformers, keyed by class name, used only when a
  /// canary window reverts this update: they initialize the *old* version
  /// \p To from the *new* version \p From. Classes absent from these maps
  /// fall back to the default copy plus the canary's retained undo log
  /// (removed fields restored from values extracted at commit).
  std::map<std::string, ObjectTransformer> InverseObjectTransformers;
  std::map<std::string, ClassTransformer> InverseClassTransformers;

  /// §3.5 extension: recipes for replacing *changed* methods while they
  /// run, keyed by MethodRef::key() of the old method. Without an entry,
  /// an on-stack changed method blocks the update behind a return barrier.
  std::map<std::string, ActiveMethodMapping> ActiveMappings;

  /// Registers \p M under its method key.
  void addActiveMapping(ActiveMethodMapping M) {
    std::string Key = M.Method.key();
    ActiveMappings[Key] = std::move(M);
  }

  /// Old-class name as it appears after renaming ("v131_User").
  std::string renamedOldClass(const std::string &Name) const {
    return VersionTag + "_" + Name;
  }
};

} // namespace jvolve

#endif // JVOLVE_DSU_UPDATEBUNDLE_H
