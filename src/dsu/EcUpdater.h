//===----------------------------------------------------------------------===//
///
/// \file
/// The edit-and-continue baseline (paper §5, "Edit and continue").
///
/// Systems like Sun's HotSwap and .NET E&C restrict updates to code changes
/// that leave every class signature intact: no field additions/deletions/
/// type changes and no method signature changes. This module reproduces
/// both halves of the paper's comparison: the support *decision* used for
/// the "method-body-only systems support 9 of the 22 updates" headline, and
/// an actual body-swapping updater for the updates it does support.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_ECUPDATER_H
#define JVOLVE_DSU_ECUPDATER_H

#include "dsu/UpdateSpec.h"
#include "vm/VM.h"

#include <string>

namespace jvolve {

/// Method-body-only dynamic updating.
class EcUpdater {
public:
  explicit EcUpdater(VM &TheVM) : TheVM(TheVM) {}

  /// The paper's support criterion for method-body-only systems: an update
  /// is unsupported as soon as it "changes method signatures and/or adds or
  /// deletes fields" (§4.2).
  static bool supports(const UpdateSummary &Summary) {
    return Summary.FieldsAdded == 0 && Summary.FieldsDeleted == 0 &&
           Summary.MethodsSigChanged == 0;
  }

  /// Applies a strictly body-only update (no class-signature changes at
  /// all): swaps bytecode and invalidates compiled code, HotSwap-style.
  /// Active invocations keep running the old bodies. \returns false (with
  /// \p WhyNot) when the spec is outside even this restricted model.
  bool apply(const ClassSet &NewProgram, const UpdateSpec &Spec,
             std::string *WhyNot = nullptr);

private:
  VM &TheVM;
};

} // namespace jvolve

#endif // JVOLVE_DSU_ECUPDATER_H
