//===----------------------------------------------------------------------===//
///
/// \file
/// The edit-and-continue baseline (paper §5, "Edit and continue").
///
/// Systems like Sun's HotSwap and .NET E&C restrict updates to code changes
/// that leave every class signature intact: no field additions/deletions/
/// type changes and no method signature changes. This module reproduces
/// both halves of the paper's comparison: the support *decision* used for
/// the "method-body-only systems support 9 of the 22 updates" headline, and
/// an actual body-swapping updater for the updates it does support.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_ECUPDATER_H
#define JVOLVE_DSU_ECUPDATER_H

#include "dsu/UpdateSpec.h"
#include "vm/VM.h"

#include <string>

namespace jvolve {

class UpdateTrace;

/// Method-body-only dynamic updating.
class EcUpdater {
public:
  explicit EcUpdater(VM &TheVM) : TheVM(TheVM) {}

  /// The paper's support criterion for method-body-only systems: an update
  /// is unsupported as soon as it "changes method signatures and/or adds or
  /// deletes fields" (§4.2).
  static bool supports(const UpdateSummary &Summary) {
    return Summary.FieldsAdded == 0 && Summary.FieldsDeleted == 0 &&
           Summary.MethodsSigChanged == 0;
  }

  /// Applies a strictly body-only update (no class-signature changes at
  /// all) through the CodeVersionManager (dsu/CodeVersion.h): each body
  /// lands in the method's version chain and one atomic active-version
  /// switch commits the batch — no safe point, no DSU collection. Active
  /// invocations keep running the old bodies (stale frames of the prior
  /// version). \returns false (with \p WhyNot) when the spec is outside
  /// even this restricted model, or when the codeversion-install fault
  /// fired (the prior active versions keep serving). \p Trace, when
  /// non-null, receives the manager's codeversion-* events; \p VersionTag
  /// labels the installed chain nodes.
  bool apply(const ClassSet &NewProgram, const UpdateSpec &Spec,
             std::string *WhyNot = nullptr, UpdateTrace *Trace = nullptr,
             const std::string &VersionTag = "ec");

private:
  VM &TheVM;
};

} // namespace jvolve

#endif // JVOLVE_DSU_ECUPDATER_H
