//===----------------------------------------------------------------------===//
///
/// \file
/// Post-commit canary windows with health-gated automatic revert.
///
/// Jvolve's safety story (paper §3) ends at commit: the transactional
/// snapshot protects against failures *during* install, but a
/// type-correct update that ships a logic bug, a latency regression, or a
/// silently-corrupting transformer has no recourse once the pipeline
/// succeeds. Production code-versioning systems treat the moments after
/// an update as the riskiest window (CoreCLR's rejit generations
/// re-version a bad body away without a restart); the CanaryController is
/// that instinct for Jvolve. Armed at commit, it observes a bounded
/// window — ticks and/or served requests — sampling trap rate, failed
/// lazy transforms, shed counts, and request-latency deltas against the
/// pre-update baseline. A breach (or an explicit Updater::revert, a
/// jvolve-serve --revert, or the canary-health-breach fault site)
/// synthesizes a reverse update and pushes it through the normal
/// safe-point + transformer pipeline.
///
/// States: Observing -> {Retired (healthy or superseded), Reverting ->
/// {Reverted, RevertFailed}}. A stacked update arriving while Observing
/// settles the window (the new update supersedes the old one's canary);
/// one arriving while Reverting is refused with a structured report.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_CANARY_H
#define JVOLVE_DSU_CANARY_H

#include "dsu/Revert.h"
#include "dsu/UpdateTrace.h"
#include "dsu/Updater.h"
#include "vm/VM.h"

#include <memory>
#include <string>
#include <vector>

namespace jvolve {

/// Lifecycle of one canary window.
enum class CanaryState : uint8_t {
  Observing,    ///< window open; health checks running
  Reverting,    ///< breach or explicit request; reverse update in flight
  Retired,      ///< window closed healthy (or superseded by a stacked
                ///< update); the update stands
  Reverted,     ///< reverse update applied; old version runs again
  RevertFailed, ///< the reverse update could not be applied
};

const char *canaryStateName(CanaryState S);

/// Structured report of a window's life — what jvolve-serve prints and
/// what a refused stacked update carries in its rejection message.
struct CanaryReport {
  CanaryState State = CanaryState::Observing;
  std::string ForwardTag;
  uint64_t ArmedTick = 0;
  uint64_t SettledTick = 0;
  uint64_t ChecksRun = 0;
  std::vector<CanaryBreach> Breaches;
  std::string RevertMessage;
  uint64_t ResidualNewObjects = 0;

  std::string str() const;
};

/// The controller a canaried update arms on the VM at commit
/// (VM::installCanary). All work happens on the VM thread via onTick.
class CanaryController : public VmCanary {
public:
  CanaryController(VM &TheVM, CanaryPolicy Policy, UpdateOptions ForwardOpts,
                   ClassSet PreUpdateProgram, UpdateBundle ForwardBundle,
                   CanaryUndoLog Undo, std::vector<ClassId> ForwardNewClassIds,
                   CanaryHealthSample PreUpdateBaseline);
  ~CanaryController() override;

  /// Opens the window: samples the at-arm counters, bumps the metrics,
  /// and records the trace event. Called once, right after commit.
  void arm();

  //===--- VmCanary --------------------------------------------------------===//
  void onTick(uint64_t Now) override;
  bool windowOpen() const override {
    return St == CanaryState::Observing || St == CanaryState::Reverting;
  }
  void visitRoots(const std::function<void(Ref &)> &Visit) override;
  void onHeapMoved() override;

  //===--- Control ---------------------------------------------------------===//

  /// Explicit revert trigger (Updater::revert, jvolve-serve --revert).
  /// \returns false when the window is no longer open.
  bool requestRevert(const std::string &Reason);

  /// Closes an Observing window immediately without reverting — a stacked
  /// update supersedes this one's canary. No-op in any other state.
  void settle(const std::string &Reason);

  //===--- Introspection ---------------------------------------------------===//

  CanaryState state() const { return St; }
  bool reverting() const { return St == CanaryState::Reverting; }
  /// True when \p U is this controller's own reverse updater (the stacked-
  /// update gate in Updater::schedule must not refuse its own revert).
  bool ownsUpdater(const Updater *U) const { return RevertUpd.get() == U; }
  /// The reverse update's result; Status is rewritten to Reverted /
  /// RevertFailed. Meaningful once windowOpen() turns false.
  const UpdateResult &revertResult() const { return RevertResult; }
  CanaryReport report() const;

  /// One health evaluation (also probed by the canary-health-breach fault
  /// site); public for the watchdog-free drive loops in tests.
  void checkNow(uint64_t Now);

private:
  void beginRevert(uint64_t Now);
  void finalizeRevert(uint64_t Now);
  void retire(uint64_t Now);

  VM &TheVM;
  CanaryPolicy Policy;
  UpdateOptions ForwardOpts;
  ClassSet PreUpdateProgram;
  UpdateBundle ForwardBundle;
  CanaryUndoLog Undo;
  std::vector<ClassId> ForwardNewClassIds;
  CanaryHealthSample Baseline; ///< pre-update (latency reference)
  CanaryHealthSample AtArm;    ///< at-commit (window deltas)

  CanaryState St = CanaryState::Observing;
  uint64_t ArmedTick = 0;
  uint64_t SettledTick = 0;
  uint64_t NextCheckTick = 0;
  uint64_t ChecksRun = 0;
  std::vector<CanaryBreach> Breaches;
  std::string RevertReason;

  std::unique_ptr<Updater> RevertUpd;
  UpdateResult RevertResult;
  uint64_t ResidualNewObjects = 0;

  UpdateTrace Trace;
};

} // namespace jvolve

#endif // JVOLVE_DSU_CANARY_H
