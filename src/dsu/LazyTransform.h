//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy object transformation: read-barrier-mediated on-demand transforms
/// with background draining.
///
/// The paper's updater (§3.4) runs every object transformer inside the
/// stop-the-world DSU collection, so the pause grows with the number of
/// changed-class instances. The paper discusses the alternative the
/// production JikesRVM-based systems explored: commit the update with
/// *untransformed* shells and transform each object the first time the
/// program touches it. This engine implements that mode.
///
/// The DSU collection still allocates a zeroed new-version shell plus an
/// old-version duplicate per remapped object (reusing the update log and
/// the §3.5 old-copy space), but marks each shell FlagLazyPending and
/// defers the transformer. After commit:
///
///  - interpreter object-access paths run a read barrier: a header-flag
///    check on the fast path, LazyTransformEngine::onBarrierHit on the
///    slow path, which runs the transformer (cycle-safe, recursive via
///    TransformCtx::ensureTransformed) before the access proceeds;
///  - a background drainer — a cooperative VM thread scheduled like any
///    other — transforms a bounded batch per quantum so the table empties
///    even if the program never touches some shells;
///  - once every entry settles the engine *retires* the barrier: the
///    LazyBarriers bit is cleared from all compiled code and the old-copy
///    block is released, so steady-state cost returns to exactly zero
///    (unlike the permanent indirection-table ablation).
///
/// Post-commit failure policy: a transformer that throws after commit
/// cannot roll the update back. The affected entries settle as Failed
/// (their shells stay valid default-initialized objects), the touching
/// thread receives a structured LazyTransformError diagnostic, and the
/// update is reported degraded — mirroring the quiescence ladder's
/// graceful-degradation reporting.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_LAZYTRANSFORM_H
#define JVOLVE_DSU_LAZYTRANSFORM_H

#include "dsu/Transformers.h"
#include "dsu/UpdateBundle.h"
#include "heap/Collector.h"
#include "vm/VM.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace jvolve {

/// Structured diagnostic for one failed post-commit transform.
struct LazyTransformError {
  std::string ClassName; ///< new-version class of the failed shell
  size_t LogIndex = 0;   ///< update-log entry that failed
  std::string Message;   ///< the transformer's UpdateError message
  bool OnDemand = false; ///< barrier hit (true) or background drain (false)
  uint64_t Tick = 0;     ///< virtual time of the failure

  std::string str() const;
};

/// The engine. Owns the DSU collection's update log, the shell -> entry
/// index, and a copy of the update bundle (so transformer bodies stay
/// callable for the engine's whole lifetime); the VM owns the engine
/// through the VmLazyEngine interface from commit until the next update
/// replaces it.
class LazyTransformEngine : public VmLazyEngine {
public:
  /// \p OwnsOldCopySpace: the update placed old-version duplicates in the
  /// heap's old-copy block and left it reserved; the engine releases it at
  /// barrier retirement (or hands the copies to a regular GC first).
  /// \p DrainBatch: background transforms per drainer quantum.
  /// \p ImpactBounded: at arm time, bulk-settle every pending shell whose
  /// class the impact analysis proves untouched (instance layout identical
  /// between versions and no custom object transformer) — those objects
  /// are pure bitwise copies, so the drain loop and the read barrier skip
  /// them entirely.
  LazyTransformEngine(VM &TheVM, UpdateBundle Bundle,
                      std::vector<UpdateLogEntry> Log,
                      std::unordered_map<Ref, size_t> Index,
                      bool OwnsOldCopySpace, size_t DrainBatch,
                      bool ImpactBounded = false);

  /// Sets the LazyBarriers bit on every compiled method (registry and
  /// active frames) and on future compilations, and publishes the initial
  /// pending gauge. Called once, right after commit. In impact-bounded
  /// mode, first settles the provably-untouched classes in bulk.
  void arm();

  //===--- VmLazyEngine -----------------------------------------------------//
  bool onBarrierHit(Ref Obj, std::string *Err) override;
  size_t drainSome(size_t BudgetTicks) override;
  bool drained() const override { return pendingCount() == 0; }
  size_t pendingCount() const override;
  uint64_t transformedCount() const override {
    return NumOnDemand + NumBackground;
  }
  /// True when \p Obj is a shell whose entry has not settled yet — the
  /// heap verifier's lazy context (a drained engine returns false for
  /// everything, so leftover shells are reported as corruption).
  bool isPendingShell(Ref Obj) const override;
  void retire() override;
  void visitRoots(const std::function<void(Ref &)> &Visit) override;
  void onHeapMoved() override;

  //===--- Introspection (jvolve-serve stats, tests, benches) ---------------//
  bool retired() const { return Retired; }
  uint64_t barrierHits() const { return NumBarrierHits; }
  uint64_t onDemandTransforms() const { return NumOnDemand; }
  uint64_t backgroundTransforms() const { return NumBackground; }
  uint64_t drainTicks() const { return NumDrainTicks; }
  uint64_t failedTransforms() const { return NumFailed; }
  /// Entries settled in bulk at arm time (impact-bounded mode only).
  uint64_t bulkSettled() const { return NumBulkSettled; }
  const std::vector<LazyTransformError> &failures() const { return Failures; }

private:
  /// Settles the entry at \p Index: runs its transformer (and whatever it
  /// recursively forces) with collection held off. On failure, sweeps every
  /// in-progress entry to Failed, clears the shells' flags, and records the
  /// structured diagnostic. \returns false on failure with \p Err set.
  bool transformIndex(size_t Index, bool OnDemand, std::string *Err);

  /// Bulk-settles every pending entry of a provably-untouched class (the
  /// runtime mirror of SynthesisReport::UntouchedClasses): identical
  /// instance layout old -> new and no custom object transformer, so the
  /// default copy is the whole transform.
  void settleUntouched();

  /// Applies \p V to the LazyBarriers bit of all compiled code: registry
  /// methods, every frame on every thread stack (catches OSR-synthesized
  /// code objects not in the registry), and the compiler option.
  void setAllBarriers(bool V);

  void publishPendingGauge() const;

  VM &TheVM;
  UpdateBundle Bundle;
  std::vector<UpdateLogEntry> UpdateLog;
  std::unordered_map<Ref, size_t> NewToLogIndex;
  /// Constructed after the containers above — it holds references to them.
  TransformerRunner Runner;

  bool OwnsOldCopySpace;
  size_t DrainBatch;
  bool ImpactBounded = false;
  uint64_t NumBulkSettled = 0;
  size_t NextDrainIndex = 0;
  /// Entries already settled at handoff (a class transformer may have
  /// force-transformed objects through its statics before commit).
  size_t PreSettled = 0;
  bool Retired = false;

  uint64_t NumBarrierHits = 0;
  uint64_t NumOnDemand = 0;
  uint64_t NumBackground = 0;
  uint64_t NumDrainTicks = 0;
  uint64_t NumFailed = 0;
  std::vector<LazyTransformError> Failures;
};

} // namespace jvolve

#endif // JVOLVE_DSU_LAZYTRANSFORM_H
