#include "dsu/Dataflow.h"

#include "dsu/UpdateSpec.h"

#include "bytecode/Type.h"
#include "bytecode/Verifier.h"

#include <algorithm>
#include <deque>

using namespace jvolve;

std::string AllocSite::str() const {
  return Method + "@" + std::to_string(Pc) + ": " + TypeName;
}

bool AbstractRef::join(const AbstractRef &Other) {
  if (Top)
    return false;
  if (Other.Top) {
    Top = true;
    Sites.clear();
    return true;
  }
  bool Changed = false;
  for (uint32_t S : Other.Sites)
    Changed |= Sites.insert(S).second;
  return Changed;
}

namespace jvolve {
/// Privileged writer for DataflowResult: the fixpoint engine lives in an
/// anonymous namespace, so this named friend hands it the internals.
struct DataflowResultBuilder {
  DataflowResult &R;
  std::vector<AllocSite> &sites() { return R.Sites; }
  std::set<std::string> &reachable() { return R.Reachable; }
  std::map<std::pair<std::string, size_t>, std::set<std::string>> &callees() {
    return R.Callees;
  }
  std::map<std::pair<std::string, size_t>, AbstractRef> &receivers() {
    return R.Receivers;
  }
  size_t &narrowed() { return R.Narrowed; }
  size_t &virtualSites() { return R.VirtualSites; }
};
} // namespace jvolve

namespace {

/// Branch successors of the instruction at \p Pc (same CFG the verifier
/// walks): fallthrough unless Goto/Return, plus the branch target.
void successors(const std::vector<Instr> &Code, size_t Pc,
                std::vector<size_t> &Out) {
  Out.clear();
  const Instr &I = Code[Pc];
  switch (I.Op) {
  case Opcode::Goto:
    Out.push_back(static_cast<size_t>(I.IVal));
    return;
  case Opcode::Return:
  case Opcode::IReturn:
  case Opcode::AReturn:
    return;
  default:
    break;
  }
  if (Pc + 1 < Code.size())
    Out.push_back(Pc + 1);
  switch (I.Op) {
  case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt:
  case Opcode::IfGe: case Opcode::IfGt: case Opcode::IfLe:
  case Opcode::IfICmpEq: case Opcode::IfICmpNe: case Opcode::IfICmpLt:
  case Opcode::IfICmpGe: case Opcode::IfICmpGt: case Opcode::IfICmpLe:
  case Opcode::IfNull: case Opcode::IfNonNull:
  case Opcode::IfACmpEq: case Opcode::IfACmpNe:
    Out.push_back(static_cast<size_t>(I.IVal));
    return;
  default:
    return;
  }
}

/// Stack effect of an intrinsic: slots popped and whether it pushes a
/// reference (StrConcat) or an int. Mirrors the IntrinsicId signatures.
void intrinsicEffect(IntrinsicId Id, size_t &Pops, int &Pushes,
                     bool &PushesRef) {
  PushesRef = false;
  switch (Id) {
  case IntrinsicId::PrintInt: case IntrinsicId::PrintStr:
  case IntrinsicId::SleepTicks: case IntrinsicId::NetClose:
    Pops = 1; Pushes = 0; return;
  case IntrinsicId::CurrentTicks:
    Pops = 0; Pushes = 1; return;
  case IntrinsicId::NetAccept: case IntrinsicId::NetTryAccept:
  case IntrinsicId::NetRecv: case IntrinsicId::StrLength:
  case IntrinsicId::Rand:
    Pops = 1; Pushes = 1; return;
  case IntrinsicId::NetSend:
    Pops = 2; Pushes = 0; return;
  case IntrinsicId::StrEquals: case IntrinsicId::StrIndexOf:
    Pops = 2; Pushes = 1; return;
  case IntrinsicId::StrConcat:
    Pops = 2; Pushes = 1; PushesRef = true; return;
  }
  Pops = 0; Pushes = 0;
}

/// One method's flow state: an abstract value per local and stack slot.
struct FlowState {
  std::vector<AbstractRef> Locals;
  std::vector<AbstractRef> Stack;

  bool join(const FlowState &Other) {
    bool Changed = false;
    if (Locals.size() < Other.Locals.size())
      Locals.resize(Other.Locals.size());
    for (size_t I = 0; I < Other.Locals.size(); ++I)
      Changed |= Locals[I].join(Other.Locals[I]);
    // The verifier guarantees consistent stack heights at joins; resize
    // defensively so a non-verifying body cannot run us out of bounds.
    if (Stack.size() != Other.Stack.size())
      Stack.resize(std::max(Stack.size(), Other.Stack.size()));
    for (size_t I = 0; I < std::min(Stack.size(), Other.Stack.size()); ++I)
      Changed |= Stack[I].join(Other.Stack[I]);
    return Changed;
  }
};

struct MethodInfo {
  const ClassDef *Cls = nullptr;
  const MethodDef *Def = nullptr;
  std::vector<AbstractRef> ParamIn;
  AbstractRef Ret;
  bool Reached = false;
  /// The verifier's per-pc shapes, computed on first analysis: empty means
  /// the body does not verify and the engine must not trace it (it falls
  /// back to CHA edges with unknown arguments instead).
  std::vector<std::optional<StackShape>> Shapes;
  bool ShapesComputed = false;
};

/// The whole-program fixpoint engine. Monotone over a finite lattice
/// (points-to sets are bounded by the global site count and collapse to
/// Top past MaxSitesPerValue), so the repeated passes terminate.
class Engine {
public:
  Engine(const ClassSet &Set, const DataflowOptions &Opts)
      : Set(Set), Opts(Opts) {}

  DataflowResult run();

private:
  uint32_t siteId(const std::string &Key, size_t Pc) const {
    auto It = SiteIds.find({Key, Pc});
    return It == SiteIds.end() ? UINT32_MAX : It->second;
  }

  void cap(AbstractRef &V) const {
    if (!V.Top && V.Sites.size() > Opts.MaxSitesPerValue) {
      V.Top = true;
      V.Sites.clear();
    }
  }

  /// CHA dispatch targets for a virtual call through static type
  /// \p ClassName (the CallGraph fan-out rule).
  std::set<std::string> chaTargets(const std::string &ClassName,
                                   const std::string &MethodName,
                                   const std::string &Sig) const;

  /// Joins \p Args into \p Target's parameter state and marks it reached.
  void bindCall(const std::string &Target,
                const std::vector<AbstractRef> &Args);

  AbstractRef returnOf(const std::string &Target) const {
    auto It = Methods.find(Target);
    return It == Methods.end() ? AbstractRef::top() : It->second.Ret;
  }

  bool analyzeMethod(const std::string &Key, DataflowResultBuilder &RB);
  bool transfer(const std::string &Key, size_t Pc, const Instr &I,
                FlowState &St, MethodInfo &MI, DataflowResultBuilder &RB);

  const ClassSet &Set;
  const DataflowOptions &Opts;
  std::map<std::string, MethodInfo> Methods;
  std::map<std::pair<std::string, size_t>, uint32_t> SiteIds;
  std::vector<AllocSite> Sites;
  /// Per-site instance-field values, keyed by (site, "Class.field").
  std::map<std::pair<uint32_t, std::string>, AbstractRef> FieldMap;
  /// Values stored through a Top receiver, keyed by "Class.field": any
  /// object's field of that name may hold them.
  std::map<std::string, AbstractRef> TopFieldMap;
  /// Per-site array-element values, plus the Top-array bucket.
  std::map<uint32_t, AbstractRef> ElemMap;
  AbstractRef TopElem;
  bool GlobalChanged = false;
};

std::set<std::string> Engine::chaTargets(const std::string &ClassName,
                                         const std::string &MethodName,
                                         const std::string &Sig) const {
  std::set<std::string> Targets;
  std::string Declaring;
  if (!Set.resolveMethod(ClassName, MethodName, Sig, &Declaring))
    return Targets;
  Targets.insert(MethodRef{Declaring, MethodName, Sig}.key());
  for (const auto &[SubName, SubCls] : Set.classes()) {
    if (SubName == Declaring || !Set.isSubclassOf(SubName, ClassName))
      continue;
    if (SubCls.findMethod(MethodName, Sig))
      Targets.insert(MethodRef{SubName, MethodName, Sig}.key());
  }
  return Targets;
}

void Engine::bindCall(const std::string &Target,
                      const std::vector<AbstractRef> &Args) {
  auto It = Methods.find(Target);
  if (It == Methods.end())
    return;
  MethodInfo &MI = It->second;
  if (!MI.Reached) {
    MI.Reached = true;
    GlobalChanged = true;
  }
  if (MI.ParamIn.size() < Args.size())
    MI.ParamIn.resize(Args.size());
  for (size_t I = 0; I < Args.size(); ++I)
    if (MI.ParamIn[I].join(Args[I]))
      GlobalChanged = true;
}

bool Engine::transfer(const std::string &Key, size_t Pc, const Instr &I,
                      FlowState &St, MethodInfo &MI, DataflowResultBuilder &RB) {
  auto Pop = [&]() -> AbstractRef {
    if (St.Stack.empty())
      return AbstractRef::top();
    AbstractRef V = std::move(St.Stack.back());
    St.Stack.pop_back();
    return V;
  };
  auto Push = [&](AbstractRef V) {
    cap(V);
    St.Stack.push_back(std::move(V));
  };
  auto ResolveFieldKey = [&](const std::string &Sym) {
    size_t Dot = Sym.find('.');
    if (Dot == std::string::npos)
      return Sym;
    std::string Declaring;
    if (Set.resolveField(Sym.substr(0, Dot), Sym.substr(Dot + 1),
                         &Declaring))
      return Declaring + "." + Sym.substr(Dot + 1);
    return Sym;
  };

  switch (I.Op) {
  case Opcode::Nop:
    return true;
  case Opcode::IConst:
    Push({});
    return true;
  case Opcode::SConst:
  case Opcode::New:
  case Opcode::NewArray: {
    if (I.Op == Opcode::NewArray)
      Pop(); // length
    uint32_t Id = siteId(Key, Pc);
    Push(Id == UINT32_MAX ? AbstractRef::top() : AbstractRef::one(Id));
    return true;
  }
  case Opcode::NullConst:
    Push({}); // null points to no site
    return true;
  case Opcode::Load: {
    size_t Slot = static_cast<size_t>(I.IVal);
    Push(Slot < St.Locals.size() ? St.Locals[Slot] : AbstractRef::top());
    return true;
  }
  case Opcode::Store: {
    size_t Slot = static_cast<size_t>(I.IVal);
    if (Slot >= St.Locals.size())
      St.Locals.resize(Slot + 1);
    St.Locals[Slot] = Pop();
    return true;
  }
  case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
  case Opcode::IDiv: case Opcode::IRem:
    Pop();
    Pop();
    Push({});
    return true;
  case Opcode::INeg:
    Pop();
    Push({});
    return true;
  case Opcode::Dup: {
    AbstractRef V = Pop();
    Push(V);
    Push(V);
    return true;
  }
  case Opcode::Pop:
    Pop();
    return true;
  case Opcode::Goto:
    return true;
  case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt:
  case Opcode::IfGe: case Opcode::IfGt: case Opcode::IfLe:
  case Opcode::IfNull: case Opcode::IfNonNull:
    Pop();
    return true;
  case Opcode::IfICmpEq: case Opcode::IfICmpNe: case Opcode::IfICmpLt:
  case Opcode::IfICmpGe: case Opcode::IfICmpGt: case Opcode::IfICmpLe:
  case Opcode::IfACmpEq: case Opcode::IfACmpNe:
    Pop();
    Pop();
    return true;
  case Opcode::GetField: {
    AbstractRef Recv = Pop();
    if (!Type::isValidDescriptor(I.Sig) ||
        !Type::parse(I.Sig).isReferenceLike()) {
      Push({});
      return true;
    }
    if (Recv.Top) {
      Push(AbstractRef::top());
      return true;
    }
    std::string FKey = ResolveFieldKey(I.Sym);
    AbstractRef V;
    auto TF = TopFieldMap.find(FKey);
    if (TF != TopFieldMap.end())
      V.join(TF->second);
    for (uint32_t S : Recv.Sites) {
      auto It = FieldMap.find({S, FKey});
      if (It != FieldMap.end())
        V.join(It->second);
    }
    Push(V);
    return true;
  }
  case Opcode::PutField: {
    AbstractRef Val = Pop();
    AbstractRef Recv = Pop();
    if (Val.bottom())
      return true; // ints and nulls carry nothing
    std::string FKey = ResolveFieldKey(I.Sym);
    if (Recv.Top) {
      if (TopFieldMap[FKey].join(Val))
        GlobalChanged = true;
      cap(TopFieldMap[FKey]);
      return true;
    }
    for (uint32_t S : Recv.Sites) {
      AbstractRef &F = FieldMap[{S, FKey}];
      if (F.join(Val))
        GlobalChanged = true;
      cap(F);
    }
    return true;
  }
  case Opcode::GetStatic:
    // Statics may have been written by boot code that predates the
    // analyzed region (the entry points are post-boot run loops), so a
    // static read is unknown provenance by policy.
    if (Type::isValidDescriptor(I.Sig) &&
        Type::parse(I.Sig).isReferenceLike())
      Push(AbstractRef::top());
    else
      Push({});
    return true;
  case Opcode::PutStatic:
    Pop();
    return true;
  case Opcode::InstanceOf:
    Pop();
    Push({});
    return true;
  case Opcode::CheckCast: {
    AbstractRef V = Pop();
    // A successful cast guarantees the runtime class conforms to Sym, so
    // filtering incompatible sites is sound for the fallthrough path.
    if (!V.Top && Set.contains(I.Sym)) {
      std::set<uint32_t> Kept;
      for (uint32_t S : V.Sites) {
        const std::string &TN = Sites[S].TypeName;
        bool IsObj = !TN.empty() && TN[0] != '[';
        if (IsObj ? Set.isSubclassOf(TN, I.Sym) : false)
          Kept.insert(S);
      }
      V.Sites = std::move(Kept);
    }
    Push(V);
    return true;
  }
  case Opcode::InvokeVirtual:
  case Opcode::InvokeStatic:
  case Opcode::InvokeSpecial: {
    size_t Dot = I.Sym.find('.');
    if (Dot == std::string::npos)
      return false;
    std::string ClassName = I.Sym.substr(0, Dot);
    std::string MethodName = I.Sym.substr(Dot + 1);
    MethodSignature Sig = MethodSignature::parse(I.Sig);
    bool HasThis = I.Op != Opcode::InvokeStatic;
    size_t NumArgs = Sig.Params.size() + (HasThis ? 1 : 0);
    std::vector<AbstractRef> Args(NumArgs);
    for (size_t A = NumArgs; A-- > 0;)
      Args[A] = Pop();

    std::set<std::string> Targets;
    std::string Declaring;
    const MethodDef *Callee =
        Set.resolveMethod(ClassName, MethodName, I.Sig, &Declaring);
    if (Callee) {
      if (I.Op != Opcode::InvokeVirtual) {
        Targets.insert(MethodRef{Declaring, MethodName, I.Sig}.key());
      } else {
        std::set<std::string> Cha = chaTargets(ClassName, MethodName, I.Sig);
        ++RB.virtualSites();
        const AbstractRef &Recv = Args[0];
        if (Recv.Top) {
          Targets = Cha;
        } else {
          for (uint32_t S : Recv.Sites) {
            const std::string &TN = Sites[S].TypeName;
            if (TN.empty() || TN[0] == '[')
              continue;
            std::string D;
            if (Set.resolveMethod(TN, MethodName, I.Sig, &D))
              Targets.insert(MethodRef{D, MethodName, I.Sig}.key());
          }
          if (Targets.size() < Cha.size())
            ++RB.narrowed();
        }
        RB.receivers()[{Key, Pc}] = Recv;
      }
    }
    RB.callees()[{Key, Pc}] = Targets;
    for (const std::string &T : Targets)
      bindCall(T, Args);

    if (Sig.Return.descriptor() == "V")
      return true;
    if (!Sig.Return.isReferenceLike()) {
      Push({});
      return true;
    }
    AbstractRef Ret;
    for (const std::string &T : Targets)
      Ret.join(returnOf(T));
    if (Targets.empty())
      Ret = AbstractRef::top();
    Push(Ret);
    return true;
  }
  case Opcode::ALoad: {
    Pop(); // index
    AbstractRef Arr = Pop();
    AbstractRef V;
    if (Arr.Top) {
      V = AbstractRef::top();
    } else {
      V.join(TopElem);
      for (uint32_t S : Arr.Sites) {
        auto It = ElemMap.find(S);
        if (It != ElemMap.end())
          V.join(It->second);
      }
    }
    Push(V);
    return true;
  }
  case Opcode::AStore: {
    AbstractRef Val = Pop();
    Pop(); // index
    AbstractRef Arr = Pop();
    if (Val.bottom())
      return true;
    if (Arr.Top) {
      if (TopElem.join(Val))
        GlobalChanged = true;
      cap(TopElem);
      return true;
    }
    for (uint32_t S : Arr.Sites) {
      AbstractRef &E = ElemMap[S];
      if (E.join(Val))
        GlobalChanged = true;
      cap(E);
    }
    return true;
  }
  case Opcode::ArrayLength:
    Pop();
    Push({});
    return true;
  case Opcode::Return:
  case Opcode::IReturn:
    return true;
  case Opcode::AReturn: {
    AbstractRef V = Pop();
    if (MI.Ret.join(V)) {
      cap(MI.Ret);
      GlobalChanged = true;
    }
    return true;
  }
  case Opcode::Intrinsic: {
    size_t Pops;
    int Pushes;
    bool PushesRef;
    intrinsicEffect(static_cast<IntrinsicId>(I.IVal), Pops, Pushes,
                    PushesRef);
    for (size_t P = 0; P < Pops; ++P)
      Pop();
    if (Pushes)
      Push(PushesRef ? AbstractRef::top() : AbstractRef{});
    return true;
  }
  }
  return false;
}

bool Engine::analyzeMethod(const std::string &Key, DataflowResultBuilder &RB) {
  MethodInfo &MI = Methods[Key];
  if (!MI.Def || MI.Def->Code.empty())
    return true;
  const std::vector<Instr> &Code = MI.Def->Code;

  // Reuse the verifier's abstract interpretation as the admission gate:
  // only bodies with per-pc shapes are traced precisely. A non-verifying
  // body (possible only outside the installed-program contract) degrades
  // to CHA edges with unknown arguments, never to silence.
  if (!MI.ShapesComputed) {
    MI.Shapes = computeStackShapes(Set, *MI.Cls, *MI.Def);
    MI.ShapesComputed = true;
  }
  if (MI.Shapes.empty()) {
    for (size_t Pc = 0; Pc < Code.size(); ++Pc) {
      const Instr &I = Code[Pc];
      if (I.Op != Opcode::InvokeVirtual && I.Op != Opcode::InvokeStatic &&
          I.Op != Opcode::InvokeSpecial)
        continue;
      size_t Dot = I.Sym.find('.');
      if (Dot == std::string::npos)
        continue;
      std::set<std::string> Targets =
          chaTargets(I.Sym.substr(0, Dot), I.Sym.substr(Dot + 1), I.Sig);
      MethodSignature Sig = MethodSignature::parse(I.Sig);
      std::vector<AbstractRef> Args(
          Sig.Params.size() + (I.Op == Opcode::InvokeStatic ? 0 : 1),
          AbstractRef::top());
      RB.callees()[{Key, Pc}] = Targets;
      for (const std::string &T : Targets)
        bindCall(T, Args);
    }
    return true;
  }

  FlowState Entry;
  Entry.Locals.resize(std::max<size_t>(MI.Def->NumLocals,
                                       MI.Def->numParamSlots()));
  for (size_t P = 0; P < MI.ParamIn.size() && P < Entry.Locals.size(); ++P)
    Entry.Locals[P] = MI.ParamIn[P];

  std::vector<FlowState> In(Code.size());
  std::vector<bool> Seen(Code.size(), false);
  In[0] = Entry;
  Seen[0] = true;
  std::deque<size_t> Work{0};
  std::vector<size_t> Succs;
  // Bounded: each pc re-enters the worklist only when its in-state grew,
  // and the per-slot lattice is finite.
  while (!Work.empty()) {
    size_t Pc = Work.front();
    Work.pop_front();
    if (Pc >= Code.size())
      continue;
    FlowState St = In[Pc];
    if (!transfer(Key, Pc, Code[Pc], St, MI, RB))
      continue;
    successors(Code, Pc, Succs);
    for (size_t S : Succs) {
      if (S >= Code.size())
        continue;
      if (!Seen[S]) {
        Seen[S] = true;
        In[S] = St;
        Work.push_back(S);
      } else if (In[S].join(St)) {
        Work.push_back(S);
      }
    }
  }
  return true;
}

DataflowResult Engine::run() {
  DataflowResult Result;
  DataflowResultBuilder RB{Result};

  // Pass 1: nodes and allocation sites over the whole program.
  for (const auto &[ClassName, Cls] : Set.classes()) {
    for (const MethodDef &M : Cls.Methods) {
      std::string Key = MethodRef{ClassName, M.Name, M.Sig}.key();
      MethodInfo &MI = Methods[Key];
      MI.Cls = &Cls;
      MI.Def = &M;
      for (size_t Pc = 0; Pc < M.Code.size(); ++Pc) {
        const Instr &I = M.Code[Pc];
        if (I.Op != Opcode::New && I.Op != Opcode::NewArray &&
            I.Op != Opcode::SConst)
          continue;
        AllocSite S;
        S.Method = Key;
        S.Pc = Pc;
        if (I.Op == Opcode::New) {
          S.TypeName = I.Sym;
        } else if (I.Op == Opcode::SConst) {
          S.TypeName = "String";
        } else {
          S.TypeName = "[" + I.Sig;
          // Peel array descriptors to the element class, the same way
          // Upt::referencedClasses does.
          if (Type::isValidDescriptor(I.Sig) && I.Sig != "V") {
            Type T = Type::parse(I.Sig);
            while (T.isArray())
              T = T.elementType();
            if (T.isRef())
              S.ElemClass = T.className();
          }
        }
        SiteIds[{Key, Pc}] = static_cast<uint32_t>(Sites.size());
        Sites.push_back(std::move(S));
      }
    }
  }

  // Seed: the given entries with unknown parameters, or — when no entry
  // points were supplied — every method (the synthesis-only mode).
  std::vector<std::string> Seeds;
  if (Opts.EntryPoints.empty()) {
    for (const auto &[Key, MI] : Methods)
      Seeds.push_back(Key);
  } else {
    for (const std::string &E : Opts.EntryPoints)
      if (Methods.count(E))
        Seeds.push_back(E);
  }
  for (const std::string &Key : Seeds) {
    MethodInfo &MI = Methods[Key];
    MI.Reached = true;
    if (MI.Def) {
      MI.ParamIn.assign(MI.Def->numParamSlots(), AbstractRef::top());
    }
  }

  // Global fixpoint: repeat full passes over the reached region until no
  // summary, field map, or reachability bit changes. Monotone and finite,
  // with a generous pass bound as a backstop.
  for (int Round = 0; Round < 64; ++Round) {
    GlobalChanged = false;
    RB.callees().clear();
    RB.receivers().clear();
    RB.narrowed() = 0;
    RB.virtualSites() = 0;
    for (auto &[Key, MI] : Methods) {
      if (!MI.Reached)
        continue;
      analyzeMethod(Key, RB);
    }
    if (!GlobalChanged)
      break;
  }

  RB.sites() = std::move(Sites);
  for (const auto &[Key, MI] : Methods)
    if (MI.Reached)
      RB.reachable().insert(Key);
  return Result;
}

} // namespace

DataflowAnalysis::DataflowAnalysis(const ClassSet &Set) : Set(Set) {}

DataflowResult DataflowAnalysis::run(const DataflowOptions &Opts) {
  return Engine(Set, Opts).run();
}

const std::set<std::string> *
DataflowResult::calleesAt(const std::string &MethodKey, size_t Pc) const & {
  auto It = Callees.find({MethodKey, Pc});
  return It == Callees.end() ? nullptr : &It->second;
}

std::set<std::string>
DataflowResult::receiverClasses(const std::string &MethodKey, size_t Pc,
                                bool &Unknown) const {
  std::set<std::string> Classes;
  Unknown = true;
  auto It = Receivers.find({MethodKey, Pc});
  if (It == Receivers.end())
    return Classes;
  Unknown = It->second.Top;
  for (uint32_t S : It->second.Sites)
    Classes.insert(Sites[S].TypeName);
  return Classes;
}

std::map<std::string, std::set<uint16_t>>
jvolve::paramFieldFlows(const ClassSet &, const ClassDef &,
                        const MethodDef &M) {
  std::map<std::string, std::set<uint16_t>> Flows;
  if (M.Code.empty())
    return Flows;
  uint16_t NumParams = M.numParamSlots();
  if (NumParams == 0 || NumParams > 32)
    return Flows;

  // A tiny origin analysis: each slot carries a bitmask of the parameter
  // slots whose value may have flowed into it unchanged. Bit 0 is `this`
  // for instance methods, so a PutField whose receiver mask includes bit 0
  // is an assignment through the method's own receiver.
  using Mask = uint32_t;
  struct State {
    std::vector<Mask> Locals, Stack;
    bool join(const State &O) {
      bool Changed = false;
      if (Locals.size() < O.Locals.size())
        Locals.resize(O.Locals.size());
      for (size_t I = 0; I < O.Locals.size(); ++I) {
        Mask Joined = Locals[I] | O.Locals[I];
        Changed |= Joined != Locals[I];
        Locals[I] = Joined;
      }
      if (Stack.size() != O.Stack.size())
        Stack.resize(std::max(Stack.size(), O.Stack.size()));
      for (size_t I = 0; I < std::min(Stack.size(), O.Stack.size()); ++I) {
        Mask Joined = Stack[I] | O.Stack[I];
        Changed |= Joined != Stack[I];
        Stack[I] = Joined;
      }
      return Changed;
    }
  };

  State Entry;
  Entry.Locals.resize(std::max<size_t>(M.NumLocals, NumParams), 0);
  for (uint16_t P = 0; P < NumParams; ++P)
    Entry.Locals[P] = Mask(1) << P;

  std::vector<State> In(M.Code.size());
  std::vector<bool> Seen(M.Code.size(), false);
  In[0] = Entry;
  Seen[0] = true;
  std::deque<size_t> Work{0};
  std::vector<size_t> Succs;
  while (!Work.empty()) {
    size_t Pc = Work.front();
    Work.pop_front();
    State St = In[Pc];
    const Instr &I = M.Code[Pc];
    auto Pop = [&]() -> Mask {
      if (St.Stack.empty())
        return 0;
      Mask V = St.Stack.back();
      St.Stack.pop_back();
      return V;
    };

    switch (I.Op) {
    case Opcode::Load: {
      size_t Slot = static_cast<size_t>(I.IVal);
      St.Stack.push_back(Slot < St.Locals.size() ? St.Locals[Slot] : 0);
      break;
    }
    case Opcode::Store: {
      size_t Slot = static_cast<size_t>(I.IVal);
      if (Slot >= St.Locals.size())
        St.Locals.resize(Slot + 1, 0);
      St.Locals[Slot] = Pop();
      break;
    }
    case Opcode::Dup: {
      Mask V = Pop();
      St.Stack.push_back(V);
      St.Stack.push_back(V);
      break;
    }
    case Opcode::PutField: {
      Mask Val = Pop();
      Mask Recv = Pop();
      if (!M.IsStatic && (Recv & 1) && Val) {
        size_t Dot = I.Sym.find('.');
        std::string FieldName =
            Dot == std::string::npos ? I.Sym : I.Sym.substr(Dot + 1);
        for (uint16_t P = 0; P < NumParams; ++P)
          if (Val & (Mask(1) << P))
            Flows[FieldName].insert(P);
      }
      break;
    }
    case Opcode::InvokeVirtual:
    case Opcode::InvokeStatic:
    case Opcode::InvokeSpecial: {
      MethodSignature Sig = MethodSignature::parse(I.Sig);
      size_t NumArgs =
          Sig.Params.size() + (I.Op == Opcode::InvokeStatic ? 0 : 1);
      for (size_t A = 0; A < NumArgs; ++A)
        Pop();
      if (Sig.Return.descriptor() != "V")
        St.Stack.push_back(0); // call results are not direct param copies
      break;
    }
    case Opcode::Intrinsic: {
      size_t Pops;
      int Pushes;
      bool PushesRef;
      intrinsicEffect(static_cast<IntrinsicId>(I.IVal), Pops, Pushes,
                      PushesRef);
      for (size_t P = 0; P < Pops; ++P)
        Pop();
      if (Pushes)
        St.Stack.push_back(0);
      break;
    }
    default: {
      // Everything else only shuffles non-origin values: pop its operands,
      // push zero masks for its results.
      static const struct { Opcode Op; int Pops, Pushes; } Effects[] = {
          {Opcode::IConst, 0, 1},     {Opcode::SConst, 0, 1},
          {Opcode::NullConst, 0, 1},  {Opcode::IAdd, 2, 1},
          {Opcode::ISub, 2, 1},       {Opcode::IMul, 2, 1},
          {Opcode::IDiv, 2, 1},       {Opcode::IRem, 2, 1},
          {Opcode::INeg, 1, 1},       {Opcode::Pop, 1, 0},
          {Opcode::IfEq, 1, 0},       {Opcode::IfNe, 1, 0},
          {Opcode::IfLt, 1, 0},       {Opcode::IfGe, 1, 0},
          {Opcode::IfGt, 1, 0},       {Opcode::IfLe, 1, 0},
          {Opcode::IfICmpEq, 2, 0},   {Opcode::IfICmpNe, 2, 0},
          {Opcode::IfICmpLt, 2, 0},   {Opcode::IfICmpGe, 2, 0},
          {Opcode::IfICmpGt, 2, 0},   {Opcode::IfICmpLe, 2, 0},
          {Opcode::IfNull, 1, 0},     {Opcode::IfNonNull, 1, 0},
          {Opcode::IfACmpEq, 2, 0},   {Opcode::IfACmpNe, 2, 0},
          {Opcode::New, 0, 1},        {Opcode::GetField, 1, 1},
          {Opcode::GetStatic, 0, 1},  {Opcode::PutStatic, 1, 0},
          {Opcode::InstanceOf, 1, 1}, {Opcode::NewArray, 1, 1},
          {Opcode::ALoad, 2, 1},      {Opcode::AStore, 3, 0},
          {Opcode::ArrayLength, 1, 1}};
      bool Handled = false;
      for (const auto &E : Effects) {
        if (E.Op != I.Op)
          continue;
        for (int P = 0; P < E.Pops; ++P)
          Pop();
        for (int P = 0; P < E.Pushes; ++P)
          St.Stack.push_back(0);
        Handled = true;
        break;
      }
      if (I.Op == Opcode::CheckCast) {
        Mask V = Pop();
        St.Stack.push_back(V); // a cast preserves the value
      } else if (!Handled) {
        // Nop, Goto, returns: no stack effect we track.
      }
      break;
    }
    }

    successors(M.Code, Pc, Succs);
    for (size_t S : Succs) {
      if (S >= M.Code.size())
        continue;
      if (!Seen[S]) {
        Seen[S] = true;
        In[S] = St;
        Work.push_back(S);
      } else if (In[S].join(St)) {
        Work.push_back(S);
      }
    }
  }
  return Flows;
}
