//===----------------------------------------------------------------------===//
///
/// \file
/// The transformer runtime (paper §2.3, §3.4).
///
/// TransformCtx is the privileged interface transformer bodies run against:
/// it reads and writes object fields *by name*, bypassing access modifiers
/// and final-ness (the role of the paper's JastAdd compiler extension), can
/// allocate new objects/arrays/strings, and exposes the special VM function
/// that forces a referenced object to be transformed before its fields are
/// read (with cycle detection).
///
/// TransformerRunner executes, after a DSU collection, first every class
/// transformer and then every object transformer over the update log,
/// falling back to the UPT-generated default (copy members with matching
/// name and type; default-initialize the rest).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_TRANSFORMERS_H
#define JVOLVE_DSU_TRANSFORMERS_H

#include "dsu/UpdateBundle.h"
#include "heap/Collector.h"
#include "vm/VM.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace jvolve {

/// Privileged accessor passed to transformer bodies.
class TransformCtx {
public:
  TransformCtx(VM &TheVM, class TransformerRunner *Runner)
      : TheVM(TheVM), Runner(Runner) {}

  //===--- Instance fields (by name; access modifiers are bypassed) -------===//
  int64_t getInt(Ref Obj, const std::string &Field) const;
  Ref getRef(Ref Obj, const std::string &Field) const;
  void setInt(Ref Obj, const std::string &Field, int64_t Value);
  void setRef(Ref Obj, const std::string &Field, Ref Value);

  //===--- Statics (works on renamed obsolete classes too) ----------------===//
  int64_t getStaticInt(const std::string &Cls, const std::string &Field) const;
  Ref getStaticRef(const std::string &Cls, const std::string &Field) const;
  void setStaticInt(const std::string &Cls, const std::string &Field,
                    int64_t Value);
  void setStaticRef(const std::string &Cls, const std::string &Field,
                    Ref Value);

  //===--- Allocation ------------------------------------------------------===//
  Ref allocate(const std::string &ClassName);
  Ref allocateArray(const std::string &ElemDesc, int64_t Length);
  Ref newString(const std::string &Payload);
  std::string stringValue(Ref Str) const;

  //===--- Arrays -----------------------------------------------------------===//
  int64_t arrayLength(Ref Arr) const;
  Ref getElemRef(Ref Arr, int64_t Index) const;
  int64_t getElemInt(Ref Arr, int64_t Index) const;
  void setElemRef(Ref Arr, int64_t Index, Ref Value);
  void setElemInt(Ref Arr, int64_t Index, int64_t Value);

  /// The paper's special VM function: if \p Obj is a new-version object
  /// whose transformer has not run yet, run it now. Throws
  /// UpdateError("transform") on a transformer cycle (an ill-defined
  /// transformer set); the updater rolls the update back.
  void ensureTransformed(Ref Obj);

  VM &vm() { return TheVM; }

private:
  const RtField *fieldOf(Ref Obj, const std::string &Field) const;

  VM &TheVM;
  class TransformerRunner *Runner;
};

/// Runs class and object transformers after a DSU collection.
class TransformerRunner {
public:
  TransformerRunner(VM &TheVM, const UpdateBundle &Bundle,
                    std::vector<UpdateLogEntry> &UpdateLog,
                    std::unordered_map<Ref, size_t> &NewToLogIndex);

  /// Executes all class transformers, then all object transformers.
  /// \returns wall-clock milliseconds spent.
  double runAll();

  /// Executes only the class transformers (statics). The lazy engine runs
  /// these eagerly at commit — statics have no read barrier — and defers
  /// the per-object work. \returns wall-clock milliseconds spent.
  double runClassTransformers();

  /// Transforms the log entry at \p Index (cycle-safe; no-op when already
  /// done or failed). The lazy engine's drain loop uses this.
  void transformAt(size_t Index) { transformEntry(Index); }

  /// Force-transforms the log entry for \p NewObj (no-op when \p NewObj is
  /// not a pending new-version object).
  void ensureTransformed(Ref NewObj);

  uint64_t objectsTransformed() const { return NumTransformed; }

  /// Copies members with matching name and type from \p From (old layout)
  /// to \p To (new layout); everything else keeps its default value.
  static void applyDefaultObjectTransform(VM &TheVM, Ref To, Ref From);

  /// Same-name same-type static copy from the renamed old class to the new
  /// one. Missing old classes (pure additions) are a no-op.
  static void applyDefaultClassTransform(VM &TheVM,
                                         const std::string &NewClass,
                                         const std::string &OldClass);

private:
  void transformEntry(size_t Index);

  VM &TheVM;
  const UpdateBundle &Bundle;
  std::vector<UpdateLogEntry> &UpdateLog;
  std::unordered_map<Ref, size_t> &NewToLogIndex;
  uint64_t NumTransformed = 0;
};

} // namespace jvolve

#endif // JVOLVE_DSU_TRANSFORMERS_H
