//===----------------------------------------------------------------------===//
///
/// \file
/// CHA-based call graph over a MiniVM program version.
///
/// The safe-point restriction in the paper is a closure over the call graph:
/// Jvolve blacklists "methods that are updated and methods that could call
/// updated methods" (§3.3). This module builds that graph once per program
/// version using class-hierarchy analysis — an InvokeVirtual through a
/// receiver of static type C may dispatch to C's resolved implementation or
/// to any override in a subclass of C — and answers the three reachability
/// questions the static update-safety analyzer needs: transitive callers of
/// the changed set, possible inliners of the changed set (a static mirror of
/// the optimizing compiler's inline policy), and entry-point reachability.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_CALLGRAPH_H
#define JVOLVE_DSU_CALLGRAPH_H

#include "bytecode/ClassDef.h"
#include "dsu/UpdateSpec.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace jvolve {

/// One method in the call graph. Keys are MethodRef::key() strings
/// ("Class.NameSig"), always naming the *declaring* class.
struct CallGraphNode {
  MethodRef Ref;
  const MethodDef *Def = nullptr; ///< body in the analyzed ClassSet
  /// Every method this one may call (direct targets plus CHA fan-out for
  /// virtual dispatch), deduplicated, sorted.
  std::vector<std::string> Callees;
  /// The subset of Callees reached through InvokeStatic/InvokeSpecial —
  /// the only call shapes the compiler will inline.
  std::vector<std::string> DirectCallees;
};

/// Call graph over one ClassSet, built eagerly by the constructor. Nodes
/// keep pointers into the ClassSet's method bodies, so the set must outlive
/// the graph and not be mutated while it is in use.
class CallGraph {
public:
  explicit CallGraph(const ClassSet &Set);

  size_t numMethods() const { return Nodes.size(); }
  size_t numEdges() const { return Edges; }

  /// \returns the node for \p Key ("Class.NameSig"), or nullptr.
  const CallGraphNode *node(const std::string &Key) const;

  const std::map<std::string, CallGraphNode> &nodes() const { return Nodes; }

  /// The paper's §3.3 closure rule: every method that is a seed or could
  /// transitively call a seed. This is the conservative blacklist.
  std::set<std::string>
  transitiveCallers(const std::set<std::string> &Seeds) const;

  /// Methods whose Opt-tier compiled form may physically embed a seed's
  /// bytecode through inlining. Mirrors Compiler::shouldInline statically:
  /// only direct calls (InvokeStatic/InvokeSpecial) inline, only callees
  /// with code size <= \p MaxCodeLen, chains at most \p MaxDepth frames
  /// deep, recursion excluded. Seeds themselves are not included unless
  /// they can also inline another seed.
  std::set<std::string> possibleInliners(const std::set<std::string> &Seeds,
                                         size_t MaxCodeLen,
                                         size_t MaxDepth) const;

  /// Every method reachable (in the callee direction) from \p Entries,
  /// including the entries themselves.
  std::set<std::string>
  reachableFrom(const std::set<std::string> &Entries) const;

private:
  std::map<std::string, CallGraphNode> Nodes;
  /// Reverse edges: callee key -> caller keys (all call shapes).
  std::map<std::string, std::vector<std::string>> Callers;
  /// Reverse edges restricted to direct (inlinable) calls.
  std::map<std::string, std::vector<std::string>> DirectCallers;
  size_t Edges = 0;
};

} // namespace jvolve

#endif // JVOLVE_DSU_CALLGRAPH_H
