//===----------------------------------------------------------------------===//
///
/// \file
/// Revert mechanics: everything a canary window needs to undo a committed
/// update through the normal five-step pipeline.
///
/// The paper's safety story (§3) ends at commit; this module supplies the
/// post-commit half. A reverse update is just a forward update whose "new"
/// program is the retained pre-update version, so it flows through the
/// same safe-point hunt, class install, DSU collection, and transformer
/// run — no second code path. What commit destroys, the undo log retains:
/// values of fields and statics the forward update removed, extracted
/// from the forward DSU collection's old copies and kept alive as GC
/// roots for the length of the observation window (the way the lazy
/// engine holds old-copy space). Reverse transformers are the registered
/// inverses where the developer supplied them, and otherwise the default
/// same-name same-type copy plus an undo-log restore.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_REVERT_H
#define JVOLVE_DSU_REVERT_H

#include "dsu/UpdateBundle.h"
#include "runtime/Slot.h"
#include "vm/VM.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace jvolve {

/// SLO thresholds for one post-commit observation window
/// (UpdateOptions::CanaryWindow). The window is bounded by ticks and/or
/// responses — whichever bound is hit first retires it. Deltas are
/// measured from the moment the window arms; -1 disables a monitor.
struct CanaryPolicy {
  /// Window length in virtual ticks (0 = not tick-bounded).
  uint64_t WindowTicks = 0;
  /// Window length in served responses (0 = not request-bounded).
  uint64_t WindowRequests = 0;
  /// Virtual ticks between health checks.
  uint64_t CheckIntervalTicks = 500;
  /// Interpreter traps tolerated within the window (0 = any trap reverts).
  int64_t MaxTrapDelta = 0;
  /// Failed post-commit lazy transforms tolerated within the window.
  int64_t MaxFailedTransforms = 0;
  /// Requests shed by admission control tolerated within the window
  /// (-1 = not monitored; post-commit load spikes are usually not the
  /// update's fault).
  int64_t MaxShedDelta = -1;
  /// Mean request latency within the window may exceed the pre-update
  /// baseline mean by at most this many percent (-1 = not monitored).
  double MaxLatencyDeltaPct = -1;

  bool enabled() const { return WindowTicks > 0 || WindowRequests > 0; }
};

/// One observation of the health signals the canary monitors. All fields
/// are cumulative-since-boot, so any two samples give window deltas.
struct CanaryHealthSample {
  uint64_t Traps = 0;
  uint64_t Shed = 0;
  uint64_t LazyFailed = 0;
  uint64_t Responses = 0;
  uint64_t LatencySumTicks = 0;
  /// Mean response latency over the last completed telemetry window
  /// (support/TelemetryStream.h WindowAggregator, `net.latency_ticks`);
  /// < 0 when window aggregation is off or no window has responses yet.
  /// When present the latency monitor compares this — the same number the
  /// live `jvolve-serve --stats` view shows — instead of deriving a mean
  /// from cumulative sums.
  double WindowLatencyMean = -1;

  static CanaryHealthSample take(VM &TheVM);
};

/// One monitor crossing its threshold.
struct CanaryBreach {
  std::string Monitor; ///< "traps", "failed-transforms", "shed",
                       ///< "latency", or "fault-injector"
  std::string Detail;
};

/// Evaluates \p Policy over the window [\p AtArm, \p Now]. \p Baseline is
/// the pre-update sample the latency monitor compares means against.
std::vector<CanaryBreach> evaluateCanaryHealth(const CanaryPolicy &Policy,
                                               const CanaryHealthSample &Baseline,
                                               const CanaryHealthSample &AtArm,
                                               const CanaryHealthSample &Now);

/// Values the forward update destroyed, retained for the window: removed
/// instance fields per transformed object, and removed statics per
/// updated (or deleted) class. Ref-typed values and the new-version
/// objects themselves are GC roots until the log is released.
class CanaryUndoLog {
public:
  struct UndoField {
    std::string Name;
    bool IsRef = false;
    int64_t IntVal = 0;
    Ref RefVal = nullptr;
  };
  struct UndoEntry {
    /// The forward update's new-version object; the reverse collection
    /// forwards this to the old-shape shell the reverse transformer gets
    /// as its To argument.
    Ref Obj = nullptr;
    std::vector<UndoField> Fields;
  };
  struct UndoStatics {
    std::string ClassName; ///< original (un-renamed) class name
    std::vector<UndoField> Fields;
  };

  /// Extracts removed-field values for one forward (OldCopy, NewObj)
  /// pair: every instance field of \p OldCopy's class with no same-name
  /// same-type match in \p NewObj's class.
  void captureObject(VM &TheVM, Ref OldCopy, Ref NewObj);

  /// Extracts removed statics of \p ClassName: declared statics of the
  /// renamed old class \p RenamedOld with no same-name same-type match in
  /// the (current) new version — or all of them when the class was
  /// deleted outright.
  void captureStatics(VM &TheVM, const std::string &ClassName,
                      const std::string &RenamedOld);

  /// Reverse object transformer's restore: writes the retained removed
  /// fields into \p To (the reinstated old-shape object). No-op when \p To
  /// has no entry (e.g. objects allocated after commit).
  void restoreInto(class TransformCtx &Ctx, Ref To) const;

  /// Reverse class transformer's restore for \p ClassName's statics.
  void restoreStatics(class TransformCtx &Ctx,
                      const std::string &ClassName) const;

  /// Post-revert restore for classes the forward update deleted and the
  /// revert re-added: no class transformer runs for additions, so their
  /// retained statics are written straight into the registry.
  void restoreStaticsDirect(VM &TheVM, const std::string &ClassName) const;

  /// GC integration (the VM calls these through the canary controller).
  void visitRoots(const std::function<void(Ref &)> &Visit);
  void reindex();

  void clear();
  bool empty() const { return Entries.empty() && Statics.empty(); }
  size_t objectCount() const { return Entries.size(); }
  const std::vector<UndoStatics> &statics() const { return Statics; }

private:
  std::vector<UndoEntry> Entries;
  std::vector<UndoStatics> Statics;
  std::unordered_map<Ref, size_t> Index; ///< Obj -> Entries position
};

/// Synthesizes the reverse bundle: a normal UpdateBundle whose "new"
/// program is \p OldProgram, whose spec is recomputed by the UPT against
/// the running program, and whose transformers are \p Forward's
/// registered inverses — falling back to the default copy plus \p Undo
/// restores. Forward ActiveMethodMappings are inverted (PC maps swapped)
/// unless explicit inverses exist, so on-stack methods the forward update
/// replaced can be walked back the same way.
UpdateBundle synthesizeReverseBundle(VM &TheVM, const ClassSet &OldProgram,
                                     const UpdateBundle &Forward,
                                     const CanaryUndoLog *Undo,
                                     const std::string &ReverseTag);

/// \returns \p M with its PC map swapped (new pc -> old pc). The frame
/// transformer is dropped: locals carry over by slot, the default.
ActiveMethodMapping invertActiveMapping(const ActiveMethodMapping &M);

/// Walks the heap and counts live instances whose class id is in
/// \p NewVersionClassIds — the residual the revert-convergence gate
/// requires to be zero after a completed revert.
uint64_t countResidualNewVersionObjects(VM &TheVM,
                                        const std::vector<ClassId> &NewVersionClassIds);

} // namespace jvolve

#endif // JVOLVE_DSU_REVERT_H
