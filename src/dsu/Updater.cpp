#include "dsu/Updater.h"

#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"
#include "dsu/Canary.h"
#include "dsu/EcUpdater.h"
#include "dsu/LazyTransform.h"
#include "dsu/Synthesis.h"
#include "dsu/Transformers.h"
#include "heap/HeapVerifier.h"
#include "runtime/ObjectModel.h"
#include "support/Error.h"
#include "support/Stopwatch.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <unordered_map>

using namespace jvolve;

static void bumpDsuCounter(const char *Name) {
  if (Telemetry::isEnabled())
    Telemetry::global().counter(Name).inc();
}

void Updater::markPhase(const std::string &Phase, int64_t Value,
                        const std::string &Detail) {
  double Now = PhaseClock.elapsedMs();
  double Ms = Now - LastPhaseMark;
  LastPhaseMark = Now;
  // Probed before the enablement check so probe indices are stable whether
  // or not telemetry is live; a fire only bites when a streamer exists.
  // The stalled writer must degrade to counted drops — producers (and this
  // VM thread) never block on it.
  if (TheVM.faults().probe(FaultInjector::Site::TelemetryWriterStall) &&
      Telemetry::isEnabled() && Telemetry::global().hasStreamer())
    Telemetry::global().streamer().injectWriterStall(3);
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.histogram(metrics::dsuPhaseMs(Phase)).record(Ms);
  // Virtual time stands still while the world is stopped, so the span's
  // tick interval collapses; Ms carries the wall-clock duration.
  uint64_t Tick = TheVM.scheduler().ticks();
  Tel.emit({"dsu.update.phase", Phase, Tick, Tick, Ms, Value, Detail});
}

const char *jvolve::updateStatusName(UpdateStatus S) {
  switch (S) {
  case UpdateStatus::None: return "none";
  case UpdateStatus::Pending: return "pending";
  case UpdateStatus::Applied: return "applied";
  case UpdateStatus::TimedOut: return "timed-out";
  case UpdateStatus::RejectedNotVerifiable: return "rejected (verification)";
  case UpdateStatus::RejectedHierarchy: return "rejected (hierarchy)";
  case UpdateStatus::RolledBack: return "rolled-back";
  case UpdateStatus::FailedTransformer: return "failed-transformer";
  case UpdateStatus::Degraded: return "degraded";
  case UpdateStatus::RejectedByAnalysis: return "rejected (analysis)";
  case UpdateStatus::Reverted: return "reverted";
  case UpdateStatus::RevertFailed: return "revert-failed";
  case UpdateStatus::RejectedCanaryBusy: return "rejected (canary-busy)";
  }
  unreachable("bad update status");
}

bool jvolve::updateStatusByName(const std::string &Name, UpdateStatus &Out) {
  for (size_t I = 0; I < NumUpdateStatuses; ++I) {
    UpdateStatus S = static_cast<UpdateStatus>(I);
    if (Name == updateStatusName(S)) {
      Out = S;
      return true;
    }
  }
  return false;
}

Updater::~Updater() {
  // Never leave dangling callbacks into a destroyed updater — but only
  // our own: a canary revert's updater may have claimed the hooks since.
  TheVM.releaseDsuHooks(this);
}

/// Detects class-hierarchy permutations (e.g. reversing a superclass
/// relationship), which Jvolve does not support (§2.2).
static bool hierarchyPermuted(const ClassSet &Old, const ClassSet &New) {
  for (const auto &[Name, Cls] : New.classes()) {
    if (isBuiltinClass(Name) || !Old.contains(Name))
      continue;
    for (const std::string &NewAncestor : New.superChain(Name)) {
      if (NewAncestor == Name || isBuiltinClass(NewAncestor))
        continue;
      // Name extends NewAncestor in the new version; if the old version
      // had the opposite relationship, the update permutes the hierarchy.
      if (Old.contains(NewAncestor) && Old.isSubclassOf(NewAncestor, Name))
        return true;
    }
  }
  return false;
}

void Updater::schedule(UpdateBundle InBundle, UpdateOptions InOpts) {
  if (pending())
    fatalError("an update is already pending");
  Bundle = std::move(InBundle);
  Opts = InOpts;
  Result = UpdateResult();
  ensureBuiltins(Bundle.NewProgram);

  // A torn/truncated bundle must be rejected at ingest, before any
  // snapshot or pipeline state exists — nothing to roll back.
  if (TheVM.faults().probe(FaultInjector::Site::BundleTruncated)) {
    std::string Msg = "update bundle truncated (injected): rejected before "
                      "verification";
    Result.Trace.record(UpdateEventKind::Rejected,
                        TheVM.scheduler().ticks(), 0, Msg);
    bumpDsuCounter(metrics::DsuUpdatesRejected);
    finish(UpdateStatus::RejectedNotVerifiable, Msg);
    return;
  }

  // JVOLVE_LAZY=1 turns every scheduled update lazy — the environment
  // counterpart of UpdateOptions::LazyTransform (tier1.sh runs the DSU
  // suite a third time in this mode).
  if (const char *Lazy = std::getenv("JVOLVE_LAZY"))
    if (Lazy[0] && Lazy[0] != '0')
      Opts.LazyTransform = true;

  // JVOLVE_CODEVERSION=1 routes every strictly body-only update through
  // the per-method code-version manager — the environment counterpart of
  // UpdateOptions::CodeVersioning (tier1.sh runs the suite in this mode).
  // Bundles with class-shape changes are unaffected.
  if (const char *CV = std::getenv("JVOLVE_CODEVERSION"))
    if (CV[0] && CV[0] != '0')
      Opts.CodeVersioning = true;

  // A canary revert completes whole or not at all: the reverse update is
  // always eager, even when the environment forces lazy commits.
  if (auto *Canary = static_cast<CanaryController *>(TheVM.canary());
      Canary && Canary->ownsUpdater(this))
    Opts.LazyTransform = false;

  // Stacked-update discipline for an open canary window: a foreign update
  // arriving while the window observes supersedes it (the operator chose
  // to move forward; the window settles without reverting), but one
  // arriving mid-revert is refused — the heap is on its way back to the
  // predecessor and a concurrent forward update has no consistent base.
  if (auto *Canary = static_cast<CanaryController *>(TheVM.canary());
      Canary && Canary->windowOpen() && !Canary->ownsUpdater(this)) {
    if (Canary->reverting()) {
      std::string Msg =
          "a canary revert is in flight; retry after it settles\n" +
          Canary->report().str();
      Result.Trace.record(UpdateEventKind::Rejected,
                          TheVM.scheduler().ticks(), 0, Msg);
      bumpDsuCounter(metrics::DsuUpdatesRejected);
      finish(UpdateStatus::RejectedCanaryBusy, Msg);
      return;
    }
    Canary->settle("superseded by stacked update '" + Bundle.VersionTag +
                   "'");
  }

  // A stacked update must not race a still-draining predecessor: its DSU
  // collection assumes no pending shells remain. Settle them now,
  // synchronously, and drop the old engine.
  TheVM.drainLazyEngineNow();

  // Safety gate 1: the complete new program version must verify (§2.2).
  std::vector<VerifyError> Errs = Verifier(Bundle.NewProgram).verifyAll();
  if (!Errs.empty()) {
    std::string Msg = "new version fails verification: " + Errs.front().str();
    Result.Trace.record(UpdateEventKind::Rejected,
                        TheVM.scheduler().ticks(), 0, Msg);
    bumpDsuCounter(metrics::DsuUpdatesRejected);
    finish(UpdateStatus::RejectedNotVerifiable, Msg);
    return;
  }
  // Safety gate 2: no hierarchy permutations.
  if (hierarchyPermuted(TheVM.program(), Bundle.NewProgram)) {
    Result.Trace.record(UpdateEventKind::Rejected,
                        TheVM.scheduler().ticks(), 0,
                        "hierarchy permutation");
    bumpDsuCounter(metrics::DsuUpdatesRejected);
    finish(UpdateStatus::RejectedHierarchy,
           "update permutes the class hierarchy");
    return;
  }

  // Optional gate 3: static update-safety analysis. Entry reachability is
  // seeded from the methods currently on live stacks — exactly the code
  // that could still be running when the pause is attempted.
  if (Opts.AnalyzeFirst) {
    AnalysisOptions AOpts;
    ClassRegistry &Reg = TheVM.registry();
    for (const auto &T : TheVM.scheduler().threads()) {
      if (T->stopped())
        continue;
      for (const Frame &F : T->Frames) {
        const RtMethod &M = Reg.method(F.Method);
        AOpts.EntryPoints.insert(
            MethodRef{Reg.cls(M.Owner).Name, M.Name, M.Sig}.key());
      }
    }
    UpdateAnalysis An(TheVM.program(), Bundle.NewProgram);
    Result.Analysis = An.analyzeBundle(Bundle, AOpts);
    Result.AnalysisRan = true;
    recordAnalysisMetrics(Result.Analysis);
    if (Result.Analysis.Verdict == Applicability::Impossible) {
      std::string Msg =
          "analysis predicts the update cannot reach quiescence: " +
          Result.Analysis.Reason;
      Result.Trace.record(UpdateEventKind::Rejected,
                          TheVM.scheduler().ticks(), 0, Msg);
      bumpDsuCounter(metrics::DsuUpdatesRejected);
      finish(UpdateStatus::RejectedByAnalysis, Msg);
      return;
    }
  }

  // Canary staging: retain what a revert would need — the running program
  // version (the reverse bundle's "new" program) and the pre-update health
  // sample the latency monitor uses as its baseline.
  CanaryUndo.clear();
  CanaryNewClassIds.clear();
  if (Opts.CanaryWindow.enabled()) {
    CanaryPreProgram = TheVM.program();
    CanaryBaseline = CanaryHealthSample::take(TheVM);
  }

  // Body-only fast path (CodeVersioning option): a bundle that touches
  // nothing but method bodies — no class-shape changes, no removed
  // methods — needs neither a safe point nor a DSU collection. The
  // CodeVersionManager commits it synchronously, right here, as one
  // atomic active-version switch; anything touching class shape falls
  // through to the full five-step pipeline below.
  if (Opts.CodeVersioning && Bundle.Spec.ClassUpdates.empty() &&
      Bundle.Spec.AddedClasses.empty() &&
      Bundle.Spec.DeletedClasses.empty() &&
      Bundle.Spec.RemovedMethods.empty() &&
      !Bundle.Spec.MethodBodyUpdates.empty()) {
    installVersioned();
    return;
  }

  bumpDsuCounter(metrics::DsuUpdatesScheduled);
  Result.Status = UpdateStatus::Pending;
  ScheduleTick = TheVM.scheduler().ticks();
  DeadlineTick = ScheduleTick + Opts.TimeoutTicks;
  ReattemptTick = 0;
  RescueTried = false;
  Result.Trace.record(UpdateEventKind::Scheduled, ScheduleTick, 0,
                      "timeout in " + std::to_string(Opts.TimeoutTicks) +
                          " ticks");
  if (ResumingDeferred)
    Result.Trace.record(UpdateEventKind::DeferredResumed, ScheduleTick, 0,
                        "resuming deferred remainder of a degraded update");
  if (Opts.DrainNetwork)
    beginDrain();

  resolveIdSets();

  TheVM.claimDsuHooks(
      this, [this] { onSafePoint(); },
      [this](uint64_t Now) { onTick(Now); },
      [this](VMThread &T) { onReturnBarrier(T); });
  TheVM.requestYield();
}

void Updater::resolveIdSets() {
  ClassRegistry &Reg = TheVM.registry();
  RestrictedMethodIds.clear();
  IndirectMethodIds.clear();
  UpdatedOldClassIds.clear();

  auto ResolveRef = [&Reg](const MethodRef &R) -> MethodId {
    ClassId Cls = Reg.idOf(R.ClassName);
    if (Cls == InvalidClassId)
      return InvalidMethodId;
    return Reg.resolveMethod(Cls, R.Name, R.Sig);
  };

  for (const MethodRef &R : Bundle.Spec.MethodBodyUpdates)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      RestrictedMethodIds.insert(Id);
  for (const MethodRef &R : Bundle.Spec.RemovedMethods)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      RestrictedMethodIds.insert(Id);
  for (const MethodRef &R : Bundle.Spec.Blacklist)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      RestrictedMethodIds.insert(Id);
  for (const MethodRef &R : Bundle.Spec.IndirectMethods)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      IndirectMethodIds.insert(Id);

  for (const std::string &Name : Bundle.Spec.ClassUpdates)
    if (ClassId Id = Reg.idOf(Name); Id != InvalidClassId)
      UpdatedOldClassIds.insert(Id);
  for (const std::string &Name : Bundle.Spec.DeletedClasses)
    if (ClassId Id = Reg.idOf(Name); Id != InvalidClassId)
      UpdatedOldClassIds.insert(Id);
}

const ActiveMethodMapping *Updater::mappingFor(const Frame &F) const {
  if (Bundle.ActiveMappings.empty())
    return nullptr;
  // Active replacement needs the 1:1 pc mapping of baseline code.
  if (F.Code->T != Tier::Baseline || !F.Code->Inlined.empty())
    return nullptr;
  const RtMethod &M = TheVM.registry().method(F.Method);
  MethodRef Ref{TheVM.registry().cls(M.Owner).Name, M.Name, M.Sig};
  auto It = Bundle.ActiveMappings.find(Ref.key());
  if (It == Bundle.ActiveMappings.end())
    return nullptr;
  // The thread must be parked at a mapped program counter.
  if (!It->second.PcMap.count(F.Pc))
    return nullptr;
  return &It->second;
}

Updater::FrameKind Updater::classifyFrame(const Frame &F) const {
  if (RestrictedMethodIds.count(F.Method))
    return mappingFor(F) ? FrameKind::MappedOsr : FrameKind::Restricted;

  const CompiledMethod &Code = *F.Code;
  // Inlining closure: code that inlined a restricted method must be
  // restricted too, or old bodies would keep running after the update.
  for (MethodId Inl : Code.Inlined)
    if (RestrictedMethodIds.count(Inl))
      return FrameKind::Restricted;

  bool RefsUpdated = false;
  for (ClassId C : Code.ReferencedClasses)
    if (UpdatedOldClassIds.count(C)) {
      RefsUpdated = true;
      break;
    }
  if (!RefsUpdated)
    return FrameKind::Free;

  // Category (2). OSR applies only to base-compiled code with no inlined
  // bodies (paper §3.2); everything else waits behind a return barrier.
  if (Opts.EnableOsr && Code.T == Tier::Baseline && Code.Inlined.empty())
    return FrameKind::OsrNeeded;
  return FrameKind::Restricted;
}

void Updater::onTick(uint64_t Now) {
  if (!pending())
    return;
  if (ReattemptTick && Now >= ReattemptTick) {
    // A starved safe-point attempt backed off; try to park threads again.
    ReattemptTick = 0;
    TheVM.requestYield();
  }
  // The watchdog's deadline, or an injected expiry (armed() gates the
  // probe so an idle injector is not flooded with per-tick probes).
  bool Forced =
      TheVM.faults().armed(FaultInjector::Site::QuiescenceWatchdogExpiry) &&
      TheVM.faults().probe(FaultInjector::Site::QuiescenceWatchdogExpiry);
  if (!Forced && Now < DeadlineTick)
    return;
  escalate(Now, Forced);
}

void Updater::escalate(uint64_t Now, bool Forced, const char *AbortReason) {
  // Diagnose first: every rung (and the final result) gets the freshest
  // picture of what pins the update.
  Result.Quiescence =
      QuiescenceWatchdog(TheVM, Bundle, RestrictedMethodIds,
                         UpdatedOldClassIds, Opts.EnableOsr)
          .diagnose(ScheduleTick, DeadlineTick, Result.SafePointAttempts,
                    Forced);
  bumpDsuCounter(metrics::DsuQuiescenceExpiries);
  Result.Trace.record(
      UpdateEventKind::WatchdogExpired, Now,
      static_cast<int64_t>(Result.Quiescence.Threads.size()),
      Forced ? "injected expiry" : "deadline expired");

  // Rung 1 — Retry: extend the deadline with backoff instead of failing on
  // the first transient starvation.
  if (Result.RetriesUsed < Opts.MaxRetries) {
    Result.ResolvedRung = QuiescenceRung::Retry;
    ++Result.RetriesUsed;
    double Scale = 1.0;
    for (int I = 0; I < Result.RetriesUsed; ++I)
      Scale *= Opts.BackoffFactor;
    uint64_t Extension =
        std::max<uint64_t>(1, static_cast<uint64_t>(
                                  static_cast<double>(Opts.TimeoutTicks) *
                                  Scale));
    DeadlineTick = Now + Extension;
    Result.Trace.record(UpdateEventKind::RetryScheduled, Now,
                        Result.RetriesUsed,
                        "deadline extended by " + std::to_string(Extension) +
                            " ticks");
    TheVM.requestYield();
    return;
  }

  // Rung 2 — Rescue: act on what the diagnosis found, once, then grant one
  // more full deadline for the rescued threads to reach their barriers.
  if (Opts.EnableRescue && !RescueTried) {
    RescueTried = true;
    Result.ResolvedRung = QuiescenceRung::Rescue;
    rescue(Now);
    DeadlineTick = Now + std::max<uint64_t>(1, Opts.TimeoutTicks);
    TheVM.requestYield();
    return;
  }

  // Rung 3 — Degrade: land the method-body-only subset now, defer the rest.
  if (Opts.AllowDegraded && degrade(Now))
    return;

  // Rung 4 — Abort, naming the reason the report found.
  Result.ResolvedRung = QuiescenceRung::Abort;
  std::string Message = AbortReason;
  std::vector<std::string> Looping = Result.Quiescence.loopingMethods();
  if (!Looping.empty()) {
    Message += ":";
    for (const std::string &M : Looping)
      Message += " " + M + " never returns (infinite loop);";
    Message.pop_back();
  }
  abortUpdate(UpdateStatus::TimedOut, Message);
}

void Updater::rescue(uint64_t Now) {
  QuiescenceWatchdog Watchdog(TheVM, Bundle, RestrictedMethodIds,
                              UpdatedOldClassIds, Opts.EnableOsr);
  ClassRegistry &Reg = TheVM.registry();
  int Mapped = 0, Yanked = 0;
  for (auto &T : TheVM.scheduler().threads()) {
    if (T->stopped())
      continue;
    bool Pinned = false;
    for (Frame &F : T->Frames) {
      if (classifyFrame(F) != FrameKind::Restricted)
        continue;
      Pinned = true;
      if (!Watchdog.rescuableBodySwap(F))
        continue;
      // The changed body has the same instruction count as the old one in
      // base-compiled code, so the identity pc map an operator would write
      // by hand (§3.5) can be synthesized. The next attempt classifies the
      // frame MappedOsr and replaces it in place.
      const RtMethod &M = Reg.method(F.Method);
      MethodRef Ref{Reg.cls(M.Owner).Name, M.Name, M.Sig};
      if (Bundle.ActiveMappings.count(Ref.key()))
        continue;
      const MethodDef *NewBody =
          Bundle.NewProgram.find(Ref.ClassName)->findMethod(Ref.Name, Ref.Sig);
      Bundle.addActiveMapping(
          ActiveMethodMapping::identity(Ref, NewBody->Code.size()));
      ++Mapped;
      Result.Trace.record(UpdateEventKind::Rescued, Now, 0,
                          "identity remap for " + M.qualifiedName() +
                              " on thread " + T->Name);
    }
    // A pinned thread waiting out a sleep or a quiet connection holds its
    // restricted frame on stack for the whole wait; cutting the wait short
    // lets the frame run to its return (or its remap) now.
    if (Pinned &&
        (T->State == ThreadState::Sleeping ||
         T->State == ThreadState::BlockedRecv) &&
        T->WakeTick > Now) {
      T->WakeTick = Now;
      ++Yanked;
      Result.Trace.record(UpdateEventKind::Rescued, Now, 0,
                          "forced yield of thread " + T->Name + " (" +
                              threadStateName(T->State) + ")");
    }
  }
  Result.RescuedFrames += Mapped;
  Result.ForcedYields += Yanked;
  if (Telemetry::isEnabled()) {
    Telemetry &Tel = Telemetry::global();
    Tel.counter(metrics::DsuQuiescenceRescuedFrames).add(Mapped);
    Tel.counter(metrics::DsuQuiescenceForcedYields).add(Yanked);
  }
}

bool Updater::degrade(uint64_t Now) {
  ClassRegistry &Reg = TheVM.registry();

  // Candidate body swaps: every changed body whose method still resolves
  // under its original name and signature. Bodies on class-updated classes
  // are included — only the class-shape changes themselves must wait — but
  // when one of those bodies fails whole-program verification against the
  // old class shapes, fall back to the conservative subset.
  auto Collect = [&](bool IncludeClassUpdated) {
    std::vector<MethodRef> Out;
    for (const MethodRef &R : Bundle.Spec.MethodBodyUpdates) {
      if (!IncludeClassUpdated && Bundle.Spec.isClassUpdated(R.ClassName))
        continue;
      ClassId Cls = Reg.idOf(R.ClassName);
      if (Cls == InvalidClassId ||
          Reg.resolveMethod(Cls, R.Name, R.Sig) == InvalidMethodId)
        continue;
      const ClassDef *NewCls = Bundle.NewProgram.find(R.ClassName);
      if (!NewCls || !NewCls->findMethod(R.Name, R.Sig))
        continue;
      if (!TheVM.program().find(R.ClassName))
        continue;
      Out.push_back(R);
    }
    return Out;
  };

  auto TryApply = [&](const std::vector<MethodRef> &Subset,
                      std::string *Why) {
    if (Subset.empty()) {
      *Why = "no method-body-only subset exists";
      return false;
    }
    // The degraded program is the *running* program with only the subset's
    // bodies swapped in — never the full new version.
    ClassSet Degraded = TheVM.program();
    for (const MethodRef &R : Subset)
      *Degraded.find(R.ClassName)->findMethod(R.Name, R.Sig) =
          *Bundle.NewProgram.find(R.ClassName)->findMethod(R.Name, R.Sig);
    UpdateSpec Spec;
    Spec.MethodBodyUpdates = Subset;
    return EcUpdater(TheVM).apply(Degraded, Spec, Why);
  };

  std::string Why;
  std::vector<MethodRef> Subset = Collect(true);
  if (!TryApply(Subset, &Why)) {
    Subset = Collect(false);
    if (!TryApply(Subset, &Why)) {
      Result.Trace.record(UpdateEventKind::Degraded, Now, 0,
                          "degrade impossible: " + Why);
      return false;
    }
  }

  Result.ResolvedRung = QuiescenceRung::Degrade;
  for (const MethodRef &R : Subset)
    Result.DegradedApplied.push_back(R.key());
  for (const std::string &C : Bundle.Spec.ClassUpdates)
    Result.DegradedDeferred.push_back("class update " + C);
  for (const std::string &C : Bundle.Spec.AddedClasses)
    Result.DegradedDeferred.push_back("added class " + C);
  for (const std::string &C : Bundle.Spec.DeletedClasses)
    Result.DegradedDeferred.push_back("deleted class " + C);
  for (const MethodRef &R : Bundle.Spec.RemovedMethods)
    Result.DegradedDeferred.push_back("removed method " + R.key());
  for (const MethodRef &R : Bundle.Spec.MethodBodyUpdates)
    if (std::find(Subset.begin(), Subset.end(), R) == Subset.end())
      Result.DegradedDeferred.push_back("method body " + R.key());

  bumpDsuCounter(metrics::DsuQuiescenceDegraded);
  Result.Trace.record(UpdateEventKind::Degraded, Now,
                      static_cast<int64_t>(Subset.size()),
                      std::to_string(Subset.size()) +
                          " body swap(s) applied via EcUpdater, " +
                          std::to_string(Result.DegradedDeferred.size()) +
                          " change(s) deferred");

  // The full bundle stays resumable; its body swaps are idempotent over
  // the degraded state, so resuming simply reschedules it whole.
  DeferredBundle = std::move(Bundle);
  HasDeferredUpdate = true;

  for (auto &T : TheVM.scheduler().threads())
    for (Frame &F : T->Frames)
      F.ReturnBarrier = false;
  finish(UpdateStatus::Degraded,
         "degraded: method-body subset applied; " +
             std::to_string(Result.DegradedDeferred.size()) +
             " change(s) deferred");
  TheVM.resumeAfterYield();
  return true;
}

void Updater::onReturnBarrier(VMThread &T) {
  if (!pending())
    return;
  Result.Trace.record(UpdateEventKind::BarrierFired,
                      TheVM.scheduler().ticks(), 0, "thread " + T.Name);
  bumpDsuCounter(metrics::DsuBarriersFired);
  TheVM.requestYield(); // restart the update process (paper §3.2)
}

void Updater::onSafePoint() {
  if (!pending()) {
    // A stale yield request (e.g. raced with an abort): just resume.
    TheVM.resumeAfterYield();
    return;
  }
  attempt();
}

void Updater::attempt() {
  ++Result.SafePointAttempts;
  bumpDsuCounter(metrics::DsuSafePointAttempts);

  if (TheVM.faults().probe(FaultInjector::Site::SafePointStarvation)) {
    // Simulated park failure: some thread refused to reach its yield point
    // in time. Resume the application and reattempt shortly; the timeout /
    // retry policy decides when to give up.
    Result.Trace.record(UpdateEventKind::SafePointAttempt,
                        TheVM.scheduler().ticks(), 0,
                        "injected safe-point starvation; backing off");
    ReattemptTick =
        TheVM.scheduler().ticks() + std::max<uint64_t>(1, Opts.TimeoutTicks / 10);
    TheVM.resumeAfterYield();
    return;
  }

  int RestrictedFrames = 0;

  bool AnyRestricted = false;
  std::vector<Frame *> OsrFrames;
  std::vector<MappedFrame> MappedFrames;

  for (auto &T : TheVM.scheduler().threads()) {
    if (T->stopped())
      continue;
    Frame *TopRestricted = nullptr;
    for (Frame &F : T->Frames) { // bottom to top; last hit is topmost
      switch (classifyFrame(F)) {
      case FrameKind::Free:
        break;
      case FrameKind::OsrNeeded:
        OsrFrames.push_back(&F);
        break;
      case FrameKind::MappedOsr:
        MappedFrames.emplace_back(&F, mappingFor(F));
        break;
      case FrameKind::Restricted:
        TopRestricted = &F;
        ++RestrictedFrames;
        break;
      }
    }
    if (TopRestricted) {
      AnyRestricted = true;
      if (!TopRestricted->ReturnBarrier) {
        TopRestricted->ReturnBarrier = true;
        ++Result.ReturnBarriersInstalled;
        bumpDsuCounter(metrics::DsuBarriersArmed);
        Result.Trace.record(
            UpdateEventKind::BarrierArmed, TheVM.scheduler().ticks(), 0,
            TheVM.registry().method(TopRestricted->Method).qualifiedName() +
                " on thread " + T->Name);
      }
    }
  }
  Result.Trace.record(UpdateEventKind::SafePointAttempt,
                      TheVM.scheduler().ticks(), RestrictedFrames,
                      std::to_string(OsrFrames.size()) + " OSR, " +
                          std::to_string(MappedFrames.size()) +
                          " mapped frame(s)");

  if (AnyRestricted) {
    // Defer: resume the application and retry when a barrier fires.
    TheVM.resumeAfterYield();
    return;
  }

  install(OsrFrames, MappedFrames);
}

Updater::RootSnapshot Updater::snapshotRoots() const {
  RootSnapshot S;
  for (auto &T : TheVM.scheduler().threads()) {
    ThreadSnapshot TS;
    TS.Thread = T.get();
    TS.ExitValue = T->ExitValue;
    TS.HasExitValue = T->HasExitValue;
    TS.Frames.reserve(T->Frames.size());
    for (const Frame &F : T->Frames)
      TS.Frames.push_back(
          {F.Method, F.Code, F.Pc, F.ReturnBarrier, F.Locals, F.Stack});
    S.Threads.push_back(std::move(TS));
  }
  S.Pinned = TheVM.pinnedRoots();
  // An open canary window's undo log is a root set too; an aborted
  // collection would forward its refs into the discarded to-space.
  if (VmCanary *C = TheVM.canary())
    C->visitRoots([&S](Ref &R) { S.CanaryRefs.push_back(R); });
  return S;
}

void Updater::restoreRoots(const RootSnapshot &S) {
  // Threads are parked for the entire transaction, so the frame stacks are
  // structurally identical to snapshot time; only slot values, code
  // pointers, and pcs (OSR / active remap) may have changed.
  for (const ThreadSnapshot &TS : S.Threads) {
    VMThread &T = *TS.Thread;
    assert(T.Frames.size() == TS.Frames.size() &&
           "frame stack changed during the parked install");
    for (size_t I = 0; I < TS.Frames.size(); ++I) {
      Frame &F = T.Frames[I];
      const FrameSnapshot &FS = TS.Frames[I];
      F.Method = FS.Method;
      F.Code = FS.Code;
      F.Pc = FS.Pc;
      F.ReturnBarrier = FS.ReturnBarrier;
      F.Locals = FS.Locals;
      F.Stack = FS.Stack;
    }
    T.ExitValue = TS.ExitValue;
    T.HasExitValue = TS.HasExitValue;
  }
  TheVM.pinnedRoots() = S.Pinned;
  if (VmCanary *C = TheVM.canary()) {
    // Visit order is deterministic, so writing the snapshot back in order
    // restores every undo ref; the object index must follow suit.
    size_t I = 0;
    C->visitRoots([&S, &I](Ref &R) {
      assert(I < S.CanaryRefs.size() &&
             "canary root set changed during the parked install");
      R = S.CanaryRefs[I++];
    });
    C->onHeapMoved();
  }
}

void Updater::clearForwardingMarks() {
  // The aborted collection marked every reached from-space object
  // forwarded. The restored current space is exactly the pre-update heap
  // image, so a linear walk visits every object.
  Heap &H = TheVM.heap();
  ClassRegistry &Reg = TheVM.registry();
  size_t Scan = 0;
  while (Scan < H.bytesAllocated()) {
    Ref Obj = H.currentSpaceStart() + Scan;
    ObjectHeader *Hdr = header(Obj);
    Hdr->Flags &= ~FlagForwarded;
    size_t Bytes = objectBytes(Reg.cls(Hdr->Class), Obj);
    Scan += (Bytes + 7) & ~size_t(7);
  }
}

void Updater::certify() {
  Stopwatch Timer;
  HeapVerifier Verifier(TheVM.heap(), TheVM.registry());
  // While a lazy engine drains, untransformed shells and the reserved
  // old-copy block are legitimate; once it reports drained they are not.
  if (VmLazyEngine *Engine = TheVM.lazyEngine())
    Verifier.setLazyContext(
        [Engine](Ref Obj) { return Engine->isPendingShell(Obj); },
        /*AllowOldCopyReserved=*/!Engine->drained());
  // Impact-bounded mode certifies partially: field-level checks run for
  // the update-impact closure only; classes the analysis proves untouched
  // keep their (already certified) pre-update field graphs and get the
  // structural checks alone.
  if (Opts.ImpactBoundedDrain && Result.LazyInstalled)
    Verifier.setClassFocus(
        TransformerSynthesis::impactClasses(Bundle.NewProgram, Bundle.Spec));
  std::vector<std::string> Problems =
      Verifier.verify([this](const std::function<void(Ref &)> &Visit) {
        TheVM.visitRoots(Visit);
      });
  for (std::string &P : TheVM.registry().checkConsistency())
    Problems.push_back("registry: " + P);
  Result.CertifyMs = Timer.elapsedMs();
  Result.Certified = Problems.empty();
  Result.CertificationProblems = Problems;
  Result.Trace.record(UpdateEventKind::Certified, TheVM.scheduler().ticks(),
                      static_cast<int64_t>(Problems.size()),
                      Problems.empty() ? "heap and registry consistent"
                                       : Problems.front());
  // Mark after the trace record: its sink write is real wall-clock that
  // must land inside the certify span, not after the last mark where it
  // would be unaccounted for in the span/total tiling.
  markPhase("certify", static_cast<int64_t>(Problems.size()));
}

/// Records the total-pause histogram sample and span once the update's
/// wall-clock outcome is known (applied or rolled back).
static void recordTotalPause(VM &TheVM, double TotalMs, const char *Outcome) {
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.histogram(metrics::DsuTotalPauseMs).record(TotalMs);
  uint64_t Tick = TheVM.scheduler().ticks();
  Tel.emit({"dsu.update.phase", "total", Tick, Tick, TotalMs, 0, Outcome});
}

void Updater::install(const std::vector<Frame *> &OsrFrames,
                      const std::vector<MappedFrame> &MappedFrames) {
  // One clock serves both the reported total and the phase spans, so the
  // spans tile the pause instead of drifting against a second timer.
  PhaseClock.reset();
  LastPhaseMark = 0;

  // ---- Begin the transaction: snapshot everything install can mutate ----
  // (registry contents, heap spaces, and every root location), and hold
  // off ordinary collection: a mutator- or transformer-triggered GC would
  // flip the semi-spaces and destroy the undo log.
  ClassRegistry::RegistrySnapshot RegSnap = TheVM.registry().snapshot();
  Heap::TxSnapshot HeapSnap = TheVM.heap().txSnapshot();
  RootSnapshot Roots = snapshotRoots();
  TheVM.setTransformationInProgress(true);
  markPhase("snapshot");

  try {
    installSteps(OsrFrames, MappedFrames);
  } catch (const UpdateError &E) {
    // The rollback path must survive a nested fault (an injected
    // allocation failure, a faulting certification) with a defined
    // terminal status — never an escaped exception that would tear down
    // the VM mid-restore. The heap/registry restores themselves are
    // non-allocating; anything after them may fail without voiding the
    // restored image.
    try {
      rollback(RegSnap, HeapSnap, Roots, E);
    } catch (const UpdateError &Nested) {
      TheVM.setTransformationInProgress(false);
      for (auto &T : TheVM.scheduler().threads())
        for (Frame &F : T->Frames)
          F.ReturnBarrier = false;
      Result.Trace.record(UpdateEventKind::RolledBack,
                          TheVM.scheduler().ticks(), 0,
                          "nested fault during rollback: " + Nested.str());
      finish(E.phase() == "transform" ? UpdateStatus::FailedTransformer
                                      : UpdateStatus::RolledBack,
             "update rolled back (" + E.str() +
                 "); nested fault during rollback (" + Nested.str() + ")");
      TheVM.resumeAfterYield();
    }
    Result.TotalPauseMs = PhaseClock.elapsedMs();
    recordTotalPause(TheVM, Result.TotalPauseMs, "rolled-back");
    return;
  }

  // ---- Commit. ----------------------------------------------------------
  TheVM.setTransformationInProgress(false);
  TheVM.setProgram(Bundle.NewProgram);
  if (LazyCommitPending) {
    // Point of no return for lazy mode: build the engine over the update
    // log, arm the read barrier on all compiled code, and hand the engine
    // to the VM (which spawns the background drainer). From here on a
    // failing transformer cannot roll the update back — it degrades it.
    LazyCommitPending = false;
    auto Engine = std::make_unique<LazyTransformEngine>(
        TheVM, Bundle, std::move(LazyLog), std::move(LazyIndex),
        /*OwnsOldCopySpace=*/Opts.UseOldCopySpace, Opts.LazyDrainBatch,
        Opts.ImpactBoundedDrain);
    Engine->arm();
    Result.LazyInstalled = true;
    Result.LazyPendingAtCommit = Engine->pendingCount();
    Result.Trace.record(UpdateEventKind::LazyCommitted,
                        TheVM.scheduler().ticks(),
                        static_cast<int64_t>(Result.LazyPendingAtCommit),
                        "untransformed shells drain behind the read barrier");
    TheVM.installLazyEngine(std::move(Engine));
  }
  if (Opts.CertifyAfterUpdate)
    certify(); // reported in Result; an applied update is never undone here

  Result.TotalPauseMs = PhaseClock.elapsedMs();
  Result.TicksToSafePoint = TheVM.scheduler().ticks() - ScheduleTick;
  Result.Trace.record(UpdateEventKind::Applied, TheVM.scheduler().ticks(),
                      0,
                      std::to_string(Result.TotalPauseMs) + " ms total pause");
  bumpDsuCounter(metrics::DsuUpdatesApplied);
  recordTotalPause(TheVM, Result.TotalPauseMs, "applied");
  if (Opts.CanaryWindow.enabled())
    armCanary();
  finish(UpdateStatus::Applied, "update applied");
  TheVM.resumeAfterYield();
}

void Updater::installVersioned() {
  // Same clock discipline as install(): spans tile the (tiny) pause.
  PhaseClock.reset();
  LastPhaseMark = 0;
  bumpDsuCounter(metrics::DsuUpdatesScheduled);
  ScheduleTick = TheVM.scheduler().ticks();
  Result.Trace.record(UpdateEventKind::Scheduled, ScheduleTick, 0,
                      "body-only bundle: versioned install, no safe point");

  std::string Why;
  bool Ok = EcUpdater(TheVM).apply(Bundle.NewProgram, Bundle.Spec, &Why,
                                   &Result.Trace, Bundle.VersionTag);
  markPhase("codeversion",
            static_cast<int64_t>(Bundle.Spec.MethodBodyUpdates.size()),
            Ok ? "active-version switch committed" : Why);

  // A versioned commit never touches the heap — no allocation, no moved
  // objects, no transformed fields — so certification checks the structure
  // it did mutate: the registry's class/method metadata. The full-heap
  // walk stays with the pipeline whose collection and transformers need
  // it; that walk is precisely the heap-scaling pause component a
  // body-only update exists to avoid.
  auto CertifyRegistry = [&] {
    Stopwatch Timer;
    std::vector<std::string> Problems = TheVM.registry().checkConsistency();
    Result.CertifyMs = Timer.elapsedMs();
    Result.Certified = Problems.empty();
    Result.CertificationProblems = Problems;
    Result.Trace.record(UpdateEventKind::Certified,
                        TheVM.scheduler().ticks(),
                        static_cast<int64_t>(Problems.size()),
                        Problems.empty()
                            ? "registry consistent (heap untouched)"
                            : Problems.front());
    markPhase("certify", static_cast<int64_t>(Problems.size()));
  };

  if (!Ok) {
    // The manager unwound the partially-swapped batch and the epoch never
    // advanced — the prior active versions are still serving, so this is
    // already a completed rollback.
    Result.Trace.record(UpdateEventKind::InstallFailed,
                        TheVM.scheduler().ticks(), 0, Why);
    bumpDsuCounter(metrics::DsuUpdatesRolledBack);
    if (Opts.CertifyAfterUpdate)
      CertifyRegistry();
    Result.TotalPauseMs = PhaseClock.elapsedMs();
    Result.Trace.record(UpdateEventKind::RolledBack,
                        TheVM.scheduler().ticks(), 0, Why);
    recordTotalPause(TheVM, Result.TotalPauseMs, "rolled-back");
    finish(UpdateStatus::RolledBack, "update rolled back (" + Why + ")");
    return;
  }

  Result.CodeVersioned = true;
  Result.CodeVersionedMethods =
      static_cast<int>(Bundle.Spec.MethodBodyUpdates.size());
  if (Opts.CertifyAfterUpdate)
    CertifyRegistry();
  Result.TotalPauseMs = PhaseClock.elapsedMs();
  Result.TicksToSafePoint = 0; // no safe point was ever sought
  Result.Trace.record(UpdateEventKind::Applied, TheVM.scheduler().ticks(), 0,
                      std::to_string(Result.TotalPauseMs) +
                          " ms total pause (versioned, no safe point)");
  bumpDsuCounter(metrics::DsuUpdatesApplied);
  recordTotalPause(TheVM, Result.TotalPauseMs, "applied");
  if (Opts.CanaryWindow.enabled())
    armCanary();
  finish(UpdateStatus::Applied, "update applied (code-versioned)");
}

void Updater::rollback(const ClassRegistry::RegistrySnapshot &RegSnap,
                       const Heap::TxSnapshot &HeapSnap,
                       const RootSnapshot &Roots, const UpdateError &E) {
  Stopwatch Timer;
  Result.Trace.record(UpdateEventKind::InstallFailed,
                      TheVM.scheduler().ticks(), 0, E.str());
  // A lazy handoff staged before the failure is void: the log refers to
  // to-space objects the rollback is about to discard.
  LazyCommitPending = false;
  LazyLog.clear();
  LazyIndex.clear();
  // So is canary staging: its undo values were read out of that log.
  CanaryUndo.clear();
  CanaryNewClassIds.clear();

  // Restore in dependency order: heap spaces first (so the pre-update
  // image is the current space again), then registry metadata, then the
  // forwarding marks the aborted collection left in that image, then every
  // root location. From-space was never mutated beyond object headers, so
  // it serves as the undo log.
  TheVM.heap().txRollback(HeapSnap);
  TheVM.registry().restore(RegSnap);
  clearForwardingMarks();
  restoreRoots(Roots);
  // The update is over; no barrier may stay armed.
  for (auto &T : TheVM.scheduler().threads())
    for (Frame &F : T->Frames)
      F.ReturnBarrier = false;
  TheVM.setTransformationInProgress(false);
  Result.RollbackMs = Timer.elapsedMs();
  markPhase("rollback", 0, E.str());
  bumpDsuCounter(metrics::DsuUpdatesRolledBack);

  if (Opts.CertifyAfterUpdate)
    certify();

  UpdateStatus Status = E.phase() == "transform"
                            ? UpdateStatus::FailedTransformer
                            : UpdateStatus::RolledBack;
  Result.TicksToSafePoint = TheVM.scheduler().ticks() - ScheduleTick;
  Result.Trace.record(UpdateEventKind::RolledBack, TheVM.scheduler().ticks(),
                      0, E.str());
  finish(Status, "update rolled back (" + E.str() + ")");
  TheVM.resumeAfterYield();
}

void Updater::installSteps(const std::vector<Frame *> &OsrFrames,
                           const std::vector<MappedFrame> &MappedFrames) {
  Stopwatch PhaseTimer;
  ClassRegistry &Reg = TheVM.registry();

  // --- Step 4a: rename old versions of updated and deleted classes. ------
  std::unordered_map<ClassId, std::string> OldIdToName;
  auto RenameOld = [&](const std::string &Name) {
    ClassId Id = Reg.idOf(Name);
    if (Id == InvalidClassId)
      return;
    OldIdToName[Id] = Name;
    Reg.renameClassForUpdate(Id, Bundle.renamedOldClass(Name));
  };
  for (const std::string &Name : Bundle.Spec.ClassUpdates)
    RenameOld(Name);
  for (const std::string &Name : Bundle.Spec.DeletedClasses)
    RenameOld(Name);

  // --- Step 4b: load added and replacement classes. ----------------------
  for (const auto &[Name, Def] : Bundle.NewProgram.classes()) {
    if (Reg.idOf(Name) != InvalidClassId)
      continue;
    if (TheVM.faults().probe(FaultInjector::Site::ClassLoad))
      throw UpdateError("class-load",
                        "injected class-load failure for '" + Name + "'");
    Reg.loadClass(Def, Bundle.NewProgram);
  }

  // --- Step 4c: method-body updates on otherwise-unchanged classes. ------
  std::set<MethodId> BodyChangedIds;
  for (const MethodRef &R : Bundle.Spec.MethodBodyUpdates) {
    if (Bundle.Spec.isClassUpdated(R.ClassName))
      continue; // the freshly loaded replacement class already has it
    ClassId Cls = Reg.idOf(R.ClassName);
    if (Cls == InvalidClassId)
      throw UpdateError("install",
                        "body update on unknown class '" + R.ClassName + "'");
    MethodId Id = Reg.resolveMethod(Cls, R.Name, R.Sig);
    if (Id == InvalidMethodId)
      throw UpdateError("install", "body update on unknown method " +
                                       R.ClassName + "." + R.Name + R.Sig);
    const ClassDef *NewCls = Bundle.NewProgram.find(R.ClassName);
    const MethodDef *NewBody = NewCls ? NewCls->findMethod(R.Name, R.Sig)
                                      : nullptr;
    if (!NewBody)
      throw UpdateError("install", "spec references " + R.ClassName + "." +
                                       R.Name + R.Sig +
                                       ", which is missing from the new "
                                       "version");
    Reg.setMethodBody(Id, *NewBody);
    BodyChangedIds.insert(Id);
  }

  // --- Step 4d: invalidate compiled code that hard-codes stale state. ----
  for (MethodId Id = 0; Id < Reg.numMethods(); ++Id) {
    RtMethod &M = Reg.method(Id);
    if (M.Obsolete || !M.Code)
      continue;
    bool Invalidate = false;
    for (ClassId C : M.Code->ReferencedClasses)
      if (UpdatedOldClassIds.count(C)) {
        Invalidate = true;
        break;
      }
    if (!Invalidate)
      for (MethodId Inl : M.Code->Inlined)
        if (BodyChangedIds.count(Inl) || Reg.method(Inl).Obsolete) {
          Invalidate = true;
          break;
        }
    if (Invalidate) {
      Reg.invalidateCode(Id);
      bumpDsuCounter(metrics::DsuCodeInvalidated);
    }
  }
  Result.ClassLoadMs = PhaseTimer.elapsedMs();
  markPhase("classload", static_cast<int64_t>(OldIdToName.size()));
  Result.Trace.record(UpdateEventKind::ClassesInstalled,
                      TheVM.scheduler().ticks(),
                      static_cast<int64_t>(OldIdToName.size()),
                      std::to_string(Result.ClassLoadMs) + " ms");

  // --- Step 4e: on-stack replacement of base-compiled category-(2)
  // frames, now that the new metadata is installed (paper §3.2). ----------
  for (Frame *F : OsrFrames) {
    MethodId NewId = F->Method;
    RtMethod &M = Reg.method(F->Method);
    if (M.Obsolete) {
      // The owner class itself was updated; the unchanged method lives in
      // the replacement class under the original name.
      auto It = OldIdToName.find(M.Owner);
      assert(It != OldIdToName.end() && "obsolete method of unrenamed class");
      ClassId NewCls = Reg.idOf(It->second);
      if (NewCls == InvalidClassId)
        throw UpdateError("install", "replacement class '" + It->second +
                                         "' failed to load before OSR");
      NewId = Reg.resolveMethod(NewCls, M.Name, M.Sig);
      if (NewId == InvalidMethodId)
        throw UpdateError("install",
                          "OSR method " + M.qualifiedName() +
                              " vanished from the new class version");
    }
    RtMethod &NM = Reg.method(NewId);
    if (!NM.Code || NM.Code->T != Tier::Baseline)
      NM.Code = TheVM.compiler().compile(NewId, Tier::Baseline);
    assert(NM.Code->Code.size() == F->Code->Code.size() &&
           "OSR requires identical bytecode (1:1 pc mapping)");
    F->Method = NewId;
    F->Code = NM.Code;
    ++Result.OsrReplacements;
    bumpDsuCounter(metrics::DsuOsrReplacements);
    Result.Trace.record(UpdateEventKind::OsrReplaced,
                        TheVM.scheduler().ticks(), 0,
                        Reg.method(NewId).qualifiedName());
  }

  // --- Step 4f (§3.5 extension): replace *changed* methods on-stack via
  // the user-supplied pc map and frame transformer (UpStare-style). ------
  for (const auto &[F, Mapping] : MappedFrames) {
    RtMethod &M = Reg.method(F->Method);
    ClassId NewCls;
    if (M.Obsolete) {
      auto It = OldIdToName.find(M.Owner);
      assert(It != OldIdToName.end() && "obsolete method of unrenamed class");
      NewCls = Reg.idOf(It->second);
    } else {
      NewCls = M.Owner;
    }
    if (NewCls == InvalidClassId)
      throw UpdateError("install",
                        "replacement class for remapped frame of " +
                            M.qualifiedName() + " failed to load");
    MethodId NewId = Reg.resolveMethod(NewCls, M.Name, M.Sig);
    if (NewId == InvalidMethodId)
      throw UpdateError("install", "active mapping for " + M.qualifiedName() +
                                       ", which is absent from the new "
                                       "version");
    RtMethod &NM = Reg.method(NewId);
    if (!NM.Code || NM.Code->T != Tier::Baseline)
      NM.Code = TheVM.compiler().compile(NewId, Tier::Baseline);

    uint32_t NewPc = Mapping->PcMap.at(F->Pc);
    assert(NewPc < NM.Code->Code.size() && "pc map leaves the new body");

    std::vector<Slot> NewLocals(NM.Code->NumLocals);
    if (Mapping->Frame) {
      TransformCtx Ctx(TheVM, nullptr);
      Mapping->Frame(Ctx, F->Locals, NewLocals);
    } else {
      // Default frame transformer: carry locals over by slot index.
      for (size_t I = 0; I < std::min(F->Locals.size(), NewLocals.size());
           ++I)
        NewLocals[I] = F->Locals[I];
    }

    F->Method = NewId;
    F->Code = NM.Code;
    F->Pc = NewPc;
    F->Locals = std::move(NewLocals);
    // The operand stack is preserved as-is (the mapping's author asserts
    // pc compatibility, as in UpStare's stack reconstruction).
    ++Result.ActiveFramesRemapped;
    bumpDsuCounter(metrics::DsuFramesRemapped);
    Result.Trace.record(UpdateEventKind::ActiveRemapped,
                        TheVM.scheduler().ticks(), 0,
                        Reg.method(NewId).qualifiedName());
  }
  markPhase("stack_repair",
            static_cast<int64_t>(OsrFrames.size() + MappedFrames.size()));

  // --- Step 5: DSU collection + transformers (§3.4). ---------------------
  DsuRemap Remap;
  for (const auto &[OldId, Name] : OldIdToName) {
    if (!Bundle.Spec.isClassUpdated(Name))
      continue; // deleted classes keep their (obsolete) identity
    ClassId NewId = Reg.idOf(Name);
    // A real checked error: when the replacement class did not load, its
    // instances have no new version to transform into and the update must
    // roll back (release builds used to sail past an assert here and
    // install an invalid class id into the remap).
    if (NewId == InvalidClassId)
      throw UpdateError("class-load",
                        "updated class '" + Name + "' failed to load");
    Remap.OldToNew[OldId] = NewId;
  }

  if (!Remap.OldToNew.empty()) {
    Remap.OldCopiesInSeparateSpace = Opts.UseOldCopySpace;
    Remap.OldCopyReserveLimitBytes = Opts.OldCopyReserveLimitBytes;
    Remap.LazyShells = Opts.LazyTransform;
    std::vector<UpdateLogEntry> UpdateLog;
    std::unordered_map<Ref, size_t> NewToLogIndex;
    Result.Gc = TheVM.collectGarbage(&Remap, &UpdateLog, &NewToLogIndex);
    Result.GcMs = Result.Gc.GcMs;
    markPhase("gc", static_cast<int64_t>(Result.Gc.ObjectsRemapped));
    Result.Trace.record(UpdateEventKind::GcCompleted,
                        TheVM.scheduler().ticks(),
                        static_cast<int64_t>(Result.Gc.ObjectsRemapped),
                        std::to_string(Result.GcMs) + " ms");

    // Canary staging happens while both versions are still live: removed
    // fields read out of the old copies, removed statics out of the
    // renamed old classes (dropped below), and the new-version class ids
    // a completed revert must leave no instances of.
    if (Opts.CanaryWindow.enabled())
      stageCanaryUndo(UpdateLog);

    TransformerRunner Runner(TheVM, Bundle, UpdateLog, NewToLogIndex);
    if (Opts.LazyTransform) {
      // Statics have no read barrier, so class transformers run eagerly;
      // every per-object transform is deferred to the engine. The log is
      // handed to the commit point, and the old-copy block stays reserved
      // until the engine retires the barrier.
      Result.TransformMs = Runner.runClassTransformers();
      Result.ObjectsTransformed = Runner.objectsTransformed();
      markPhase("transform", static_cast<int64_t>(Result.ObjectsTransformed),
                "class transformers only (lazy)");
      Result.Trace.record(UpdateEventKind::Transformed,
                          TheVM.scheduler().ticks(),
                          static_cast<int64_t>(Result.ObjectsTransformed),
                          std::to_string(Result.TransformMs) +
                              " ms (object transforms deferred)");
      LazyLog = std::move(UpdateLog);
      LazyIndex = std::move(NewToLogIndex);
      LazyCommitPending = true;
      Reg.dropObsoleteStatics();
      return;
    }
    Result.TransformMs = Runner.runAll();
    Result.ObjectsTransformed = Runner.objectsTransformed();
    markPhase("transform", static_cast<int64_t>(Result.ObjectsTransformed));
    if (Telemetry::isEnabled())
      Telemetry::global()
          .counter(metrics::DsuObjectsTransformed)
          .add(Result.ObjectsTransformed);
    Result.Trace.record(UpdateEventKind::Transformed,
                        TheVM.scheduler().ticks(),
                        static_cast<int64_t>(Result.ObjectsTransformed),
                        std::to_string(Result.TransformMs) + " ms");

    // Dropping the log makes the duplicate old versions unreachable: in
    // the default configuration the next collection reclaims them, while
    // the §3.5 old-copy space is released right now. Obsolete statics go
    // too, so dead program state cannot keep objects alive.
    Reg.dropObsoleteStatics();
    if (Opts.UseOldCopySpace)
      TheVM.heap().releaseOldCopySpace();
  } else if (Opts.CanaryWindow.enabled()) {
    // No instances to remap (body-update / addition / deletion-only
    // update); deleted classes may still carry statics worth retaining.
    stageCanaryUndo({});
  }
}

void Updater::abortUpdate(UpdateStatus Status, const std::string &Message) {
  // Uninstall any armed return barriers; nothing else was changed yet.
  for (auto &T : TheVM.scheduler().threads())
    for (Frame &F : T->Frames)
      F.ReturnBarrier = false;
  if (Status == UpdateStatus::TimedOut) {
    Result.Trace.record(UpdateEventKind::TimedOut,
                        TheVM.scheduler().ticks(), 0, Message);
    bumpDsuCounter(metrics::DsuUpdatesTimedOut);
  }
  finish(Status, Message);
  TheVM.resumeAfterYield();
}

void Updater::finish(UpdateStatus Status, const std::string &Message) {
  Result.Status = Status;
  Result.Message = Message;
  // The retry histogram samples only outcomes that actually sought a safe
  // point to the end: applied, timed-out, or degraded. A rollback abort
  // happens *after* quiescence was reached — counting its attempt here
  // used to skew the retry distribution.
  if (Telemetry::isEnabled() &&
      (Status == UpdateStatus::Applied || Status == UpdateStatus::TimedOut ||
       Status == UpdateStatus::Degraded))
    Telemetry::global()
        .histogram(metrics::DsuUpdateRetries)
        .record(static_cast<double>(Result.RetriesUsed));
  if (DrainActive)
    endDrain();
  // Release only hooks this updater still owns: a canary's revert updater
  // claimed them for itself when it scheduled, and finishing a stale
  // foreign updater must not strip them from under it.
  TheVM.releaseDsuHooks(this);
}

void Updater::beginDrain() {
  DrainActive = true;
  DrainWatch.reset();
  DrainStartTick = TheVM.scheduler().ticks();
  ShedAtDrainStart = TheVM.net().shedTotal();
  TheVM.beginNetDrain();
  Result.Trace.record(UpdateEventKind::DrainStarted, DrainStartTick, 0,
                      "accepts gated until the update resolves");
}

void Updater::endDrain() {
  DrainActive = false;
  TheVM.endNetDrain();
  Result.DrainMs = DrainWatch.elapsedMs();
  Result.RequestsShed = TheVM.net().shedTotal() - ShedAtDrainStart;
  uint64_t Tick = TheVM.scheduler().ticks();
  Result.Trace.record(UpdateEventKind::DrainEnded, Tick,
                      static_cast<int64_t>(Result.RequestsShed),
                      std::to_string(Result.RequestsShed) +
                          " request(s) shed while draining");
  if (Telemetry::isEnabled()) {
    Telemetry &Tel = Telemetry::global();
    Tel.counter(metrics::NetDrains).inc();
    Tel.histogram(metrics::NetDrainMs).record(Result.DrainMs);
    // A dedicated span name: drain windows bracket the pause and must not
    // disturb the dsu.update.phase spans that tile TotalPauseMs.
    Tel.emit({"net.drain", "drain", DrainStartTick, Tick, Result.DrainMs,
              static_cast<int64_t>(Result.RequestsShed), ""});
  }
}

UpdateResult Updater::applyNow(UpdateBundle InBundle, UpdateOptions InOpts,
                               uint64_t MaxDriveTicks) {
  schedule(std::move(InBundle), InOpts);
  uint64_t Driven = 0;
  while (pending() && Driven < MaxDriveTicks) {
    uint64_t Chunk = std::min<uint64_t>(MaxDriveTicks - Driven, 1u << 18);
    VM::RunResult R = TheVM.run(Chunk);
    Driven += Chunk;
    if (R.Idle && pending()) {
      // Every thread is blocked for good below an armed barrier; the
      // deadline will never arrive on its own because the clock has
      // stopped. Run the escalation ladder now: rescue can wake the
      // blocked threads, degrade can land the body subset, and an abort
      // carries the diagnosis of what pinned the update.
      escalate(TheVM.scheduler().ticks(), /*Forced=*/false,
               "VM idle with restricted methods still on stack");
    }
  }
  if (pending())
    abortUpdate(UpdateStatus::TimedOut, "drive budget exhausted");
  // A lazy update resolves Applied with shells still pending. Keep driving
  // the VM so the barrier and the background drainer finish the job —
  // applyNow's contract is "the update is done"; callers that want to
  // observe mid-drain behavior use schedule() + run() directly.
  if (Result.Status == UpdateStatus::Applied && TheVM.lazyEngine()) {
    uint64_t Guard = 0;
    while (!TheVM.lazyEngine()->drained() && Guard++ < 1u << 16) {
      VM::RunResult R = TheVM.run(1u << 14);
      if (R.Idle)
        break;
    }
    // Blocked application threads can idle the VM with shells still
    // pending (nothing runnable wakes the drainer); settle synchronously.
    if (!TheVM.lazyEngine()->drained()) {
      while (!TheVM.lazyEngine()->drained())
        TheVM.lazyEngine()->drainSome(
            std::numeric_limits<size_t>::max());
      TheVM.lazyEngine()->retire();
    }
    // With the drain complete, fold the deferred work back into the
    // result so applyNow's contract is mode-agnostic: ObjectsTransformed
    // is the total either way (commit-time value for mid-drain views).
    Result.ObjectsTransformed += TheVM.lazyEngine()->transformedCount();
    if (Telemetry::isEnabled())
      Telemetry::global()
          .counter(metrics::DsuObjectsTransformed)
          .add(TheVM.lazyEngine()->transformedCount());
  }
  return Result;
}

UpdateResult Updater::resumeDeferred(UpdateOptions InOpts,
                                     uint64_t MaxDriveTicks) {
  if (!HasDeferredUpdate)
    fatalError("resumeDeferred: no degraded update left a deferred bundle");
  HasDeferredUpdate = false;
  ResumingDeferred = true;
  UpdateResult R =
      applyNow(std::move(DeferredBundle), InOpts, MaxDriveTicks);
  ResumingDeferred = false;
  return R;
}

void Updater::stageCanaryUndo(const std::vector<UpdateLogEntry> &UpdateLog) {
  ClassRegistry &Reg = TheVM.registry();
  for (const UpdateLogEntry &E : UpdateLog)
    CanaryUndo.captureObject(TheVM, E.OldCopy, E.NewObj);
  for (const std::string &Name : Bundle.Spec.ClassUpdates)
    CanaryUndo.captureStatics(TheVM, Name, Bundle.renamedOldClass(Name));
  for (const std::string &Name : Bundle.Spec.DeletedClasses)
    CanaryUndo.captureStatics(TheVM, Name, Bundle.renamedOldClass(Name));
  CanaryNewClassIds.clear();
  auto AddId = [&](const std::string &Name) {
    ClassId Id = Reg.idOf(Name);
    if (Id != InvalidClassId)
      CanaryNewClassIds.push_back(Id);
  };
  for (const std::string &Name : Bundle.Spec.ClassUpdates)
    AddId(Name);
  for (const std::string &Name : Bundle.Spec.AddedClasses)
    AddId(Name);
}

void Updater::armCanary() {
  size_t Retained = CanaryUndo.objectCount();
  auto Ctl = std::make_unique<CanaryController>(
      TheVM, Opts.CanaryWindow, Opts, std::move(CanaryPreProgram), Bundle,
      std::move(CanaryUndo), std::move(CanaryNewClassIds), CanaryBaseline);
  CanaryController *Raw = Ctl.get();
  // Install first, then arm: arming samples the scheduler clock and the
  // network counters, and the watchdog thread the install spawns must not
  // observe a window that is somehow armed but absent from the VM.
  TheVM.installCanary(std::move(Ctl));
  Raw->arm();
  Result.CanaryArmed = true;
  Result.Trace.record(UpdateEventKind::CanaryArmed, TheVM.scheduler().ticks(),
                      static_cast<int64_t>(Retained),
                      "window open over '" + Bundle.VersionTag + "'");
}

UpdateResult Updater::revert(const std::string &Reason,
                             uint64_t MaxDriveTicks) {
  auto *Ctl = static_cast<CanaryController *>(TheVM.canary());
  if (!Ctl || !Ctl->windowOpen() || !Ctl->requestRevert(Reason)) {
    UpdateResult R;
    R.Status = UpdateStatus::RevertFailed;
    R.Message = "revert failed: no open canary window";
    return R;
  }
  // The canary's watchdog keeps virtual time moving even on an idle VM,
  // so driving the clock is all the reverse update needs to hunt its safe
  // point and finalize.
  uint64_t Driven = 0;
  while (Ctl->windowOpen() && Driven < MaxDriveTicks) {
    uint64_t Chunk = std::min<uint64_t>(MaxDriveTicks - Driven, 1u << 18);
    VM::RunResult R = TheVM.run(Chunk);
    Driven += Chunk;
    if (R.Idle)
      break; // only possible once the window closed and the watchdog died
  }
  return Ctl->revertResult();
}
