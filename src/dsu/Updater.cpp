#include "dsu/Updater.h"

#include "bytecode/Builtins.h"
#include "bytecode/Verifier.h"
#include "dsu/Transformers.h"
#include "support/Error.h"
#include "support/Stopwatch.h"

#include <cassert>
#include <unordered_map>

using namespace jvolve;

const char *jvolve::updateStatusName(UpdateStatus S) {
  switch (S) {
  case UpdateStatus::None: return "none";
  case UpdateStatus::Pending: return "pending";
  case UpdateStatus::Applied: return "applied";
  case UpdateStatus::TimedOut: return "timed-out";
  case UpdateStatus::RejectedNotVerifiable: return "rejected (verification)";
  case UpdateStatus::RejectedHierarchy: return "rejected (hierarchy)";
  }
  unreachable("bad update status");
}

Updater::~Updater() {
  // Never leave dangling callbacks into a destroyed updater.
  TheVM.setSafePointCallback(nullptr);
  TheVM.setTickCallback(nullptr);
  TheVM.setReturnBarrierCallback(nullptr);
}

/// Detects class-hierarchy permutations (e.g. reversing a superclass
/// relationship), which Jvolve does not support (§2.2).
static bool hierarchyPermuted(const ClassSet &Old, const ClassSet &New) {
  for (const auto &[Name, Cls] : New.classes()) {
    if (isBuiltinClass(Name) || !Old.contains(Name))
      continue;
    for (const std::string &NewAncestor : New.superChain(Name)) {
      if (NewAncestor == Name || isBuiltinClass(NewAncestor))
        continue;
      // Name extends NewAncestor in the new version; if the old version
      // had the opposite relationship, the update permutes the hierarchy.
      if (Old.contains(NewAncestor) && Old.isSubclassOf(NewAncestor, Name))
        return true;
    }
  }
  return false;
}

void Updater::schedule(UpdateBundle InBundle, UpdateOptions InOpts) {
  if (pending())
    fatalError("an update is already pending");
  Bundle = std::move(InBundle);
  Opts = InOpts;
  Result = UpdateResult();
  ensureBuiltins(Bundle.NewProgram);

  // Safety gate 1: the complete new program version must verify (§2.2).
  std::vector<VerifyError> Errs = Verifier(Bundle.NewProgram).verifyAll();
  if (!Errs.empty()) {
    std::string Msg = "new version fails verification: " + Errs.front().str();
    Result.Trace.record(UpdateEventKind::Rejected,
                        TheVM.scheduler().ticks(), 0, Msg);
    finish(UpdateStatus::RejectedNotVerifiable, Msg);
    return;
  }
  // Safety gate 2: no hierarchy permutations.
  if (hierarchyPermuted(TheVM.program(), Bundle.NewProgram)) {
    Result.Trace.record(UpdateEventKind::Rejected,
                        TheVM.scheduler().ticks(), 0,
                        "hierarchy permutation");
    finish(UpdateStatus::RejectedHierarchy,
           "update permutes the class hierarchy");
    return;
  }

  Result.Status = UpdateStatus::Pending;
  ScheduleTick = TheVM.scheduler().ticks();
  DeadlineTick = ScheduleTick + Opts.TimeoutTicks;
  Result.Trace.record(UpdateEventKind::Scheduled, ScheduleTick, 0,
                      "timeout in " + std::to_string(Opts.TimeoutTicks) +
                          " ticks");

  resolveIdSets();

  TheVM.setSafePointCallback([this] { onSafePoint(); });
  TheVM.setTickCallback([this](uint64_t Now) { onTick(Now); });
  TheVM.setReturnBarrierCallback([this](VMThread &T) { onReturnBarrier(T); });
  TheVM.requestYield();
}

void Updater::resolveIdSets() {
  ClassRegistry &Reg = TheVM.registry();
  RestrictedMethodIds.clear();
  IndirectMethodIds.clear();
  UpdatedOldClassIds.clear();

  auto ResolveRef = [&Reg](const MethodRef &R) -> MethodId {
    ClassId Cls = Reg.idOf(R.ClassName);
    if (Cls == InvalidClassId)
      return InvalidMethodId;
    return Reg.resolveMethod(Cls, R.Name, R.Sig);
  };

  for (const MethodRef &R : Bundle.Spec.MethodBodyUpdates)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      RestrictedMethodIds.insert(Id);
  for (const MethodRef &R : Bundle.Spec.RemovedMethods)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      RestrictedMethodIds.insert(Id);
  for (const MethodRef &R : Bundle.Spec.Blacklist)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      RestrictedMethodIds.insert(Id);
  for (const MethodRef &R : Bundle.Spec.IndirectMethods)
    if (MethodId Id = ResolveRef(R); Id != InvalidMethodId)
      IndirectMethodIds.insert(Id);

  for (const std::string &Name : Bundle.Spec.ClassUpdates)
    if (ClassId Id = Reg.idOf(Name); Id != InvalidClassId)
      UpdatedOldClassIds.insert(Id);
  for (const std::string &Name : Bundle.Spec.DeletedClasses)
    if (ClassId Id = Reg.idOf(Name); Id != InvalidClassId)
      UpdatedOldClassIds.insert(Id);
}

const ActiveMethodMapping *Updater::mappingFor(const Frame &F) const {
  if (Bundle.ActiveMappings.empty())
    return nullptr;
  // Active replacement needs the 1:1 pc mapping of baseline code.
  if (F.Code->T != Tier::Baseline || !F.Code->Inlined.empty())
    return nullptr;
  const RtMethod &M = TheVM.registry().method(F.Method);
  MethodRef Ref{TheVM.registry().cls(M.Owner).Name, M.Name, M.Sig};
  auto It = Bundle.ActiveMappings.find(Ref.key());
  if (It == Bundle.ActiveMappings.end())
    return nullptr;
  // The thread must be parked at a mapped program counter.
  if (!It->second.PcMap.count(F.Pc))
    return nullptr;
  return &It->second;
}

Updater::FrameKind Updater::classifyFrame(const Frame &F) const {
  if (RestrictedMethodIds.count(F.Method))
    return mappingFor(F) ? FrameKind::MappedOsr : FrameKind::Restricted;

  const CompiledMethod &Code = *F.Code;
  // Inlining closure: code that inlined a restricted method must be
  // restricted too, or old bodies would keep running after the update.
  for (MethodId Inl : Code.Inlined)
    if (RestrictedMethodIds.count(Inl))
      return FrameKind::Restricted;

  bool RefsUpdated = false;
  for (ClassId C : Code.ReferencedClasses)
    if (UpdatedOldClassIds.count(C)) {
      RefsUpdated = true;
      break;
    }
  if (!RefsUpdated)
    return FrameKind::Free;

  // Category (2). OSR applies only to base-compiled code with no inlined
  // bodies (paper §3.2); everything else waits behind a return barrier.
  if (Opts.EnableOsr && Code.T == Tier::Baseline && Code.Inlined.empty())
    return FrameKind::OsrNeeded;
  return FrameKind::Restricted;
}

void Updater::onTick(uint64_t Now) {
  if (pending() && Now >= DeadlineTick)
    abortUpdate(UpdateStatus::TimedOut,
                "no DSU safe point reached within the timeout");
}

void Updater::onReturnBarrier(VMThread &T) {
  if (!pending())
    return;
  Result.Trace.record(UpdateEventKind::BarrierFired,
                      TheVM.scheduler().ticks(), 0, "thread " + T.Name);
  TheVM.requestYield(); // restart the update process (paper §3.2)
}

void Updater::onSafePoint() {
  if (!pending()) {
    // A stale yield request (e.g. raced with an abort): just resume.
    TheVM.resumeAfterYield();
    return;
  }
  attempt();
}

void Updater::attempt() {
  ++Result.SafePointAttempts;
  int RestrictedFrames = 0;

  bool AnyRestricted = false;
  std::vector<Frame *> OsrFrames;
  std::vector<MappedFrame> MappedFrames;

  for (auto &T : TheVM.scheduler().threads()) {
    if (T->stopped())
      continue;
    Frame *TopRestricted = nullptr;
    for (Frame &F : T->Frames) { // bottom to top; last hit is topmost
      switch (classifyFrame(F)) {
      case FrameKind::Free:
        break;
      case FrameKind::OsrNeeded:
        OsrFrames.push_back(&F);
        break;
      case FrameKind::MappedOsr:
        MappedFrames.emplace_back(&F, mappingFor(F));
        break;
      case FrameKind::Restricted:
        TopRestricted = &F;
        ++RestrictedFrames;
        break;
      }
    }
    if (TopRestricted) {
      AnyRestricted = true;
      if (!TopRestricted->ReturnBarrier) {
        TopRestricted->ReturnBarrier = true;
        ++Result.ReturnBarriersInstalled;
        Result.Trace.record(
            UpdateEventKind::BarrierArmed, TheVM.scheduler().ticks(), 0,
            TheVM.registry().method(TopRestricted->Method).qualifiedName() +
                " on thread " + T->Name);
      }
    }
  }
  Result.Trace.record(UpdateEventKind::SafePointAttempt,
                      TheVM.scheduler().ticks(), RestrictedFrames,
                      std::to_string(OsrFrames.size()) + " OSR, " +
                          std::to_string(MappedFrames.size()) +
                          " mapped frame(s)");

  if (AnyRestricted) {
    // Defer: resume the application and retry when a barrier fires.
    TheVM.resumeAfterYield();
    return;
  }

  install(OsrFrames, MappedFrames);
}

void Updater::install(const std::vector<Frame *> &OsrFrames,
                      const std::vector<MappedFrame> &MappedFrames) {
  Stopwatch TotalTimer;
  Stopwatch PhaseTimer;
  ClassRegistry &Reg = TheVM.registry();

  // --- Step 4a: rename old versions of updated and deleted classes. ------
  std::unordered_map<ClassId, std::string> OldIdToName;
  auto RenameOld = [&](const std::string &Name) {
    ClassId Id = Reg.idOf(Name);
    if (Id == InvalidClassId)
      return;
    OldIdToName[Id] = Name;
    Reg.renameClassForUpdate(Id, Bundle.renamedOldClass(Name));
  };
  for (const std::string &Name : Bundle.Spec.ClassUpdates)
    RenameOld(Name);
  for (const std::string &Name : Bundle.Spec.DeletedClasses)
    RenameOld(Name);

  // --- Step 4b: load added and replacement classes. ----------------------
  for (const auto &[Name, Def] : Bundle.NewProgram.classes())
    if (Reg.idOf(Name) == InvalidClassId)
      Reg.loadClass(Def, Bundle.NewProgram);

  // --- Step 4c: method-body updates on otherwise-unchanged classes. ------
  std::set<MethodId> BodyChangedIds;
  for (const MethodRef &R : Bundle.Spec.MethodBodyUpdates) {
    if (Bundle.Spec.isClassUpdated(R.ClassName))
      continue; // the freshly loaded replacement class already has it
    ClassId Cls = Reg.idOf(R.ClassName);
    assert(Cls != InvalidClassId && "body update on unknown class");
    MethodId Id = Reg.resolveMethod(Cls, R.Name, R.Sig);
    assert(Id != InvalidMethodId && "body update on unknown method");
    const ClassDef *NewCls = Bundle.NewProgram.find(R.ClassName);
    const MethodDef *NewBody = NewCls->findMethod(R.Name, R.Sig);
    assert(NewBody && "spec references a method missing from new version");
    Reg.setMethodBody(Id, *NewBody);
    BodyChangedIds.insert(Id);
  }

  // --- Step 4d: invalidate compiled code that hard-codes stale state. ----
  for (MethodId Id = 0; Id < Reg.numMethods(); ++Id) {
    RtMethod &M = Reg.method(Id);
    if (M.Obsolete || !M.Code)
      continue;
    bool Invalidate = false;
    for (ClassId C : M.Code->ReferencedClasses)
      if (UpdatedOldClassIds.count(C)) {
        Invalidate = true;
        break;
      }
    if (!Invalidate)
      for (MethodId Inl : M.Code->Inlined)
        if (BodyChangedIds.count(Inl) || Reg.method(Inl).Obsolete) {
          Invalidate = true;
          break;
        }
    if (Invalidate)
      Reg.invalidateCode(Id);
  }
  Result.ClassLoadMs = PhaseTimer.elapsedMs();
  Result.Trace.record(UpdateEventKind::ClassesInstalled,
                      TheVM.scheduler().ticks(),
                      static_cast<int64_t>(OldIdToName.size()),
                      std::to_string(Result.ClassLoadMs) + " ms");

  // --- Step 4e: on-stack replacement of base-compiled category-(2)
  // frames, now that the new metadata is installed (paper §3.2). ----------
  for (Frame *F : OsrFrames) {
    MethodId NewId = F->Method;
    RtMethod &M = Reg.method(F->Method);
    if (M.Obsolete) {
      // The owner class itself was updated; the unchanged method lives in
      // the replacement class under the original name.
      auto It = OldIdToName.find(M.Owner);
      assert(It != OldIdToName.end() && "obsolete method of unrenamed class");
      ClassId NewCls = Reg.idOf(It->second);
      assert(NewCls != InvalidClassId);
      NewId = Reg.resolveMethod(NewCls, M.Name, M.Sig);
      assert(NewId != InvalidMethodId &&
             "OSR method vanished from the new class version");
    }
    RtMethod &NM = Reg.method(NewId);
    if (!NM.Code || NM.Code->T != Tier::Baseline)
      NM.Code = TheVM.compiler().compile(NewId, Tier::Baseline);
    assert(NM.Code->Code.size() == F->Code->Code.size() &&
           "OSR requires identical bytecode (1:1 pc mapping)");
    F->Method = NewId;
    F->Code = NM.Code;
    ++Result.OsrReplacements;
    Result.Trace.record(UpdateEventKind::OsrReplaced,
                        TheVM.scheduler().ticks(), 0,
                        Reg.method(NewId).qualifiedName());
  }

  // --- Step 4f (§3.5 extension): replace *changed* methods on-stack via
  // the user-supplied pc map and frame transformer (UpStare-style). ------
  for (const auto &[F, Mapping] : MappedFrames) {
    RtMethod &M = Reg.method(F->Method);
    ClassId NewCls;
    if (M.Obsolete) {
      auto It = OldIdToName.find(M.Owner);
      assert(It != OldIdToName.end() && "obsolete method of unrenamed class");
      NewCls = Reg.idOf(It->second);
    } else {
      NewCls = M.Owner;
    }
    assert(NewCls != InvalidClassId);
    MethodId NewId = Reg.resolveMethod(NewCls, M.Name, M.Sig);
    assert(NewId != InvalidMethodId &&
           "active mapping for a method absent from the new version");
    RtMethod &NM = Reg.method(NewId);
    if (!NM.Code || NM.Code->T != Tier::Baseline)
      NM.Code = TheVM.compiler().compile(NewId, Tier::Baseline);

    uint32_t NewPc = Mapping->PcMap.at(F->Pc);
    assert(NewPc < NM.Code->Code.size() && "pc map leaves the new body");

    std::vector<Slot> NewLocals(NM.Code->NumLocals);
    if (Mapping->Frame) {
      TransformCtx Ctx(TheVM, nullptr);
      Mapping->Frame(Ctx, F->Locals, NewLocals);
    } else {
      // Default frame transformer: carry locals over by slot index.
      for (size_t I = 0; I < std::min(F->Locals.size(), NewLocals.size());
           ++I)
        NewLocals[I] = F->Locals[I];
    }

    F->Method = NewId;
    F->Code = NM.Code;
    F->Pc = NewPc;
    F->Locals = std::move(NewLocals);
    // The operand stack is preserved as-is (the mapping's author asserts
    // pc compatibility, as in UpStare's stack reconstruction).
    ++Result.ActiveFramesRemapped;
    Result.Trace.record(UpdateEventKind::ActiveRemapped,
                        TheVM.scheduler().ticks(), 0,
                        Reg.method(NewId).qualifiedName());
  }

  // --- Step 5: DSU collection + transformers (§3.4). ---------------------
  DsuRemap Remap;
  for (const auto &[OldId, Name] : OldIdToName) {
    if (!Bundle.Spec.isClassUpdated(Name))
      continue; // deleted classes keep their (obsolete) identity
    ClassId NewId = Reg.idOf(Name);
    assert(NewId != InvalidClassId && "updated class failed to load");
    Remap.OldToNew[OldId] = NewId;
  }

  if (!Remap.OldToNew.empty()) {
    Remap.OldCopiesInSeparateSpace = Opts.UseOldCopySpace;
    std::vector<UpdateLogEntry> UpdateLog;
    std::unordered_map<Ref, size_t> NewToLogIndex;
    Result.Gc = TheVM.collectGarbage(&Remap, &UpdateLog, &NewToLogIndex);
    Result.GcMs = Result.Gc.GcMs;
    Result.Trace.record(UpdateEventKind::GcCompleted,
                        TheVM.scheduler().ticks(),
                        static_cast<int64_t>(Result.Gc.ObjectsRemapped),
                        std::to_string(Result.GcMs) + " ms");

    TransformerRunner Runner(TheVM, Bundle, UpdateLog, NewToLogIndex);
    Result.TransformMs = Runner.runAll();
    Result.ObjectsTransformed = Runner.objectsTransformed();
    Result.Trace.record(UpdateEventKind::Transformed,
                        TheVM.scheduler().ticks(),
                        static_cast<int64_t>(Result.ObjectsTransformed),
                        std::to_string(Result.TransformMs) + " ms");

    // Dropping the log makes the duplicate old versions unreachable: in
    // the default configuration the next collection reclaims them, while
    // the §3.5 old-copy space is released right now. Obsolete statics go
    // too, so dead program state cannot keep objects alive.
    Reg.dropObsoleteStatics();
    if (Opts.UseOldCopySpace)
      TheVM.heap().releaseOldCopySpace();
  }

  TheVM.setProgram(Bundle.NewProgram);
  Result.TotalPauseMs = TotalTimer.elapsedMs();
  Result.TicksToSafePoint = TheVM.scheduler().ticks() - ScheduleTick;
  Result.Trace.record(UpdateEventKind::Applied, TheVM.scheduler().ticks(),
                      0,
                      std::to_string(Result.TotalPauseMs) + " ms total pause");
  finish(UpdateStatus::Applied, "update applied");
  TheVM.resumeAfterYield();
}

void Updater::abortUpdate(UpdateStatus Status, const std::string &Message) {
  // Uninstall any armed return barriers; nothing else was changed yet.
  for (auto &T : TheVM.scheduler().threads())
    for (Frame &F : T->Frames)
      F.ReturnBarrier = false;
  if (Status == UpdateStatus::TimedOut)
    Result.Trace.record(UpdateEventKind::TimedOut,
                        TheVM.scheduler().ticks(), 0, Message);
  finish(Status, Message);
  TheVM.resumeAfterYield();
}

void Updater::finish(UpdateStatus Status, const std::string &Message) {
  Result.Status = Status;
  Result.Message = Message;
  TheVM.setSafePointCallback(nullptr);
  TheVM.setTickCallback(nullptr);
  TheVM.setReturnBarrierCallback(nullptr);
}

UpdateResult Updater::applyNow(UpdateBundle InBundle, UpdateOptions InOpts,
                               uint64_t MaxDriveTicks) {
  schedule(std::move(InBundle), InOpts);
  uint64_t Driven = 0;
  while (pending() && Driven < MaxDriveTicks) {
    uint64_t Chunk = std::min<uint64_t>(MaxDriveTicks - Driven, 1u << 18);
    VM::RunResult R = TheVM.run(Chunk);
    Driven += Chunk;
    if (R.Idle && pending()) {
      // Every thread is blocked for good below an armed barrier; no safe
      // point can ever be reached.
      abortUpdate(UpdateStatus::TimedOut,
                  "VM idle with restricted methods still on stack");
    }
  }
  if (pending())
    abortUpdate(UpdateStatus::TimedOut, "drive budget exhausted");
  return Result;
}
