#include "dsu/CodeVersion.h"

#include "dsu/UpdateTrace.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <set>

using namespace jvolve;

CodeVersionManager &CodeVersionManager::of(VM &TheVM) {
  if (!TheVM.codeVersions())
    TheVM.installCodeVersions(std::make_unique<CodeVersionManager>(TheVM));
  return *static_cast<CodeVersionManager *>(TheVM.codeVersions());
}

bool CodeVersionManager::installBodySet(const std::vector<BodyUpdate> &Updates,
                                        const std::string &Tag,
                                        UpdateTrace *Trace,
                                        std::string *WhyNot) {
  ClassRegistry &Reg = TheVM.registry();
  uint64_t Now = TheVM.scheduler().ticks();

  // Everything one method's swap changed, for the mid-chain unwind: the
  // registry's prior (Def, Code, InvokeCount) triple plus how the chain
  // mutated. Unwinding in reverse order restores the exact pre-batch state,
  // so the prior active versions keep serving after an injected failure.
  struct AppliedOp {
    MethodId Method = InvalidMethodId;
    std::shared_ptr<const MethodDef> PrevDef;
    std::shared_ptr<CompiledMethod> PrevCode;
    uint64_t PrevInvokeCount = 0;
    bool CreatedChain = false;
    bool PushedNode = false;
    bool WasPop = false;
    CodeVersionNode PoppedNode;
  };
  std::vector<AppliedOp> AppliedOps;

  auto Unwind = [&] {
    for (auto It = AppliedOps.rbegin(); It != AppliedOps.rend(); ++It) {
      RtMethod &M = Reg.method(It->Method);
      M.Def = It->PrevDef;
      M.Code = It->PrevCode;
      M.InvokeCount = It->PrevInvokeCount;
      if (M.Code)
        M.Code->Superseded = false;
      MethodVersionChain &VC = Chains[It->Method];
      if (It->PushedNode) {
        VC.Chain.pop_back();
        // The node is active again; its archive slots go back to unused.
        VC.Chain.back().Code = nullptr;
        VC.Chain.back().InvokeCount = 0;
      }
      if (It->WasPop)
        VC.Chain.push_back(It->PoppedNode);
      if (It->CreatedChain)
        Chains.erase(It->Method);
    }
  };

  size_t Pops = 0;
  for (const BodyUpdate &U : Updates) {
    assert(U.Method != InvalidMethodId && U.NewBody &&
           "body update must be resolved before install");

    // A mid-chain install failure: the already-swapped prefix unwinds and
    // the epoch never advances, so no thread can observe a partial switch.
    if (TheVM.faults().probe(FaultInjector::Site::CodeVersionInstall)) {
      Unwind();
      if (WhyNot)
        *WhyNot = "injected code-version install failure "
                  "(codeversion-install) at " +
                  U.Display + "; prior active versions still serving";
      return false;
    }

    AppliedOp Op;
    Op.Method = U.Method;
    RtMethod &M = Reg.method(U.Method);
    Op.PrevDef = M.Def;
    Op.PrevCode = M.Code;
    Op.PrevInvokeCount = M.InvokeCount;

    auto ChainIt = Chains.find(U.Method);
    if (ChainIt == Chains.end()) {
      // First touch: version 0 is the body the class loader installed.
      MethodVersionChain VC;
      VC.Method = U.Method;
      VC.Chain.push_back({0, "v0", M.Def, nullptr, 0, Now});
      ChainIt = Chains.emplace(U.Method, std::move(VC)).first;
      Op.CreatedChain = true;
    }
    MethodVersionChain &VC = ChainIt->second;

    if (VC.Chain.size() >= 2 &&
        U.NewBody->codeEquals(*VC.Chain[VC.Chain.size() - 2].Def)) {
      // Revert pop: the new body is the parent version's body, so retire
      // the current node and reactivate the parent — restoring its
      // archived compiled tier and invoke count instead of recompiling.
      Op.WasPop = true;
      Op.PoppedNode = VC.Chain.back();
      VC.Chain.pop_back();
      if (M.Code)
        M.Code->Superseded = true;
      CodeVersionNode &Parent = VC.Chain.back();
      M.Def = Parent.Def;
      M.Code = Parent.Code;
      M.InvokeCount = Parent.InvokeCount;
      if (M.Code)
        M.Code->Superseded = false;
      Parent.Code = nullptr;
      Parent.InvokeCount = 0;
      ++Pops;
    } else {
      // Archive the active version (compiled tier + heat) in its node,
      // supersede its code, and install the new body as the next version.
      CodeVersionNode &Top = VC.Chain.back();
      Top.Code = M.Code;
      Top.InvokeCount = M.InvokeCount;
      if (M.Code)
        M.Code->Superseded = true;
      Reg.setMethodBody(U.Method, *U.NewBody);
      // setMethodBody re-profiles from zero; a versioned install keeps the
      // heat so ensureCompiledForInvoke repromotes a hot method straight
      // at the opt tier on its next invocation.
      M.InvokeCount = Op.PrevInvokeCount;
      VC.Chain.push_back(
          {Top.VersionId + 1, Tag, M.Def, nullptr, 0, Now});
      Op.PushedNode = true;
    }
    AppliedOps.push_back(std::move(Op));
  }

  // Callers that inlined a swapped body embed the old bytecode: invalidate
  // them (they recompile against the active versions on next invoke) and
  // supersede their in-flight code so the stale-frame gauge tracks them.
  std::set<MethodId> Changed;
  for (const BodyUpdate &U : Updates)
    Changed.insert(U.Method);
  for (MethodId Id = 0; Id < Reg.numMethods(); ++Id) {
    RtMethod &M = Reg.method(Id);
    if (!M.Code || Changed.count(Id))
      continue;
    for (MethodId Inl : M.Code->Inlined)
      if (Changed.count(Inl)) {
        M.Code->Superseded = true;
        Reg.invalidateCode(Id);
        break;
      }
  }

  // Commit: one epoch bump for the whole batch — the atomic switch every
  // thread observes (all of it or none of it) at its next poll point.
  ++Epoch;
  Installs += Updates.size();
  RevertPops += Pops;
  uint64_t Stale = recountStaleFrames();
  publishGauges();

  if (Trace) {
    Trace->record(UpdateEventKind::CodeVersionInstalled, Now,
                  static_cast<int64_t>(Updates.size()),
                  Tag + ": " + std::to_string(Updates.size() - Pops) +
                      " body install(s), " + std::to_string(Pops) +
                      " revert pop(s), no safe point");
    if (Pops)
      Trace->record(UpdateEventKind::CodeVersionReverted, Now,
                    static_cast<int64_t>(Pops),
                    "chains popped to the prior active version");
    Trace->record(UpdateEventKind::CodeVersionSwitched, Now,
                  static_cast<int64_t>(Epoch),
                  std::to_string(Stale) +
                      " in-flight frame(s) finishing on old versions");
  }
  return true;
}

void CodeVersionManager::onThreadPoll(VMThread &T, uint64_t /*Now*/) {
  T.CodeEpoch = Epoch;
  ++PollObservations;
}

void CodeVersionManager::onStaleFrameReturn() {
  recountStaleFrames();
  publishGauges();
}

uint64_t CodeVersionManager::recountStaleFrames() {
  uint64_t Stale = 0;
  for (const auto &T : TheVM.scheduler().threads()) {
    if (T->stopped())
      continue;
    for (const Frame &F : T->Frames)
      Stale += F.Code && F.Code->Superseded;
  }
  LastStaleCount = Stale;
  return Stale;
}

void CodeVersionManager::publishGauges() {
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.gauge(metrics::DsuCodeVersionInstalls)
      .set(static_cast<int64_t>(Installs));
  Tel.gauge(metrics::DsuCodeVersionSwitches).set(static_cast<int64_t>(Epoch));
  Tel.gauge(metrics::DsuCodeVersionChains)
      .set(static_cast<int64_t>(chains()));
  Tel.gauge(metrics::DsuCodeVersionStaleFrames)
      .set(static_cast<int64_t>(LastStaleCount));
}

size_t CodeVersionManager::chains() const {
  size_t N = 0;
  for (const auto &[M, VC] : Chains)
    N += VC.Chain.size() >= 2;
  return N;
}

uint64_t CodeVersionManager::staleFrames() const {
  uint64_t Stale = 0;
  for (const auto &T : TheVM.scheduler().threads()) {
    if (T->stopped())
      continue;
    for (const Frame &F : T->Frames)
      Stale += F.Code && F.Code->Superseded;
  }
  return Stale;
}

const MethodVersionChain *
CodeVersionManager::chainFor(MethodId Method) const {
  auto It = Chains.find(Method);
  return It == Chains.end() ? nullptr : &It->second;
}

std::string CodeVersionManager::activeVersionTable() const {
  ClassRegistry &Reg = TheVM.registry();
  std::string Out = "code versions: " + std::to_string(Chains.size()) +
                    " method(s) versioned, epoch " + std::to_string(Epoch) +
                    ", " + std::to_string(staleFrames()) +
                    " stale frame(s)\n";
  if (Chains.empty())
    return Out;
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf), "  %-44s %7s %6s  %s\n", "method", "active",
                "depth", "tag");
  Out += Buf;
  for (const auto &[Id, VC] : Chains) {
    const RtMethod &M = Reg.method(Id);
    std::string Name = Reg.cls(M.Owner).Name + "." + M.Name + M.Sig;
    const CodeVersionNode &Active = VC.Chain.back();
    std::snprintf(Buf, sizeof(Buf), "  %-44s %6sv%llu %6zu  %s\n",
                  Name.c_str(), "",
                  static_cast<unsigned long long>(Active.VersionId),
                  VC.Chain.size(), Active.Tag.c_str());
    Out += Buf;
  }
  return Out;
}
