#include "dsu/Analysis.h"

#include "bytecode/Verifier.h"
#include "dsu/Dataflow.h"
#include "dsu/UpdateBundle.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <deque>

using namespace jvolve;

const char *jvolve::applicabilityName(Applicability A) {
  switch (A) {
  case Applicability::Applicable: return "applicable";
  case Applicability::NeedsOsr: return "needs-osr";
  case Applicability::Impossible: return "impossible";
  }
  return "?";
}

namespace {

/// CFG successors of the instruction at \p Pc (branch targets clamped away
/// when out of bounds; the verifier reports those, not us).
void successors(const MethodDef &M, size_t Pc, std::vector<size_t> &Out) {
  Out.clear();
  const Instr &I = M.Code[Pc];
  bool FallsThrough = true;
  switch (I.Op) {
  case Opcode::Goto:
    FallsThrough = false;
    [[fallthrough]];
  case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt:
  case Opcode::IfGe: case Opcode::IfGt: case Opcode::IfLe:
  case Opcode::IfICmpEq: case Opcode::IfICmpNe: case Opcode::IfICmpLt:
  case Opcode::IfICmpGe: case Opcode::IfICmpGt: case Opcode::IfICmpLe:
  case Opcode::IfNull: case Opcode::IfNonNull:
  case Opcode::IfACmpEq: case Opcode::IfACmpNe:
    if (I.IVal >= 0 && static_cast<size_t>(I.IVal) < M.Code.size())
      Out.push_back(static_cast<size_t>(I.IVal));
    break;
  case Opcode::Return: case Opcode::IReturn: case Opcode::AReturn:
    FallsThrough = false;
    break;
  default:
    break;
  }
  if (FallsThrough && Pc + 1 < M.Code.size())
    Out.push_back(Pc + 1);
}

/// Pcs reachable from entry (pc 0).
std::vector<bool> reachablePcs(const MethodDef &M) {
  std::vector<bool> Seen(M.Code.size(), false);
  if (M.Code.empty())
    return Seen;
  std::deque<size_t> Work{0};
  Seen[0] = true;
  std::vector<size_t> Succs;
  while (!Work.empty()) {
    size_t Pc = Work.front();
    Work.pop_front();
    successors(M, Pc, Succs);
    for (size_t S : Succs)
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  return Seen;
}

bool isBlockingIntrinsic(const Instr &I) {
  if (I.Op != Opcode::Intrinsic)
    return false;
  switch (static_cast<IntrinsicId>(I.IVal)) {
  case IntrinsicId::SleepTicks:
  case IntrinsicId::NetAccept:
  case IntrinsicId::NetRecv:
    return true;
  default:
    return false;
  }
}

/// True when the reachable pc \p Pc lies on a CFG cycle.
bool onCycle(const MethodDef &M, size_t Pc) {
  std::vector<bool> Seen(M.Code.size(), false);
  std::deque<size_t> Work;
  std::vector<size_t> Succs;
  successors(M, Pc, Succs);
  for (size_t S : Succs)
    if (!Seen[S]) {
      Seen[S] = true;
      Work.push_back(S);
    }
  while (!Work.empty()) {
    size_t Cur = Work.front();
    Work.pop_front();
    if (Cur == Pc)
      return true;
    successors(M, Cur, Succs);
    for (size_t S : Succs)
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  return false;
}

/// A changed method that can sit in a blocking intrinsic inside a loop may
/// hold its safe point off indefinitely under load (CrossFTP 1.08's
/// "applies on an idle server" shape).
bool blocksInLoop(const MethodDef &M) {
  std::vector<bool> Reach = reachablePcs(M);
  for (size_t Pc = 0; Pc < M.Code.size(); ++Pc)
    if (Reach[Pc] && isBlockingIntrinsic(M.Code[Pc]) && onCycle(M, Pc))
      return true;
  return false;
}

const MethodDef *findMethod(const ClassSet &Set, const MethodRef &R,
                            const ClassDef **ClsOut = nullptr) {
  const ClassDef *Cls = Set.find(R.ClassName);
  if (ClsOut)
    *ClsOut = Cls;
  if (!Cls)
    return nullptr;
  return Cls->findMethod(R.Name, R.Sig);
}

/// True when runtime values typed \p OldSlot can flow into a new-code slot
/// expecting \p NewSlot: identical shapes, or a provably-null old value
/// entering any reference-typed slot.
bool slotCompatible(const std::string &OldSlot, const std::string &NewSlot) {
  if (OldSlot == NewSlot)
    return true;
  return OldSlot == "null" && NewSlot != "int";
}

std::string joinLines(const std::vector<std::string> &V,
                      const std::string &Indent) {
  std::string Out;
  for (const std::string &S : V)
    Out += Indent + S + "\n";
  return Out;
}

std::string jsonStringArray(const std::vector<std::string> &V) {
  std::string Out = "[";
  for (size_t I = 0; I < V.size(); ++I) {
    if (I)
      Out += ",";
    Out += "\"" + V[I] + "\"";
  }
  return Out + "]";
}

std::string jsonStringArray(const std::set<std::string> &V) {
  return jsonStringArray(std::vector<std::string>(V.begin(), V.end()));
}

} // namespace

bool UpdateAnalysis::neverReturns(const MethodDef &M) {
  if (M.Code.empty())
    return false;
  std::vector<bool> Reach = reachablePcs(M);
  for (size_t Pc = 0; Pc < M.Code.size(); ++Pc) {
    if (!Reach[Pc])
      continue;
    Opcode Op = M.Code[Pc].Op;
    if (Op == Opcode::Return || Op == Opcode::IReturn ||
        Op == Opcode::AReturn)
      return false;
  }
  return true;
}

/// Statically checks one ActiveMethodMapping: the old and new bodies must
/// exist, the pc map must cover every reachable old pc (the yield points),
/// every target must be in bounds, and the verifier-inferred operand stack
/// at each mapped old pc must be usable at its new pc. \returns true when
/// the mapping can lift a running frame; appends diagnostics otherwise.
static bool validateMapping(const ClassSet &Old, const ClassSet &New,
                            const ActiveMethodMapping &Map,
                            std::vector<std::string> &Issues) {
  const std::string Key = Map.Method.key();
  const ClassDef *OldCls = nullptr, *NewCls = nullptr;
  const MethodDef *OldM = findMethod(Old, Map.Method, &OldCls);
  const MethodDef *NewM = findMethod(New, Map.Method, &NewCls);
  if (!OldM) {
    Issues.push_back("mapping " + Key + ": method not in the old program");
    return false;
  }
  if (!NewM) {
    Issues.push_back("mapping " + Key + ": method not in the new program");
    return false;
  }

  auto OldShapes = computeStackShapes(Old, *OldCls, *OldM);
  auto NewShapes = computeStackShapes(New, *NewCls, *NewM);
  if (OldShapes.empty() || NewShapes.empty()) {
    Issues.push_back("mapping " + Key +
                     ": method body does not verify; no shape information");
    return false;
  }

  bool Ok = true;
  // Completeness: a frame can be paused at any reachable pc, so every one
  // needs a target. (Mapped pcs that are unreachable or out of range are
  // tolerated — identity maps generated from the new, longer body produce
  // them.)
  for (size_t Pc = 0; Pc < OldShapes.size(); ++Pc) {
    if (!OldShapes[Pc])
      continue;
    if (!Map.PcMap.count(static_cast<uint32_t>(Pc))) {
      Issues.push_back("mapping " + Key + ": old pc " + std::to_string(Pc) +
                       " is reachable but unmapped");
      Ok = false;
    }
  }

  for (const auto &[OldPc, NewPc] : Map.PcMap) {
    if (OldPc >= OldShapes.size() || !OldShapes[OldPc])
      continue; // never observed at a pause; harmless
    if (NewPc >= NewShapes.size()) {
      Issues.push_back("mapping " + Key + ": new pc " +
                       std::to_string(NewPc) + " out of bounds");
      Ok = false;
      continue;
    }
    if (!NewShapes[NewPc]) {
      Issues.push_back("mapping " + Key + ": new pc " +
                       std::to_string(NewPc) +
                       " is unreachable in the new body");
      Ok = false;
      continue;
    }
    const StackShape &OldS = *OldShapes[OldPc];
    const StackShape &NewS = *NewShapes[NewPc];
    if (OldS.size() != NewS.size()) {
      Issues.push_back(
          "mapping " + Key + ": stack height mismatch at old pc " +
          std::to_string(OldPc) + " -> new pc " + std::to_string(NewPc) +
          " (" + std::to_string(OldS.size()) + " vs " +
          std::to_string(NewS.size()) + " slots)");
      Ok = false;
      continue;
    }
    for (size_t S = 0; S < OldS.size(); ++S) {
      if (slotCompatible(OldS[S], NewS[S]))
        continue;
      Issues.push_back("mapping " + Key + ": stack slot " +
                       std::to_string(S) + " at old pc " +
                       std::to_string(OldPc) + " holds " + OldS[S] +
                       " but new pc " + std::to_string(NewPc) +
                       " expects " + NewS[S]);
      Ok = false;
    }
  }
  return Ok;
}

AnalysisReport UpdateAnalysis::analyze(
    const UpdateSpec &Spec,
    const std::map<std::string, ActiveMethodMapping> &Mappings,
    const AnalysisOptions &Opts) const {
  AnalysisReport R;
  auto Start = std::chrono::steady_clock::now();

  CallGraph CG(Old);
  R.NumMethods = CG.numMethods();
  R.NumEdges = CG.numEdges();

  // Category 1/3 seeds: updated, deleted, and user-blacklisted methods.
  std::set<std::string> Seeds;
  std::set<std::string> ChangedBodies;
  for (const MethodRef &Ref : Spec.MethodBodyUpdates) {
    Seeds.insert(Ref.key());
    ChangedBodies.insert(Ref.key());
  }
  for (const MethodRef &Ref : Spec.RemovedMethods)
    Seeds.insert(Ref.key());
  for (const MethodRef &Ref : Spec.Blacklist)
    Seeds.insert(Ref.key());

  R.ConservativeRestricted = CG.transitiveCallers(Seeds);
  R.PreciseRestricted = Seeds;
  for (const std::string &Key : CG.possibleInliners(
           Seeds, Opts.MaxInlineCodeLen, Opts.MaxInlineDepth))
    R.PreciseRestricted.insert(Key);
  R.PreciseRestrictedCha = R.PreciseRestricted;

  // Dataflow refinement: with entry points, the points-to fixpoint prunes
  // call edges whose receiver provably never holds a relevant class, so a
  // restricted method outside its reachable set can never be on a
  // post-boot stack — its safe point stays usable. Without entry points
  // every method may be live and the refinement must be a no-op.
  if (!Opts.EntryPoints.empty()) {
    DataflowOptions DfOpts;
    DfOpts.EntryPoints = Opts.EntryPoints;
    DataflowResult Df = DataflowAnalysis(Old).run(DfOpts);
    R.DataflowVirtualSites = Df.virtualSites();
    R.DataflowNarrowed = Df.sitesNarrowed();
    std::erase_if(R.PreciseRestricted, [&](const std::string &Key) {
      return !Df.reachableMethods().count(Key);
    });
  }

  // Entry reachability: with no declared entry points every method is
  // assumed live on some stack.
  std::set<std::string> EntryReachable;
  bool AllReachable = Opts.EntryPoints.empty();
  if (!AllReachable)
    EntryReachable = CG.reachableFrom(Opts.EntryPoints);
  auto IsEntryReachable = [&](const std::string &Key) {
    return AllReachable || EntryReachable.count(Key);
  };

  // Validate every provided mapping once; remember which ones lift.
  std::set<std::string> ValidMappings;
  for (const auto &[Key, Map] : Mappings)
    if (validateMapping(Old, New, Map, R.MappingIssues))
      ValidMappings.insert(Key);

  // Non-quiescence prediction over category-1/3 methods: a changed method
  // with no path to a return and a live thread inside it holds its
  // restricted safe point forever. (Tier promotion is invocation-count
  // based, so such a method is base-compiled; a complete, compatible pc
  // map lifts it via in-place replacement.)
  for (const std::string &Key : Seeds) {
    const CallGraphNode *N = CG.node(Key);
    if (!N || !N->Def)
      continue;
    if (!neverReturns(*N->Def) || !IsEntryReachable(Key))
      continue;
    if (ValidMappings.count(Key))
      continue;
    R.PinnedForever.push_back(Key);
  }

  // Category 2: unchanged bodies whose compiled form embeds stale
  // references to updated classes. Never-returning ones need OSR; they are
  // always OSR-eligible (base-compiled, no inlining — see header caveat).
  for (const MethodRef &Ref : Spec.IndirectMethods) {
    std::string Key = Ref.key();
    const CallGraphNode *N = CG.node(Key);
    if (!N || !N->Def)
      continue;
    if (neverReturns(*N->Def) && IsEntryReachable(Key) &&
        !ValidMappings.count(Key))
      R.OsrRequired.push_back(Key);
  }

  // Informational: changed methods that park in blocking intrinsics inside
  // a loop reach their safe point only when traffic pauses.
  for (const std::string &Key : ChangedBodies) {
    const CallGraphNode *N = CG.node(Key);
    if (!N || !N->Def || !IsEntryReachable(Key))
      continue;
    if (!neverReturns(*N->Def) && blocksInLoop(*N->Def))
      R.Warnings.push_back(Key +
                           " blocks on a network/sleep intrinsic inside a "
                           "loop; the update may only apply when idle");
  }

  std::sort(R.PinnedForever.begin(), R.PinnedForever.end());
  std::sort(R.OsrRequired.begin(), R.OsrRequired.end());

  if (!R.PinnedForever.empty()) {
    R.Verdict = Applicability::Impossible;
    R.Reason = R.PinnedForever.front() +
               " contains a non-returning loop, is reachable from a thread "
               "entry point, and has no usable active-method mapping";
  } else if (!R.OsrRequired.empty()) {
    R.Verdict = Applicability::NeedsOsr;
    R.Reason = R.OsrRequired.front() +
               " runs a non-returning loop that references updated classes; "
               "quiescence requires on-stack replacement";
  } else {
    R.Verdict = Applicability::Applicable;
    R.Reason = "no changed or indirect method can pin a thread stack";
  }
  R.RuntimeMs = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  return R;
}

AnalysisReport UpdateAnalysis::analyzeBundle(const UpdateBundle &B,
                                             const AnalysisOptions &Opts) const {
  AnalysisReport R = analyze(B.Spec, B.ActiveMappings, Opts);
  R.VersionTag = B.VersionTag;
  return R;
}

std::string AnalysisReport::table() const {
  std::string Out = "update-safety analysis";
  if (!VersionTag.empty())
    Out += " for " + VersionTag;
  Out += "\n";
  Out += "  call graph: " + std::to_string(NumMethods) + " methods, " +
         std::to_string(NumEdges) + " edges\n";
  Out += "  restricted safe points (conservative closure): " +
         std::to_string(ConservativeRestricted.size()) + "\n";
  Out += "  restricted safe points (precise, inline-aware): " +
         std::to_string(PreciseRestricted.size()) + "  (delta " +
         std::to_string(ConservativeRestricted.size() -
                        PreciseRestricted.size()) +
         " methods keep their safe points)\n";
  if (PreciseRestrictedCha.size() != PreciseRestricted.size())
    Out += "  dataflow refinement: CHA precise " +
           std::to_string(PreciseRestrictedCha.size()) + " -> " +
           std::to_string(PreciseRestricted.size()) + " (" +
           std::to_string(DataflowNarrowed) + "/" +
           std::to_string(DataflowVirtualSites) +
           " virtual sites narrowed)\n";
  Out += "  verdict: " + std::string(applicabilityName(Verdict)) + " — " +
         Reason + "\n";
  if (!PinnedForever.empty())
    Out += "  pinned forever:\n" + joinLines(PinnedForever, "    ");
  if (!OsrRequired.empty())
    Out += "  osr required:\n" + joinLines(OsrRequired, "    ");
  if (!MappingIssues.empty())
    Out += "  mapping issues:\n" + joinLines(MappingIssues, "    ");
  if (!Warnings.empty())
    Out += "  warnings:\n" + joinLines(Warnings, "    ");
  return Out;
}

std::string AnalysisReport::json() const {
  std::string Out = "{";
  Out += "\"version\":\"" + VersionTag + "\",";
  Out += "\"num_methods\":" + std::to_string(NumMethods) + ",";
  Out += "\"num_edges\":" + std::to_string(NumEdges) + ",";
  Out += "\"restricted_conservative\":" +
         jsonStringArray(ConservativeRestricted) + ",";
  Out += "\"restricted_precise\":" + jsonStringArray(PreciseRestricted) + ",";
  Out += "\"restricted_cha\":" + jsonStringArray(PreciseRestrictedCha) + ",";
  // The same gauge values --metrics-out publishes, under their metric
  // names, so the JSON and the metrics file share one schema.
  Out += "\"gauges\":{";
  Out += "\"dsu.analysis.restricted_conservative\":" +
         std::to_string(ConservativeRestricted.size()) + ",";
  Out += "\"dsu.analysis.restricted_precise\":" +
         std::to_string(PreciseRestricted.size()) + ",";
  Out += "\"dsu.analysis.restricted_delta\":" +
         std::to_string(ConservativeRestricted.size() -
                        PreciseRestricted.size()) +
         ",";
  Out += "\"dsu.analysis.restricted_cha\":" +
         std::to_string(PreciseRestrictedCha.size()) + ",";
  Out += "\"dsu.analysis.runtime_ms\":" +
         std::to_string(static_cast<int64_t>(RuntimeMs + 0.5)) + "},";
  Out += "\"pinned_forever\":" + jsonStringArray(PinnedForever) + ",";
  Out += "\"osr_required\":" + jsonStringArray(OsrRequired) + ",";
  Out += "\"mapping_issues\":" + jsonStringArray(MappingIssues) + ",";
  Out += "\"warnings\":" + jsonStringArray(Warnings) + ",";
  Out += "\"verdict\":\"" + std::string(applicabilityName(Verdict)) + "\",";
  Out += "\"reason\":\"" + Reason + "\"";
  return Out + "}";
}

void jvolve::recordAnalysisMetrics(const AnalysisReport &R) {
  if (!Telemetry::isEnabled())
    return;
  Telemetry &Tel = Telemetry::global();
  Tel.counter(metrics::DsuAnalysisRuns).inc();
  if (R.Verdict == Applicability::Impossible)
    Tel.counter(metrics::DsuAnalysisRejected).inc();
  Tel.gauge(metrics::DsuAnalysisRestrictedConservative)
      .set(static_cast<int64_t>(R.ConservativeRestricted.size()));
  Tel.gauge(metrics::DsuAnalysisRestrictedPrecise)
      .set(static_cast<int64_t>(R.PreciseRestricted.size()));
  Tel.gauge(metrics::DsuAnalysisRestrictedDelta)
      .set(static_cast<int64_t>(R.ConservativeRestricted.size() -
                                R.PreciseRestricted.size()));
  Tel.gauge(metrics::DsuAnalysisRestrictedCha)
      .set(static_cast<int64_t>(R.PreciseRestrictedCha.size()));
  Tel.gauge(metrics::DsuAnalysisRuntimeMs)
      .set(static_cast<int64_t>(R.RuntimeMs + 0.5));
}
