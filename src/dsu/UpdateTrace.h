//===----------------------------------------------------------------------===//
///
/// \file
/// Update tracing: a structured event log of one update's lifecycle.
///
/// The paper narrates updates in prose ("we installed a return barrier on
/// PoolThread.run(), but this barrier is never triggered…", §4.2); a
/// production DSU VM needs that narrative as data. The updater appends an
/// event per protocol step — schedule, safe-point attempt, frame
/// classification counts, barrier arm/fire, OSR, active-frame remap,
/// install phases with timings, transformation totals, and the final
/// outcome — and exposes the trace in UpdateResult for logging, tests,
/// and the pause-breakdown bench.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_UPDATETRACE_H
#define JVOLVE_DSU_UPDATETRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace jvolve {

/// Kinds of update-lifecycle events.
enum class UpdateEventKind : uint8_t {
  Scheduled,        ///< update signaled to the VM
  Rejected,         ///< failed validation (verification / hierarchy)
  SafePointAttempt, ///< all threads parked; stacks scanned
  BarrierArmed,     ///< return barrier installed on a restricted frame
  BarrierFired,     ///< a barriered frame returned; protocol restarts
  OsrReplaced,      ///< category-(2) frame replaced on-stack
  ActiveRemapped,   ///< changed frame replaced via an ActiveMethodMapping
  ClassesInstalled, ///< rename + load + invalidate finished
  GcCompleted,      ///< DSU collection finished
  Transformed,      ///< class + object transformers finished
  InstallFailed,    ///< a step of the install transaction threw UpdateError
  RolledBack,       ///< snapshot restored; VM serves the old version again
  Certified,        ///< post-update heap + registry certification ran
  RetryScheduled,   ///< safe-point timeout; retrying with a longer deadline
  Applied,          ///< update complete
  TimedOut,         ///< safe point never reached
  WatchdogExpired,  ///< quiescence watchdog fired; threads diagnosed
  Rescued,          ///< rescue rung: forced yields / synthesized remaps
  Degraded,         ///< method-body subset applied; remainder deferred
  DeferredResumed,  ///< a degraded update's full bundle rescheduled
  DrainStarted,     ///< network drain began for the pending update
  DrainEnded,       ///< network drain lifted after the update resolved
  LazyCommitted,    ///< lazy mode: committed with untransformed shells
  CanaryArmed,      ///< post-commit observation window opened
  CanaryBreached,   ///< a health monitor crossed its SLO threshold
  CanaryRetired,    ///< window closed healthy; undo log released
  CanarySettled,    ///< window closed early (stacked update superseded it)
  RevertStarted,    ///< reverse update scheduled through the pipeline
  Reverted,         ///< old versions reinstalled; heap converged
  RevertFailed,     ///< the reverse update could not be applied
  CodeVersionInstalled, ///< body set installed via version chains, no pause
  CodeVersionSwitched,  ///< active-version switch committed (epoch bumped)
  CodeVersionReverted,  ///< chains popped to the prior active versions
};

const char *updateEventKindName(UpdateEventKind K);

/// One trace event.
struct UpdateEvent {
  UpdateEventKind Kind;
  uint64_t Tick = 0;   ///< virtual time of the event
  int64_t Value = 0;   ///< kind-specific count (frames, objects, ...)
  std::string Detail;  ///< kind-specific text (method name, message)

  std::string str() const;
};

/// The whole trace of one update.
class UpdateTrace {
public:
  /// Appends an event. Also forwards it into the streaming telemetry
  /// pipeline (as a "dsu.update.event" point event) while any session is
  /// open: the event lands in the emitting thread's lock-free buffer —
  /// stamped with its per-thread sequence number — and the background
  /// writer streams it to every session, so the JSONL trace carries the
  /// full update narrative alongside phase spans (see
  /// support/TelemetryStream.h for buffering and drop semantics).
  void record(UpdateEventKind Kind, uint64_t Tick, int64_t Value = 0,
              std::string Detail = "") {
    forwardToSink(Kind, Tick, Value, Detail);
    Events.push_back({Kind, Tick, Value, std::move(Detail)});
  }

  const std::vector<UpdateEvent> &events() const { return Events; }

  /// Number of events of kind \p K.
  int count(UpdateEventKind K) const {
    int N = 0;
    for (const UpdateEvent &E : Events)
      N += E.Kind == K;
    return N;
  }

  /// Renders the trace, one event per line.
  std::string str() const;

  void clear() { Events.clear(); }

private:
  static void forwardToSink(UpdateEventKind Kind, uint64_t Tick,
                            int64_t Value, const std::string &Detail);

  std::vector<UpdateEvent> Events;
};

} // namespace jvolve

#endif // JVOLVE_DSU_UPDATETRACE_H
