#include "dsu/LazyTransform.h"

#include "runtime/ObjectModel.h"
#include "support/Error.h"
#include "support/Telemetry.h"

#include <algorithm>

using namespace jvolve;

std::string LazyTransformError::str() const {
  return "lazy-transform failed [" + ClassName + ", log entry " +
         std::to_string(LogIndex) + ", " +
         (OnDemand ? "barrier hit" : "background drain") + ", tick " +
         std::to_string(Tick) + "]: " + Message;
}

LazyTransformEngine::LazyTransformEngine(VM &TheVM, UpdateBundle Bundle,
                                         std::vector<UpdateLogEntry> Log,
                                         std::unordered_map<Ref, size_t> Index,
                                         bool OwnsOldCopySpace,
                                         size_t DrainBatch, bool ImpactBounded)
    : TheVM(TheVM), Bundle(std::move(Bundle)), UpdateLog(std::move(Log)),
      NewToLogIndex(std::move(Index)),
      Runner(TheVM, this->Bundle, UpdateLog, NewToLogIndex),
      OwnsOldCopySpace(OwnsOldCopySpace),
      DrainBatch(std::max<size_t>(DrainBatch, 1)),
      ImpactBounded(ImpactBounded) {
  for (const UpdateLogEntry &E : UpdateLog)
    if (E.St == UpdateLogEntry::State::Done ||
        E.St == UpdateLogEntry::State::Failed)
      ++PreSettled;
}

void LazyTransformEngine::arm() {
  setAllBarriers(true);
  if (ImpactBounded)
    settleUntouched();
  if (Telemetry::isEnabled()) {
    Telemetry::global().counter(metrics::DsuLazyUpdates).inc();
    publishPendingGauge();
  }
}

void LazyTransformEngine::settleUntouched() {
  ClassRegistry &Reg = TheVM.registry();
  // Memoized per new-version class: is this class's transform provably the
  // identity copy? True only when no custom object transformer is
  // registered and the flattened instance layouts (name, type, offset)
  // match slot for slot — the same criterion the static impact analysis
  // applies, checked against the live registry so it can never be stale.
  std::unordered_map<ClassId, bool> Untouched;
  uint64_t Settled = 0;
  for (UpdateLogEntry &E : UpdateLog) {
    if (E.St != UpdateLogEntry::State::Pending || !E.NewObj || !E.OldCopy)
      continue;
    ClassId NewId = classOf(E.NewObj);
    auto It = Untouched.find(NewId);
    if (It == Untouched.end()) {
      const RtClass &NewCls = Reg.cls(NewId);
      const RtClass &OldCls = Reg.cls(classOf(E.OldCopy));
      bool Same = Bundle.ObjectTransformers.count(NewCls.Name) == 0 &&
                  NewCls.InstanceFields.size() == OldCls.InstanceFields.size();
      for (size_t F = 0; Same && F < NewCls.InstanceFields.size(); ++F) {
        const RtField &NF = NewCls.InstanceFields[F];
        const RtField &OF = OldCls.InstanceFields[F];
        Same = NF.Name == OF.Name && NF.Ty == OF.Ty &&
               NF.Offset == OF.Offset;
      }
      It = Untouched.emplace(NewId, Same).first;
    }
    if (!It->second)
      continue;
    TransformerRunner::applyDefaultObjectTransform(TheVM, E.NewObj,
                                                   E.OldCopy);
    header(E.NewObj)->Flags &= ~(FlagUninitialized | FlagLazyPending);
    E.St = UpdateLogEntry::State::Done;
    ++Settled;
  }
  NumBulkSettled = Settled;
  if (Telemetry::isEnabled())
    Telemetry::global()
        .gauge(metrics::DsuImpactBulkSettled)
        .set(static_cast<int64_t>(Settled));
}

size_t LazyTransformEngine::pendingCount() const {
  return UpdateLog.size() - PreSettled -
         static_cast<size_t>(Runner.objectsTransformed()) -
         static_cast<size_t>(NumFailed) -
         static_cast<size_t>(NumBulkSettled);
}

bool LazyTransformEngine::isPendingShell(Ref Obj) const {
  if (Retired)
    return false;
  auto It = NewToLogIndex.find(Obj);
  if (It == NewToLogIndex.end())
    return false;
  UpdateLogEntry::State St = UpdateLog[It->second].St;
  return St == UpdateLogEntry::State::Pending ||
         St == UpdateLogEntry::State::InProgress;
}

void LazyTransformEngine::publishPendingGauge() const {
  Telemetry::global()
      .gauge(metrics::DsuLazyPending)
      .set(static_cast<int64_t>(pendingCount()));
}

bool LazyTransformEngine::onBarrierHit(Ref Obj, std::string *Err) {
  ++NumBarrierHits;
  if (Telemetry::isEnabled())
    Telemetry::global().counter(metrics::DsuLazyBarrierHits).inc();

  auto It = NewToLogIndex.find(Obj);
  if (It == NewToLogIndex.end()) {
    // Not one of ours (cannot happen through the normal lifecycle: only
    // the DSU collection sets FlagLazyPending). Clear the flag so the
    // object reads as a plain initialized instance.
    header(Obj)->Flags &= ~(FlagUninitialized | FlagLazyPending);
    return true;
  }
  return transformIndex(It->second, /*OnDemand=*/true, Err);
}

size_t LazyTransformEngine::drainSome(size_t BudgetTicks) {
  size_t Batch = std::min(DrainBatch, std::max<size_t>(BudgetTicks, 1));
  size_t Attempted = 0;
  std::string Err;
  while (Attempted < Batch && NextDrainIndex < UpdateLog.size()) {
    UpdateLogEntry::State St = UpdateLog[NextDrainIndex].St;
    if (St == UpdateLogEntry::State::Done ||
        St == UpdateLogEntry::State::Failed) {
      // Settled by a barrier hit (or a recursive force) before the drainer
      // reached it; skipping costs no tick.
      ++NextDrainIndex;
      continue;
    }
    // The drainer records failures and keeps draining — only the touching
    // thread is trapped on the barrier path.
    transformIndex(NextDrainIndex, /*OnDemand=*/false, &Err);
    ++Attempted;
  }

  size_t Used = std::max<size_t>(Attempted, 1);
  NumDrainTicks += Used;
  if (Telemetry::isEnabled())
    Telemetry::global().counter(metrics::DsuLazyDrainTicks).add(Used);
  if (drained())
    retire();
  return Used;
}

bool LazyTransformEngine::transformIndex(size_t Index, bool OnDemand,
                                         std::string *Err) {
  UpdateLogEntry &E = UpdateLog[Index];
  if (E.St == UpdateLogEntry::State::Done ||
      E.St == UpdateLogEntry::State::Failed)
    return true; // settled; a Failed entry was already reported

  // Transforms allocate; regular collection would move objects under the
  // Runner's raw refs, so hold it off exactly like the eager install does
  // (allocation failure throws UpdateError("transform") instead).
  bool PrevTx = TheVM.transformationInProgress();
  TheVM.setTransformationInProgress(true);
  uint64_t Before = Runner.objectsTransformed();
  bool Ok = true;
  std::string Msg;
  try {
    if (!OnDemand &&
        TheVM.faults().probe(FaultInjector::Site::LazyDrainTransformer))
      throw UpdateError("transform",
                        "injected lazy-drain transformer failure");
    Runner.transformAt(Index);
  } catch (const UpdateError &UE) {
    Ok = false;
    Msg = UE.message();
  }
  TheVM.setTransformationInProgress(PrevTx);

  uint64_t Delta = Runner.objectsTransformed() - Before;
  (OnDemand ? NumOnDemand : NumBackground) += Delta;
  if (Telemetry::isEnabled() && Delta > 0)
    Telemetry::global()
        .counter(OnDemand ? metrics::DsuLazyOnDemandTransforms
                          : metrics::DsuLazyBackgroundTransforms)
        .add(Delta);

  if (!Ok) {
    // Commit already happened; there is no snapshot to restore. Settle
    // every entry the failed (possibly recursive) transform left
    // in-progress: the shells stay valid default-initialized objects, are
    // never retried, and the update is reported degraded.
    uint64_t FailedNow = 0;
    for (UpdateLogEntry &F : UpdateLog)
      if (F.St == UpdateLogEntry::State::InProgress) {
        F.St = UpdateLogEntry::State::Failed;
        header(F.NewObj)->Flags &= ~(FlagUninitialized | FlagLazyPending);
        ++FailedNow;
      }
    // The failure may have hit before the runner marked the target entry
    // in-progress (e.g. an injected fault); settle it too, or the drainer
    // would retry it forever.
    if (E.St == UpdateLogEntry::State::Pending) {
      E.St = UpdateLogEntry::State::Failed;
      header(E.NewObj)->Flags &= ~(FlagUninitialized | FlagLazyPending);
      ++FailedNow;
    }
    NumFailed += FailedNow;

    LazyTransformError Diag;
    Diag.ClassName = TheVM.registry().cls(classOf(E.NewObj)).Name;
    Diag.LogIndex = Index;
    Diag.Message = Msg;
    Diag.OnDemand = OnDemand;
    Diag.Tick = TheVM.scheduler().ticks();
    if (Err)
      *Err = Diag.str();
    TheVM.noteLazyFailure(Diag.str());
    Failures.push_back(std::move(Diag));
    if (Telemetry::isEnabled())
      Telemetry::global().counter(metrics::DsuLazyFailed).add(FailedNow);
  }

  if (Telemetry::isEnabled())
    publishPendingGauge();
  return Ok;
}

void LazyTransformEngine::setAllBarriers(bool V) {
  ClassRegistry &Reg = TheVM.registry();
  for (size_t M = 0; M < Reg.numMethods(); ++M)
    if (auto &Code = Reg.method(static_cast<MethodId>(M)).Code)
      Code->LazyBarriers = V;
  for (auto &T : TheVM.scheduler().threads())
    for (Frame &F : T->Frames)
      if (F.Code)
        F.Code->LazyBarriers = V;
  TheVM.compiler().setEmitLazyBarriers(V);
}

void LazyTransformEngine::retire() {
  if (Retired)
    return;
  Retired = true;
  setAllBarriers(false);
  if (OwnsOldCopySpace && TheVM.heap().hasOldCopySpace()) {
    TheVM.heap().releaseOldCopySpace();
    OwnsOldCopySpace = false;
  }
  if (Telemetry::isEnabled()) {
    publishPendingGauge();
    Telemetry &Tel = Telemetry::global();
    if (Tel.tracing()) {
      uint64_t Tick = TheVM.scheduler().ticks();
      Tel.emit({"dsu.lazy", "retired", Tick, Tick, 0,
                static_cast<int64_t>(Runner.objectsTransformed()),
                "barrier retired; steady-state overhead back to zero"});
    }
  }
}

void LazyTransformEngine::visitRoots(
    const std::function<void(Ref &)> &Visit) {
  // Unsettled entries keep both halves of the pair alive: the shell (so
  // the transformer can still fill it) and the old copy (the transformer's
  // input). A regular collection forwards old copies into to-space like
  // any live object, which migrates them out of the old-copy block — see
  // onHeapMoved(). Settled entries hold stale refs that are never
  // dereferenced again; skip them.
  for (UpdateLogEntry &E : UpdateLog) {
    if (E.St != UpdateLogEntry::State::Pending &&
        E.St != UpdateLogEntry::State::InProgress)
      continue;
    if (E.NewObj)
      Visit(E.NewObj);
    if (E.OldCopy)
      Visit(E.OldCopy);
  }
}

void LazyTransformEngine::onHeapMoved() {
  if (Retired)
    return;
  // Entry addresses changed; rebuild the shell -> entry index from the
  // unsettled entries (settled entries' refs are stale but never used).
  NewToLogIndex.clear();
  for (size_t I = 0; I < UpdateLog.size(); ++I) {
    const UpdateLogEntry &E = UpdateLog[I];
    if (E.St == UpdateLogEntry::State::Pending ||
        E.St == UpdateLogEntry::State::InProgress)
      NewToLogIndex.emplace(E.NewObj, I);
  }
  // The collection just migrated every live old copy into to-space (they
  // are roots), so the dedicated block holds only dead bytes now.
  if (OwnsOldCopySpace && TheVM.heap().hasOldCopySpace()) {
    TheVM.heap().releaseOldCopySpace();
    OwnsOldCopySpace = false;
  }
}
