#include "dsu/Transformers.h"

#include "runtime/ObjectModel.h"
#include "support/Error.h"
#include "support/Stopwatch.h"

#include <cassert>

using namespace jvolve;

const RtField *TransformCtx::fieldOf(Ref Obj,
                                     const std::string &Field) const {
  assert(Obj && "field access on null in transformer");
  const RtClass &C = TheVM.registry().cls(classOf(Obj));
  const RtField *F = C.findInstanceField(Field);
  if (!F)
    throw UpdateError("transform", "class " + C.Name + " has no field '" +
                                       Field + "'");
  return F;
}

int64_t TransformCtx::getInt(Ref Obj, const std::string &Field) const {
  return getIntAt(Obj, fieldOf(Obj, Field)->Offset);
}

Ref TransformCtx::getRef(Ref Obj, const std::string &Field) const {
  return getRefAt(Obj, fieldOf(Obj, Field)->Offset);
}

void TransformCtx::setInt(Ref Obj, const std::string &Field, int64_t Value) {
  setIntAt(Obj, fieldOf(Obj, Field)->Offset, Value);
}

void TransformCtx::setRef(Ref Obj, const std::string &Field, Ref Value) {
  setRefAt(Obj, fieldOf(Obj, Field)->Offset, Value);
}

static Slot *staticSlot(VM &TheVM, const std::string &Cls,
                        const std::string &Field) {
  ClassId Id = TheVM.registry().idOf(Cls);
  if (Id == InvalidClassId)
    throw UpdateError("transform", "unknown class '" + Cls + "'");
  ClassId Declaring = InvalidClassId;
  RtField *F = TheVM.registry().resolveStaticField(Id, Field, &Declaring);
  if (!F)
    throw UpdateError("transform", "class " + Cls + " has no static '" +
                                       Field + "'");
  return &TheVM.registry().cls(Declaring).Statics[F->Offset];
}

int64_t TransformCtx::getStaticInt(const std::string &Cls,
                                   const std::string &Field) const {
  return staticSlot(TheVM, Cls, Field)->IntVal;
}

Ref TransformCtx::getStaticRef(const std::string &Cls,
                               const std::string &Field) const {
  return staticSlot(TheVM, Cls, Field)->RefVal;
}

void TransformCtx::setStaticInt(const std::string &Cls,
                                const std::string &Field, int64_t Value) {
  Slot *S = staticSlot(TheVM, Cls, Field);
  S->IntVal = Value;
  S->IsRef = false;
}

void TransformCtx::setStaticRef(const std::string &Cls,
                                const std::string &Field, Ref Value) {
  Slot *S = staticSlot(TheVM, Cls, Field);
  S->RefVal = Value;
  S->IsRef = true;
}

Ref TransformCtx::allocate(const std::string &ClassName) {
  ClassId Id = TheVM.registry().idOf(ClassName);
  if (Id == InvalidClassId)
    throw UpdateError("transform", "unknown class '" + ClassName + "'");
  return TheVM.allocateObject(Id);
}

Ref TransformCtx::allocateArray(const std::string &ElemDesc, int64_t Length) {
  ClassId ArrId = TheVM.registry().arrayClassOf(Type::parse(ElemDesc));
  return TheVM.allocateArray(ArrId, Length);
}

Ref TransformCtx::newString(const std::string &Payload) {
  return TheVM.newString(Payload);
}

std::string TransformCtx::stringValue(Ref Str) const {
  return TheVM.stringValue(Str);
}

int64_t TransformCtx::arrayLength(Ref Arr) const {
  assert(Arr && "null array in transformer");
  return jvolve::arrayLength(Arr);
}

Ref TransformCtx::getElemRef(Ref Arr, int64_t Index) const {
  assert(Index >= 0 && Index < jvolve::arrayLength(Arr));
  return getRefAt(Arr, arrayElemOffset(Index));
}

int64_t TransformCtx::getElemInt(Ref Arr, int64_t Index) const {
  assert(Index >= 0 && Index < jvolve::arrayLength(Arr));
  return getIntAt(Arr, arrayElemOffset(Index));
}

void TransformCtx::setElemRef(Ref Arr, int64_t Index, Ref Value) {
  assert(Index >= 0 && Index < jvolve::arrayLength(Arr));
  setRefAt(Arr, arrayElemOffset(Index), Value);
}

void TransformCtx::setElemInt(Ref Arr, int64_t Index, int64_t Value) {
  assert(Index >= 0 && Index < jvolve::arrayLength(Arr));
  setIntAt(Arr, arrayElemOffset(Index), Value);
}

void TransformCtx::ensureTransformed(Ref Obj) {
  if (Runner && Obj)
    Runner->ensureTransformed(Obj);
}

TransformerRunner::TransformerRunner(
    VM &TheVM, const UpdateBundle &Bundle,
    std::vector<UpdateLogEntry> &UpdateLog,
    std::unordered_map<Ref, size_t> &NewToLogIndex)
    : TheVM(TheVM), Bundle(Bundle), UpdateLog(UpdateLog),
      NewToLogIndex(NewToLogIndex) {}

void TransformerRunner::applyDefaultObjectTransform(VM &TheVM, Ref To,
                                                    Ref From) {
  ClassRegistry &Reg = TheVM.registry();
  const RtClass &NewCls = Reg.cls(classOf(To));
  const RtClass &OldCls = Reg.cls(classOf(From));
  for (const RtField &NF : NewCls.InstanceFields) {
    const RtField *OF = OldCls.findInstanceField(NF.Name);
    if (!OF || OF->Ty != NF.Ty)
      continue; // new or retyped: keep the default value
    if (NF.IsRef)
      setRefAt(To, NF.Offset, getRefAt(From, OF->Offset));
    else
      setIntAt(To, NF.Offset, getIntAt(From, OF->Offset));
  }
}

void TransformerRunner::applyDefaultClassTransform(
    VM &TheVM, const std::string &NewClass, const std::string &OldClass) {
  ClassRegistry &Reg = TheVM.registry();
  ClassId NewId = Reg.idOf(NewClass);
  ClassId OldId = Reg.idOf(OldClass);
  if (NewId == InvalidClassId || OldId == InvalidClassId)
    return;
  RtClass &New = Reg.cls(NewId);
  RtClass &Old = Reg.cls(OldId);
  for (const RtField &NF : New.StaticFields) {
    const RtField *OF = Old.findStaticField(NF.Name);
    if (!OF || OF->Ty != NF.Ty)
      continue;
    New.Statics[NF.Offset] = Old.Statics[OF->Offset];
  }
}

void TransformerRunner::transformEntry(size_t Index) {
  UpdateLogEntry &E = UpdateLog[Index];
  if (E.St == UpdateLogEntry::State::InProgress ||
      TheVM.faults().probe(FaultInjector::Site::TransformerCycle)) {
    // A cycle of jvolveObject calls constitutes one or more ill-defined
    // transformer functions (paper §3.4); the update cannot proceed.
    throw UpdateError("transform",
                      "transformer cycle detected while updating " +
                          TheVM.registry().cls(classOf(E.NewObj)).Name);
  }
  if (E.St == UpdateLogEntry::State::Done ||
      E.St == UpdateLogEntry::State::Failed)
    return;
  E.St = UpdateLogEntry::State::InProgress;

  const std::string &ClassName = TheVM.registry().cls(classOf(E.NewObj)).Name;
  if (TheVM.faults().probe(FaultInjector::Site::TransformerNthObject))
    throw UpdateError("transform", "injected transformer fault on object #" +
                                       std::to_string(Index) + " (class " +
                                       ClassName + ")");
  TransformCtx Ctx(TheVM, this);
  auto It = Bundle.ObjectTransformers.find(ClassName);
  if (It != Bundle.ObjectTransformers.end())
    It->second(Ctx, E.NewObj, E.OldCopy);
  else
    applyDefaultObjectTransform(TheVM, E.NewObj, E.OldCopy);

  header(E.NewObj)->Flags &= ~(FlagUninitialized | FlagLazyPending);
  E.St = UpdateLogEntry::State::Done;
  ++NumTransformed;
}

void TransformerRunner::ensureTransformed(Ref NewObj) {
  auto It = NewToLogIndex.find(NewObj);
  if (It == NewToLogIndex.end())
    return; // not a pending new-version object
  transformEntry(It->second);
}

double TransformerRunner::runClassTransformers() {
  Stopwatch Timer;
  // Class transformers first (paper §3.4), defaults for the rest.
  TransformCtx Ctx(TheVM, this);
  for (const std::string &Name : Bundle.Spec.ClassUpdates) {
    auto It = Bundle.ClassTransformers.find(Name);
    if (It != Bundle.ClassTransformers.end())
      It->second(Ctx);
    else
      applyDefaultClassTransform(TheVM, Name, Bundle.renamedOldClass(Name));
  }
  return Timer.elapsedMs();
}

double TransformerRunner::runAll() {
  // The updater holds setTransformationInProgress across the whole install
  // transaction (snapshot to commit), so it is already set here.
  Stopwatch Timer;

  runClassTransformers();

  // Then object transformers over the whole update log.
  for (size_t I = 0; I < UpdateLog.size(); ++I)
    transformEntry(I);

  return Timer.elapsedMs();
}
