//===----------------------------------------------------------------------===//
///
/// \file
/// The Update Preparation Tool (UPT, paper §3.1).
///
/// Given the old and new versions of a program (two ClassSets), the UPT
/// computes an UpdateSpec — added/deleted classes, class updates with the
/// transitive subclass closure, method-body updates, removed methods, and
/// indirect (category-(2)) methods — plus the Tables 2-4 summary counters,
/// and packages everything into an UpdateBundle pre-populated with default
/// class and object transformers that the developer may override.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_UPT_H
#define JVOLVE_DSU_UPT_H

#include "bytecode/ClassDef.h"
#include "dsu/UpdateBundle.h"
#include "dsu/UpdateSpec.h"

namespace jvolve {

/// Computes the diff between two program versions.
class Upt {
public:
  /// Diffs \p Old against \p New (built-ins are added to copies as needed)
  /// and returns the spec. \p Blacklist adds category-(3) restrictions.
  static UpdateSpec
  computeSpec(const ClassSet &Old, const ClassSet &New,
              const std::vector<MethodRef> &Blacklist = {});

  /// Full preparation: spec plus an UpdateBundle carrying the new program
  /// and the version tag used to rename old classes (e.g. "v131" turns
  /// "User" into "v131_User", Fig. 3).
  static UpdateBundle
  prepare(const ClassSet &Old, const ClassSet &New,
          const std::string &VersionTag,
          const std::vector<MethodRef> &Blacklist = {});

  /// \returns the class names referenced by \p M's bytecode (field owners,
  /// call receivers, New/InstanceOf/CheckCast operands, array element
  /// classes).
  static std::vector<std::string> referencedClasses(const MethodDef &M);

  /// \returns true when a class's *signature* changed between \p OldCls and
  /// \p NewCls: different superclass, any field added/deleted/retyped/
  /// re-flagged/reordered, or any method added/deleted/re-signed.
  static bool classSignatureChanged(const ClassDef &OldCls,
                                    const ClassDef &NewCls);
};

} // namespace jvolve

#endif // JVOLVE_DSU_UPT_H
