#include "dsu/UpdateTrace.h"

#include "support/Error.h"
#include "support/Telemetry.h"

using namespace jvolve;

void UpdateTrace::forwardToSink(UpdateEventKind Kind, uint64_t Tick,
                                int64_t Value, const std::string &Detail) {
  Telemetry &Tel = Telemetry::global();
  if (!Tel.tracing())
    return;
  Tel.emit({"dsu.update.event", updateEventKindName(Kind), Tick, Tick, 0,
            Value, Detail});
}

const char *jvolve::updateEventKindName(UpdateEventKind K) {
  switch (K) {
  case UpdateEventKind::Scheduled: return "scheduled";
  case UpdateEventKind::Rejected: return "rejected";
  case UpdateEventKind::SafePointAttempt: return "safe-point-attempt";
  case UpdateEventKind::BarrierArmed: return "barrier-armed";
  case UpdateEventKind::BarrierFired: return "barrier-fired";
  case UpdateEventKind::OsrReplaced: return "osr-replaced";
  case UpdateEventKind::ActiveRemapped: return "active-remapped";
  case UpdateEventKind::ClassesInstalled: return "classes-installed";
  case UpdateEventKind::GcCompleted: return "gc-completed";
  case UpdateEventKind::Transformed: return "transformed";
  case UpdateEventKind::InstallFailed: return "install-failed";
  case UpdateEventKind::RolledBack: return "rolled-back";
  case UpdateEventKind::Certified: return "certified";
  case UpdateEventKind::RetryScheduled: return "retry-scheduled";
  case UpdateEventKind::Applied: return "applied";
  case UpdateEventKind::TimedOut: return "timed-out";
  case UpdateEventKind::WatchdogExpired: return "watchdog-expired";
  case UpdateEventKind::Rescued: return "rescued";
  case UpdateEventKind::Degraded: return "degraded";
  case UpdateEventKind::DeferredResumed: return "deferred-resumed";
  case UpdateEventKind::DrainStarted: return "drain-started";
  case UpdateEventKind::DrainEnded: return "drain-ended";
  case UpdateEventKind::LazyCommitted: return "lazy-committed";
  case UpdateEventKind::CanaryArmed: return "canary-armed";
  case UpdateEventKind::CanaryBreached: return "canary-breached";
  case UpdateEventKind::CanaryRetired: return "canary-retired";
  case UpdateEventKind::CanarySettled: return "canary-settled";
  case UpdateEventKind::RevertStarted: return "revert-started";
  case UpdateEventKind::Reverted: return "reverted";
  case UpdateEventKind::RevertFailed: return "revert-failed";
  case UpdateEventKind::CodeVersionInstalled: return "codeversion-installed";
  case UpdateEventKind::CodeVersionSwitched: return "codeversion-switched";
  case UpdateEventKind::CodeVersionReverted: return "codeversion-reverted";
  }
  unreachable("bad update event kind");
}

std::string UpdateEvent::str() const {
  std::string Out =
      "[" + std::to_string(Tick) + "] " + updateEventKindName(Kind);
  if (Value != 0)
    Out += " (" + std::to_string(Value) + ")";
  if (!Detail.empty())
    Out += ": " + Detail;
  return Out;
}

std::string UpdateTrace::str() const {
  std::string Out;
  for (const UpdateEvent &E : Events) {
    Out += E.str();
    Out += '\n';
  }
  return Out;
}
