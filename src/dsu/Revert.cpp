#include "dsu/Revert.h"

#include "dsu/Transformers.h"
#include "dsu/Upt.h"
#include "runtime/ObjectModel.h"
#include "support/Telemetry.h"
#include "support/TelemetryStream.h"

using namespace jvolve;

CanaryHealthSample CanaryHealthSample::take(VM &TheVM) {
  CanaryHealthSample S;
  S.Traps = TheVM.stats().Traps;
  S.Shed = TheVM.net().shedTotal();
  // The VM-level failure log is cumulative across engine replacements,
  // unlike the per-engine dsu.lazy.failed_transforms counter.
  S.LazyFailed = TheVM.lazyFailureLog().size();
  S.Responses = TheVM.net().totalResponses();
  S.LatencySumTicks = TheVM.net().latencySumTicks();
  if (Telemetry::isEnabled()) {
    WindowAggregator &W = Telemetry::global().windows();
    WindowAggregator::HistSeries H;
    if (W.enabled() && W.histSeries(metrics::NetLatencyTicks, H) &&
        H.LastCount > 0)
      S.WindowLatencyMean = H.Mean;
  }
  return S;
}

std::vector<CanaryBreach>
jvolve::evaluateCanaryHealth(const CanaryPolicy &Policy,
                             const CanaryHealthSample &Baseline,
                             const CanaryHealthSample &AtArm,
                             const CanaryHealthSample &Now) {
  std::vector<CanaryBreach> Out;
  auto Delta = [](uint64_t A, uint64_t B) {
    return static_cast<int64_t>(A - B);
  };

  int64_t Traps = Delta(Now.Traps, AtArm.Traps);
  if (Policy.MaxTrapDelta >= 0 && Traps > Policy.MaxTrapDelta)
    Out.push_back({"traps", std::to_string(Traps) + " trap(s) within the "
                            "window (budget " +
                            std::to_string(Policy.MaxTrapDelta) + ")"});

  int64_t Failed = Delta(Now.LazyFailed, AtArm.LazyFailed);
  if (Policy.MaxFailedTransforms >= 0 && Failed > Policy.MaxFailedTransforms)
    Out.push_back({"failed-transforms",
                   std::to_string(Failed) + " failed lazy transform(s) "
                   "within the window (budget " +
                       std::to_string(Policy.MaxFailedTransforms) + ")"});

  int64_t Shed = Delta(Now.Shed, AtArm.Shed);
  if (Policy.MaxShedDelta >= 0 && Shed > Policy.MaxShedDelta)
    Out.push_back({"shed", std::to_string(Shed) + " request(s) shed within "
                           "the window (budget " +
                           std::to_string(Policy.MaxShedDelta) + ")"});

  if (Policy.MaxLatencyDeltaPct >= 0) {
    uint64_t WinResponses = Now.Responses - AtArm.Responses;
    if (WinResponses > 0 && Baseline.Responses > 0) {
      double BaseMean = static_cast<double>(Baseline.LatencySumTicks) /
                        static_cast<double>(Baseline.Responses);
      // Prefer the telemetry window's mean when aggregation is live — the
      // same number the jvolve-serve --stats view shows, so operator and
      // canary judge the update by one measurement path. Fall back to the
      // cumulative-delta mean otherwise.
      double WinMean =
          Now.WindowLatencyMean >= 0
              ? Now.WindowLatencyMean
              : static_cast<double>(Now.LatencySumTicks -
                                    AtArm.LatencySumTicks) /
                    static_cast<double>(WinResponses);
      double Limit = BaseMean * (1.0 + Policy.MaxLatencyDeltaPct / 100.0);
      if (BaseMean > 0 && WinMean > Limit)
        Out.push_back(
            {"latency", "window mean latency " + std::to_string(WinMean) +
                            " ticks exceeds baseline " +
                            std::to_string(BaseMean) + " ticks by more than " +
                            std::to_string(Policy.MaxLatencyDeltaPct) + "%"});
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// CanaryUndoLog
//===----------------------------------------------------------------------===//

void CanaryUndoLog::captureObject(VM &TheVM, Ref OldCopy, Ref NewObj) {
  ClassRegistry &Reg = TheVM.registry();
  const RtClass &OldCls = Reg.cls(classOf(OldCopy));
  const RtClass &NewCls = Reg.cls(classOf(NewObj));
  UndoEntry E;
  for (const RtField &OF : OldCls.InstanceFields) {
    const RtField *NF = NewCls.findInstanceField(OF.Name);
    if (NF && NF->Ty == OF.Ty)
      continue; // survives the update; nothing to retain
    UndoField F;
    F.Name = OF.Name;
    F.IsRef = OF.IsRef;
    if (OF.IsRef)
      F.RefVal = getRefAt(OldCopy, OF.Offset);
    else
      F.IntVal = getIntAt(OldCopy, OF.Offset);
    E.Fields.push_back(std::move(F));
  }
  if (E.Fields.empty())
    return; // pure additions/body changes leave nothing to undo
  E.Obj = NewObj;
  Index[NewObj] = Entries.size();
  Entries.push_back(std::move(E));
}

void CanaryUndoLog::captureStatics(VM &TheVM, const std::string &ClassName,
                                   const std::string &RenamedOld) {
  ClassRegistry &Reg = TheVM.registry();
  ClassId OldId = Reg.idOf(RenamedOld);
  if (OldId == InvalidClassId)
    return;
  const RtClass &Old = Reg.cls(OldId);
  ClassId NewId = Reg.idOf(ClassName); // invalid when the class was deleted
  const RtClass *New = NewId != InvalidClassId ? &Reg.cls(NewId) : nullptr;
  UndoStatics S;
  S.ClassName = ClassName;
  for (const RtField &OF : Old.StaticFields) {
    const RtField *NF = New ? New->findStaticField(OF.Name) : nullptr;
    if (NF && NF->Ty == OF.Ty)
      continue; // the class transformer carries it over
    const Slot &V = Old.Statics[OF.Offset];
    UndoField F;
    F.Name = OF.Name;
    F.IsRef = OF.IsRef;
    if (OF.IsRef)
      F.RefVal = V.RefVal;
    else
      F.IntVal = V.IntVal;
    S.Fields.push_back(std::move(F));
  }
  if (!S.Fields.empty())
    Statics.push_back(std::move(S));
}

void CanaryUndoLog::restoreInto(TransformCtx &Ctx, Ref To) const {
  auto It = Index.find(To);
  if (It == Index.end())
    return;
  for (const UndoField &F : Entries[It->second].Fields) {
    if (F.IsRef)
      Ctx.setRef(To, F.Name, F.RefVal);
    else
      Ctx.setInt(To, F.Name, F.IntVal);
  }
}

void CanaryUndoLog::restoreStatics(TransformCtx &Ctx,
                                   const std::string &ClassName) const {
  for (const UndoStatics &S : Statics) {
    if (S.ClassName != ClassName)
      continue;
    for (const UndoField &F : S.Fields) {
      if (F.IsRef)
        Ctx.setStaticRef(ClassName, F.Name, F.RefVal);
      else
        Ctx.setStaticInt(ClassName, F.Name, F.IntVal);
    }
  }
}

void CanaryUndoLog::restoreStaticsDirect(VM &TheVM,
                                         const std::string &ClassName) const {
  ClassRegistry &Reg = TheVM.registry();
  ClassId Id = Reg.idOf(ClassName);
  if (Id == InvalidClassId)
    return;
  RtClass &Cls = Reg.cls(Id);
  for (const UndoStatics &S : Statics) {
    if (S.ClassName != ClassName)
      continue;
    for (const UndoField &F : S.Fields) {
      const RtField *SF = Cls.findStaticField(F.Name);
      if (!SF)
        continue;
      Cls.Statics[SF->Offset] =
          F.IsRef ? Slot::ofRef(F.RefVal) : Slot::ofInt(F.IntVal);
    }
  }
}

void CanaryUndoLog::visitRoots(const std::function<void(Ref &)> &Visit) {
  for (UndoEntry &E : Entries) {
    if (E.Obj)
      Visit(E.Obj);
    for (UndoField &F : E.Fields)
      if (F.IsRef && F.RefVal)
        Visit(F.RefVal);
  }
  for (UndoStatics &S : Statics)
    for (UndoField &F : S.Fields)
      if (F.IsRef && F.RefVal)
        Visit(F.RefVal);
}

void CanaryUndoLog::reindex() {
  Index.clear();
  for (size_t I = 0; I < Entries.size(); ++I)
    Index[Entries[I].Obj] = I;
}

void CanaryUndoLog::clear() {
  Entries.clear();
  Statics.clear();
  Index.clear();
}

//===----------------------------------------------------------------------===//
// Reverse-bundle synthesis
//===----------------------------------------------------------------------===//

ActiveMethodMapping jvolve::invertActiveMapping(const ActiveMethodMapping &M) {
  ActiveMethodMapping Out;
  Out.Method = M.Method;
  for (const auto &[OldPc, NewPc] : M.PcMap)
    Out.PcMap[NewPc] = OldPc;
  return Out;
}

UpdateBundle jvolve::synthesizeReverseBundle(VM &TheVM,
                                             const ClassSet &OldProgram,
                                             const UpdateBundle &Forward,
                                             const CanaryUndoLog *Undo,
                                             const std::string &ReverseTag) {
  UpdateBundle RB = Upt::prepare(TheVM.program(), OldProgram, ReverseTag);

  for (const std::string &Name : RB.Spec.ClassUpdates) {
    ObjectTransformer UserObj;
    auto OIt = Forward.InverseObjectTransformers.find(Name);
    if (OIt != Forward.InverseObjectTransformers.end())
      UserObj = OIt->second;
    // A registered inverse is trusted in full; the fallback is the default
    // same-name same-type copy plus the undo log's removed-field restore.
    RB.ObjectTransformers[Name] = [UserObj, Undo](TransformCtx &Ctx, Ref To,
                                                  Ref From) {
      if (UserObj) {
        UserObj(Ctx, To, From);
        return;
      }
      TransformerRunner::applyDefaultObjectTransform(Ctx.vm(), To, From);
      if (Undo)
        Undo->restoreInto(Ctx, To);
    };

    ClassTransformer UserCls;
    auto CIt = Forward.InverseClassTransformers.find(Name);
    if (CIt != Forward.InverseClassTransformers.end())
      UserCls = CIt->second;
    std::string Renamed = RB.renamedOldClass(Name);
    RB.ClassTransformers[Name] = [Name, Renamed, UserCls,
                                  Undo](TransformCtx &Ctx) {
      if (UserCls) {
        UserCls(Ctx);
        return;
      }
      TransformerRunner::applyDefaultClassTransform(Ctx.vm(), Name, Renamed);
      if (Undo)
        Undo->restoreStatics(Ctx, Name);
    };
  }

  // Methods the forward update replaced on-stack may be on-stack again
  // when the revert runs; walking them back needs the mirror-image PC
  // maps. Frame transformers do not auto-invert — those frames fall back
  // to the default slot-by-slot carry-over.
  for (const auto &[Key, M] : Forward.ActiveMappings) {
    (void)Key;
    RB.addActiveMapping(invertActiveMapping(M));
  }
  return RB;
}

uint64_t jvolve::countResidualNewVersionObjects(
    VM &TheVM, const std::vector<ClassId> &NewVersionClassIds) {
  Heap &H = TheVM.heap();
  ClassRegistry &Reg = TheVM.registry();
  uint64_t Residual = 0;
  size_t Scan = 0;
  while (Scan < H.bytesAllocated()) {
    Ref Obj = H.currentSpaceStart() + Scan;
    ObjectHeader *Hdr = header(Obj);
    for (ClassId Id : NewVersionClassIds)
      if (Hdr->Class == Id) {
        ++Residual;
        break;
      }
    size_t Bytes = objectBytes(Reg.cls(Hdr->Class), Obj);
    Scan += (Bytes + 7) & ~size_t(7);
  }
  return Residual;
}
