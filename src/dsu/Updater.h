//===----------------------------------------------------------------------===//
///
/// \file
/// The Jvolve updater: applies an UpdateBundle to a running VM.
///
/// The five-step process of paper §3: (1) the UPT prepared the bundle;
/// (2) the user signals the VM (schedule()); (3) the VM stops threads at a
/// DSU safe point — yield flag, stack scans for restricted methods, return
/// barriers on the topmost restricted frame of each thread, on-stack
/// replacement for base-compiled category-(2) methods, and a configurable
/// timeout (the paper uses 15 seconds); (4) modified classes are loaded and
/// installed (old versions renamed with the version prefix, stale compiled
/// code invalidated); (5) a DSU-extended whole-heap collection finds every
/// instance of an updated class and the class/object transformers
/// initialize the new versions.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_UPDATER_H
#define JVOLVE_DSU_UPDATER_H

#include "dsu/Analysis.h"
#include "dsu/Quiescence.h"
#include "dsu/Revert.h"
#include "dsu/UpdateBundle.h"
#include "dsu/UpdateTrace.h"
#include "heap/Collector.h"
#include "support/Error.h"
#include "support/Stopwatch.h"
#include "vm/VM.h"

#include <set>
#include <string>

namespace jvolve {

/// Outcome of an update request.
enum class UpdateStatus {
  None,
  Pending,               ///< scheduled, waiting for a DSU safe point
  Applied,               ///< installed successfully
  TimedOut,              ///< no DSU safe point within the timeout
  RejectedNotVerifiable, ///< the new program version fails verification
  RejectedHierarchy,     ///< class hierarchy permutation (unsupported, §2.2)
  RolledBack,            ///< install failed; snapshot restored, old version runs
  FailedTransformer,     ///< a transformer failed; rolled back to old version
  Degraded,              ///< method-body subset applied; remainder deferred
  RejectedByAnalysis,    ///< static analysis predicted the update impossible
  Reverted,              ///< canary window reverted; old version reinstalled
  RevertFailed,          ///< canary revert could not be applied
  RejectedCanaryBusy,    ///< refused: a canary revert is already in flight
};

/// Total number of UpdateStatus values (for exhaustive round-trip tests).
inline constexpr size_t NumUpdateStatuses = 13;

const char *updateStatusName(UpdateStatus S);

/// Parses a status name back to the enum. \returns false when unknown.
bool updateStatusByName(const std::string &Name, UpdateStatus &Out);

/// Updater knobs.
struct UpdateOptions {
  /// Virtual-tick budget for reaching a DSU safe point (the paper's
  /// configurable 15-second timeout).
  uint64_t TimeoutTicks = 2'000'000;
  /// Use on-stack replacement to lift category-(2) restrictions for
  /// base-compiled methods (paper §3.2). Off = return barriers only.
  bool EnableOsr = true;
  /// §3.5 optimization: place old-version duplicates in a dedicated block
  /// reclaimed right after transformation instead of to-space (where the
  /// next collection would reclaim them).
  bool UseOldCopySpace = false;
  /// Caps the old-copy block at this many bytes (0 = worst case: the
  /// whole live heap, which can never overflow). An undersized cap makes
  /// the exhaustion path reachable: the update rolls back with a
  /// recoverable "old-copy space exhausted" error instead of aborting.
  size_t OldCopyReserveLimitBytes = 0;
  /// Lazy object transformation (dsu/LazyTransform.h): commit the update
  /// with untransformed shells, run each object transformer on first touch
  /// behind a read barrier, and drain the remainder from a background VM
  /// thread. Trades the eager transform pause for a transient per-access
  /// overhead that decays to exactly zero once the barrier retires.
  /// JVOLVE_LAZY=1 forces this on for every scheduled update.
  bool LazyTransform = false;
  /// Lazy mode: background transforms per drainer quantum.
  size_t LazyDrainBatch = 32;
  /// Lazy mode, impact-bounded drain (dsu/Synthesis.h): at engine arm time,
  /// bulk-settle every pending shell whose class the update-impact analysis
  /// proves untouched (identical instance layout and no custom object
  /// transformer) so the drain loop and read barrier only ever see objects
  /// the update can actually reach. Certification runs partially, checking
  /// classes inside the impact closure in depth and the rest structurally.
  bool ImpactBoundedDrain = false;
  /// Run HeapVerifier plus a registry-consistency check after every applied
  /// *or rolled-back* update (certification). Benchmarks can turn it off.
  bool CertifyAfterUpdate = true;
  /// Safe-point timeouts retry up to this many times before resolving
  /// TimedOut; each retry extends the deadline by TimeoutTicks scaled by
  /// BackoffFactor^retry, so transient starvation no longer immediately
  /// fails the update. 0 (the default) keeps the paper's single-deadline
  /// behavior: a busy server times out rather than waiting it out.
  int MaxRetries = 0;
  double BackoffFactor = 2.0;
  /// Escalation ladder rung 2: when the deadline expires, force-yield
  /// sleeping/blocked threads pinned by restricted frames and synthesize
  /// identity ActiveMethodMappings for changed-but-body-compatible methods
  /// (same instruction count, base-compiled, nothing inlined), then grant
  /// one more deadline. Off by default: the paper's protocol never touches
  /// a thread it cannot park.
  bool EnableRescue = false;
  /// Escalation ladder rung 3: when rescue is exhausted, apply the
  /// method-body-only subset of the bundle via EcUpdater (HotSwap-style),
  /// record the deferred class/field changes, and leave the full update
  /// resumable via resumeDeferred(). Off by default.
  bool AllowDegraded = false;
  /// Put the VM's network into drain mode while the update is pending:
  /// accepts are gated, in-flight connections run to request boundaries,
  /// and jvolve-serve-style admission limits shed the overflow. Off by
  /// default.
  bool DrainNetwork = false;
  /// Run the static update-safety analyzer (dsu/Analysis.h) before
  /// scheduling, seeding entry reachability from the methods currently on
  /// live thread stacks. A predicted-impossible update is refused with the
  /// analysis report (RejectedByAnalysis) instead of burning a pause
  /// attempt and timing out. Off by default: the paper's protocol always
  /// tries.
  bool AnalyzeFirst = false;
  /// Post-commit canary window (dsu/Canary.h): when enabled (a nonzero
  /// tick or request bound), a successful commit arms a CanaryController
  /// on the VM that watches trap rate, failed lazy transforms, shed
  /// counts, and latency deltas against these SLO thresholds, and
  /// automatically reverts the update through the normal pipeline on a
  /// breach. Disabled by default.
  CanaryPolicy CanaryWindow;
  /// Per-method code versioning (dsu/CodeVersion.h): a strictly body-only
  /// bundle — no class/field/signature changes, no removed methods, the
  /// same shape EcUpdater::supports certifies and the analyzer's EC
  /// verdict identifies — commits through the CodeVersionManager: one
  /// atomic active-version switch observed at the existing call-entry and
  /// back-edge poll points, no VM-wide safe point, no DSU collection.
  /// Bundles with class-shape changes ignore this flag and take the full
  /// stop-the-world pipeline. JVOLVE_CODEVERSION=1 forces this on for
  /// every scheduled update.
  bool CodeVersioning = false;
};

/// Everything measured while applying one update.
struct UpdateResult {
  UpdateStatus Status = UpdateStatus::None;
  std::string Message;

  int SafePointAttempts = 0;
  int ReturnBarriersInstalled = 0;
  int OsrReplacements = 0;
  /// §3.5 extension: changed methods replaced while running via a
  /// user-supplied ActiveMethodMapping.
  int ActiveFramesRemapped = 0;
  uint64_t TicksToSafePoint = 0;

  double ClassLoadMs = 0;  ///< rename + metadata install + invalidation
  double GcMs = 0;         ///< DSU collection (copying phase)
  double TransformMs = 0;  ///< running class + object transformers
  double TotalPauseMs = 0; ///< full disruption: install + GC + transform
  uint64_t ObjectsTransformed = 0;
  CollectionStats Gc;

  /// Certification outcome (post-update heap + registry validation).
  /// Certified stays false when certification was skipped via the options.
  bool Certified = false;
  std::vector<std::string> CertificationProblems;
  double CertifyMs = 0;

  /// Transaction bookkeeping: time spent restoring the snapshot after a
  /// failed install, and safe-point deadline extensions consumed.
  double RollbackMs = 0;
  int RetriesUsed = 0;

  /// Watchdog findings from the last deadline expiry (empty when the
  /// update quiesced before the deadline), and the highest escalation
  /// ladder rung the update climbed to.
  QuiescenceReport Quiescence;
  QuiescenceRung ResolvedRung = QuiescenceRung::None;
  /// Rescue rung bookkeeping: frames released via synthesized identity
  /// mappings, and sleeping/blocked threads whose wake was cut short.
  int RescuedFrames = 0;
  int ForcedYields = 0;
  /// Degrade rung bookkeeping: method bodies the EcUpdater swapped, and a
  /// description of every change that was deferred.
  std::vector<std::string> DegradedApplied;
  std::vector<std::string> DegradedDeferred;
  /// Drain bookkeeping (DrainNetwork option): requests shed while this
  /// update held the network in drain mode, and the wall-clock duration of
  /// the drain window.
  uint64_t RequestsShed = 0;
  double DrainMs = 0;

  /// Pre-update static analysis (AnalyzeFirst option): the report, and
  /// whether the gate ran at all.
  AnalysisReport Analysis;
  bool AnalysisRan = false;

  /// Lazy mode (LazyTransform option): the update committed with this many
  /// untransformed shells still registered; the engine installed on the VM
  /// drains them after the pause. ObjectsTransformed stays 0 at commit —
  /// the dsu.lazy.* metrics account for the deferred work.
  bool LazyInstalled = false;
  uint64_t LazyPendingAtCommit = 0;

  /// Canary mode (CanaryWindow option): the commit armed an observation
  /// window on the VM; query VM::canary() for its progress and outcome.
  bool CanaryArmed = false;

  /// Code-versioning fast path (CodeVersioning option): the bundle was
  /// strictly body-only and committed through the CodeVersionManager —
  /// SafePointAttempts stays 0 and TotalPauseMs measures only the
  /// per-method switch, independent of heap size.
  bool CodeVersioned = false;
  int CodeVersionedMethods = 0;

  /// Structured event log of the whole update lifecycle.
  UpdateTrace Trace;
};

/// Applies dynamic updates to one VM.
class Updater {
public:
  explicit Updater(VM &TheVM) : TheVM(TheVM) {}
  ~Updater();

  /// Signals the VM that an update is available. Validation failures
  /// resolve immediately (result() holds the rejection); otherwise the
  /// update is applied during subsequent VM execution.
  void schedule(UpdateBundle Bundle, UpdateOptions Opts);
  void schedule(UpdateBundle Bundle) { schedule(std::move(Bundle), UpdateOptions()); }

  bool pending() const { return Result.Status == UpdateStatus::Pending; }
  const UpdateResult &result() const { return Result; }

  /// schedule() plus driving the VM until the update resolves. Application
  /// threads keep processing their work while the safe point is sought. If
  /// the VM goes idle with barriers still armed, the update times out.
  UpdateResult applyNow(UpdateBundle Bundle, UpdateOptions Opts,
                        uint64_t MaxDriveTicks = 50'000'000);
  UpdateResult applyNow(UpdateBundle Bundle) {
    return applyNow(std::move(Bundle), UpdateOptions());
  }

  /// True when a degraded update left its full bundle pending-and-
  /// resumable: the method-body subset is live, the class/field remainder
  /// waits for quieter conditions.
  bool hasDeferred() const { return HasDeferredUpdate; }

  /// Reschedules the deferred remainder of a degraded update (the original
  /// full bundle — its body swaps are idempotent over the degraded state)
  /// and drives the VM until it resolves.
  UpdateResult resumeDeferred(UpdateOptions Opts,
                              uint64_t MaxDriveTicks = 50'000'000);

  /// Explicit operator revert: asks the VM's open canary window (if any)
  /// to revert now and drives the VM until the revert resolves. \returns
  /// the revert's result — Reverted on success, RevertFailed when there is
  /// no open window or the reverse update could not be applied.
  UpdateResult revert(const std::string &Reason = "explicit operator revert",
                      uint64_t MaxDriveTicks = 50'000'000);

private:
  /// Frame classification relative to the pending update.
  enum class FrameKind {
    Free,       ///< may keep running its current compiled code
    OsrNeeded,  ///< base-compiled category (2): replace on stack
    MappedOsr,  ///< changed method with an ActiveMethodMapping (§3.5)
    Restricted, ///< category (1)/(3), inlined restricted code, or
                ///< opt-compiled category (2)
  };
  FrameKind classifyFrame(const Frame &F) const;

  /// \returns the mapping applicable to \p F, or nullptr.
  const ActiveMethodMapping *mappingFor(const Frame &F) const;

  void onSafePoint();
  void onTick(uint64_t Now);
  void onReturnBarrier(VMThread &T);

  /// One DSU-safe-point attempt with every thread parked.
  void attempt();
  /// Full installation (all stacks clear modulo OSR-able frames), run as a
  /// transaction: snapshot, install, and roll back on any UpdateError.
  /// Mapped frames carry the ActiveMethodMapping resolved at scan time
  /// (the owner class name changes during installation).
  using MappedFrame = std::pair<Frame *, const ActiveMethodMapping *>;
  void install(const std::vector<Frame *> &OsrFrames,
               const std::vector<MappedFrame> &MappedFrames);
  void abortUpdate(UpdateStatus Status, const std::string &Message);
  void finish(UpdateStatus Status, const std::string &Message);

  /// The escalation ladder, entered when the safe-point deadline expires
  /// (or the quiescence-watchdog-expiry fault forces it): diagnose, then
  /// Retry -> Rescue -> Degrade -> Abort, taking the first rung whose
  /// preconditions hold.
  void escalate(uint64_t Now, bool Forced,
                const char *AbortReason =
                    "no DSU safe point reached within the timeout");
  /// Rung 2: synthesize identity mappings for changed-but-body-compatible
  /// pinned frames and cut short the waits of pinned sleeping/blocked-recv
  /// threads so their barriers can fire.
  void rescue(uint64_t Now);
  /// Rung 3: apply the method-body-only subset via EcUpdater. \returns
  /// false when no applicable subset exists (the ladder falls through to
  /// Abort).
  bool degrade(uint64_t Now);
  /// Code-versioning fast path (CodeVersioning option): commits a strictly
  /// body-only bundle through the CodeVersionManager, synchronously inside
  /// schedule() — no safe-point hunt, no hooks, no snapshot. Resolves the
  /// update Applied (or RolledBack when the codeversion-install fault
  /// unwound the batch).
  void installVersioned();

  /// Begins/ends the DrainNetwork window around a pending update.
  void beginDrain();
  void endDrain();

  /// Re-resolves name-level restriction sets to current method/class ids.
  void resolveIdSets();

  //===--- Transaction machinery -------------------------------------------===//

  /// Value snapshot of every root location the DSU collection rewrites:
  /// thread frames (including code pointers OSR replaces), exit values,
  /// and pinned handles. Statics live in the registry snapshot.
  struct FrameSnapshot {
    MethodId Method = InvalidMethodId;
    std::shared_ptr<CompiledMethod> Code;
    uint32_t Pc = 0;
    bool ReturnBarrier = false;
    std::vector<Slot> Locals;
    std::vector<Slot> Stack;
  };
  struct ThreadSnapshot {
    VMThread *Thread = nullptr;
    std::vector<FrameSnapshot> Frames;
    Slot ExitValue;
    bool HasExitValue = false;
  };
  struct RootSnapshot {
    std::vector<ThreadSnapshot> Threads;
    std::vector<Ref> Pinned;
    /// Values of an open canary window's undo-log refs, in visit order; an
    /// aborted collection forwards them into the discarded to-space.
    std::vector<Ref> CanaryRefs;
  };

  RootSnapshot snapshotRoots() const;
  void restoreRoots(const RootSnapshot &S);

  /// The install steps proper (4a–5); throws UpdateError on failure.
  void installSteps(const std::vector<Frame *> &OsrFrames,
                    const std::vector<MappedFrame> &MappedFrames);

  /// Restores all three snapshots, clears forwarding marks left in the
  /// surviving from-space, certifies, and resolves the update to
  /// RolledBack or FailedTransformer.
  void rollback(const ClassRegistry::RegistrySnapshot &RegSnap,
                const Heap::TxSnapshot &HeapSnap, const RootSnapshot &Roots,
                const UpdateError &E);

  /// Clears FlagForwarded from every object in the (restored) current
  /// space; the aborted collection left marks on everything it visited.
  void clearForwardingMarks();

  /// Runs HeapVerifier + ClassRegistry::checkConsistency and records the
  /// outcome in Result and the trace.
  void certify();

  /// Records the telemetry span for the phase ending now. Phases are
  /// delimited by consecutive marks against one clock (PhaseClock, started
  /// at install() entry), so the emitted spans tile the pause: their sum
  /// matches TotalPauseMs up to the bookkeeping after the last mark.
  void markPhase(const std::string &Phase, int64_t Value = 0,
                 const std::string &Detail = "");

  Stopwatch PhaseClock;
  double LastPhaseMark = 0;

  VM &TheVM;
  UpdateBundle Bundle;
  UpdateOptions Opts;
  UpdateResult Result;

  uint64_t ScheduleTick = 0;
  uint64_t DeadlineTick = 0;
  /// When non-zero, re-request a yield at this tick (set after an injected
  /// safe-point starvation resumed the application).
  uint64_t ReattemptTick = 0;

  /// Ladder state for the pending update.
  bool RescueTried = false;
  /// Drain state: active flag, wall clock, and the shed baseline at drain
  /// start (shedTotal is cumulative per Network).
  bool DrainActive = false;
  Stopwatch DrainWatch;
  uint64_t DrainStartTick = 0;
  uint64_t ShedAtDrainStart = 0;
  /// A degraded update's full bundle, kept resumable.
  UpdateBundle DeferredBundle;
  bool HasDeferredUpdate = false;
  bool ResumingDeferred = false;

  /// Lazy-mode handoff from installSteps (which owns the DSU collection's
  /// update log) to the commit point in install(), where the engine is
  /// built and adopted by the VM.
  std::vector<UpdateLogEntry> LazyLog;
  std::unordered_map<Ref, size_t> LazyIndex;
  bool LazyCommitPending = false;

  /// Canary-mode staging (CanaryWindow option), captured between schedule
  /// and commit, handed to the CanaryController armed at commit: the
  /// pre-update program and health baseline, removed-field/static values
  /// extracted from the forward collection's old copies, and the ids of
  /// every new-version class (for the residual-object convergence count).
  ClassSet CanaryPreProgram;
  CanaryHealthSample CanaryBaseline;
  CanaryUndoLog CanaryUndo;
  std::vector<ClassId> CanaryNewClassIds;
  /// Arms the controller at commit (install() calls this after certify).
  void armCanary();
  /// Extracts the undo log and new-version id set from a just-collected
  /// update (installSteps calls this before obsolete statics drop).
  void stageCanaryUndo(const std::vector<UpdateLogEntry> &UpdateLog);

  // Id-level views of the spec, resolved against the current registry.
  std::set<MethodId> RestrictedMethodIds; ///< categories (1) and (3)
  std::set<MethodId> IndirectMethodIds;   ///< category (2)
  std::set<ClassId> UpdatedOldClassIds;   ///< class updates + deletions
};

} // namespace jvolve

#endif // JVOLVE_DSU_UPDATER_H
