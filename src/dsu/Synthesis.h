//===----------------------------------------------------------------------===//
///
/// \file
/// Transformer synthesis and update-impact bounding.
///
/// The paper's §3.4 object/class transformers are handwritten; the UPT
/// only installs a *default* (copy same-name same-type members). This
/// module writes the boring transformers itself from static evidence and
/// tells the operator exactly which fields still need a human rule:
///
///  * same-name same-type fields copy (the default, made explicit);
///  * a dropped old field and an added new field of the same type are
///    paired as a *rename* when the copy-chain analysis over the two
///    versions' `<init>` bodies (dsu/Dataflow.h paramFieldFlows) shows
///    the same constructor parameter position flowing into both — the
///    default transformer would silently zero these;
///  * a same-name field whose type changed (Fig. 2's String[] ->
///    EmailAddress[]) is *flagged*: a value conversion genuinely needs a
///    human rule, and the synthesized transformer leaves the default
///    value exactly like the UPT default does;
///  * ambiguous rename candidates (several same-type pairs, no chain
///    evidence) are flagged rather than guessed.
///
/// The same pass bounds the update's *impact*: the set of classes whose
/// instances or statics the update (GC remap + transformers) can touch,
/// and the subset of updated classes whose instance layout is provably
/// unchanged — those objects are pure bitwise copies, so the lazy-drain
/// engine may settle them in bulk and skip them in the drain loop, and
/// post-update certification may scan impacted classes only.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_SYNTHESIS_H
#define JVOLVE_DSU_SYNTHESIS_H

#include "dsu/UpdateBundle.h"
#include "support/FaultInjector.h"

#include <set>
#include <string>
#include <vector>

namespace jvolve {

/// What the synthesized transformer does with one new-version field.
enum class FieldAction {
  Copy,    ///< same name, same type: copy old -> new
  Rename,  ///< copy-chain-proven rename: copy from the old name
  Keep,    ///< genuinely new field: keep the default value
  Flagged, ///< needs a human rule; the synthesized transformer keeps the
           ///< default value (matching the UPT default's behavior)
};

const char *fieldActionName(FieldAction A);

/// One synthesized field mapping (instance or static).
struct FieldMapping {
  std::string NewField;
  std::string OldField; ///< source field; empty for Keep
  std::string NewType;
  std::string OldType; ///< empty for Keep
  FieldAction Action = FieldAction::Copy;
  bool IsStatic = false;
  std::string Note; ///< rename evidence or the reason a field was flagged
};

/// The synthesized plan for one updated class.
struct ClassPlan {
  std::string Name;
  std::vector<FieldMapping> Fields;
  /// Instance layout (flattened inherited field list: names and types)
  /// identical between versions — the object transform is a pure copy.
  bool LayoutUnchanged = false;
  /// The synth-transformer-field fault corrupted one mapping.
  bool Faulted = false;

  size_t count(FieldAction A, bool Static) const;
  bool needsHumanRule() const;
};

/// Everything synthesis inferred for one update.
struct SynthesisReport {
  std::vector<ClassPlan> Classes;

  /// Classes the update can touch: updated classes, added classes, and
  /// every class reachable through the reference fields the synthesized
  /// transformers read or write (peeled array element classes included).
  std::set<std::string> ImpactClasses;
  /// Updated classes whose instance transform is provably a pure copy
  /// (LayoutUnchanged and no custom transformer can change that) — the
  /// lazy-drain engine's bulk-settle set.
  std::set<std::string> UntouchedClasses;

  size_t NumCopies = 0;
  size_t NumRenames = 0;
  size_t NumFlagged = 0;

  const ClassPlan *plan(const std::string &Name) const;
  /// Field names (Class.field) that need a human rule.
  std::vector<std::string> flaggedFields() const;

  std::string table() const;
  std::string json() const;
};

/// Synthesizes transformers for one old -> new program pair.
class TransformerSynthesis {
public:
  /// Both sets must contain the built-ins and outlive the synthesis.
  TransformerSynthesis(const ClassSet &Old, const ClassSet &New)
      : Old(Old), New(New) {}

  /// Builds the per-class plans for every class in \p Spec.ClassUpdates.
  /// \p Faults, when given, is probed once per inferred instance-field
  /// mapping (the synth-transformer-field chaos site); a firing probe
  /// corrupts that mapping so the emitted transformer fails at run time.
  SynthesisReport synthesize(const UpdateSpec &Spec,
                             FaultInjector *Faults = nullptr) const;

  /// Installs the synthesized object transformers (and class transformers
  /// where the static plan goes beyond the default copy) into \p B for
  /// every planned class *without* a handwritten entry. Handwritten
  /// transformers always win.
  static void installTransformers(UpdateBundle &B, const SynthesisReport &R);

  /// The runtime mirror of SynthesisReport::ImpactClasses, computable
  /// from what the updater holds at certify time (the new program and the
  /// spec alone).
  static std::set<std::string> impactClasses(const ClassSet &New,
                                             const UpdateSpec &Spec);

private:
  const ClassSet &Old;
  const ClassSet &New;
};

/// Records the report into the dsu.synth.* counters and dsu.impact.*
/// gauges (no-op when telemetry is disabled).
void recordSynthesisMetrics(const SynthesisReport &R);

} // namespace jvolve

#endif // JVOLVE_DSU_SYNTHESIS_H
