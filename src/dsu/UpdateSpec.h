//===----------------------------------------------------------------------===//
///
/// \file
/// Update specifications: the output of the Update Preparation Tool.
///
/// The UPT groups changes into the three categories of paper §3.1:
/// *class updates* (signature changes: fields or method set or superclass),
/// *method body updates* (same signature, new bytecode), and *indirect
/// method updates* (bytecode unchanged but referencing updated classes, so
/// their compiled form embeds stale offsets). The spec also carries the
/// user blacklist (category (3) restricted methods, §3.2) and the summary
/// counters the paper tabulates in Tables 2-4.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_UPDATESPEC_H
#define JVOLVE_DSU_UPDATESPEC_H

#include <string>
#include <vector>

namespace jvolve {

/// Names one method.
struct MethodRef {
  std::string ClassName;
  std::string Name;
  std::string Sig;

  std::string key() const { return ClassName + "." + Name + Sig; }
  bool operator==(const MethodRef &O) const = default;
  bool operator<(const MethodRef &O) const { return key() < O.key(); }
};

/// Change counters in the shape of the paper's Tables 2-4. A field whose
/// type changed is counted as one deletion plus one addition (Fig. 2's
/// String[] -> EmailAddress[] change); modifier-only changes are counted in
/// FieldsModifierChanged and do not appear in the add/del columns.
struct UpdateSummary {
  int ClassesAdded = 0;
  int ClassesDeleted = 0;
  int ClassesChanged = 0; ///< any member change (signature or body)
  int MethodsAdded = 0;
  int MethodsDeleted = 0;
  int MethodsBodyChanged = 0; ///< the "x" of the paper's x/y notation
  int MethodsSigChanged = 0;  ///< the "y" of the paper's x/y notation
  int FieldsAdded = 0;
  int FieldsDeleted = 0;
  int FieldsModifierChanged = 0;

  /// Renders "x/y" for the changed-methods column.
  std::string methodsChangedCell() const {
    return std::to_string(MethodsBodyChanged) + "/" +
           std::to_string(MethodsSigChanged);
  }
};

/// Everything the updater needs to know about one release-to-release diff.
struct UpdateSpec {
  std::vector<std::string> AddedClasses;
  std::vector<std::string> DeletedClasses;

  /// Classes whose own definition changed signature.
  std::vector<std::string> DirectClassUpdates;
  /// DirectClassUpdates plus every transitive subclass (an updated parent
  /// changes the layout of all descendants, paper §2.2).
  std::vector<std::string> ClassUpdates;

  /// Same signature, different bytecode (category (1) together with the
  /// changed/deleted methods of class updates).
  std::vector<MethodRef> MethodBodyUpdates;

  /// Methods of class-updated or deleted classes that no longer exist with
  /// the same signature in the new version (restricted; category (1)).
  std::vector<MethodRef> RemovedMethods;

  /// Category (2): bytecode unchanged but references an updated class.
  std::vector<MethodRef> IndirectMethods;

  /// Category (3): user-specified restricted methods.
  std::vector<MethodRef> Blacklist;

  UpdateSummary Summary;

  bool isClassUpdated(const std::string &Name) const {
    for (const std::string &C : ClassUpdates)
      if (C == Name)
        return true;
    return false;
  }

  /// True when nothing at all changed.
  bool empty() const {
    return AddedClasses.empty() && DeletedClasses.empty() &&
           ClassUpdates.empty() && MethodBodyUpdates.empty();
  }
};

} // namespace jvolve

#endif // JVOLVE_DSU_UPDATESPEC_H
