//===----------------------------------------------------------------------===//
///
/// \file
/// Quiescence watchdog: structured diagnosis of safe-point failures.
///
/// The paper's liveness story ends at "we installed a return barrier on
/// PoolThread.run(), but this barrier is never triggered" (§4.2) — prose an
/// operator had to reconstruct by hand. The watchdog turns that narrative
/// into data: when the updater's safe-point deadline expires, it walks the
/// scheduler's threads and produces a QuiescenceReport naming, per
/// offending thread, its state (running / sleeping / blocked in recv), the
/// restricted frame(s) pinning the update, and *why* each frame is
/// restricted — including the statically detectable "this method can never
/// return" case behind both of the updates Jvolve cannot apply.
///
/// The report feeds the updater's escalation ladder (Retry -> Rescue ->
/// Degrade -> Abort, see Updater.h) and is returned in UpdateResult so
/// tools and benches can print why an update failed instead of just that
/// it timed out.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_DSU_QUIESCENCE_H
#define JVOLVE_DSU_QUIESCENCE_H

#include "dsu/UpdateBundle.h"
#include "threads/Thread.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace jvolve {

class VM;

/// Why a frame pins the update (cannot be released by barriers/OSR alone).
enum class QuiescenceBlockCause : uint8_t {
  InfiniteLoop,     ///< changed method whose body can never return
  ChangedMethod,    ///< category (1): changed method active on the stack
  RemovedMethod,    ///< category (1): deleted method active on the stack
  Blacklisted,      ///< category (3): user-restricted method
  InlinedRestricted, ///< caller inlined a restricted body
  OptimizedIndirect, ///< opt-compiled category (2): OSR cannot lift it
};

const char *quiescenceBlockCauseName(QuiescenceBlockCause C);

/// The updater's escalation ladder. Rungs are tried in order when the
/// safe-point deadline expires; UpdateResult records the highest rung the
/// update climbed to.
enum class QuiescenceRung : uint8_t {
  None,    ///< deadline never expired
  Retry,   ///< deadline extended with backoff (existing behavior)
  Rescue,  ///< force-yields + synthesized identity remaps
  Degrade, ///< method-body-only subset applied via EcUpdater
  Abort,   ///< clean abort; report returned to the caller
};

const char *quiescenceRungName(QuiescenceRung R);

/// One restricted frame pinning a thread.
struct QuiescenceFrameInfo {
  size_t FrameIndex = 0; ///< position from the bottom of the stack
  MethodRef Method;
  std::string QualifiedName; ///< "Class.method(sig)" for display
  uint32_t Pc = 0;
  QuiescenceBlockCause Cause = QuiescenceBlockCause::ChangedMethod;
  bool BarrierArmed = false;
  /// True when the frame could be released by synthesizing an identity
  /// ActiveMethodMapping: the method's only restriction is a changed body
  /// of identical length, base-compiled with nothing inlined. The Rescue
  /// rung acts on exactly these frames.
  bool RescuableBodySwap = false;
};

/// One thread that failed to reach an unrestricted safe point.
struct QuiescenceThreadInfo {
  ThreadId Id = 0;
  std::string Name;
  ThreadState State = ThreadState::Runnable;
  uint64_t WakeTick = 0; ///< meaningful for Sleeping / BlockedRecv
  std::vector<QuiescenceFrameInfo> PinningFrames;
};

/// The watchdog's findings at one deadline expiry.
struct QuiescenceReport {
  bool Diagnosed = false; ///< false until the watchdog actually ran
  uint64_t ScheduleTick = 0;
  uint64_t DeadlineTick = 0;
  uint64_t ReportTick = 0;
  int Attempts = 0;  ///< safe-point attempts made before the expiry
  bool Forced = false; ///< expiry injected via quiescence-watchdog-expiry
  std::vector<QuiescenceThreadInfo> Threads;

  bool diagnosed() const { return Diagnosed; }

  /// Qualified names of every method diagnosed as never returning, without
  /// duplicates — the "why the two impossible updates fail" headline.
  std::vector<std::string> loopingMethods() const;

  /// Multi-line human-readable rendering.
  std::string str() const;
};

/// \returns true when \p Code contains no return instruction of any kind —
/// the method can never leave the stack by returning, so a return barrier
/// on it will never fire (the paper's two inapplicable updates).
bool methodNeverReturns(const CompiledMethod &Code);

/// Walks the scheduler's threads against a pending update's restriction
/// sets and produces the report. Stateless beyond the borrowed references;
/// construct one per diagnosis.
class QuiescenceWatchdog {
public:
  QuiescenceWatchdog(VM &TheVM, const UpdateBundle &Bundle,
                     const std::set<MethodId> &RestrictedMethodIds,
                     const std::set<ClassId> &UpdatedOldClassIds,
                     bool OsrEnabled)
      : TheVM(TheVM), Bundle(Bundle), RestrictedMethodIds(RestrictedMethodIds),
        UpdatedOldClassIds(UpdatedOldClassIds), OsrEnabled(OsrEnabled) {}

  QuiescenceReport diagnose(uint64_t ScheduleTick, uint64_t DeadlineTick,
                            int Attempts, bool Forced) const;

  /// \returns true when \p F's only restriction is a changed body of
  /// identical length in base-compiled code — an identity pc map releases
  /// it. Shared between diagnosis and the updater's Rescue rung.
  bool rescuableBodySwap(const Frame &F) const;

private:
  VM &TheVM;
  const UpdateBundle &Bundle;
  const std::set<MethodId> &RestrictedMethodIds;
  const std::set<ClassId> &UpdatedOldClassIds;
  bool OsrEnabled;
};

} // namespace jvolve

#endif // JVOLVE_DSU_QUIESCENCE_H
