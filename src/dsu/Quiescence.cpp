#include "dsu/Quiescence.h"

#include "support/Error.h"
#include "vm/VM.h"

#include <algorithm>

using namespace jvolve;

const char *jvolve::quiescenceBlockCauseName(QuiescenceBlockCause C) {
  switch (C) {
  case QuiescenceBlockCause::InfiniteLoop: return "infinite-loop";
  case QuiescenceBlockCause::ChangedMethod: return "changed-method";
  case QuiescenceBlockCause::RemovedMethod: return "removed-method";
  case QuiescenceBlockCause::Blacklisted: return "blacklisted";
  case QuiescenceBlockCause::InlinedRestricted: return "inlined-restricted";
  case QuiescenceBlockCause::OptimizedIndirect: return "optimized-indirect";
  }
  unreachable("bad quiescence block cause");
}

const char *jvolve::quiescenceRungName(QuiescenceRung R) {
  switch (R) {
  case QuiescenceRung::None: return "none";
  case QuiescenceRung::Retry: return "retry";
  case QuiescenceRung::Rescue: return "rescue";
  case QuiescenceRung::Degrade: return "degrade";
  case QuiescenceRung::Abort: return "abort";
  }
  unreachable("bad quiescence rung");
}

bool jvolve::methodNeverReturns(const CompiledMethod &Code) {
  for (const RInstr &I : Code.Code)
    if (I.Op == ROp::RetVoid || I.Op == ROp::RetI || I.Op == ROp::RetA)
      return false;
  return true;
}

std::vector<std::string> QuiescenceReport::loopingMethods() const {
  std::vector<std::string> Out;
  for (const QuiescenceThreadInfo &T : Threads)
    for (const QuiescenceFrameInfo &F : T.PinningFrames)
      if (F.Cause == QuiescenceBlockCause::InfiniteLoop &&
          std::find(Out.begin(), Out.end(), F.QualifiedName) == Out.end())
        Out.push_back(F.QualifiedName);
  return Out;
}

/// Rendering detail per cause; the infinite-loop wording matches the abort
/// message so operators see one vocabulary.
static std::string causeText(const QuiescenceFrameInfo &F) {
  switch (F.Cause) {
  case QuiescenceBlockCause::InfiniteLoop:
    return "changed method never returns (infinite loop)";
  case QuiescenceBlockCause::ChangedMethod:
    return "changed method on stack";
  case QuiescenceBlockCause::RemovedMethod:
    return "removed method on stack";
  case QuiescenceBlockCause::Blacklisted:
    return "blacklisted (restricted by the update spec)";
  case QuiescenceBlockCause::InlinedRestricted:
    return "caller inlined a restricted method body";
  case QuiescenceBlockCause::OptimizedIndirect:
    return "opt-compiled code references an updated class (no OSR)";
  }
  unreachable("bad quiescence block cause");
}

std::string QuiescenceReport::str() const {
  std::string Out = "quiescence report @ tick " + std::to_string(ReportTick) +
                    " (scheduled @ " + std::to_string(ScheduleTick) +
                    ", deadline @ " + std::to_string(DeadlineTick) + ", " +
                    std::to_string(Attempts) + " attempt(s)";
  if (Forced)
    Out += ", forced by injection";
  Out += "):\n";
  if (Threads.empty()) {
    Out += "  no thread pins the update\n";
    return Out;
  }
  for (const QuiescenceThreadInfo &T : Threads) {
    Out += "  thread '" + T.Name + "' (" + threadStateName(T.State);
    if (T.State == ThreadState::Sleeping || T.State == ThreadState::BlockedRecv)
      Out += ", wake @ " + std::to_string(T.WakeTick);
    Out += "): pinned by " + std::to_string(T.PinningFrames.size()) +
           " frame(s)\n";
    for (const QuiescenceFrameInfo &F : T.PinningFrames) {
      Out += "    #" + std::to_string(F.FrameIndex) + " " + F.QualifiedName +
             " @ pc " + std::to_string(F.Pc) + ": " + causeText(F);
      if (F.BarrierArmed)
        Out += " [barrier armed]";
      if (F.RescuableBodySwap)
        Out += " [rescuable: identity remap]";
      Out += '\n';
    }
  }
  return Out;
}

/// Replicates Updater::mappingFor: an operator-supplied mapping that covers
/// the frame's current pc releases it, so it must not be reported.
static const ActiveMethodMapping *mappingFor(const VM &TheVM,
                                             const UpdateBundle &Bundle,
                                             const Frame &F) {
  if (Bundle.ActiveMappings.empty())
    return nullptr;
  if (F.Code->T != Tier::Baseline || !F.Code->Inlined.empty())
    return nullptr;
  const ClassRegistry &Reg = const_cast<VM &>(TheVM).registry();
  const RtMethod &M = Reg.method(F.Method);
  MethodRef Ref{Reg.cls(M.Owner).Name, M.Name, M.Sig};
  auto It = Bundle.ActiveMappings.find(Ref.key());
  if (It == Bundle.ActiveMappings.end() || !It->second.PcMap.count(F.Pc))
    return nullptr;
  return &It->second;
}

bool QuiescenceWatchdog::rescuableBodySwap(const Frame &F) const {
  if (!RestrictedMethodIds.count(F.Method))
    return false;
  if (F.Code->T != Tier::Baseline || !F.Code->Inlined.empty())
    return false;
  ClassRegistry &Reg = TheVM.registry();
  const RtMethod &M = Reg.method(F.Method);
  MethodRef Ref{Reg.cls(M.Owner).Name, M.Name, M.Sig};
  if (std::find(Bundle.Spec.MethodBodyUpdates.begin(),
                Bundle.Spec.MethodBodyUpdates.end(),
                Ref) == Bundle.Spec.MethodBodyUpdates.end())
    return false;
  const ClassDef *NewCls = Bundle.NewProgram.find(Ref.ClassName);
  const MethodDef *NewBody =
      NewCls ? NewCls->findMethod(Ref.Name, Ref.Sig) : nullptr;
  // Identical instruction counts give baseline code a 1:1 pc map — the
  // same invariant OSR relies on (paper §3.2).
  return NewBody && NewBody->Code.size() == F.Code->Code.size();
}

QuiescenceReport QuiescenceWatchdog::diagnose(uint64_t ScheduleTick,
                                              uint64_t DeadlineTick,
                                              int Attempts,
                                              bool Forced) const {
  QuiescenceReport R;
  R.Diagnosed = true;
  R.ScheduleTick = ScheduleTick;
  R.DeadlineTick = DeadlineTick;
  R.ReportTick = TheVM.scheduler().ticks();
  R.Attempts = Attempts;
  R.Forced = Forced;

  ClassRegistry &Reg = TheVM.registry();
  for (auto &T : TheVM.scheduler().threads()) {
    if (T->stopped())
      continue;
    QuiescenceThreadInfo TI;
    TI.Id = T->Id;
    TI.Name = T->Name;
    TI.State = T->State;
    TI.WakeTick = T->WakeTick;

    for (size_t I = 0; I < T->Frames.size(); ++I) {
      const Frame &F = T->Frames[I];
      QuiescenceFrameInfo FI;
      FI.FrameIndex = I;
      FI.Pc = F.Pc;
      FI.BarrierArmed = F.ReturnBarrier;
      const RtMethod &M = Reg.method(F.Method);
      FI.Method = {Reg.cls(M.Owner).Name, M.Name, M.Sig};
      // Class-qualified so the report (and the abort message built from it)
      // names the method unambiguously, e.g. "PoolThread.run(I)V".
      FI.QualifiedName = Reg.cls(M.Owner).Name + "." + M.qualifiedName();

      if (RestrictedMethodIds.count(F.Method)) {
        if (mappingFor(TheVM, Bundle, F))
          continue; // an operator mapping releases this frame
        if (methodNeverReturns(*F.Code)) {
          FI.Cause = QuiescenceBlockCause::InfiniteLoop;
        } else if (std::count(Bundle.Spec.RemovedMethods.begin(),
                              Bundle.Spec.RemovedMethods.end(), FI.Method)) {
          FI.Cause = QuiescenceBlockCause::RemovedMethod;
        } else if (std::count(Bundle.Spec.Blacklist.begin(),
                              Bundle.Spec.Blacklist.end(), FI.Method)) {
          FI.Cause = QuiescenceBlockCause::Blacklisted;
        } else {
          FI.Cause = QuiescenceBlockCause::ChangedMethod;
        }
        FI.RescuableBodySwap = rescuableBodySwap(F);
        TI.PinningFrames.push_back(std::move(FI));
        continue;
      }

      bool InlinedRestricted = false;
      for (MethodId Inl : F.Code->Inlined)
        if (RestrictedMethodIds.count(Inl)) {
          InlinedRestricted = true;
          break;
        }
      if (InlinedRestricted) {
        FI.Cause = QuiescenceBlockCause::InlinedRestricted;
        TI.PinningFrames.push_back(std::move(FI));
        continue;
      }

      bool RefsUpdated = false;
      for (ClassId C : F.Code->ReferencedClasses)
        if (UpdatedOldClassIds.count(C)) {
          RefsUpdated = true;
          break;
        }
      if (!RefsUpdated)
        continue;
      // Category (2): OSR lifts base-compiled frames with nothing inlined;
      // only the rest pin the update.
      if (OsrEnabled && F.Code->T == Tier::Baseline && F.Code->Inlined.empty())
        continue;
      FI.Cause = QuiescenceBlockCause::OptimizedIndirect;
      TI.PinningFrames.push_back(std::move(FI));
    }

    if (!TI.PinningFrames.empty())
      R.Threads.push_back(std::move(TI));
  }
  return R;
}
