//===----------------------------------------------------------------------===//
///
/// \file
/// Object layout in the MiniVM heap.
///
/// Every object starts with an ObjectHeader (class id, status flags, and a
/// word used as the forwarding pointer during copying collection). Scalar
/// instances are followed by 8-byte field slots at the offsets recorded in
/// RtClass::InstanceFields. Arrays are followed by a 64-bit length and then
/// 8-byte elements.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_RUNTIME_OBJECTMODEL_H
#define JVOLVE_RUNTIME_OBJECTMODEL_H

#include "runtime/ClassRegistry.h"
#include "runtime/Ids.h"
#include "runtime/Slot.h"

#include <cassert>
#include <cstring>

namespace jvolve {

/// Header prefix of every heap object.
struct ObjectHeader {
  ClassId Class;
  uint32_t Flags;
  Ref Forward; ///< forwarding pointer; valid when FlagForwarded is set
};

/// Object status flags.
enum : uint32_t {
  FlagForwarded = 1u << 0, ///< header holds a forwarding pointer
  FlagArray = 1u << 1,     ///< array layout (length + elements)
  /// DSU: freshly allocated new-version object whose transformer has not
  /// run yet; its fields are all zero/null (paper §3.4).
  FlagUninitialized = 1u << 2,
  FlagRefArray = 1u << 3, ///< array whose elements are references
  /// DSU lazy mode: the object is an untransformed shell registered with
  /// the LazyTransformEngine; a read barrier transforms it on first touch.
  /// Always set together with FlagUninitialized; both clear when the
  /// transformer runs (on demand or from the background drainer).
  FlagLazyPending = 1u << 4,
};

inline constexpr size_t ObjectHeaderBytes = sizeof(ObjectHeader);
inline constexpr size_t SlotBytes = 8;
/// Array layout: header, 64-bit length, then elements.
inline constexpr size_t ArrayLengthOffset = ObjectHeaderBytes;
inline constexpr size_t ArrayElemsOffset = ObjectHeaderBytes + 8;

inline ObjectHeader *header(Ref Obj) {
  assert(Obj && "null object");
  return reinterpret_cast<ObjectHeader *>(Obj);
}

inline ClassId classOf(Ref Obj) { return header(Obj)->Class; }

inline int64_t getIntAt(Ref Obj, uint32_t Offset) {
  int64_t V;
  std::memcpy(&V, Obj + Offset, sizeof(V));
  return V;
}

inline void setIntAt(Ref Obj, uint32_t Offset, int64_t V) {
  std::memcpy(Obj + Offset, &V, sizeof(V));
}

inline Ref getRefAt(Ref Obj, uint32_t Offset) {
  Ref V;
  std::memcpy(&V, Obj + Offset, sizeof(V));
  return V;
}

inline void setRefAt(Ref Obj, uint32_t Offset, Ref V) {
  std::memcpy(Obj + Offset, &V, sizeof(V));
}

inline int64_t arrayLength(Ref Arr) {
  return getIntAt(Arr, ArrayLengthOffset);
}

inline uint32_t arrayElemOffset(int64_t Index) {
  return static_cast<uint32_t>(ArrayElemsOffset +
                               static_cast<uint64_t>(Index) * SlotBytes);
}

/// Total byte size of \p Obj given its class \p Cls.
inline size_t objectBytes(const RtClass &Cls, Ref Obj) {
  if (!Cls.IsArray)
    return Cls.InstanceSize;
  return ArrayElemsOffset +
         static_cast<size_t>(arrayLength(Obj)) * SlotBytes;
}

/// Byte size of an array of \p Length elements.
inline size_t arrayBytes(int64_t Length) {
  return ArrayElemsOffset + static_cast<size_t>(Length) * SlotBytes;
}

} // namespace jvolve

#endif // JVOLVE_RUNTIME_OBJECTMODEL_H
