//===----------------------------------------------------------------------===//
///
/// \file
/// Tagged value slots.
///
/// Every local variable, operand-stack entry, and static field occupies one
/// Slot. The tag tells the garbage collector which slots hold references —
/// the runtime equivalent of the stack maps Jikes RVM emits at VM safe
/// points (paper §3.4).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_RUNTIME_SLOT_H
#define JVOLVE_RUNTIME_SLOT_H

#include <cstdint>

namespace jvolve {

/// A heap reference: raw address of an object's header within the heap, or
/// nullptr for Java null.
using Ref = uint8_t *;

/// One tagged value.
struct Slot {
  int64_t IntVal = 0;
  Ref RefVal = nullptr;
  bool IsRef = false;

  static Slot ofInt(int64_t V) {
    Slot S;
    S.IntVal = V;
    return S;
  }

  static Slot ofRef(Ref R) {
    Slot S;
    S.RefVal = R;
    S.IsRef = true;
    return S;
  }
};

} // namespace jvolve

#endif // JVOLVE_RUNTIME_SLOT_H
