//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime class model: loaded classes ("RVMClass" in Jikes RVM terms),
/// field layouts with hard-coded byte offsets, virtual-method tables (TIBs),
/// static storage, and method metadata.
///
/// The DSU layer manipulates this registry directly when installing an
/// update (paper §3.3): old classes are renamed with a version prefix and
/// marked obsolete, new metadata is installed under the original name, and
/// compiled code that embedded now-stale offsets is invalidated.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_RUNTIME_CLASSREGISTRY_H
#define JVOLVE_RUNTIME_CLASSREGISTRY_H

#include "bytecode/ClassDef.h"
#include "runtime/Ids.h"
#include "runtime/Slot.h"

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace jvolve {

struct CompiledMethod; // exec/CompiledMethod.h

/// Runtime view of one field.
struct RtField {
  std::string Name;
  Type Ty;
  uint32_t Offset = 0; ///< byte offset (instance) or statics slot (static)
  bool IsRef = false;
  bool IsFinal = false;
  Access Visibility = Access::Public;
  std::string Declaring; ///< class that declared this field
};

/// Runtime metadata for one method ("MethodInfo").
struct RtMethod {
  MethodId Id = InvalidMethodId;
  ClassId Owner = InvalidClassId;
  std::string Name;
  std::string Sig;
  bool IsStatic = false;
  Access Visibility = Access::Public;
  std::shared_ptr<const MethodDef> Def; ///< bytecode (owned copy)
  /// Quickened code; null means "compile on next invoke" — the invalidation
  /// hook the DSU layer uses.
  std::shared_ptr<CompiledMethod> Code;
  uint64_t InvokeCount = 0;
  /// Set when the owning class was replaced by an update; obsolete methods
  /// are never recompiled.
  bool Obsolete = false;

  std::string qualifiedName() const { return Name + Sig; }
};

/// Runtime metadata for one class ("RVMClass").
struct RtClass {
  ClassId Id = InvalidClassId;
  std::string Name;
  ClassId Super = InvalidClassId;

  /// Instance fields including inherited ones, ascending by offset.
  std::vector<RtField> InstanceFields;
  /// Static fields declared on this class only.
  std::vector<RtField> StaticFields;
  /// Static storage (this class's slice of the "Java Table of Contents").
  std::vector<Slot> Statics;

  /// The TIB: virtual dispatch table, slot -> MethodId.
  std::vector<MethodId> VTable;
  /// "name+sig" -> TIB slot, including inherited entries.
  std::unordered_map<std::string, int> VTableIndex;
  /// Methods declared on this class (static and instance).
  std::vector<MethodId> Methods;

  uint32_t InstanceSize = 0; ///< bytes, including the object header

  bool IsArray = false;
  Type ElemTy;            ///< element type when IsArray
  bool ElemIsRef = false; ///< elements are traced when true

  /// True for renamed old versions after a dynamic update.
  bool Obsolete = false;

  /// \returns the instance field named \p Name, or nullptr.
  const RtField *findInstanceField(const std::string &Name) const;
  /// \returns the static field named \p Name declared here, or nullptr.
  RtField *findStaticField(const std::string &Name);
  const RtField *findStaticField(const std::string &Name) const;
};

/// Owns every loaded class and method; maps names to current versions.
class ClassRegistry {
public:
  /// Loads \p Def (and, recursively, its superclass from \p Context if not
  /// yet loaded). \returns the new class id. Aborts if a class of the same
  /// name is already loaded.
  ClassId loadClass(const ClassDef &Def, const ClassSet &Context);

  /// Loads every class in \p Set (which must include the built-ins).
  void loadAll(const ClassSet &Set);

  /// \returns the id bound to \p Name, or InvalidClassId.
  ClassId idOf(const std::string &Name) const;

  RtClass &cls(ClassId Id);
  const RtClass &cls(ClassId Id) const;
  RtMethod &method(MethodId Id);
  const RtMethod &method(MethodId Id) const;

  size_t numClasses() const { return Classes.size(); }
  size_t numMethods() const { return Methods.size(); }

  /// \returns the array class for elements of type \p Elem, creating it on
  /// demand (like array classes materializing at runtime).
  ClassId arrayClassOf(const Type &Elem);

  /// Resolves \p Name+\p Sig starting at \p Cls and walking superclasses.
  MethodId resolveMethod(ClassId Cls, const std::string &Name,
                         const std::string &Sig) const;

  /// Resolves an instance field by name along the superclass chain (the
  /// chain is baked into InstanceFields, so this is a direct lookup).
  const RtField *resolveInstanceField(ClassId Cls,
                                      const std::string &Name) const;

  /// Resolves a static field along the superclass chain. \p DeclaringOut
  /// receives the class that owns the storage.
  RtField *resolveStaticField(ClassId Cls, const std::string &Name,
                              ClassId *DeclaringOut);

  /// \returns true if \p Sub is \p Super or transitively extends it.
  bool isSubclassOf(ClassId Sub, ClassId Super) const;

  //===--------------------------------------------------------------------===//
  // DSU hooks (paper §3.3)
  //===--------------------------------------------------------------------===//

  /// Renames class \p Id to \p NewName and marks it (and its methods)
  /// obsolete. The original name becomes free for the replacement class.
  void renameClassForUpdate(ClassId Id, const std::string &NewName);

  /// Replaces the bytecode of \p Id with \p NewBody and invalidates its
  /// compiled code (method-body update).
  void setMethodBody(MethodId Id, const MethodDef &NewBody);

  /// Drops compiled code for \p Id so the JIT recompiles on next invoke.
  void invalidateCode(MethodId Id);

  /// Clears static storage of obsolete classes so dead program state does
  /// not keep objects alive after transformers ran.
  void dropObsoleteStatics();

  /// Enumerates every static reference slot of every non-obsolete-or-
  /// obsolete class as GC roots. \p Visit is called with each ref location.
  void visitStaticRoots(const std::function<void(Ref &)> &Visit);

  //===--------------------------------------------------------------------===//
  // Update transaction support. Installing an update appends classes and
  // methods, rebinds names, marks old versions obsolete, swaps method
  // bodies, and drops compiled code. A RegistrySnapshot taken before step
  // (4) captures everything install can touch; restore() truncates the
  // appended entries and puts every pre-existing class and method back,
  // so a failed update leaves the registry exactly as it was.
  //===--------------------------------------------------------------------===//

  struct RegistrySnapshot {
    size_t NumClasses = 0;
    size_t NumMethods = 0;
    std::unordered_map<std::string, ClassId> ByName;

    struct ClassState {
      std::string Name;
      bool Obsolete = false;
      std::vector<Slot> Statics;
    };
    std::vector<ClassState> ClassStates;

    struct MethodState {
      std::shared_ptr<const MethodDef> Def;
      std::shared_ptr<CompiledMethod> Code;
      bool Obsolete = false;
      uint64_t InvokeCount = 0;
    };
    std::vector<MethodState> MethodStates;
  };

  RegistrySnapshot snapshot() const;
  void restore(const RegistrySnapshot &S);

  /// Structural self-check used by post-update certification: name map and
  /// class/method tables agree, ids are in range, superclass chains are
  /// acyclic, TIBs point at real methods, statics match their field lists.
  /// \returns a human-readable description of every violation (empty when
  /// the registry is consistent).
  std::vector<std::string> checkConsistency() const;

private:
  ClassId loadClassImpl(const ClassDef &Def, const ClassSet &Context,
                        std::vector<std::string> &Loading);

  std::vector<std::unique_ptr<RtClass>> Classes;
  std::vector<std::unique_ptr<RtMethod>> Methods;
  std::unordered_map<std::string, ClassId> ByName;
};

} // namespace jvolve

#endif // JVOLVE_RUNTIME_CLASSREGISTRY_H
