#include "runtime/ClassRegistry.h"

#include "bytecode/Builtins.h"
#include "runtime/ObjectModel.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <functional>

using namespace jvolve;

const RtField *RtClass::findInstanceField(const std::string &Name) const {
  // Instance fields include inherited ones; later (more-derived) entries
  // never shadow earlier ones (the verifier rejects shadowing), so a linear
  // scan is unambiguous.
  for (const RtField &F : InstanceFields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

RtField *RtClass::findStaticField(const std::string &Name) {
  for (RtField &F : StaticFields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const RtField *RtClass::findStaticField(const std::string &Name) const {
  for (const RtField &F : StaticFields)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

ClassId ClassRegistry::idOf(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? InvalidClassId : It->second;
}

RtClass &ClassRegistry::cls(ClassId Id) {
  assert(Id < Classes.size() && "invalid class id");
  return *Classes[Id];
}

const RtClass &ClassRegistry::cls(ClassId Id) const {
  assert(Id < Classes.size() && "invalid class id");
  return *Classes[Id];
}

RtMethod &ClassRegistry::method(MethodId Id) {
  assert(Id < Methods.size() && "invalid method id");
  return *Methods[Id];
}

const RtMethod &ClassRegistry::method(MethodId Id) const {
  assert(Id < Methods.size() && "invalid method id");
  return *Methods[Id];
}

ClassId ClassRegistry::loadClass(const ClassDef &Def,
                                 const ClassSet &Context) {
  std::vector<std::string> Loading;
  return loadClassImpl(Def, Context, Loading);
}

ClassId ClassRegistry::loadClassImpl(const ClassDef &Def,
                                     const ClassSet &Context,
                                     std::vector<std::string> &Loading) {
  if (ByName.count(Def.Name))
    fatalError("class '" + Def.Name + "' is already loaded");
  for (const std::string &Name : Loading)
    if (Name == Def.Name)
      fatalError("superclass cycle while loading '" + Def.Name + "'");
  Loading.push_back(Def.Name);

  // Ensure the superclass is loaded first.
  ClassId SuperId = InvalidClassId;
  if (!Def.Super.empty()) {
    SuperId = idOf(Def.Super);
    if (SuperId == InvalidClassId) {
      const ClassDef *SuperDef = Context.find(Def.Super);
      if (!SuperDef)
        fatalError("superclass '" + Def.Super + "' of '" + Def.Name +
                   "' not found");
      SuperId = loadClassImpl(*SuperDef, Context, Loading);
    }
  }

  auto Cls = std::make_unique<RtClass>();
  ClassId Id = static_cast<ClassId>(Classes.size());
  Cls->Id = Id;
  Cls->Name = Def.Name;
  Cls->Super = SuperId;

  // Instance field layout: superclass fields first (same offsets as in the
  // superclass, so compiled superclass code works on subclass instances),
  // then this class's fields.
  uint32_t NextOffset = static_cast<uint32_t>(ObjectHeaderBytes);
  if (SuperId != InvalidClassId) {
    const RtClass &Super = cls(SuperId);
    Cls->InstanceFields = Super.InstanceFields;
    NextOffset = Super.InstanceSize;
    Cls->VTable = Super.VTable;
    Cls->VTableIndex = Super.VTableIndex;
  }
  for (const FieldDef &F : Def.Fields) {
    if (F.IsStatic) {
      RtField S;
      S.Name = F.Name;
      S.Ty = F.type();
      S.Offset = static_cast<uint32_t>(Cls->Statics.size());
      S.IsRef = S.Ty.isReferenceLike();
      S.IsFinal = F.IsFinal;
      S.Visibility = F.Visibility;
      S.Declaring = Def.Name;
      Cls->StaticFields.push_back(S);
      Slot Init;
      Init.IsRef = S.IsRef;
      Cls->Statics.push_back(Init);
      continue;
    }
    RtField I;
    I.Name = F.Name;
    I.Ty = F.type();
    I.Offset = NextOffset;
    NextOffset += SlotBytes;
    I.IsRef = I.Ty.isReferenceLike();
    I.IsFinal = F.IsFinal;
    I.Visibility = F.Visibility;
    I.Declaring = Def.Name;
    Cls->InstanceFields.push_back(I);
  }
  Cls->InstanceSize = NextOffset;

  // Methods and the TIB.
  for (const MethodDef &M : Def.Methods) {
    auto RtM = std::make_unique<RtMethod>();
    MethodId MId = static_cast<MethodId>(Methods.size());
    RtM->Id = MId;
    RtM->Owner = Id;
    RtM->Name = M.Name;
    RtM->Sig = M.Sig;
    RtM->IsStatic = M.IsStatic;
    RtM->Visibility = M.Visibility;
    RtM->Def = std::make_shared<const MethodDef>(M);
    Methods.push_back(std::move(RtM));
    Cls->Methods.push_back(MId);

    if (!M.IsStatic) {
      std::string Key = M.Name + M.Sig;
      auto It = Cls->VTableIndex.find(Key);
      if (It != Cls->VTableIndex.end()) {
        Cls->VTable[static_cast<size_t>(It->second)] = MId; // override
      } else {
        Cls->VTableIndex[Key] = static_cast<int>(Cls->VTable.size());
        Cls->VTable.push_back(MId);
      }
    }
  }

  ByName[Def.Name] = Id;
  Classes.push_back(std::move(Cls));
  Loading.pop_back();
  return Id;
}

void ClassRegistry::loadAll(const ClassSet &Set) {
  for (const auto &[Name, Def] : Set.classes())
    if (idOf(Name) == InvalidClassId)
      loadClass(Def, Set);
}

ClassId ClassRegistry::arrayClassOf(const Type &Elem) {
  std::string Name = "[" + Elem.descriptor();
  ClassId Existing = idOf(Name);
  if (Existing != InvalidClassId)
    return Existing;

  auto Cls = std::make_unique<RtClass>();
  ClassId Id = static_cast<ClassId>(Classes.size());
  Cls->Id = Id;
  Cls->Name = Name;
  Cls->Super = idOf(ObjectClassName); // may be Invalid before builtins load
  Cls->IsArray = true;
  Cls->ElemTy = Elem;
  Cls->ElemIsRef = Elem.isReferenceLike();
  Cls->InstanceSize = static_cast<uint32_t>(ArrayElemsOffset);
  ByName[Name] = Id;
  Classes.push_back(std::move(Cls));
  return Id;
}

MethodId ClassRegistry::resolveMethod(ClassId Cls0, const std::string &Name,
                                      const std::string &Sig) const {
  ClassId Cur = Cls0;
  while (Cur != InvalidClassId) {
    const RtClass &C = cls(Cur);
    for (MethodId MId : C.Methods) {
      const RtMethod &M = method(MId);
      if (M.Name == Name && M.Sig == Sig)
        return MId;
    }
    Cur = C.Super;
  }
  return InvalidMethodId;
}

const RtField *
ClassRegistry::resolveInstanceField(ClassId Cls0,
                                    const std::string &Name) const {
  return cls(Cls0).findInstanceField(Name);
}

RtField *ClassRegistry::resolveStaticField(ClassId Cls0,
                                           const std::string &Name,
                                           ClassId *DeclaringOut) {
  ClassId Cur = Cls0;
  while (Cur != InvalidClassId) {
    RtClass &C = cls(Cur);
    if (RtField *F = C.findStaticField(Name)) {
      if (DeclaringOut)
        *DeclaringOut = Cur;
      return F;
    }
    Cur = C.Super;
  }
  return nullptr;
}

bool ClassRegistry::isSubclassOf(ClassId Sub, ClassId Super) const {
  ClassId Cur = Sub;
  while (Cur != InvalidClassId) {
    if (Cur == Super)
      return true;
    Cur = cls(Cur).Super;
  }
  return false;
}

void ClassRegistry::renameClassForUpdate(ClassId Id,
                                         const std::string &NewName) {
  RtClass &C = cls(Id);
  if (ByName.count(NewName))
    fatalError("rename target '" + NewName + "' already exists");
  auto It = ByName.find(C.Name);
  assert(It != ByName.end() && "class missing from name map");
  // Only unbind the original name if it still points at this class (a chain
  // of updates may have rebound it already).
  if (It->second == Id)
    ByName.erase(It);
  C.Name = NewName;
  C.Obsolete = true;
  ByName[NewName] = Id;
  for (MethodId MId : C.Methods) {
    RtMethod &M = method(MId);
    M.Obsolete = true;
    M.Code = nullptr;
  }
}

void ClassRegistry::setMethodBody(MethodId Id, const MethodDef &NewBody) {
  RtMethod &M = method(Id);
  assert(M.Name == NewBody.Name && M.Sig == NewBody.Sig &&
         "method-body update must preserve the signature");
  M.Def = std::make_shared<const MethodDef>(NewBody);
  M.Code = nullptr;
  M.InvokeCount = 0; // the paper lets the adaptive system re-profile
}

void ClassRegistry::invalidateCode(MethodId Id) { method(Id).Code = nullptr; }

void ClassRegistry::dropObsoleteStatics() {
  for (auto &C : Classes)
    if (C->Obsolete)
      for (Slot &S : C->Statics)
        if (S.IsRef)
          S.RefVal = nullptr;
}

void ClassRegistry::visitStaticRoots(
    const std::function<void(Ref &)> &Visit) {
  for (auto &C : Classes)
    for (Slot &S : C->Statics)
      if (S.IsRef && S.RefVal)
        Visit(S.RefVal);
}

ClassRegistry::RegistrySnapshot ClassRegistry::snapshot() const {
  RegistrySnapshot S;
  S.NumClasses = Classes.size();
  S.NumMethods = Methods.size();
  S.ByName = ByName;
  S.ClassStates.reserve(Classes.size());
  for (const auto &C : Classes)
    S.ClassStates.push_back({C->Name, C->Obsolete, C->Statics});
  S.MethodStates.reserve(Methods.size());
  for (const auto &M : Methods)
    S.MethodStates.push_back({M->Def, M->Code, M->Obsolete, M->InvokeCount});
  return S;
}

void ClassRegistry::restore(const RegistrySnapshot &S) {
  assert(Classes.size() >= S.NumClasses && Methods.size() >= S.NumMethods &&
         "registry shrank since the snapshot was taken");
  // Drop everything the failed install appended...
  Classes.resize(S.NumClasses);
  Methods.resize(S.NumMethods);
  ByName = S.ByName;
  // ...and undo the mutations to pre-existing entries: renames, obsolete
  // marks, replaced bytecode, invalidated code, cleared statics.
  for (size_t I = 0; I < S.NumClasses; ++I) {
    RtClass &C = *Classes[I];
    const RegistrySnapshot::ClassState &CS = S.ClassStates[I];
    C.Name = CS.Name;
    C.Obsolete = CS.Obsolete;
    C.Statics = CS.Statics;
  }
  for (size_t I = 0; I < S.NumMethods; ++I) {
    RtMethod &M = *Methods[I];
    const RegistrySnapshot::MethodState &MS = S.MethodStates[I];
    M.Def = MS.Def;
    M.Code = MS.Code;
    M.Obsolete = MS.Obsolete;
    M.InvokeCount = MS.InvokeCount;
  }
}

std::vector<std::string> ClassRegistry::checkConsistency() const {
  std::vector<std::string> Problems;
  auto Bad = [&](std::string Msg) { Problems.push_back(std::move(Msg)); };

  for (const auto &[Name, Id] : ByName) {
    if (Id >= Classes.size()) {
      Bad("name '" + Name + "' maps to out-of-range class id");
      continue;
    }
    if (Classes[Id]->Name != Name)
      Bad("name '" + Name + "' maps to class named '" + Classes[Id]->Name +
          "'");
  }

  for (size_t I = 0; I < Classes.size(); ++I) {
    const RtClass &C = *Classes[I];
    if (C.Id != static_cast<ClassId>(I))
      Bad("class '" + C.Name + "' has id " + std::to_string(C.Id) +
          " but sits at index " + std::to_string(I));
    auto It = ByName.find(C.Name);
    if (It == ByName.end() || It->second != C.Id)
      Bad("class '" + C.Name + "' is not bound to its name");
    if (C.Super != InvalidClassId && C.Super >= Classes.size())
      Bad("class '" + C.Name + "' has out-of-range superclass id");
    // Superclass chains must terminate (no cycles).
    ClassId Cur = C.Super;
    size_t Steps = 0;
    while (Cur != InvalidClassId && Cur < Classes.size()) {
      if (++Steps > Classes.size()) {
        Bad("superclass cycle reachable from '" + C.Name + "'");
        break;
      }
      Cur = Classes[Cur]->Super;
    }
    for (MethodId MId : C.VTable)
      if (MId >= Methods.size())
        Bad("class '" + C.Name + "' has an out-of-range TIB entry");
    for (MethodId MId : C.Methods) {
      if (MId >= Methods.size()) {
        Bad("class '" + C.Name + "' declares an out-of-range method id");
        continue;
      }
      if (Methods[MId]->Owner != C.Id)
        Bad("method '" + Methods[MId]->qualifiedName() +
            "' is declared by '" + C.Name + "' but owned by another class");
      if (C.Obsolete && !Methods[MId]->Obsolete)
        Bad("obsolete class '" + C.Name + "' has non-obsolete method '" +
            Methods[MId]->qualifiedName() + "'");
    }
    for (const RtField &F : C.StaticFields)
      if (F.Offset >= C.Statics.size())
        Bad("static field '" + C.Name + "." + F.Name +
            "' points past the statics table");
  }

  for (size_t I = 0; I < Methods.size(); ++I) {
    const RtMethod &M = *Methods[I];
    if (M.Id != static_cast<MethodId>(I))
      Bad("method '" + M.qualifiedName() + "' has id " +
          std::to_string(M.Id) + " but sits at index " + std::to_string(I));
    if (M.Owner >= Classes.size())
      Bad("method '" + M.qualifiedName() + "' has an out-of-range owner");
    if (!M.Def)
      Bad("method '" + M.qualifiedName() + "' has no bytecode");
  }

  return Problems;
}
