//===----------------------------------------------------------------------===//
///
/// \file
/// Identifier types for runtime entities (classes, methods, threads).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_RUNTIME_IDS_H
#define JVOLVE_RUNTIME_IDS_H

#include <cstdint>

namespace jvolve {

using ClassId = uint32_t;
using MethodId = uint32_t;
using ThreadId = uint32_t;

inline constexpr ClassId InvalidClassId = ~static_cast<ClassId>(0);
inline constexpr MethodId InvalidMethodId = ~static_cast<MethodId>(0);

} // namespace jvolve

#endif // JVOLVE_RUNTIME_IDS_H
