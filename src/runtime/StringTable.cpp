#include "runtime/StringTable.h"

#include "support/Error.h"

using namespace jvolve;

int64_t StringTable::intern(const std::string &Payload) {
  auto It = Index.find(Payload);
  if (It != Index.end())
    return It->second;
  int64_t Id = static_cast<int64_t>(Payloads.size());
  Payloads.push_back(Payload);
  Index.emplace(Payload, Id);
  return Id;
}

const std::string &StringTable::payload(int64_t Id) const {
  if (Id < 0 || static_cast<size_t>(Id) >= Payloads.size())
    fatalError("invalid string table id " + std::to_string(Id));
  return Payloads[static_cast<size_t>(Id)];
}
