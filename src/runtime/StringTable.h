//===----------------------------------------------------------------------===//
///
/// \file
/// The VM string table. String objects on the heap carry only an index into
/// this table (the hidden "$id" field); payloads are immutable and
/// deduplicated here, so the GC never traces character data.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_RUNTIME_STRINGTABLE_H
#define JVOLVE_RUNTIME_STRINGTABLE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace jvolve {

/// Interns string payloads and maps ids back to payloads.
class StringTable {
public:
  /// \returns the id of \p Payload, interning it if new.
  int64_t intern(const std::string &Payload);

  /// \returns the payload for \p Id; aborts on an invalid id.
  const std::string &payload(int64_t Id) const;

  size_t size() const { return Payloads.size(); }

private:
  std::vector<std::string> Payloads;
  std::unordered_map<std::string, int64_t> Index;
};

} // namespace jvolve

#endif // JVOLVE_RUNTIME_STRINGTABLE_H
