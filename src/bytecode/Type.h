//===----------------------------------------------------------------------===//
///
/// \file
/// Type descriptors for MiniVM bytecode.
///
/// MiniVM uses JVM-style descriptor strings: "I" (int), "V" (void),
/// "LUser;" (reference to class User), "[I" / "[LUser;" (arrays). Method
/// signatures look like "(ILUser;)V". The descriptor form keeps class
/// references symbolic, which is what the Update Preparation Tool diffs and
/// what the verifier resolves against a ClassSet.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_TYPE_H
#define JVOLVE_BYTECODE_TYPE_H

#include <string>
#include <vector>

namespace jvolve {

/// An immutable type descriptor.
class Type {
public:
  enum class Kind { Void, Int, Ref, Array };

  Type() : TheKind(Kind::Void), Desc("V") {}

  /// Parses \p Descriptor ("I", "V", "LName;", "[...") into a Type.
  /// Aborts on a malformed descriptor; use isValidDescriptor to pre-check.
  static Type parse(const std::string &Descriptor);

  /// \returns true if \p Descriptor is a well-formed type descriptor.
  static bool isValidDescriptor(const std::string &Descriptor);

  static Type voidTy() { return Type(Kind::Void, "V"); }
  static Type intTy() { return Type(Kind::Int, "I"); }
  static Type refTy(const std::string &ClassName) {
    return Type(Kind::Ref, "L" + ClassName + ";");
  }
  static Type arrayOf(const Type &Elem) {
    return Type(Kind::Array, "[" + Elem.descriptor());
  }

  Kind kind() const { return TheKind; }
  bool isVoid() const { return TheKind == Kind::Void; }
  bool isInt() const { return TheKind == Kind::Int; }
  bool isRef() const { return TheKind == Kind::Ref; }
  bool isArray() const { return TheKind == Kind::Array; }

  /// \returns true for types stored as heap references (classes and arrays).
  bool isReferenceLike() const { return isRef() || isArray(); }

  /// Class name of a Ref type ("User" for "LUser;"). Aborts otherwise.
  std::string className() const;

  /// Element type of an Array type. Aborts otherwise.
  Type elementType() const;

  /// The canonical descriptor string.
  const std::string &descriptor() const { return Desc; }

  bool operator==(const Type &Other) const { return Desc == Other.Desc; }
  bool operator!=(const Type &Other) const { return Desc != Other.Desc; }

private:
  Type(Kind K, std::string D) : TheKind(K), Desc(std::move(D)) {}

  Kind TheKind;
  std::string Desc;
};

/// A parsed method signature: parameter types and return type.
struct MethodSignature {
  std::vector<Type> Params;
  Type Return;

  /// Parses "(<param descriptors>)<return descriptor>". Aborts if malformed.
  static MethodSignature parse(const std::string &Descriptor);

  /// \returns true if \p Descriptor is a well-formed method signature.
  static bool isValidSignature(const std::string &Descriptor);

  /// Renders back to descriptor form.
  std::string descriptor() const;
};

} // namespace jvolve

#endif // JVOLVE_BYTECODE_TYPE_H
