#include "bytecode/ClassDef.h"

#include "support/Error.h"

using namespace jvolve;

const FieldDef *ClassDef::findField(const std::string &FieldName) const {
  for (const FieldDef &F : Fields)
    if (F.Name == FieldName)
      return &F;
  return nullptr;
}

const MethodDef *ClassDef::findMethod(const std::string &MethodName,
                                      const std::string &MethodSig) const {
  for (const MethodDef &M : Methods)
    if (M.Name == MethodName && (MethodSig.empty() || M.Sig == MethodSig))
      return &M;
  return nullptr;
}

MethodDef *ClassDef::findMethod(const std::string &MethodName,
                                const std::string &MethodSig) {
  for (MethodDef &M : Methods)
    if (M.Name == MethodName && (MethodSig.empty() || M.Sig == MethodSig))
      return &M;
  return nullptr;
}

void ClassSet::add(ClassDef Def) {
  if (Classes.count(Def.Name))
    fatalError("duplicate class '" + Def.Name + "' in class set");
  std::string Name = Def.Name;
  Classes.emplace(std::move(Name), std::move(Def));
}

void ClassSet::replace(ClassDef Def) {
  std::string Name = Def.Name;
  Classes[Name] = std::move(Def);
}

void ClassSet::remove(const std::string &Name) {
  if (!Classes.erase(Name))
    fatalError("removing unknown class '" + Name + "'");
}

const ClassDef *ClassSet::find(const std::string &Name) const {
  auto It = Classes.find(Name);
  return It == Classes.end() ? nullptr : &It->second;
}

ClassDef *ClassSet::find(const std::string &Name) {
  auto It = Classes.find(Name);
  return It == Classes.end() ? nullptr : &It->second;
}

const FieldDef *ClassSet::resolveField(const std::string &Name,
                                       const std::string &FieldName,
                                       std::string *DeclaringClass) const {
  for (const std::string &C : superChain(Name)) {
    const ClassDef *Def = find(C);
    if (!Def)
      break;
    if (const FieldDef *F = Def->findField(FieldName)) {
      if (DeclaringClass)
        *DeclaringClass = C;
      return F;
    }
  }
  return nullptr;
}

const MethodDef *ClassSet::resolveMethod(const std::string &Name,
                                         const std::string &MethodName,
                                         const std::string &MethodSig,
                                         std::string *DeclaringClass) const {
  for (const std::string &C : superChain(Name)) {
    const ClassDef *Def = find(C);
    if (!Def)
      break;
    if (const MethodDef *M = Def->findMethod(MethodName, MethodSig)) {
      if (DeclaringClass)
        *DeclaringClass = C;
      return M;
    }
  }
  return nullptr;
}

bool ClassSet::isSubclassOf(const std::string &Sub,
                            const std::string &Super) const {
  for (const std::string &C : superChain(Sub))
    if (C == Super)
      return true;
  return false;
}

std::vector<std::string> ClassSet::superChain(const std::string &Name) const {
  std::vector<std::string> Chain;
  std::string Cur = Name;
  while (!Cur.empty()) {
    // Guard against supers cycles; the verifier reports them properly.
    for (const std::string &Seen : Chain)
      if (Seen == Cur)
        return Chain;
    Chain.push_back(Cur);
    const ClassDef *Def = find(Cur);
    if (!Def)
      break;
    Cur = Def->Super;
  }
  return Chain;
}
