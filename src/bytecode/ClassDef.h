//===----------------------------------------------------------------------===//
///
/// \file
/// Class-file definitions: fields, methods, classes, and versioned class
/// sets. A ClassSet is a complete program version — the unit the Update
/// Preparation Tool diffs and the unit the VM loads.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_CLASSDEF_H
#define JVOLVE_BYTECODE_CLASSDEF_H

#include "bytecode/Instruction.h"
#include "bytecode/Type.h"

#include <map>
#include <string>
#include <vector>

namespace jvolve {

/// Java-style access modifiers. The VM enforces these during verification;
/// transformer functions run in a privileged context that bypasses them
/// (paper §2.3: the JastAdd extension that ignores access modifiers).
enum class Access : uint8_t { Public, Protected, Private };

/// A field declaration.
struct FieldDef {
  std::string Name;
  std::string TypeDesc; ///< type descriptor, e.g. "I" or "[LEmailAddress;"
  bool IsStatic = false;
  bool IsFinal = false;
  Access Visibility = Access::Public;

  Type type() const { return Type::parse(TypeDesc); }

  bool operator==(const FieldDef &Other) const = default;
};

/// A method declaration with its bytecode body.
struct MethodDef {
  std::string Name;
  std::string Sig; ///< method descriptor, e.g. "(ILUser;)V"
  bool IsStatic = false;
  Access Visibility = Access::Public;
  uint16_t NumLocals = 0; ///< local slots, including parameters (and `this`)
  std::vector<Instr> Code;

  MethodSignature signature() const { return MethodSignature::parse(Sig); }

  /// Number of local slots occupied by parameters (including `this` for
  /// instance methods).
  uint16_t numParamSlots() const {
    return static_cast<uint16_t>(signature().Params.size() +
                                 (IsStatic ? 0 : 1));
  }

  /// \returns true if the bodies (bytecode) are identical. Used by the UPT
  /// to distinguish method-body updates from untouched methods.
  bool codeEquals(const MethodDef &Other) const { return Code == Other.Code; }

  bool operator==(const MethodDef &Other) const = default;
};

/// A class definition: name, superclass, fields, methods.
class ClassDef {
public:
  ClassDef() = default;
  ClassDef(std::string Name, std::string Super)
      : Name(std::move(Name)), Super(std::move(Super)) {}

  std::string Name;
  std::string Super; ///< empty for the implicit root class "Object"

  std::vector<FieldDef> Fields;
  std::vector<MethodDef> Methods;

  /// \returns the field named \p FieldName declared on this class (not
  /// superclasses), or nullptr.
  const FieldDef *findField(const std::string &FieldName) const;

  /// \returns the method \p MethodName with exact signature \p MethodSig
  /// declared on this class, or nullptr. Empty \p MethodSig matches any
  /// signature (first by declaration order).
  const MethodDef *findMethod(const std::string &MethodName,
                              const std::string &MethodSig = "") const;
  MethodDef *findMethod(const std::string &MethodName,
                        const std::string &MethodSig = "");

  bool operator==(const ClassDef &Other) const = default;
};

/// A complete program version: every class plus the designated entry points.
class ClassSet {
public:
  /// Adds \p Def; aborts if a class of that name already exists.
  void add(ClassDef Def);

  /// Replaces or adds \p Def.
  void replace(ClassDef Def);

  /// Removes the class named \p Name; aborts if absent.
  void remove(const std::string &Name);

  bool contains(const std::string &Name) const {
    return Classes.count(Name) != 0;
  }

  const ClassDef *find(const std::string &Name) const;
  ClassDef *find(const std::string &Name);

  /// All classes, ordered by name (deterministic iteration).
  const std::map<std::string, ClassDef> &classes() const { return Classes; }

  size_t size() const { return Classes.size(); }

  /// Walks the superclass chain of \p Name (inclusive) and returns the first
  /// class declaring field \p FieldName, or nullptr. \p DeclaringClass
  /// receives the declaring class name when found.
  const FieldDef *resolveField(const std::string &Name,
                               const std::string &FieldName,
                               std::string *DeclaringClass = nullptr) const;

  /// Walks the superclass chain of \p Name (inclusive) and returns the first
  /// class declaring method \p MethodName with signature \p MethodSig.
  const MethodDef *resolveMethod(const std::string &Name,
                                 const std::string &MethodName,
                                 const std::string &MethodSig,
                                 std::string *DeclaringClass = nullptr) const;

  /// \returns true if \p Sub equals \p Super or transitively extends it.
  bool isSubclassOf(const std::string &Sub, const std::string &Super) const;

  /// \returns the superclass chain of \p Name from itself up to the root.
  std::vector<std::string> superChain(const std::string &Name) const;

private:
  std::map<std::string, ClassDef> Classes;
};

} // namespace jvolve

#endif // JVOLVE_BYTECODE_CLASSDEF_H
