//===----------------------------------------------------------------------===//
///
/// \file
/// Fluent assembler for MiniVM bytecode.
///
/// The application models (src/apps) and tests construct program versions
/// with this builder instead of hand-writing Instr vectors. Branch targets
/// are symbolic labels resolved when the method is finished.
///
/// \code
///   ClassBuilder CB("User", "Object");
///   CB.field("age", "I");
///   MethodBuilder &M = CB.method("getAge", "()I");
///   M.load(0).getfield("User", "age", "I").iret();
///   ClassDef Def = CB.build();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_BUILDER_H
#define JVOLVE_BYTECODE_BUILDER_H

#include "bytecode/ClassDef.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace jvolve {

/// Builds the bytecode body of one method.
class MethodBuilder {
public:
  MethodBuilder(std::string Name, std::string Sig, bool IsStatic);

  /// Declares the total number of local slots (>= parameter slots). When not
  /// called, the builder uses the highest slot touched by load/store plus
  /// the parameter count.
  MethodBuilder &locals(uint16_t NumLocals);

  MethodBuilder &access(Access A);

  // --- Constants and locals -------------------------------------------------
  MethodBuilder &iconst(int64_t Value);
  MethodBuilder &sconst(const std::string &Literal);
  MethodBuilder &nullconst();
  MethodBuilder &load(uint16_t Slot);
  MethodBuilder &store(uint16_t Slot);

  // --- Arithmetic and stack -------------------------------------------------
  MethodBuilder &iadd();
  MethodBuilder &isub();
  MethodBuilder &imul();
  MethodBuilder &idiv();
  MethodBuilder &irem();
  MethodBuilder &ineg();
  MethodBuilder &dup();
  MethodBuilder &pop();

  // --- Control flow ---------------------------------------------------------
  /// Binds \p Name to the next emitted instruction.
  MethodBuilder &label(const std::string &Name);
  MethodBuilder &jump(const std::string &Target);
  MethodBuilder &branch(Opcode ConditionalOp, const std::string &Target);

  // --- Objects --------------------------------------------------------------
  MethodBuilder &newobj(const std::string &ClassName);
  MethodBuilder &getfield(const std::string &ClassName,
                          const std::string &Field, const std::string &Desc);
  MethodBuilder &putfield(const std::string &ClassName,
                          const std::string &Field, const std::string &Desc);
  MethodBuilder &getstatic(const std::string &ClassName,
                           const std::string &Field, const std::string &Desc);
  MethodBuilder &putstatic(const std::string &ClassName,
                           const std::string &Field, const std::string &Desc);
  MethodBuilder &instanceofOp(const std::string &ClassName);
  MethodBuilder &checkcast(const std::string &ClassName);

  // --- Calls ----------------------------------------------------------------
  MethodBuilder &invokevirtual(const std::string &ClassName,
                               const std::string &Method,
                               const std::string &MethodSig);
  MethodBuilder &invokestatic(const std::string &ClassName,
                              const std::string &Method,
                              const std::string &MethodSig);
  MethodBuilder &invokespecial(const std::string &ClassName,
                               const std::string &Method,
                               const std::string &MethodSig);

  // --- Arrays ---------------------------------------------------------------
  MethodBuilder &newarray(const std::string &ElemDesc);
  MethodBuilder &aload();
  MethodBuilder &astore();
  MethodBuilder &arraylength();

  // --- Returns and misc -----------------------------------------------------
  MethodBuilder &ret();
  MethodBuilder &iret();
  MethodBuilder &aret();
  MethodBuilder &nop();
  MethodBuilder &intrinsic(IntrinsicId Id);

  /// Appends a raw instruction (escape hatch for tests).
  MethodBuilder &raw(Instr I);

  /// Resolves labels and returns the finished method. Aborts on an unbound
  /// label. May be called once.
  MethodDef build();

private:
  MethodBuilder &emit(Instr I);

  MethodDef Def;
  std::map<std::string, size_t> Labels;
  std::vector<std::pair<size_t, std::string>> Fixups; ///< (instr, label)
  uint16_t MaxSlotTouched = 0;
  bool LocalsExplicit = false;
  bool Built = false;
};

/// Builds one class.
class ClassBuilder {
public:
  explicit ClassBuilder(std::string Name, std::string Super = "Object");

  /// Adds an instance field.
  ClassBuilder &field(const std::string &Name, const std::string &Desc,
                      Access A = Access::Public, bool IsFinal = false);

  /// Adds a static field.
  ClassBuilder &staticField(const std::string &Name, const std::string &Desc,
                            Access A = Access::Public);

  /// Starts an instance method; the returned builder stays owned by this
  /// class builder and is finished by build().
  MethodBuilder &method(const std::string &Name, const std::string &Sig);

  /// Starts a static method.
  MethodBuilder &staticMethod(const std::string &Name, const std::string &Sig);

  /// Finishes every method and returns the class. May be called once.
  ClassDef build();

private:
  ClassDef Def;
  std::vector<std::unique_ptr<MethodBuilder>> Methods;
  bool Built = false;
};

} // namespace jvolve

#endif // JVOLVE_BYTECODE_BUILDER_H
