//===----------------------------------------------------------------------===//
///
/// \file
/// Disassembler for MiniVM bytecode, used in diagnostics and golden tests.
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_PRINTER_H
#define JVOLVE_BYTECODE_PRINTER_H

#include "bytecode/ClassDef.h"

#include <string>

namespace jvolve {

/// Renders one instruction, e.g. "getfield User.age I".
std::string printInstr(const Instr &I);

/// Renders a method header and numbered body.
std::string printMethod(const MethodDef &M);

/// Renders a whole class: fields then methods.
std::string printClass(const ClassDef &C);

} // namespace jvolve

#endif // JVOLVE_BYTECODE_PRINTER_H
