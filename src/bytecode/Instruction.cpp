#include "bytecode/Instruction.h"

#include "support/Error.h"

using namespace jvolve;

const char *jvolve::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Nop: return "nop";
  case Opcode::IConst: return "iconst";
  case Opcode::SConst: return "sconst";
  case Opcode::NullConst: return "nullconst";
  case Opcode::Load: return "load";
  case Opcode::Store: return "store";
  case Opcode::IAdd: return "iadd";
  case Opcode::ISub: return "isub";
  case Opcode::IMul: return "imul";
  case Opcode::IDiv: return "idiv";
  case Opcode::IRem: return "irem";
  case Opcode::INeg: return "ineg";
  case Opcode::Dup: return "dup";
  case Opcode::Pop: return "pop";
  case Opcode::Goto: return "goto";
  case Opcode::IfEq: return "ifeq";
  case Opcode::IfNe: return "ifne";
  case Opcode::IfLt: return "iflt";
  case Opcode::IfGe: return "ifge";
  case Opcode::IfGt: return "ifgt";
  case Opcode::IfLe: return "ifle";
  case Opcode::IfICmpEq: return "if_icmpeq";
  case Opcode::IfICmpNe: return "if_icmpne";
  case Opcode::IfICmpLt: return "if_icmplt";
  case Opcode::IfICmpGe: return "if_icmpge";
  case Opcode::IfICmpGt: return "if_icmpgt";
  case Opcode::IfICmpLe: return "if_icmple";
  case Opcode::IfNull: return "ifnull";
  case Opcode::IfNonNull: return "ifnonnull";
  case Opcode::IfACmpEq: return "if_acmpeq";
  case Opcode::IfACmpNe: return "if_acmpne";
  case Opcode::New: return "new";
  case Opcode::GetField: return "getfield";
  case Opcode::PutField: return "putfield";
  case Opcode::GetStatic: return "getstatic";
  case Opcode::PutStatic: return "putstatic";
  case Opcode::InstanceOf: return "instanceof";
  case Opcode::CheckCast: return "checkcast";
  case Opcode::InvokeVirtual: return "invokevirtual";
  case Opcode::InvokeStatic: return "invokestatic";
  case Opcode::InvokeSpecial: return "invokespecial";
  case Opcode::NewArray: return "newarray";
  case Opcode::ALoad: return "aload";
  case Opcode::AStore: return "astore";
  case Opcode::ArrayLength: return "arraylength";
  case Opcode::Return: return "return";
  case Opcode::IReturn: return "ireturn";
  case Opcode::AReturn: return "areturn";
  case Opcode::Intrinsic: return "intrinsic";
  }
  unreachable("unknown opcode");
}

const char *jvolve::intrinsicName(IntrinsicId Id) {
  switch (Id) {
  case IntrinsicId::PrintInt: return "print_int";
  case IntrinsicId::PrintStr: return "print_str";
  case IntrinsicId::CurrentTicks: return "current_ticks";
  case IntrinsicId::SleepTicks: return "sleep_ticks";
  case IntrinsicId::NetAccept: return "net_accept";
  case IntrinsicId::NetTryAccept: return "net_try_accept";
  case IntrinsicId::NetRecv: return "net_recv";
  case IntrinsicId::NetSend: return "net_send";
  case IntrinsicId::NetClose: return "net_close";
  case IntrinsicId::StrEquals: return "str_equals";
  case IntrinsicId::StrLength: return "str_length";
  case IntrinsicId::StrConcat: return "str_concat";
  case IntrinsicId::StrIndexOf: return "str_index_of";
  case IntrinsicId::Rand: return "rand";
  }
  unreachable("unknown intrinsic");
}
