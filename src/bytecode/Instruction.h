//===----------------------------------------------------------------------===//
///
/// \file
/// The MiniVM bytecode instruction set.
///
/// A typed stack machine in the style of JVM bytecode. Field and method
/// references are symbolic ("Class.member" plus a descriptor); the
/// quickening compiler in src/exec resolves them to numeric offsets, vtable
/// slots, and method ids — the hard-coded offsets that make category-(2)
/// "indirect method updates" necessary (paper §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef JVOLVE_BYTECODE_INSTRUCTION_H
#define JVOLVE_BYTECODE_INSTRUCTION_H

#include <cstdint>
#include <string>

namespace jvolve {

/// Bytecode opcodes.
enum class Opcode : uint8_t {
  Nop,
  // Constants.
  IConst,    ///< push IVal
  SConst,    ///< push interned String object for Str
  NullConst, ///< push null reference
  // Locals.
  Load,  ///< push local slot IVal
  Store, ///< pop into local slot IVal
  // Integer arithmetic (pop 2 / push 1, except INeg).
  IAdd, ISub, IMul, IDiv, IRem, INeg,
  // Stack manipulation.
  Dup, Pop,
  // Control flow; IVal is the bytecode target index.
  Goto,
  IfEq, IfNe, IfLt, IfGe, IfGt, IfLe,             ///< pop int, compare to 0
  IfICmpEq, IfICmpNe, IfICmpLt, IfICmpGe, IfICmpGt, IfICmpLe, ///< pop 2 ints
  IfNull, IfNonNull,                              ///< pop ref
  IfACmpEq, IfACmpNe,                             ///< pop 2 refs
  // Objects. Sym names the class or "Class.field"; Sig is a type descriptor.
  New,       ///< allocate instance of class Sym; push ref
  GetField,  ///< pop ref, push field Sym (declared type Sig)
  PutField,  ///< pop value, pop ref, store into field Sym
  GetStatic, ///< push static field Sym
  PutStatic, ///< pop value into static field Sym
  InstanceOf, ///< pop ref, push 1 if instance of class Sym else 0
  CheckCast,  ///< pop ref, push it back; runtime type must conform to Sym
  // Calls. Sym is "Class.method", Sig the method signature.
  InvokeVirtual, ///< dynamic dispatch through the receiver's TIB
  InvokeStatic,  ///< direct call of a static method
  InvokeSpecial, ///< direct call of an instance method (constructors)
  // Arrays. Sig is the element type descriptor for NewArray.
  NewArray,    ///< pop length, push new array
  ALoad,       ///< pop index, pop array, push element
  AStore,      ///< pop value, pop index, pop array, store element
  ArrayLength, ///< pop array, push length
  // Returns.
  Return,  ///< return void
  IReturn, ///< return int
  AReturn, ///< return reference
  // VM services. IVal selects the intrinsic (see IntrinsicId).
  Intrinsic,
};

/// Built-in VM services callable from bytecode. These stand in for the
/// native I/O the real server applications perform (sockets, logging) and
/// for scheduling hooks (sleep).
enum class IntrinsicId : int64_t {
  PrintInt,     ///< (I)V: print an int to the VM log
  PrintStr,     ///< (LString;)V: print a string to the VM log
  CurrentTicks, ///< ()I: current virtual clock
  SleepTicks,   ///< (I)V: block the thread for IVal virtual ticks
  NetAccept,    ///< (I)I: block until a connection arrives on port; conn id
  NetTryAccept, ///< (I)I: non-blocking accept; -1 when no connection waits
  NetRecv,      ///< (I)I: block for the next request on a connection; -1=EOF
  NetSend,      ///< (II)V: send a response value on a connection
  NetClose,     ///< (I)V: close a connection
  StrEquals,    ///< (LString;LString;)I
  StrLength,    ///< (LString;)I
  StrConcat,    ///< (LString;LString;)LString;
  StrIndexOf,   ///< (LString;I)I: index of char code, -1 if absent
  Rand,         ///< (I)I: deterministic pseudo-random value in [0, bound)
};

/// One bytecode instruction. Operand use depends on the opcode; unused
/// operands stay at their defaults and compare equal in method diffs.
struct Instr {
  Opcode Op = Opcode::Nop;
  int64_t IVal = 0;  ///< constant / local slot / branch target / intrinsic
  std::string Sym;   ///< "Class" or "Class.member" symbolic reference
  std::string Sig;   ///< type or method descriptor
  std::string Str;   ///< string literal (SConst)

  bool operator==(const Instr &Other) const = default;
};

/// \returns a human-readable mnemonic for \p Op.
const char *opcodeName(Opcode Op);

/// \returns a human-readable name for \p Id.
const char *intrinsicName(IntrinsicId Id);

} // namespace jvolve

#endif // JVOLVE_BYTECODE_INSTRUCTION_H
