#include "bytecode/Builtins.h"

#include "support/Error.h"

using namespace jvolve;

void jvolve::ensureBuiltins(ClassSet &Set) {
  if (!Set.contains(ObjectClassName)) {
    ClassDef Object(ObjectClassName, "");
    Set.add(std::move(Object));
  }
  if (!Set.contains(StringClassName)) {
    ClassDef Str(StringClassName, ObjectClassName);
    Str.Fields.push_back({StringIdField, "I", /*IsStatic=*/false,
                          /*IsFinal=*/true, Access::Private});
    Set.add(std::move(Str));
  }
}

bool jvolve::isBuiltinClass(const std::string &Name) {
  return Name == ObjectClassName || Name == StringClassName;
}

std::string jvolve::intrinsicSignature(IntrinsicId Id) {
  switch (Id) {
  case IntrinsicId::PrintInt: return "(I)V";
  case IntrinsicId::PrintStr: return "(LString;)V";
  case IntrinsicId::CurrentTicks: return "()I";
  case IntrinsicId::SleepTicks: return "(I)V";
  case IntrinsicId::NetAccept: return "(I)I";
  case IntrinsicId::NetTryAccept: return "(I)I";
  case IntrinsicId::NetRecv: return "(I)I";
  case IntrinsicId::NetSend: return "(II)V";
  case IntrinsicId::NetClose: return "(I)V";
  case IntrinsicId::StrEquals: return "(LString;LString;)I";
  case IntrinsicId::StrLength: return "(LString;)I";
  case IntrinsicId::StrConcat: return "(LString;LString;)LString;";
  case IntrinsicId::StrIndexOf: return "(LString;I)I";
  case IntrinsicId::Rand: return "(I)I";
  }
  unreachable("unknown intrinsic");
}
