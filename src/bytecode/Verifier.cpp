#include "bytecode/Verifier.h"

#include "bytecode/Builtins.h"
#include "support/Error.h"

#include <cassert>
#include <deque>
#include <optional>
#include <set>

using namespace jvolve;

std::string VerifyError::str() const {
  std::string Out = ClassName;
  if (!MethodName.empty())
    Out += "." + MethodName;
  if (Pc >= 0)
    Out += "@" + std::to_string(Pc);
  Out += ": " + Message;
  return Out;
}

namespace {

/// Abstract value in the verifier's type lattice.
struct VType {
  enum class Kind { Top, Int, Null, Ref, Arr };
  Kind K = Kind::Top;
  std::string Desc; ///< class name (Ref) or element descriptor (Arr)

  static VType top() { return {Kind::Top, ""}; }
  static VType intV() { return {Kind::Int, ""}; }
  static VType nullV() { return {Kind::Null, ""}; }
  static VType ref(std::string ClassName) {
    return {Kind::Ref, std::move(ClassName)};
  }
  static VType arr(std::string ElemDesc) {
    return {Kind::Arr, std::move(ElemDesc)};
  }

  bool isRefLike() const {
    return K == Kind::Null || K == Kind::Ref || K == Kind::Arr;
  }

  bool operator==(const VType &O) const = default;

  std::string str() const {
    switch (K) {
    case Kind::Top: return "top";
    case Kind::Int: return "int";
    case Kind::Null: return "null";
    case Kind::Ref: return Desc;
    case Kind::Arr: return "[" + Desc;
    }
    unreachable("bad VType kind");
  }
};

/// Abstract machine state at one bytecode index.
struct AbsState {
  std::vector<VType> Locals;
  std::vector<VType> Stack;
};

/// Renders an operand stack as "[a, b, c]", bottom first.
std::string stackStr(const std::vector<VType> &Stack) {
  std::string Out = "[";
  for (size_t I = 0; I < Stack.size(); ++I) {
    if (I)
      Out += ", ";
    Out += Stack[I].str();
  }
  return Out + "]";
}

/// Per-method abstract interpreter.
class MethodVerifier {
public:
  MethodVerifier(const ClassSet &Set, const ClassDef &Cls, const MethodDef &M,
                 std::vector<VerifyError> &Errs)
      : Set(Set), Cls(Cls), M(M), Errs(Errs) {}

  void run();

  /// The per-pc in-states after run(): nullopt for unreachable pcs.
  const std::vector<std::optional<AbsState>> &inStates() const {
    return InStates;
  }

private:
  void error(int Pc, const std::string &Msg) {
    Errs.push_back({Cls.Name, M.Name + M.Sig, Pc, Msg});
  }

  VType fromType(const Type &T) {
    switch (T.kind()) {
    case Type::Kind::Int:
      return VType::intV();
    case Type::Kind::Ref:
      return VType::ref(T.className());
    case Type::Kind::Array:
      return VType::arr(T.elementType().descriptor());
    case Type::Kind::Void:
      break;
    }
    unreachable("void has no abstract value");
  }

  /// Least common superclass of \p A and \p B, defaulting to Object.
  std::string commonSuper(const std::string &A, const std::string &B) {
    for (const std::string &C : Set.superChain(A))
      if (Set.isSubclassOf(B, C))
        return C;
    return ObjectClassName;
  }

  bool isAssignable(const VType &Src, const Type &Dst) {
    switch (Dst.kind()) {
    case Type::Kind::Int:
      return Src.K == VType::Kind::Int;
    case Type::Kind::Ref: {
      if (Src.K == VType::Kind::Null)
        return true;
      if (Src.K == VType::Kind::Ref)
        return Set.isSubclassOf(Src.Desc, Dst.className());
      if (Src.K == VType::Kind::Arr)
        return Dst.className() == ObjectClassName;
      return false;
    }
    case Type::Kind::Array: {
      if (Src.K == VType::Kind::Null)
        return true;
      if (Src.K != VType::Kind::Arr)
        return false;
      Type DstElem = Dst.elementType();
      if (Src.Desc == DstElem.descriptor())
        return true;
      // Covariant reference arrays, as in Java.
      Type SrcElem = Type::parse(Src.Desc);
      return SrcElem.isRef() && DstElem.isRef() &&
             Set.isSubclassOf(SrcElem.className(), DstElem.className());
    }
    case Type::Kind::Void:
      return false;
    }
    unreachable("bad destination type kind");
  }

  /// Merge of two abstract values. \returns nullopt on conflict.
  std::optional<VType> mergeValue(const VType &A, const VType &B) {
    if (A == B)
      return A;
    if (A.K == VType::Kind::Null && B.isRefLike())
      return B;
    if (B.K == VType::Kind::Null && A.isRefLike())
      return A;
    if (A.K == VType::Kind::Ref && B.K == VType::Kind::Ref)
      return VType::ref(commonSuper(A.Desc, B.Desc));
    if (A.K == VType::Kind::Arr && B.K == VType::Kind::Arr)
      return VType::ref(ObjectClassName); // differing element types
    if ((A.K == VType::Kind::Arr && B.K == VType::Kind::Ref &&
         B.Desc == ObjectClassName) ||
        (B.K == VType::Kind::Arr && A.K == VType::Kind::Ref &&
         A.Desc == ObjectClassName))
      return VType::ref(ObjectClassName);
    return std::nullopt;
  }

  /// Merges \p From into the recorded in-state of \p TargetPc. \returns true
  /// if the target state changed (so it must be revisited).
  bool mergeInto(size_t TargetPc, const AbsState &From, int SourcePc);

  /// Interprets the instruction at \p Pc over \p S. \returns false if a type
  /// error stops interpretation of this path.
  bool step(size_t Pc, AbsState &S, std::vector<size_t> &Successors);

  bool popValue(int Pc, AbsState &S, VType &Out) {
    if (S.Stack.empty()) {
      error(Pc, "operand stack underflow: " + std::string(opcodeName(
                    M.Code[static_cast<size_t>(Pc)].Op)) +
                    " needs a value but the stack is empty");
      return false;
    }
    Out = S.Stack.back();
    S.Stack.pop_back();
    return true;
  }

  bool popInt(int Pc, AbsState &S) {
    std::string Pre = stackStr(S.Stack);
    VType V;
    if (!popValue(Pc, S, V))
      return false;
    if (V.K != VType::Kind::Int) {
      error(Pc, "expected int on stack, found " + V.str() +
                    " (stack was " + Pre + ")");
      return false;
    }
    return true;
  }

  bool popRefLike(int Pc, AbsState &S, VType &Out) {
    std::string Pre = stackStr(S.Stack);
    if (!popValue(Pc, S, Out))
      return false;
    if (!Out.isRefLike()) {
      error(Pc, "expected reference on stack, found " + Out.str() +
                    " (stack was " + Pre + ")");
      return false;
    }
    return true;
  }

  bool popAssignable(int Pc, AbsState &S, const Type &Dst,
                     const char *What) {
    std::string Pre = stackStr(S.Stack);
    VType V;
    if (!popValue(Pc, S, V))
      return false;
    if (!isAssignable(V, Dst)) {
      error(Pc, std::string(What) + ": expected " + Dst.descriptor() +
                    ", found " + V.str() + " (stack was " + Pre + ")");
      return false;
    }
    return true;
  }

  bool checkAccess(int Pc, const std::string &Declaring, Access Vis,
                   const std::string &What) {
    switch (Vis) {
    case Access::Public:
      return true;
    case Access::Protected:
      if (Set.isSubclassOf(Cls.Name, Declaring))
        return true;
      break;
    case Access::Private:
      if (Cls.Name == Declaring)
        return true;
      break;
    }
    error(Pc, What + " is not accessible from " + Cls.Name);
    return false;
  }

  const ClassSet &Set;
  const ClassDef &Cls;
  const MethodDef &M;
  std::vector<VerifyError> &Errs;

  std::vector<std::optional<AbsState>> InStates;
  std::deque<size_t> Worklist;
};

bool MethodVerifier::mergeInto(size_t TargetPc, const AbsState &From,
                               int SourcePc) {
  if (TargetPc >= M.Code.size()) {
    error(SourcePc, "branch target " + std::to_string(TargetPc) +
                        " out of bounds");
    return false;
  }
  std::optional<AbsState> &In = InStates[TargetPc];
  if (!In) {
    In = From;
    return true;
  }
  if (In->Stack.size() != From.Stack.size()) {
    error(SourcePc, "stack height mismatch at join point " +
                        std::to_string(TargetPc) + ": expected " +
                        stackStr(In->Stack) + ", found " +
                        stackStr(From.Stack));
    return false;
  }
  bool Changed = false;
  for (size_t I = 0; I < In->Stack.size(); ++I) {
    std::optional<VType> Merged = mergeValue(In->Stack[I], From.Stack[I]);
    if (!Merged) {
      error(SourcePc, "incompatible stack types at join point " +
                          std::to_string(TargetPc) + ": " +
                          In->Stack[I].str() + " vs " + From.Stack[I].str() +
                          " (expected " + stackStr(In->Stack) + ", found " +
                          stackStr(From.Stack) + ")");
      return false;
    }
    if (!(*Merged == In->Stack[I])) {
      In->Stack[I] = *Merged;
      Changed = true;
    }
  }
  for (size_t I = 0; I < In->Locals.size(); ++I) {
    // Conflicting locals become unusable rather than erroneous.
    VType Merged =
        mergeValue(In->Locals[I], From.Locals[I]).value_or(VType::top());
    if (!(Merged == In->Locals[I])) {
      In->Locals[I] = Merged;
      Changed = true;
    }
  }
  return Changed;
}

bool MethodVerifier::step(size_t Pc, AbsState &S,
                          std::vector<size_t> &Successors) {
  const Instr &I = M.Code[Pc];
  int P = static_cast<int>(Pc);
  bool FallsThrough = true;

  auto ResolveClass = [&](const std::string &Name) -> const ClassDef * {
    const ClassDef *D = Set.find(Name);
    if (!D)
      error(P, "unknown class '" + Name + "'");
    return D;
  };
  auto SplitMember = [&](const std::string &Sym, std::string &ClassName,
                         std::string &Member) -> bool {
    size_t Dot = Sym.find('.');
    if (Dot == std::string::npos) {
      error(P, "malformed member reference '" + Sym + "'");
      return false;
    }
    ClassName = Sym.substr(0, Dot);
    Member = Sym.substr(Dot + 1);
    return true;
  };

  switch (I.Op) {
  case Opcode::Nop:
    break;
  case Opcode::IConst:
    S.Stack.push_back(VType::intV());
    break;
  case Opcode::SConst:
    S.Stack.push_back(VType::ref(StringClassName));
    break;
  case Opcode::NullConst:
    S.Stack.push_back(VType::nullV());
    break;
  case Opcode::Load: {
    if (I.IVal < 0 || I.IVal >= M.NumLocals) {
      error(P, "local slot " + std::to_string(I.IVal) + " out of range");
      return false;
    }
    const VType &L = S.Locals[static_cast<size_t>(I.IVal)];
    if (L.K == VType::Kind::Top) {
      error(P, "load of uninitialized local " + std::to_string(I.IVal));
      return false;
    }
    S.Stack.push_back(L);
    break;
  }
  case Opcode::Store: {
    if (I.IVal < 0 || I.IVal >= M.NumLocals) {
      error(P, "local slot " + std::to_string(I.IVal) + " out of range");
      return false;
    }
    VType V;
    if (!popValue(P, S, V))
      return false;
    S.Locals[static_cast<size_t>(I.IVal)] = V;
    break;
  }
  case Opcode::IAdd: case Opcode::ISub: case Opcode::IMul:
  case Opcode::IDiv: case Opcode::IRem:
    if (!popInt(P, S) || !popInt(P, S))
      return false;
    S.Stack.push_back(VType::intV());
    break;
  case Opcode::INeg:
    if (!popInt(P, S))
      return false;
    S.Stack.push_back(VType::intV());
    break;
  case Opcode::Dup: {
    if (S.Stack.empty()) {
      error(P, "dup on empty stack");
      return false;
    }
    S.Stack.push_back(S.Stack.back());
    break;
  }
  case Opcode::Pop: {
    VType V;
    if (!popValue(P, S, V))
      return false;
    break;
  }
  case Opcode::Goto:
    Successors.push_back(static_cast<size_t>(I.IVal));
    FallsThrough = false;
    break;
  case Opcode::IfEq: case Opcode::IfNe: case Opcode::IfLt:
  case Opcode::IfGe: case Opcode::IfGt: case Opcode::IfLe:
    if (!popInt(P, S))
      return false;
    Successors.push_back(static_cast<size_t>(I.IVal));
    break;
  case Opcode::IfICmpEq: case Opcode::IfICmpNe: case Opcode::IfICmpLt:
  case Opcode::IfICmpGe: case Opcode::IfICmpGt: case Opcode::IfICmpLe:
    if (!popInt(P, S) || !popInt(P, S))
      return false;
    Successors.push_back(static_cast<size_t>(I.IVal));
    break;
  case Opcode::IfNull: case Opcode::IfNonNull: {
    VType V;
    if (!popRefLike(P, S, V))
      return false;
    Successors.push_back(static_cast<size_t>(I.IVal));
    break;
  }
  case Opcode::IfACmpEq: case Opcode::IfACmpNe: {
    VType A, B;
    if (!popRefLike(P, S, A) || !popRefLike(P, S, B))
      return false;
    Successors.push_back(static_cast<size_t>(I.IVal));
    break;
  }
  case Opcode::New: {
    if (!ResolveClass(I.Sym))
      return false;
    S.Stack.push_back(VType::ref(I.Sym));
    break;
  }
  case Opcode::GetField: case Opcode::PutField:
  case Opcode::GetStatic: case Opcode::PutStatic: {
    std::string ClassName, FieldName;
    if (!SplitMember(I.Sym, ClassName, FieldName))
      return false;
    if (!ResolveClass(ClassName))
      return false;
    std::string Declaring;
    const FieldDef *F = Set.resolveField(ClassName, FieldName, &Declaring);
    if (!F) {
      error(P, "unknown field " + I.Sym);
      return false;
    }
    if (F->TypeDesc != I.Sig) {
      error(P, "field " + I.Sym + " has type " + F->TypeDesc +
                   ", instruction expects " + I.Sig);
      return false;
    }
    bool WantStatic =
        I.Op == Opcode::GetStatic || I.Op == Opcode::PutStatic;
    if (F->IsStatic != WantStatic) {
      error(P, "field " + I.Sym +
                   (WantStatic ? " is not static" : " is static"));
      return false;
    }
    if (!checkAccess(P, Declaring, F->Visibility, "field " + I.Sym))
      return false;
    bool IsWrite = I.Op == Opcode::PutField || I.Op == Opcode::PutStatic;
    if (IsWrite && F->IsFinal && Cls.Name != Declaring) {
      error(P, "write to final field " + I.Sym +
                   " outside its declaring class");
      return false;
    }
    Type FieldTy = F->type();
    if (IsWrite && !popAssignable(P, S, FieldTy, "field store"))
      return false;
    if (I.Op == Opcode::GetField || I.Op == Opcode::PutField) {
      if (!popAssignable(P, S, Type::refTy(ClassName), "field receiver"))
        return false;
    }
    if (!IsWrite)
      S.Stack.push_back(fromType(FieldTy));
    break;
  }
  case Opcode::InstanceOf: {
    if (!ResolveClass(I.Sym))
      return false;
    VType V;
    if (!popRefLike(P, S, V))
      return false;
    S.Stack.push_back(VType::intV());
    break;
  }
  case Opcode::CheckCast: {
    if (!ResolveClass(I.Sym))
      return false;
    VType V;
    if (!popRefLike(P, S, V))
      return false;
    S.Stack.push_back(VType::ref(I.Sym));
    break;
  }
  case Opcode::InvokeVirtual: case Opcode::InvokeStatic:
  case Opcode::InvokeSpecial: {
    std::string ClassName, MethodName;
    if (!SplitMember(I.Sym, ClassName, MethodName))
      return false;
    if (!ResolveClass(ClassName))
      return false;
    if (!MethodSignature::isValidSignature(I.Sig)) {
      error(P, "malformed call signature '" + I.Sig + "'");
      return false;
    }
    std::string Declaring;
    const MethodDef *Callee =
        Set.resolveMethod(ClassName, MethodName, I.Sig, &Declaring);
    if (!Callee) {
      error(P, "unknown method " + I.Sym + I.Sig);
      return false;
    }
    bool WantStatic = I.Op == Opcode::InvokeStatic;
    if (Callee->IsStatic != WantStatic) {
      error(P, "method " + I.Sym +
                   (WantStatic ? " is not static" : " is static"));
      return false;
    }
    if (!checkAccess(P, Declaring, Callee->Visibility, "method " + I.Sym))
      return false;
    MethodSignature Sig = MethodSignature::parse(I.Sig);
    for (size_t A = Sig.Params.size(); A > 0; --A)
      if (!popAssignable(P, S, Sig.Params[A - 1], "call argument"))
        return false;
    if (!WantStatic &&
        !popAssignable(P, S, Type::refTy(ClassName), "call receiver"))
      return false;
    if (!Sig.Return.isVoid())
      S.Stack.push_back(fromType(Sig.Return));
    break;
  }
  case Opcode::NewArray: {
    if (!Type::isValidDescriptor(I.Sig) || I.Sig == "V") {
      error(P, "invalid array element type '" + I.Sig + "'");
      return false;
    }
    if (!popInt(P, S))
      return false;
    S.Stack.push_back(VType::arr(I.Sig));
    break;
  }
  case Opcode::ALoad: {
    if (!popInt(P, S))
      return false;
    VType Arr;
    if (!popRefLike(P, S, Arr))
      return false;
    if (Arr.K == VType::Kind::Null) {
      // Provably-null array load: any element type works; pick int.
      S.Stack.push_back(VType::intV());
      break;
    }
    if (Arr.K != VType::Kind::Arr) {
      error(P, "aload on non-array " + Arr.str());
      return false;
    }
    S.Stack.push_back(fromType(Type::parse(Arr.Desc)));
    break;
  }
  case Opcode::AStore: {
    VType Value;
    if (!popValue(P, S, Value))
      return false;
    if (!popInt(P, S))
      return false;
    VType Arr;
    if (!popRefLike(P, S, Arr))
      return false;
    if (Arr.K == VType::Kind::Null)
      break; // will raise at runtime; statically fine
    if (Arr.K != VType::Kind::Arr) {
      error(P, "astore on non-array " + Arr.str());
      return false;
    }
    if (!isAssignable(Value, Type::parse(Arr.Desc))) {
      error(P, "astore: " + Value.str() + " not assignable to element type " +
                   Arr.Desc);
      return false;
    }
    break;
  }
  case Opcode::ArrayLength: {
    VType Arr;
    if (!popRefLike(P, S, Arr))
      return false;
    if (Arr.K == VType::Kind::Ref) {
      error(P, "arraylength on non-array " + Arr.str());
      return false;
    }
    S.Stack.push_back(VType::intV());
    break;
  }
  case Opcode::Return: case Opcode::IReturn: case Opcode::AReturn: {
    Type Ret = M.signature().Return;
    if (I.Op == Opcode::Return) {
      if (!Ret.isVoid()) {
        error(P, "void return from non-void method");
        return false;
      }
    } else if (I.Op == Opcode::IReturn) {
      if (!Ret.isInt()) {
        error(P, "ireturn from method returning " + Ret.descriptor());
        return false;
      }
      if (!popInt(P, S))
        return false;
    } else {
      if (!Ret.isReferenceLike()) {
        error(P, "areturn from method returning " + Ret.descriptor());
        return false;
      }
      if (!popAssignable(P, S, Ret, "return value"))
        return false;
    }
    FallsThrough = false;
    break;
  }
  case Opcode::Intrinsic: {
    if (I.IVal < static_cast<int64_t>(IntrinsicId::PrintInt) ||
        I.IVal > static_cast<int64_t>(IntrinsicId::Rand)) {
      error(P, "unknown intrinsic id " + std::to_string(I.IVal));
      return false;
    }
    MethodSignature Sig = MethodSignature::parse(
        intrinsicSignature(static_cast<IntrinsicId>(I.IVal)));
    for (size_t A = Sig.Params.size(); A > 0; --A)
      if (!popAssignable(P, S, Sig.Params[A - 1], "intrinsic argument"))
        return false;
    if (!Sig.Return.isVoid())
      S.Stack.push_back(fromType(Sig.Return));
    break;
  }
  }

  if (FallsThrough) {
    if (Pc + 1 >= M.Code.size()) {
      error(P, "control falls off the end of the method");
      return false;
    }
    Successors.push_back(Pc + 1);
  }
  return true;
}

void MethodVerifier::run() {
  if (M.Code.empty()) {
    error(-1, "method has no body");
    return;
  }
  MethodSignature Sig = MethodSignature::parse(M.Sig);
  uint16_t ParamSlots = M.numParamSlots();
  if (M.NumLocals < ParamSlots) {
    error(-1, "NumLocals smaller than parameter slot count");
    return;
  }

  AbsState Entry;
  Entry.Locals.assign(M.NumLocals, VType::top());
  size_t Slot = 0;
  if (!M.IsStatic)
    Entry.Locals[Slot++] = VType::ref(Cls.Name);
  for (const Type &ParamTy : Sig.Params)
    Entry.Locals[Slot++] = fromType(ParamTy);

  InStates.assign(M.Code.size(), std::nullopt);
  InStates[0] = Entry;
  Worklist.push_back(0);

  // Bound the fixpoint to guard against lattice bugs; the ref lattice has
  // finite height so this should never trip in practice.
  size_t Budget = M.Code.size() * 64 + 1024;
  while (!Worklist.empty()) {
    if (Budget-- == 0) {
      error(-1, "verifier fixpoint did not converge");
      return;
    }
    size_t Pc = Worklist.front();
    Worklist.pop_front();
    assert(InStates[Pc] && "worklist entry without in-state");
    AbsState S = *InStates[Pc];
    std::vector<size_t> Successors;
    size_t ErrsBefore = Errs.size();
    if (!step(Pc, S, Successors))
      continue; // diagnostics recorded; stop exploring this path
    assert(Errs.size() == ErrsBefore && "step succeeded but raised errors");
    (void)ErrsBefore;
    for (size_t Succ : Successors)
      if (mergeInto(Succ, S, static_cast<int>(Pc)))
        Worklist.push_back(Succ);
  }
}

} // namespace

/// Checks every class name mentioned in \p Desc resolves in \p Set.
static void checkDescriptorClasses(const ClassSet &Set,
                                   const std::string &Owner,
                                   const std::string &Desc,
                                   std::vector<VerifyError> &Errs) {
  Type T = Type::parse(Desc);
  while (T.isArray())
    T = T.elementType();
  if (T.isRef() && !Set.find(T.className()))
    Errs.push_back({Owner, "", -1,
                    "descriptor '" + Desc + "' references unknown class '" +
                        T.className() + "'"});
}

void Verifier::verifyClass(const ClassDef &Cls,
                           std::vector<VerifyError> &Errs) const {
  auto ClassError = [&](const std::string &Msg) {
    Errs.push_back({Cls.Name, "", -1, Msg});
  };

  // Superclass chain must exist and terminate at Object without cycles.
  if (Cls.Name != ObjectClassName) {
    std::set<std::string> Seen;
    std::string Cur = Cls.Name;
    while (true) {
      if (!Seen.insert(Cur).second) {
        ClassError("superclass cycle involving '" + Cur + "'");
        break;
      }
      const ClassDef *D = Set.find(Cur);
      if (!D) {
        ClassError("unknown superclass '" + Cur + "'");
        break;
      }
      if (D->Super.empty()) {
        if (D->Name != ObjectClassName)
          ClassError("hierarchy of " + Cls.Name + " does not reach Object");
        break;
      }
      Cur = D->Super;
    }
  } else if (!Cls.Super.empty()) {
    ClassError("Object must not have a superclass");
  }

  // Field checks: valid descriptors, no duplicates, no shadowing.
  std::set<std::string> FieldNames;
  for (const FieldDef &F : Cls.Fields) {
    if (!Type::isValidDescriptor(F.TypeDesc) || F.TypeDesc == "V") {
      ClassError("field " + F.Name + " has invalid type '" + F.TypeDesc +
                 "'");
      continue;
    }
    checkDescriptorClasses(Set, Cls.Name, F.TypeDesc, Errs);
    if (!FieldNames.insert(F.Name).second)
      ClassError("duplicate field '" + F.Name + "'");
    if (!Cls.Super.empty() && Set.resolveField(Cls.Super, F.Name))
      ClassError("field '" + F.Name + "' shadows a superclass field");
  }

  // Method checks: signatures valid, no duplicate name+sig, overrides agree
  // on static-ness.
  std::set<std::string> MethodKeys;
  for (const MethodDef &M : Cls.Methods) {
    if (!MethodSignature::isValidSignature(M.Sig)) {
      ClassError("method " + M.Name + " has invalid signature '" + M.Sig +
                 "'");
      continue;
    }
    MethodSignature Sig = MethodSignature::parse(M.Sig);
    for (const Type &ParamTy : Sig.Params)
      checkDescriptorClasses(Set, Cls.Name, ParamTy.descriptor(), Errs);
    if (!Sig.Return.isVoid())
      checkDescriptorClasses(Set, Cls.Name, Sig.Return.descriptor(), Errs);
    if (!MethodKeys.insert(M.Name + M.Sig).second)
      ClassError("duplicate method " + M.Name + M.Sig);
    if (!Cls.Super.empty()) {
      if (const MethodDef *Super = Set.resolveMethod(Cls.Super, M.Name, M.Sig))
        if (Super->IsStatic != M.IsStatic)
          ClassError("method " + M.Name + M.Sig +
                     " changes static-ness of inherited method");
    }
    verifyMethod(Cls, M, Errs);
  }
}

void Verifier::verifyMethod(const ClassDef &Cls, const MethodDef &M,
                            std::vector<VerifyError> &Errs) const {
  MethodVerifier MV(Set, Cls, M, Errs);
  MV.run();
}

std::vector<VerifyError> Verifier::verifyAll() const {
  std::vector<VerifyError> Errs;
  for (const auto &[Name, Cls] : Set.classes())
    verifyClass(Cls, Errs);
  return Errs;
}

bool jvolve::verifies(const ClassSet &Set) {
  return Verifier(Set).verifyAll().empty();
}

std::vector<std::optional<StackShape>>
jvolve::computeStackShapes(const ClassSet &Set, const ClassDef &Cls,
                           const MethodDef &M) {
  std::vector<VerifyError> Errs;
  MethodVerifier MV(Set, Cls, M, Errs);
  MV.run();
  if (!Errs.empty())
    return {};
  std::vector<std::optional<StackShape>> Out(M.Code.size());
  const std::vector<std::optional<AbsState>> &In = MV.inStates();
  for (size_t Pc = 0; Pc < In.size(); ++Pc) {
    if (!In[Pc])
      continue;
    StackShape Shape;
    Shape.reserve(In[Pc]->Stack.size());
    for (const VType &V : In[Pc]->Stack)
      Shape.push_back(V.str());
    Out[Pc] = std::move(Shape);
  }
  return Out;
}
